module puffer

go 1.24
