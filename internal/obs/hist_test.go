package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func withEnabled(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

// TestBucketBoundaries: every value maps into a bucket whose [Low, High]
// range contains it, adjacent buckets tile the int64 range with no gaps or
// overlaps, values below histSubCount are exact, and above that the bucket
// width never exceeds Low/histSubCount (the 3.125% resolution guarantee).
func TestBucketBoundaries(t *testing.T) {
	// Exhaustive over the exact region and the first octaves, then probe
	// values across the full range.
	var probes []int64
	for v := int64(0); v < 4*histSubCount; v++ {
		probes = append(probes, v)
	}
	for shift := uint(7); shift < 63; shift++ {
		base := int64(1) << shift
		probes = append(probes, base-1, base, base+1, base+base/3, math.MaxInt64>>(62-shift))
	}
	probes = append(probes, math.MaxInt64-1, math.MaxInt64)
	for _, v := range probes {
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d [%d, %d] which does not contain it", v, idx, lo, hi)
		}
		if v < histSubCount && lo != hi {
			t.Fatalf("value %d should land in an exact bucket, got [%d, %d]", v, lo, hi)
		}
		if v >= histSubCount {
			if width := hi - lo; width > lo/histSubCount {
				t.Fatalf("bucket %d [%d, %d] width %d exceeds Low/%d = %d", idx, lo, hi, width, histSubCount, lo/histSubCount)
			}
		}
	}
	// Tiling: bucket i's High + 1 == bucket i+1's Low, all the way up.
	for idx := 0; idx < histNumBuckets-1; idx++ {
		if bucketHigh(idx)+1 != bucketLow(idx+1) {
			t.Fatalf("buckets %d and %d do not tile: high %d, next low %d",
				idx, idx+1, bucketHigh(idx), bucketLow(idx+1))
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", bucketIndex(-5))
	}
	if bucketIndex(math.MaxInt64) != histNumBuckets-1 {
		t.Fatalf("MaxInt64 maps to bucket %d, want the last bucket %d", bucketIndex(math.MaxInt64), histNumBuckets-1)
	}
}

// TestQuantileErrorBound: against the exact sample quantile v of random
// data at several scales, the histogram estimate q satisfies
// v <= q < v*(1 + 1/histSubCount) — and is exact in the unit-bucket
// region.
func TestQuantileErrorBound(t *testing.T) {
	withEnabled(t)
	rng := rand.New(rand.NewSource(42))
	for _, scale := range []int64{20, 1000, 1 << 20, 1 << 40} {
		h := newHistogram("q")
		n := 5000
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(scale)
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		snap := h.Snapshot()
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int(math.Ceil(p * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := snap.Quantile(p)
			if got < exact {
				t.Fatalf("scale %d p%.3f: estimate %d below exact %d", scale, p, got, exact)
			}
			bound := exact + exact/histSubCount + 1
			if got >= bound {
				t.Fatalf("scale %d p%.3f: estimate %d outside error bound [%d, %d)", scale, p, got, exact, bound)
			}
			if exact < histSubCount && got != exact {
				t.Fatalf("scale %d p%.3f: unit-bucket region must be exact, got %d want %d", scale, p, got, exact)
			}
		}
	}
}

// TestQuantileEmptyAndEdges: empty snapshots and out-of-range p.
func TestQuantileEmptyAndEdges(t *testing.T) {
	withEnabled(t)
	var empty HistSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %d, want 0", got)
	}
	h := newHistogram("e")
	h.Observe(7)
	snap := h.Snapshot()
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if got := snap.Quantile(p); got != 7 {
			t.Fatalf("single-value quantile(%g) = %d, want 7", p, got)
		}
	}
	if snap.Min != 7 || snap.Max != 7 || snap.Sum != 7 || snap.Count != 1 {
		t.Fatalf("single-value snapshot wrong: %+v", snap)
	}
}

// randomSnapshot builds a histogram snapshot from random observations.
func randomSnapshot(t *testing.T, seed int64, n int) HistSnapshot {
	t.Helper()
	h := newHistogram("m")
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		h.Observe(rng.Int63n(1 << uint(10+rng.Intn(30))))
	}
	return h.Snapshot()
}

// TestMergeAssociativeCommutative: Merge(a,b) == Merge(b,a) and
// Merge(Merge(a,b),c) == Merge(a,Merge(b,c)), and a merge equals the
// histogram that saw all observations directly.
func TestMergeAssociativeCommutative(t *testing.T) {
	withEnabled(t)
	a := randomSnapshot(t, 1, 400)
	b := randomSnapshot(t, 2, 300)
	c := randomSnapshot(t, 3, 500)

	ab, ba := Merge(a, b), Merge(b, a)
	ba.Name = ab.Name // commutativity is up to the label
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("Merge is not commutative")
	}
	left, right := Merge(Merge(a, b), c), Merge(a, Merge(b, c))
	if !reflect.DeepEqual(left, right) {
		t.Fatal("Merge is not associative")
	}
	if left.Count != a.Count+b.Count+c.Count || left.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged count/sum wrong: %+v", left)
	}

	// Direct equivalence: one histogram fed all three streams.
	all := newHistogram("m")
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		n := map[int64]int{1: 400, 2: 300, 3: 500}[seed]
		for i := 0; i < n; i++ {
			all.Observe(rng.Int63n(1 << uint(10+rng.Intn(30))))
		}
	}
	if got := all.Snapshot(); !reflect.DeepEqual(got, left) {
		t.Fatal("merge of three snapshots differs from the single histogram that saw everything")
	}

	// Identity: merging with an empty snapshot changes nothing but is
	// well-formed.
	var zero HistSnapshot
	withZero := Merge(a, zero)
	if withZero.Count != a.Count || withZero.Min != a.Min || withZero.Max != a.Max {
		t.Fatalf("merge with empty snapshot mangled min/max/count: %+v", withZero)
	}
}

// TestConcurrentWriters: many goroutines hammering one histogram (and a
// counter) must lose nothing; run under -race this is also the data-race
// proof for the lock-free write path.
func TestConcurrentWriters(t *testing.T) {
	withEnabled(t)
	h := newHistogram("c")
	ctr := &Counter{name: "c"}
	const writers, perWriter = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(1 << 30))
				ctr.Inc()
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("lost observations: count %d, want %d", snap.Count, writers*perWriter)
	}
	if ctr.Value() != writers*perWriter {
		t.Fatalf("lost counter increments: %d, want %d", ctr.Value(), writers*perWriter)
	}
	var fromBuckets int64
	for _, b := range snap.Buckets {
		fromBuckets += int64(b.Count)
	}
	if fromBuckets != snap.Count {
		t.Fatalf("bucket totals %d disagree with count %d", fromBuckets, snap.Count)
	}
	if snap.Min > snap.Max || snap.Max >= 1<<30 {
		t.Fatalf("min/max out of range: %+v", snap)
	}
}

// TestDisabledRecordsNothing: the zero state — writes while the gate is
// off must not touch the histogram, and Now must not read the clock.
func TestDisabledRecordsNothing(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })
	h := newHistogram("d")
	h.Observe(123)
	h.ObserveSince(Now())
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("disabled histogram recorded %d observations", got.Count)
	}
	if Now() != 0 {
		t.Fatal("Now must return the zero stamp while disabled")
	}
	ctr := &Counter{name: "d"}
	ctr.Add(5)
	if ctr.Value() != 0 {
		t.Fatal("disabled counter recorded")
	}
	g := &Gauge{name: "d"}
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("disabled gauge recorded")
	}
}

// TestObserveSince: stamps time a stage; the zero stamp records nothing
// even while enabled.
func TestObserveSince(t *testing.T) {
	withEnabled(t)
	h := newHistogram("s")
	t0 := Now()
	if t0 == 0 {
		t.Fatal("enabled Now returned the zero stamp")
	}
	h.ObserveSince(t0)
	h.ObserveSince(0)
	if got := h.Snapshot(); got.Count != 1 {
		t.Fatalf("recorded %d observations, want 1 (zero stamp must be a no-op)", got.Count)
	}
}
