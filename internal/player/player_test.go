package player

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBufferStartupNotStall(t *testing.T) {
	b := NewBuffer()
	// First chunk arrives before playback starts: no stall charged.
	if stall := b.CompleteChunk(3.0, 2.002); stall != 0 {
		t.Fatalf("pre-playback chunk charged stall %v", stall)
	}
	if b.Level() != 2.002 {
		t.Fatalf("level = %v, want 2.002", b.Level())
	}
	b.StartPlayback(3.0)
	if !b.Playing() || b.Startup != 3.0 {
		t.Fatalf("playback state wrong: playing=%v startup=%v", b.Playing(), b.Startup)
	}
}

func TestBufferStallAccounting(t *testing.T) {
	b := NewBuffer()
	b.CompleteChunk(1, 2.002)
	b.StartPlayback(1)
	// Transfer of 5 s against a 2.002 s buffer: stall of ~2.998.
	stall := b.CompleteChunk(5, 2.002)
	want := 5 - 2.002
	if math.Abs(stall-want) > 1e-9 {
		t.Fatalf("stall = %v, want %v", stall, want)
	}
	if b.Stalls != 1 {
		t.Fatalf("stall events = %d, want 1", b.Stalls)
	}
	if math.Abs(b.Stalled-want) > 1e-9 {
		t.Fatalf("cumulative stall = %v, want %v", b.Stalled, want)
	}
	// After the stall the buffer holds exactly the new chunk.
	if math.Abs(b.Level()-2.002) > 1e-9 {
		t.Fatalf("level after stall = %v, want 2.002", b.Level())
	}
}

func TestBufferNoStallWhenCovered(t *testing.T) {
	b := NewBuffer()
	b.CompleteChunk(0.5, 2.002)
	b.StartPlayback(0.5)
	b.CompleteChunk(0.5, 2.002) // level: 2.002-0.5+2.002 = 3.504
	if b.Stalls != 0 || b.Stalled != 0 {
		t.Fatal("unexpected stall")
	}
	if math.Abs(b.Level()-3.504) > 1e-9 {
		t.Fatalf("level = %v, want 3.504", b.Level())
	}
}

func TestBufferCapRespected(t *testing.T) {
	b := NewBuffer()
	for i := 0; i < 20; i++ {
		b.CompleteChunk(0.01, 2.002)
	}
	if b.Level() > b.Cap {
		t.Fatalf("level %v exceeds cap %v", b.Level(), b.Cap)
	}
}

func TestBufferInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuffer()
		b.CompleteChunk(rng.Float64()*3, 2.002)
		b.StartPlayback(1)
		totalStall := 0.0
		for i := 0; i < 200; i++ {
			tt := rng.ExpFloat64() * 2
			stall := b.CompleteChunk(tt, 2.002)
			totalStall += stall
			if b.Level() < 0 || b.Level() > b.Cap+1e-9 {
				return false
			}
			if stall < 0 {
				return false
			}
			if w := b.RoomWait(2.002); w > 0 {
				before := b.Level()
				b.Drain(w)
				if b.Level() > before {
					return false
				}
				if b.RoomWait(2.002) > 1e-9 {
					return false
				}
			}
		}
		return math.Abs(totalStall-b.Stalled) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoomWait(t *testing.T) {
	b := NewBuffer()
	if b.RoomWait(2.002) != 0 {
		t.Fatal("empty buffer should have room")
	}
	for i := 0; i < 10; i++ {
		b.CompleteChunk(0, 2.002)
	}
	b.StartPlayback(0)
	w := b.RoomWait(2.002)
	if w <= 0 {
		t.Fatal("full buffer should require waiting")
	}
	b.Drain(w)
	if got := b.RoomWait(2.002); math.Abs(got) > 1e-9 {
		t.Fatalf("after draining RoomWait, want 0, got %v", got)
	}
}

func TestDrainBeforePlaybackIsNoop(t *testing.T) {
	b := NewBuffer()
	b.CompleteChunk(0, 2.002)
	b.Drain(1)
	if b.Level() != 2.002 {
		t.Fatalf("drain before playback changed level to %v", b.Level())
	}
}

func TestPlayedAccounting(t *testing.T) {
	b := NewBuffer()
	b.CompleteChunk(1, 2.002)
	b.StartPlayback(1)
	b.CompleteChunk(1.0, 2.002) // plays 1.0
	b.Drain(0.5)                // plays 0.5
	want := 1.5
	if math.Abs(b.Played-want) > 1e-9 {
		t.Fatalf("played = %v, want %v", b.Played, want)
	}
}

func TestIntendedDurationHeavyTailed(t *testing.T) {
	m := DefaultWatchModel()
	rng := rand.New(rand.NewSource(1))
	n := 20000
	var durations []float64
	var sum float64
	for i := 0; i < n; i++ {
		d := m.IntendedDuration(rng)
		if d < 1 {
			t.Fatal("duration below floor")
		}
		durations = append(durations, d)
		sum += d
	}
	mean := sum / float64(n)
	// Median should be near the configured value.
	median := quickSelectMedian(durations)
	want := m.MedianMinutes * 60
	if median < want*0.9 || median > want*1.1 {
		t.Fatalf("median = %v, want near %v", median, want)
	}
	// Heavy tail: mean well above median.
	if mean < 1.5*median {
		t.Fatalf("mean %v vs median %v: not heavy-tailed", mean, median)
	}
}

func quickSelectMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// simple nth-element via sort-free partition would be overkill here
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestAbandonOnStallMonotone(t *testing.T) {
	m := DefaultWatchModel()
	prob := func(stall float64) float64 {
		rng := rand.New(rand.NewSource(2))
		hits := 0
		for i := 0; i < 5000; i++ {
			if m.AbandonOnStall(rng, stall) {
				hits++
			}
		}
		return float64(hits) / 5000
	}
	if m.AbandonOnStall(rand.New(rand.NewSource(1)), 0) {
		t.Fatal("zero stall should never abandon")
	}
	pSmall, pBig := prob(1), prob(30)
	if pBig <= pSmall {
		t.Fatalf("longer stalls must abandon more: %v vs %v", pSmall, pBig)
	}
}

func TestLeaveAfterChunkQualityCoupling(t *testing.T) {
	m := DefaultWatchModel()
	prob := func(ssim float64) float64 {
		rng := rand.New(rand.NewSource(3))
		hits := 0
		for i := 0; i < 200000; i++ {
			if m.LeaveAfterChunk(rng, ssim) {
				hits++
			}
		}
		return float64(hits) / 200000
	}
	pGood, pBad := prob(17), prob(12)
	if pBad <= pGood {
		t.Fatalf("worse quality must raise leave hazard: good=%v bad=%v", pGood, pBad)
	}
}

func TestStartupPatiencePositive(t *testing.T) {
	m := DefaultWatchModel()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		if m.StartupPatience(rng) < 0 {
			t.Fatal("negative patience")
		}
	}
}

func TestWatchModelDeterministicGivenSeed(t *testing.T) {
	m := DefaultWatchModel()
	a := m.IntendedDuration(rand.New(rand.NewSource(9)))
	b := m.IntendedDuration(rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatal("same seed gave different durations")
	}
}
