// Package player models the client side of a Puffer stream: the playback
// buffer with stall accounting, and the viewer-behavior model (how long
// people intend to watch, and how stalls and picture quality drive
// abandonment). The paper's headline statistics — stall ratio, startup
// delay, watch time, and the Figure 10 time-on-site tail — are all produced
// by this machinery; the quality-coupled hazard is also what couples QoE to
// session duration, the effect §5.4 measures.
//
// Main entry points:
//
//   - Buffer: playback-buffer state for one stream (Level, Playing,
//     StartPlayback, CompleteChunk with stall accounting, Drain, RoomWait)
//     with DefaultBufferCap, Puffer's 15-second client cap.
//   - WatchModel / DefaultWatchModel: viewer behavior — IntendedDuration
//     (heavy-tailed watch intents), StartupPatience, AbandonOnStall, and
//     the per-chunk LeaveAfterChunk hazard that quality modulates.
package player
