package netem

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRateAtWraps(t *testing.T) {
	tr := &Trace{Interval: 1, Rate: []float64{10, 20, 30}}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 10}, {0.99, 10}, {1, 20}, {2.5, 30},
		{3, 10},  // wrap
		{7, 20},  // wrap twice
		{-1, 10}, // clamped
	}
	for _, c := range cases {
		if got := tr.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceSegmentEnd(t *testing.T) {
	tr := &Trace{Interval: 2, Rate: []float64{1, 2}}
	if got := tr.SegmentEnd(0); got != 2 {
		t.Fatalf("SegmentEnd(0) = %v, want 2", got)
	}
	if got := tr.SegmentEnd(3.5); got != 4 {
		t.Fatalf("SegmentEnd(3.5) = %v, want 4", got)
	}
	if got := tr.SegmentEnd(4.0); got != 6 {
		t.Fatalf("SegmentEnd(4.0) = %v, want 6", got)
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Interval: 1, Rate: []float64{10, 20, 30}}
	if got := tr.Mean(); got != 20 {
		t.Fatalf("Mean = %v, want 20", got)
	}
	if got := tr.Min(); got != 10 {
		t.Fatalf("Min = %v, want 10", got)
	}
	if got := tr.Duration(); got != 3 {
		t.Fatalf("Duration = %v, want 3", got)
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Interval: 1, Rate: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Interval: 0, Rate: []float64{1}},
		{Interval: 1, Rate: nil},
		{Interval: 1, Rate: []float64{-5}},
		{Interval: 1, Rate: []float64{math.NaN()}},
		{Interval: 1, Rate: []float64{math.Inf(1)}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestTraceCSVRoundtrip(t *testing.T) {
	tr := Constant(5e6, 10, 0.5)
	tr.Rate[3] = 1e6
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != tr.Interval {
		t.Fatalf("interval = %v, want %v", got.Interval, tr.Interval)
	}
	if len(got.Rate) != len(tr.Rate) {
		t.Fatalf("samples = %d, want %d", len(got.Rate), len(tr.Rate))
	}
	for i := range tr.Rate {
		if math.Abs(got.Rate[i]-tr.Rate[i]) > 0.5 {
			t.Fatalf("sample %d = %v, want %v", i, got.Rate[i], tr.Rate[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time_s,rate_bps\n",
		"a,b\n",
		"0,xyz\n",
		"0\n",
		"1,5\n0,6\n", // non-increasing times
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestConstantTrace(t *testing.T) {
	tr := Constant(1e6, 5, 1)
	if len(tr.Rate) != 5 {
		t.Fatalf("samples = %d, want 5", len(tr.Rate))
	}
	for _, r := range tr.Rate {
		if r != 1e6 {
			t.Fatalf("rate = %v, want 1e6", r)
		}
	}
	if got := Constant(1e6, 0.1, 1); len(got.Rate) != 1 {
		t.Fatalf("tiny duration should still give 1 sample, got %d", len(got.Rate))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gen := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		return GenPuffer(rng, DefaultPufferTraceConfig(10e6), 120).Rate
	}
	a, b := gen(1), gen(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs at sample %d", i)
		}
	}
}

func TestGenPufferProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := 1e6 + float64(uint64(seed)%50)*1e6
		tr := GenPuffer(rng, DefaultPufferTraceConfig(mean), 300)
		if err := tr.Validate(); err != nil {
			return false
		}
		for _, r := range tr.Rate {
			if r < 1e3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPufferHasHeavierTailThanFCC(t *testing.T) {
	// The core distributional contrast: the Puffer-like family should
	// show much larger downside deviation (deep outages) than the
	// FCC-like family at matched mean.
	rng := rand.New(rand.NewSource(7))
	lowFrac := func(tr *Trace) float64 {
		mean := tr.Mean()
		n := 0
		for _, r := range tr.Rate {
			if r < 0.15*mean {
				n++
			}
		}
		return float64(n) / float64(len(tr.Rate))
	}
	var pufferLow, fccLow float64
	const trials = 40
	for i := 0; i < trials; i++ {
		pufferLow += lowFrac(GenPuffer(rng, DefaultPufferTraceConfig(5e6), 600))
		fccLow += lowFrac(GenFCC(rng, DefaultFCCTraceConfig(5e6), 600))
	}
	pufferLow /= trials
	fccLow /= trials
	if pufferLow <= fccLow+0.005 {
		t.Fatalf("deep-outage fraction: puffer %.4f vs fcc %.4f — want clearly heavier puffer tail", pufferLow, fccLow)
	}
}

func TestGenCS2PHasDiscreteStates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultCS2PTraceConfig(2.4e6)
	tr := GenCS2P(rng, cfg, 1200)
	// Nearly all samples should sit within a few percent of one of the
	// configured state levels.
	near := 0
	for _, r := range tr.Rate {
		for _, s := range cfg.States {
			if math.Abs(r-s)/s < 0.10 {
				near++
				break
			}
		}
	}
	frac := float64(near) / float64(len(tr.Rate))
	if frac < 0.95 {
		t.Fatalf("only %.2f of CS2P samples near a discrete state", frac)
	}
}

func TestPufferSamplerSlowPathFraction(t *testing.T) {
	// The paper: slow paths (mean < 6 Mbit/s) are a meaningful minority
	// of streams (~20%). Check the sampler is in a plausible band.
	rng := rand.New(rand.NewSource(11))
	s := PufferPaths{}
	slow := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := s.Sample(rng, 60)
		if p.Trace.Mean() < 6e6 {
			slow++
		}
	}
	frac := float64(slow) / n
	if frac < 0.12 || frac > 0.45 {
		t.Fatalf("slow-path fraction = %.3f, want within [0.12, 0.45]", frac)
	}
}

func TestFCCSamplerBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := FCCPaths{}
	for i := 0; i < 500; i++ {
		p := s.Sample(rng, 60)
		if p.BaseRTT != 0.040 {
			t.Fatalf("FCC path RTT = %v, want the fixed 40 ms shell", p.BaseRTT)
		}
		m := p.Trace.Mean()
		if m < 0.1e6 || m > 40e6 {
			t.Fatalf("FCC session mean %v outside plausible bounds", m)
		}
	}
}

func TestSamplerPathsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, s := range []Sampler{PufferPaths{}, FCCPaths{}, CS2PPaths{}} {
		for i := 0; i < 100; i++ {
			p := s.Sample(rng, 120)
			if err := p.Trace.Validate(); err != nil {
				t.Fatalf("%s: invalid trace: %v", s.Name(), err)
			}
			if p.BaseRTT <= 0 || p.BaseRTT > 1 {
				t.Fatalf("%s: implausible RTT %v", s.Name(), p.BaseRTT)
			}
			if p.QueueCapacity <= 0 {
				t.Fatalf("%s: non-positive queue capacity", s.Name())
			}
			if p.Trace.Duration() < 120 {
				t.Fatalf("%s: trace shorter than requested", s.Name())
			}
		}
	}
}

func TestSamplerNames(t *testing.T) {
	if (PufferPaths{}).Name() != "puffer" || (FCCPaths{}).Name() != "fcc" || (CS2PPaths{}).Name() != "cs2p" {
		t.Fatal("sampler names changed; figure code keys off them")
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 10) != 5 || clamp(-1, 1, 10) != 1 || clamp(99, 1, 10) != 10 {
		t.Fatal("clamp broken")
	}
}
