package experiment

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"

	"puffer/internal/abr"
	"puffer/internal/stats"
	"puffer/internal/telemetry"
)

// Scheme pairs a name with a factory producing fresh per-session algorithm
// instances (algorithms are stateful and not concurrency-safe).
type Scheme struct {
	Name string
	New  func() abr.Algorithm
}

// Config describes one randomized controlled trial.
type Config struct {
	Env     Env
	Schemes []Scheme
	// Sessions is the total number of sessions randomized across schemes.
	Sessions int
	Seed     int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Day stamps collected telemetry (for training windows).
	Day int
	// Recorder, if set, observes every sent chunk. Must be safe for
	// concurrent use.
	Recorder Recorder
}

// Result holds every session of a trial.
type Result struct {
	Sessions []SessionResult
}

// Run executes the trial: sessions are assigned to schemes by blinded
// randomization (the first draw of each session's own deterministic RNG),
// and simulated in parallel. Results are deterministic for a given Config
// regardless of scheduling.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Schemes) == 0 {
		return nil, fmt.Errorf("experiment: no schemes configured")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("experiment: Sessions = %d, must be positive", cfg.Sessions)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Sessions {
		workers = cfg.Sessions
	}

	results := make([]SessionResult, cfg.Sessions)
	var wg sync.WaitGroup
	ids := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				results[id] = cfg.RunOne(id)
			}
		}()
	}
	for id := 0; id < cfg.Sessions; id++ {
		ids <- id
	}
	close(ids)
	wg.Wait()
	return &Result{Sessions: results}, nil
}

// RunOne simulates session `id` of the trial: the session's own
// deterministic RNG makes the blinded arm assignment as its first draw, then
// drives the simulation. Results depend only on (Config, id), so callers may
// run ids in any order or partition — the sharded runner uses this to fold
// sessions into per-shard accumulators without materializing a full Result.
func (cfg *Config) RunOne(id int) SessionResult {
	return cfg.RunOneHooked(id, nil)
}

// RunOneHooked is RunOne with the session's decisions routed through hook
// (and the freshly built algorithm exposed to it); the fleet engine parks
// sessions there. A nil hook is exactly RunOne.
func (cfg *Config) RunOneHooked(id int, hook DecideHook) SessionResult {
	rng := rand.New(rand.NewSource(mix(cfg.Seed, int64(id))))
	arm := rng.Intn(len(cfg.Schemes))
	scheme := cfg.Schemes[arm]
	alg := scheme.New()
	env := cfg.Env
	return RunSessionHooked(&env, alg, rng, id, scheme.Name, cfg.Day, cfg.Recorder, hook)
}

// SessionSeed is the RNG seed of session `id` in a trial with this seed.
// Exported so external drivers (the wall-clock load generator) can
// reproduce a session's blinded arm assignment — the first Intn draw of
// rand.New(rand.NewSource(SessionSeed(seed, id))) — without running it.
func SessionSeed(seed, id int64) int64 { return mix(seed, id) }

// mix hashes (seed, id) into an independent RNG seed (splitmix64 finalizer).
func mix(seed, id int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// nameSeed hashes a scheme name into RNG-seed material. Analysis code mixes
// this with the caller's seed so every scheme gets an independent bootstrap
// RNG; hashing the content (FNV-1a) rather than anything as coarse as the
// name's length keeps equal-length names (e.g. "BBA" vs "MPC") independent.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// SchemeStats is one row of the paper's Figure 1 / Figure 8 analysis.
type SchemeStats struct {
	Name string

	Sessions    int
	Streams     int
	NeverPlayed int
	ShortWatch  int
	BadDecoder  int
	Considered  int

	WatchYears float64

	// StallRatio is total-stall/total-watch with a bootstrap 95% CI.
	StallRatio stats.Interval
	// SSIM is the duration-weighted mean SSIM (dB) with its 95% CI.
	SSIM stats.Interval
	// SSIMVar is the mean within-stream chunk-to-chunk |dSSIM| (dB).
	SSIMVar float64
	// MeanBitrate is the mean delivered video bitrate (bits/s).
	MeanBitrate float64
	// MeanStartup and MeanFirstSSIM summarize cold start (Figure 9).
	MeanStartup   stats.Interval
	MeanFirstSSIM stats.Interval
	// MeanDuration is the mean session time-on-site in seconds with CI
	// (Figure 10).
	MeanDuration stats.Interval
}

// AnalysisFilter selects which eligible streams enter the analysis.
type AnalysisFilter int

const (
	// AllPaths includes every eligible stream.
	AllPaths AnalysisFilter = iota
	// SlowPaths keeps streams on paths with mean delivery rate under
	// 6 Mbit/s, the Figure 8 right-hand panel.
	SlowPaths
)

// Analyze computes per-scheme statistics from a trial result. Bootstrap
// uses the given seed so analyses are reproducible. It is a thin wrapper
// over the mergeable-accumulator path: fold every session into a TrialAcc,
// then merge-then-bootstrap.
func Analyze(res *Result, filter AnalysisFilter, seed int64) []SchemeStats {
	t := NewTrialAcc(filter)
	for i := range res.Sessions {
		t.AddSession(&res.Sessions[i])
	}
	return t.Analyze(seed)
}

// SessionDurations returns per-scheme session durations (seconds) for CCDF
// plots (Figure 10).
func SessionDurations(res *Result) map[string][]float64 {
	out := map[string][]float64{}
	for _, s := range res.Sessions {
		out[s.Scheme] = append(out[s.Scheme], s.Duration)
	}
	return out
}

// EligibleStreams returns the considered streams per scheme.
func EligibleStreams(res *Result, filter AnalysisFilter) map[string][]telemetry.StreamSummary {
	out := map[string][]telemetry.StreamSummary{}
	for _, sess := range res.Sessions {
		for _, s := range sess.Streams {
			if !s.Eligible() {
				continue
			}
			if filter == SlowPaths && !s.SlowPath() {
				continue
			}
			out[sess.Scheme] = append(out[sess.Scheme], s)
		}
	}
	return out
}

// ConsortArm is one column of the Figure A1 CONSORT flow diagram.
type ConsortArm struct {
	Scheme      string
	Sessions    int
	Streams     int
	NeverPlayed int
	ShortWatch  int
	BadDecoder  int
	Considered  int
	WatchYears  float64
}

// Consort summarizes the experimental flow per arm.
func Consort(res *Result) []ConsortArm {
	st := Analyze(res, AllPaths, 0)
	out := make([]ConsortArm, len(st))
	for i, s := range st {
		out[i] = ConsortArm{
			Scheme: s.Name, Sessions: s.Sessions, Streams: s.Streams,
			NeverPlayed: s.NeverPlayed, ShortWatch: s.ShortWatch,
			BadDecoder: s.BadDecoder, Considered: s.Considered,
			WatchYears: s.WatchYears,
		}
	}
	return out
}
