package scenario

// Option mutates a Spec under construction. Options compose left to right;
// New applies them to a zero Spec, so anything not set rides on the
// WithDefaults resolution like every other unset field.
type Option func(*Spec)

// New builds a Spec from functional options — the Go-caller counterpart of
// authoring a JSON spec file.
func New(opts ...Option) Spec {
	var s Spec
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Named sets the documentation-only name and notes.
func Named(name, notes string) Option {
	return func(s *Spec) { s.Name, s.Notes = name, notes }
}

// World selects the environment: "insitu" or "emulation".
func World(w string) Option { return func(s *Spec) { s.Env.World = w } }

// PathFamily overrides the world's path family ("puffer", "fcc", "cs2p",
// or "congested").
func PathFamily(p string) Option { return func(s *Spec) { s.Env.Paths = p } }

// Days sets the number of deployment days.
func Days(n int) Option { return func(s *Spec) { s.Daily.Days = n } }

// Sessions sets each day's randomized-trial size.
func Sessions(n int) Option { return func(s *Spec) { s.Daily.Sessions = n } }

// Window sets the sliding retraining window in days (0 = all days so far).
func Window(n int) Option { return func(s *Spec) { s.Daily.Window = ptr(n) } }

// Retrain toggles the nightly warm-start retraining.
func Retrain(on bool) Option { return func(s *Spec) { s.Daily.Retrain = ptr(on) } }

// Ablation toggles the frozen-model companion run.
func Ablation(on bool) Option { return func(s *Spec) { s.Daily.Ablation = ptr(on) } }

// Seed pins the experiment seed.
func Seed(v int64) Option { return func(s *Spec) { s.Seed = ptr(v) } }

// Shard sets sessions per aggregation shard.
func Shard(n int) Option { return func(s *Spec) { s.ShardSize = n } }

// Hidden sets the TTP hidden-layer sizes; Hidden() with no arguments is
// the linear-model ablation.
func Hidden(sizes ...int) Option {
	return func(s *Spec) {
		if sizes == nil {
			sizes = []int{}
		}
		s.Model.Hidden = sizes
	}
}

// Horizon sets the TTP/MPC lookahead in chunks.
func Horizon(n int) Option { return func(s *Spec) { s.Model.Horizon = n } }

// Epochs sets the nightly training epochs.
func Epochs(n int) Option { return func(s *Spec) { s.Train.Epochs = n } }

// BatchSize sets the training minibatch size.
func BatchSize(n int) Option { return func(s *Spec) { s.Train.BatchSize = n } }

// LR sets the Adam learning rate.
func LR(v float64) Option { return func(s *Spec) { s.Train.LR = v } }

// RecencyBase sets the per-day-of-age training weight multiplier (0 or 1 =
// uniform).
func RecencyBase(v float64) Option { return func(s *Spec) { s.Train.RecencyBase = ptr(v) } }

// Drift selects a named drift preset ("none", "decay", "shift", "mix").
func Drift(preset string) Option { return func(s *Spec) { s.Drift.Preset = preset } }

// Mix migrates the population toward another family over a linear ramp.
func Mix(family string, startDay, rampDays int) Option {
	return func(s *Spec) {
		s.Drift.Mix = ptr(family)
		s.Drift.MixStartDay = ptr(startDay)
		s.Drift.MixRampDays = ptr(rampDays)
	}
}

// Engine selects the execution engine ("session", "fleet", or "dist").
func Engine(kind string) Option { return func(s *Spec) { s.Engine.Kind = kind } }

// DistWorkers selects the dist engine with the given worker-process count
// (0 = GOMAXPROCS).
func DistWorkers(n int) Option {
	return func(s *Spec) {
		s.Engine.Kind = "dist"
		s.Engine.DistWorkers = n
	}
}

// ArrivalRate sets a Poisson arrival process at the given intensity
// (sessions per virtual second).
func ArrivalRate(rate float64) Option {
	return func(s *Spec) {
		s.Engine.Arrival.Process = "poisson"
		s.Engine.Arrival.Rate = rate
	}
}

// Bursts sets a flash-crowd arrival process: bursts of `burst` sessions
// every `gap` virtual seconds.
func Bursts(burst int, gap float64) Option {
	return func(s *Spec) {
		s.Engine.Arrival.Process = "burst"
		s.Engine.Arrival.Burst = burst
		s.Engine.Arrival.Gap = gap
	}
}

// Tick sets the fleet engine's inference-batching tick (virtual seconds).
func Tick(v float64) Option { return func(s *Spec) { s.Engine.Tick = v } }
