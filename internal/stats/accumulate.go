package stats

import "math/rand"

// This file holds the mergeable accumulators behind sharded aggregation:
// shards (or days) of an experiment each fold their streams into private
// accumulators, the accumulators are merged in a deterministic order, and
// the bootstrap / standard-error machinery runs once on the merged state.
// Only the per-stream tuples the estimators actually need are retained, so
// aggregation streams over session results instead of materializing them.

// StreamAcc is a mergeable accumulator of per-stream (watch, stall) points —
// the resampling unit of the paper's §3.4 bootstrap. Exported fields make it
// serializable (gob/JSON) for checkpointing.
type StreamAcc struct {
	Points []StreamPoint
}

// Add folds one stream into the accumulator.
func (a *StreamAcc) Add(p StreamPoint) { a.Points = append(a.Points, p) }

// Merge appends another accumulator's streams. Merge order must be
// deterministic for reproducible bootstraps; callers merge shards in shard
// order.
func (a *StreamAcc) Merge(b *StreamAcc) { a.Points = append(a.Points, b.Points...) }

// Len returns the number of accumulated streams.
func (a *StreamAcc) Len() int { return len(a.Points) }

// StallRatio returns the aggregate stall ratio of the accumulated streams.
func (a *StreamAcc) StallRatio() float64 { return StallRatio(a.Points) }

// StreamYears returns the accumulated watch time in stream-years.
func (a *StreamAcc) StreamYears() float64 { return StreamYears(a.Points) }

// Bootstrap is the merge-then-bootstrap path: a percentile-bootstrap CI on
// the aggregate stall ratio over the merged streams. Identical to calling
// BootstrapStallRatio on the concatenated points.
func (a *StreamAcc) Bootstrap(rng *rand.Rand, iters int, conf float64) Interval {
	return BootstrapStallRatio(rng, a.Points, iters, conf)
}

// WeightedAcc is a mergeable accumulator of weighted scalar samples, feeding
// the weighted-standard-error interval used for SSIM and the unit-weight
// means (startup delay, first-chunk SSIM, session duration).
type WeightedAcc struct {
	Values  []float64
	Weights []float64
}

// Add folds one weighted sample into the accumulator.
func (a *WeightedAcc) Add(v, w float64) {
	a.Values = append(a.Values, v)
	a.Weights = append(a.Weights, w)
}

// AddUnit folds one unit-weight sample into the accumulator.
func (a *WeightedAcc) AddUnit(v float64) { a.Add(v, 1) }

// Merge appends another accumulator's samples in order.
func (a *WeightedAcc) Merge(b *WeightedAcc) {
	a.Values = append(a.Values, b.Values...)
	a.Weights = append(a.Weights, b.Weights...)
}

// Len returns the number of accumulated samples.
func (a *WeightedAcc) Len() int { return len(a.Values) }

// Interval returns the weighted mean with its conf-level interval over the
// merged samples, exactly as WeightedMeanSE on the concatenated series.
func (a *WeightedAcc) Interval(conf float64) Interval {
	return WeightedMeanSE(a.Values, a.Weights, conf)
}
