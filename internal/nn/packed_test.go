package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestPackedForwardBitwiseIdentical: the packed (transposed, possibly SIMD)
// forward must reproduce MLP.ForwardBatchInto bit for bit, across blocking
// remainders (output widths around the 16/8/4 vector blocks and the scalar
// tail), batch sizes, and sign patterns that exercise the ReLU edge.
func TestPackedForwardBitwiseIdentical(t *testing.T) {
	shapes := [][]int{
		{22, 64, 64, 21}, // the TTP
		{5, 21},          // affine ablation, 16+4+1 output split
		{7, 3, 2},        // scalar tails only
		{4, 130, 1},      // many 16-blocks plus tails, single output
		{97, 8, 5},       // wide input, one 8-block
		{1, 16},          // single input, exact 16-block
		{3, 4, 4, 4, 2},  // deep and narrow
		{10, 33},         // 16+16+1
	}
	rng := rand.New(rand.NewSource(42))
	for _, sizes := range shapes {
		m := NewMLP(rng, sizes...)
		// Mix in negative biases so hidden pre-activations cross zero.
		for l := range m.B {
			for i := range m.B[l] {
				m.B[l][i] = rng.NormFloat64() * 0.3
			}
		}
		p := m.NewPacked()
		for _, rows := range []int{1, 2, 3, 7, 16, 41} {
			xs := make([]float64, rows*m.InputSize())
			for i := range xs {
				xs[i] = rng.NormFloat64() * 2
			}
			wsA := m.NewBatchWorkspace(rows)
			wsB := p.NewBatchWorkspace(rows)
			want := m.ForwardBatchInto(wsA, xs, rows)
			got := p.ForwardBatchInto(wsB, xs, rows)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("shape %v rows %d: logit %d differs: %v vs %v",
						sizes, rows, i, want[i], got[i])
				}
			}
			wantD := m.PredictDistBatch(wsA, xs, rows, nil)
			gotD := p.PredictDistBatch(wsB, xs, rows, nil)
			for i := range wantD {
				if math.Float64bits(wantD[i]) != math.Float64bits(gotD[i]) {
					t.Fatalf("shape %v rows %d: dist %d differs", sizes, rows, i)
				}
			}
		}
	}
}

// TestReluVecMatchesScalar: the branchless SIMD ReLU must reproduce
// reluInPlace element for element, including the edge cases the scalar rule
// pins down: NaN -> +0, -0 -> +0, +0 stays +0, negatives -> +0, positives
// pass through — at every vector-width remainder.
func TestReluVecMatchesScalar(t *testing.T) {
	if !useAVX2 {
		t.Skip("no SIMD on this machine")
	}
	base := []float64{
		math.NaN(), math.Copysign(0, -1), 0, -1e-300, 1e-300, -3.5, 2.25,
		math.Inf(1), math.Inf(-1), 7, -7, 0.5, -0.5, 42, -42, 1, -1,
	}
	for n := 0; n <= len(base); n++ {
		a := append([]float64(nil), base[:n]...)
		b := append([]float64(nil), base[:n]...)
		reluInPlace(a)
		reluVec(b)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("n=%d: element %d: scalar %x vs simd %x",
					n, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
}

// TestPackedIsASnapshot: mutating the source network after NewPacked must
// not change packed results (the inference service depends on this to serve
// a consistent model while training mutates a clone elsewhere).
func TestPackedIsASnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 6, 9, 4)
	p := m.NewPacked()
	xs := []float64{0.3, -1, 2, 0.5, -0.2, 1.1}
	ws := p.NewBatchWorkspace(1)
	before := append([]float64(nil), p.ForwardBatchInto(ws, xs, 1)...)
	for l := range m.W {
		for i := range m.W[l] {
			m.W[l][i] += 1
		}
	}
	after := p.ForwardBatchInto(ws, xs, 1)
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("packed output changed after source mutation at %d", i)
		}
	}
}

// BenchmarkForwardPacked measures the packed kernel against the portable
// batched kernel on the TTP shape at a serving-scale batch — the per-row
// cost the fleet engine's cross-session batches pay.
func BenchmarkForwardPacked(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 22, 64, 64, 21)
	p := m.NewPacked()
	for _, rows := range []int{10, 200} {
		xs := make([]float64, rows*22)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		wsA := m.NewBatchWorkspace(rows)
		wsB := p.NewBatchWorkspace(rows)
		b.Run(benchName("portable", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.ForwardBatchInto(wsA, xs, rows)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
		b.Run(benchName("packed", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ForwardBatchInto(wsB, xs, rows)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}

func benchName(kind string, rows int) string {
	if rows == 10 {
		return kind + "/rows-10"
	}
	return kind + "/rows-200"
}
