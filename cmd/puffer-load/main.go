// Command puffer-load drives a running puffer-serve daemon with the full
// session population of a scenario day: one TCP connection per session,
// arrivals on the plan's own schedule, the viewer/player/network simulation
// client-side and every ABR decision served remotely. Session outcomes fold
// through the canonical sharded aggregation, so the per-scheme table a
// clean run prints is byte-identical to the same day on the virtual-time
// engine — and -virtual prints exactly that twin, which is what the
// differential smoke compares.
//
//	puffer-load -scenario stationary -day 1 -addr 127.0.0.1:9977
//	puffer-load -scenario stationary -day 1 -virtual        # the twin
//	puffer-load -day 0 -sessions 12000 -arrival-rate 40 -timescale 1
//
// The deterministic results table goes to stdout; wall-clock performance
// (sessions/sec, decisions, peak concurrency) goes to stderr. Exit status
// is nonzero if any session failed or saw more than one model generation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"puffer/internal/obs"
	"puffer/internal/obscli"
	"puffer/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-load: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("puffer-load", flag.ContinueOnError)
	var (
		scenarioArg = fs.String("scenario", "stationary", "scenario to drive: a registered name or a spec .json file")
		day         = fs.Int("day", 1, "deployment day of the scenario (must match the daemon)")
		addr        = fs.String("addr", "127.0.0.1:9977", "daemon address")
		virtual     = fs.Bool("virtual", false, "run the deterministic virtual-time twin in-process instead of driving a daemon")
		timescale   = fs.Float64("timescale", 0, "wall seconds per virtual second: pace arrivals and decisions against real time (0 = as fast as the daemon answers)")
		concurrency = fs.Int("concurrency", 0, "bound concurrent sessions (0 = 256 unpaced, unlimited paced)")
		sessions    = fs.Int("sessions", 0, "override the scenario's per-day session count (0 = spec value)")
		arrivalRate = fs.Float64("arrival-rate", 0, "override the arrival process with poisson at this rate in sessions per virtual second (0 = spec value)")
		workers     = fs.Int("workers", 0, "warmup/virtual-engine parallelism (0 = GOMAXPROCS)")
		quiet       = fs.Bool("q", false, "suppress progress logging")
	)
	var obsOpts obscli.Options
	obsOpts.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	spec, err := serve.ResolveSpec(*scenarioArg, *sessions, *arrivalRate)
	if err != nil {
		return err
	}
	plan, err := serve.NewPlan(spec, *day)
	if err != nil {
		return err
	}

	stopObs, err := obsOpts.Start(false, logf)
	if err != nil {
		return err
	}
	defer stopObs()

	// The wire-RTT summary is sourced from client-side spans, so a load run
	// without explicit trace flags still installs a local tracer (every
	// session sampled). Span recording is wall-side only: the results table
	// on stdout stays byte-identical either way.
	if !*virtual && !obsOpts.Tracing() {
		obs.SetEnabled(true)
		obs.SetTracer(obs.NewTracer(1, 0))
	}

	if *virtual {
		logf("warming plan %s for the virtual twin", plan.Hash)
		if err := plan.Warm(*workers, logf); err != nil {
			return err
		}
		stats, fst, err := serve.RunVirtual(plan, *workers)
		if err != nil {
			return err
		}
		serve.WriteStats(os.Stdout, plan.Day, stats)
		logf("virtual twin: %d sessions, peak %d concurrent (virtual time)", plan.Sessions, fst.PeakConcurrent)
		return nil
	}

	logf("driving %s at %s (%d sessions)", plan.Hash, *addr, plan.Sessions)
	res, err := serve.RunLoad(serve.LoadConfig{
		Addr:        *addr,
		Plan:        plan,
		Timescale:   *timescale,
		Concurrency: *concurrency,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	serve.WriteStats(os.Stdout, plan.Day, res.Stats)
	fmt.Fprintf(os.Stderr,
		"puffer-load: %d sessions (%d failed), %d decisions, peak %d concurrent, %.1fs wall, %.1f sessions/s\n",
		res.Sessions, res.Failed, res.Decisions, res.PeakConcurrent, res.WallSeconds, res.SessionsPerSec())
	if tr := obs.Tracing(); tr != nil {
		if n, qs := obs.TraceQuantiles(tr.Snapshot(), "wire_rtt", []float64{0.5, 0.99, 0.999}); n > 0 {
			fmt.Fprintf(os.Stderr, "puffer-load: wire RTT p50 %v p99 %v p999 %v over %d traced decisions\n",
				time.Duration(qs[0]), time.Duration(qs[1]), time.Duration(qs[2]), n)
		}
	}
	if res.Failed > 0 || res.ModelViolations > 0 {
		return fmt.Errorf("%d sessions failed, %d model violations", res.Failed, res.ModelViolations)
	}
	return nil
}
