package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save writes the network to w in gob format.
func (m *MLP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("nn: encoding model: %w", err)
	}
	return nil
}

// Load reads a network in gob format from r. The decoded parameters are
// re-packed into the contiguous slab layout the batched kernel expects, so
// loaded models serve exactly as fast as freshly constructed ones.
func Load(r io.Reader) (*MLP, error) {
	var m MLP
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	m.pack()
	return &m, nil
}

// SaveFile writes the network to the named file.
func (m *MLP) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("nn: writing model file: %w", err)
	}
	return nil
}

// LoadFile reads a network from the named file.
func LoadFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: opening model file: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// validate checks structural consistency of a deserialized model.
func (m *MLP) validate() error {
	if len(m.Sizes) < 2 {
		return fmt.Errorf("nn: model has %d layers, need at least 2", len(m.Sizes))
	}
	if len(m.W) != len(m.Sizes)-1 || len(m.B) != len(m.Sizes)-1 {
		return fmt.Errorf("nn: model has %d weight layers, want %d", len(m.W), len(m.Sizes)-1)
	}
	for l := 0; l < len(m.Sizes)-1; l++ {
		if m.Sizes[l] <= 0 || m.Sizes[l+1] <= 0 {
			return fmt.Errorf("nn: model layer %d has non-positive size", l)
		}
		if len(m.W[l]) != m.Sizes[l]*m.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d weights have %d entries, want %d", l, len(m.W[l]), m.Sizes[l]*m.Sizes[l+1])
		}
		if len(m.B[l]) != m.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d biases have %d entries, want %d", l, len(m.B[l]), m.Sizes[l+1])
		}
	}
	return nil
}
