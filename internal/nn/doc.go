// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's two learned components: the Fugu Transmission Time
// Predictor (a per-horizon-step classifier over transmission-time bins) and
// the Pensieve policy network. It provides fully-connected layers with ReLU
// activations, a softmax/cross-entropy classification head or a linear/MSE
// regression head, SGD and Adam optimizers, per-sample weighting (the
// paper's recency-weighted training), and gob serialization.
//
// Inference has three paths. The scalar path (MLP.ForwardInto,
// MLP.PredictDist with a Workspace) runs a single sample through per-layer
// dot products. The batched path (MLP.ForwardBatchInto, MLP.PredictDistBatch
// with a BatchWorkspace) runs B samples per call over flat row-major
// activation matrices with a register-blocked kernel; it produces bitwise
// identical outputs to the scalar path (same per-element summation order)
// while amortizing weight loads across samples. Hot callers — the MPC
// distribution fill in particular — should batch. The packed path
// (MLP.NewPacked -> PackedMLP) is an immutable transposed-weight snapshot
// for serving: on amd64 with AVX2/AVX-512 it runs hand-written vector
// kernels that keep every output's ascending-input accumulation and
// separate multiply/add roundings (no FMA), so packed results are bitwise
// identical to the other two paths; elsewhere it falls back to the batched
// kernel. The fleet engine's cross-session InferenceService is its main
// consumer.
//
// Training is batched through the same kernels: Trainer.TrainClassBatch
// runs the minibatch forward, the gradient accumulation, and the delta
// propagation as matrix passes whose per-element accumulation order matches
// the retained per-sample reference exactly (differential-tested to
// bitwise-equal weights).
//
// Main entry points:
//
//   - MLP / NewMLP: the network; Forward*, PredictDist* for inference,
//     Save/Load (gob) for serialization. Parameters live in one contiguous
//     slab, which is what the batched kernel exploits.
//   - Trainer with an Optimizer (SGD, Adam): minibatch supervised training
//     with optional per-sample weights.
//   - CrossEntropy / Accuracy: batched evaluation sweeps.
//   - Softmax, LogSumExp, ArgMax, Dot: the numeric utilities shared by the
//     predictors.
//
// Everything is deterministic given a seeded *rand.Rand. All math is
// float64.
package nn
