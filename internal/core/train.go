package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"puffer/internal/abr"
	"puffer/internal/nn"
	"puffer/internal/tcpsim"
)

// ChunkObs is the telemetry Fugu aggregates per sent chunk: what was sent,
// how long it took, and the tcp_info snapshot at decision time. Day stamps
// support the sliding training window and recency weighting.
type ChunkObs struct {
	Size      float64 // bytes
	TransTime float64 // seconds
	Info      tcpsim.Info
	Day       int
}

// StreamObs is one stream's chunk sequence, in send order.
type StreamObs struct {
	Chunks []ChunkObs
}

// Dataset is the training corpus assembled from deployment telemetry.
type Dataset struct {
	Streams []StreamObs
}

// NumChunks returns the total chunk count across streams.
func (d *Dataset) NumChunks() int {
	n := 0
	for _, s := range d.Streams {
		n += len(s.Chunks)
	}
	return n
}

// MaxDay returns the most recent day stamp in the dataset (0 if empty).
func (d *Dataset) MaxDay() int {
	m := 0
	for _, s := range d.Streams {
		for _, c := range s.Chunks {
			if c.Day > m {
				m = c.Day
			}
		}
	}
	return m
}

// Examples materializes supervised examples for horizon step `step`:
// features are assembled from the state at decision time i (history of
// chunks before i, tcp_info at i, and the size of chunk i+step); the label
// is the observed outcome of chunk i+step. Windowing and recency weights
// follow cfg.
func (d *Dataset) Examples(t *TTP, step int, cfg TrainConfig) (xs [][]float64, labels []int, weights []float64) {
	fc := t.Cfg
	maxDay := d.MaxDay()
	hist := make([]abr.ChunkRecord, 0, fc.HistLen)
	for _, s := range d.Streams {
		for i := 0; i+step < len(s.Chunks); i++ {
			target := s.Chunks[i+step]
			if cfg.WindowDays > 0 && maxDay-target.Day >= cfg.WindowDays {
				continue
			}
			hist = hist[:0]
			lo := i - fc.HistLen
			if lo < 0 {
				lo = 0
			}
			for _, c := range s.Chunks[lo:i] {
				hist = append(hist, abr.ChunkRecord{Size: c.Size, TransTime: c.TransTime})
			}
			x := make([]float64, fc.Dim())
			fc.Assemble(x, hist, s.Chunks[i].Info, target.Size)
			xs = append(xs, x)
			labels = append(labels, t.Label(target.Size, target.TransTime))
			w := 1.0
			if cfg.RecencyBase > 0 && cfg.RecencyBase != 1 {
				age := maxDay - target.Day
				w = pow(cfg.RecencyBase, age)
			}
			weights = append(weights, w)
		}
	}
	return xs, labels, weights
}

func pow(b float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= b
	}
	return p
}

// TrainConfig controls supervised TTP training, mirroring §4.3: daily
// retraining over a 14-day window with recent days weighted more heavily,
// warm-started from the previous model.
type TrainConfig struct {
	Epochs      int     // passes over the data (default 8)
	BatchSize   int     // minibatch size (default 64)
	LR          float64 // Adam learning rate (default 1e-3)
	Seed        int64   // shuffling seed
	WindowDays  int     // include only the last N days; 0 = all
	RecencyBase float64 // per-day-of-age weight multiplier; 0 or 1 = uniform
}

// DefaultTrainConfig returns the study's training defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 8, BatchSize: 64, LR: 1e-3, Seed: 1, WindowDays: 14, RecencyBase: 0.9}
}

// TrainResult reports per-step final training losses (nats).
type TrainResult struct {
	Loss     []float64
	Examples []int
}

// Train fits the TTP's per-step networks on the dataset. The TTP is
// modified in place (call Clone first to warm-start without destroying the
// old model). The per-step networks are independent, so they train in
// parallel — the paper parallelizes its multi-network training the same way.
func Train(t *TTP, data *Dataset, cfg TrainConfig) (TrainResult, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	res := TrainResult{Loss: make([]float64, len(t.Nets)), Examples: make([]int, len(t.Nets))}
	errs := make([]error, len(t.Nets))
	var wg sync.WaitGroup
	for step := range t.Nets {
		wg.Add(1)
		go func(step int) {
			defer wg.Done()
			errs[step] = trainStep(t, data, cfg, step, &res)
		}(step)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// trainStep fits one horizon step's network.
func trainStep(t *TTP, data *Dataset, cfg TrainConfig, step int, res *TrainResult) error {
	xs, labels, weights := data.Examples(t, step, cfg)
	if len(xs) == 0 {
		return fmt.Errorf("core: no training examples for horizon step %d", step)
	}
	res.Examples[step] = len(xs)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(step)))
	trainer := nn.NewTrainer(t.Nets[step], &nn.Adam{LR: cfg.LR})
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	bx := make([][]float64, 0, cfg.BatchSize)
	bl := make([]int, 0, cfg.BatchSize)
	bw := make([]float64, 0, cfg.BatchSize)
	var last float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		sum, batches := 0.0, 0
		for at := 0; at < len(idx); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx, bl, bw = bx[:0], bl[:0], bw[:0]
			for _, j := range idx[at:end] {
				bx = append(bx, xs[j])
				bl = append(bl, labels[j])
				bw = append(bw, weights[j])
			}
			sum += trainer.TrainClassBatch(bx, bl, bw)
			batches++
		}
		last = sum / float64(batches)
	}
	res.Loss[step] = last
	return nil
}

// EvalResult reports held-out predictor quality for one horizon step — the
// metrics behind Figure 7.
type EvalResult struct {
	CrossEntropy float64 // nats; lower is better
	Accuracy     float64 // fraction of exactly-right bins
	Within1      float64 // fraction within one bin of the truth
}

// evalBatchRows is how many examples the evaluation sweeps push through the
// TTP per batched forward pass.
const evalBatchRows = 256

// forEachDistRow streams the dataset through the predictor's network for
// `step` in batches and calls visit with each example's index and raw
// output distribution. The dist slice is reused between calls. The sweep
// snapshots the step's net into its packed (SIMD) serving form once —
// bitwise identical to the portable batched kernel behind
// Predictor.PredictFeaturesBatch, so evaluation metrics never depend on
// which kernel ran.
func forEachDistRow(pred *Predictor, step int, xs [][]float64, visit func(i int, dist []float64)) {
	rows := evalBatchRows
	if len(xs) < rows {
		rows = len(xs)
	}
	step = pred.clampStep(step)
	packed := pred.TTP.Nets[step].NewPacked()
	ws := packed.NewBatchWorkspace(rows)
	dim := pred.TTP.Cfg.Dim()
	buf := make([]float64, rows*dim)
	dists := make([]float64, rows*abr.NumBins)
	for at := 0; at < len(xs); at += rows {
		b := len(xs) - at
		if b > rows {
			b = rows
		}
		for r := 0; r < b; r++ {
			if len(xs[at+r]) != dim {
				panic(fmt.Sprintf("core: example %d has %d features, want %d", at+r, len(xs[at+r]), dim))
			}
			copy(buf[r*dim:(r+1)*dim], xs[at+r])
		}
		packed.PredictDistBatch(ws, buf[:b*dim], b, dists[:b*abr.NumBins])
		for r := 0; r < b; r++ {
			visit(at+r, dists[r*abr.NumBins:(r+1)*abr.NumBins])
		}
	}
}

// Evaluate scores the TTP on a dataset (typically held-out) at one step.
func Evaluate(t *TTP, data *Dataset, step int) EvalResult {
	cfg := TrainConfig{} // no windowing or weighting for evaluation
	xs, labels, _ := data.Examples(t, step, cfg)
	if len(xs) == 0 {
		return EvalResult{}
	}
	pred := NewPredictor(t, ModeProbabilistic)
	var ce float64
	var hit, near int
	forEachDistRow(pred, step, xs, func(i int, dist []float64) {
		// For the throughput-kind TTP, labels are throughput bins and
		// the raw output distribution is over throughput bins too, so
		// cross-entropy is comparable within a kind. Figure 7 compares
		// prediction of *transmission time*, so convert when needed.
		p := dist[labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		ce += -ln(p)
		am := nn.ArgMax(dist)
		if am == labels[i] {
			hit++
		}
		if am >= labels[i]-1 && am <= labels[i]+1 {
			near++
		}
	})
	n := float64(len(xs))
	return EvalResult{CrossEntropy: ce / n, Accuracy: float64(hit) / n, Within1: float64(near) / n}
}

// EvaluateTransTime scores any TTP variant on its ability to predict
// *transmission time* bins, converting throughput-kind outputs first. This
// is the apples-to-apples Figure 7 comparison.
func EvaluateTransTime(t *TTP, data *Dataset, step int) EvalResult {
	return EvaluateTransTimeMode(t, data, step, ModeProbabilistic)
}

// EvaluateTransTimeMode is EvaluateTransTime with an explicit prediction
// mode, so the "Point Estimate" ablation can be scored on the collapsed
// distribution it actually feeds the controller.
func EvaluateTransTimeMode(t *TTP, data *Dataset, step int, mode Mode) EvalResult {
	xs, sizes, ttLabels := transTimeExamples(t, data, step)
	if len(xs) == 0 {
		return EvalResult{}
	}
	pred := NewPredictor(t, mode)
	dist := make([]float64, abr.NumBins)
	var ce float64
	var hit, near int
	forEachDistRow(pred, step, xs, func(i int, raw []float64) {
		pred.finishDist(dist, raw, sizes[i])
		p := dist[ttLabels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		ce += -ln(p)
		am := nn.ArgMax(dist)
		if am == ttLabels[i] {
			hit++
		}
		if am >= ttLabels[i]-1 && am <= ttLabels[i]+1 {
			near++
		}
	})
	n := float64(len(xs))
	return EvalResult{CrossEntropy: ce / n, Accuracy: float64(hit) / n, Within1: float64(near) / n}
}

// transTimeExamples builds features plus the proposed sizes and
// transmission-time labels for step.
func transTimeExamples(t *TTP, d *Dataset, step int) (xs [][]float64, sizes []float64, labels []int) {
	fc := t.Cfg
	hist := make([]abr.ChunkRecord, 0, fc.HistLen)
	for _, s := range d.Streams {
		for i := 0; i+step < len(s.Chunks); i++ {
			target := s.Chunks[i+step]
			hist = hist[:0]
			lo := i - fc.HistLen
			if lo < 0 {
				lo = 0
			}
			for _, c := range s.Chunks[lo:i] {
				hist = append(hist, abr.ChunkRecord{Size: c.Size, TransTime: c.TransTime})
			}
			x := make([]float64, fc.Dim())
			fc.Assemble(x, hist, s.Chunks[i].Info, target.Size)
			xs = append(xs, x)
			sizes = append(sizes, target.Size)
			labels = append(labels, abr.BinIndex(target.TransTime))
		}
	}
	return xs, sizes, labels
}

func ln(x float64) float64 { return math.Log(x) }
