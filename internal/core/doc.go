// Package core implements Fugu, the paper's contribution (§4): a
// Transmission Time Predictor (TTP) — one small fully-connected network per
// horizon step that maps (recent chunk sizes and transmission times,
// sender-side tcp_info statistics, and a proposed chunk size) to a
// probability distribution over the chunk's transmission time — driving the
// stochastic MPC controller in the abr package. Training is supervised, on
// telemetry from the deployment itself ("in situ"), with daily retraining
// over a sliding window (§4.3); the runner package turns that sentence into
// a loop.
//
// The package also provides every ablation variant from the paper's
// Figure 7: a point-estimate TTP, a throughput predictor that ignores the
// proposed size, a linear model, a TTP without tcp_info inputs, and a
// short-history TTP.
//
// Main entry points:
//
//   - TTP / NewTTP: the per-horizon-step networks (DefaultHorizon 5,
//     DefaultHidden 64-64); Clone for warm starts, SaveFile/LoadFile for
//     model rotation and checkpoints.
//   - NewFugu / NewFuguNamed / NewFuguPointEstimate: wrap a trained TTP in
//     the abr.MPC controller — the deployable scheme.
//   - Predictor / NewPredictor: adapts a TTP to abr.Predictor and
//     abr.BatchPredictor; assembles one feature matrix per horizon step
//     (FeatureConfig.AssembleBatch) so the MPC's distribution fill is one
//     batched network pass per step.
//   - Dataset / ChunkObs / StreamObs: training telemetry (gob Save/Load);
//     Train / TrainConfig / TrainResult: recency-weighted supervised
//     training; Evaluate / EvaluateTransTimeMode: held-out scoring.
//   - Variant / AllVariants / NewVariantTTP: the Figure 7 ablations.
package core
