package experiment

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/telemetry"
)

func bbaScheme() Scheme {
	return Scheme{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }}
}

func mpcScheme() Scheme {
	return Scheme{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewMPCHM() }}
}

func TestRunSessionProducesStreams(t *testing.T) {
	env := DefaultEnv()
	rng := rand.New(rand.NewSource(1))
	res := RunSession(&env, abr.NewBBA(), rng, 7, "BBA", 0, nil)
	if res.SessionID != 7 || res.Scheme != "BBA" {
		t.Fatalf("identity wrong: %+v", res)
	}
	if len(res.Streams) == 0 {
		t.Fatal("session produced no streams")
	}
	if res.Duration <= 0 {
		t.Fatal("session duration not positive")
	}
	for _, s := range res.Streams {
		if s.PlayTime < 0 || s.StallTime < 0 || s.StartupDelay < 0 {
			t.Fatalf("negative times: %+v", s)
		}
	}
}

func TestRunSessionDeterministic(t *testing.T) {
	env := DefaultEnv()
	a := RunSession(&env, abr.NewBBA(), rand.New(rand.NewSource(3)), 1, "BBA", 0, nil)
	env2 := DefaultEnv()
	b := RunSession(&env2, abr.NewBBA(), rand.New(rand.NewSource(3)), 1, "BBA", 0, nil)
	if len(a.Streams) != len(b.Streams) || a.Duration != b.Duration {
		t.Fatalf("same-seed sessions differ: %d/%f vs %d/%f",
			len(a.Streams), a.Duration, len(b.Streams), b.Duration)
	}
	for i := range a.Streams {
		if a.Streams[i].PlayTime != b.Streams[i].PlayTime || a.Streams[i].SSIMMean != b.Streams[i].SSIMMean {
			t.Fatalf("stream %d differs", i)
		}
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme(), mpcScheme()},
		Sessions: 30, Seed: 42,
	}
	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Sessions {
		a, b := serial.Sessions[i], parallel.Sessions[i]
		if a.Scheme != b.Scheme || a.Duration != b.Duration || len(a.Streams) != len(b.Streams) {
			t.Fatalf("session %d differs between 1 and 8 workers: %+v vs %+v", i, a, b)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Env: DefaultEnv(), Sessions: 5}); err == nil {
		t.Fatal("expected error for no schemes")
	}
	if _, err := Run(Config{Env: DefaultEnv(), Schemes: []Scheme{bbaScheme()}, Sessions: 0}); err == nil {
		t.Fatal("expected error for zero sessions")
	}
}

func TestRandomizationRoughlyBalanced(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme(), mpcScheme()},
		Sessions: 200, Seed: 7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range res.Sessions {
		counts[s.Scheme]++
	}
	for name, n := range counts {
		if n < 60 || n > 140 {
			t.Fatalf("scheme %s got %d of 200 sessions — randomization skewed", name, n)
		}
	}
}

func TestAnalyzeProducesSaneStats(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme()},
		Sessions: 120, Seed: 11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(res, AllPaths, 1)
	if len(st) != 1 {
		t.Fatalf("got %d scheme rows", len(st))
	}
	s := st[0]
	if s.Considered == 0 {
		t.Fatal("no streams considered")
	}
	if s.Considered+s.NeverPlayed+s.ShortWatch+s.BadDecoder != s.Streams {
		t.Fatalf("CONSORT accounting does not add up: %+v", s)
	}
	if s.SSIM.Point < 8 || s.SSIM.Point > 18 {
		t.Fatalf("mean SSIM %v outside plausible dB range", s.SSIM.Point)
	}
	if s.StallRatio.Point < 0 || s.StallRatio.Point > 0.2 {
		t.Fatalf("stall ratio %v implausible", s.StallRatio.Point)
	}
	if s.StallRatio.Lo > s.StallRatio.Point || s.StallRatio.Hi < s.StallRatio.Point {
		t.Fatal("stall CI does not bracket point")
	}
	if s.MeanDuration.Point <= 0 {
		t.Fatal("mean session duration not positive")
	}
	if s.MeanBitrate <= 0 {
		t.Fatal("mean bitrate not positive")
	}
}

func TestSlowPathFilterSelectsSlowStreams(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme()},
		Sessions: 150, Seed: 13,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := EligibleStreams(res, AllPaths)["BBA"]
	slow := EligibleStreams(res, SlowPaths)["BBA"]
	if len(slow) == 0 {
		t.Fatal("no slow-path streams sampled")
	}
	if len(slow) >= len(all) {
		t.Fatal("slow filter did not reduce the set")
	}
	for _, s := range slow {
		if !s.SlowPath() {
			t.Fatalf("non-slow stream passed the filter: %v", s.PathMeanRate)
		}
	}
	// Slow paths should have lower SSIM and more stalling, as in Fig. 8.
	stAll := Analyze(res, AllPaths, 1)[0]
	stSlow := Analyze(res, SlowPaths, 1)[0]
	if stSlow.SSIM.Point >= stAll.SSIM.Point {
		t.Fatalf("slow-path SSIM %v not below overall %v", stSlow.SSIM.Point, stAll.SSIM.Point)
	}
}

func TestConsortAccounting(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme(), mpcScheme()},
		Sessions: 100, Seed: 17,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arms := Consort(res)
	if len(arms) != 2 {
		t.Fatalf("got %d arms", len(arms))
	}
	totalSessions := 0
	for _, a := range arms {
		totalSessions += a.Sessions
		if a.Streams < a.Sessions {
			t.Fatalf("%s: fewer streams than sessions", a.Scheme)
		}
		if a.Considered+a.NeverPlayed+a.ShortWatch+a.BadDecoder != a.Streams {
			t.Fatalf("%s: exclusions do not add up", a.Scheme)
		}
		// Channel zapping must generate a meaningful excluded fraction,
		// as in Figure A1 where ~60% of streams are excluded.
		if a.NeverPlayed+a.ShortWatch == 0 {
			t.Fatalf("%s: no browse-phase exclusions at all", a.Scheme)
		}
	}
	if totalSessions != 100 {
		t.Fatalf("sessions across arms = %d, want 100", totalSessions)
	}
}

func TestSessionDurations(t *testing.T) {
	cfg := Config{Env: DefaultEnv(), Schemes: []Scheme{bbaScheme()}, Sessions: 40, Seed: 19}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	durs := SessionDurations(res)["BBA"]
	if len(durs) != 40 {
		t.Fatalf("got %d durations", len(durs))
	}
	for _, d := range durs {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("bad duration %v", d)
		}
	}
}

func TestCollectDataset(t *testing.T) {
	env := DefaultEnv()
	data, err := CollectDataset(env, []Scheme{bbaScheme()}, 40, 23, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumChunks() == 0 {
		t.Fatal("no chunks collected")
	}
	if data.MaxDay() != 3 {
		t.Fatalf("day stamp = %d, want 3", data.MaxDay())
	}
	for _, s := range data.Streams {
		for _, c := range s.Chunks {
			if c.Size <= 0 || c.TransTime <= 0 {
				t.Fatalf("invalid chunk obs: %+v", c)
			}
			if c.Info.DeliveryRate <= 0 {
				t.Fatal("missing tcp_info in collected telemetry")
			}
		}
	}
	// Deterministic collection.
	data2, err := CollectDataset(env, []Scheme{bbaScheme()}, 40, 23, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data2.NumChunks() != data.NumChunks() {
		t.Fatalf("collection not deterministic: %d vs %d chunks", data2.NumChunks(), data.NumChunks())
	}
}

func TestFuguEndToEnd(t *testing.T) {
	// Integration: collect data with BBA, train a small TTP, run Fugu.
	if testing.Short() {
		t.Skip("end-to-end training skipped in -short")
	}
	env := DefaultEnv()
	data, err := CollectDataset(env, []Scheme{bbaScheme()}, 60, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	ttp := core.NewTTP(rand.New(rand.NewSource(31)), 3, []int{24, 24}, core.DefaultFeatures(), core.KindTransTime)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 4
	if _, err := core.Train(ttp, data, tc); err != nil {
		t.Fatal(err)
	}
	fugu := Scheme{Name: "Fugu", New: func() abr.Algorithm { return core.NewFugu(ttp) }}
	res, err := Run(Config{Env: env, Schemes: []Scheme{fugu}, Sessions: 30, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(res, AllPaths, 1)
	if st[0].Considered == 0 {
		t.Fatal("Fugu produced no considered streams")
	}
	if st[0].SSIM.Point < 8 {
		t.Fatalf("Fugu mean SSIM %v implausibly low", st[0].SSIM.Point)
	}
}

func TestEmulationEnvUsesClipAndFCC(t *testing.T) {
	env := EmulationEnv()
	if env.Clip == nil {
		t.Fatal("emulation env should replay a clip")
	}
	if env.Paths.Name() != "fcc" {
		t.Fatalf("emulation paths = %s, want fcc", env.Paths.Name())
	}
	rng := rand.New(rand.NewSource(41))
	res := RunSession(&env, abr.NewBBA(), rng, 0, "BBA", 0, nil)
	if len(res.Streams) == 0 {
		t.Fatal("no streams in emulation")
	}
}

func TestOutcomeEndsSession(t *testing.T) {
	if OutcomeFinished.endsSession() || OutcomeNeverPlayed.endsSession() {
		t.Fatal("finishing/zapping should not end the session")
	}
	if !OutcomeAbandonedStall.endsSession() || !OutcomeDrifted.endsSession() {
		t.Fatal("abandonment must end the session")
	}
}

func TestDatasetCollectorMerge(t *testing.T) {
	a := NewDatasetCollector()
	a.RecordChunk(0, 1, core.ChunkObs{Size: 1, TransTime: 1})
	b := &core.Dataset{Streams: []core.StreamObs{{Chunks: []core.ChunkObs{{Size: 2, TransTime: 2}}}}}
	a.Merge(b, 100)
	d := a.Dataset()
	if len(d.Streams) != 2 {
		t.Fatalf("merged dataset has %d streams, want 2", len(d.Streams))
	}
}

// TestBootstrapSeedIndependentOfNameLength is the regression test for the
// bootstrap-seeding bug: the RNG seed used to derive from len(name), giving
// equal-length scheme names (e.g. "BBA" vs "MPC") identical bootstrap RNGs.
func TestBootstrapSeedIndependentOfNameLength(t *testing.T) {
	pairs := [][2]string{{"BBA", "MPC"}, {"MPC-HM", "Fugu-X"}, {"AAA", "AAB"}}
	for _, p := range pairs {
		if len(p[0]) != len(p[1]) {
			t.Fatalf("test pair %v must have equal lengths", p)
		}
		if nameSeed(p[0]) == nameSeed(p[1]) {
			t.Fatalf("equal-length names %q and %q share a bootstrap seed", p[0], p[1])
		}
	}
	if nameSeed("Fugu") != nameSeed("Fugu") {
		t.Fatal("nameSeed not deterministic")
	}
}

// TestAnalyzeEqualLengthSchemesBootstrapIndependently checks the observable
// symptom: two arms with byte-identical stream populations and equal-length
// names must not produce identical bootstrap intervals (they did before the
// fix, because their resampling RNGs were the same).
func TestAnalyzeEqualLengthSchemesBootstrapIndependently(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	res := &Result{}
	for i := 0; i < 40; i++ {
		// One eligible stream per session with stream-correlated stalls so
		// resampling has variance to express.
		stream := telemetry.StreamSummary{
			PlayTime: 60 + rng.ExpFloat64()*200, StallTime: rng.ExpFloat64() * 3,
			Chunks: 30, SSIMMean: 14, MeanBitrate: 4e6, PathMeanRate: 8e6,
		}
		for _, name := range []string{"AAA", "BBB"} {
			res.Sessions = append(res.Sessions, SessionResult{
				SessionID: i, Scheme: name, Duration: 300,
				Streams: []telemetry.StreamSummary{stream},
			})
		}
	}
	st := Analyze(res, AllPaths, 7)
	if len(st) != 2 {
		t.Fatalf("got %d scheme rows", len(st))
	}
	if st[0].StallRatio.Point != st[1].StallRatio.Point {
		t.Fatalf("identical populations must share the point estimate: %v vs %v",
			st[0].StallRatio.Point, st[1].StallRatio.Point)
	}
	if st[0].StallRatio.Lo == st[1].StallRatio.Lo && st[0].StallRatio.Hi == st[1].StallRatio.Hi {
		t.Fatalf("equal-length arms drew identical bootstrap intervals %+v — shared RNG", st[0].StallRatio)
	}
}

// TestAnalyzeAggregatesByteIdenticalAcrossWorkers: the full analysis (every
// interval endpoint included) must not depend on scheduling.
func TestAnalyzeAggregatesByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme(), mpcScheme()},
		Sessions: 60, Seed: 77,
	}
	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(serial, AllPaths, 3)
	b := Analyze(parallel, AllPaths, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("aggregates differ between 1 and 8 workers:\n%+v\nvs\n%+v", a, b)
	}
}

// TestTrialAccMergeMatchesAnalyze: folding sessions through sharded
// accumulators and merging in shard order must reproduce Analyze exactly.
func TestTrialAccMergeMatchesAnalyze(t *testing.T) {
	cfg := Config{
		Env: DefaultEnv(), Schemes: []Scheme{bbaScheme(), mpcScheme()},
		Sessions: 50, Seed: 99,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Analyze(res, AllPaths, 5)

	total := NewTrialAcc(AllPaths)
	for at := 0; at < len(res.Sessions); at += 16 {
		end := at + 16
		if end > len(res.Sessions) {
			end = len(res.Sessions)
		}
		shard := NewTrialAcc(AllPaths)
		for i := at; i < end; i++ {
			shard.AddSession(&res.Sessions[i])
		}
		total.Merge(shard)
	}
	got := total.Analyze(5)
	if len(got) != len(want) {
		t.Fatalf("scheme counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// The per-stream series survive concatenation exactly, so every
		// interval is byte-identical. The two running scalar sums (SSIMVar,
		// MeanBitrate) reassociate addition across shards and may differ in
		// the last ulps.
		if relDiff(g.SSIMVar, w.SSIMVar) > 1e-12 || relDiff(g.MeanBitrate, w.MeanBitrate) > 1e-12 {
			t.Fatalf("scheme %s scalar sums drifted: %+v vs %+v", g.Name, g, w)
		}
		g.SSIMVar, g.MeanBitrate = w.SSIMVar, w.MeanBitrate
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("sharded accumulation differs from Analyze:\n%+v\nvs\n%+v", g, w)
		}
	}
}

// relDiff returns |a-b| relative to max(|a|,|b|), 0 when both are 0.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestDatasetCollectorMergeRoundTrips: Dataset -> Merge into an empty
// collector -> Dataset must reproduce the original streams exactly.
func TestDatasetCollectorMergeRoundTrips(t *testing.T) {
	env := DefaultEnv()
	orig, err := CollectDataset(env, []Scheme{bbaScheme()}, 20, 61, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Streams) == 0 {
		t.Fatal("no streams collected")
	}
	c := NewDatasetCollector()
	c.Merge(orig, 0)
	back := c.Dataset()
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("Merge round trip altered the dataset: %d vs %d streams",
			len(orig.Streams), len(back.Streams))
	}
}

func TestMixSpreadsSeeds(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		v := mix(1, i)
		if seen[v] {
			t.Fatalf("mix collision at %d", i)
		}
		seen[v] = true
		if v < 0 {
			t.Fatal("mix produced negative seed")
		}
	}
}

func TestStartupDelayPlausible(t *testing.T) {
	// Figure 9: startup delays are around half a second.
	cfg := Config{Env: DefaultEnv(), Schemes: []Scheme{bbaScheme()}, Sessions: 80, Seed: 43}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(res, AllPaths, 1)[0]
	if st.MeanStartup.Point < 0.05 || st.MeanStartup.Point > 5 {
		t.Fatalf("mean startup %v s implausible", st.MeanStartup.Point)
	}
}
