// Quickstart: train a small Fugu and stream one session with it.
//
// This walks the whole pipeline on a reduced scale: collect in-situ
// telemetry with BBA (the bootstrap behavior scheme), train a Transmission
// Time Predictor, wrap it in the stochastic MPC controller, and run a
// randomized experiment of Fugu against BBA.
//
//	go run ./examples/quickstart
//
// Set PUFFER_EXAMPLE_SCALE (e.g. 0.2) to shrink session counts for a quick
// smoke run.
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/examples/internal/exscale"
)

func main() {
	log.SetFlags(0)

	// 1. Collect telemetry from the deployment environment.
	env := puffer.DefaultEnv()
	// Exploration matters: a TTP trained purely on one scheme's choices
	// never sees what big chunks do to a congested path.
	behavior := []puffer.Scheme{{Name: "BBA", New: func() puffer.Algorithm {
		return puffer.WithExploration(puffer.NewBBA(), 0.15, 7)
	}}}
	log.Printf("collecting telemetry (%d sessions of BBA with exploration)...", exscale.Scaled(150))
	data, err := puffer.CollectDataset(env, behavior, exscale.Scaled(150), 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected %d chunks across %d streams", data.NumChunks(), len(data.Streams))

	// 2. Train the TTP on it (supervised learning, in situ).
	ttp := puffer.NewTTP(2)
	cfg := puffer.DefaultTrainConfig()
	cfg.Epochs = 10
	log.Println("training the Transmission Time Predictor...")
	if err := puffer.TrainTTP(ttp, data, cfg); err != nil {
		log.Fatal(err)
	}

	// 3. Race Fugu against BBA in a blinded randomized trial.
	log.Printf("running a %d-session randomized trial: Fugu vs BBA...", exscale.Scaled(200))
	res, err := puffer.RunExperiment(puffer.Config{
		Env: env,
		Schemes: []puffer.Scheme{
			{Name: "Fugu", New: func() puffer.Algorithm { return puffer.NewFugu(ttp) }},
			{Name: "BBA", New: puffer.NewBBA},
		},
		Sessions: exscale.Scaled(200),
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report, with bootstrap confidence intervals.
	fmt.Printf("%-8s %22s %24s %10s\n", "Scheme", "Stalled% [95% CI]", "SSIM dB [95% CI]", "Streams")
	for _, r := range puffer.Analyze(res, puffer.AllPaths, 4) {
		fmt.Printf("%-8s %7.3f%% [%.3f, %.3f] %7.2f dB [%.2f, %.2f] %9d\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
			r.SSIM.Point, r.SSIM.Lo, r.SSIM.Hi, r.Considered)
	}
}
