package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// Checkpoint layout: <dir>/manifest.json pins the run parameters that shape
// results; each completed day owns <dir>/day_NNN/ holding
//
//	stats.json    — the day's DayStats (human-readable record)
//	acc.gob       — the day's merged TrialAcc (exact accumulator state)
//	telemetry.gob — the day's Dataset (rebuilds the sliding window)
//	ttp.model     — the model serving the NEXT day (post-nightly rotation)
//
// A day directory is written under a dot-prefixed temp name and committed
// with a single rename, so a kill mid-checkpoint leaves either a complete
// day or no day. Gob and Go's JSON both round-trip float64 exactly, which is
// what makes resumed runs byte-identical to uninterrupted ones.

const (
	manifestFile  = "manifest.json"
	statsFile     = "stats.json"
	accFile       = "acc.gob"
	telemetryFile = "telemetry.gob"
	modelFile     = "ttp.model"
)

// gobWarmOnce backs gobTypeWarmup.
var gobWarmOnce sync.Once

// gobTypeWarmup pins encoding/gob's process-global type-id assignment for
// every type the checkpoint files contain, in the order a plain
// single-process run would first encode them. Gob allocates wire type ids
// globally in first-use order and embeds those ids in every stream, so any
// engine that speaks gob before the first checkpoint write (the dist
// coordinator's worker protocol does) would otherwise shift the ids inside
// acc.gob / telemetry.gob / ttp.model and break checkpoint byte-identity
// across engines. Run calls this before anything else touches gob.
func gobTypeWarmup() {
	gobWarmOnce.Do(func() {
		_ = gob.NewEncoder(io.Discard).Encode(experiment.NewTrialAcc(experiment.AllPaths))
		_ = (&core.Dataset{}).Save(io.Discard)
		rng := rand.New(rand.NewSource(0))
		_ = core.NewTTP(rng, 1, nil, core.DefaultFeatures(), core.KindTransTime).Save(io.Discard)
	})
}

// manifest guards a checkpoint directory against resuming under a
// different experiment. The guard is one hash: for scenario-compiled runs
// it is the spec's GuardHash (the canonical scenario content hash with
// resume-safe fields like Days normalized out), and the canonical spec
// JSON rides along so a rejected resume can say which experiment the
// checkpoint belongs to. Runs built from a raw Config get a fallback hash
// over guardParams. Workers and the engine selection are absent from both:
// they only change scheduling, never results.
type manifest struct {
	GuardHash string
	// Spec is the canonical scenario spec (scenario-compiled runs only).
	Spec json.RawMessage `json:",omitempty"`
	// Params is the runner-level guard view (direct-Config runs only).
	Params *guardParams `json:",omitempty"`
}

// guardParams is the fallback guard for Configs constructed without a
// scenario spec: the result-shaping fields, with the environment pinned by
// its observable identity (path-family name — which embeds any drift
// signature — plus clip replay).
type guardParams struct {
	EnvPaths       string
	EnvClip        bool
	SessionsPerDay int
	WindowDays     int
	ShardSize      int
	Seed           int64
	Retrain        bool
	Hidden         []int
	Horizon        int
	Train          core.TrainConfig
}

func (cfg *Config) guardParams() guardParams {
	p := guardParams{
		EnvClip:        cfg.Env.Clip != nil,
		SessionsPerDay: cfg.SessionsPerDay,
		WindowDays:     cfg.WindowDays,
		ShardSize:      cfg.ShardSize,
		Seed:           cfg.Seed,
		Retrain:        cfg.Retrain,
		Hidden:         cfg.Hidden,
		Horizon:        cfg.Horizon,
		Train:          cfg.Train,
	}
	if cfg.Env.Paths != nil {
		p.EnvPaths = cfg.Env.Paths.Name()
	}
	return p
}

// manifest builds the guard record for this config.
func (cfg *Config) manifest() manifest {
	if cfg.SpecHash != "" {
		return manifest{GuardHash: cfg.SpecHash, Spec: cfg.SpecJSON}
	}
	p := cfg.guardParams()
	blob, err := json.Marshal(&p)
	if err != nil {
		panic(fmt.Sprintf("runner: encoding guard params: %v", err))
	}
	sum := sha256.Sum256(blob)
	return manifest{GuardHash: hex.EncodeToString(sum[:]), Params: &p}
}

func dayDir(root string, day int) string {
	return filepath.Join(root, fmt.Sprintf("day_%03d", day))
}

// resume loads completed days from the checkpoint directory, rebuilding the
// pooled accumulator, the sliding telemetry window, and the model slot. It
// returns the first day that still needs to run.
func (r *state) resume() (int, error) {
	root := r.cfg.CheckpointDir
	if err := os.MkdirAll(root, 0o755); err != nil {
		return 0, fmt.Errorf("runner: creating checkpoint dir: %w", err)
	}
	if err := r.checkManifest(); err != nil {
		return 0, err
	}
	// Sweep partial writes from a killed checkpoint.
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, fmt.Errorf("runner: reading checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.RemoveAll(filepath.Join(root, e.Name())); err != nil {
				return 0, fmt.Errorf("runner: sweeping %s: %w", e.Name(), err)
			}
		}
	}

	day := 0
	for ; day < r.cfg.Days; day++ {
		dir := dayDir(root, day)
		if _, err := os.Stat(dir); err != nil {
			break
		}
		ds, acc, data, model, err := loadDay(dir)
		if err != nil {
			return 0, fmt.Errorf("runner: loading checkpointed day %d: %w", day, err)
		}
		if ds.Day != day {
			return 0, fmt.Errorf("runner: checkpoint %s claims day %d", dir, ds.Day)
		}
		if model != nil {
			r.slot.Store(model)
		}
		r.finishDay(ds, acc, data)
	}
	return day, nil
}

// checkManifest writes the manifest on first use and rejects resumes whose
// config would silently change the results of already-checkpointed days.
// The comparison is one hash equality; the stored spec (or params) only
// feeds the error message.
func (r *state) checkManifest() error {
	path := filepath.Join(r.cfg.CheckpointDir, manifestFile)
	want := r.cfg.manifest()
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return fmt.Errorf("runner: encoding manifest: %w", err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return fmt.Errorf("runner: writing manifest: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("runner: reading manifest: %w", err)
	}
	var got manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("runner: decoding manifest %s: %w", path, err)
	}
	if got.GuardHash == "" {
		// Pre-scenario checkpoints pinned raw field lists (EnvPaths,
		// SessionsPerDay, ...) instead of a guard hash. They cannot be
		// verified against a spec, so make the migration explicit
		// rather than failing with a generic mismatch.
		if legacyManifest(raw) {
			return fmt.Errorf("runner: checkpoint dir %s has a legacy (pre-scenario) manifest; "+
				"its field-list format was replaced by the scenario guard hash and old checkpoints "+
				"cannot be resumed — re-run the experiment into a fresh directory (the completed-day "+
				"data under day_* remains readable)", r.cfg.CheckpointDir)
		}
		return fmt.Errorf("runner: checkpoint dir %s has an unrecognized manifest (no guard hash); use a fresh dir", r.cfg.CheckpointDir)
	}
	if got.GuardHash != want.GuardHash {
		return fmt.Errorf("runner: checkpoint dir %s belongs to a different experiment (guard %s vs %s)%s; "+
			"use a fresh dir, or re-run with the original spec",
			r.cfg.CheckpointDir, shortHash(got.GuardHash), shortHash(want.GuardHash), manifestDiff(got, want))
	}
	return nil
}

// shortHash abbreviates a guard hash for error messages (tolerating
// malformed manifests with short values).
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// legacyManifest recognizes the pre-scenario manifest format by its
// distinctive field names.
func legacyManifest(raw []byte) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return false
	}
	_, hasEnv := m["EnvPaths"]
	_, hasSessions := m["SessionsPerDay"]
	return hasEnv && hasSessions
}

// manifestDiff renders what the checkpoint pinned versus what the caller
// asked for, for actionable mismatch errors.
func manifestDiff(got, want manifest) string {
	switch {
	case got.Spec != nil && want.Spec != nil:
		return fmt.Sprintf("\ncheckpointed spec:\n%s\nrequested spec:\n%s", got.Spec, want.Spec)
	case got.Params != nil && want.Params != nil:
		return fmt.Sprintf(" (%+v vs %+v)", *got.Params, *want.Params)
	case got.Spec != nil:
		return fmt.Sprintf("\ncheckpointed spec:\n%s\n(requested run was built from a raw runner.Config, not a scenario spec)", got.Spec)
	default:
		return " (checkpoint was built from a raw runner.Config, requested run from a scenario spec)"
	}
}

// checkpointDay atomically commits one completed day.
func (r *state) checkpointDay(ds DayStats, acc *experiment.TrialAcc, data *core.Dataset) error {
	root := r.cfg.CheckpointDir
	tmp := filepath.Join(root, fmt.Sprintf(".tmp-day_%03d", ds.Day))
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("runner: clearing temp dir: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("runner: creating temp dir: %w", err)
	}

	blob, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding day stats: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, statsFile), blob, 0o644); err != nil {
		return fmt.Errorf("runner: writing day stats: %w", err)
	}

	var accBuf bytes.Buffer
	if err := gob.NewEncoder(&accBuf).Encode(acc); err != nil {
		return fmt.Errorf("runner: encoding accumulator: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, accFile), accBuf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("runner: writing accumulator: %w", err)
	}

	if err := data.SaveFile(filepath.Join(tmp, telemetryFile)); err != nil {
		return err
	}
	if model := r.slot.Load(); model != nil {
		if err := model.SaveFile(filepath.Join(tmp, modelFile)); err != nil {
			return err
		}
	}

	if err := os.Rename(tmp, dayDir(root, ds.Day)); err != nil {
		return fmt.Errorf("runner: committing day %d: %w", ds.Day, err)
	}
	return nil
}

// loadDay reads one committed day. The model may be absent only if the day
// was checkpointed before any model existed (impossible in the current loop,
// but tolerated for forward compatibility).
func loadDay(dir string) (DayStats, *experiment.TrialAcc, *core.Dataset, *core.TTP, error) {
	var ds DayStats
	raw, err := os.ReadFile(filepath.Join(dir, statsFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}
	if err := json.Unmarshal(raw, &ds); err != nil {
		return ds, nil, nil, nil, fmt.Errorf("decoding %s: %w", statsFile, err)
	}

	accRaw, err := os.ReadFile(filepath.Join(dir, accFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}
	acc := experiment.NewTrialAcc(experiment.AllPaths)
	if err := gob.NewDecoder(bytes.NewReader(accRaw)).Decode(acc); err != nil {
		return ds, nil, nil, nil, fmt.Errorf("decoding %s: %w", accFile, err)
	}

	data, err := core.LoadDatasetFile(filepath.Join(dir, telemetryFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}

	var model *core.TTP
	if _, err := os.Stat(filepath.Join(dir, modelFile)); err == nil {
		model, err = core.LoadFile(filepath.Join(dir, modelFile))
		if err != nil {
			return ds, nil, nil, nil, err
		}
	}
	return ds, acc, data, model, nil
}
