package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestHistSnapshotSub(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	h := newHistogram("x")
	h.Observe(10)
	h.Observe(20)
	old := h.Snapshot()
	h.Observe(20)
	h.Observe(1000)
	win := h.Snapshot().Sub(old)
	if win.Count != 2 {
		t.Fatalf("window count = %d, want 2", win.Count)
	}
	if win.Sum != 1020 {
		t.Fatalf("window sum = %d, want 1020", win.Sum)
	}
	if q := win.Quantile(0.5); q < 20 || q > 21 {
		t.Fatalf("window p50 = %d, want ~20", q)
	}
	if q := win.Quantile(1.0); q < 1000 || q > 1032 {
		t.Fatalf("window max quantile = %d, want ~1000", q)
	}
	// Subtracting a snapshot from itself leaves an empty window.
	cur := h.Snapshot()
	if empty := cur.Sub(cur); empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("self-subtraction not empty: %+v", empty)
	}
	// A mismatched (newer) operand clamps instead of going negative.
	if neg := old.Sub(cur); neg.Count != 0 {
		t.Fatalf("clamped subtraction count = %d, want 0", neg.Count)
	}
}

func TestHistorySampleAndJSON(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	reg := NewRegistry()
	c := reg.Counter("reqs_total")
	g := reg.Gauge("inflight")
	hist := reg.Histogram("lat_ns")

	h := NewHistory(reg, time.Second, 8)
	c.Add(10)
	g.Set(3)
	hist.Observe(100)
	h.Sample()
	c.Add(30)
	g.Set(5)
	hist.Observe(200)
	hist.Observe(400)
	h.Sample()

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalS float64 `json:"interval_s"`
		Samples   int     `json:"samples"`
		TimesMS   []int64 `json:"times_unix_ms"`
		Counters  []struct {
			Name     string    `json:"name"`
			Values   []int64   `json:"values"`
			RatePerS []float64 `json:"rate_per_s"`
		} `json:"counters"`
		Gauges []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"gauges"`
		Histograms []struct {
			Name     string  `json:"name"`
			Counts   []int64 `json:"counts"`
			WinCount []int64 `json:"win_count"`
			WinP50NS []int64 `json:"win_p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("history JSON invalid: %v", err)
	}
	if doc.Samples != 2 || len(doc.TimesMS) != 2 {
		t.Fatalf("samples = %d times = %d, want 2 each", doc.Samples, len(doc.TimesMS))
	}
	if len(doc.Counters) != 1 || doc.Counters[0].Name != "reqs_total" {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if v := doc.Counters[0].Values; len(v) != 2 || v[0] != 10 || v[1] != 40 {
		t.Fatalf("counter values = %v, want [10 40]", v)
	}
	if r := doc.Counters[0].RatePerS; len(r) != 1 || r[0] <= 0 {
		t.Fatalf("counter rate = %v, want one positive window", r)
	}
	if v := doc.Gauges[0].Values; len(v) != 2 || v[1] != 5 {
		t.Fatalf("gauge values = %v, want [3 5]", v)
	}
	hs := doc.Histograms[0]
	if len(hs.Counts) != 2 || hs.Counts[0] != 1 || hs.Counts[1] != 3 {
		t.Fatalf("hist counts = %v, want [1 3]", hs.Counts)
	}
	if len(hs.WinCount) != 1 || hs.WinCount[0] != 2 {
		t.Fatalf("window counts = %v, want [2]", hs.WinCount)
	}
	if p := hs.WinP50NS[0]; p < 200 || p > 207 {
		t.Fatalf("window p50 = %d, want ~200 (window excludes the first sample's 100)", p)
	}
}

func TestHistoryRingDepth(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, time.Second, 3)
	for i := 0; i < 7; i++ {
		h.Sample()
	}
	if got := len(h.ordered()); got != 3 {
		t.Fatalf("ring holds %d samples, want 3", got)
	}
	// Oldest-first ordering.
	s := h.ordered()
	for i := 1; i < len(s); i++ {
		if s[i].t.Before(s[i-1].t) {
			t.Fatal("samples not oldest-first")
		}
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, time.Millisecond, 100)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(h.ordered()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	n := len(h.ordered())
	if n < 2 {
		t.Fatalf("sampler took only %d samples", n)
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(h.ordered()); got != n {
		t.Fatal("sampler still running after Stop")
	}
}
