package runner

import (
	"bytes"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/netem"
)

// driftEnv is the deployment environment under a named drift preset.
func driftEnv(t *testing.T, preset string) experiment.Env {
	t.Helper()
	sched, err := netem.DriftPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	env := experiment.DefaultEnv()
	env.Paths = &netem.DriftingSampler{Base: env.Paths, Schedule: sched}
	return env
}

// driftTestConfig mirrors testConfig but under drift.
func driftTestConfig(t *testing.T, seed int64, preset string) Config {
	cfg := testConfig(seed)
	cfg.Env = driftEnv(t, preset)
	return cfg
}

// TestRunnerDriftStalenessSeparates is the acceptance check for the drift
// subsystem: in a drifting deployment the staleness ablation must separate
// monotonically — the frozen day-0 model's stall rate exceeds the
// retrained arm's by day 2, and the gap keeps growing through the final
// day. Runs are seed-paired (identical sessions and paths), so the per-day
// gap isolates the models' decisions.
func TestRunnerDriftStalenessSeparates(t *testing.T) {
	tc := core.DefaultTrainConfig()
	tc.Epochs = 4
	cfg := Config{
		Env:            driftEnv(t, "shift"),
		Days:           4,
		SessionsPerDay: 128,
		WindowDays:     0,
		ShardSize:      16,
		Seed:           2,
		Retrain:        true,
		Hidden:         []int{24},
		Horizon:        2,
		Train:          tc,
	}
	retrained, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frozenCfg := cfg
	frozenCfg.Retrain = false
	frozen, err := Run(frozenCfg)
	if err != nil {
		t.Fatal(err)
	}

	gap := func(day int) float64 {
		a, okA := retrained.Days[day].Scheme("Fugu")
		b, okB := frozen.Days[day].Scheme("Fugu")
		if !okA || !okB {
			t.Fatalf("day %d: missing Fugu arm", day)
		}
		return b.StallRatio.Point - a.StallRatio.Point
	}
	// Day 1: both runs serve the identical day-0 model on identical
	// sessions, so the two arms must agree exactly.
	if g := gap(1); g != 0 {
		t.Fatalf("day 1 gap = %+.4f, want exactly 0 (both arms serve the day-0 model)", g)
	}
	// Day 2 on: the frozen model falls behind, and keeps falling.
	g2, g3 := gap(2), gap(3)
	if g2 <= 0 {
		t.Fatalf("day 2 gap = %+.4f, want frozen stalling more than retrained", g2)
	}
	if g3 <= g2 {
		t.Fatalf("gap shrank: day 2 %+.4f vs day 3 %+.4f, want monotone growth", g2, g3)
	}
	t.Logf("frozen-vs-retrained stall gap: day2 %+.2f pp, day3 %+.2f pp", 100*g2, 100*g3)
}

// TestRunnerDriftDeterministicAcrossWorkers: drift must not break the
// worker-count independence of aggregates.
func TestRunnerDriftDeterministicAcrossWorkers(t *testing.T) {
	a := driftTestConfig(t, 23, "decay")
	a.Workers = 1
	resA, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := driftTestConfig(t, 23, "decay")
	b.Workers = 8
	resB, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, resA), fingerprint(t, resB)) {
		t.Fatal("drifting runner results differ between 1 and 8 workers")
	}
}

// TestRunnerDriftCheckpointResume: a run killed mid-drift must resume into
// the correct day-indexed distribution — byte-identical to uninterrupted.
func TestRunnerDriftCheckpointResume(t *testing.T) {
	straight := driftTestConfig(t, 29, "mix")
	straight.Days = 3
	want, err := Run(straight)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := driftTestConfig(t, 29, "mix")
	first.Days = 2
	first.CheckpointDir = dir
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	second := driftTestConfig(t, 29, "mix")
	second.Days = 3
	second.CheckpointDir = dir
	got, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Fatal("mid-drift kill-and-resume differs from uninterrupted run")
	}
}

// TestRunnerManifestGuardsDrift: the drift schedule shapes every result, so
// it must participate in the checkpoint config guard (via the drifting
// sampler's name).
func TestRunnerManifestGuardsDrift(t *testing.T) {
	dir := t.TempDir()
	cfg := driftTestConfig(t, 31, "decay")
	cfg.Days = 1
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	other := driftTestConfig(t, 31, "shift")
	other.Days = 1
	other.CheckpointDir = dir
	if _, err := Run(other); err == nil {
		t.Fatal("resume with a different drift preset must be rejected")
	}
	plain := testConfig(31)
	plain.Days = 1
	plain.CheckpointDir = dir
	if _, err := Run(plain); err == nil {
		t.Fatal("resume without drift in a drifted checkpoint must be rejected")
	}
}

// TestRunnerZeroDriftIdentity: wrapping the sampler with an all-zero
// schedule changes nothing — results are byte-identical to the unwrapped
// run, and the sampler keeps the base family's name (so `-drift none` is
// byte-identical to today and checkpoint-compatible).
func TestRunnerZeroDriftIdentity(t *testing.T) {
	plain := testConfig(37)
	want, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := testConfig(37)
	env := experiment.DefaultEnv()
	env.Paths = &netem.DriftingSampler{Base: env.Paths}
	wrapped.Env = env
	got, err := Run(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Fatal("zero-schedule DriftingSampler changed results")
	}
	if env.Paths.Name() != experiment.DefaultEnv().Paths.Name() {
		t.Fatalf("zero-schedule sampler renamed the family: %q", env.Paths.Name())
	}
}
