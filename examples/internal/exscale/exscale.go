// Package exscale lets CI's docs smoke shrink the example programs: every
// example routes its session and resample counts through Scaled, and
// `make docs-smoke` sets PUFFER_EXAMPLE_SCALE (e.g. 0.1) so all of
// examples/ runs briefly while staying meaningful at full scale.
package exscale

import (
	"os"
	"strconv"
)

// Scaled applies the PUFFER_EXAMPLE_SCALE multiplier (default 1) to a
// count, clamped below at 8 so reduced runs still produce output.
func Scaled(n int) int {
	if v := os.Getenv("PUFFER_EXAMPLE_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			n = int(float64(n) * f)
		}
	}
	if n < 8 {
		n = 8
	}
	return n
}

// Reduced reports whether the current run is scaled down, for examples
// whose narration should flag noisy reduced-scale numbers.
func Reduced() bool { return Scaled(1000) < 1000 }
