package fleet

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
)

// testTTP is a small untrained TTP — decision cost and code paths are
// identical to a trained one.
func testTTP(seed int64) *core.TTP {
	return core.NewTTP(rand.New(rand.NewSource(seed)), core.DefaultHorizon, []int{16, 16},
		core.DefaultFeatures(), core.KindTransTime)
}

// deployTrial mirrors the runner's steady-state mixture: Fugu (TTP-backed,
// so the fleet defers its inference) randomized against BBA.
func deployTrial(t *core.TTP, sessions int, seed int64) *experiment.Config {
	return &experiment.Config{
		Env: experiment.DefaultEnv(),
		Schemes: []experiment.Scheme{
			{Name: "Fugu", New: func() abr.Algorithm { return abr.NewExplorer(core.NewFugu(t), 0.05, seed+2) }},
			{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
		},
		Sessions: sessions,
		Seed:     seed,
	}
}

// bootstrapTrial mirrors the runner's day-0 mixture: classical schemes
// only, nothing deferrable.
func bootstrapTrial(sessions int, seed int64) *experiment.Config {
	return &experiment.Config{
		Env: experiment.DefaultEnv(),
		Schemes: []experiment.Scheme{
			{Name: "BBA", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewBBA(), 0.15, seed) }},
			{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewMPCHM(), 0.10, seed+1) }},
			{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
		},
		Sessions: sessions,
		Seed:     seed,
	}
}

// seqShardAcc folds the trial sequentially through the canonical sharded
// aggregation, computing each session directly (no fleet engine involved).
func seqShardAcc(trial *experiment.Config, shardSize int) *experiment.TrialAcc {
	return experiment.FoldShards(trial.Sessions, shardSize, experiment.AllPaths,
		func(id int) *experiment.SessionResult {
			sess := trial.RunOne(id)
			return &sess
		})
}

// accFingerprint reduces an accumulator to comparable bytes: the exact gob
// state of every scheme accumulator in sorted-name order (gob of the map
// itself would serialize in random order), plus the analyzed statistics.
func accFingerprint(t *testing.T, acc *experiment.TrialAcc, seed int64) []byte {
	t.Helper()
	names := make([]string, 0, len(acc.Schemes))
	for name := range acc.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, name := range names {
		if err := enc.Encode(acc.Schemes[name]); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := json.Marshal(acc.Analyze(seed))
	if err != nil {
		t.Fatal(err)
	}
	return append(buf.Bytes(), blob...)
}

// TestFleetMatchesSequentialDeploy: the tentpole guarantee — the fleet
// engine's pooled accumulator (and collected telemetry) is byte-identical
// to the sequential sharded fold at the same seed, on the NN-backed deploy
// mixture whose inference runs through the cross-session batched service.
func TestFleetMatchesSequentialDeploy(t *testing.T) {
	ttp := testTTP(3)
	const sessions, shard = 28, 8

	seqTrial := deployTrial(ttp, sessions, 11)
	seqCol := experiment.NewDatasetCollector()
	seqTrial.Recorder = seqCol
	want := seqShardAcc(seqTrial, shard)

	fleetTrial := deployTrial(ttp, sessions, 11)
	fleetCol := experiment.NewDatasetCollector()
	fleetTrial.Recorder = fleetCol
	got, st, err := RunTrial(fleetTrial, Config{ShardSize: shard, Tick: 0.5, Arrivals: PoissonArrivals{Rate: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(accFingerprint(t, want, 5), accFingerprint(t, got, 5)) {
		t.Fatal("fleet accumulator differs from sequential shard fold")
	}

	var a, b bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(seqCol.Dataset()); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&b).Encode(fleetCol.Dataset()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fleet-collected telemetry differs from sequential telemetry")
	}

	if st.Deferred == 0 || st.Rows == 0 {
		t.Fatalf("deploy mixture staged no inference work: %+v", st)
	}
	if st.Decisions <= st.Deferred/2 {
		t.Fatalf("implausible decision counts: %+v", st)
	}
}

// TestFleetMatchesSequentialBootstrap: same guarantee on the classical
// mixture, where nothing defers and every decision computes at its park.
func TestFleetMatchesSequentialBootstrap(t *testing.T) {
	const sessions, shard = 24, 8
	want := seqShardAcc(bootstrapTrial(sessions, 7), shard)
	got, st, err := RunTrial(bootstrapTrial(sessions, 7), Config{ShardSize: shard})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(accFingerprint(t, want, 9), accFingerprint(t, got, 9)) {
		t.Fatal("fleet accumulator differs from sequential on the bootstrap mixture")
	}
	if st.Deferred != 0 || st.Rows != 0 {
		t.Fatalf("bootstrap mixture unexpectedly staged inference: %+v", st)
	}
	if st.Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
}

// TestFleetInvariantToWorkersTickArrivals: results (and the deterministic
// stats) must not depend on worker count, tick size, or arrival process.
func TestFleetInvariantToWorkersTickArrivals(t *testing.T) {
	ttp := testTTP(5)
	const sessions, shard = 20, 8
	base, baseStats, err := RunTrial(deployTrial(ttp, sessions, 13), Config{ShardSize: shard, Workers: 1, Tick: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := accFingerprint(t, base, 3)

	variants := []Config{
		{ShardSize: shard, Workers: 8, Tick: 0.25},
		{ShardSize: shard, Workers: 3, Tick: 5},
		{ShardSize: shard, Workers: 8, Tick: 0.01},
		{ShardSize: shard, Workers: 2, Tick: 0.25, Arrivals: BurstArrivals{Burst: 10, Gap: 30}},
		{ShardSize: shard, Workers: 2, Tick: 0.25, Arrivals: PoissonArrivals{Rate: 100}},
	}
	for i, fc := range variants {
		acc, st, err := RunTrial(deployTrial(ttp, sessions, 13), fc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, accFingerprint(t, acc, 3)) {
			t.Fatalf("variant %d (%+v): results differ from baseline", i, fc)
		}
		if st.Decisions != baseStats.Decisions || st.Deferred != baseStats.Deferred || st.Rows != baseStats.Rows {
			t.Fatalf("variant %d: decision/row counts differ: %+v vs %+v", i, st, baseStats)
		}
	}

	// Same workers+tick, rerun: batching stats must reproduce exactly.
	again, againStats, err := RunTrial(deployTrial(ttp, sessions, 13), Config{ShardSize: shard, Workers: 1, Tick: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, accFingerprint(t, again, 3)) {
		t.Fatal("rerun differs")
	}
	if againStats.Flushes != baseStats.Flushes || againStats.Batches != baseStats.Batches ||
		againStats.MaxBatchRows != baseStats.MaxBatchRows || againStats.PeakConcurrent != baseStats.PeakConcurrent {
		t.Fatalf("rerun batching stats differ: %+v vs %+v", againStats, baseStats)
	}
}

// TestArrivalDeterminism: the arrival schedule is deterministic per (seed,
// process), sorted, and differs across seeds.
func TestArrivalDeterminism(t *testing.T) {
	a := ArrivalTimes(PoissonArrivals{Rate: 3}, 42, 200)
	b := ArrivalTimes(PoissonArrivals{Rate: 3}, 42, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical draws", i)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	c := ArrivalTimes(PoissonArrivals{Rate: 3}, 43, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical arrival schedules")
	}
	if bt := ArrivalTimes(BurstArrivals{Burst: 50, Gap: 10}, 1, 120); bt[49] != 0 || bt[50] != 10 || bt[119] != 20 {
		t.Fatalf("burst arrivals wrong: %v %v %v", bt[49], bt[50], bt[119])
	}
}

// TestFleetOccupancy: with overlapping arrivals the engine must actually
// multiplex (peak concurrency > 1) and the batched service must amortize
// across sessions (some cross-session batch bigger than one decision's
// rows).
func TestFleetOccupancy(t *testing.T) {
	ttp := testTTP(9)
	_, st, err := RunTrial(deployTrial(ttp, 16, 21),
		Config{ShardSize: 8, Tick: 0.5, Arrivals: BurstArrivals{Burst: 16, Gap: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakConcurrent < 2 {
		t.Fatalf("burst arrivals but peak concurrency %d", st.PeakConcurrent)
	}
	if st.MeanConcurrent <= 0 || st.HorizonSeconds <= 0 {
		t.Fatalf("degenerate occupancy: %+v", st)
	}
	if st.Occupancy.Peak() != st.PeakConcurrent {
		t.Fatal("summary peak disagrees with series")
	}
	// 10 rungs per decision: any batch beyond that means cross-session
	// (or cross-step) amortization happened.
	if st.MaxBatchRows <= 10 {
		t.Fatalf("no cross-session batching: max batch %d rows", st.MaxBatchRows)
	}
}
