// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON document, so benchmark runs can be committed,
// diffed, and tracked across PRs:
//
//	go test -run=NoTests -bench=. -benchmem ./... | benchjson -o BENCH.json
//	benchjson bench.txt          # read a saved run instead of stdin
//	benchjson -diff old.json new.json   # advisory regression report
//
// Each benchmark line becomes one record with the standard columns
// (iterations, ns/op, B/op, allocs/op) plus every custom b.ReportMetric
// unit under "metrics". The fleet engine's headline throughput numbers —
// the sessions/sec metrics from BenchmarkFleetThroughput — are also lifted
// into a top-level summary map, since they are the numbers the
// observability contract budgets regressions against.
//
// -diff compares two emitted documents benchmark by benchmark, marking
// ns/op swings past ±10% and reporting the fleet sessions/sec deltas. The
// report is advisory: it always exits 0, because smoke-speed (1x) timings
// are too noisy to gate a merge on — the diff is a reviewer aid.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Procs      int    `json:"procs,omitempty"`
	Iterations int64  `json:"iterations"`
	// NsPerOp keeps the fraction go test reports for sub-microsecond ops.
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Benchmarks []Bench `json:"benchmarks"`
	// FleetSessionsPerSec maps BenchmarkFleetThroughput sub-benchmark names
	// (per-session/w1, fleet/w1, fleet-obs/w1, ...) to their sessions/sec.
	FleetSessionsPerSec map[string]float64 `json:"fleet_sessions_per_sec,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (empty = stdout)")
	diff := flag.Bool("diff", false, "compare two benchmark JSON files (old new); advisory, always exits 0")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("-diff needs exactly two arguments: old.json new.json")
		}
		oldDoc, err := loadDoc(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newDoc, err := loadDoc(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		writeDiff(os.Stdout, oldDoc, newDoc)
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		log.Fatal("at most one input file")
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	doc, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
}

// loadDoc reads a previously emitted benchmark document.
func loadDoc(path string) (*Doc, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &doc, nil
}

// diffThresholdPct is the ns/op swing past which a row gets a slower/faster
// marker. The report stays advisory either way: smoke timings are noisy.
const diffThresholdPct = 10.0

// writeDiff prints the benchmark-by-benchmark comparison of two documents.
// Benchmarks are matched on (pkg, name); procs is ignored so runs from
// machines with different core counts still line up.
func writeDiff(w io.Writer, oldDoc, newDoc *Doc) {
	key := func(b Bench) string { return b.Pkg + " " + b.Name }
	old := map[string]Bench{}
	for _, b := range oldDoc.Benchmarks {
		old[key(b)] = b
	}

	var slower, faster, added int
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nb := range newDoc.Benchmarks {
		ob, ok := old[key(nb)]
		if !ok {
			added++
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		delete(old, key(nb))
		pct := 0.0
		if ob.NsPerOp > 0 {
			pct = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		mark := ""
		switch {
		case pct >= diffThresholdPct:
			mark = "  slower"
			slower++
		case pct <= -diffThresholdPct:
			mark = "  faster"
			faster++
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, pct, mark)
	}
	vanished := make([]string, 0, len(old))
	for k := range old {
		vanished = append(vanished, old[k].Name)
	}
	sort.Strings(vanished)
	for _, name := range vanished {
		fmt.Fprintf(w, "%-52s %14s %14s %9s\n", name, "-", "-", "gone")
	}

	// The headline numbers: fleet sessions/sec, higher is better.
	subs := map[string]bool{}
	for sub := range oldDoc.FleetSessionsPerSec {
		subs[sub] = true
	}
	for sub := range newDoc.FleetSessionsPerSec {
		subs[sub] = true
	}
	if len(subs) > 0 {
		names := make([]string, 0, len(subs))
		for sub := range subs {
			names = append(names, sub)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\nfleet sessions/sec (higher is better)\n")
		for _, sub := range names {
			ov, oldOK := oldDoc.FleetSessionsPerSec[sub]
			nv, newOK := newDoc.FleetSessionsPerSec[sub]
			switch {
			case oldOK && newOK:
				pct := 0.0
				if ov > 0 {
					pct = 100 * (nv - ov) / ov
				}
				fmt.Fprintf(w, "  %-24s %10.1f -> %10.1f %+8.1f%%\n", sub, ov, nv, pct)
			case newOK:
				fmt.Fprintf(w, "  %-24s %10s -> %10.1f      new\n", sub, "-", nv)
			default:
				fmt.Fprintf(w, "  %-24s %10.1f -> %10s     gone\n", sub, ov, "-")
			}
		}
	}

	fmt.Fprintf(w, "\nadvisory: %d slower, %d faster (threshold ±%.0f%% ns/op), %d new, %d gone — not a gate\n",
		slower, faster, diffThresholdPct, added, len(vanished))
}

// parse folds a `go test -bench` text stream into a Doc. Lines that are
// not benchmark results (headers, PASS/ok, logs) are skipped; `pkg:`
// headers attribute the results that follow to their package.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{FleetSessionsPerSec: map[string]float64{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(pkg, line)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		if b == nil {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, *b)
		if sub, ok := strings.CutPrefix(b.Name, "FleetThroughput/"); ok {
			if sps, ok := b.Metrics["sessions/sec"]; ok {
				doc.FleetSessionsPerSec[sub] = sps
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	if len(doc.FleetSessionsPerSec) == 0 {
		doc.FleetSessionsPerSec = nil
	}
	return doc, nil
}

// parseLine parses one result line:
//
//	BenchmarkName/sub-8   12   345 ns/op   67 B/op   8 allocs/op   9.1 sessions/sec
//
// i.e. a name, an iteration count, then (value, unit) pairs. Returns nil
// for lines that start with "Benchmark" but are not results (e.g. a bare
// name printed when a benchmark logs).
func parseLine(pkg, line string) (*Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	b := &Bench{Pkg: pkg, Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
