// Package figures regenerates every table and figure in the paper's
// evaluation: each FigN/SecNN method runs the corresponding experiment on
// the simulated substrate and writes the same rows/series the paper reports.
// Absolute numbers differ (the substrate is a simulator, not the authors'
// deployment); the shapes — who wins, by roughly what factor, where the
// crossovers fall — are the reproduction targets, recorded in EXPERIMENTS.md.
package figures

import (
	"fmt"
	"io"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/pensieve"
)

// Suite holds the trained models and cached experiment results shared by
// the figures. Building a Suite performs data collection and training
// (roughly a minute at default scale); individual figures then run their
// experiments on demand and cache what they share.
type Suite struct {
	// Scale is the number of sessions in the primary experiment; other
	// experiments scale proportionally.
	Scale int
	// Seed makes the whole suite deterministic.
	Seed int64
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)

	InSituTTP *core.TTP
	EmuTTP    *core.TTP
	Policy    *pensieve.Agent

	primary   *experiment.Result
	emulation *experiment.Result
	insituDat *core.Dataset
}

// DefaultScale is the default primary-experiment size in sessions.
const DefaultScale = 1500

// NewSuite collects telemetry, trains the in-situ TTP, the emulation-trained
// TTP, and the Pensieve policy, and returns a ready Suite.
func NewSuite(scale int, seed int64, logf func(string, ...any)) (*Suite, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Suite{Scale: scale, Seed: seed, Logf: logf}

	collectSessions := scale / 3
	if collectSessions < 150 {
		collectSessions = 150
	}

	logf("training in-situ TTP (two rounds, %d sessions each)...", collectSessions)
	insituTTP, insituData, err := trainTTPInEnv(experiment.DefaultEnv(), collectSessions, seed+1, logf)
	if err != nil {
		return nil, fmt.Errorf("figures: in-situ TTP: %w", err)
	}
	s.InSituTTP = insituTTP
	s.insituDat = insituData

	logf("training emulation TTP (two rounds, %d sessions each)...", collectSessions)
	emuTTP, _, err := trainTTPInEnv(experiment.EmulationEnv(), collectSessions, seed+3, logf)
	if err != nil {
		return nil, fmt.Errorf("figures: emulation TTP: %w", err)
	}
	s.EmuTTP = emuTTP

	logf("training Pensieve in emulation (policy gradient)...")
	pcfg := pensieve.DefaultTrainConfig()
	pcfg.Seed = seed + 5
	agent, pres := pensieve.Train(pcfg)
	s.Policy = agent
	logf("  final mean reward %.2f per chunk", pres.MeanReward)

	return s, nil
}

// behaviorSchemes is the bootstrap data-collection mixture: the classical
// schemes Puffer ran from day one, with light exploration for off-policy
// coverage of the (state, chunk size) space.
func behaviorSchemes(seed int64) []experiment.Scheme {
	return []experiment.Scheme{
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewBBA(), 0.15, seed) }},
		{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewMPCHM(), 0.10, seed+1) }},
		{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
	}
}

// trainTTPInEnv reproduces the in-situ training loop in a given environment:
// bootstrap telemetry from the classical schemes, train a first TTP, deploy
// that Fugu to gather telemetry from its own decisions (as the live
// deployment does continuously), and retrain on the union.
func trainTTPInEnv(env experiment.Env, sessions int, seed int64, logf func(string, ...any)) (*core.TTP, *core.Dataset, error) {
	round1, err := experiment.CollectDataset(env, behaviorSchemes(seed), sessions, seed, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("round-1 collection: %w", err)
	}
	logf("  round 1: %d chunks", round1.NumChunks())
	ttp0 := core.NewTTP(rand.New(rand.NewSource(seed)), core.DefaultHorizon, nil, core.DefaultFeatures(), core.KindTransTime)
	if _, err := core.Train(ttp0, round1, trainCfg(seed)); err != nil {
		return nil, nil, fmt.Errorf("round-1 training: %w", err)
	}

	fuguMix := []experiment.Scheme{
		{Name: "Fugu", New: func() abr.Algorithm { return abr.NewExplorer(core.NewFugu(ttp0), 0.05, seed+2) }},
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
	}
	round2, err := experiment.CollectDataset(env, fuguMix, sessions, seed+1, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("round-2 collection: %w", err)
	}
	logf("  round 2 (Fugu in the mix): %d chunks", round2.NumChunks())

	merged := &core.Dataset{Streams: append(append([]core.StreamObs{}, round1.Streams...), round2.Streams...)}
	ttp := core.NewTTP(rand.New(rand.NewSource(seed+3)), core.DefaultHorizon, nil, core.DefaultFeatures(), core.KindTransTime)
	cfg := trainCfg(seed + 3)
	cfg.RecencyBase = 1 // both rounds weighted equally when bootstrapping
	if _, err := core.Train(ttp, merged, cfg); err != nil {
		return nil, nil, fmt.Errorf("round-2 training: %w", err)
	}
	return ttp, merged, nil
}

func trainCfg(seed int64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Epochs = 12
	return cfg
}

// PrimarySchemes returns the five arms of the paper's primary experiment.
// Factories build fresh per-session instances; the trained models themselves
// are shared and read-only at inference.
func (s *Suite) PrimarySchemes() []experiment.Scheme {
	policy := s.Policy.Policy()
	return []experiment.Scheme{
		{Name: "Fugu", New: func() abr.Algorithm { return core.NewFugu(s.InSituTTP) }},
		{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewMPCHM() }},
		{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
		{Name: "Pensieve", New: func() abr.Algorithm { return pensieve.NewAgent(policy) }},
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
	}
}

// Primary runs (once) and returns the primary randomized experiment.
func (s *Suite) Primary() (*experiment.Result, error) {
	if s.primary != nil {
		return s.primary, nil
	}
	s.Logf("running primary experiment (%d sessions, 5 schemes)...", s.Scale)
	res, err := experiment.Run(experiment.Config{
		Env:      experiment.DefaultEnv(),
		Schemes:  s.PrimarySchemes(),
		Sessions: s.Scale,
		Seed:     s.Seed + 10,
	})
	if err != nil {
		return nil, err
	}
	s.primary = res
	return res, nil
}

// line prints a formatted row to w, propagating the first write error via
// the returned function pattern used across the figure writers.
func line(w io.Writer, err *error, format string, args ...any) {
	if *err != nil {
		return
	}
	_, *err = fmt.Fprintf(w, format, args...)
}
