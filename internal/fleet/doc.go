// Package fleet is the concurrent serving engine: a discrete-event,
// virtual-time multiplexer that runs hundreds of interleaved viewer
// sessions against a shared clock, the way the paper's platform serves many
// concurrent streams rather than one at a time.
//
// Sessions arrive by a Poisson process (randomized to schemes at arrival,
// as on Puffer), run as parked goroutines that yield at every ABR decision,
// and are advanced tick by tick from a calendar event queue. All decisions
// due within one virtual tick stage their feature rows into a central
// InferenceService, which executes each horizon net's forward pass as one
// cross-session batch over a packed (SIMD) snapshot of the model —
// amortizing the MPC's dominant cost across concurrent viewers instead of
// within a single decision.
//
// Determinism contract: a session's outcome depends only on (trial config,
// session id) — sessions share no state, the batched kernels are bitwise
// identical row for row regardless of batch composition, and results fold
// into the same shard-ordered accumulators as the sequential runner — so
// RunTrial is byte-identical to the per-session engine at the same seeds,
// for any Tick, Workers, or arrival process. Entry point: RunTrial.
package fleet
