package figures

import (
	"io"
	"math/rand"

	"puffer/internal/experiment"
	"puffer/internal/stats"
)

// Sec53Row is one sample-size point of the §5.3 power analysis.
type Sec53Row struct {
	StreamsPerScheme int
	StreamYears      float64
	DetectionRate    float64
}

// Sec53 reproduces §5.3's calculation: with realistic heavy-tailed stream
// behavior, how much data does it take to reliably distinguish two ABR
// schemes whose true stall ratios differ by 15%? The paper's answer is
// about two stream-years per scheme.
func (s *Suite) Sec53(w io.Writer) ([]Sec53Row, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	// Empirical stream behavior from the primary experiment's largest arm.
	streams := experiment.EligibleStreams(res, experiment.AllPaths)
	var pool []stats.StreamPoint
	for _, ss := range streams {
		for _, st := range ss {
			pool = append(pool, stats.StreamPoint{Watch: st.WatchTime(), Stall: st.StallTime})
		}
	}
	if len(pool) == 0 {
		return nil, errString("figures: no eligible streams for power analysis")
	}
	meanWatch := 0.0
	for _, p := range pool {
		meanWatch += p.Watch
	}
	meanWatch /= float64(len(pool))

	draw := func(rng *rand.Rand, scale float64) stats.StreamPoint {
		p := pool[rng.Intn(len(pool))]
		p.Stall *= scale
		return p
	}
	cfg := stats.PowerConfig{Effect: 0.15, Trials: 25, BootstrapIters: 150, Conf: 0.95}
	rng := rand.New(rand.NewSource(s.Seed + 600))

	sizes := []int{1000, 4000, 16000, 64000, 256000}
	rows := make([]Sec53Row, 0, len(sizes))
	var werr error
	line(w, &werr, "Section 5.3: power to distinguish two schemes differing by 15%% in stall ratio\n")
	line(w, &werr, "%-18s %14s %16s\n", "Streams/scheme", "Stream-years", "Detection rate")
	for _, n := range sizes {
		rate := stats.DetectionRate(rng, cfg, n, draw)
		years := float64(n) * meanWatch / (365.25 * 24 * 3600)
		rows = append(rows, Sec53Row{StreamsPerScheme: n, StreamYears: years, DetectionRate: rate})
		line(w, &werr, "%-18d %14.3f %16.2f\n", n, years, rate)
		s.Logf("  sec5.3 n=%d years=%.3f detect=%.2f", n, years, rate)
		if rate >= 0.99 {
			break
		}
	}
	return rows, werr
}
