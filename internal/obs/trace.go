package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Decision-level tracing: a sampled, ring-buffered span recorder that makes
// a single p999 outlier attributable to a stage. A span is one timed stage
// of one traced operation — {trace id, span id, parent, name, start, dur,
// attrs} — and a trace is every span sharing a trace id, possibly recorded
// on both ends of a wire (the serve protocol carries the trace id so client
// and server halves join).
//
// Tracing obeys the same zero-perturbation contract as every other obs
// output:
//
//   - Recording sits behind the process-global gate: while SetEnabled(false)
//     or no tracer is installed, Tracing() returns nil after one atomic
//     load and instrumented code records nothing and reads no clock.
//   - Sampling is DETERMINISTIC per session id (Sampled), never drawn from
//     an experiment RNG, so which sessions are traced is reproducible
//     run-to-run and tracing two runs traces the same decisions.
//   - Spans are write-only from engine code and excluded from results,
//     checkpoints, and manifests; the ring overwrites oldest spans instead
//     of growing, so a tracer's memory is bounded for arbitrarily long runs.

// Span is one recorded stage of a traced operation. Start is a monotonic
// nanosecond stamp from Now (process-epoch relative); Dur is the stage's
// duration in nanoseconds. Parent is the span id this span nests under (0
// for a root span).
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Name   string
	Start  int64
	Dur    int64
	Attrs  []Attr
}

// Attr is one integer-valued span attribute (rows, bytes, session ids —
// trace attributes in this system are always counts or identifiers).
type Attr struct {
	Key string
	Val int64
}

// A Tracer records sampled spans into a fixed-capacity ring. Record is safe
// for concurrent use; the ring keeps the most recent Cap spans and Dropped
// reports how many were overwritten.
type Tracer struct {
	sample uint64
	cap    int

	ids atomic.Uint64 // span id allocator (ids are unique, not meaningful)

	mu    sync.Mutex
	ring  []Span
	total uint64 // spans ever recorded
}

// DefaultTraceCap is the default ring capacity in spans (~64k spans ≈ a few
// MB): enough for every span of a smoke run and a bounded tail of a long one.
const DefaultTraceCap = 1 << 16

// NewTracer returns a tracer sampling 1-in-sample sessions (sample <= 1
// traces every session) with a ring of capacity spans (<= 0 uses
// DefaultTraceCap).
func NewTracer(sample uint64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	if sample == 0 {
		sample = 1
	}
	return &Tracer{sample: sample, cap: capacity}
}

// curTracer is the installed process-wide tracer (nil = tracing off).
var curTracer atomic.Pointer[Tracer]

// curProc is the label trace exports use for this process's track.
var curProc atomic.Pointer[string]

// SetTraceProc sets the process label trace exports use (e.g.
// "puffer-serve"); empty restores the executable-name default.
func SetTraceProc(name string) { curProc.Store(&name) }

// TraceProc returns the current process label for trace exports.
func TraceProc() string {
	if p := curProc.Load(); p != nil && *p != "" {
		return *p
	}
	return filepath.Base(os.Args[0])
}

// SetTracer installs (or, with nil, removes) the process-wide tracer.
// Tracing additionally requires the recording gate (SetEnabled), matching
// every other obs output.
func SetTracer(t *Tracer) { curTracer.Store(t) }

// Tracing returns the active tracer, or nil when recording is disabled or
// no tracer is installed. Engine code calls this once per potential span
// group; the disabled path is a single atomic load.
func Tracing() *Tracer {
	if !enabled.Load() {
		return nil
	}
	return curTracer.Load()
}

// mix64 is the splitmix64 finalizer: a fixed bijective hash used for
// deterministic sampling and trace-id derivation. It draws from no RNG and
// reads no clock, so everything derived from it is reproducible.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampled reports whether the session id's decisions are traced. The rule
// is a pure function of (session id, sampling rate) — mix64(id) mod sample
// — so the traced subset is deterministic and identical on both ends of a
// wire that agree on the rate, and a traced run re-traces the same sessions.
func (t *Tracer) Sampled(sessionID int64) bool {
	if t.sample <= 1 {
		return true
	}
	return mix64(uint64(sessionID))%t.sample == 0
}

// SampleRate returns the tracer's 1-in-N sampling denominator.
func (t *Tracer) SampleRate() uint64 { return t.sample }

// DecisionTraceID derives the trace id of one decision from its (session
// id, per-session decision sequence) pair: deterministic, collision-mixed,
// and never zero (zero means "untraced" on the wire).
func DecisionTraceID(sessionID int64, seq uint64) uint64 {
	id := mix64(mix64(uint64(sessionID)*0x9e3779b97f4a7c15) ^ (seq + 1))
	if id == 0 {
		return 1
	}
	return id
}

// NewSpanID allocates a process-unique span id (never zero).
func (t *Tracer) NewSpanID() uint64 { return t.ids.Add(1) }

// Record appends one span to the ring, overwriting the oldest when full.
// The span's ID should come from NewSpanID; Record never blocks beyond the
// ring mutex and never fails.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.total%uint64(t.cap)] = s
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever recorded; Dropped how many the
// ring overwrote.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Snapshot copies the ring's spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.total > uint64(len(t.ring)) {
		// Full ring: oldest is at the next write slot.
		at := int(t.total % uint64(t.cap))
		out = append(out, t.ring[at:]...)
		out = append(out, t.ring[:at]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// The flush-trace context attributes shared batched work — one inference
// flush serves many sessions — to exactly one trace: the first sampled
// decision of the batch. The engines' single flush owner (the fleet event
// loop, the serve batcher) sets it around Flush; the inference service and
// the packed kernel read it to parent their spans. It is wall-side state:
// nothing result-shaping ever reads it.
type flushTrace struct{ trace, parent uint64 }

var curFlush atomic.Pointer[flushTrace]

// SetFlushTrace attributes batched work recorded until ClearFlushTrace to
// the given (trace, parent span). trace 0 is ignored.
func SetFlushTrace(trace, parent uint64) {
	if trace == 0 {
		return
	}
	curFlush.Store(&flushTrace{trace, parent})
}

// ClearFlushTrace removes the flush attribution.
func ClearFlushTrace() { curFlush.Store(nil) }

// FlushTrace returns the current flush attribution (0, 0 when none).
func FlushTrace() (trace, parent uint64) {
	if f := curFlush.Load(); f != nil {
		return f.trace, f.parent
	}
	return 0, 0
}

// TraceQuantiles computes exact quantiles over the durations of the named
// spans in a snapshot (the client RTT summary's source). Returns the
// matching span count; quantile values are 0 when no span matched.
func TraceQuantiles(spans []Span, name string, ps []float64) (n int, out []int64) {
	var durs []int64
	for _, s := range spans {
		if s.Name == name {
			durs = append(durs, s.Dur)
		}
	}
	out = make([]int64, len(ps))
	if len(durs) == 0 {
		return 0, out
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	for i, p := range ps {
		rank := int(float64(len(durs))*p+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(durs) {
			rank = len(durs) - 1
		}
		out[i] = durs[rank]
	}
	return len(durs), out
}

// TraceIDString renders a trace id the way every export format spells it.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }
