package scenario

import (
	"math"
	"os"
	"strconv"
)

// ScaleFromEnv shrinks (or grows) a run by PUFFER_SCENARIO_SCALE (e.g.
// 0.05): sessions, days, and epochs scale proportionally, clamped so even
// a tiny smoke run still bootstraps a model and deploys it (2 days, 8
// sessions, 1 epoch). Scaling changes results — it exists for CI smokes,
// never for resuming real checkpoints. With the variable unset (or not a
// positive number other than 1) the spec is returned unchanged.
//
// Callers that index results by spec hash (the sweep executor, figures)
// must apply this before hashing, so the index key describes the run that
// actually happened.
func ScaleFromEnv(s Spec) Spec {
	v := os.Getenv("PUFFER_SCENARIO_SCALE")
	if v == "" {
		return s
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 || f == 1 {
		return s
	}
	d := s.WithDefaults()
	scale := func(n, min int) int {
		n = int(math.Round(float64(n) * f))
		if n < min {
			n = min
		}
		return n
	}
	d.Daily.Days = scale(d.Daily.Days, 2)
	d.Daily.Sessions = scale(d.Daily.Sessions, 8)
	d.Train.Epochs = scale(d.Train.Epochs, 1)
	return d
}
