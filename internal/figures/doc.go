// Package figures regenerates every table and figure in the paper's
// evaluation: each FigN/SecNN method runs the corresponding experiment on
// the simulated substrate and writes the same rows/series the paper
// reports. Absolute numbers differ (the substrate is a simulator, not the
// authors' deployment); the shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction targets, recorded in
// EXPERIMENTS.md-style notes in ROADMAP.md.
//
// Main entry points:
//
//   - Suite / NewSuite: builds the shared state once — collects telemetry,
//     trains the in-situ TTP and the emulation TTP through the continual
//     runner's two-day loop (figures and the daily loop share one engine),
//     and trains the Pensieve policy. Individual figures then run their
//     experiments on demand and cache what they share.
//   - Fig1/Fig4/Fig8/Fig9/Fig10/FigA1/Sec34: the primary randomized-trial
//     readouts. Fig2/Fig3/Fig5: the substrate characterizations. Fig7: the
//     TTP ablations. Fig11: emulation-vs-deployment. Sec46: the stationary
//     staleness check. Sec53: the power analysis.
//   - FigDrift: the nonstationary extension of Sec46 — the staleness
//     ablation under a drifting path population, where the
//     frozen-vs-retrained stall gap widens day over day instead of tying.
//
// The root package's benchmark harness (go test -bench=Fig) wraps each
// method and reports its headline quantities as benchmark metrics.
package figures
