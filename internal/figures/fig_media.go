package figures

import (
	"io"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/netem"
)

// Fig2Series holds the two throughput-evolution example sessions of
// Figure 2: a CS2P-style discrete-state session and a typical Puffer
// session with similar mean throughput.
type Fig2Series struct {
	EpochSeconds float64
	CS2P         []float64 // Mbit/s per epoch
	Puffer       []float64
	// DistinctLevels counts capacity plateaus in each series (CS2P should
	// have a handful; Puffer effectively one per epoch).
	CS2PLevels, PufferLevels int
}

// Fig2 reproduces Figure 2: Puffer does not observe CS2P's discrete
// throughput states.
func (s *Suite) Fig2(w io.Writer) (*Fig2Series, error) {
	const epochs = 200
	const epoch = 6.0 // seconds, as in both subfigures
	rng := rand.New(rand.NewSource(s.Seed + 200))
	cs2p := netem.GenCS2P(rng, netem.DefaultCS2PTraceConfig(2.6e6), epochs*epoch)
	puffer := netem.GenPuffer(rng, netem.DefaultPufferTraceConfig(2.2e6), epochs*epoch)

	series := &Fig2Series{EpochSeconds: epoch}
	sample := func(tr *netem.Trace) []float64 {
		out := make([]float64, epochs)
		for i := range out {
			// Average capacity across the epoch.
			var sum float64
			const sub = 6
			for k := 0; k < sub; k++ {
				sum += tr.RateAt(float64(i)*epoch + float64(k))
			}
			out[i] = sum / sub / 1e6
		}
		return out
	}
	series.CS2P = sample(cs2p)
	series.Puffer = sample(puffer)
	series.CS2PLevels = countLevels(series.CS2P, 0.08)
	series.PufferLevels = countLevels(series.Puffer, 0.08)

	var werr error
	line(w, &werr, "Figure 2: throughput evolution over %d six-second epochs\n", epochs)
	line(w, &werr, "(a) CS2P-style session: mean %.2f Mbit/s, %d discrete levels\n",
		mean(series.CS2P), series.CS2PLevels)
	line(w, &werr, "(b) Puffer-style session: mean %.2f Mbit/s, %d levels (continuous variation)\n",
		mean(series.Puffer), series.PufferLevels)
	line(w, &werr, "epoch,cs2p_mbps,puffer_mbps\n")
	for i := 0; i < epochs; i += 10 {
		line(w, &werr, "%d,%.3f,%.3f\n", i, series.CS2P[i], series.Puffer[i])
	}
	return series, werr
}

// countLevels clusters a series into plateaus: values within relTol of an
// existing cluster center join it; the count of clusters approximates the
// number of discrete states.
func countLevels(xs []float64, relTol float64) int {
	var centers []float64
outer:
	for _, x := range xs {
		for _, c := range centers {
			if abs(x-c)/c < relTol {
				continue outer
			}
		}
		centers = append(centers, x)
	}
	return len(centers)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig3Row is one chunk of the Figure 3 VBR illustration.
type Fig3Row struct {
	Chunk      int
	SizeTopMB  float64 // 5500 kbps rung
	SizeBotMB  float64 // 200 kbps rung
	SSIMTopdB  float64
	SSIMBotdB  float64
	Complexity float64
}

// Fig3 reproduces Figure 3: within one encoding setting, both compressed
// chunk size and picture quality vary chunk-by-chunk under VBR.
func (s *Suite) Fig3(w io.Writer) ([]Fig3Row, error) {
	nbc, err := media.FindProfile("nbc")
	if err != nil {
		return nil, err
	}
	src := media.NewSource(nil, nbc, s.Seed+300)
	const n = 32
	rows := make([]Fig3Row, n)
	for i := 0; i < n; i++ {
		ch := src.Next()
		top := ch.Versions[len(ch.Versions)-1]
		bot := ch.Versions[0]
		rows[i] = Fig3Row{
			Chunk: i, Complexity: ch.Complexity,
			SizeTopMB: top.Size / 1e6, SizeBotMB: bot.Size / 1e6,
			SSIMTopdB: top.SSIMdB, SSIMBotdB: bot.SSIMdB,
		}
	}
	var werr error
	line(w, &werr, "Figure 3: VBR variation within one stream (32 chunks)\n")
	line(w, &werr, "chunk,size_5500kbps_MB,size_200kbps_MB,ssim_5500kbps_dB,ssim_200kbps_dB\n")
	for _, r := range rows {
		line(w, &werr, "%d,%.3f,%.4f,%.2f,%.2f\n", r.Chunk, r.SizeTopMB, r.SizeBotMB, r.SSIMTopdB, r.SSIMBotdB)
	}
	return rows, werr
}

// Fig5 prints Figure 5: the feature table of the algorithms under study.
func (s *Suite) Fig5(w io.Writer) error {
	var werr error
	line(w, &werr, "Figure 5: distinguishing features of the algorithms\n")
	line(w, &werr, "%-24s %-26s %-16s %-30s %s\n", "Algorithm", "Control", "Predictor", "Optimization goal", "How trained")
	for _, e := range abr.Catalog() {
		line(w, &werr, "%-24s %-26s %-16s %-30s %s\n", e.Name, e.Control, e.Predictor, e.Objective, e.HowTrained)
	}
	return werr
}
