package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the function
// that stops it and closes the file — the -cpuprofile hook CLIs defer
// around a run. Profiling is sampling-only and wall-side: it never changes
// what a run computes (the zero-perturbation contract's differential
// smokes run with it exercised via the pprof endpoint).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: closing cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the
// profile reflects live objects — the -memprofile hook CLIs call at exit.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: writing heap profile: %w", err)
	}
	return nil
}
