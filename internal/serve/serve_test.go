package serve

import (
	"bufio"
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/scenario"
	"puffer/internal/tcpsim"
)

// tinySpec is a fast two-day scenario: big enough to exercise every arm,
// small enough that warming day 1 (one trial + one training epoch) stays
// cheap on one core.
func tinySpec() scenario.Spec {
	var s scenario.Spec
	s.Daily.Days = 2
	s.Daily.Sessions = 24
	s.Train.Epochs = 1
	seed := int64(7)
	s.Seed = &seed
	s.ShardSize = 8
	return s
}

func warmedPlan(t *testing.T, day int) *Plan {
	t.Helper()
	p, err := NewPlan(tinySpec(), day)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(0, t.Logf); err != nil {
		t.Fatal(err)
	}
	return p
}

func clientPlan(t *testing.T, day int) *Plan {
	t.Helper()
	p, err := NewPlan(tinySpec(), day)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func startServer(t *testing.T, cfg Config) (*Server, net.Listener) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgHello, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgHello || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("round trip got type 0x%02x payload %v", typ, payload)
	}

	// Oversized frame length must be rejected, not allocated.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0x00}
	if _, _, _, err := readFrame(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := hello{Version: ProtoVersion, Day: 3, Session: 41, Seed: -12345,
		Scheme: "Fugu", PlanHash: "abc:day3"}
	out, err := decodeHello(encodeHello(nil, &in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("hello round trip: got %+v want %+v", out, in)
	}
}

func TestDecideRoundTrip(t *testing.T) {
	obs := abr.Observation{
		ChunkIndex:  17,
		Buffer:      3.25,
		BufferCap:   15,
		LastQuality: 4,
		LastSSIM:    0.9812,
		History: []abr.ChunkRecord{
			{Size: 1.5e6, TransTime: 0.75, SSIMdB: 14.25, Quality: 3},
			{Size: 2.5e6, TransTime: 1.5, SSIMdB: 17.5, Quality: 5},
		},
		TCP: tcpsim.Info{CWND: 48, InFlight: 12, MinRTT: 0.031, RTT: 0.042, DeliveryRate: 1.25e6},
		Horizon: []media.Chunk{
			{Index: 18, Complexity: 1.125, Versions: []media.Encoding{{Size: 1e6, SSIMdB: 12.5}, {Size: 4e6, SSIMdB: 18}}},
			{Index: 19, Complexity: 0.875, Versions: []media.Encoding{{Size: 2e6, SSIMdB: 15.5}}},
		},
	}
	payload := encodeDecide(nil, 123.4375, &obs, 0, 0)
	var got abr.Observation
	now, _, _, err := decodeDecide(payload, &got)
	if err != nil {
		t.Fatal(err)
	}
	if now != 123.4375 {
		t.Fatalf("now: got %v", now)
	}
	if !reflect.DeepEqual(got, obs) {
		t.Fatalf("observation round trip:\n got %+v\nwant %+v", got, obs)
	}

	// Decoding a smaller observation into the same struct must reuse the
	// buffers without leaking stale entries.
	small := abr.Observation{
		Horizon: []media.Chunk{{Index: 20, Complexity: 1, Versions: []media.Encoding{{Size: 5, SSIMdB: 6}}}},
		TCP:     tcpsim.Info{RTT: 0.05},
	}
	payload = encodeDecide(payload[:0], 1, &small, 0, 0)
	if _, _, _, err := decodeDecide(payload, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.History) == 0 {
		got.History = nil // reuse leaves an empty slice; algorithms only see len
	}
	if !reflect.DeepEqual(got, small) {
		t.Fatalf("reused decode:\n got %+v\nwant %+v", got, small)
	}

	// Trailing bytes are a protocol error.
	payload = encodeDecide(payload[:0], 1, &small, 0, 0)
	if _, _, _, err := decodeDecide(append(payload, 0), &got); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecideTraceExtension(t *testing.T) {
	obs := abr.Observation{
		Horizon: []media.Chunk{{Index: 20, Complexity: 1, Versions: []media.Encoding{{Size: 5, SSIMdB: 6}}}},
		TCP:     tcpsim.Info{RTT: 0.05},
	}
	var got abr.Observation

	// traceID 0 emits the v1 layout: no extension bytes.
	bare := encodeDecide(nil, 1, &obs, 0, 0)
	ext := encodeDecide(nil, 1, &obs, 0xdeadbeef, 42)
	if len(ext) != len(bare)+decideExtLen {
		t.Fatalf("extension adds %d bytes, want %d", len(ext)-len(bare), decideExtLen)
	}
	if !bytes.Equal(ext[:len(bare)], bare) {
		t.Fatal("trace extension changed the observation encoding")
	}

	now, trace, parent, err := decodeDecide(ext, &got)
	if err != nil {
		t.Fatal(err)
	}
	if now != 1 || trace != 0xdeadbeef || parent != 42 {
		t.Fatalf("ext round trip: now=%v trace=%#x parent=%d", now, trace, parent)
	}
	// A v1 frame (no extension) decodes as untraced.
	if _, trace, parent, err := decodeDecide(bare, &got); err != nil || trace != 0 || parent != 0 {
		t.Fatalf("v1 frame: trace=%d parent=%d err=%v", trace, parent, err)
	}
	// A partial extension is a frame error.
	if _, _, _, err := decodeDecide(ext[:len(ext)-1], &got); err == nil {
		t.Fatal("truncated trace extension accepted")
	}
}

func TestHelloVersionCompat(t *testing.T) {
	// A v1 hello (no flags field) still decodes.
	v1 := hello{Version: 1, Day: 3, Session: 41, Seed: -12345,
		Scheme: "Fugu", PlanHash: "abc:day3"}
	out, err := decodeHello(encodeHello(nil, &v1))
	if err != nil {
		t.Fatal(err)
	}
	if out != v1 {
		t.Fatalf("v1 hello round trip: got %+v want %+v", out, v1)
	}
	// A v2 hello carries flags.
	v2 := hello{Version: ProtoVersion, Day: 3, Session: 41, Seed: -12345,
		Scheme: "Fugu", PlanHash: "abc:day3", Flags: helloFlagTracing}
	out, err = decodeHello(encodeHello(nil, &v2))
	if err != nil {
		t.Fatal(err)
	}
	if out != v2 {
		t.Fatalf("v2 hello round trip: got %+v want %+v", out, v2)
	}
}

// runDifferential pins the tentpole guarantee: the same plan served over
// real sockets and run on the virtual-time engine produces byte-identical
// per-scheme stats.
func runDifferential(t *testing.T, day int, mutate func(*Config)) {
	t.Helper()
	plan := warmedPlan(t, day)
	want, _, err := RunVirtual(plan, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Plan: plan, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, ln := startServer(t, cfg)

	res, err := RunLoad(LoadConfig{
		Addr: ln.Addr().String(), Plan: clientPlan(t, day), Concurrency: 8, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.ModelViolations != 0 {
		t.Fatalf("load run: %d failed sessions, %d model violations", res.Failed, res.ModelViolations)
	}
	if !reflect.DeepEqual(res.Stats, want) {
		t.Fatalf("served stats diverge from the virtual twin:\n got %+v\nwant %+v", res.Stats, want)
	}

	srv.Shutdown()
	nsess, completed, decisions := srv.Summary()
	if int(nsess) != plan.Sessions || int(completed) != plan.Sessions {
		t.Fatalf("server saw %d sessions, %d completed; want %d of each", nsess, completed, plan.Sessions)
	}
	if int64(decisions) != res.Decisions {
		t.Fatalf("server counted %d decisions, client %d", decisions, res.Decisions)
	}
}

func TestDifferentialDay0(t *testing.T) { runDifferential(t, 0, nil) }

func TestDifferentialDay1(t *testing.T) { runDifferential(t, 1, nil) }

// TestDifferentialTinyQueue forces backpressure: with a one-deep queue and
// one-request batches every concurrent enqueue blocks, and results must
// still be exact.
func TestDifferentialTinyQueue(t *testing.T) {
	runDifferential(t, 0, func(cfg *Config) {
		cfg.QueueDepth = 1
		cfg.MaxBatch = 1
	})
}

// TestRotationDuringLoad churns model generations mid-run. Rotation
// publishes a bit-identical clone, so results must not move; the client
// verifies no session ever saw two generations.
func TestRotationDuringLoad(t *testing.T) {
	plan := warmedPlan(t, 1)
	want, _, err := RunVirtual(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, ln := startServer(t, Config{Plan: plan, Logf: t.Logf})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				srv.Rotate()
			}
		}
	}()
	res, err := RunLoad(LoadConfig{
		Addr: ln.Addr().String(), Plan: clientPlan(t, 1), Concurrency: 8, Logf: t.Logf,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d sessions failed under rotation churn", res.Failed)
	}
	if res.ModelViolations != 0 {
		t.Fatalf("%d sessions saw more than one model generation", res.ModelViolations)
	}
	if !reflect.DeepEqual(res.Stats, want) {
		t.Fatal("rotation churn changed results")
	}
}

// dialRaw opens a raw protocol connection for handshake tests.
func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, bufio.NewReader(c)
}

func expectError(t *testing.T, br *bufio.Reader, what string) string {
	t.Helper()
	typ, payload, _, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if typ != msgError {
		t.Fatalf("%s: got type 0x%02x, want msgError", what, typ)
	}
	rd := reader{b: payload}
	return rd.str()
}

func TestHandshakeRejections(t *testing.T) {
	plan := warmedPlan(t, 0)
	_, ln := startServer(t, Config{Plan: plan, Logf: t.Logf})
	addr := ln.Addr().String()

	send := func(c net.Conn, h *hello) {
		t.Helper()
		if err := writeFrame(c, msgHello, encodeHello(nil, h)); err != nil {
			t.Fatal(err)
		}
	}

	c, br := dialRaw(t, addr)
	send(c, &hello{Version: ProtoVersion + 1, Scheme: plan.SchemeNames[0], PlanHash: plan.Hash})
	if msg := expectError(t, br, "bad version"); msg == "" {
		t.Fatal("empty error message")
	}

	c, br = dialRaw(t, addr)
	send(c, &hello{Version: ProtoVersion, Scheme: plan.SchemeNames[0], PlanHash: "someone-else:day9"})
	if msg := expectError(t, br, "plan mismatch"); msg == "" {
		t.Fatal("empty error message")
	}

	c, br = dialRaw(t, addr)
	send(c, &hello{Version: ProtoVersion, Scheme: "NotAScheme", PlanHash: plan.Hash})
	if msg := expectError(t, br, "unknown scheme"); msg == "" {
		t.Fatal("empty error message")
	}

	// A non-Hello first frame is rejected too.
	c, br = dialRaw(t, addr)
	if err := writeFrame(c, msgDecide, nil); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, "decide before hello")
}

// TestShutdownDrains pins the drain contract: Shutdown evicts an idle
// connection (parked between frames) promptly and completes.
func TestShutdownDrains(t *testing.T) {
	plan := warmedPlan(t, 0)
	srv, ln := startServer(t, Config{Plan: plan, DrainTimeout: 2 * time.Second, Logf: t.Logf})

	c, br := dialRaw(t, ln.Addr().String())
	if err := writeFrame(c, msgHello, encodeHello(nil, &hello{
		Version: ProtoVersion, Scheme: plan.SchemeNames[0], PlanHash: plan.Hash,
	})); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := readFrame(br, nil)
	if err != nil || typ != msgHelloOK {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not drain an idle connection")
	}

	// New connections are refused after drain.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
