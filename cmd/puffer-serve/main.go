// Command puffer-serve is the wall-clock serving daemon: it hosts one day
// of one scenario behind real TCP sockets, speaking the serving layer's
// length-prefixed protocol. On startup it warms the plan — for day > 0 that
// replays the scenario's daily loop (trials, telemetry, nightly training)
// so the served model is exactly the model the virtual-time engine would
// deploy that day — then accepts one connection per streaming session and
// batches every ABR decision through the shared inference service.
//
//	puffer-serve -scenario stationary -day 1 -listen 127.0.0.1:9977
//	puffer-serve -day 0 -sessions 12000 -arrival-rate 40 -obs-listen 127.0.0.1:9090
//
// The readiness line ("serving <plan> on <addr>") goes to stdout once the
// socket is open. SIGINT/SIGTERM drain gracefully: stop accepting, let
// in-flight decisions finish, then print the drain summary and exit 0.
// -rotate-every republishes the model on a timer (a bit-identical clone —
// results never change) so the soak harness can prove that no session is
// ever served by two model generations.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"puffer/internal/obscli"
	"puffer/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-serve: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("puffer-serve", flag.ContinueOnError)
	var (
		scenarioArg = fs.String("scenario", "stationary", "scenario to serve: a registered name or a spec .json file")
		day         = fs.Int("day", 1, "deployment day of the scenario to serve (0 = bootstrap day, no model)")
		listen      = fs.String("listen", "127.0.0.1:9977", "TCP address to serve sessions on")
		sessions    = fs.Int("sessions", 0, "override the scenario's per-day session count (0 = spec value)")
		arrivalRate = fs.Float64("arrival-rate", 0, "override the arrival process with poisson at this rate in sessions per virtual second (0 = spec value)")
		maxBatch    = fs.Int("max-batch", 0, "max decision requests per inference flush (0 = default 256)")
		queueDepth  = fs.Int("queue-depth", 0, "decision queue bound; a full queue blocks handlers (0 = default 1024)")
		readTO      = fs.Duration("read-timeout", 0, "evict a connection idle longer than this (0 = default 120s)")
		writeTO     = fs.Duration("write-timeout", 0, "per-reply write deadline (0 = default 30s)")
		drainTO     = fs.Duration("drain-timeout", 0, "max wait for in-flight requests on shutdown (0 = default 10s)")
		rotateEvery = fs.Duration("rotate-every", 0, "republish the model (bit-identical clone, new generation) on this period (0 = never)")
		workers     = fs.Int("workers", 0, "warmup parallelism (0 = GOMAXPROCS)")
		quiet       = fs.Bool("q", false, "suppress progress logging")
	)
	var obsOpts obscli.Options
	obsOpts.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	spec, err := serve.ResolveSpec(*scenarioArg, *sessions, *arrivalRate)
	if err != nil {
		return err
	}
	plan, err := serve.NewPlan(spec, *day)
	if err != nil {
		return err
	}

	stopObs, err := obsOpts.Start(false, logf)
	if err != nil {
		return err
	}
	defer stopObs()

	logf("warming plan %s (%d sessions, %d schemes)", plan.Hash, plan.Sessions, len(plan.SchemeNames))
	t0 := time.Now()
	if err := plan.Warm(*workers, logf); err != nil {
		return err
	}
	logf("warm in %.1fs", time.Since(t0).Seconds())

	srv, err := serve.NewServer(serve.Config{
		Plan:         plan,
		MaxBatch:     *maxBatch,
		QueueDepth:   *queueDepth,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		DrainTimeout: *drainTO,
		Logf:         logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The handler must be installed before the readiness line goes out: a
	// supervisor is allowed to SIGTERM the instant it reads it.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("%s: draining", s)
		srv.Shutdown()
		ln.Close() // covers a signal landing before Serve registered ln
	}()

	// Readiness line on stdout: the soak harness waits for it.
	fmt.Printf("serving %s on %s\n", plan.Hash, ln.Addr())

	if *rotateEvery > 0 {
		tick := time.NewTicker(*rotateEvery)
		defer tick.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-tick.C:
					srv.Rotate()
				case <-done:
					return
				}
			}
		}()
	}

	if err := srv.Serve(ln); err != nil {
		return err
	}
	nsess, completed, decisions := srv.Summary()
	fmt.Printf("drained: %d sessions, %d completed, %d decisions\n", nsess, completed, decisions)
	return nil
}
