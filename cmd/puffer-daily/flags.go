package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"puffer/internal/obscli"
	"puffer/internal/scenario"
)

// cliConfig is everything the command line resolves to: the effective
// scenario spec (base spec plus flag overrides) and the scheduling-side
// options that never enter a spec.
type cliConfig struct {
	spec scenario.Spec

	list        bool
	jsonOut     bool
	dump        bool
	workers     int
	checkpoint  string
	distTimeout time.Duration
	quiet       bool
	obs         obscli.Options
	obsEvents   string
}

// parseCLI maps the command line onto a scenario spec. The base spec comes
// from -scenario (a registered name or a JSON file; default: the all-unset
// spec, whose WithDefaults resolution is exactly the historical flag
// defaults). Every individual flag is an override: it applies only when
// given on the command line — flag.Visit, not flag defaults — so explicit
// zeros override too, and anything not mentioned rides on the spec.
func parseCLI(args []string) (*cliConfig, error) {
	cli := &cliConfig{}
	fs := flag.NewFlagSet("puffer-daily", flag.ContinueOnError)

	scenarioArg := fs.String("scenario", "", "base scenario: a registered name (see -list-scenarios) or a spec .json file (default: the built-in defaults)")
	fs.BoolVar(&cli.list, "list-scenarios", false, "list the registered scenarios and exit")
	fs.BoolVar(&cli.jsonOut, "json", false, "with -list-scenarios: emit JSON (name, notes, spec hash, guard hash)")
	fs.BoolVar(&cli.dump, "dump-scenario", false, "print the effective fully-defaulted spec as canonical JSON and exit (commit it, edit it, re-run it)")

	days := fs.Int("days", scenario.DefaultDays, "override: deployment days to simulate (count)")
	sessions := fs.Int("sessions", scenario.DefaultSessions, "override: randomized-trial size per day (sessions)")
	window := fs.Int("window", scenario.DefaultWindow, "override: sliding retraining window (days; 0 = all days so far)")
	fs.IntVar(&cli.workers, "workers", 0, "parallel shard workers (goroutines; 0 = GOMAXPROCS); never changes results")
	engine := fs.String("engine", "session", "override: execution engine — session, fleet, or dist; results are byte-identical")
	distWorkers := fs.Int("dist-workers", 0, "override: dist engine worker-process count (0 = GOMAXPROCS; selects the dist engine); never changes results")
	fs.DurationVar(&cli.distTimeout, "dist-timeout", 0, "dist engine per-shard hang deadline (duration; 0 = none); never changes results")
	arrivalRate := fs.Float64("arrival-rate", scenario.DefaultRate, "override: fleet engine Poisson arrival intensity (sessions per virtual second; selects the poisson process)")
	tick := fs.Float64("tick", scenario.DefaultTick, "override: fleet engine inference-batching tick (virtual seconds; never changes results)")
	shard := fs.Int("shard", scenario.DefaultShard, "override: sessions per aggregation shard (sessions)")
	seed := fs.Int64("seed", scenario.DefaultSeed, "override: experiment seed (any int64)")
	fs.StringVar(&cli.checkpoint, "checkpoint", "", "checkpoint directory (path; empty = no checkpointing)")
	retrain := fs.Bool("retrain", true, "override: retrain the TTP nightly (false = frozen day-0 model)")
	ablation := fs.Bool("ablation", true, "override: with retraining, also run the frozen-model staleness ablation")
	epochs := fs.Int("epochs", scenario.DefaultEpochs, "override: nightly training epochs (count)")
	envName := fs.String("env", "insitu", "override: environment world, insitu or emulation")
	fs.BoolVar(&cli.quiet, "q", false, "suppress progress logging")
	cli.obs.Register(fs)
	fs.StringVar(&cli.obsEvents, "obs-events", "", "append the structured run-progress event stream (JSONL) to this file (path; empty = off)")

	drift := fs.String("drift", "none", "override: nonstationarity preset — none, decay, shift, or mix")
	dRate := fs.Float64("drift-rate-factor", 0, "override: daily capacity factor (ratio/day; e.g. 0.9 = -10%/day; unset = preset)")
	dFloor := fs.Float64("drift-rate-floor", 0, "override: floor on the compounded capacity factor (ratio; unset = preset)")
	dSigma := fs.Float64("drift-sigma-widen", 0, "override: extra session-spread log-std-dev added per day (nats/day; unset = preset)")
	dSlow := fs.Float64("drift-slow-share", 0, "override: extra slow-path share added per day (fraction/day; unset = preset)")
	dSlowCap := fs.Float64("drift-slow-cap", 0, "override: cap on the extra slow-path share (fraction; unset = preset)")
	dOutage := fs.Float64("drift-outage-rate", 0, "override: extra deep outages added per day (outages/hour/day; unset = preset)")
	dOutageCap := fs.Float64("drift-outage-cap", 0, "override: cap on the ramped outage rate (outages/hour; 0 = uncapped; unset = preset)")
	dMix := fs.String("drift-mix", "", "override: migrate the population toward this family — congested, fcc, cs2p, or none (unset = preset)")
	dMixStart := fs.Int("drift-mix-start", 0, "override: first day of the mix ramp (day index; unset = preset)")
	dMixRamp := fs.Int("drift-mix-ramp", 3, "override: days for the mix ramp to reach 100% (days; <= 0 = step; unset = preset)")

	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	spec, err := baseSpec(*scenarioArg)
	if err != nil {
		return nil, err
	}

	// Flag overrides apply only when the flag was actually given.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "days":
			spec.Daily.Days = *days
		case "sessions":
			spec.Daily.Sessions = *sessions
		case "window":
			spec.Daily.Window = ptrOf(*window)
		case "engine":
			spec.Engine.Kind = *engine
		case "dist-workers":
			spec.Engine.Kind = "dist"
			spec.Engine.DistWorkers = *distWorkers
		case "arrival-rate":
			spec.Engine.Arrival.Process = "poisson"
			spec.Engine.Arrival.Rate = *arrivalRate
		case "tick":
			spec.Engine.Tick = *tick
		case "shard":
			spec.ShardSize = *shard
		case "seed":
			spec.Seed = ptrOf(*seed)
		case "retrain":
			spec.Daily.Retrain = ptrOf(*retrain)
		case "ablation":
			spec.Daily.Ablation = ptrOf(*ablation)
		case "epochs":
			spec.Train.Epochs = *epochs
		case "env":
			spec.Env.World = *envName
		case "drift":
			spec.Drift.Preset = *drift
		case "drift-rate-factor":
			spec.Drift.RateFactorPerDay = ptrOf(*dRate)
		case "drift-rate-floor":
			spec.Drift.RateFactorFloor = ptrOf(*dFloor)
		case "drift-sigma-widen":
			spec.Drift.SigmaWidenPerDay = ptrOf(*dSigma)
		case "drift-slow-share":
			spec.Drift.SlowSharePerDay = ptrOf(*dSlow)
		case "drift-slow-cap":
			spec.Drift.SlowShareCap = ptrOf(*dSlowCap)
		case "drift-outage-rate":
			spec.Drift.OutagesPerHour = ptrOf(*dOutage)
		case "drift-outage-cap":
			spec.Drift.OutageCapPerHour = ptrOf(*dOutageCap)
		case "drift-mix":
			spec.Drift.Mix = ptrOf(*dMix)
		case "drift-mix-start":
			spec.Drift.MixStartDay = ptrOf(*dMixStart)
		case "drift-mix-ramp":
			spec.Drift.MixRampDays = ptrOf(*dMixRamp)
		}
	})
	cli.spec = spec
	return cli, nil
}

// baseSpec resolves the -scenario argument: empty means the all-unset spec
// (pure defaults), a .json path (or any existing file) loads a spec file,
// anything else must be a registered name.
func baseSpec(arg string) (scenario.Spec, error) {
	if arg == "" {
		return scenario.Spec{}, nil
	}
	if strings.HasSuffix(arg, ".json") || fileExists(arg) {
		return scenario.ParseFile(arg)
	}
	if spec, ok := scenario.Lookup(arg); ok {
		return spec, nil
	}
	return scenario.Spec{}, fmt.Errorf("unknown scenario %q: not a registered name (see -list-scenarios) and no such file", arg)
}

func ptrOf[T any](v T) *T { return &v }

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
