package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Dataset serialization: the continual-experiment runner checkpoints each
// day's telemetry so a killed run can rebuild its sliding training window on
// resume. Gob preserves float64 bit patterns exactly, so a reloaded dataset
// trains byte-identically to the original.

// Save writes the dataset in gob format.
func (d *Dataset) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("core: encoding dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset written by Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decoding dataset: %w", err)
	}
	return &d, nil
}

// SaveFile writes the dataset to a file.
func (d *Dataset) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: writing dataset file: %w", err)
	}
	return nil
}

// LoadDatasetFile reads a dataset from a file.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening dataset file: %w", err)
	}
	defer f.Close()
	return LoadDataset(f)
}
