package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracingGate(t *testing.T) {
	SetEnabled(false)
	SetTracer(nil)
	if Tracing() != nil {
		t.Fatal("Tracing() non-nil with no tracer installed")
	}
	tr := NewTracer(1, 16)
	SetTracer(tr)
	defer SetTracer(nil)
	if Tracing() != nil {
		t.Fatal("Tracing() non-nil while recording disabled")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	if Tracing() != tr {
		t.Fatal("Tracing() did not return the installed tracer")
	}
}

func TestSampledDeterministic(t *testing.T) {
	tr := NewTracer(8, 16)
	hits := 0
	for id := int64(0); id < 10000; id++ {
		a, b := tr.Sampled(id), tr.Sampled(id)
		if a != b {
			t.Fatalf("Sampled(%d) not deterministic", id)
		}
		if a {
			hits++
		}
	}
	// 1-in-8 sampling over a well-mixed hash: expect ~1250 of 10000.
	if hits < 1000 || hits > 1500 {
		t.Fatalf("1-in-8 sampling hit %d of 10000 session ids", hits)
	}
	all := NewTracer(1, 16)
	for id := int64(0); id < 100; id++ {
		if !all.Sampled(id) {
			t.Fatalf("sample rate 1 skipped session %d", id)
		}
	}
}

func TestDecisionTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for sess := int64(0); sess < 50; sess++ {
		for seq := uint64(0); seq < 50; seq++ {
			id := DecisionTraceID(sess, seq)
			if id == 0 {
				t.Fatalf("zero trace id for (%d, %d)", sess, seq)
			}
			if id != DecisionTraceID(sess, seq) {
				t.Fatalf("trace id for (%d, %d) not deterministic", sess, seq)
			}
			if seen[id] {
				t.Fatalf("trace id collision at (%d, %d)", sess, seq)
			}
			seen[id] = true
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: 1, ID: uint64(i + 1), Name: "s", Start: int64(i)})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d spans, want 4", len(snap))
	}
	for i, s := range snap {
		if want := int64(6 + i); s.Start != want {
			t.Fatalf("snapshot[%d].Start = %d, want %d (oldest-first unwrap)", i, s.Start, want)
		}
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Span{Trace: uint64(g + 1), ID: tr.NewSpanID(), Name: "x"})
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
}

func TestFlushTraceContext(t *testing.T) {
	ClearFlushTrace()
	if tr, p := FlushTrace(); tr != 0 || p != 0 {
		t.Fatalf("FlushTrace = (%d, %d) with none set", tr, p)
	}
	SetFlushTrace(0, 5) // trace 0 means untraced: ignored
	if tr, _ := FlushTrace(); tr != 0 {
		t.Fatal("SetFlushTrace(0, ...) should be ignored")
	}
	SetFlushTrace(7, 9)
	if tr, p := FlushTrace(); tr != 7 || p != 9 {
		t.Fatalf("FlushTrace = (%d, %d), want (7, 9)", tr, p)
	}
	ClearFlushTrace()
	if tr, _ := FlushTrace(); tr != 0 {
		t.Fatal("ClearFlushTrace did not clear")
	}
}

func TestTraceQuantiles(t *testing.T) {
	var spans []Span
	for i := int64(1); i <= 100; i++ {
		spans = append(spans, Span{Name: "rtt", Dur: i * 1000})
	}
	spans = append(spans, Span{Name: "other", Dur: 1 << 40})
	n, qs := TraceQuantiles(spans, "rtt", []float64{0.50, 0.99, 1.0})
	if n != 100 {
		t.Fatalf("matched %d spans, want 100", n)
	}
	if qs[0] != 50000 || qs[1] != 99000 || qs[2] != 100000 {
		t.Fatalf("quantiles = %v, want [50000 99000 100000]", qs)
	}
	n, qs = TraceQuantiles(spans, "absent", []float64{0.5})
	if n != 0 || qs[0] != 0 {
		t.Fatalf("absent name: n=%d qs=%v, want 0 and [0]", n, qs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Trace: 0xabc, ID: 1, Name: "wire_rtt", Start: 1000, Dur: 9000},
		{Trace: 0xabc, ID: 2, Parent: 1, Name: "queue_wait", Start: 2000, Dur: 1000,
			Attrs: []Attr{{Key: "session", Val: 42}}},
		{Trace: 0xdef, ID: 3, Name: "wire_rtt", Start: 5000, Dur: 4000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "testproc", spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 1 process_name + 2 thread_name metadata + 3 X events.
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("X event %q has dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 3 || complete != 3 {
		t.Fatalf("got %d metadata + %d complete events, want 3 + 3", meta, complete)
	}
	// Parent precedes child on the same tid (Chrome nests by emission order
	// on ties).
	var rttAt, qwAt int
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "wire_rtt" && ev.Args["trace"] == TraceIDString(0xabc) {
			rttAt = i
		}
		if ev.Name == "queue_wait" {
			qwAt = i
			if ev.Args["session"] != float64(42) {
				t.Fatalf("queue_wait lost its attr: %v", ev.Args)
			}
		}
	}
	if rttAt >= qwAt {
		t.Fatal("parent span emitted after child")
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	spans := []Span{
		{Trace: 0xabc, ID: 1, Name: "a", Start: 10, Dur: 5},
		{Trace: 0xabc, ID: 2, Parent: 1, Name: "b", Start: 11, Dur: 3,
			Attrs: []Attr{{Key: "rows", Val: 7}}},
	}
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var line struct {
		Trace  string           `json:"trace"`
		Span   uint64           `json:"span"`
		Parent uint64           `json:"parent"`
		Name   string           `json:"name"`
		DurNS  int64            `json:"dur_ns"`
		Attrs  map[string]int64 `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &line); err != nil {
		t.Fatal(err)
	}
	if line.Name != "b" || line.Parent != 1 || line.Attrs["rows"] != 7 {
		t.Fatalf("second line decoded wrong: %+v", line)
	}
}
