package nn

import (
	"fmt"

	"puffer/internal/obs"
)

// Serving-kernel metrics (write-only; see the obs package contract).
var (
	packedForwardNS = obs.Default.Histogram("nn_packed_forward_ns")
	packedRowsTotal = obs.Default.Counter("nn_packed_rows_total")
)

// PackedMLP is an immutable inference-time snapshot of an MLP, prepared for
// high-throughput batched serving: each layer's weights are copied into a
// transposed slab (input-major, so a kernel sweeping 4-16 outputs at a time
// loads unit-stride vectors), and biases and a reference clone are copied
// alongside. Because it is a snapshot, results never depend on later
// mutation of the source network — a centralized inference service can build
// one PackedMLP per deployed model and reuse it across every request until
// the model rotates.
//
// Forward results are bitwise identical to MLP.ForwardBatchInto row for row:
// on amd64 with AVX2 the kernel vectorizes across outputs while keeping each
// output's accumulation in ascending input order with a separate multiply
// and add rounding per term (no FMA contraction); elsewhere it falls back to
// the snapshot clone's portable batched kernel.
type PackedMLP struct {
	sizes []int
	// wt[l] is layer l's transposed weight matrix, input-major:
	// wt[l][i*nOut+o] == W[l][o*nIn+i].
	wt [][]float64
	// bias[l] is a copy of B[l].
	bias [][]float64
	// ref is a private deep copy of the source network, used by the
	// portable fallback path (and by workspace allocation) so snapshot
	// semantics hold on every platform.
	ref *MLP
}

// NewPacked snapshots the network into its packed serving form.
func (m *MLP) NewPacked() *PackedMLP {
	p := &PackedMLP{
		sizes: append([]int(nil), m.Sizes...),
		wt:    make([][]float64, m.NumLayers()),
		bias:  make([][]float64, m.NumLayers()),
		ref:   m.Clone(),
	}
	for l := 0; l < m.NumLayers(); l++ {
		nIn, nOut := m.Sizes[l], m.Sizes[l+1]
		wt := make([]float64, nIn*nOut)
		for o := 0; o < nOut; o++ {
			row := m.W[l][o*nIn : (o+1)*nIn]
			for i, v := range row {
				wt[i*nOut+o] = v
			}
		}
		p.wt[l] = wt
		p.bias[l] = append([]float64(nil), m.B[l]...)
	}
	return p
}

// InputSize returns the expected input vector length.
func (p *PackedMLP) InputSize() int { return p.sizes[0] }

// OutputSize returns the output vector length.
func (p *PackedMLP) OutputSize() int { return p.sizes[len(p.sizes)-1] }

// SameShape reports whether the snapshot matches the layer sizes of m (and
// can therefore share batch workspaces with it).
func (p *PackedMLP) SameShape(m *MLP) bool { return sameSizes(p.sizes, m.Sizes) }

// NewBatchWorkspace allocates a batch workspace for this snapshot's shape.
func (p *PackedMLP) NewBatchWorkspace(maxRows int) *BatchWorkspace {
	return p.ref.NewBatchWorkspace(maxRows)
}

// ForwardBatchInto runs rows samples through the packed network, one pass
// per layer, exactly like MLP.ForwardBatchInto (same contract, same aliasing
// of the workspace, bitwise-identical logits per row).
func (p *PackedMLP) ForwardBatchInto(ws *BatchWorkspace, xs []float64, rows int) []float64 {
	if !useAVX2 {
		return p.ref.ForwardBatchInto(ws, xs, rows)
	}
	if rows <= 0 {
		panic(fmt.Sprintf("nn: ForwardBatchInto rows = %d, want >= 1", rows))
	}
	if len(xs) != rows*p.InputSize() {
		panic(fmt.Sprintf("nn: batch input length %d, want %d rows x %d", len(xs), rows, p.InputSize()))
	}
	ws.ensure(p.ref, rows)
	in := xs
	last := len(p.sizes) - 2
	for l := 0; l <= last; l++ {
		nIn, nOut := p.sizes[l], p.sizes[l+1]
		out := ws.acts[l][:rows*nOut]
		bias, wt := p.bias[l], p.wt[l]
		for r := 0; r < rows; r++ {
			affineRowT(&out[r*nOut], &bias[0], &in[r*nIn], &wt[0], nIn, nOut)
		}
		if l != last {
			reluVec(out)
		}
		in = out
	}
	return in
}

// PredictDistBatch runs a packed batched forward pass and softmaxes each row
// of logits into dst, mirroring MLP.PredictDistBatch exactly.
func (p *PackedMLP) PredictDistBatch(ws *BatchWorkspace, xs []float64, rows int, dst []float64) []float64 {
	t0 := obs.Now()
	logits := p.ForwardBatchInto(ws, xs, rows)
	nOut := p.OutputSize()
	if dst == nil {
		dst = make([]float64, rows*nOut)
	}
	if len(dst) != rows*nOut {
		panic(fmt.Sprintf("nn: batch dist length %d, want %d rows x %d", len(dst), rows, nOut))
	}
	for r := 0; r < rows; r++ {
		Softmax(dst[r*nOut:(r+1)*nOut], logits[r*nOut:(r+1)*nOut])
	}
	packedForwardNS.ObserveSince(t0)
	packedRowsTotal.Add(int64(rows))
	// The kernel span names the deepest stage of a traced decision; it
	// parents under the flush owner's designated trace (one flush serves
	// many sessions, so the first traced decision of the batch owns it).
	if tr := obs.Tracing(); tr != nil {
		if trace, parent := obs.FlushTrace(); trace != 0 {
			tr.Record(obs.Span{Trace: trace, ID: tr.NewSpanID(), Parent: parent,
				Name: "kernel", Start: t0, Dur: obs.SinceNS(t0),
				Attrs: []obs.Attr{{Key: "rows", Val: int64(rows)}}})
		}
	}
	return dst
}

// Accelerated reports whether the packed path runs the SIMD kernel on this
// machine (false means the snapshot falls back to the portable batched
// kernel — still correct, just without the serving-side speedup).
func Accelerated() bool { return useAVX2 }
