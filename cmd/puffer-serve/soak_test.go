package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSoak is the wall-clock soak harness: it builds the daemon and the
// load generator as real binaries, runs them as subprocesses, kills the
// client mid-run and restarts it, probes the live /metrics endpoint, pins
// the serving invariants (zero clock violations, no model violations, the
// served table byte-identical to the -virtual twin), and SIGTERMs the
// daemon into a clean drain.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak: skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"puffer/cmd/puffer-serve", "puffer/cmd/puffer-load")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}
	serveBin := filepath.Join(bin, "puffer-serve")
	loadBin := filepath.Join(bin, "puffer-load")

	// Day 0 warms instantly (no model to train); a small session count
	// keeps the full trial fast while still spanning every arm.
	common := []string{"-scenario", "stationary", "-day", "0", "-sessions", "48"}

	srv := exec.Command(serveBin, append([]string{
		"-listen", "127.0.0.1:0", "-obs-listen", "127.0.0.1:0", "-drain-timeout", "5s",
	}, common...)...)
	srvOut, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srvErr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The daemon's stderr announces the metrics endpoint; its stdout
	// announces readiness with the bound serving address.
	metricsCh := make(chan string, 1)
	var srvErrBuf bytes.Buffer
	go func() {
		sc := bufio.NewScanner(io.TeeReader(srvErr, &srvErrBuf))
		re := regexp.MustCompile(`http://(\S+)`)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case metricsCh <- m[1]:
				default:
				}
			}
		}
	}()
	srvReader := bufio.NewScanner(srvOut)
	var addr string
	var srvStdout []string
	if srvReader.Scan() {
		line := srvReader.Text()
		srvStdout = append(srvStdout, line)
		f := strings.Fields(line) // "serving <plan> on <addr>"
		if len(f) == 4 && f[0] == "serving" {
			addr = f[3]
		}
	}
	if addr == "" {
		t.Fatalf("no readiness line from daemon; stderr:\n%s", srvErrBuf.String())
	}
	var metricsAddr string
	select {
	case metricsAddr = <-metricsCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never announced its metrics endpoint; stderr:\n%s", srvErrBuf.String())
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		for srvReader.Scan() {
			srvStdout = append(srvStdout, srvReader.Text())
		}
	}()

	// Phase 1: kill a paced client mid-run (SIGKILL — no goodbye frames),
	// proving client death never wounds the daemon.
	killed := exec.Command(loadBin, append([]string{
		"-addr", addr, "-timescale", "0.05", "-q",
	}, common...)...)
	if err := killed.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	killed.Process.Kill()
	killed.Wait()

	// The daemon must still be alive and serving metrics.
	snap := fetchMetrics(t, metricsAddr)
	if _, ok := snap["counters"]; !ok {
		t.Fatalf("live /metrics.json has no counters section: %v", snap)
	}

	// Phase 2: a fresh client runs the full trial to completion against
	// the same daemon. Session state is per-connection, so the earlier
	// carnage must not perturb a single byte of the results table.
	full := exec.Command(loadBin, append([]string{"-addr", addr, "-q"}, common...)...)
	fullOut, err := full.Output()
	if err != nil {
		t.Fatalf("full load run failed: %v", err)
	}

	virtual := exec.Command(loadBin, append([]string{"-virtual", "-q"}, common...)...)
	virtualOut, err := virtual.Output()
	if err != nil {
		t.Fatalf("virtual twin run failed: %v", err)
	}
	if !bytes.Equal(fullOut, virtualOut) {
		t.Fatalf("differential failure: served table != virtual twin\nserved:\n%s\nvirtual:\n%s",
			fullOut, virtualOut)
	}

	// Invariants from the daemon's own metrics.
	snap = fetchMetrics(t, metricsAddr)
	if v := counter(snap, "serve_clock_violations_total"); v != 0 {
		t.Fatalf("serve_clock_violations_total = %v, want 0", v)
	}
	if v := counter(snap, "serve_decisions_total"); v <= 0 {
		t.Fatalf("serve_decisions_total = %v, want > 0", v)
	}

	// Phase 3: SIGTERM drains cleanly — exit 0 and a drain summary. The
	// scanner must hit EOF before Wait runs: Wait closes the pipe and
	// would race the drain summary out of the buffer.
	srv.Process.Signal(syscall.SIGTERM)
	<-srvDone
	werr := srv.Wait()
	if werr != nil {
		t.Fatalf("daemon exited %v on SIGTERM; stderr:\n%s", werr, srvErrBuf.String())
	}
	last := ""
	if len(srvStdout) > 0 {
		last = srvStdout[len(srvStdout)-1]
	}
	if !strings.HasPrefix(last, "drained:") {
		t.Fatalf("daemon's last line %q is not a drain summary; stdout: %v", last, srvStdout)
	}
}

func fetchMetrics(t *testing.T, addr string) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics.json", addr))
	if err != nil {
		t.Fatalf("live metrics endpoint: %v", err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding metrics snapshot: %v", err)
	}
	return snap
}

func counter(snap map[string]any, name string) float64 {
	arr, _ := snap["counters"].([]any)
	for _, e := range arr {
		if m, _ := e.(map[string]any); m["name"] == name {
			v, _ := m["value"].(float64)
			return v
		}
	}
	return 0
}
