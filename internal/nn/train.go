package nn

import (
	"fmt"
	"math"
)

// Optimizer applies a gradient step to a network's parameters. Gradients are
// mean-gradients over the batch the caller accumulated.
type Optimizer interface {
	// Step updates net in place given gradients shaped like net.W / net.B.
	Step(net *MLP, gradW, gradB [][]float64)
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vw, vb [][]float64
}

// Step implements Optimizer.
func (s *SGD) Step(net *MLP, gradW, gradB [][]float64) {
	if s.Momentum != 0 && s.vw == nil {
		s.vw = zerosLike(net.W)
		s.vb = zerosLike(net.B)
	}
	for l := range net.W {
		for i, g := range gradW[l] {
			if s.WeightDecay != 0 {
				g += s.WeightDecay * net.W[l][i]
			}
			if s.Momentum != 0 {
				s.vw[l][i] = s.Momentum*s.vw[l][i] + g
				g = s.vw[l][i]
			}
			net.W[l][i] -= s.LR * g
		}
		for i, g := range gradB[l] {
			if s.Momentum != 0 {
				s.vb[l][i] = s.Momentum*s.vb[l][i] + g
				g = s.vb[l][i]
			}
			net.B[l][i] -= s.LR * g
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64 // defaults to 0.9 if zero
	Beta2 float64 // defaults to 0.999 if zero
	Eps   float64 // defaults to 1e-8 if zero

	t              int
	mw, vw, mb, vb [][]float64
}

// Step implements Optimizer.
func (a *Adam) Step(net *MLP, gradW, gradB [][]float64) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.mw == nil {
		a.mw, a.vw = zerosLike(net.W), zerosLike(net.W)
		a.mb, a.vb = zerosLike(net.B), zerosLike(net.B)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(p, g, m, v []float64) {
		for i := range p {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mh := m[i] / c1
			vh := v[i] / c2
			p[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
	for l := range net.W {
		upd(net.W[l], gradW[l], a.mw[l], a.vw[l])
		upd(net.B[l], gradB[l], a.mb[l], a.vb[l])
	}
}

func zerosLike(p [][]float64) [][]float64 {
	z := make([][]float64, len(p))
	for i := range p {
		z[i] = make([]float64, len(p[i]))
	}
	return z
}

// Trainer accumulates gradients over minibatches and steps an optimizer.
// It supports weighted samples (the paper weights recent days more heavily)
// and both classification (softmax + cross-entropy) and regression (MSE)
// heads. Not safe for concurrent use.
type Trainer struct {
	Net *MLP
	Opt Optimizer

	ws           *Workspace
	gradW, gradB [][]float64
	probs        []float64
	bt           *batchTrainWS
}

// batchTrainWS holds the flat row-major matrices one batched training step
// needs: the packed input batch, per-layer pre- and post-activations from
// the forward pass, per-layer deltas for the backward pass, and scratch for
// the SIMD fast path (transposed weights, a zero bias, a delta column, and
// a per-output gradient row). It grows to the largest minibatch seen and
// never allocates afterwards.
type batchTrainWS struct {
	rows  int
	x     []float64
	zs    [][]float64 // pre-activations per layer (relu mask + logits)
	acts  [][]float64 // post-activations per layer (inputs to layer l+1)
	delta [][]float64 // dLoss/dz per layer
	wt    [][]float64 // transposed weights for the SIMD forward
	zero  []float64   // all-zero bias for bias-free kernel calls
	dcol  []float64   // one delta column, gathered contiguous
	grow  []float64   // one gradient row accumulated by the kernel
}

// ensureBatchWS sizes the batched-training scratch for a rows-sample batch.
func (t *Trainer) ensureBatchWS(rows int) *batchTrainWS {
	bt := t.bt
	if bt == nil {
		bt = &batchTrainWS{
			zs:    make([][]float64, t.Net.NumLayers()),
			acts:  make([][]float64, t.Net.NumLayers()),
			delta: make([][]float64, t.Net.NumLayers()),
		}
		if useAVX2 {
			maxW := 0
			for _, s := range t.Net.Sizes {
				if s > maxW {
					maxW = s
				}
			}
			bt.wt = make([][]float64, t.Net.NumLayers())
			for l := 0; l < t.Net.NumLayers(); l++ {
				bt.wt[l] = make([]float64, len(t.Net.W[l]))
			}
			bt.zero = make([]float64, maxW)
			bt.grow = make([]float64, maxW)
		}
		t.bt = bt
	}
	if rows > bt.rows {
		bt.rows = rows
		bt.x = make([]float64, rows*t.Net.InputSize())
		for l := 0; l < t.Net.NumLayers(); l++ {
			w := rows * t.Net.Sizes[l+1]
			bt.zs[l] = make([]float64, w)
			bt.acts[l] = make([]float64, w)
			bt.delta[l] = make([]float64, w)
		}
		if useAVX2 {
			bt.dcol = make([]float64, rows)
		}
	}
	return bt
}

// NewTrainer creates a Trainer for net with the given optimizer.
func NewTrainer(net *MLP, opt Optimizer) *Trainer {
	return &Trainer{
		Net:   net,
		Opt:   opt,
		ws:    net.NewWorkspace(),
		gradW: zerosLike(net.W),
		gradB: zerosLike(net.B),
		probs: make([]float64, net.OutputSize()),
	}
}

func (t *Trainer) zeroGrads() {
	for l := range t.gradW {
		clearSlice(t.gradW[l])
		clearSlice(t.gradB[l])
	}
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// backprop propagates delta (dLoss/dz of the output layer, already scaled by
// the sample weight) through the network, accumulating into gradW/gradB.
// The workspace must hold the forward state for this sample.
func (t *Trainer) backprop(delta []float64) {
	net := t.Net
	last := net.NumLayers() - 1
	copy(t.ws.deltas[last], delta)
	for l := last; l >= 0; l-- {
		d := t.ws.deltas[l]
		in := t.ws.acts[l]
		nIn := net.Sizes[l]
		gw := t.gradW[l]
		gb := t.gradB[l]
		for o, dv := range d {
			if dv == 0 {
				continue
			}
			row := gw[o*nIn : (o+1)*nIn]
			for i, xi := range in {
				row[i] += dv * xi
			}
			gb[o] += dv
		}
		if l == 0 {
			break
		}
		// delta_{l-1} = (W[l]^T d) * relu'(z_{l-1})
		prev := t.ws.deltas[l-1]
		clearSlice(prev)
		w := net.W[l]
		for o, dv := range d {
			if dv == 0 {
				continue
			}
			row := w[o*nIn : (o+1)*nIn]
			for i := range prev {
				prev[i] += row[i] * dv
			}
		}
		z := t.ws.zs[l-1]
		for i := range prev {
			if z[i] <= 0 {
				prev[i] = 0
			}
		}
	}
}

// TrainClassBatch performs one optimizer step on a weighted minibatch of
// classification samples and returns the weighted mean cross-entropy loss
// (nats). labels[i] indexes the true output bin; weights may be nil for
// uniform weighting.
//
// The whole minibatch runs through the batched kernel: one affineBatch call
// per layer forward (pre-activations retained for the ReLU mask), then a
// layer-by-layer batched backward pass whose gradient matrices accumulate
// in ascending-sample order per element — gradients, loss, and the updated
// weights are bitwise identical to the retained per-sample reference
// (trainClassPerSample), which exists as the differential-test oracle and
// the before/after benchmark baseline.
func (t *Trainer) TrainClassBatch(xs [][]float64, labels []int, weights []float64) float64 {
	if len(xs) != len(labels) {
		panic(fmt.Sprintf("nn: %d inputs vs %d labels", len(xs), len(labels)))
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	totalW := 0.0
	if weights == nil {
		totalW = float64(len(xs))
	} else {
		for _, w := range weights {
			totalW += w
		}
	}
	if totalW <= 0 {
		return 0
	}
	net := t.Net
	rows := len(xs)
	bt := t.ensureBatchWS(rows)
	nIn := net.InputSize()
	for s, x := range xs {
		if len(x) != nIn {
			panic(fmt.Sprintf("nn: input length %d, want %d", len(x), nIn))
		}
		copy(bt.x[s*nIn:(s+1)*nIn], x)
	}

	// Forward: one batched affine per layer, keeping z (mask, logits) and
	// the post-activation inputs of the next layer. The SIMD path runs the
	// same per-row accumulation over freshly transposed weights (weights
	// change every optimizer step, so the transpose is per minibatch — a
	// few thousand copies against hundreds of thousands of multiplies).
	in := bt.x[:rows*nIn]
	last := net.NumLayers() - 1
	for l := 0; l <= last; l++ {
		nI, width := net.Sizes[l], net.Sizes[l+1]
		z := bt.zs[l][:rows*width]
		if useAVX2 {
			wt := bt.wt[l]
			for o := 0; o < width; o++ {
				row := net.W[l][o*nI : (o+1)*nI]
				for i, v := range row {
					wt[i*width+o] = v
				}
			}
			for r := 0; r < rows; r++ {
				affineRowT(&z[r*width], &net.B[l][0], &in[r*nI], &wt[0], nI, width)
			}
		} else {
			affineBatch(z, in, net.W[l], net.B[l], rows, nI, width)
		}
		if l == last {
			break
		}
		a := bt.acts[l][:rows*width]
		for i, v := range z {
			if v > 0 {
				a[i] = v
			} else {
				a[i] = 0
			}
		}
		in = a
	}

	// Output deltas and loss. Zero-weight samples contribute a zero delta
	// row, which the ascending-sample accumulation below treats exactly
	// like the reference path's skip.
	nOut := net.OutputSize()
	logits := bt.zs[last]
	dOut := bt.delta[last]
	loss := 0.0
	for s := 0; s < rows; s++ {
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		drow := dOut[s*nOut : (s+1)*nOut]
		if w == 0 {
			clearSlice(drow)
			continue
		}
		Softmax(t.probs, logits[s*nOut:(s+1)*nOut])
		lbl := labels[s]
		if lbl < 0 || lbl >= len(t.probs) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, len(t.probs)))
		}
		p := t.probs[lbl]
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -w * math.Log(p)
		scale := w / totalW
		for i, pi := range t.probs {
			drow[i] = pi * scale
		}
		drow[lbl] -= scale
	}

	// Backward: per layer, a ΔᵀA gradient accumulation plus the delta
	// propagation d_{l-1} = (d_l · W_l) ⊙ relu'(z_{l-1}). Both are sums
	// over one index in ascending order, which is exactly the transposed
	// affine kernel's contract: the gradient row for output o sums over
	// samples with the activation matrix as "weights" (already
	// sample-major), and a sample's propagated delta sums over outputs
	// with W itself as "weights" (already output-major) — so the SIMD
	// path reuses affineRowT for both, with a zero bias.
	for l := last; l >= 0; l-- {
		nI, nO := net.Sizes[l], net.Sizes[l+1]
		layerIn := bt.x
		if l > 0 {
			layerIn = bt.acts[l-1]
		}
		d := bt.delta[l]
		if useAVX2 {
			tmp := bt.grow[:nI]
			gw := t.gradW[l]
			for o := 0; o < nO; o++ {
				for s := 0; s < rows; s++ {
					bt.dcol[s] = d[s*nO+o]
				}
				affineRowT(&tmp[0], &bt.zero[0], &bt.dcol[0], &layerIn[0], rows, nI)
				row := gw[o*nI : (o+1)*nI]
				for i, v := range tmp {
					row[i] += v
				}
			}
		} else {
			accumGradBlocked(t.gradW[l], d, layerIn, rows, nO, nI)
		}
		gb := t.gradB[l]
		for o := 0; o < nO; o++ {
			acc := 0.0
			for s := 0; s < rows; s++ {
				acc += d[s*nO+o]
			}
			gb[o] += acc
		}
		if l == 0 {
			break
		}
		dp := bt.delta[l-1]
		w := net.W[l]
		z := bt.zs[l-1]
		for s := 0; s < rows; s++ {
			prow := dp[s*nI : (s+1)*nI]
			if useAVX2 {
				affineRowT(&prow[0], &bt.zero[0], &d[s*nO], &w[0], nO, nI)
			} else {
				clearSlice(prow)
				for o, dv := range d[s*nO : (s+1)*nO] {
					if dv == 0 {
						continue
					}
					wrow := w[o*nI : (o+1)*nI]
					for i, wv := range wrow {
						prow[i] += wv * dv
					}
				}
			}
			zrow := z[s*nI : (s+1)*nI]
			for i := range prow {
				if zrow[i] <= 0 {
					prow[i] = 0
				}
			}
		}
	}
	t.Opt.Step(net, t.gradW, t.gradB)
	return loss / totalW
}

// accumGradBlocked adds ΔᵀA into gw: gw[o*nIn+i] += Σ_s d[s*nOut+o] ·
// a[s*nIn+i]. The 2x4 register blocking reuses each loaded delta across
// four inputs and each loaded input across two outputs, while every element
// still accumulates in ascending sample order — bitwise identical to the
// per-sample rank-1 updates of the reference path, without re-walking the
// whole gradient matrix once per sample.
func accumGradBlocked(gw, d, a []float64, rows, nOut, nIn int) {
	o := 0
	for ; o+2 <= nOut; o += 2 {
		g0 := gw[o*nIn : (o+1)*nIn]
		g1 := gw[(o+1)*nIn : (o+2)*nIn]
		i := 0
		for ; i+4 <= nIn; i += 4 {
			var a00, a01, a02, a03 float64
			var a10, a11, a12, a13 float64
			for s := 0; s < rows; s++ {
				d0 := d[s*nOut+o]
				d1 := d[s*nOut+o+1]
				ar := a[s*nIn+i : s*nIn+i+4]
				x0, x1, x2, x3 := ar[0], ar[1], ar[2], ar[3]
				a00 += d0 * x0
				a01 += d0 * x1
				a02 += d0 * x2
				a03 += d0 * x3
				a10 += d1 * x0
				a11 += d1 * x1
				a12 += d1 * x2
				a13 += d1 * x3
			}
			g0[i] += a00
			g0[i+1] += a01
			g0[i+2] += a02
			g0[i+3] += a03
			g1[i] += a10
			g1[i+1] += a11
			g1[i+2] += a12
			g1[i+3] += a13
		}
		for ; i < nIn; i++ {
			var s0, s1 float64
			for s := 0; s < rows; s++ {
				x := a[s*nIn+i]
				s0 += d[s*nOut+o] * x
				s1 += d[s*nOut+o+1] * x
			}
			g0[i] += s0
			g1[i] += s1
		}
	}
	for ; o < nOut; o++ {
		g := gw[o*nIn : (o+1)*nIn]
		for i := 0; i < nIn; i++ {
			var sum float64
			for s := 0; s < rows; s++ {
				sum += d[s*nOut+o] * a[s*nIn+i]
			}
			g[i] += sum
		}
	}
}

// trainClassPerSample is the pre-batching implementation: forward one sample
// at a time through the scalar path and backprop rank-1 gradient updates.
// Retained as the differential-test oracle for TrainClassBatch and as the
// before/after benchmark baseline.
func (t *Trainer) trainClassPerSample(xs [][]float64, labels []int, weights []float64) float64 {
	if len(xs) != len(labels) {
		panic(fmt.Sprintf("nn: %d inputs vs %d labels", len(xs), len(labels)))
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	totalW := 0.0
	if weights == nil {
		totalW = float64(len(xs))
	} else {
		for _, w := range weights {
			totalW += w
		}
	}
	if totalW <= 0 {
		return 0
	}
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		if w == 0 {
			continue
		}
		logits := t.Net.ForwardInto(t.ws, x)
		Softmax(t.probs, logits)
		lbl := labels[s]
		if lbl < 0 || lbl >= len(t.probs) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, len(t.probs)))
		}
		p := t.probs[lbl]
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -w * math.Log(p)
		scale := w / totalW
		for i, pi := range t.probs {
			delta[i] = pi * scale
		}
		delta[lbl] -= scale
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / totalW
}

// TrainRegBatch performs one optimizer step on a weighted minibatch of
// regression samples (MSE loss, linear output) and returns the weighted mean
// squared error. targets[i] must have length OutputSize.
func (t *Trainer) TrainRegBatch(xs, targets [][]float64, weights []float64) float64 {
	if len(xs) != len(targets) {
		panic(fmt.Sprintf("nn: %d inputs vs %d targets", len(xs), len(targets)))
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	totalW := 0.0
	if weights == nil {
		totalW = float64(len(xs))
	} else {
		for _, w := range weights {
			totalW += w
		}
	}
	if totalW <= 0 {
		return 0
	}
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		if w == 0 {
			continue
		}
		out := t.Net.ForwardInto(t.ws, x)
		scale := w / totalW
		for i, o := range out {
			diff := o - targets[s][i]
			loss += w * diff * diff
			delta[i] = 2 * diff * scale
		}
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / totalW
}

// PolicyGradStep performs one step of REINFORCE-style training: for each
// sample, the gradient of -advantage*log(pi(action|x)) - entropyCoeff*H(pi)
// is accumulated, then the optimizer steps once. Used by the Pensieve
// reproduction. Returns the mean policy loss (excluding the entropy bonus).
func (t *Trainer) PolicyGradStep(xs [][]float64, actions []int, advantages []float64, entropyCoeff float64) float64 {
	if len(xs) != len(actions) || len(xs) != len(advantages) {
		panic("nn: PolicyGradStep length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	n := float64(len(xs))
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		logits := t.Net.ForwardInto(t.ws, x)
		Softmax(t.probs, logits)
		a := actions[s]
		adv := advantages[s]
		p := t.probs[a]
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -adv * math.Log(p)
		// d/dlogits of -adv*log p_a  =  adv*(p - onehot_a)
		for i, pi := range t.probs {
			delta[i] = adv * pi / n
			// entropy-bonus gradient: d/dlogits of -H(p) is
			// p_i*(log p_i + H); we *add* coeff * that to move
			// toward higher entropy... i.e., we minimize
			// -coeff*H, whose gradient is coeff*p_i*(log p_i + H).
			if entropyCoeff != 0 && pi > 0 {
				h := Entropy(t.probs)
				delta[i] += entropyCoeff * pi * (math.Log(pi) + h) / n
			}
		}
		delta[a] -= adv / n
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / n
}

// evalRows is the row-block size batched dataset evaluation uses: big
// enough to amortize per-call overhead, small enough that the activation
// matrices of a 64-wide hidden layer stay in L1/L2.
const evalRows = 64

// forEachLogitRow runs the dataset through net in batches and calls visit
// with each sample's index and logit row. The sweep snapshots the net into
// its packed (SIMD) serving form once and drives every batch through it —
// bitwise identical to the portable batched kernel, so evaluation metrics
// never depend on which kernel ran.
func forEachLogitRow(net *MLP, xs [][]float64, visit func(s int, logits []float64)) {
	rows := evalRows
	if len(xs) < rows {
		rows = len(xs)
	}
	nIn, nOut := net.InputSize(), net.OutputSize()
	packed := net.NewPacked()
	ws := packed.NewBatchWorkspace(rows)
	buf := make([]float64, rows*nIn)
	for at := 0; at < len(xs); at += rows {
		b := len(xs) - at
		if b > rows {
			b = rows
		}
		for r := 0; r < b; r++ {
			if len(xs[at+r]) != nIn {
				panic(fmt.Sprintf("nn: sample %d has %d features, want %d", at+r, len(xs[at+r]), nIn))
			}
			copy(buf[r*nIn:(r+1)*nIn], xs[at+r])
		}
		logits := packed.ForwardBatchInto(ws, buf[:b*nIn], b)
		for r := 0; r < b; r++ {
			visit(at+r, logits[r*nOut:(r+1)*nOut])
		}
	}
}

// CrossEntropy evaluates the mean cross-entropy loss (nats) of net on a
// labeled dataset without training, one batched forward pass per row block.
// It is the metric used in the paper's Figure 7 TTP ablation.
func CrossEntropy(net *MLP, xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	probs := make([]float64, net.OutputSize())
	loss := 0.0
	forEachLogitRow(net, xs, func(s int, logits []float64) {
		Softmax(probs, logits)
		p := probs[labels[s]]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	})
	return loss / float64(len(xs))
}

// Accuracy returns the fraction of samples whose argmax prediction matches
// the label.
func Accuracy(net *MLP, xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	hit := 0
	forEachLogitRow(net, xs, func(s int, logits []float64) {
		if ArgMax(logits) == labels[s] {
			hit++
		}
	})
	return float64(hit) / float64(len(xs))
}
