package figures

import (
	"io"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
)

// Fig7Row is one ablation variant's held-out predictor quality.
type Fig7Row struct {
	Variant      core.Variant
	CrossEntropy float64
	Accuracy     float64
	Within1      float64
}

// Fig7 reproduces Figure 7, the TTP ablation study: each variant is trained
// on the identical in-situ dataset and scored on a held-out split at
// predicting transmission-time bins.
func (s *Suite) Fig7(w io.Writer) ([]Fig7Row, error) {
	// Split streams 80/20 into train/test.
	data := s.insituDat
	nTrain := len(data.Streams) * 4 / 5
	train := &core.Dataset{Streams: data.Streams[:nTrain]}
	test := &core.Dataset{Streams: data.Streams[nTrain:]}

	rows := make([]Fig7Row, 0, len(core.AllVariants()))
	for _, v := range core.AllVariants() {
		// Horizon 1 keeps the ablation affordable; step-0 accuracy is
		// what Figure 7 reports.
		ttp := core.NewVariantTTP(rand.New(rand.NewSource(s.Seed+400)), v, 1)
		cfg := trainCfg(s.Seed + 401)
		if _, err := core.Train(ttp, train, cfg); err != nil {
			return nil, err
		}
		ev := core.EvaluateTransTimeMode(ttp, test, 0, core.VariantMode(v))
		rows = append(rows, Fig7Row{
			Variant: v, CrossEntropy: ev.CrossEntropy,
			Accuracy: ev.Accuracy, Within1: ev.Within1,
		})
		s.Logf("  fig7 %-22s CE %.3f acc %.3f within1 %.3f", v, ev.CrossEntropy, ev.Accuracy, ev.Within1)
	}
	var werr error
	line(w, &werr, "Figure 7: TTP ablation (held-out transmission-time prediction)\n")
	line(w, &werr, "%-22s %14s %10s %10s\n", "Variant", "CrossEntropy", "Accuracy", "Within1")
	for _, r := range rows {
		line(w, &werr, "%-22s %14.3f %10.3f %10.3f\n", r.Variant, r.CrossEntropy, r.Accuracy, r.Within1)
	}
	return rows, werr
}

// Sec46Row summarizes one arm of the stale-model trial.
type Sec46Row struct {
	Scheme     string
	StallPct   float64
	StallLo    float64
	StallHi    float64
	SSIM       float64
	Overlapped bool
}

// Sec46 reproduces §4.6's daily-retraining check: a TTP trained on old data
// ("February") runs head-to-head against one freshly retrained with a
// warm start ("daily"). In a stationary deployment the two are statistically
// indistinguishable — the paper's (surprising) result.
func (s *Suite) Sec46(w io.Writer) ([]Sec46Row, error) {
	// "February" model: the suite's in-situ TTP, trained on day-0 data.
	feb := s.InSituTTP

	// "Daily" model: collect fresh telemetry months later (the simulated
	// environment is stationary, as Puffer's turned out to be) and
	// retrain warm-started from the old weights.
	sessions := s.Scale / 5
	if sessions < 100 {
		sessions = 100
	}
	fresh, err := experiment.CollectDataset(experiment.DefaultEnv(), behaviorSchemes(s.Seed+419), sessions, s.Seed+420, 150)
	if err != nil {
		return nil, err
	}
	daily := feb.Clone()
	cfg := trainCfg(s.Seed + 421)
	cfg.WindowDays = 14
	if _, err := core.Train(daily, fresh, cfg); err != nil {
		return nil, err
	}

	trial := s.Scale / 2
	if trial < 200 {
		trial = 200
	}
	res, err := experiment.Run(experiment.Config{
		Env: experiment.DefaultEnv(),
		Schemes: []experiment.Scheme{
			{Name: "Fugu-Feb", New: func() abr.Algorithm { return core.NewFuguNamed("Fugu-Feb", feb) }},
			{Name: "Fugu-Daily", New: func() abr.Algorithm { return core.NewFuguNamed("Fugu-Daily", daily) }},
		},
		Sessions: trial,
		Seed:     s.Seed + 422,
	})
	if err != nil {
		return nil, err
	}
	st := experiment.Analyze(res, experiment.AllPaths, s.Seed+423)
	if len(st) != 2 {
		return nil, errTooFewArms
	}
	overlap := st[0].StallRatio.Overlaps(st[1].StallRatio) && st[0].SSIM.Overlaps(st[1].SSIM)
	rows := make([]Sec46Row, 0, 2)
	var werr error
	line(w, &werr, "Section 4.6: stale TTP vs daily-retrained TTP (stationary deployment)\n")
	line(w, &werr, "%-12s %22s %10s\n", "Model", "Stalled%% [95%% CI]", "SSIM dB")
	for _, r := range st {
		rows = append(rows, Sec46Row{
			Scheme: r.Name, StallPct: 100 * r.StallRatio.Point,
			StallLo: 100 * r.StallRatio.Lo, StallHi: 100 * r.StallRatio.Hi,
			SSIM: r.SSIM.Point, Overlapped: overlap,
		})
		line(w, &werr, "%-12s %7.3f%% [%.3f, %.3f] %7.2f\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi, r.SSIM.Point)
	}
	if overlap {
		line(w, &werr, "CIs overlap: no detectable benefit from daily retraining (matches the paper).\n")
	} else {
		line(w, &werr, "CIs do NOT overlap: retraining mattered in this run.\n")
	}
	return rows, werr
}

var errTooFewArms = errString("figures: expected two arms in the stale-model trial")

type errString string

func (e errString) Error() string { return string(e) }
