package core

import (
	"math"

	"puffer/internal/abr"
	"puffer/internal/tcpsim"
)

// Normalization constants for feature assembly. Inputs are scaled to be
// roughly order-1 so a single learning rate works across features.
const (
	sizeScale  = 1e6   // bytes -> MB
	timeScale  = 1.0   // seconds
	cwndScale  = 100.0 // packets
	rttScale   = 0.1   // seconds -> 100 ms units
	delivScale = 1e7   // bits/s -> 10 Mbit/s units
)

// numTCPFeatures counts the tcp_info fields fed to the TTP: cwnd, in-flight,
// min RTT, smoothed RTT, delivery rate — the fields the paper names.
const numTCPFeatures = 5

// FeatureConfig selects which inputs a predictor sees. The zero value is
// not useful; use DefaultFeatures.
type FeatureConfig struct {
	// HistLen is how many past chunks to include (paper: t = 8).
	HistLen int
	// UseTCPInfo includes the tcp_info snapshot (ablated in Figure 7).
	UseTCPInfo bool
	// UseProposedSize includes the candidate chunk's size; disabling it
	// yields the "throughput predictor" ablation, which predicts a rate
	// independent of what is being sent.
	UseProposedSize bool
}

// DefaultFeatures is the full Fugu input: 8 chunks of history, tcp_info, and
// the proposed size — 22 inputs.
func DefaultFeatures() FeatureConfig {
	return FeatureConfig{HistLen: 8, UseTCPInfo: true, UseProposedSize: true}
}

// Dim returns the input vector length.
func (c FeatureConfig) Dim() int {
	d := 2 * c.HistLen
	if c.UseTCPInfo {
		d += numTCPFeatures
	}
	if c.UseProposedSize {
		d++
	}
	return d
}

// Assemble writes the feature vector into dst (length Dim). hist is
// oldest-first; shorter histories are left-padded with zeros, as at stream
// start.
func (c FeatureConfig) Assemble(dst []float64, hist []abr.ChunkRecord, info tcpsim.Info, proposedSize float64) {
	if len(dst) != c.Dim() {
		panic("core: feature buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	// Past chunk sizes and transmission times, newest in the last slot.
	n := len(hist)
	if n > c.HistLen {
		hist = hist[n-c.HistLen:]
		n = c.HistLen
	}
	off := c.HistLen - n
	for i, r := range hist {
		dst[off+i] = clip(r.Size/sizeScale, 0, 1e3)
		dst[c.HistLen+off+i] = clip(r.TransTime/timeScale, 0, 20)
	}
	k := 2 * c.HistLen
	if c.UseTCPInfo {
		dst[k+0] = clip(info.CWND/cwndScale, 0, 1e3)
		dst[k+1] = clip(info.InFlight/cwndScale, 0, 1e3)
		dst[k+2] = clip(info.MinRTT/rttScale, 0, 1e2)
		dst[k+3] = clip(info.RTT/rttScale, 0, 1e2)
		dst[k+4] = clip(info.DeliveryRate/delivScale, 0, 1e3)
		k += numTCPFeatures
	}
	if c.UseProposedSize {
		dst[k] = clip(proposedSize/sizeScale, 0, 1e3)
	}
}

// AssembleBatch writes one feature row per proposed size into dst (row-major,
// len(sizes) × Dim rows). All rows share the same history and tcp_info — on
// the MPC hot path the candidate sizes of one horizon step differ only in the
// proposed-size feature — so the shared prefix is assembled once and copied,
// and only the last feature is patched per row.
func (c FeatureConfig) AssembleBatch(dst []float64, hist []abr.ChunkRecord, info tcpsim.Info, sizes []float64) {
	dim := c.Dim()
	if len(dst) != len(sizes)*dim {
		panic("core: batch feature buffer has wrong length")
	}
	if len(sizes) == 0 {
		return
	}
	row0 := dst[:dim]
	c.Assemble(row0, hist, info, sizes[0])
	for r := 1; r < len(sizes); r++ {
		row := dst[r*dim : (r+1)*dim]
		copy(row, row0)
		if c.UseProposedSize {
			row[dim-1] = clip(sizes[r]/sizeScale, 0, 1e3)
		}
	}
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Throughput bins for the "throughput predictor" ablation: 21 log-spaced
// rates from ~0.15 Mbit/s to ~250 Mbit/s.
const (
	tputBinBase  = 0.15e6
	tputBinRatio = 1.45
)

// ThroughputBinIndex maps a throughput (bits/s) to its bin.
func ThroughputBinIndex(tput float64) int {
	if tput <= tputBinBase {
		return 0
	}
	i := int(math.Log(tput/tputBinBase)/math.Log(tputBinRatio) + 0.5)
	if i >= abr.NumBins {
		return abr.NumBins - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

// ThroughputBinValue returns the representative rate of a bin (bits/s).
func ThroughputBinValue(i int) float64 {
	return tputBinBase * math.Pow(tputBinRatio, float64(i))
}
