package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"puffer/internal/tcpsim"
)

func sampleDataset() *Dataset {
	return &Dataset{Streams: []StreamObs{
		{Chunks: []ChunkObs{
			{Size: 3.5e5, TransTime: 0.41, Day: 2,
				Info: tcpsim.Info{CWND: 40, InFlight: 12, MinRTT: 0.031, RTT: 0.044, DeliveryRate: 6.2e6}},
			{Size: 5.1e5, TransTime: 0.77, Day: 2,
				Info: tcpsim.Info{CWND: 44, InFlight: 9, MinRTT: 0.031, RTT: 0.048, DeliveryRate: 5.4e6}},
		}},
		{Chunks: []ChunkObs{
			{Size: 1.2e5, TransTime: 0.12, Day: 3,
				Info: tcpsim.Info{CWND: 18, InFlight: 3, MinRTT: 0.012, RTT: 0.013, DeliveryRate: 9.9e6}},
		}},
	}}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip altered dataset:\n%+v\nvs\n%+v", d, back)
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	d := sampleDataset()
	path := filepath.Join(t.TempDir(), "telemetry.gob")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatal("file round trip altered dataset")
	}
	if back.MaxDay() != 3 || back.NumChunks() != 3 {
		t.Fatalf("reloaded dataset summary wrong: day %d, chunks %d", back.MaxDay(), back.NumChunks())
	}
}
