// In-situ vs emulation: the paper's central lesson, in one program.
//
// Two Transmission Time Predictors are trained identically — one on
// telemetry from the deployment environment ("in situ"), one on telemetry
// from the FCC-trace emulation testbed — then both Fugus are deployed on
// the real (heavy-tailed) paths. The emulation-trained model falls apart,
// reproducing Figure 11's middle panel.
//
//	go run ./examples/insitu-vs-emulation
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/internal/core"
)

func trainIn(env puffer.Env, name string, seed int64) *puffer.TTP {
	behavior := []puffer.Scheme{{Name: "BBA", New: puffer.NewBBA}}
	log.Printf("collecting %s telemetry...", name)
	data, err := puffer.CollectDataset(env, behavior, 150, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	ttp := puffer.NewTTP(seed + 1)
	cfg := puffer.DefaultTrainConfig()
	cfg.Epochs = 8
	log.Printf("training %s TTP on %d chunks...", name, data.NumChunks())
	if err := puffer.TrainTTP(ttp, data, cfg); err != nil {
		log.Fatal(err)
	}
	return ttp
}

func main() {
	log.SetFlags(0)
	insitu := trainIn(puffer.DefaultEnv(), "in-situ", 1)
	emu := trainIn(puffer.EmulationEnv(), "emulation", 10)

	log.Println("deploying both on real-world (heavy-tailed) paths...")
	res, err := puffer.RunExperiment(puffer.Config{
		Env: puffer.DefaultEnv(),
		Schemes: []puffer.Scheme{
			{Name: "Fugu (in situ)", New: func() puffer.Algorithm {
				return core.NewFuguNamed("Fugu (in situ)", insitu)
			}},
			{Name: "Fugu (emulation)", New: func() puffer.Algorithm {
				return core.NewFuguNamed("Fugu (emulation)", emu)
			}},
			{Name: "BBA", New: puffer.NewBBA},
		},
		Sessions: 400,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %22s %10s\n", "Scheme", "Stalled% [95% CI]", "SSIM")
	for _, r := range puffer.Analyze(res, puffer.AllPaths, 22) {
		fmt.Printf("%-18s %7.3f%% [%.3f, %.3f] %7.2f dB\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi, r.SSIM.Point)
	}
	fmt.Println("\nThe emulation-trained predictor never saw heavy-tailed behavior,")
	fmt.Println("so it is overconfident exactly when the real network misbehaves.")
}
