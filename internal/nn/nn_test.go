package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMLPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 22, 64, 64, 21)
	if got := m.NumLayers(); got != 3 {
		t.Fatalf("NumLayers = %d, want 3", got)
	}
	if got := m.InputSize(); got != 22 {
		t.Fatalf("InputSize = %d, want 22", got)
	}
	if got := m.OutputSize(); got != 21 {
		t.Fatalf("OutputSize = %d, want 21", got)
	}
	want := 22*64 + 64 + 64*64 + 64 + 64*21 + 21
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestNewMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for single-layer sizes")
		}
	}()
	NewMLP(rand.New(rand.NewSource(1)), 5)
}

func TestForwardDeterministic(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(7)), 4, 8, 3)
	x := []float64{0.5, -1, 2, 0}
	a := m.Forward(x)
	b := m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forward not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Same seed -> same network -> same output.
	m2 := NewMLP(rand.New(rand.NewSource(7)), 4, 8, 3)
	c := m2.Forward(x)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same-seed networks disagree at %d", i)
		}
	}
}

func TestForwardNoHiddenIsAffine(t *testing.T) {
	// A 2-size MLP must be exactly W x + b (the "linear" ablation).
	m := NewMLP(rand.New(rand.NewSource(3)), 3, 2)
	x := []float64{1, -2, 0.5}
	out := m.Forward(x)
	for o := 0; o < 2; o++ {
		want := m.B[0][o]
		for i := 0; i < 3; i++ {
			want += m.W[0][o*3+i] * x[i]
		}
		if math.Abs(out[o]-want) > 1e-12 {
			t.Fatalf("affine output %d = %v, want %v", o, out[o], want)
		}
	}
}

func TestForwardIntoMatchesForward(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(9)), 6, 10, 10, 4)
	ws := m.NewWorkspace()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := m.Forward(x)
		b := m.ForwardInto(ws, x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("trial %d output %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestForwardIntoNoAlloc(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(2)), 22, 64, 64, 21)
	ws := m.NewWorkspace()
	x := make([]float64, 22)
	allocs := testing.AllocsPerRun(100, func() {
		m.ForwardInto(ws, x)
	})
	if allocs != 0 {
		t.Fatalf("ForwardInto allocates %v times per run, want 0", allocs)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp quick-generated values to a sane range.
			logits[i] = math.Mod(v, 50)
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		p := make([]float64, len(logits))
		Softmax(p, logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	logits := []float64{1, 2, 3, 4}
	shifted := []float64{101, 102, 103, 104}
	a := make([]float64, 4)
	b := make([]float64, 4)
	Softmax(a, logits)
	Softmax(b, shifted)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("softmax not shift invariant at %d", i)
		}
	}
}

func TestSoftmaxExtremeLogits(t *testing.T) {
	p := make([]float64, 3)
	Softmax(p, []float64{1000, -1000, 999})
	if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
		t.Fatal("softmax overflowed on large logits")
	}
	if p[0] < p[2] {
		t.Fatal("ordering not preserved")
	}
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v, want 1", sum)
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{math.Log(1), math.Log(2), math.Log(3)}
	got := LogSumExp(x)
	want := math.Log(6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{5, 5, 5}, 0}, // first on ties
		{[]float64{-2, -1, -3}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.in); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := Entropy(uniform), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want %v", got, want)
	}
	point := []float64{1, 0, 0, 0}
	if got := Entropy(point); got != 0 {
		t.Fatalf("point-mass entropy = %v, want 0", got)
	}
}

// numericalGradCheck compares backprop gradients against central finite
// differences for the cross-entropy loss on one sample.
func TestGradientCheckCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewMLP(rng, 5, 7, 4)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	label := 2

	// Analytic gradients via a Trainer with a no-op optimizer.
	tr := NewTrainer(net, &nopOpt{})
	tr.TrainClassBatch([][]float64{x}, []int{label}, nil)

	lossAt := func() float64 {
		return CrossEntropy(net, [][]float64{x}, []int{label})
	}
	const eps = 1e-6
	checkParam := func(p []float64, g []float64, name string, l int) {
		for i := range p {
			orig := p[i]
			p[i] = orig + eps
			up := lossAt()
			p[i] = orig - eps
			down := lossAt()
			p[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d %s[%d]: analytic %v vs numeric %v", l, name, i, g[i], num)
			}
		}
	}
	for l := range net.W {
		checkParam(net.W[l], tr.gradW[l], "W", l)
		checkParam(net.B[l], tr.gradB[l], "B", l)
	}
}

func TestGradientCheckMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewMLP(rng, 4, 6, 2)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	target := []float64{0.3, -1.2}

	tr := NewTrainer(net, &nopOpt{})
	tr.TrainRegBatch([][]float64{x}, [][]float64{target}, nil)

	lossAt := func() float64 {
		out := net.Forward(x)
		s := 0.0
		for i := range out {
			d := out[i] - target[i]
			s += d * d
		}
		return s
	}
	const eps = 1e-6
	for l := range net.W {
		for i := range net.W[l] {
			orig := net.W[l][i]
			net.W[l][i] = orig + eps
			up := lossAt()
			net.W[l][i] = orig - eps
			down := lossAt()
			net.W[l][i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-tr.gradW[l][i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", l, i, tr.gradW[l][i], num)
			}
		}
	}
}

// nopOpt leaves parameters untouched so the trainer's accumulated gradients
// can be inspected.
type nopOpt struct{}

func (nopOpt) Step(*MLP, [][]float64, [][]float64) {}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP(rng, 2, 16, 2)
	tr := NewTrainer(net, &Adam{LR: 0.01})
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		tr.TrainClassBatch(xs, labels, nil)
	}
	if acc := Accuracy(net, xs, labels); acc != 1.0 {
		t.Fatalf("XOR accuracy = %v, want 1.0", acc)
	}
	if loss := CrossEntropy(net, xs, labels); loss > 0.2 {
		t.Fatalf("XOR loss = %v, want < 0.2", loss)
	}
}

func TestLearnsLinearRegression(t *testing.T) {
	// y = 3x1 - 2x2 + 1 learned by a no-hidden-layer net.
	rng := rand.New(rand.NewSource(11))
	net := NewMLP(rng, 2, 1)
	tr := NewTrainer(net, &SGD{LR: 0.05})
	xs := make([][]float64, 64)
	ts := make([][]float64, 64)
	for i := range xs {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		xs[i] = []float64{x1, x2}
		ts[i] = []float64{3*x1 - 2*x2 + 1}
	}
	var loss float64
	for epoch := 0; epoch < 500; epoch++ {
		loss = tr.TrainRegBatch(xs, ts, nil)
	}
	if loss > 1e-3 {
		t.Fatalf("regression loss = %v, want < 1e-3", loss)
	}
	if math.Abs(net.W[0][0]-3) > 0.05 || math.Abs(net.W[0][1]+2) > 0.05 || math.Abs(net.B[0][0]-1) > 0.05 {
		t.Fatalf("learned params W=%v b=%v, want [3 -2] 1", net.W[0], net.B[0])
	}
}

func TestSampleWeighting(t *testing.T) {
	// With all weight on the second sample, training should fit it and
	// ignore the first (conflicting) one.
	rng := rand.New(rand.NewSource(13))
	net := NewMLP(rng, 1, 8, 2)
	tr := NewTrainer(net, &Adam{LR: 0.01})
	xs := [][]float64{{1}, {1}}
	labels := []int{0, 1}
	weights := []float64{0, 1}
	for i := 0; i < 500; i++ {
		tr.TrainClassBatch(xs, labels, weights)
	}
	out := net.Forward([]float64{1})
	if ArgMax(out) != 1 {
		t.Fatalf("weighted training ignored the weighted sample: logits %v", out)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := NewMLP(rng, 3, 4, 2)
	b := a.Clone()
	a.W[0][0] += 100
	if b.W[0][0] == a.W[0][0] {
		t.Fatal("clone shares weight storage with original")
	}
	x := []float64{1, 2, 3}
	outA, outB := a.Forward(x), b.Forward(x)
	same := true
	for i := range outA {
		if outA[i] != outB[i] {
			same = false
		}
	}
	if same {
		t.Fatal("mutating original changed clone output")
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := NewMLP(rng, 22, 64, 64, 21)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 22)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a, b := m.Forward(x), got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roundtripped model differs at output %d", i)
		}
	}
}

func TestLoadRejectsCorruptModel(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("Load accepted garbage input")
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(1)), 3, 2)
	m.W[0] = m.W[0][:3] // corrupt
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("Load accepted a shape-corrupted model")
	}
}

func TestAdamConvergesFasterThanSGDOnIllConditioned(t *testing.T) {
	// Regression on inputs with very different scales — Adam's
	// per-parameter step should cope better than plain SGD.
	make2 := func() (*MLP, [][]float64, [][]float64) {
		rng := rand.New(rand.NewSource(77))
		net := NewMLP(rng, 2, 1)
		xs := make([][]float64, 32)
		ts := make([][]float64, 32)
		for i := range xs {
			x1, x2 := rng.NormFloat64()*100, rng.NormFloat64()*0.01
			xs[i] = []float64{x1, x2}
			ts[i] = []float64{0.01*x1 + 100*x2}
		}
		return net, xs, ts
	}
	netA, xs, ts := make2()
	trA := NewTrainer(netA, &Adam{LR: 0.05})
	netS, _, _ := make2()
	trS := NewTrainer(netS, &SGD{LR: 1e-5}) // larger LR diverges on x1 scale
	var lossA, lossS float64
	for i := 0; i < 300; i++ {
		lossA = trA.TrainRegBatch(xs, ts, nil)
		lossS = trS.TrainRegBatch(xs, ts, nil)
	}
	if lossA >= lossS {
		t.Fatalf("Adam loss %v not better than SGD loss %v", lossA, lossS)
	}
}

func TestPolicyGradShiftsTowardRewardedAction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := NewMLP(rng, 2, 8, 3)
	tr := NewTrainer(net, &SGD{LR: 0.1})
	x := []float64{1, -1}
	before := make([]float64, 3)
	Softmax(before, net.Forward(x))
	for i := 0; i < 50; i++ {
		tr.PolicyGradStep([][]float64{x}, []int{1}, []float64{1.0}, 0)
	}
	after := make([]float64, 3)
	Softmax(after, net.Forward(x))
	if after[1] <= before[1] {
		t.Fatalf("positive advantage did not increase action prob: %v -> %v", before[1], after[1])
	}
	// Negative advantage should decrease the probability.
	for i := 0; i < 50; i++ {
		tr.PolicyGradStep([][]float64{x}, []int{1}, []float64{-1.0}, 0)
	}
	final := make([]float64, 3)
	Softmax(final, net.Forward(x))
	if final[1] >= after[1] {
		t.Fatalf("negative advantage did not decrease action prob: %v -> %v", after[1], final[1])
	}
}

func TestEntropyBonusKeepsPolicySofter(t *testing.T) {
	train := func(coeff float64) float64 {
		rng := rand.New(rand.NewSource(3))
		net := NewMLP(rng, 2, 8, 3)
		tr := NewTrainer(net, &SGD{LR: 0.1})
		x := []float64{0.5, 0.5}
		for i := 0; i < 200; i++ {
			tr.PolicyGradStep([][]float64{x}, []int{0}, []float64{1.0}, coeff)
		}
		p := make([]float64, 3)
		Softmax(p, net.Forward(x))
		return Entropy(p)
	}
	if hFree, hBonus := train(0), train(0.5); hBonus <= hFree {
		t.Fatalf("entropy bonus did not keep policy softer: %v vs %v", hBonus, hFree)
	}
}

func TestDotAndMean(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}
