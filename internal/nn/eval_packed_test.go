package nn

import (
	"math"
	"math/rand"
	"testing"
)

// evalFixture builds a random net plus a labeled dataset big enough to
// span several evaluation row blocks (and a ragged tail).
func evalFixture(t *testing.T, seed int64) (*MLP, [][]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := NewMLP(rng, 22, 64, 64, 21)
	n := 3*evalRows + 17
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		x := make([]float64, net.InputSize())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
		labels[i] = rng.Intn(net.OutputSize())
	}
	return net, xs, labels
}

// TestCrossEntropyAccuracyPackedMatchesPortable: the evaluation sweeps run
// on the packed (SIMD) kernel; this pins them bitwise to a reference
// computed per sample with the portable scalar forward pass.
func TestCrossEntropyAccuracyPackedMatchesPortable(t *testing.T) {
	net, xs, labels := evalFixture(t, 41)

	ws := net.NewWorkspace()
	probs := make([]float64, net.OutputSize())
	var refLoss float64
	refHit := 0
	for s, x := range xs {
		logits := net.ForwardInto(ws, x)
		Softmax(probs, logits)
		p := probs[labels[s]]
		if p < 1e-300 {
			p = 1e-300
		}
		refLoss -= math.Log(p)
		if ArgMax(logits) == labels[s] {
			refHit++
		}
	}
	refCE := refLoss / float64(len(xs))
	refAcc := float64(refHit) / float64(len(xs))

	if ce := CrossEntropy(net, xs, labels); ce != refCE {
		t.Fatalf("CrossEntropy = %v, portable reference = %v (must be bitwise identical)", ce, refCE)
	}
	if acc := Accuracy(net, xs, labels); acc != refAcc {
		t.Fatalf("Accuracy = %v, portable reference = %v (must be bitwise identical)", acc, refAcc)
	}
}
