// Package puffer is the public API of this reproduction of "Learning in
// situ: a randomized experiment in video streaming" (Yan et al., NSDI 2020):
// the Puffer randomized-trial platform and the Fugu ABR algorithm, rebuilt
// in pure Go on a simulated substrate (network paths, a fluid TCP sender,
// a VBR encoding ladder, and a viewer-behavior model).
//
// The quickest way in:
//
//	suite, _ := puffer.NewSuite(puffer.DefaultScale, 1, log.Printf)
//	rows, _ := suite.Fig1(os.Stdout) // the paper's primary results table
//
// Or assemble the pieces yourself: train a TTP with CollectDataset and
// TrainTTP, wrap it in NewFugu, and race it against the classical schemes
// with RunExperiment. See examples/ for full programs.
//
// The MPC hot path is batched end to end: predictors implementing
// BatchPredictor fill the distributions for every candidate quality of a
// horizon step in one call (the TTP runs one matrix-matrix pass per network
// layer over the whole ladder), and the controller plans with an iterative,
// factored value iteration. Custom Algorithm implementations get the same
// treatment by implementing BatchPredictor; plain Predictor still works via
// a per-call fallback.
//
// The continual (daily) loop is RunDaily; wrap an Env's path sampler in a
// DriftingSampler (see DriftPreset) to make the deployment nonstationary —
// the regime where the paper's daily retraining visibly beats a frozen
// model instead of tying it.
//
// The platform's front door is the scenario API: every experiment is one
// declarative, serializable ScenarioSpec (environment, daily-loop shape,
// drift, engine, seed), built with NewScenario options, looked up by name
// (ScenarioByName), or parsed from a committed JSON file
// (ParseScenarioFile), and executed with RunScenario — which also runs the
// frozen-model staleness companion when the spec's ablation is on. The
// spec's content hash guards checkpoint directories against resuming a
// different experiment.
//
// On top of scenarios sits the sweep + results layer: a SweepSpec names a
// base scenario plus axes over spec fields (grids or seeded-random
// samples), and RunSweep expands it deterministically and executes only
// the cells an append-only, content-addressed results index is missing —
// run a grid once, query it forever with QueryResults (filter, project,
// group-and-aggregate). cmd/puffer-sweep is the CLI over the same calls.
//
// Trials can also run on the fleet engine (RunFleetTrial, or
// DailyConfig.Engine = "fleet"): a discrete-event, virtual-time multiplexer
// that serves hundreds of interleaved sessions at once — Poisson arrivals,
// scheme randomization at arrival, and a central InferenceService that runs
// each horizon net's forward pass as one cross-session batch over packed
// SIMD model snapshots. Results are byte-identical to the per-session
// engine at the same seeds; only throughput and the occupancy record
// differ. See ARCHITECTURE.md for the system view.
package puffer

import (
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/figures"
	"puffer/internal/fleet"
	"puffer/internal/netem"
	"puffer/internal/pensieve"
	"puffer/internal/results"
	"puffer/internal/runner"
	"puffer/internal/scenario"
	"puffer/internal/sweep"
	"puffer/internal/telemetry"
)

// Re-exported types: the experiment harness.
type (
	// Env is the world sessions run in (paths, channels, viewers).
	Env = experiment.Env
	// Scheme names an ABR algorithm factory for a trial arm.
	Scheme = experiment.Scheme
	// Config describes a randomized controlled trial.
	Config = experiment.Config
	// Result holds a trial's sessions.
	Result = experiment.Result
	// SchemeStats is one row of a results table (Figure 1/8 style).
	SchemeStats = experiment.SchemeStats
	// ConsortArm is one arm of the CONSORT flow accounting.
	ConsortArm = experiment.ConsortArm
	// Algorithm is the ABR decision interface.
	Algorithm = abr.Algorithm
	// Observation is what a server-side ABR scheme sees per decision.
	Observation = abr.Observation
	// Predictor supplies transmission-time distributions to the MPC.
	Predictor = abr.Predictor
	// BatchPredictor fills a whole horizon step's candidate sizes per
	// call; the MPC prefers it when available.
	BatchPredictor = abr.BatchPredictor
	// TTPPredictor adapts a TTP to Predictor and BatchPredictor.
	TTPPredictor = core.Predictor
	// TTP is Fugu's Transmission Time Predictor.
	TTP = core.TTP
	// Dataset is TTP training telemetry.
	Dataset = core.Dataset
	// TrainConfig controls TTP training.
	TrainConfig = core.TrainConfig
	// Suite bundles trained models and regenerates the paper's figures.
	Suite = figures.Suite
	// DailyConfig describes a continual (multi-day, retrain-nightly)
	// experiment.
	DailyConfig = runner.Config
	// DailyResult is a finished continual experiment.
	DailyResult = runner.Result
	// DayStats is one day's trial aggregate plus its nightly phase.
	DayStats = runner.DayStats
	// ModelSlot atomically publishes the TTP the Fugu arm serves.
	ModelSlot = runner.ModelSlot
	// GapRow is one day of a paired retrained-vs-frozen staleness
	// comparison (see StalenessGaps).
	GapRow = runner.GapRow
	// SchemeAcc and TrialAcc are the mergeable accumulators behind sharded
	// aggregation (fold sessions in, merge shards, analyze once).
	SchemeAcc = experiment.SchemeAcc
	TrialAcc  = experiment.TrialAcc
	// PathSampler draws per-session network paths for an Env.
	PathSampler = netem.Sampler
	// DaySampler is a day-indexed PathSampler: the daily loop passes each
	// experiment day to Env.Paths, so a day-aware family draws that day's
	// sessions from that day's distribution.
	DaySampler = netem.DaySampler
	// DriftSchedule describes how a path population evolves over days
	// (capacity decay, slow-share growth, outage ramps, family mixes).
	DriftSchedule = netem.DriftSchedule
	// DriftingSampler wraps any PathSampler with a DriftSchedule, making
	// the simulated deployment nonstationary.
	DriftingSampler = netem.DriftingSampler
	// FleetConfig tunes the fleet engine: the discrete-event,
	// virtual-time session multiplexer that interleaves hundreds of
	// concurrent sessions and batches TTP inference across them. No
	// field changes results — only throughput and the serving record.
	FleetConfig = fleet.Config
	// FleetStats is one fleet run's serving record: occupancy over
	// virtual time plus the inference service's batching counters.
	FleetStats = fleet.Stats
	// FleetDayStats is the per-day serving record the daily loop stores
	// when running on the fleet engine (DailyConfig.Engine = "fleet").
	FleetDayStats = runner.FleetDayStats
	// InferenceService executes many sessions' staged TTP fills as one
	// cross-session batch per horizon net over packed (SIMD) model
	// snapshots.
	InferenceService = fleet.InferenceService
	// ArrivalProcess draws session arrival times for the fleet engine.
	ArrivalProcess = fleet.ArrivalProcess
	// PoissonArrivals is the platform's natural workload model: Poisson
	// session arrivals at a fixed intensity.
	PoissonArrivals = fleet.PoissonArrivals
	// BurstArrivals is a flash-crowd arrival shape (evenly spaced bursts).
	BurstArrivals = fleet.BurstArrivals
	// ConcurrencySeries counts concurrently live sessions over virtual
	// time (the fleet engine's occupancy record).
	ConcurrencySeries = telemetry.ConcurrencySeries
	// ScenarioSpec is the single declarative description of an
	// experiment: environment, daily-loop shape, model/training knobs,
	// drift schedule, engine, seed, sharding — serializable as strict
	// JSON, defaulted in one place, and content-hashed (the hash guards
	// checkpoint manifests). See RunScenario.
	ScenarioSpec = scenario.Spec
	// ScenarioOption is a functional option for NewScenario.
	ScenarioOption = scenario.Option
	// ScenarioRunOptions are the scheduling-side knobs of RunScenario
	// (workers, checkpoint dir, logging); they never change results.
	ScenarioRunOptions = scenario.RunOptions
	// ScenarioOutcome is a finished scenario run: the fully-defaulted
	// spec, the main result, and the frozen-model companion when the
	// spec's ablation ran.
	ScenarioOutcome = scenario.Outcome
)

// Analysis filters (Figure 8's two panels).
const (
	AllPaths  = experiment.AllPaths
	SlowPaths = experiment.SlowPaths
)

// DefaultScale is the default primary-experiment size in sessions.
const DefaultScale = figures.DefaultScale

// DefaultEnv returns the deployment-like environment (heavy-tailed paths,
// six live channels, the default viewer model).
func DefaultEnv() Env { return experiment.DefaultEnv() }

// EmulationEnv returns the §5.2 emulation testbed (FCC-like paths behind a
// fixed 40 ms shell, replaying a 10-minute clip).
func EmulationEnv() Env { return experiment.EmulationEnv() }

// RunExperiment executes a randomized controlled trial.
func RunExperiment(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// Analyze computes per-scheme statistics with bootstrap confidence
// intervals.
func Analyze(res *Result, filter experiment.AnalysisFilter, seed int64) []SchemeStats {
	return experiment.Analyze(res, filter, seed)
}

// Consort produces the CONSORT-style flow accounting (Figure A1).
func Consort(res *Result) []ConsortArm { return experiment.Consort(res) }

// CollectDataset gathers TTP training telemetry by running the given
// behavior schemes in env — "in situ" when env is the deployment
// environment.
func CollectDataset(env Env, schemes []Scheme, sessions int, seed int64, day int) (*Dataset, error) {
	return experiment.CollectDataset(env, schemes, sessions, seed, day)
}

// NewTTP constructs an untrained Transmission Time Predictor with the
// paper's architecture (per-step 22-64-64-21 networks over a 5-chunk
// horizon).
func NewTTP(seed int64) *TTP {
	return core.NewTTP(rand.New(rand.NewSource(seed)), core.DefaultHorizon, nil,
		core.DefaultFeatures(), core.KindTransTime)
}

// DefaultTrainConfig returns the paper's TTP training setup (14-day window,
// recency weighting).
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// TrainTTP fits a TTP on telemetry with supervised learning.
func TrainTTP(t *TTP, data *Dataset, cfg TrainConfig) error {
	_, err := core.Train(t, data, cfg)
	return err
}

// NewFugu wraps a trained TTP in the stochastic MPC controller — the
// deployed Fugu scheme.
func NewFugu(t *TTP) Algorithm { return core.NewFugu(t) }

// NewTTPPredictor wraps a trained TTP in the batch-capable predictor Fugu
// uses (full-distribution mode), for building custom controllers on top of
// the batched hot path.
func NewTTPPredictor(t *TTP) *TTPPredictor {
	return core.NewPredictor(t, core.ModeProbabilistic)
}

// NewBBA returns buffer-based control, the "simple" scheme.
func NewBBA() Algorithm { return abr.NewBBA() }

// WithExploration wraps a scheme with epsilon-uniform rung exploration,
// used when collecting TTP training data so the predictor sees outcomes
// for chunk sizes the behavior policy would never pick on its own.
func WithExploration(alg Algorithm, epsilon float64, seed int64) Algorithm {
	return abr.NewExplorer(alg, epsilon, seed)
}

// NewMPCHM returns MPC with the harmonic-mean throughput predictor.
func NewMPCHM() Algorithm { return abr.NewMPCHM() }

// NewRobustMPCHM returns RobustMPC with the harmonic-mean predictor.
func NewRobustMPCHM() Algorithm { return abr.NewRobustMPCHM() }

// TrainPensieve trains the Pensieve baseline with policy-gradient RL in the
// emulation environment and returns the deployable agent.
func TrainPensieve(seed int64) Algorithm {
	cfg := pensieve.DefaultTrainConfig()
	cfg.Seed = seed
	agent, _ := pensieve.Train(cfg)
	return agent
}

// NewSuite builds the figure-regeneration suite: collects telemetry, trains
// the in-situ and emulation TTPs and the Pensieve policy. scale is the
// primary experiment's session count (DefaultScale if <= 0); logf may be
// nil.
func NewSuite(scale int, seed int64, logf func(string, ...any)) (*Suite, error) {
	return figures.NewSuite(scale, seed, logf)
}

// ---------------------------------------------------------------------------
// The front door: running experiments.
//
// Every way to execute an experiment is consolidated here, layered from
// least to most declarative:
//
//   - RunExperiment (above): one randomized trial from an explicit Config.
//   - RunFleetTrial: one trial on the fleet engine (virtual-time
//     multiplexing, cross-session batched inference).
//   - RunDaily: the continual loop from an explicit DailyConfig.
//   - RunScenario: one declarative, serializable, content-hashed spec —
//     what the CLI, the nightly workflow, and the figures run.
//   - RunSweep: a grid of scenarios against the results warehouse; cells
//     whose spec hash the index already holds are never re-run.
//
// LoadResults and QueryResults read back what sweeps (and scenario-backed
// figures) recorded. Prefer the most declarative layer that can express
// the experiment: specs hash, checkpoint, dedup, and serialize for free.
// ---------------------------------------------------------------------------

// RunDaily executes (or, with a checkpoint directory, resumes) the in-situ
// continual experiment: each day runs a sharded randomized trial with the
// currently-deployed schemes while telemetry is recorded, and a nightly
// phase warm-start-retrains the TTP on a sliding window of recent days and
// atomically rotates the new model into the Fugu arm for the next day.
// Wrap cfg.Env.Paths in a DriftingSampler to make the deployment
// nonstationary — the regime where daily retraining visibly beats a frozen
// model.
func RunDaily(cfg DailyConfig) (*DailyResult, error) { return runner.Run(cfg) }

// DriftPreset returns a named nonstationarity schedule ("none", "decay",
// "shift", or "mix") for use with DriftingSampler.
func DriftPreset(name string) (DriftSchedule, error) { return netem.DriftPreset(name) }

// RunFleetTrial executes one randomized trial on the fleet engine:
// sessions arrive by cfg's arrival process, interleave in virtual time, and
// park at every ABR decision while the InferenceService runs each horizon
// net's forward pass as one cross-session batch. The returned accumulator
// is byte-identical to the per-session engine at the same seeds; the stats
// report occupancy, batch shape, and wall throughput.
func RunFleetTrial(cfg Config, fc FleetConfig) (*TrialAcc, *FleetStats, error) {
	return fleet.RunTrial(&cfg, fc)
}

// FleetArrivalTimes reproduces the arrival schedule the fleet engine would
// draw for a trial with this seed — deterministic per (process, seed, n).
func FleetArrivalTimes(proc ArrivalProcess, seed int64, n int) []float64 {
	return fleet.ArrivalTimes(proc, seed, n)
}

// StalenessGaps aligns two seed-paired RunDaily results day by day for the
// named arm, yielding the per-day frozen-vs-retrained stall gap.
func StalenessGaps(retrained, frozen *DailyResult, scheme string) []GapRow {
	return runner.StalenessGaps(retrained, frozen, scheme)
}

// NewScenario builds a ScenarioSpec from functional options; anything not
// set resolves to the platform defaults. The option constructors below
// mirror the spec's JSON fields.
func NewScenario(opts ...ScenarioOption) ScenarioSpec { return scenario.New(opts...) }

// Scenario spec options (see internal/scenario for the full set and the
// corresponding JSON fields).
var (
	ScenarioWorld       = scenario.World
	ScenarioDays        = scenario.Days
	ScenarioSessions    = scenario.Sessions
	ScenarioWindow      = scenario.Window
	ScenarioRetrain     = scenario.Retrain
	ScenarioAblation    = scenario.Ablation
	ScenarioSeed        = scenario.Seed
	ScenarioEpochs      = scenario.Epochs
	ScenarioDriftPreset = scenario.Drift
	ScenarioEngine      = scenario.Engine
	ScenarioArrivals    = scenario.ArrivalRate
	ScenarioBursts      = scenario.Bursts
)

// RunScenario compiles and executes a scenario spec — the platform's one
// front door, shared with cmd/puffer-daily and the nightly workflow: the
// main run, plus the frozen-model staleness companion on the same seed
// when the spec enables its ablation. Parse a committed spec file with
// ParseScenarioFile, look one up by name with ScenarioByName, or build one
// with NewScenario.
func RunScenario(spec ScenarioSpec, opt ScenarioRunOptions) (*ScenarioOutcome, error) {
	return scenario.Run(spec, opt)
}

// CompileScenario lowers a spec into the DailyConfig that would execute it,
// for callers who want to drive RunDaily themselves.
func CompileScenario(spec ScenarioSpec) (DailyConfig, error) { return scenario.Compile(spec) }

// ScenarioByName returns a registered built-in scenario ("stationary",
// "drift-shift", "fleet-burst", ...).
func ScenarioByName(name string) (ScenarioSpec, bool) { return scenario.Lookup(name) }

// ScenarioNames lists the registered scenarios.
func ScenarioNames() []string { return scenario.Names() }

// ParseScenarioFile reads a spec from strict JSON (unknown fields are
// rejected) — the format -dump-scenario emits.
func ParseScenarioFile(path string) (ScenarioSpec, error) { return scenario.ParseFile(path) }

// ScenarioListings catalogs the registered scenarios in sorted order, with
// each spec's content hash and checkpoint-guard hash — what
// puffer-daily -list-scenarios and puffer-sweep status print.
func ScenarioListings() []scenario.Listing { return scenario.Listings() }

// Re-exported types: the sweep engine and the results warehouse.
type (
	// SweepSpec describes a sweep: a base scenario (a registered name or
	// an inline spec) plus axes over spec fields, expanding
	// deterministically into content-addressed scenario cells.
	SweepSpec = sweep.Spec
	// SweepAxis is one sweep dimension: a value grid or a seeded-random
	// sample over a spec field ("drift.preset", "daily.sessions", ...).
	SweepAxis = sweep.Axis
	// SweepCell is one expanded experiment of a sweep.
	SweepCell = sweep.Cell
	// SweepExecConfig is the scheduling side of RunSweep (workers, index
	// path, checkpoint root, cell runner); nothing in it changes results.
	SweepExecConfig = sweep.ExecConfig
	// SweepReport summarizes an execution: which cells ran, which the
	// index already held, which failed.
	SweepReport = sweep.Report
	// ResultsRecord is one finished experiment in the warehouse, keyed by
	// its spec's content hash.
	ResultsRecord = results.Record
	// ResultsIndex is a loaded append-only results index.
	ResultsIndex = results.Index
	// ResultsQuery filters, projects, and aggregates index rows.
	ResultsQuery = results.Query
	// ResultsTable is a query result with deterministic row/column order.
	ResultsTable = results.Table
)

// ParseSweepFile reads a sweep spec from strict JSON.
func ParseSweepFile(path string) (SweepSpec, error) { return sweep.ParseFile(path) }

// RunSweep expands the sweep and executes exactly the cells whose spec
// hash ec.IndexPath is missing, across a bounded worker pool (same-guard
// cells serialize so they can share checkpoint directories), appending
// records to the index in expansion order — re-launching a partial sweep
// resumes only missing cells and converges on the same index bytes
// (modulo timing/host) as an uninterrupted run. ec.Run defaults to
// running cells in-process; cmd/puffer-sweep substitutes a subprocess
// runner.
func RunSweep(sw SweepSpec, ec SweepExecConfig) (*SweepReport, error) {
	if ec.Run == nil {
		ec.Run = sweep.InProcess(scenario.RunOptions{Logf: ec.Logf})
	}
	return sweep.Execute(sw, ec)
}

// LoadResults loads a results index (a missing file is an empty index).
func LoadResults(path string) (*ResultsIndex, error) { return results.Load(path) }

// QueryResults runs one query against a results index file: predicates,
// projection, optional group-and-aggregate, optional per-day gap rows.
// Results depend only on the set of distinct records, never on the order
// they were appended.
func QueryResults(indexPath string, q ResultsQuery) (*ResultsTable, error) {
	ix, err := results.Load(indexPath)
	if err != nil {
		return nil, err
	}
	return ix.Query(q)
}

// ParseResultPreds parses a predicate list like
// "drift.preset=shift,daily.sessions>=100" for ResultsQuery.Where.
func ParseResultPreds(s string) ([]results.Pred, error) { return results.ParsePreds(s) }
