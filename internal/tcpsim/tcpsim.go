package tcpsim

import (
	"math"
	"math/rand"

	"puffer/internal/netem"
)

// MSS is the segment size used to express cwnd and in-flight in packets,
// matching how tcp_info reports them.
const MSS = 1448.0

// Info mirrors the subset of Linux tcp_info that Puffer records with every
// video_sent measurement and feeds to the TTP.
type Info struct {
	CWND         float64 // congestion window, packets (tcpi_snd_cwnd)
	InFlight     float64 // unacknowledged packets in flight
	MinRTT       float64 // minimum observed RTT, seconds (tcpi_min_rtt)
	RTT          float64 // smoothed RTT estimate, seconds (tcpi_rtt)
	DeliveryRate float64 // recent goodput estimate, bits/s (tcpi_delivery_rate)
}

// Conn is one TCP connection. A Puffer session keeps a single connection
// across channel changes, so a Conn's lifetime is the session's.
// Not safe for concurrent use.
type Conn struct {
	path netem.Path
	rng  *rand.Rand

	now float64 // absolute simulation time, seconds

	minRTT  float64
	srtt    float64
	btlBw   float64 // pacing-gain bandwidth estimate, bytes/s (windowed-max semantics)
	deliv   float64 // most recent delivery-rate sample, bytes/s
	queue   float64 // standing queue at the bottleneck, bytes
	startup bool    // slow-start/startup phase
	noGrow  int     // consecutive rounds without >=25% bandwidth growth
}

// Dial opens a connection over path at absolute time start, charging two
// RTTs of handshake (TCP + TLS, as on Puffer's WebSocket-over-TLS).
func Dial(path netem.Path, rng *rand.Rand, start float64) *Conn {
	if err := path.Trace.Validate(); err != nil {
		panic("tcpsim: " + err.Error())
	}
	base := path.BaseRTT * (1 + 0.05*math.Abs(rng.NormFloat64()))
	c := &Conn{
		path:    path,
		rng:     rng,
		now:     start + 2*base,
		minRTT:  base,
		srtt:    base * 1.1,
		startup: true,
	}
	// After the handshake the kernel has only the initial window's worth
	// of samples: the delivery-rate estimate is IW/RTT — an RTT-driven
	// signal, which is exactly the cold-start information Figure 9 says
	// Fugu exploits.
	c.btlBw = 10 * MSS / c.srtt
	c.deliv = c.btlBw
	return c
}

// Now returns the connection's current absolute time.
func (c *Conn) Now() float64 { return c.now }

// Path returns the path this connection runs over.
func (c *Conn) Path() netem.Path { return c.path }

// Info returns the current tcp_info-equivalent snapshot, with small
// measurement noise on the delivery-rate estimate.
func (c *Conn) Info() Info {
	cwndBytes := c.cwndBytes()
	inFlight := math.Min(cwndBytes, c.deliv*c.srtt+c.queue)
	return Info{
		CWND:         cwndBytes / MSS,
		InFlight:     inFlight / MSS,
		MinRTT:       c.minRTT,
		RTT:          c.srtt,
		DeliveryRate: c.deliv * 8 * math.Exp(0.05*c.rng.NormFloat64()),
	}
}

// cwndBytes is BBR's cwnd: twice the estimated BDP, floored at the initial
// window.
func (c *Conn) cwndBytes() float64 {
	return math.Max(10*MSS, 2*c.btlBw*c.minRTT)
}

// capacityNow returns the bottleneck capacity in bytes/s at the current time.
func (c *Conn) capacityNow() float64 {
	return c.path.Trace.RateAt(c.now) / 8
}

// rttNow returns the instantaneous RTT including queueing delay.
func (c *Conn) rttNow(capBytes float64) float64 {
	if capBytes <= 0 {
		return c.minRTT
	}
	return c.minRTT + c.queue/capBytes
}

// Wait advances the clock without sending (the server pacing chunks when the
// client buffer is full). The bottleneck queue drains while idle.
func (c *Conn) Wait(dt float64) {
	if dt <= 0 {
		return
	}
	capBytes := c.capacityNow()
	c.queue = math.Max(0, c.queue-capBytes*dt)
	c.now += dt
}

// Transfer sends size bytes and returns the elapsed transmission time: the
// interval from the send decision until the last byte reaches the client.
func (c *Conn) Transfer(size float64) float64 {
	elapsed, _ := c.TransferUpTo(size, math.Inf(1))
	return elapsed
}

// TransferUpTo sends size bytes but gives up after maxDur seconds of
// simulated time (a client that has long since stalled out will abandon).
// It returns the elapsed time and whether the transfer completed.
func (c *Conn) TransferUpTo(size, maxDur float64) (elapsed float64, completed bool) {
	if size <= 0 {
		return 0, true
	}
	start := c.now
	deadline := start + maxDur
	// The last byte arrives one one-way delay after it clears the
	// bottleneck; charge half the base RTT up front.
	owd := c.minRTT / 2
	remaining := size

	for remaining > 0 {
		if c.now >= deadline {
			c.noteDelivery(0.5 * c.deliv) // a struggling sample
			return c.now + owd - start, false
		}
		capBytes := math.Max(c.capacityNow(), 1)
		rtt := c.rttNow(capBytes)
		// One "round": an RTT, clipped to the capacity segment and
		// the deadline.
		dt := rtt
		if segEnd := c.path.Trace.SegmentEnd(c.now); c.now+dt > segEnd {
			dt = segEnd - c.now
		}
		if c.now+dt > deadline {
			dt = deadline - c.now
		}
		if dt < 1e-6 {
			dt = 1e-6
		}

		// Offered rate: pacing-gain times the bandwidth estimate in
		// startup, a gentle probe above it in steady state, capped by
		// the congestion window.
		gain := 1.05
		if c.startup {
			gain = 2.0
		}
		offered := math.Min(gain*c.btlBw, c.cwndBytes()/rtt)

		// Bottleneck dynamics over dt.
		var delivered float64 // bytes/s reaching the client
		qcap := c.path.QueueCapacity * capBytes
		if offered >= capBytes {
			delivered = capBytes
			c.queue = math.Min(qcap, c.queue+(offered-capBytes)*dt)
			if c.queue >= qcap {
				// Buffer full: loss/backoff pins the estimate
				// to the true capacity.
				c.btlBw = capBytes
				c.startup = false
			}
		} else {
			// Sender below capacity: spare capacity drains the
			// queue.
			drain := math.Min(c.queue, (capBytes-offered)*dt)
			c.queue -= drain
			delivered = offered + drain/dt
			if delivered > capBytes {
				delivered = capBytes
			}
		}

		sent := delivered * dt
		if sent >= remaining {
			// Solve the exact finish time within this round.
			c.now += remaining / delivered
			remaining = 0
			c.updateRTT(c.rttNow(capBytes))
			c.noteDelivery(delivered)
			break
		}
		remaining -= sent
		c.now += dt
		c.updateRTT(rtt)
		c.noteDelivery(delivered)
	}
	return c.now + owd - start, true
}

// noteDelivery feeds one delivery-rate sample into the estimators.
func (c *Conn) noteDelivery(rate float64) {
	if rate <= 0 {
		return
	}
	prev := c.btlBw
	if rate > c.btlBw {
		c.btlBw = rate
	} else {
		// Windowed-max expiry: the estimate decays toward reality,
		// giving BBR's characteristic lag after a capacity drop.
		c.btlBw = math.Max(rate, c.btlBw*0.92)
	}
	c.deliv = rate
	if c.startup {
		if c.btlBw < prev*1.25 {
			c.noGrow++
			if c.noGrow >= 3 {
				c.startup = false
			}
		} else {
			c.noGrow = 0
		}
	}
}

// updateRTT folds an RTT sample into the smoothed and minimum estimates.
func (c *Conn) updateRTT(sample float64) {
	c.srtt = 0.875*c.srtt + 0.125*sample
	if sample < c.minRTT {
		c.minRTT = sample
	}
}
