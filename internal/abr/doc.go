// Package abr defines the adaptive-bitrate framework shared by every scheme
// in the study: the per-decision Observation a server-side ABR algorithm
// sees, the SSIM-based QoE objective from the paper's Equation 1, the
// transmission-time discretization used by stochastic MPC and the TTP, and
// the classical algorithms the randomized trial compares Fugu against.
//
// The centerpiece is MPC, the model-predictive controller of §4.2: given a
// Predictor that supplies a transmission-time distribution for each
// candidate chunk size, it maximizes expected QoE over a receding horizon
// by value iteration over (step, buffer, previous quality). The production
// path is batched and factored: when the predictor implements
// BatchPredictor, the MPC fills every candidate's distribution for a
// horizon step in one call, hoists the prediction expectation out of the
// previous-quality dimension, and suffix-sums the expected-stall base term.
// The seed planner survives as MPC.ChooseReference, the differential-test
// oracle for all of that.
//
// Main entry points:
//
//   - Algorithm: the decision interface (Choose over an Observation);
//     Observation / ChunkRecord: the server-side state.
//   - MPC with NewMPC / core.NewFugu: the stochastic controller; Predictor
//     and BatchPredictor are the prediction plug points; QoEWeights is
//     Equation 1.
//   - NewMPCHM / NewRobustMPCHM: MPC over the harmonic-mean throughput
//     predictor (the paper's MPC-HM / RobustMPC-HM arms);
//     HarmonicMeanPredictor for custom controllers.
//   - NewBBA: buffer-based control (the "simple" scheme); NewRateBased and
//     NewBOLA: related-work baselines; Catalog lists every registered
//     scheme.
//   - NewExplorer: epsilon-uniform rung exploration wrapped around any
//     scheme, used when collecting TTP training data.
//   - DeferredAlgorithm: the split decision protocol (PrepareChoose /
//     FinishChoose) the fleet engine parks sessions around so an external
//     service can batch prediction across concurrent sessions; MPC and
//     Explorer implement it with Choose ≡ Prepare;Finish guaranteed.
//   - BinIndex / BinValue / NumBins: the transmission-time discretization
//     shared with the TTP.
package abr
