package serve

import (
	"fmt"
	"os"
	"strings"

	"puffer/internal/scenario"
)

// ResolveSpec is the serving CLIs' shared spec pipeline: resolve the
// -scenario argument (a registered name or a spec file), apply the
// -sessions / -arrival-rate overrides, default, validate, and apply the
// PUFFER_SCENARIO_SCALE smoke scaling. puffer-serve and puffer-load both
// go through this one function, so with the same arguments and environment
// their plan hashes can only agree — or fail loudly in the handshake.
func ResolveSpec(arg string, sessions int, arrivalRate float64) (scenario.Spec, error) {
	var spec scenario.Spec
	switch {
	case arg == "":
		// Pure defaults.
	case strings.HasSuffix(arg, ".json") || fileExists(arg):
		s, err := scenario.ParseFile(arg)
		if err != nil {
			return scenario.Spec{}, err
		}
		spec = s
	default:
		s, ok := scenario.Lookup(arg)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("unknown scenario %q: not a registered name and no such file", arg)
		}
		spec = s
	}
	if sessions > 0 {
		spec.Daily.Sessions = sessions
	}
	if arrivalRate > 0 {
		spec.Engine.Arrival = scenario.ArrivalSpec{Process: "poisson", Rate: arrivalRate}
	}
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return scenario.ScaleFromEnv(spec), nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
