// Command figures regenerates the paper's tables and figures on the
// simulated substrate. Each figure is addressed by its paper id:
//
//	figures -fig 1            # the primary results table
//	figures -fig 8 -scale 3000
//	figures -fig all          # everything (slow)
//	figures -fig drift -results results/index.jsonl
//	                          # read the warehouse; run only missing cells
//
// Figure ids: 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, A1, 3.4, 4.6, 5.3, plus
// "drift" — the staleness ablation in a nonstationary deployment (the
// drift extension of §4.6) — and "fleet" — the serving-engine comparison
// (per-session vs virtual-time fleet multiplexing with cross-session
// batched inference).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"puffer/internal/figures"
	"puffer/internal/obscli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a single error return, so the
// observability teardown always executes — log.Fatal would skip the
// defers.
func run() error {
	fig := flag.String("fig", "1", "figure/section id to regenerate, or 'all'")
	scale := flag.Int("scale", figures.DefaultScale, "primary experiment size in sessions")
	seed := flag.Int64("seed", 1, "suite seed")
	resultsPath := flag.String("results", "", "results index: scenario-backed figures (drift, fleet) read it and only launch missing cells, appending fresh records (empty: always run)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	var obsOpts obscli.Options
	obsOpts.Register(flag.CommandLine)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	stopObs, err := obsOpts.Start(false, logf)
	if err != nil {
		return err
	}
	defer stopObs()

	// The suite trains its TTPs up front, which dominates the command's
	// runtime — so build it lazily, on the first figure that actually
	// needs one. Static figures (the algorithm catalog) stay instant.
	var suite *figures.Suite
	getSuite := func() (*figures.Suite, error) {
		if suite != nil {
			return suite, nil
		}
		s, err := figures.NewSuite(*scale, *seed, logf)
		if err != nil {
			return nil, err
		}
		s.Results = *resultsPath
		suite = s
		return suite, nil
	}

	w := os.Stdout
	runFig := func(id string) error {
		if id == "5" {
			// Figure 5 is the static algorithm catalog: no experiment, no
			// trained models.
			return new(figures.Suite).Fig5(w)
		}
		suite, err := getSuite()
		if err != nil {
			return err
		}
		switch id {
		case "1":
			_, err := suite.Fig1(w)
			return err
		case "2":
			_, err := suite.Fig2(w)
			return err
		case "3":
			_, err := suite.Fig3(w)
			return err
		case "4":
			_, err := suite.Fig4(w)
			return err
		case "7":
			_, err := suite.Fig7(w)
			return err
		case "8":
			_, _, err := suite.Fig8(w)
			return err
		case "9":
			_, err := suite.Fig9(w)
			return err
		case "10":
			_, err := suite.Fig10(w)
			return err
		case "11":
			_, err := suite.Fig11(w)
			return err
		case "A1", "a1":
			_, err := suite.FigA1(w)
			return err
		case "3.4":
			_, err := suite.Sec34(w)
			return err
		case "4.6":
			_, err := suite.Sec46(w)
			return err
		case "5.3":
			_, err := suite.Sec53(w)
			return err
		case "drift":
			_, err := suite.FigDrift(w)
			return err
		case "fleet":
			_, err := suite.FigFleet(w)
			return err
		default:
			return fmt.Errorf("unknown figure id %q", id)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"1", "2", "3", "4", "5", "7", "8", "9", "10", "11", "A1", "3.4", "4.6", "5.3", "drift", "fleet"}
	}
	for _, id := range ids {
		if err := runFig(id); err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
