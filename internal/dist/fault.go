package dist

import (
	"fmt"
	"strconv"
	"strings"
)

// EnvFault names the fault-injection env knob. Workers read it at startup;
// the value selects one (day, shard) assignment to sabotage on its first
// attempt, e.g.
//
//	PUFFER_DIST_FAULT=kill-worker:day1:shard2
//	PUFFER_DIST_FAULT=hang-worker:day0:shard0
//
// kill-worker runs half the shard's sessions then exits the process
// mid-shard; hang-worker blocks forever (tripping the coordinator's shard
// deadline). Both fire only at attempt 0, so the reassigned shard
// completes and tests can prove the final results are byte-identical to
// an unfaulted run.
const EnvFault = "PUFFER_DIST_FAULT"

// Fault kinds.
const (
	FaultKill = "kill-worker"
	FaultHang = "hang-worker"
)

// Fault is a parsed PUFFER_DIST_FAULT value. The zero value means no
// fault.
type Fault struct {
	Kind  string
	Day   int
	Shard int
}

// ParseFault parses a PUFFER_DIST_FAULT value ("" means no fault).
func ParseFault(s string) (Fault, error) {
	if s == "" {
		return Fault{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Fault{}, fmt.Errorf("dist: bad %s %q: want kind:dayN:shardM", EnvFault, s)
	}
	f := Fault{Kind: parts[0]}
	if f.Kind != FaultKill && f.Kind != FaultHang {
		return Fault{}, fmt.Errorf("dist: bad %s kind %q: want %s or %s", EnvFault, f.Kind, FaultKill, FaultHang)
	}
	var err error
	if f.Day, err = faultIndex(parts[1], "day"); err != nil {
		return Fault{}, fmt.Errorf("dist: bad %s %q: %w", EnvFault, s, err)
	}
	if f.Shard, err = faultIndex(parts[2], "shard"); err != nil {
		return Fault{}, fmt.Errorf("dist: bad %s %q: %w", EnvFault, s, err)
	}
	return f, nil
}

// faultIndex parses one "dayN"/"shardM" component.
func faultIndex(s, prefix string) (int, error) {
	digits, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("component %q does not start with %q", s, prefix)
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("component %q: not a non-negative index", s)
	}
	return n, nil
}

// Matches reports whether this fault targets the given assignment kind and
// coordinates. Assignment attempts past the first never match.
func (f Fault) Matches(kind string, a assignMsg) bool {
	return f.Kind == kind && f.Day == a.Day && f.Shard == a.Shard && a.Attempt == 0
}
