package experiment

import (
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/media"
	"puffer/internal/netem"
	"puffer/internal/player"
	"puffer/internal/tcpsim"
	"puffer/internal/telemetry"
)

// Outcome records why a stream ended.
type Outcome int

const (
	// OutcomeFinished: the viewer watched their intended duration.
	OutcomeFinished Outcome = iota
	// OutcomeNeverPlayed: startup outlasted the viewer's patience.
	OutcomeNeverPlayed
	// OutcomeAbandonedStall: a stall drove the viewer away.
	OutcomeAbandonedStall
	// OutcomeDrifted: the viewer drifted off (quality-coupled hazard).
	OutcomeDrifted
	// OutcomeBadDecoder: excluded for a slow client decoder.
	OutcomeBadDecoder
)

// endsSession reports whether the outcome terminates the whole session
// (the viewer left the site) rather than just the stream.
func (o Outcome) endsSession() bool {
	return o == OutcomeAbandonedStall || o == OutcomeDrifted
}

// Recorder observes every sent chunk; the TTP's training data is gathered
// through this hook.
type Recorder interface {
	RecordChunk(day int, streamKey int, obs core.ChunkObs)
}

// DecideHook intercepts every ABR decision of a session. An execution
// engine that multiplexes many sessions (the fleet engine) uses it to park
// the session at its decision points: now is the session connection's
// current time, and the hook must return exactly what alg.Choose(obs) would
// — e.g. by splitting a DeferredAlgorithm around an external batched
// inference pass. A nil hook means decisions run inline via alg.Choose.
type DecideHook interface {
	Decide(alg abr.Algorithm, obs *abr.Observation, now float64) int
}

// streamParams bundles the state one stream needs.
type streamParams struct {
	env      *Env
	alg      abr.Algorithm
	conn     *tcpsim.Conn
	rng      *rand.Rand
	scheme   string
	session  int
	streamIX int
	intended float64 // seconds the viewer means to watch this stream
	day      int
	recorder Recorder
	hook     DecideHook
}

// decide routes one decision through the hook when present.
func (p *streamParams) decide(obs *abr.Observation) int {
	if p.hook != nil {
		return p.hook.Decide(p.alg, obs, p.conn.Now())
	}
	return p.alg.Choose(obs)
}

// runStream simulates one stream over an existing connection and returns
// its summary and outcome.
func runStream(p streamParams) (telemetry.StreamSummary, Outcome) {
	env := p.env
	src := env.newSource(p.rng)
	buf := &player.Buffer{Cap: env.BufferCap}
	builder := telemetry.NewSummaryBuilder(p.session, p.streamIX, p.scheme)
	p.alg.Reset()

	if p.rng.Float64() < env.BadDecoderProb {
		return builder.Finish(0, 0, 0, false, true), OutcomeBadDecoder
	}

	// The encoder runs ahead of the playhead: keep LookAhead chunks of
	// the upcoming schedule materialized.
	horizon := make([]media.Chunk, 0, env.LookAhead)
	for len(horizon) < env.LookAhead {
		horizon = append(horizon, src.Next())
	}

	history := make([]abr.ChunkRecord, 0, abr.HistoryLen)
	outcome := OutcomeFinished
	patience := env.Watch.StartupPatience(p.rng)
	streamStart := p.conn.Now()
	lastQuality := -1
	lastSSIM := 0.0
	maxChunks := int(p.intended/media.ChunkDuration) + 8

	for chunkIX := 0; chunkIX < maxChunks; chunkIX++ {
		obs := abr.Observation{
			ChunkIndex:  chunkIX,
			Buffer:      buf.Level(),
			BufferCap:   env.BufferCap,
			LastQuality: lastQuality,
			LastSSIM:    lastSSIM,
			History:     history,
			TCP:         p.conn.Info(),
			Horizon:     horizon,
		}
		q := p.decide(&obs)
		if q < 0 || q >= len(horizon[0].Versions) {
			q = 0
		}
		enc := horizon[0].Versions[q]

		infoAtSend := obs.TCP
		deadline := buf.Level() + env.MaxStall
		elapsed, completed := p.conn.TransferUpTo(enc.Size, deadline)

		if p.recorder != nil && completed {
			// Key streams uniquely so telemetry sequences do not mix
			// across channel changes.
			p.recorder.RecordChunk(p.day, p.session*16+p.streamIX, core.ChunkObs{
				Size: enc.Size, TransTime: elapsed, Info: infoAtSend, Day: p.day,
			})
		}

		if !completed {
			// The transfer outlasted any plausible patience.
			if !buf.Playing() {
				outcome = OutcomeNeverPlayed
			} else {
				buf.CompleteChunk(elapsed, media.ChunkDuration)
				outcome = OutcomeAbandonedStall
			}
			break
		}

		stall := buf.CompleteChunk(elapsed, media.ChunkDuration)
		builder.Chunk(enc.SSIMdB, enc.Size, infoAtSend.DeliveryRate)

		if !buf.Playing() {
			startup := p.conn.Now() - streamStart
			if startup > patience {
				outcome = OutcomeNeverPlayed
				break
			}
			buf.StartPlayback(startup)
		}

		if stall > 0 && env.Watch.AbandonOnStall(p.rng, stall) {
			outcome = OutcomeAbandonedStall
			break
		}
		if env.Watch.LeaveAfterChunk(p.rng, enc.SSIMdB) {
			outcome = OutcomeDrifted
			break
		}
		if buf.Played >= p.intended {
			break
		}

		// Bookkeeping for the next decision.
		history = append(history, abr.ChunkRecord{
			Size: enc.Size, TransTime: elapsed, SSIMdB: enc.SSIMdB, Quality: q,
		})
		if len(history) > abr.HistoryLen {
			history = history[1:]
		}
		lastQuality, lastSSIM = q, enc.SSIMdB
		copy(horizon, horizon[1:])
		horizon[len(horizon)-1] = src.Next()

		// Respect the client's buffer cap: wait for room.
		if wait := buf.RoomWait(media.ChunkDuration); wait > 0 {
			p.conn.Wait(wait)
			buf.Drain(wait)
		}
	}

	neverPlayed := outcome == OutcomeNeverPlayed
	return builder.Finish(buf.Startup, buf.Played, buf.Stalled, neverPlayed, false), outcome
}

// SessionResult is one session's streams plus the time-on-site figure used
// in Figure 10.
type SessionResult struct {
	SessionID int
	Scheme    string
	Streams   []telemetry.StreamSummary
	// Duration is the total time on the video player in seconds, from
	// session start to the last event.
	Duration float64
}

// RunSession simulates a full session: connection setup, a channel-zapping
// phase of short browse streams, then a main viewing stream; channel changes
// reuse the TCP connection, as on Puffer. The experiment day reaches the
// path sampler, so a day-aware (drifting) Env.Paths draws this session's
// network situation from that day's distribution.
func RunSession(env *Env, alg abr.Algorithm, rng *rand.Rand, sessionID int, scheme string, day int, rec Recorder) SessionResult {
	return RunSessionHooked(env, alg, rng, sessionID, scheme, day, rec, nil)
}

// RunSessionHooked is RunSession with every ABR decision routed through
// hook (nil behaves exactly like RunSession). A session's outcome depends
// only on its inputs and the hook honoring the Decide contract, which is
// what lets the fleet engine interleave sessions in virtual time while
// staying byte-identical to sequential execution.
func RunSessionHooked(env *Env, alg abr.Algorithm, rng *rand.Rand, sessionID int, scheme string, day int, rec Recorder, hook DecideHook) SessionResult {
	res := SessionResult{SessionID: sessionID, Scheme: scheme}
	maxDur := env.TraceDuration
	if maxDur <= 0 {
		maxDur = 900
	}
	path := netem.SampleForDay(env.Paths, rng, maxDur, day)
	conn := tcpsim.Dial(path, rng, 0)

	// Browse phase: quick channel changes with short intended durations
	// (these generate the "never began playing" and "<4s" CONSORT rows).
	browse := int(rng.ExpFloat64() * 1.8)
	if browse > 8 {
		browse = 8
	}
	intents := make([]float64, 0, browse+1)
	for i := 0; i < browse; i++ {
		intents = append(intents, 0.5+rng.ExpFloat64()*4)
	}
	intents = append(intents, env.Watch.IntendedDuration(rng))

	for i, intended := range intents {
		sum, outcome := runStream(streamParams{
			env: env, alg: alg, conn: conn, rng: rng,
			scheme: scheme, session: sessionID, streamIX: i,
			intended: intended, day: day, recorder: rec, hook: hook,
		})
		res.Streams = append(res.Streams, sum)
		if outcome.endsSession() {
			break
		}
		// Brief channel-change gap.
		conn.Wait(0.2 + rng.Float64()*0.5)
	}
	res.Duration = conn.Now()
	return res
}
