// Package media models Puffer's video back-end (§2.1): a live source
// de-interlaced into 2.002-second chunks, encoded into a ten-rung H.264
// ladder (about 200 kbps at 240p up to about 5,500 kbps at 1080p), with
// per-chunk SSIM computed against the canonical source.
//
// Real encoders produce chunks whose compressed size and quality vary with
// scene content even at a fixed setting (the paper's Figure 3) — the VBR
// variation that makes "bitrate" a poor proxy and chunk-size-aware
// prediction (the TTP) worthwhile. We reproduce that with an
// autocorrelated scene-complexity process: each chunk draws a complexity
// value from an AR(1) process with occasional scene cuts, and a chunk's
// size and SSIM at every rung are deterministic functions of that
// complexity plus small encoder noise.
//
// Main entry points:
//
//   - Rung / DefaultLadder: the encoding ladder; Encoding is one rung's
//     output for one chunk (size, SSIM dB).
//   - Chunk: one 2.002 s chunk with all its Versions; ChunkDuration is the
//     NTSC-timed constant.
//   - Profile / Channels / FindProfile: the six simulated live stations
//     with distinct complexity characters.
//   - Source / NewSource: the per-stream chunk generator; Clip /
//     RecordClip: a looping pre-recorded clip for the §5.2 emulation
//     methodology.
//   - SSIMdBFromIndex / SSIMIndexFromDB: the quality-unit conversions.
package media
