// Command puffer runs the full randomized controlled trial — the primary
// experiment of the paper — and prints the Figure 1 table, the Figure 8
// panels, and the CONSORT flow.
//
//	puffer -sessions 2000 -seed 1
package main

import (
	"flag"
	"log"
	"os"

	"puffer/internal/figures"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer: ")
	sessions := flag.Int("sessions", figures.DefaultScale, "sessions to randomize across the five schemes")
	seed := flag.Int64("seed", 1, "experiment seed")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	suite, err := figures.NewSuite(*sessions, *seed, logf)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := suite.Fig1(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if _, _, err := suite.Fig8(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if _, err := suite.FigA1(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
