package nn

import "math"

// Softmax writes the softmax of logits into dst (which must be the same
// length) using the max-subtraction trick for numerical stability.
func Softmax(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic("nn: Softmax length mismatch")
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	inv := 1.0 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// affineBatch computes dst = x·Wᵀ + b for a block of samples: x is a
// rows × nIn row-major input matrix, w a nOut × nIn row-major weight matrix,
// and dst the rows × nOut output matrix. The kernel blocks two samples by
// four outputs so each loaded weight is reused across samples and each
// loaded input across outputs, with eight independent accumulator chains to
// hide FMA latency. Every output element is still accumulated in ascending
// input order starting from its bias, so results are bitwise identical to a
// plain per-sample dot product.
func affineBatch(dst, x, w, bias []float64, rows, nIn, nOut int) {
	r := 0
	for ; r+2 <= rows; r += 2 {
		x0 := x[r*nIn : r*nIn+nIn]
		x1 := x[(r+1)*nIn : (r+1)*nIn+nIn]
		d0 := dst[r*nOut : r*nOut+nOut]
		d1 := dst[(r+1)*nOut : (r+1)*nOut+nOut]
		o := 0
		for ; o+4 <= nOut; o += 4 {
			w0 := w[o*nIn : o*nIn+nIn]
			w1 := w[(o+1)*nIn : (o+1)*nIn+nIn]
			w2 := w[(o+2)*nIn : (o+2)*nIn+nIn]
			w3 := w[(o+3)*nIn : (o+3)*nIn+nIn]
			a00, a01, a02, a03 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			a10, a11, a12, a13 := a00, a01, a02, a03
			for i := 0; i < nIn; i++ {
				xi0, xi1 := x0[i], x1[i]
				wv := w0[i]
				a00 += wv * xi0
				a10 += wv * xi1
				wv = w1[i]
				a01 += wv * xi0
				a11 += wv * xi1
				wv = w2[i]
				a02 += wv * xi0
				a12 += wv * xi1
				wv = w3[i]
				a03 += wv * xi0
				a13 += wv * xi1
			}
			d0[o], d0[o+1], d0[o+2], d0[o+3] = a00, a01, a02, a03
			d1[o], d1[o+1], d1[o+2], d1[o+3] = a10, a11, a12, a13
		}
		for ; o < nOut; o++ {
			row := w[o*nIn : o*nIn+nIn]
			a0, a1 := bias[o], bias[o]
			for i, wv := range row {
				a0 += wv * x0[i]
				a1 += wv * x1[i]
			}
			d0[o], d1[o] = a0, a1
		}
	}
	if r < rows {
		x0 := x[r*nIn : r*nIn+nIn]
		d0 := dst[r*nOut : r*nOut+nOut]
		o := 0
		for ; o+4 <= nOut; o += 4 {
			w0 := w[o*nIn : o*nIn+nIn]
			w1 := w[(o+1)*nIn : (o+1)*nIn+nIn]
			w2 := w[(o+2)*nIn : (o+2)*nIn+nIn]
			w3 := w[(o+3)*nIn : (o+3)*nIn+nIn]
			a0, a1, a2, a3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			for i, xi := range x0 {
				a0 += w0[i] * xi
				a1 += w1[i] * xi
				a2 += w2[i] * xi
				a3 += w3[i] * xi
			}
			d0[o], d0[o+1], d0[o+2], d0[o+3] = a0, a1, a2, a3
		}
		for ; o < nOut; o++ {
			row := w[o*nIn : o*nIn+nIn]
			a := bias[o]
			for i, wv := range row {
				a += wv * x0[i]
			}
			d0[o] = a
		}
	}
}

// reluInPlace clamps non-positive entries to zero, mirroring the scalar
// path's `if v > 0` exactly (so -0 and NaN normalize identically).
func reluInPlace(v []float64) {
	for i, x := range v {
		if !(x > 0) {
			v[i] = 0
		}
	}
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float64) float64 {
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(x []float64) int {
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nn: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Entropy returns the Shannon entropy (nats) of the distribution p.
// Zero-probability entries contribute zero.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Mean returns the arithmetic mean of x; zero for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
