package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Spec is the single declarative description of an experiment: everything
// the platform needs to run it — environment, daily-loop shape, model and
// training knobs, drift schedule, execution engine, seed, sharding — in one
// serializable value. A Spec travels as JSON (strict: unknown fields are
// rejected), defaults are applied in exactly one place (WithDefaults), and
// the canonical form of a fully-defaulted spec has a stable content hash
// (Hash) whose guard projection (GuardHash) pins checkpoint manifests.
//
// Zero vs unset: fields where the zero value is itself meaningful are
// pointers — absent means "use the default", an explicit zero means zero.
// For example `"window": 0` trains on all days so far, while omitting
// `window` gives the default 14-day sliding window; `"hidden": []` is the
// linear-model ablation, while `"hidden": null` (or omitting it) is the
// paper's 64-64 architecture.
type Spec struct {
	// Name labels the spec (registry scenarios carry their registered
	// name). Documentation only: excluded from both hashes.
	Name string `json:"name,omitempty"`
	// Notes is free-form documentation, also excluded from the hashes.
	Notes string `json:"notes,omitempty"`

	Env    EnvSpec    `json:"env"`
	Daily  DailySpec  `json:"daily"`
	Model  ModelSpec  `json:"model"`
	Train  TrainSpec  `json:"train"`
	Drift  DriftSpec  `json:"drift"`
	Engine EngineSpec `json:"engine"`

	// Seed makes the whole run deterministic. Default (absent): 1.
	// An explicit 0 is a valid seed, hence the pointer.
	Seed *int64 `json:"seed,omitempty"`
	// ShardSize is sessions per aggregation shard. Default (0): 64.
	ShardSize int `json:"shard_size,omitempty"`
}

// EnvSpec picks the world sessions run in.
type EnvSpec struct {
	// World is "insitu" (the deployment environment; default) or
	// "emulation" (the §5.2 FCC-trace testbed).
	World string `json:"world,omitempty"`
	// Paths optionally overrides the world's path family: "puffer",
	// "fcc", "cs2p", or "congested" (a low-capacity Puffer variant).
	// Default (""): the world's own family.
	Paths string `json:"paths,omitempty"`
}

// DailySpec shapes the continual (daily) loop.
type DailySpec struct {
	// Days is how many deployment days to simulate. Default (0): 3.
	Days int `json:"days,omitempty"`
	// Sessions is each day's randomized-trial size. Default (0): 150.
	Sessions int `json:"sessions,omitempty"`
	// Window is the sliding retraining window in days; an explicit 0
	// trains on all days so far. Default (absent): 14.
	Window *int `json:"window,omitempty"`
	// Retrain enables nightly warm-start retraining. Default (absent):
	// true; false serves the frozen day-0 model (the "Fugu-Feb" arm).
	Retrain *bool `json:"retrain,omitempty"`
	// Ablation, with Retrain on, also runs the frozen-model companion on
	// the same seed for the staleness comparison. Default (absent): true.
	Ablation *bool `json:"ablation,omitempty"`
}

// ModelSpec shapes the Transmission Time Predictor.
type ModelSpec struct {
	// Hidden are the TTP hidden-layer sizes; an explicit empty list is
	// the linear-model ablation. Default (null): [64, 64].
	Hidden []int `json:"hidden"`
	// Horizon is the TTP/MPC lookahead in chunks. Default (0): 5.
	Horizon int `json:"horizon,omitempty"`
}

// TrainSpec controls the nightly supervised training.
type TrainSpec struct {
	// Epochs per nightly phase. Default (0): 8.
	Epochs int `json:"epochs,omitempty"`
	// BatchSize is the minibatch size. Default (0): 64.
	BatchSize int `json:"batch_size,omitempty"`
	// LR is the Adam learning rate. Default (0): 1e-3.
	LR float64 `json:"lr,omitempty"`
	// RecencyBase is the per-day-of-age weight multiplier; an explicit 0
	// (or 1) weights all days uniformly. Default (absent): 0.9.
	RecencyBase *float64 `json:"recency_base,omitempty"`
}

// DriftSpec makes the path population nonstationary: a named preset plus
// raw per-knob overrides. An override applies only when present, so an
// explicit zero clears a preset knob while an absent knob keeps the
// preset's value — the same semantics the raw -drift-* CLI flags have
// always had.
type DriftSpec struct {
	// Preset is a named netem.DriftPreset: "none" (default), "decay",
	// "shift", or "mix".
	Preset string `json:"preset,omitempty"`

	// RateFactorPerDay compounds a daily capacity factor (0.9 = -10%/day).
	RateFactorPerDay *float64 `json:"rate_factor_per_day,omitempty"`
	// RateFactorFloor bounds the compounded capacity factor from below.
	RateFactorFloor *float64 `json:"rate_factor_floor,omitempty"`
	// SigmaWidenPerDay adds session-spread log-std-dev per day (nats/day).
	SigmaWidenPerDay *float64 `json:"sigma_widen_per_day,omitempty"`
	// SlowSharePerDay grows the slow-path share per day (fraction/day).
	SlowSharePerDay *float64 `json:"slow_share_per_day,omitempty"`
	// SlowShareCap caps the extra slow-path share (fraction).
	SlowShareCap *float64 `json:"slow_share_cap,omitempty"`
	// OutagesPerHour ramps deep outages (outages/hour added per day).
	OutagesPerHour *float64 `json:"outages_per_hour,omitempty"`
	// OutageCapPerHour caps the ramped outage rate (outages/hour; 0 =
	// uncapped).
	OutageCapPerHour *float64 `json:"outage_cap_per_hour,omitempty"`

	// Mix migrates the population toward another family: "congested",
	// "fcc", "cs2p", or "none" (clears a preset's mix; "" is accepted as
	// an alias for "none", matching the historical flag). When Mix
	// introduces a family the preset did not have, MixStartDay and
	// MixRampDays default to 0 and 3 rather than the preset's zeros.
	Mix *string `json:"mix,omitempty"`
	// MixStartDay is the first day with nonzero mix weight.
	MixStartDay *int `json:"mix_start_day,omitempty"`
	// MixRampDays is how many days the linear ramp takes to reach 100%
	// (an explicit 0 or negative value is a step change).
	MixRampDays *int `json:"mix_ramp_days,omitempty"`
}

// EngineSpec selects and tunes the execution engine. No engine field
// changes results — all engines are byte-identical at the same seeds —
// so the whole struct is excluded from the checkpoint guard, and a
// checkpoint written by one engine resumes under any other.
type EngineSpec struct {
	// Kind is "session" (default), "fleet", or "dist" (worker-process
	// shard execution).
	Kind string `json:"kind,omitempty"`
	// Arrival is the fleet engine's session arrival process.
	Arrival ArrivalSpec `json:"arrival,omitzero"`
	// Tick is the fleet engine's inference-batching tick in virtual
	// seconds. Default (0): 0.25.
	Tick float64 `json:"tick,omitempty"`
	// DistWorkers is the dist engine's worker-process count. Default
	// (0): GOMAXPROCS. Ignored by the other engines.
	DistWorkers int `json:"dist_workers,omitempty"`
}

// ArrivalSpec describes the fleet engine's arrival process.
type ArrivalSpec struct {
	// Process is "poisson" (default) or "burst".
	Process string `json:"process,omitempty"`
	// Rate is the Poisson intensity in sessions per virtual second.
	// Default (0): 1. Ignored by "burst".
	Rate float64 `json:"rate,omitempty"`
	// Burst is sessions per burst; Gap the virtual seconds between
	// bursts. Required (Burst > 0) when Process is "burst".
	Burst int     `json:"burst,omitempty"`
	Gap   float64 `json:"gap,omitempty"`
}

// Default values, applied in exactly one place (WithDefaults). The numbers
// deliberately equal the historical puffer-daily flag defaults, so a spec
// with everything unset runs exactly what the bare CLI always ran.
const (
	DefaultDays      = 3
	DefaultSessions  = 150
	DefaultWindow    = 14
	DefaultEpochs    = 8
	DefaultBatchSize = 64
	DefaultLR        = 1e-3
	DefaultSeed      = 1
	DefaultShard     = 64
	DefaultRate      = 1.0
	DefaultTick      = 0.25

	defaultRecencyBase = 0.9
	defaultMixStartDay = 0
	defaultMixRampDays = 3
)

// DefaultHidden is the paper's TTP architecture.
var DefaultHidden = []int{64, 64}

func ptr[T any](v T) *T { return &v }

// orp returns p's value, or def when p is nil.
func orp[T any](p *T, def T) T {
	if p != nil {
		return *p
	}
	return def
}

// WithDefaults returns a copy of the spec with every unset field resolved
// to its documented default — the one place defaulting happens. The result
// is idempotent: WithDefaults(WithDefaults(s)) == WithDefaults(s), which is
// what makes the canonical JSON form (and therefore the hashes) stable.
func (s Spec) WithDefaults() Spec {
	d := s
	if d.Env.World == "" {
		d.Env.World = "insitu"
	}
	if d.Daily.Days == 0 {
		d.Daily.Days = DefaultDays
	}
	if d.Daily.Sessions == 0 {
		d.Daily.Sessions = DefaultSessions
	}
	d.Daily.Window = ptr(orp(d.Daily.Window, DefaultWindow))
	d.Daily.Retrain = ptr(orp(d.Daily.Retrain, true))
	d.Daily.Ablation = ptr(orp(d.Daily.Ablation, true))
	if d.Model.Hidden == nil {
		d.Model.Hidden = append([]int(nil), DefaultHidden...)
	}
	if d.Model.Horizon == 0 {
		d.Model.Horizon = 5
	}
	if d.Train.Epochs == 0 {
		d.Train.Epochs = DefaultEpochs
	}
	if d.Train.BatchSize == 0 {
		d.Train.BatchSize = DefaultBatchSize
	}
	if d.Train.LR == 0 {
		d.Train.LR = DefaultLR
	}
	d.Train.RecencyBase = ptr(orp(d.Train.RecencyBase, defaultRecencyBase))
	if d.Drift.Preset == "" {
		d.Drift.Preset = "none"
	}
	d.Engine = d.Engine.withEngineDefaults()
	d.Seed = ptr(orp(d.Seed, int64(DefaultSeed)))
	if d.ShardSize == 0 {
		d.ShardSize = DefaultShard
	}
	return d
}

// withEngineDefaults resolves an EngineSpec's defaults — shared by
// WithDefaults and by GuardHash, which substitutes the canonical engine
// block because engine choice never changes results.
func (e EngineSpec) withEngineDefaults() EngineSpec {
	if e.Kind == "" {
		e.Kind = "session"
	}
	if e.Arrival.Process == "" {
		e.Arrival.Process = "poisson"
	}
	if e.Arrival.Rate == 0 && e.Arrival.Process == "poisson" {
		e.Arrival.Rate = DefaultRate
	}
	if e.Tick == 0 {
		e.Tick = DefaultTick
	}
	return e
}

// Clone returns a deep copy: no pointer field or slice is shared with the
// receiver, so mutating the copy (or what its pointers point at) never
// touches the original. The registry hands out clones for exactly this
// reason.
func (s Spec) Clone() Spec {
	c := s
	c.Daily.Window = clonePtr(s.Daily.Window)
	c.Daily.Retrain = clonePtr(s.Daily.Retrain)
	c.Daily.Ablation = clonePtr(s.Daily.Ablation)
	if s.Model.Hidden != nil {
		c.Model.Hidden = append([]int{}, s.Model.Hidden...)
	}
	c.Train.RecencyBase = clonePtr(s.Train.RecencyBase)
	c.Drift.RateFactorPerDay = clonePtr(s.Drift.RateFactorPerDay)
	c.Drift.RateFactorFloor = clonePtr(s.Drift.RateFactorFloor)
	c.Drift.SigmaWidenPerDay = clonePtr(s.Drift.SigmaWidenPerDay)
	c.Drift.SlowSharePerDay = clonePtr(s.Drift.SlowSharePerDay)
	c.Drift.SlowShareCap = clonePtr(s.Drift.SlowShareCap)
	c.Drift.OutagesPerHour = clonePtr(s.Drift.OutagesPerHour)
	c.Drift.OutageCapPerHour = clonePtr(s.Drift.OutageCapPerHour)
	c.Drift.Mix = clonePtr(s.Drift.Mix)
	c.Drift.MixStartDay = clonePtr(s.Drift.MixStartDay)
	c.Drift.MixRampDays = clonePtr(s.Drift.MixRampDays)
	c.Seed = clonePtr(s.Seed)
	return c
}

func clonePtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// enum reports whether v is one of the allowed values.
func enum(v string, allowed ...string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// Validate checks a fully-defaulted spec, returning actionable errors that
// name the JSON field. Call WithDefaults first (Compile does both).
func (s *Spec) Validate() error {
	if !enum(s.Env.World, "insitu", "emulation") {
		return fmt.Errorf("scenario: env.world = %q, want insitu or emulation", s.Env.World)
	}
	if s.Env.Paths != "" && !enum(s.Env.Paths, "puffer", "fcc", "cs2p", "congested") {
		return fmt.Errorf("scenario: env.paths = %q, want puffer, fcc, cs2p, or congested (or omit it for the world's own family)", s.Env.Paths)
	}
	if s.Daily.Days <= 0 {
		return fmt.Errorf("scenario: daily.days = %d, must be positive", s.Daily.Days)
	}
	if s.Daily.Sessions <= 0 {
		return fmt.Errorf("scenario: daily.sessions = %d, must be positive", s.Daily.Sessions)
	}
	if w := orp(s.Daily.Window, 0); w < 0 {
		return fmt.Errorf("scenario: daily.window = %d, must be >= 0 (0 trains on all days so far)", w)
	}
	for i, h := range s.Model.Hidden {
		if h <= 0 {
			return fmt.Errorf("scenario: model.hidden[%d] = %d, layer widths must be positive (use [] for the linear ablation)", i, h)
		}
	}
	if s.Model.Horizon < 1 {
		return fmt.Errorf("scenario: model.horizon = %d, must be >= 1", s.Model.Horizon)
	}
	if s.Train.Epochs <= 0 {
		return fmt.Errorf("scenario: train.epochs = %d, must be positive", s.Train.Epochs)
	}
	if s.Train.BatchSize <= 0 {
		return fmt.Errorf("scenario: train.batch_size = %d, must be positive", s.Train.BatchSize)
	}
	if s.Train.LR <= 0 {
		return fmt.Errorf("scenario: train.lr = %g, must be positive", s.Train.LR)
	}
	if rb := orp(s.Train.RecencyBase, 0); rb < 0 || rb > 1 {
		return fmt.Errorf("scenario: train.recency_base = %g, must be in [0, 1] (0 or 1 = uniform weighting)", rb)
	}
	if err := s.Drift.validate(); err != nil {
		return err
	}
	if !enum(s.Engine.Kind, "session", "fleet", "dist") {
		return fmt.Errorf("scenario: engine.kind = %q, want session, fleet, or dist", s.Engine.Kind)
	}
	if s.Engine.DistWorkers < 0 {
		return fmt.Errorf("scenario: engine.dist_workers = %d, must be >= 0 (0 = GOMAXPROCS)", s.Engine.DistWorkers)
	}
	switch s.Engine.Arrival.Process {
	case "poisson":
		if s.Engine.Arrival.Rate <= 0 {
			return fmt.Errorf("scenario: engine.arrival.rate = %g, must be positive (sessions per virtual second)", s.Engine.Arrival.Rate)
		}
	case "burst":
		if s.Engine.Arrival.Burst <= 0 {
			return fmt.Errorf("scenario: engine.arrival.burst = %d, must be positive (sessions per burst)", s.Engine.Arrival.Burst)
		}
		if s.Engine.Arrival.Gap < 0 {
			return fmt.Errorf("scenario: engine.arrival.gap = %g, must be >= 0 (virtual seconds between bursts)", s.Engine.Arrival.Gap)
		}
	default:
		return fmt.Errorf("scenario: engine.arrival.process = %q, want poisson or burst", s.Engine.Arrival.Process)
	}
	if s.Engine.Tick <= 0 {
		return fmt.Errorf("scenario: engine.tick = %g, must be positive (virtual seconds)", s.Engine.Tick)
	}
	if s.ShardSize <= 0 {
		return fmt.Errorf("scenario: shard_size = %d, must be positive", s.ShardSize)
	}
	return nil
}

func (d *DriftSpec) validate() error {
	if !enum(d.Preset, "none", "decay", "shift", "mix") {
		return fmt.Errorf("scenario: drift.preset = %q, want none, decay, shift, or mix", d.Preset)
	}
	nonneg := func(name string, p *float64) error {
		if p != nil && *p < 0 {
			return fmt.Errorf("scenario: drift.%s = %g, must be >= 0", name, *p)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		p    *float64
	}{
		{"rate_factor_per_day", d.RateFactorPerDay},
		{"rate_factor_floor", d.RateFactorFloor},
		{"sigma_widen_per_day", d.SigmaWidenPerDay},
		{"outages_per_hour", d.OutagesPerHour},
		{"outage_cap_per_hour", d.OutageCapPerHour},
	} {
		if err := nonneg(c.name, c.p); err != nil {
			return err
		}
	}
	frac := func(name string, p *float64) error {
		if p != nil && (*p < 0 || *p > 1) {
			return fmt.Errorf("scenario: drift.%s = %g, must be a fraction in [0, 1]", name, *p)
		}
		return nil
	}
	if err := frac("slow_share_per_day", d.SlowSharePerDay); err != nil {
		return err
	}
	if err := frac("slow_share_cap", d.SlowShareCap); err != nil {
		return err
	}
	if d.Mix != nil && !enum(*d.Mix, "none", "", "congested", "fcc", "cs2p") {
		return fmt.Errorf("scenario: drift.mix = %q, want congested, fcc, cs2p, or none", *d.Mix)
	}
	if d.MixStartDay != nil && *d.MixStartDay < 0 {
		return fmt.Errorf("scenario: drift.mix_start_day = %d, must be >= 0", *d.MixStartDay)
	}
	return nil
}

// Parse decodes a spec from strict JSON: unknown fields are rejected (they
// are almost always typos that would otherwise silently run a different
// experiment), and so is trailing garbage. The result is returned as
// written — call WithDefaults (or Compile) to resolve defaults.
func Parse(blob []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	var extra any
	if err := dec.Decode(&extra); err == nil {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec JSON")
	}
	return s, nil
}

// ParseFile reads a spec from a JSON file (strict, like Parse).
func ParseFile(path string) (Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: reading spec file: %w", err)
	}
	s, err := Parse(blob)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// CanonicalJSON renders the fully-defaulted spec in its canonical form:
// defaults materialized, fields in declaration order, stable indentation.
// Two specs describing the same experiment produce identical bytes, no
// matter which fields their authors spelled out or in what order.
func (s Spec) CanonicalJSON() []byte {
	d := s.WithDefaults()
	blob, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		// Spec contains only plain data; marshaling cannot fail.
		panic(fmt.Sprintf("scenario: canonical marshal: %v", err))
	}
	return append(blob, '\n')
}
