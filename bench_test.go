package puffer

// The benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation. Each benchmark regenerates its experiment through the
// shared figures.Suite (built once, with models trained once) and reports
// the headline quantities as custom benchmark metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the whole evaluation. Scale with PUFFER_BENCH_SESSIONS
// (default 400 sessions — small enough for CI, large enough for stable
// orderings; the paper-scale shape analysis in EXPERIMENTS.md used 800+).

import (
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/figures"
	"puffer/internal/media"
)

var (
	suiteOnce sync.Once
	suite     *figures.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *figures.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		scale := 400
		if v := os.Getenv("PUFFER_BENCH_SESSIONS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				scale = n
			}
		}
		suite, suiteErr = figures.NewSuite(scale, 1, nil)
	})
	if suiteErr != nil {
		b.Fatalf("building suite: %v", suiteErr)
	}
	return suite
}

// benchObservations builds a fixed set of representative mid-stream MPC
// decisions over the full ten-rung ladder: varied buffer levels, histories,
// and path speeds.
func benchObservations(n int) []*abr.Observation {
	rng := rand.New(rand.NewSource(7))
	set := make([]*abr.Observation, n)
	for s := range set {
		horizon := make([]media.Chunk, 5)
		for i := range horizon {
			vs := make([]media.Encoding, 10)
			for q := range vs {
				vs[q] = media.Encoding{
					Size:   float64(q+1) * (2e5 + rng.Float64()*1e5),
					SSIMdB: 10 + float64(q) + rng.Float64(),
				}
			}
			horizon[i] = media.Chunk{Index: i, Versions: vs}
		}
		tput := 1e6 + rng.Float64()*20e6
		hist := make([]abr.ChunkRecord, abr.HistoryLen)
		for i := range hist {
			size := 3e5 + rng.Float64()*2e6
			hist[i] = abr.ChunkRecord{
				Size:      size,
				TransTime: size * 8 / (tput * (0.7 + 0.6*rng.Float64())),
				SSIMdB:    12 + 4*rng.Float64(),
				Quality:   rng.Intn(10),
			}
		}
		set[s] = &abr.Observation{
			ChunkIndex:  len(hist),
			Buffer:      rng.Float64() * 15,
			BufferCap:   15,
			LastQuality: hist[len(hist)-1].Quality,
			LastSSIM:    hist[len(hist)-1].SSIMdB,
			History:     hist,
			Horizon:     horizon,
		}
	}
	return set
}

// BenchmarkMPCDecision measures the full Fugu serving unit: one per-stream
// controller (predictor construction included, as the platform creates one
// per stream) making a run of chunk decisions. The batched sub-benchmark is
// the production path — one batched TTP call per horizon net feeding the
// factored value iteration; the scalar sub-benchmark is the seed's per-call
// fill and memoized recursion, retained as ChooseReference. The ns/decision
// metric is the headline before/after number recorded in CHANGES.md.
func BenchmarkMPCDecision(b *testing.B) {
	ttp := core.NewTTP(rand.New(rand.NewSource(1)), core.DefaultHorizon, nil,
		core.DefaultFeatures(), core.KindTransTime)
	obsSet := benchObservations(8)
	run := func(b *testing.B, choose func(*abr.MPC, *abr.Observation) int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := core.NewFugu(ttp)
			for _, obs := range obsSet {
				choose(m, obs)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(obsSet)), "ns/decision")
	}
	b.Run("batched", func(b *testing.B) { run(b, (*abr.MPC).Choose) })
	b.Run("scalar", func(b *testing.B) { run(b, (*abr.MPC).ChooseReference) })
}

func BenchmarkFig1PrimaryExperiment(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "Fugu" {
				b.ReportMetric(100*r.StallRatio.Point, "fugu-stall-%")
				b.ReportMetric(r.SSIM.Point, "fugu-ssim-dB")
				b.ReportMetric(r.SSIMVar, "fugu-dssim-dB")
			}
		}
	}
}

func BenchmarkFig2ThroughputEvolution(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		series, err := s.Fig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(series.CS2PLevels), "cs2p-levels")
		b.ReportMetric(float64(series.PufferLevels), "puffer-levels")
	}
}

func BenchmarkFig3VBRVariation(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		min, max := rows[0].SizeTopMB, rows[0].SizeTopMB
		for _, r := range rows {
			if r.SizeTopMB < min {
				min = r.SizeTopMB
			}
			if r.SizeTopMB > max {
				max = r.SizeTopMB
			}
		}
		b.ReportMetric(max/min, "size-spread-x")
	}
}

func BenchmarkFig4SSIMPerByte(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var fuguEff, mpcEff float64
		for _, r := range rows {
			if r.MeanBitrate <= 0 {
				continue
			}
			switch r.Name {
			case "Fugu":
				fuguEff = r.SSIM.Point / (r.MeanBitrate / 1e6)
			case "MPC-HM":
				mpcEff = r.SSIM.Point / (r.MeanBitrate / 1e6)
			}
		}
		b.ReportMetric(fuguEff, "fugu-dB-per-Mbps")
		b.ReportMetric(mpcEff, "mpc-dB-per-Mbps")
	}
}

func BenchmarkFig5Catalog(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if err := s.Fig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7TTPAblation(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Variant {
			case "Full TTP":
				b.ReportMetric(r.CrossEntropy, "full-CE")
			case "Linear":
				b.ReportMetric(r.CrossEntropy, "linear-CE")
			case "Throughput Predictor":
				b.ReportMetric(r.CrossEntropy, "tput-CE")
			}
		}
	}
}

func BenchmarkFig8SlowPaths(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		_, slow, err := s.Fig8(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range slow {
			if r.Name == "Fugu" {
				b.ReportMetric(100*r.StallRatio.Point, "slow-fugu-stall-%")
				b.ReportMetric(r.SSIM.Point, "slow-fugu-ssim-dB")
			}
		}
	}
}

func BenchmarkFig9ColdStart(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig9(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "Fugu" {
				b.ReportMetric(r.MeanStartup.Point, "fugu-startup-s")
				b.ReportMetric(r.MeanFirstSSIM.Point, "fugu-first-ssim-dB")
			}
		}
	}
}

func BenchmarkFig10SessionDurations(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig10(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "Fugu" {
				b.ReportMetric(r.MeanDuration.Point/60, "fugu-mean-min")
				b.ReportMetric(r.TailP, "fugu-tail-p")
			}
		}
	}
}

func BenchmarkFig11EmulationVsReal(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Fig11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Real {
			if r.Name == "Emulation-trained Fugu" {
				b.ReportMetric(100*r.StallRatio.Point, "emufugu-real-stall-%")
			}
			if r.Name == "Fugu" {
				b.ReportMetric(100*r.StallRatio.Point, "fugu-real-stall-%")
			}
		}
	}
}

func BenchmarkFigA1Consort(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		arms, err := s.FigA1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, a := range arms {
			total += a.Considered
		}
		b.ReportMetric(float64(total), "considered-streams")
	}
}

func BenchmarkSec34ConfidenceIntervals(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rel, err := s.Sec34(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rel["Fugu"], "fugu-ci-halfwidth-%")
	}
}

func BenchmarkSec46StaleModels(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Sec46(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		overlap := 0.0
		if len(rows) > 0 && rows[0].Overlapped {
			overlap = 1.0
		}
		b.ReportMetric(overlap, "cis-overlap")
	}
}

func BenchmarkDriftStaleness(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.FigDrift(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// rows[0] is day 1, identical by construction; day 2 is the first
		// day the models can differ.
		for _, r := range rows {
			if r.Day == 2 {
				b.ReportMetric(r.GapPP, "frozen-gap-pp-day2")
			}
		}
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].GapPP, "frozen-gap-pp-final")
		}
	}
}

func BenchmarkFigFleetEngines(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.FigFleet(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var seq, flt float64
		for _, r := range rows {
			if !r.Identical {
				b.Fatal("fleet engine diverged from per-session engine")
			}
			switch r.Engine {
			case "per-session":
				seq = r.SessionsPerSec
			case "fleet":
				flt = r.SessionsPerSec
				b.ReportMetric(float64(r.PeakConcurrent), "peak-concurrent")
				b.ReportMetric(r.MeanBatchRows, "mean-batch-rows")
			}
		}
		b.ReportMetric(flt, "fleet-sessions/sec")
		if seq > 0 {
			b.ReportMetric(flt/seq, "fleet-speedup-x")
		}
	}
}

func BenchmarkSec53PowerAnalysis(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Sec53(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Stream-years needed to reach 95% detection (last row if never
		// reached).
		years := rows[len(rows)-1].StreamYears
		for _, r := range rows {
			if r.DetectionRate >= 0.95 {
				years = r.StreamYears
				break
			}
		}
		b.ReportMetric(years, "years-to-detect-15%")
	}
}
