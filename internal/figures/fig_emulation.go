package figures

import (
	"io"
	"math/rand"
	"sort"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/pensieve"
	"puffer/internal/stats"
)

// Fig11Result carries the three panels of Figure 11: scheme statistics in
// emulation, scheme statistics (including emulation-trained Fugu) in the
// deployment environment, and the throughput distributions of the two
// worlds.
type Fig11Result struct {
	Emulation []experiment.SchemeStats
	Real      []experiment.SchemeStats
	// Throughput quantiles (Mbit/s) at 10/25/50/75/90/99%.
	FCCQuantiles    []float64
	PufferQuantiles []float64
}

// fig11Order includes the sixth arm.
var fig11Order = append(append([]string{}, primaryOrder...), "Emulation-trained Fugu")

// Fig11 reproduces Figure 11: emulation results differ markedly from the
// real world, and a Fugu trained in emulation performs terribly when
// deployed — training environment fidelity is everything.
func (s *Suite) Fig11(w io.Writer) (*Fig11Result, error) {
	sessions := s.Scale / 2
	if sessions < 200 {
		sessions = 200
	}
	schemes := func(emuFugu bool) []experiment.Scheme {
		policy := s.Policy.Policy()
		out := []experiment.Scheme{
			{Name: "Fugu", New: func() abr.Algorithm { return core.NewFugu(s.InSituTTP) }},
			{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewMPCHM() }},
			{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
			{Name: "Pensieve", New: func() abr.Algorithm { return pensieve.NewAgent(policy) }},
			{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
		}
		if emuFugu {
			out = append(out, experiment.Scheme{
				Name: "Emulation-trained Fugu",
				New:  func() abr.Algorithm { return core.NewFuguNamed("Emulation-trained Fugu", s.EmuTTP) },
			})
		}
		return out
	}

	if s.emulation == nil {
		s.Logf("running emulation experiment (%d sessions)...", sessions)
		emuRes, err := experiment.Run(experiment.Config{
			Env:      experiment.EmulationEnv(),
			Schemes:  schemes(false),
			Sessions: sessions,
			Seed:     s.Seed + 500,
		})
		if err != nil {
			return nil, err
		}
		s.emulation = emuRes
	}

	s.Logf("running deployment experiment with emulation-trained Fugu (%d sessions)...", sessions)
	realRes, err := experiment.Run(experiment.Config{
		Env:      experiment.DefaultEnv(),
		Schemes:  schemes(true),
		Sessions: sessions,
		Seed:     s.Seed + 501,
	})
	if err != nil {
		return nil, err
	}

	out := &Fig11Result{
		Emulation: orderStats(experiment.Analyze(s.emulation, experiment.AllPaths, s.Seed+502), fig11Order),
		Real:      orderStats(experiment.Analyze(realRes, experiment.AllPaths, s.Seed+503), fig11Order),
	}

	// Right panel: the two worlds' throughput distributions.
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	out.FCCQuantiles = pathQuantiles(s.Seed+504, experiment.EmulationEnv(), qs)
	out.PufferQuantiles = pathQuantiles(s.Seed+505, experiment.DefaultEnv(), qs)

	var werr error
	write := func(title string, rows []experiment.SchemeStats) {
		line(w, &werr, "%s\n", title)
		line(w, &werr, "%-24s %12s %10s %9s\n", "Algorithm", "Stalled", "SSIM", "Streams")
		for _, r := range rows {
			line(w, &werr, "%-24s %11.3f%% %7.2f dB %8d\n", r.Name, 100*r.StallRatio.Point, r.SSIM.Point, r.Considered)
		}
	}
	write("Figure 11 (left): performance in emulation (FCC-like paths, looping clip)", out.Emulation)
	write("Figure 11 (middle): deployment results incl. emulation-trained Fugu", out.Real)
	line(w, &werr, "Figure 11 (right): session mean-throughput quantiles (Mbit/s)\n")
	line(w, &werr, "%-10s %8s %8s %8s %8s %8s %8s\n", "family", "p10", "p25", "p50", "p75", "p90", "p99")
	line(w, &werr, "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", "fcc",
		out.FCCQuantiles[0], out.FCCQuantiles[1], out.FCCQuantiles[2], out.FCCQuantiles[3], out.FCCQuantiles[4], out.FCCQuantiles[5])
	line(w, &werr, "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", "puffer",
		out.PufferQuantiles[0], out.PufferQuantiles[1], out.PufferQuantiles[2], out.PufferQuantiles[3], out.PufferQuantiles[4], out.PufferQuantiles[5])
	return out, werr
}

// pathQuantiles samples session-mean capacities from an environment's path
// family and returns the requested quantiles in Mbit/s.
func pathQuantiles(seed int64, env experiment.Env, qs []float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	const n = 1500
	means := make([]float64, n)
	for i := range means {
		means[i] = env.Paths.Sample(rng, 60).Trace.Mean() / 1e6
	}
	sort.Float64s(means)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.Quantile(means, q)
	}
	return out
}
