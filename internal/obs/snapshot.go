package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// CounterSnapshot is one counter's captured value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's captured value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a registry capture: every metric, each list sorted by name,
// so the JSON rendering is canonical for a given set of values.
type Snapshot struct {
	Counters   []CounterSnapshot `json:"counters"`
	Gauges     []GaugeSnapshot   `json:"gauges"`
	Histograms []HistSnapshot    `json:"histograms"`
}

// quantiles are the exposition quantiles every histogram publishes.
var quantiles = []struct {
	label string
	p     float64
}{{"0.5", 0.50}, {"0.99", 0.99}, {"0.999", 0.999}}

// WriteJSON renders the snapshot as indented canonical JSON (stable for
// fixed metric values: lists are name-sorted and field order is fixed).
func (s Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges verbatim, histograms as summaries (p50, p99,
// p999 plus _sum and _count).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %g\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s summary\n", h.Name)
		for _, q := range quantiles {
			fmt.Fprintf(bw, "%s{quantile=%q} %d\n", h.Name, q.label, h.Quantile(q.p))
		}
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count)
	}
	return bw.Flush()
}

// DumpFile atomically writes the registry's snapshot as JSON to path — the
// -obs-dump exit artifact CLIs and the nightly workflow publish.
func DumpFile(path string, reg *Registry) error {
	tmp := fmt.Sprintf("%s.tmp-%d", path, time.Now().UnixNano())
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: creating snapshot file: %w", err)
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: closing snapshot file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: committing snapshot file: %w", err)
	}
	return nil
}
