package dist

import "puffer/internal/obs"

// Fleet-health metrics, registered on the default registry so puffer-top
// and /metrics show them live. Write-only (never read into results), per
// the obs zero-perturbation contract.
var (
	workersStarted = obs.Default.Counter("dist_workers_started_total")
	workerRestarts = obs.Default.Counter("dist_worker_restarts_total")
	shardRetries   = obs.Default.Counter("dist_shard_retries_total")
	shardsDone     = obs.Default.Counter("dist_shards_done_total")
	workersLive    = obs.Default.Gauge("dist_workers_live")
	shardWallNS    = obs.Default.Histogram("dist_shard_wall_ns")
)
