package telemetry

import (
	"math"
	"testing"
)

func TestConcurrencySeries(t *testing.T) {
	// Sessions: [0,10), [2,6), [2,4), [10,12) — peak 3 in [2,4).
	starts := []float64{0, 2, 2, 10}
	ends := []float64{10, 6, 4, 12}
	s := NewConcurrencySeries(starts, ends)
	if got := s.Peak(); got != 3 {
		t.Fatalf("Peak = %d, want 3", got)
	}
	checks := map[float64]int{-1: 0, 0: 1, 2: 3, 3: 3, 4: 2, 5: 2, 6: 1, 9: 1, 10: 1, 11: 1, 12: 0}
	for at, want := range checks {
		if got := s.At(at); got != want {
			t.Fatalf("At(%v) = %d, want %d", at, got, want)
		}
	}
	// Time-weighted mean over [0,12): (1*2 + 3*2 + 2*2 + 1*4 + 1*2)/12.
	want := (1.0*2 + 3*2 + 2*2 + 1*4 + 1*2) / 12
	if got := s.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if pts := s.Sample(4); len(pts) != 4 || pts[1].Active != 2 {
		t.Fatalf("Sample(4) = %+v", pts)
	}
}

func TestConcurrencySeriesHandoff(t *testing.T) {
	// A session ending exactly when another starts must not double-count.
	s := NewConcurrencySeries([]float64{0, 5}, []float64{5, 8})
	if got := s.Peak(); got != 1 {
		t.Fatalf("Peak = %d, want 1 (no double count at handoff)", got)
	}
}

func TestConcurrencySeriesEmpty(t *testing.T) {
	s := NewConcurrencySeries(nil, nil)
	if s.Peak() != 0 || s.Mean() != 0 || s.At(3) != 0 || s.Sample(1) != nil {
		t.Fatal("empty series must be all zeros")
	}
}
