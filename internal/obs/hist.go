package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: an HDR-style fixed log-scale grid over the
// non-negative int64 range. Values below histSubCount land in exact
// unit-width buckets; above that, each power-of-two octave splits into
// histSubCount sub-buckets, so every bucket's width is at most its lower
// bound divided by histSubCount — a guaranteed relative resolution of
// 1/histSubCount (3.125%) that needs no per-histogram configuration and
// makes any two snapshots mergeable bucket-for-bucket.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histNumBuckets indexes every non-negative int64 (max index is
	// reached at v = math.MaxInt64).
	histNumBuckets = (64 - histSubBits) * histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // v in [2^h, 2^(h+1))
	return (h-histSubBits)*histSubCount + int(uint64(v)>>uint(h-histSubBits))
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	e := idx >> histSubBits
	m := int64(idx & (histSubCount - 1))
	if e == 0 {
		return m
	}
	return (histSubCount + m) << uint(e-1)
}

// bucketHigh returns the largest value mapping to bucket idx.
func bucketHigh(idx int) int64 {
	if idx >= histNumBuckets-1 {
		return math.MaxInt64
	}
	return bucketLow(idx+1) - 1
}

// A Histogram is a fixed-bucket log-scale distribution of non-negative
// int64 observations (by convention nanoseconds for *_ns histograms, plain
// counts otherwise). All writers use atomics, so concurrent observation
// from any number of goroutines is safe and lock-free.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histNumBuckets]atomic.Uint64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value (recording must be enabled). Negative values
// clamp to 0.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

// ObserveSince records the nanoseconds elapsed since stamp t0 (from Now);
// the zero stamp records nothing, so a stage timed while recording was
// disabled costs nothing and writes nothing.
func (h *Histogram) ObserveSince(t0 int64) {
	if t0 == 0 {
		return
	}
	h.observe(int64(time.Since(epoch)) + 1 - t0)
}

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot captures the histogram's current state as a mergeable value.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Sum: h.sum.Load()}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	if max := h.max.Load(); max != math.MinInt64 {
		s.Max = max
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Low: bucketLow(i), High: bucketHigh(i), Count: n})
			s.Count += int64(n)
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a snapshot: every recorded value v
// in it satisfied Low <= v <= High.
type HistBucket struct {
	Low   int64  `json:"low"`
	High  int64  `json:"high"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram: the non-empty
// buckets in ascending order plus count/sum/min/max. Snapshots merge
// associatively and commutatively (Merge), so per-shard or per-process
// histograms combine into fleet-wide ones without losing quantile
// resolution.
type HistSnapshot struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	// Buckets lists the non-empty buckets in ascending Low order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Merge combines two snapshots of the same (or compatible) histograms into
// one, as if every observation of both had landed in a single histogram.
// Merge is associative and commutative up to the Name, which is taken from
// the first non-empty operand.
func Merge(a, b HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: a.Name, Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	if out.Name == "" {
		out.Name = b.Name
	}
	switch {
	case a.Count == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min, out.Max = a.Min, a.Max
		if b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
	}
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Low < b.Buckets[j].Low):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Low < a.Buckets[i].Low:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default:
			m := a.Buckets[i]
			m.Count += b.Buckets[j].Count
			out.Buckets = append(out.Buckets, m)
			i++
			j++
		}
	}
	return out
}

// Sub returns the distribution of observations recorded between an earlier
// snapshot old of the same histogram and this one — the windowed delta the
// metrics history computes per sampling step. Bucket counts subtract
// (clamped at zero, so a reset or mismatched operand degrades gracefully);
// Min and Max are not recoverable for a window, so they tighten to the
// delta's outermost non-empty bucket bounds, keeping Quantile's error
// guarantee intact.
func (s HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: s.Name}
	j := 0
	for _, b := range s.Buckets {
		for j < len(old.Buckets) && old.Buckets[j].Low < b.Low {
			j++
		}
		n := b.Count
		if j < len(old.Buckets) && old.Buckets[j].Low == b.Low {
			if old.Buckets[j].Count >= n {
				n = 0
			} else {
				n -= old.Buckets[j].Count
			}
		}
		if n != 0 {
			out.Buckets = append(out.Buckets, HistBucket{Low: b.Low, High: b.High, Count: n})
			out.Count += int64(n)
		}
	}
	if d := s.Sum - old.Sum; d > 0 {
		out.Sum = d
	}
	if len(out.Buckets) > 0 {
		out.Min = out.Buckets[0].Low
		out.Max = out.Buckets[len(out.Buckets)-1].High
	}
	return out
}

// Quantile estimates the p-quantile (p in [0, 1]) of the recorded values.
// The estimate is the upper bound of the bucket holding the rank-⌈p·count⌉
// smallest observation, so for a true quantile value v it is guaranteed
// that v <= Quantile(p) < v·(1 + 1/32) (exact for v < 32). Returns 0 for
// an empty snapshot.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += int64(b.Count)
		if cum >= rank {
			if b.High > s.Max {
				// The true maximum tightens the last bucket's bound.
				return s.Max
			}
			return b.High
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
