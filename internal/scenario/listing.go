package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// Listing is one registered scenario's catalog row: the identity a caller
// needs to pick, cache, or resume it without compiling anything.
type Listing struct {
	Name  string `json:"name"`
	Notes string `json:"notes,omitempty"`
	// Hash is the fully-defaulted spec's content hash — the results-index
	// key a run of this scenario (unscaled, unmodified) would occupy.
	Hash string `json:"hash"`
	// GuardHash is the checkpoint-guard projection — the key a checkpoint
	// directory for this scenario is pinned to.
	GuardHash string `json:"guard_hash"`
}

// Listings walks the registry in sorted name order and returns one row per
// registered scenario — the shared backing of puffer-daily -list-scenarios
// and puffer-sweep status.
func Listings() []Listing {
	names := Names()
	out := make([]Listing, 0, len(names))
	for _, name := range names {
		s, _ := Lookup(name)
		d := s.WithDefaults()
		out = append(out, Listing{
			Name:      name,
			Notes:     s.Notes,
			Hash:      d.Hash(),
			GuardHash: d.GuardHash(),
		})
	}
	return out
}

// WriteListings prints the catalog: as indented JSON when jsonOut is set,
// otherwise as an aligned two-column table of names and notes.
func WriteListings(w io.Writer, jsonOut bool) error {
	rows := Listings()
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-15s %s\n", r.Name, r.Notes); err != nil {
			return err
		}
	}
	return nil
}
