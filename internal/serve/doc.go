// Package serve is the wall-clock serving layer: it promotes the
// virtual-time fleet engine to a real daemon speaking a small
// length-prefixed request/response protocol over TCP, as Fugu ran on
// puffer.stanford.edu.
//
// The split of labor mirrors the paper's deployment. The *client* (one TCP
// connection per session) simulates the viewer, player buffer, and network
// path — it runs the real experiment.RunSessionHooked with a DecideHook
// that ships each ABR observation to the server. The *server* owns every
// per-session ABR algorithm and the models: connection handlers enqueue
// decision requests onto a bounded queue (backpressure), and a single
// batcher goroutine drains the queue, stages deferrable inference through
// the shared fleet.InferenceService (one batched forward pass per model per
// flush, exactly as the fleet engine does in virtual time), and completes
// every decision.
//
// Because the decision logic is the same code on both paths — the
// DeferredAlgorithm split, the InferenceService, experiment.RunSessionHooked
// — a trial served over sockets is *byte-identical* to the same trial on
// the virtual-time fleet engine at the same scenario.Spec, day, and seed.
// Plan pins that identity: it derives the trial (seeds, scheme names,
// environment, arrival schedule) from a spec, the client validates its plan
// hash against the server's in the handshake, and RunVirtual is the
// deterministic twin the differential smoke compares against.
package serve
