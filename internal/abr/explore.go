package abr

import "math/rand"

// Explorer wraps a base algorithm and, with probability Epsilon, substitutes
// a uniformly random rung. It exists to gather off-policy coverage when
// bootstrapping the TTP's training data: a predictor trained purely on one
// scheme's choices never observes what large chunks do to a congested path,
// and a controller that then asks about them gets fiction back.
type Explorer struct {
	Base    Algorithm
	Epsilon float64

	rng *rand.Rand
}

// NewExplorer wraps base with epsilon-uniform exploration. The seed fixes
// the exploration sequence for reproducibility.
func NewExplorer(base Algorithm, epsilon float64, seed int64) *Explorer {
	return &Explorer{Base: base, Epsilon: epsilon, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (e *Explorer) Name() string { return e.Base.Name() + "+explore" }

// Reset implements Algorithm.
func (e *Explorer) Reset() { e.Base.Reset() }

// Choose implements Algorithm.
func (e *Explorer) Choose(obs *Observation) int {
	return e.explore(obs, e.Base.Choose(obs))
}

// explore applies the epsilon-uniform override to the base decision. It is
// shared by Choose and FinishChoose so both consume the exploration RNG in
// exactly the same sequence.
func (e *Explorer) explore(obs *Observation, q int) int {
	if len(obs.Horizon) == 0 {
		return q
	}
	if e.rng.Float64() < e.Epsilon {
		return e.rng.Intn(len(obs.Horizon[0].Versions))
	}
	return q
}

// PrepareChoose implements DeferredAlgorithm: the base algorithm stages its
// prediction work if it can; otherwise the whole decision happens in
// FinishChoose. The exploration RNG is only consulted in FinishChoose, so
// draw order matches Choose exactly.
func (e *Explorer) PrepareChoose(obs *Observation) {
	if d, ok := e.Base.(DeferredAlgorithm); ok {
		d.PrepareChoose(obs)
	}
}

// FinishChoose implements DeferredAlgorithm.
func (e *Explorer) FinishChoose(obs *Observation) int {
	if d, ok := e.Base.(DeferredAlgorithm); ok {
		return e.explore(obs, d.FinishChoose(obs))
	}
	return e.explore(obs, e.Base.Choose(obs))
}
