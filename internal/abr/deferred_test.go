package abr

import (
	"math/rand"
	"testing"

	"puffer/internal/media"
)

// deferredObs builds a batch of mid-stream observations over a 10-rung
// ladder with varied buffers and histories.
func deferredObs(n int, seed int64) []*Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Observation, n)
	for s := range out {
		horizon := make([]media.Chunk, 5)
		for i := range horizon {
			vs := make([]media.Encoding, 10)
			for q := range vs {
				vs[q] = media.Encoding{
					Size:   float64(q+1) * (1e5 + rng.Float64()*2e5),
					SSIMdB: 9 + float64(q) + rng.Float64(),
				}
			}
			horizon[i] = media.Chunk{Index: i, Versions: vs}
		}
		hist := make([]ChunkRecord, rng.Intn(HistoryLen+1))
		for i := range hist {
			size := 2e5 + rng.Float64()*2e6
			hist[i] = ChunkRecord{
				Size: size, TransTime: size * 8 / (4e6 + rng.Float64()*2e7),
				SSIMdB: 11 + 5*rng.Float64(), Quality: rng.Intn(10),
			}
		}
		lastQ := -1
		lastSSIM := 0.0
		if len(hist) > 0 {
			lastQ = hist[len(hist)-1].Quality
			lastSSIM = hist[len(hist)-1].SSIMdB
		}
		out[s] = &Observation{
			ChunkIndex: len(hist), Buffer: rng.Float64() * 15, BufferCap: 15,
			LastQuality: lastQ, LastSSIM: lastSSIM, History: hist, Horizon: horizon,
		}
	}
	return out
}

// TestMPCDeferredSplitEqualsChoose: PrepareChoose followed by FinishChoose
// must reproduce Choose decision for decision on fresh controllers —
// stateful predictors (RobustMPC's error memory) included.
func TestMPCDeferredSplitEqualsChoose(t *testing.T) {
	obsSet := deferredObs(40, 5)
	factories := map[string]func() *MPC{
		"MPC-HM":       NewMPCHM,
		"RobustMPC-HM": NewRobustMPCHM,
	}
	for name, mk := range factories {
		whole, split := mk(), mk()
		whole.Reset()
		split.Reset()
		for i, obs := range obsSet {
			want := whole.Choose(obs)
			split.PrepareChoose(obs)
			got := split.FinishChoose(obs)
			if want != got {
				t.Fatalf("%s obs %d: Choose=%d but Prepare+Finish=%d", name, i, want, got)
			}
		}
	}
}

// TestMPCDeferredEmptyHorizon: a zero-length horizon must be handled by the
// split exactly as by Choose.
func TestMPCDeferredEmptyHorizon(t *testing.T) {
	m := NewMPCHM()
	obs := &Observation{Horizon: nil, BufferCap: 15}
	if got := m.Choose(obs); got != 0 {
		t.Fatalf("Choose on empty horizon = %d, want 0", got)
	}
	m.PrepareChoose(obs)
	if got := m.FinishChoose(obs); got != 0 {
		t.Fatalf("Prepare+Finish on empty horizon = %d, want 0", got)
	}
}

// TestExplorerDeferredSplitEqualsChoose: the Explorer must consume its
// exploration RNG in the same order through both paths, whether or not the
// base supports deferral.
func TestExplorerDeferredSplitEqualsChoose(t *testing.T) {
	obsSet := deferredObs(200, 9)
	bases := map[string]func() Algorithm{
		"deferred-base": func() Algorithm { return NewMPCHM() }, // implements DeferredAlgorithm
		"plain-base":    func() Algorithm { return NewBBA() },   // does not
	}
	for name, mk := range bases {
		whole := NewExplorer(mk(), 0.3, 77)
		split := NewExplorer(mk(), 0.3, 77)
		var wholeSeq, splitSeq []int
		for _, obs := range obsSet {
			wholeSeq = append(wholeSeq, whole.Choose(obs))
			split.PrepareChoose(obs)
			splitSeq = append(splitSeq, split.FinishChoose(obs))
		}
		for i := range wholeSeq {
			if wholeSeq[i] != splitSeq[i] {
				t.Fatalf("%s: decision %d differs: Choose=%d split=%d (RNG sequences diverged)",
					name, i, wholeSeq[i], splitSeq[i])
			}
		}
	}
}
