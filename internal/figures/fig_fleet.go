package figures

import (
	"bytes"
	"encoding/json"
	"io"

	"puffer/internal/experiment"
	"puffer/internal/results"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// FigFleetRow is one engine's row of the serving-engine comparison.
type FigFleetRow struct {
	Engine         string
	SessionsPerSec float64
	// PeakConcurrent/MeanConcurrent/MeanBatchRows describe the fleet
	// engine's multiplexing (zero for the per-session engine).
	PeakConcurrent int
	MeanConcurrent float64
	MeanBatchRows  float64
	// Identical reports whether this engine's results (pooled and per-day
	// scheme statistics) matched the per-session engine's byte for byte.
	Identical bool
}

// figFleetSpec is one engine's cell of the comparison: the same two-day
// continual loop on the same seed, differing only in the execution engine
// — an engine axis over one spec, which is exactly what the byte-identity
// claim needs the experiment to be.
func (s *Suite) figFleetSpec(engine string) scenario.Spec {
	sessions := s.Scale / 4
	if sessions < 48 {
		sessions = 48
	}
	spec := scenario.New(
		scenario.Days(2),
		scenario.Sessions(sessions),
		scenario.Window(2),
		scenario.Seed(s.Seed+700),
		scenario.Epochs(6),
		scenario.Ablation(false),
		scenario.Engine(engine),
	)
	spec.Name = "fig-fleet/" + engine
	return spec
}

// FigFleet compares the two execution engines on the same declared
// experiment: the per-session engine runs sessions to completion one at a
// time, the fleet engine multiplexes them in virtual time and batches TTP
// inference across concurrent sessions through the packed-model service.
// The rows certify the engines agree byte for byte — the property that
// lets every experiment switch engines without changing a single result —
// and report the fleet's multiplexing shape. With Suite.Results set, both
// cells are answered from the index when present (the engine axis changes
// the spec hash but not the GuardHash, so the cells can even share one
// checkpoint lineage under the sweep executor). Wall-clock throughput is
// measured from each record's timing and so describes the run that
// produced the record, including its nightly training.
func (s *Suite) FigFleet(w io.Writer) ([]FigFleetRow, error) {
	if s.fleet == nil {
		var recs [2]*results.Record
		for i, engine := range []string{"session", "fleet"} {
			s.Logf("engine cell %q...", engine)
			rec, err := s.scenarioRecord(s.figFleetSpec(engine))
			if err != nil {
				return nil, err
			}
			recs[i] = rec
		}
		seq, flt := recs[0], recs[1]
		identical := bytes.Equal(engineFingerprint(&seq.Outcome), engineFingerprint(&flt.Outcome))

		spec := s.figFleetSpec("fleet").WithDefaults()
		totalSessions := float64(spec.Daily.Days * spec.Daily.Sessions)
		var peak int
		var meanConc, meanBatch float64
		fleetDays := 0
		for _, d := range flt.Outcome.Days {
			if d.Fleet == nil {
				continue
			}
			fleetDays++
			if d.Fleet.PeakConcurrent > peak {
				peak = d.Fleet.PeakConcurrent
			}
			meanConc += d.Fleet.MeanConcurrent
			meanBatch += d.Fleet.MeanBatchRows
		}
		if fleetDays > 0 {
			meanConc /= float64(fleetDays)
			meanBatch /= float64(fleetDays)
		}

		s.fleet = []FigFleetRow{
			{Engine: "per-session", SessionsPerSec: perSec(totalSessions, seq.Timing.WallSeconds), Identical: true},
			{Engine: "fleet", SessionsPerSec: perSec(totalSessions, flt.Timing.WallSeconds),
				PeakConcurrent: peak, MeanConcurrent: meanConc,
				MeanBatchRows: meanBatch, Identical: identical},
		}
	}

	var werr error
	line(w, &werr, "Fleet: serving-engine comparison (same seed, byte-identical results required)\n")
	line(w, &werr, "%-12s %13s %9s %9s %11s %10s\n",
		"Engine", "Sessions/sec", "PeakConc", "MeanConc", "Batch rows", "Identical")
	for _, r := range s.fleet {
		line(w, &werr, "%-12s %13.1f %9d %9.1f %11.1f %10t\n",
			r.Engine, r.SessionsPerSec, r.PeakConcurrent, r.MeanConcurrent, r.MeanBatchRows, r.Identical)
	}
	line(w, &werr, "Fleet batches TTP inference across concurrent sessions over the packed\n(SIMD) model snapshots; identical=true certifies the engines agree.\n")
	return s.fleet, werr
}

// engineFingerprint serializes the engine-independent part of an outcome:
// pooled totals and per-day scheme stats, with the fleet engine's
// serving-side record (which the session engine by definition lacks)
// stripped.
func engineFingerprint(o *results.Outcome) []byte {
	days := make([]runner.DayStats, len(o.Days))
	copy(days, o.Days)
	for i := range days {
		days[i].Fleet = nil
	}
	blob, err := json.Marshal(struct {
		Total []experiment.SchemeStats
		Days  []runner.DayStats
	}{o.Total, days})
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	return blob
}

func perSec(n, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return n / seconds
}
