package player

import (
	"math"
	"math/rand"
)

// DefaultBufferCap is Puffer's 15-second maximum client buffer.
const DefaultBufferCap = 15.0

// Buffer tracks playback-buffer state for one stream.
type Buffer struct {
	// Cap is the maximum buffered video in seconds.
	Cap float64

	level   float64
	playing bool

	// Startup is the startup delay in seconds (time from stream start to
	// first frame), set when playback begins.
	Startup float64
	// Stalled is the cumulative rebuffering time in seconds, excluding
	// startup.
	Stalled float64
	// Stalls counts distinct stall events.
	Stalls int
	// Played is the cumulative video time actually played, seconds.
	Played float64
}

// NewBuffer returns an empty buffer with the default 15-second cap.
func NewBuffer() *Buffer { return &Buffer{Cap: DefaultBufferCap} }

// Level returns the current buffered video in seconds.
func (b *Buffer) Level() float64 { return b.level }

// Playing reports whether playback has started.
func (b *Buffer) Playing() bool { return b.playing }

// CompleteChunk accounts for a chunk that took transTime seconds to arrive
// and adds chunkDur seconds of video. It returns the stall time incurred
// (zero before playback starts — that time is startup delay, not stalling).
//
// Invariants: level stays within [0, Cap]; stall is charged only when the
// transfer outlasted the buffer during playback.
func (b *Buffer) CompleteChunk(transTime, chunkDur float64) (stall float64) {
	if transTime < 0 {
		transTime = 0
	}
	if b.playing {
		if transTime > b.level {
			stall = transTime - b.level
			b.Stalled += stall
			b.Stalls++
			b.Played += b.level
			b.level = 0
		} else {
			b.level -= transTime
			b.Played += transTime
		}
	}
	b.level += chunkDur
	if b.level > b.Cap {
		b.level = b.Cap
	}
	return stall
}

// StartPlayback marks playback begun after the given startup delay.
func (b *Buffer) StartPlayback(startupDelay float64) {
	b.playing = true
	b.Startup = startupDelay
}

// RoomWait returns how long the server must wait before sending the next
// chunk of duration chunkDur so the client has room, given that the buffer
// drains at 1 s/s during playback. Zero if there is already room.
func (b *Buffer) RoomWait(chunkDur float64) float64 {
	if !b.playing {
		return 0
	}
	excess := b.level + chunkDur - b.Cap
	if excess <= 0 {
		return 0
	}
	return excess
}

// Drain plays dt seconds of buffered video (used while the server waits for
// room). The buffer never goes negative: draining more than the level plays
// out the remainder and would stall, but callers only Drain by RoomWait
// amounts, which cannot exceed the level.
func (b *Buffer) Drain(dt float64) {
	if !b.playing || dt <= 0 {
		return
	}
	if dt > b.level {
		dt = b.level
	}
	b.level -= dt
	b.Played += dt
}

// WatchModel generates viewer behavior. All probabilities are per event; the
// model couples abandonment to QoE so that schemes delivering fewer stalls
// and higher SSIM retain viewers longer — the mechanism behind the paper's
// Figure 10 observation.
type WatchModel struct {
	// MedianMinutes is the median intended watch duration.
	MedianMinutes float64
	// Sigma is the lognormal shape of intended duration (heavy-tailed).
	Sigma float64
	// StartupPatienceMean: a viewer abandons before playback if startup
	// exceeds an Exp draw with this mean (seconds).
	StartupPatienceMean float64
	// StallTolerance scales stall-driven abandonment: on each stall of s
	// seconds, P(abandon) = 1 - exp(-s/StallTolerance).
	StallTolerance float64
	// LeaveHazardPerChunk is the baseline probability of drifting away
	// after any chunk.
	LeaveHazardPerChunk float64
	// QualityRefSSIM and QualitySlope shape the quality coupling: the
	// per-chunk leave hazard is multiplied by
	// exp(QualitySlope * (QualityRefSSIM - ssim)).
	QualityRefSSIM float64
	QualitySlope   float64
}

// DefaultWatchModel returns the study's viewer model, scaled so a typical
// stream lasts a few minutes of simulated time (the paper's absolute
// durations are ~6x longer; shapes are preserved).
func DefaultWatchModel() WatchModel {
	return WatchModel{
		MedianMinutes:       2.0,
		Sigma:               1.3,
		StartupPatienceMean: 12.0,
		StallTolerance:      25.0,
		LeaveHazardPerChunk: 0.0015,
		QualityRefSSIM:      16.5,
		QualitySlope:        0.20,
	}
}

// IntendedDuration draws how long the viewer would watch with perfect QoE,
// in seconds. Lognormal: heavy-tailed, like the paper's skewed watch times.
func (m WatchModel) IntendedDuration(rng *rand.Rand) float64 {
	d := m.MedianMinutes * 60 * math.Exp(m.Sigma*rng.NormFloat64())
	if d < 1 {
		d = 1
	}
	return d
}

// StartupPatience draws the startup-delay tolerance in seconds.
func (m WatchModel) StartupPatience(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * m.StartupPatienceMean
}

// AbandonOnStall reports whether a stall of the given length makes the
// viewer leave.
func (m WatchModel) AbandonOnStall(rng *rand.Rand, stall float64) bool {
	if stall <= 0 {
		return false
	}
	return rng.Float64() < 1-math.Exp(-stall/m.StallTolerance)
}

// LeaveAfterChunk reports whether the viewer drifts away after a chunk of
// the given SSIM (dB). Better quality means a lower hazard.
func (m WatchModel) LeaveAfterChunk(rng *rand.Rand, ssim float64) bool {
	h := m.LeaveHazardPerChunk * math.Exp(m.QualitySlope*(m.QualityRefSSIM-ssim))
	if h > 1 {
		h = 1
	}
	return rng.Float64() < h
}
