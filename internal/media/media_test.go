package media

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultLadderShape(t *testing.T) {
	ladder := DefaultLadder()
	if len(ladder) != 10 {
		t.Fatalf("ladder has %d rungs, want 10", len(ladder))
	}
	if ladder[0].AvgBitrate != 200e3 {
		t.Fatalf("bottom rung bitrate = %v, want 200e3", ladder[0].AvgBitrate)
	}
	if ladder[9].AvgBitrate != 5500e3 {
		t.Fatalf("top rung bitrate = %v, want 5500e3", ladder[9].AvgBitrate)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].AvgBitrate <= ladder[i-1].AvgBitrate {
			t.Fatalf("rung %d bitrate not increasing", i)
		}
		if ladder[i].BaseSSIMdB <= ladder[i-1].BaseSSIMdB {
			t.Fatalf("rung %d base SSIM not increasing", i)
		}
	}
	if math.Abs(ladder[0].BaseSSIMdB-10.5) > 1e-9 {
		t.Fatalf("bottom rung SSIM = %v, want 10.5", ladder[0].BaseSSIMdB)
	}
	if math.Abs(ladder[9].BaseSSIMdB-17.5) > 1e-9 {
		t.Fatalf("top rung SSIM = %v, want 17.5", ladder[9].BaseSSIMdB)
	}
}

func TestSourceDeterministic(t *testing.T) {
	p, err := FindProfile("nbc")
	if err != nil {
		t.Fatal(err)
	}
	a := NewSource(nil, p, 42).Take(50)
	b := NewSource(nil, p, 42).Take(50)
	for i := range a {
		for v := range a[i].Versions {
			if a[i].Versions[v] != b[i].Versions[v] {
				t.Fatalf("chunk %d version %d differs between same-seed sources", i, v)
			}
		}
	}
	c := NewSource(nil, p, 43).Take(50)
	same := true
	for i := range a {
		if a[i].Versions[0] != c[i].Versions[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical chunk streams")
	}
}

func TestChunkMonotonicity(t *testing.T) {
	// Property: within every chunk, size strictly increases with rung
	// and SSIM never decreases. ABR schemes depend on this.
	for _, p := range Channels() {
		src := NewSource(nil, p, 7)
		for n := 0; n < 500; n++ {
			ch := src.Next()
			for i := 1; i < len(ch.Versions); i++ {
				if ch.Versions[i].Size <= ch.Versions[i-1].Size {
					t.Fatalf("%s chunk %d: size not increasing at rung %d", p.Name, n, i)
				}
				if ch.Versions[i].SSIMdB < ch.Versions[i-1].SSIMdB {
					t.Fatalf("%s chunk %d: SSIM decreasing at rung %d", p.Name, n, i)
				}
			}
		}
	}
}

func TestChunkSizesPositiveAndFinite(t *testing.T) {
	f := func(seed int64) bool {
		p := Channels()[int(uint64(seed)%uint64(len(Channels())))]
		src := NewSource(nil, p, seed)
		for n := 0; n < 50; n++ {
			ch := src.Next()
			for _, v := range ch.Versions {
				if !(v.Size > 0) || math.IsInf(v.Size, 0) || math.IsNaN(v.Size) {
					return false
				}
				if !(v.SSIMdB >= 1) || math.IsNaN(v.SSIMdB) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVBRSizesVaryWithinStream(t *testing.T) {
	// The paper's Figure 3a: chunk sizes within one encoding setting vary
	// substantially. Check coefficient of variation is non-trivial.
	p, _ := FindProfile("nbc")
	src := NewSource(nil, p, 99)
	chunks := src.Take(300)
	for _, rung := range []int{0, 9} {
		var sum, sum2 float64
		for _, ch := range chunks {
			s := ch.Versions[rung].Size
			sum += s
			sum2 += s * s
		}
		n := float64(len(chunks))
		mean := sum / n
		std := math.Sqrt(sum2/n - mean*mean)
		cv := std / mean
		if cv < 0.10 {
			t.Errorf("rung %d size CV = %.3f, want >= 0.10 (VBR variation)", rung, cv)
		}
		if cv > 1.5 {
			t.Errorf("rung %d size CV = %.3f, implausibly large", rung, cv)
		}
	}
}

func TestMeanBitrateNearNominal(t *testing.T) {
	p, _ := FindProfile("nbc")
	src := NewSource(nil, p, 5)
	chunks := src.Take(3000)
	for rung, want := range []float64{200e3, 400e3} {
		var sum float64
		for _, ch := range chunks {
			sum += ch.Versions[rung].Bitrate()
		}
		got := sum / float64(len(chunks))
		if got < want*0.7 || got > want*1.5 {
			t.Errorf("rung %d mean bitrate = %.0f, want near %.0f", rung, got, want)
		}
	}
}

func TestSSIMVariesWithComplexity(t *testing.T) {
	// Higher-complexity chunks should have lower SSIM at the same rung.
	p, _ := FindProfile("fox-sports")
	src := NewSource(nil, p, 3)
	chunks := src.Take(2000)
	var loSum, hiSum float64
	var loN, hiN int
	for _, ch := range chunks {
		if ch.Complexity < 0.8 {
			loSum += ch.Versions[9].SSIMdB
			loN++
		} else if ch.Complexity > 1.25 {
			hiSum += ch.Versions[9].SSIMdB
			hiN++
		}
	}
	if loN == 0 || hiN == 0 {
		t.Fatalf("complexity process did not span range: lo=%d hi=%d", loN, hiN)
	}
	if loSum/float64(loN) <= hiSum/float64(hiN) {
		t.Fatal("low-complexity chunks should have higher SSIM than high-complexity ones")
	}
}

func TestClipLoops(t *testing.T) {
	p, _ := FindProfile("nbc")
	clip := RecordClip(p, 600, 1) // 10-minute clip, as in the paper
	n := len(clip.Chunks)
	wantN := int(math.Ceil(600 / ChunkDuration))
	if n != wantN {
		t.Fatalf("clip has %d chunks, want %d", n, wantN)
	}
	a := clip.At(3)
	b := clip.At(3 + n)
	if a.Versions[5] != b.Versions[5] {
		t.Fatal("clip did not loop identically")
	}
	if b.Index != 3+n {
		t.Fatalf("looped chunk Index = %d, want %d", b.Index, 3+n)
	}
}

func TestSSIMdBConversions(t *testing.T) {
	for _, ssim := range []float64{0.5, 0.9, 0.98, 0.999} {
		db := SSIMdBFromIndex(ssim)
		back := SSIMIndexFromDB(db)
		if math.Abs(back-ssim) > 1e-12 {
			t.Fatalf("roundtrip ssim %v -> %v dB -> %v", ssim, db, back)
		}
	}
	if got := SSIMdBFromIndex(0.9); math.Abs(got-10) > 1e-9 {
		t.Fatalf("SSIMdB(0.9) = %v, want 10", got)
	}
	if !math.IsInf(SSIMdBFromIndex(1.0), 1) {
		t.Fatal("SSIMdB(1.0) should be +Inf")
	}
}

func TestFindProfile(t *testing.T) {
	if _, err := FindProfile("nbc"); err != nil {
		t.Fatalf("nbc should exist: %v", err)
	}
	if _, err := FindProfile("nope"); err == nil {
		t.Fatal("expected error for unknown channel")
	}
	if len(Channels()) != 6 {
		t.Fatalf("want 6 channels like Puffer, got %d", len(Channels()))
	}
}

func TestComplexityAutocorrelation(t *testing.T) {
	// Log-complexity must be positively autocorrelated (scenes persist).
	p, _ := FindProfile("pbs")
	src := NewSource(nil, p, 11)
	chunks := src.Take(4000)
	xs := make([]float64, len(chunks))
	for i, ch := range chunks {
		xs[i] = math.Log(ch.Complexity)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var num, den float64
	for i := 0; i < len(xs)-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	rho := num / den
	if rho < 0.5 {
		t.Fatalf("lag-1 autocorrelation = %.3f, want >= 0.5", rho)
	}
}

func TestNewSourcePanicsOnEmptyLadder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty ladder")
		}
	}()
	NewSource([]Rung{}, Channels()[0], 1)
}

func TestTakeCount(t *testing.T) {
	src := NewSource(nil, Channels()[0], 1)
	chunks := src.Take(17)
	if len(chunks) != 17 {
		t.Fatalf("Take(17) returned %d chunks", len(chunks))
	}
	for i, ch := range chunks {
		if ch.Index != i {
			t.Fatalf("chunk %d has Index %d", i, ch.Index)
		}
	}
}

func TestEncodingBitrate(t *testing.T) {
	e := Encoding{Size: ChunkDuration * 1e6 / 8}
	if got := e.Bitrate(); math.Abs(got-1e6) > 1e-6 {
		t.Fatalf("Bitrate = %v, want 1e6", got)
	}
}

func TestStationaryStdGuard(t *testing.T) {
	p := Profile{ARCoeff: 1.0, Volatility: 0.2}
	if got := p.stationaryStd(); got != 0.2 {
		t.Fatalf("degenerate AR coefficient: stationaryStd = %v, want fallback 0.2", got)
	}
}

var sinkChunk Chunk

func BenchmarkSourceNext(b *testing.B) {
	src := NewSource(nil, Channels()[0], rand.Int63())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkChunk = src.Next()
	}
}
