// Command puffer-daily runs the in-situ continual experiment: each day a
// randomized trial collects telemetry from the deployed schemes, and a
// nightly phase warm-start-retrains Fugu's TTP on a sliding window of recent
// days and rotates the new model in for the next day. With -retrain=true it
// also runs the frozen-model staleness ablation (the paper's "Fugu-Feb"
// comparison, §4.6) on the same seed and prints both side by side.
//
//	puffer-daily -days 3 -retrain=true
//	puffer-daily -days 14 -sessions 300 -window 7 -checkpoint /tmp/daily
//	puffer-daily -days 30 -retrain=false        # deploy one stale model
//
// A killed run resumes at the last completed day when -checkpoint is set.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-daily: ")
	days := flag.Int("days", 3, "deployment days to simulate")
	sessions := flag.Int("sessions", 150, "sessions per day")
	window := flag.Int("window", 14, "sliding retraining window in days (0 = all)")
	workers := flag.Int("workers", 0, "parallel shard workers (0 = GOMAXPROCS)")
	shard := flag.Int("shard", 64, "sessions per aggregation shard")
	seed := flag.Int64("seed", 1, "experiment seed")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory (empty = no checkpointing)")
	retrain := flag.Bool("retrain", true, "retrain the TTP nightly (false = frozen day-0 model)")
	ablation := flag.Bool("ablation", true, "with -retrain, also run the frozen-model staleness ablation")
	epochs := flag.Int("epochs", 8, "nightly training epochs")
	envName := flag.String("env", "insitu", "environment: insitu or emulation")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	var env experiment.Env
	switch *envName {
	case "insitu":
		env = experiment.DefaultEnv()
	case "emulation":
		env = experiment.EmulationEnv()
	default:
		log.Fatalf("unknown -env %q (want insitu or emulation)", *envName)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	train := core.DefaultTrainConfig()
	train.Epochs = *epochs
	train.WindowDays = *window
	cfg := runner.Config{
		Env:            env,
		Days:           *days,
		SessionsPerDay: *sessions,
		WindowDays:     *window,
		Workers:        *workers,
		ShardSize:      *shard,
		Seed:           *seed,
		Retrain:        *retrain,
		Train:          train,
		Logf:           logf,
	}
	// The retrained run and the frozen ablation checkpoint side by side.
	ckptFor := func(retrain bool) string {
		if *checkpoint == "" {
			return ""
		}
		if retrain {
			return filepath.Join(*checkpoint, "retrain")
		}
		return filepath.Join(*checkpoint, "frozen")
	}
	cfg.CheckpointDir = ckptFor(*retrain)

	res, err := runner.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printRun(os.Stdout, runLabel(*retrain), res)

	if *retrain && *ablation {
		logf("running frozen-model ablation (same seed, no nightly retraining)...")
		frozenCfg := cfg
		frozenCfg.Retrain = false
		frozenCfg.CheckpointDir = ckptFor(false)
		frozen, err := runner.Run(frozenCfg)
		if err != nil {
			log.Fatal(err)
		}
		printRun(os.Stdout, runLabel(false), frozen)
		printComparison(os.Stdout, res, frozen)
	}
}

func runLabel(retrain bool) string {
	if retrain {
		return "daily retraining"
	}
	return "frozen day-0 model"
}

// fuguRow finds the pooled Fugu arm of a run.
func fuguRow(res *runner.Result) (experiment.SchemeStats, bool) {
	for _, r := range res.Total {
		if r.Name == "Fugu" {
			return r, true
		}
	}
	return experiment.SchemeStats{}, false
}

func printRun(w *os.File, label string, res *runner.Result) {
	fmt.Fprintf(w, "\nContinual experiment (%s)\n", label)
	fmt.Fprintf(w, "%-4s %-14s %22s %10s %9s %10s\n",
		"Day", "Arm", "Stalled% [95% CI]", "SSIM dB", "Streams", "Retrain")
	for _, ds := range res.Days {
		night := "-"
		if ds.Retrained {
			night = fmt.Sprintf("%.3f", ds.Loss[0])
		}
		for i, r := range ds.Schemes {
			dayCol, nightCol := "", ""
			if i == 0 {
				dayCol, nightCol = fmt.Sprintf("%d", ds.Day), night
			}
			fmt.Fprintf(w, "%-4s %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d %10s\n",
				dayCol, r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
				r.SSIM.Point, r.Considered, nightCol)
		}
	}
	fmt.Fprintf(w, "Pooled over all days:\n")
	for _, r := range res.Total {
		fmt.Fprintf(w, "     %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
			r.SSIM.Point, r.Considered)
	}
}

// printComparison is the §4.6 staleness readout: the pooled Fugu arm under
// daily retraining vs under the frozen day-0 model, on the same seed.
func printComparison(w *os.File, retrained, frozen *runner.Result) {
	a, okA := fuguRow(retrained)
	b, okB := fuguRow(frozen)
	if !okA || !okB {
		fmt.Fprintf(w, "\nstaleness comparison unavailable (missing Fugu arm)\n")
		return
	}
	fmt.Fprintf(w, "\nStaleness ablation (pooled Fugu arm, same seed)\n")
	fmt.Fprintf(w, "%-22s %22s %10s\n", "Model", "Stalled% [95% CI]", "SSIM dB")
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Daily-retrained",
		100*a.StallRatio.Point, 100*a.StallRatio.Lo, 100*a.StallRatio.Hi, a.SSIM.Point)
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Frozen (day 0)",
		100*b.StallRatio.Point, 100*b.StallRatio.Lo, 100*b.StallRatio.Hi, b.SSIM.Point)
	switch {
	case a.StallRatio.Point <= b.StallRatio.Point && a.StallRatio.Overlaps(b.StallRatio):
		fmt.Fprintf(w, "Retrained stall ratio <= frozen, CIs overlap: retraining helps or ties (the paper found ties in a stationary deployment).\n")
	case a.StallRatio.Point <= b.StallRatio.Point:
		fmt.Fprintf(w, "Retrained stall ratio <= frozen with non-overlapping CIs: retraining clearly helped.\n")
	default:
		fmt.Fprintf(w, "Frozen model stalled less in this run; with overlapping CIs this is statistical noise (see -sessions).\n")
	}
}
