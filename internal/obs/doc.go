// Package obs is the platform's observability layer: atomic counters and
// gauges, fixed-bucket log-scale latency histograms with mergeable
// snapshots and p50/p99/p999 quantiles, named per-stage timers, a
// structured JSONL run-event stream, and profiling hooks (runtime/pprof
// plus an optional HTTP endpoint serving the registry snapshot and
// net/http/pprof).
//
// Everything in this codebase lives by one constraint, and obs states it as
// a contract the differential smokes enforce:
//
//   - Metrics are WRITE-ONLY from engine code. Engine code records into
//     them and never reads one back into anything that shapes a result.
//   - Metrics read the WALL CLOCK only, never virtual time, and never draw
//     from an experiment RNG.
//   - Metrics and events are EXCLUDED from checkpoints, manifests,
//     results.CanonicalBytes, and every accumulator fingerprint.
//
// Consequently every byte-identity guarantee the engines make (workers 1
// vs 8, kill-and-resume, fleet vs sequential, sweep relaunch) holds with
// observability enabled, which TestObs*Identical prove by running the same
// experiments obs-on and obs-off and comparing bytes.
//
// The only permitted readers of a metric are wall-side consumers: progress
// logging (Logf), the Snapshot/WriteJSON/WritePrometheus dumps, and the
// Serve HTTP endpoint. Nothing downstream of a read may feed a Result, a
// checkpoint, an accumulator, or an RNG.
//
// Recording is gated by a process-global switch (SetEnabled); while
// disabled — the default — every metric write is a single atomic load and
// no clock is read, so uninstrumented-grade performance is the zero state
// and instrumented hot paths stay within the <2% throughput budget when
// enabled (see BenchmarkFleetThroughput's fleet-obs variant).
package obs
