package sweep

import (
	"strings"
	"testing"

	"puffer/internal/scenario"
)

// tinySweep is a 2x2 grid over a small inline base — the shape the smoke
// grid uses, at unit-test scale.
const tinySweep = `{
  "name": "t",
  "base": {
    "daily": {"days": 2, "sessions": 16, "window": 2, "ablation": false},
    "model": {"hidden": [8], "horizon": 2},
    "train": {"epochs": 1},
    "shard_size": 4
  },
  "axes": [
    {"field": "drift.preset", "values": ["none", "shift"]},
    {"field": "seed", "values": [11, 12]}
  ]
}`

func mustParse(t *testing.T, blob string) Spec {
	t.Helper()
	sw, err := Parse([]byte(blob))
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestExpandDeterministic: expansion order is the axes' cross product with
// the last axis fastest, and two expansions are cell-for-cell identical.
func TestExpandDeterministic(t *testing.T) {
	sw := mustParse(t, tinySweep)
	cells, err := sw.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"t/drift.preset=none,seed=11",
		"t/drift.preset=none,seed=12",
		"t/drift.preset=shift,seed=11",
		"t/drift.preset=shift,seed=12",
	}
	if len(cells) != len(wantNames) {
		t.Fatalf("expanded %d cells, want %d", len(cells), len(wantNames))
	}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.Hash == "" || c.GuardHash == "" {
			t.Fatalf("cell %d missing hashes", i)
		}
	}
	// All four cells are distinct experiments.
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Hash] {
			t.Fatalf("duplicate hash %s", c.Hash)
		}
		seen[c.Hash] = true
	}

	again, err := mustParse(t, tinySweep).Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Hash != again[i].Hash || cells[i].Name != again[i].Name {
			t.Fatalf("expansion not stable at cell %d", i)
		}
	}

	// The cell spec actually carries the axis values.
	d := cells[2].Spec
	if d.Drift.Preset != "shift" || *d.Seed != 11 {
		t.Fatalf("cell 2 spec did not take axis values: %+v", d)
	}
}

// TestRandomAxisReproduciblePerSeedAndField: a random axis's sample is a
// pure function of (sweep seed, axis field) — independent of axis order
// and of the other axes — and changes when either input changes.
func TestRandomAxisReproduciblePerSeedAndField(t *testing.T) {
	withAxes := func(seed int64, axesJSON string) []Cell {
		blob := `{"seed": ` + itoa(seed) + `, "base": {
      "daily": {"days": 2, "sessions": 16, "window": 2, "ablation": false},
      "model": {"hidden": [8], "horizon": 2},
      "train": {"epochs": 1},
      "shard_size": 4
    }, "axes": ` + axesJSON + `}`
		cells, err := mustParse(t, blob).Expand(nil)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	seedsOf := func(cells []Cell) []int64 {
		var out []int64
		seen := map[int64]bool{}
		for _, c := range cells {
			s := *c.Spec.Seed
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out
	}

	randAxis := `{"field": "seed", "samples": 3, "min": 1, "max": 1000000, "int": true}`
	a := seedsOf(withAxes(7, `[`+randAxis+`]`))
	if len(a) != 3 {
		t.Fatalf("sampled %d distinct seeds, want 3", len(a))
	}

	// Same (sweep seed, field), different axis position and company.
	b := seedsOf(withAxes(7, `[{"field": "drift.preset", "values": ["none", "shift"]}, `+randAxis+`]`))
	if !equalInt64(a, b) {
		t.Fatalf("sample changed with axis order/company: %v vs %v", a, b)
	}

	// Different sweep seed: different sample.
	c := seedsOf(withAxes(8, `[`+randAxis+`]`))
	if equalInt64(a, c) {
		t.Fatalf("sample did not change with the sweep seed: %v", a)
	}

	// Different field, same seed: independent stream. Sample sessions
	// instead and check the draws differ from the seed-axis draws.
	d := withAxes(7, `[{"field": "daily.sessions", "samples": 3, "min": 1, "max": 1000000, "int": true}]`)
	var sessions []int64
	for _, cell := range d {
		sessions = append(sessions, int64(cell.Spec.Daily.Sessions))
	}
	if equalInt64(a, sessions) {
		t.Fatalf("different fields drew the same sample: %v", a)
	}

	// Float sampling is reproducible too.
	f1 := withAxes(7, `[{"field": "engine.tick", "samples": 2, "min": 0.5, "max": 2.5}]`)
	f2 := withAxes(7, `[{"field": "engine.tick", "samples": 2, "min": 0.5, "max": 2.5}]`)
	for i := range f1 {
		if f1[i].Spec.Engine.Tick != f2[i].Spec.Engine.Tick {
			t.Fatalf("float sample not reproducible: %v vs %v", f1[i].Spec.Engine.Tick, f2[i].Spec.Engine.Tick)
		}
		if f1[i].Spec.Engine.Tick < 0.5 || f1[i].Spec.Engine.Tick > 2.5 {
			t.Fatalf("float sample out of range: %v", f1[i].Spec.Engine.Tick)
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var b [20]byte
	i := len(b)
	for v != 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExpandRejectsUnknownField: a typo'd axis path fails loudly through
// the strict scenario parse, naming the cell.
func TestExpandRejectsUnknownField(t *testing.T) {
	blob := `{"axes": [{"field": "drift.presett", "values": ["shift"]}]}`
	_, err := mustParse(t, blob).Expand(nil)
	if err == nil {
		t.Fatal("unknown axis field must be an error")
	}
	if !strings.Contains(err.Error(), "presett") {
		t.Fatalf("error should name the field: %v", err)
	}
}

func TestSweepValidation(t *testing.T) {
	for _, tc := range []struct{ name, blob string }{
		{"both bases", `{"scenario": "stationary", "base": {}, "axes": [{"field": "seed", "values": [1]}]}`},
		{"no field", `{"axes": [{"values": [1]}]}`},
		{"duplicate axis", `{"axes": [{"field": "seed", "values": [1]}, {"field": "seed", "values": [2]}]}`},
		{"grid and random", `{"axes": [{"field": "seed", "values": [1], "samples": 2}]}`},
		{"neither grid nor random", `{"axes": [{"field": "seed"}]}`},
		{"max below min", `{"axes": [{"field": "seed", "samples": 2, "min": 5, "max": 1}]}`},
		{"unknown scenario", `{"scenario": "no-such", "axes": [{"field": "seed", "values": [1]}]}`},
	} {
		if _, err := mustParse(t, tc.blob).Expand(nil); err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
	}
	if _, err := Parse([]byte(`{"axes": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown sweep field must be rejected")
	}
}

// TestScenarioBaseAndTransform: a registered-scenario base resolves, and
// the transform is applied to each defaulted cell before hashing.
func TestScenarioBaseAndTransform(t *testing.T) {
	blob := `{"scenario": "drift-shift", "axes": [{"field": "seed", "values": [3, 4]}]}`
	shrink := func(s scenario.Spec) scenario.Spec {
		s.Daily.Days = 2
		s.Daily.Sessions = 8
		return s
	}
	cells, err := mustParse(t, blob).Expand(shrink)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Spec.Daily.Days != 2 || c.Spec.Daily.Sessions != 8 {
			t.Fatalf("transform not applied: %+v", c.Spec.Daily)
		}
		if c.Spec.Drift.Preset != "shift" {
			t.Fatalf("registered base not inherited: %+v", c.Spec.Drift)
		}
		// The hash must describe the transformed spec, or index keys
		// would never match what ran.
		if c.Hash != c.Spec.Hash() {
			t.Fatal("cell hash differs from its spec's hash")
		}
	}
	if cells[0].Hash == cells[1].Hash {
		t.Fatal("seed axis cells must differ")
	}
}
