package pensieve

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/netem"
	"puffer/internal/nn"
	"puffer/internal/tcpsim"
)

func testObs(buffer float64, tput float64) *abr.Observation {
	vs := make([]media.Encoding, NumActions)
	for q := range vs {
		vs[q] = media.Encoding{Size: float64(q+1) * 2.5e5, SSIMdB: 10 + float64(q)}
	}
	hist := make([]abr.ChunkRecord, 4)
	for i := range hist {
		hist[i] = abr.ChunkRecord{Size: 1e6, TransTime: 1e6 * 8 / tput}
	}
	return &abr.Observation{
		Buffer:      buffer,
		BufferCap:   15,
		LastQuality: 3,
		History:     hist,
		TCP:         tcpsim.Info{DeliveryRate: tput},
		Horizon:     []media.Chunk{{Versions: vs}},
	}
}

func TestAssembleStateLayout(t *testing.T) {
	obs := testObs(7.5, 8e6)
	s := make([]float64, StateDim)
	assembleState(s, obs)
	// Four history entries right-aligned in the first 8 slots.
	for i := 0; i < 4; i++ {
		if s[i] != 0 {
			t.Fatalf("slot %d should be padding", i)
		}
	}
	if math.Abs(s[7]-0.8) > 1e-9 { // 8 Mbps / 10e6
		t.Fatalf("throughput slot = %v, want 0.8", s[7])
	}
	if math.Abs(s[15]-0.1) > 1e-9 { // 1 s / 10
		t.Fatalf("download-time slot = %v, want 0.1", s[15])
	}
	// Next-chunk sizes.
	if math.Abs(s[16]-0.25) > 1e-9 || math.Abs(s[25]-2.5) > 1e-9 {
		t.Fatalf("size slots = %v, %v", s[16], s[25])
	}
	if math.Abs(s[26]-0.75) > 1e-9 { // buffer/10
		t.Fatalf("buffer slot = %v, want 0.75", s[26])
	}
	if math.Abs(s[27]-0.3) > 1e-9 { // last quality 3/10
		t.Fatalf("last-quality slot = %v", s[27])
	}
	if s[28] != 1 {
		t.Fatalf("remaining-chunks slot = %v, want 1", s[28])
	}
}

func TestAssembleStateNoLastQuality(t *testing.T) {
	obs := testObs(5, 5e6)
	obs.LastQuality = -1
	s := make([]float64, StateDim)
	assembleState(s, obs)
	if s[27] != 0 {
		t.Fatalf("no-last-quality slot = %v, want 0", s[27])
	}
}

func TestAgentChoosesValidAction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(NewUntrainedPolicy(rng))
	if a.Name() != "Pensieve" {
		t.Fatalf("name = %q", a.Name())
	}
	for _, tput := range []float64{0.3e6, 3e6, 30e6} {
		q := a.Choose(testObs(5, tput))
		if q < 0 || q >= NumActions {
			t.Fatalf("invalid action %d", q)
		}
	}
	a.Reset()
}

func TestAgentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(NewUntrainedPolicy(rng))
	obs := testObs(6, 4e6)
	if a.Choose(obs) != a.Choose(obs) {
		t.Fatal("deployment agent must be deterministic (argmax)")
	}
}

func TestQoEReward(t *testing.T) {
	w := DefaultQoE()
	enc := media.Encoding{Size: 2e6 / 8 * media.ChunkDuration} // 2 Mbps
	r := w.Reward(enc, -1, 0)
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("first-chunk reward = %v, want 2", r)
	}
	// Stall penalty.
	r2 := w.Reward(enc, -1, 1)
	if math.Abs(r2-(2-4.3)) > 1e-9 {
		t.Fatalf("stalled reward = %v", r2)
	}
	// Smoothness penalty vs a 4 Mbps previous chunk.
	r3 := w.Reward(enc, 4e6, 0)
	if math.Abs(r3-0) > 1e-9 {
		t.Fatalf("smoothness reward = %v, want 0 (2 - |2-4|)", r3)
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probs := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[sample(rng, probs)]++
	}
	if counts[0] < 6500 || counts[0] > 7500 {
		t.Fatalf("action 0 sampled %d/10000, want ~7000", counts[0])
	}
	if counts[2] > 1500 {
		t.Fatalf("action 2 oversampled: %d", counts[2])
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(NewUntrainedPolicy(rng))
	var buf bytes.Buffer
	if err := a.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	obs := testObs(5, 5e6)
	if a.Choose(obs) != b.Choose(obs) {
		t.Fatal("roundtripped agent disagrees")
	}
}

func TestLoadAgentRejectsWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wrong := NewUntrainedPolicy(rng)
	var buf bytes.Buffer
	small := wrong.Clone()
	small.Sizes[0] = 7 // corrupt metadata so shapes mismatch
	if err := small.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAgent(&buf); err == nil {
		t.Fatal("accepted wrong-shape policy")
	}
}

func TestTrainingImprovesReward(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training skipped in -short")
	}
	// Small-scale but real training: the trained policy must beat both an
	// untrained policy and the best fixed action on identical held-out
	// emulation episodes.
	cfg := DefaultTrainConfig()
	cfg.Episodes = 600
	cfg.ChunksPerEp = 100
	cfg.Seed = 7
	cfg.Paths = netem.FCCPaths{}
	nbc, _ := media.FindProfile("nbc")
	cfg.Clip = media.RecordClip(nbc, 600, 600)
	agent, res := Train(cfg)
	if res.Episodes != 600 {
		t.Fatalf("episodes = %d", res.Episodes)
	}

	evalReward := func(choose func(*abr.Observation) int) float64 {
		rng := rand.New(rand.NewSource(99)) // identical episodes per policy
		total, n := 0.0, 0
		for ep := 0; ep < 25; ep++ {
			runEpisode(cfg, rng, choose, func(r float64) {
				total += r
				n++
			})
		}
		return total / float64(n)
	}
	trained := evalReward(agent.Choose)
	untrained := evalReward(NewAgent(NewUntrainedPolicy(rand.New(rand.NewSource(8)))).Choose)
	fixed0 := evalReward(func(*abr.Observation) int { return 0 })
	if trained <= untrained {
		t.Fatalf("training did not help: trained %v vs untrained %v", trained, untrained)
	}
	if trained <= fixed0 {
		t.Fatalf("trained policy %v does not beat the best static action %v — no adaptation learned", trained, fixed0)
	}
}

func TestNewAgentPanicsOnWrongShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAgent(nn.NewMLP(rand.New(rand.NewSource(6)), 4, 4, 2))
}
