package netem

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Trace is a piecewise-constant bottleneck capacity series. Rate[i] applies
// to the half-open interval [i*Interval, (i+1)*Interval). Reads past the end
// wrap around, so a finite trace can back an arbitrarily long session (the
// emulation methodology replays traces the same way).
type Trace struct {
	Interval float64   // seconds per sample; must be > 0
	Rate     []float64 // bits per second; must be non-negative
}

// RateAt returns the capacity at absolute time t (seconds), wrapping past
// the end of the trace.
func (tr *Trace) RateAt(t float64) float64 {
	if len(tr.Rate) == 0 {
		panic("netem: empty trace")
	}
	if t < 0 {
		t = 0
	}
	i := int(t/tr.Interval) % len(tr.Rate)
	return tr.Rate[i]
}

// SegmentEnd returns the absolute end time of the trace segment containing
// time t, i.e. the next instant the capacity may change.
func (tr *Trace) SegmentEnd(t float64) float64 {
	if t < 0 {
		t = 0
	}
	return (math.Floor(t/tr.Interval) + 1) * tr.Interval
}

// Duration returns the un-wrapped length of the trace in seconds.
func (tr *Trace) Duration() float64 {
	return float64(len(tr.Rate)) * tr.Interval
}

// Mean returns the time-average capacity in bits per second.
func (tr *Trace) Mean() float64 {
	if len(tr.Rate) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range tr.Rate {
		s += r
	}
	return s / float64(len(tr.Rate))
}

// Min returns the minimum capacity sample.
func (tr *Trace) Min() float64 {
	if len(tr.Rate) == 0 {
		return 0
	}
	m := tr.Rate[0]
	for _, r := range tr.Rate[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// Validate checks the trace invariants.
func (tr *Trace) Validate() error {
	if tr.Interval <= 0 {
		return fmt.Errorf("netem: trace interval %v, must be > 0", tr.Interval)
	}
	if len(tr.Rate) == 0 {
		return fmt.Errorf("netem: trace has no samples")
	}
	for i, r := range tr.Rate {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("netem: trace sample %d = %v, must be finite and >= 0", i, r)
		}
	}
	return nil
}

// WriteCSV writes the trace as "time_s,rate_bps" rows with a header.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time_s,rate_bps"); err != nil {
		return err
	}
	for i, r := range tr.Rate {
		if _, err := fmt.Fprintf(bw, "%.3f,%.0f\n", float64(i)*tr.Interval, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The interval is inferred from
// the first two timestamps (or 1 s for a single-row trace).
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var times, rates []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "time_s") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("netem: line %d: want 2 fields, got %d", line, len(parts))
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("netem: line %d: bad time: %w", line, err)
		}
		rt, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("netem: line %d: bad rate: %w", line, err)
		}
		times = append(times, ts)
		rates = append(rates, rt)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netem: reading trace: %w", err)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("netem: trace file has no samples")
	}
	interval := 1.0
	if len(times) >= 2 {
		interval = times[1] - times[0]
		if interval <= 0 {
			return nil, fmt.Errorf("netem: non-increasing timestamps")
		}
	}
	tr := &Trace{Interval: interval, Rate: rates}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Constant returns a trace with fixed capacity, mainly for tests.
func Constant(rateBps, duration, interval float64) *Trace {
	n := int(math.Ceil(duration / interval))
	if n < 1 {
		n = 1
	}
	tr := &Trace{Interval: interval, Rate: make([]float64, n)}
	for i := range tr.Rate {
		tr.Rate[i] = rateBps
	}
	return tr
}
