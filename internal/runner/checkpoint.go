package runner

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// Checkpoint layout: <dir>/manifest.json pins the run parameters that shape
// results; each completed day owns <dir>/day_NNN/ holding
//
//	stats.json    — the day's DayStats (human-readable record)
//	acc.gob       — the day's merged TrialAcc (exact accumulator state)
//	telemetry.gob — the day's Dataset (rebuilds the sliding window)
//	ttp.model     — the model serving the NEXT day (post-nightly rotation)
//
// A day directory is written under a dot-prefixed temp name and committed
// with a single rename, so a kill mid-checkpoint leaves either a complete
// day or no day. Gob and Go's JSON both round-trip float64 exactly, which is
// what makes resumed runs byte-identical to uninterrupted ones.

const (
	manifestFile  = "manifest.json"
	statsFile     = "stats.json"
	accFile       = "acc.gob"
	telemetryFile = "telemetry.gob"
	modelFile     = "ttp.model"
)

// manifest pins the config fields that determine results. Workers is
// deliberately absent: it only changes scheduling. The environment is
// pinned by its observable identity (path family plus clip replay), which
// distinguishes the deployment and emulation worlds.
type manifest struct {
	EnvPaths       string
	EnvClip        bool
	SessionsPerDay int
	WindowDays     int
	ShardSize      int
	Seed           int64
	Retrain        bool
	Hidden         []int
	Horizon        int
	Train          core.TrainConfig
}

func (cfg *Config) manifest() manifest {
	m := manifest{
		EnvClip:        cfg.Env.Clip != nil,
		SessionsPerDay: cfg.SessionsPerDay,
		WindowDays:     cfg.WindowDays,
		ShardSize:      cfg.ShardSize,
		Seed:           cfg.Seed,
		Retrain:        cfg.Retrain,
		Hidden:         cfg.Hidden,
		Horizon:        cfg.Horizon,
		Train:          cfg.Train,
	}
	if cfg.Env.Paths != nil {
		m.EnvPaths = cfg.Env.Paths.Name()
	}
	return m
}

func dayDir(root string, day int) string {
	return filepath.Join(root, fmt.Sprintf("day_%03d", day))
}

// resume loads completed days from the checkpoint directory, rebuilding the
// pooled accumulator, the sliding telemetry window, and the model slot. It
// returns the first day that still needs to run.
func (r *state) resume() (int, error) {
	root := r.cfg.CheckpointDir
	if err := os.MkdirAll(root, 0o755); err != nil {
		return 0, fmt.Errorf("runner: creating checkpoint dir: %w", err)
	}
	if err := r.checkManifest(); err != nil {
		return 0, err
	}
	// Sweep partial writes from a killed checkpoint.
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, fmt.Errorf("runner: reading checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.RemoveAll(filepath.Join(root, e.Name())); err != nil {
				return 0, fmt.Errorf("runner: sweeping %s: %w", e.Name(), err)
			}
		}
	}

	day := 0
	for ; day < r.cfg.Days; day++ {
		dir := dayDir(root, day)
		if _, err := os.Stat(dir); err != nil {
			break
		}
		ds, acc, data, model, err := loadDay(dir)
		if err != nil {
			return 0, fmt.Errorf("runner: loading checkpointed day %d: %w", day, err)
		}
		if ds.Day != day {
			return 0, fmt.Errorf("runner: checkpoint %s claims day %d", dir, ds.Day)
		}
		if model != nil {
			r.slot.Store(model)
		}
		r.finishDay(ds, acc, data)
	}
	return day, nil
}

// checkManifest writes the manifest on first use and rejects resumes whose
// config would silently change the results of already-checkpointed days.
func (r *state) checkManifest() error {
	path := filepath.Join(r.cfg.CheckpointDir, manifestFile)
	want := r.cfg.manifest()
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return fmt.Errorf("runner: encoding manifest: %w", err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return fmt.Errorf("runner: writing manifest: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("runner: reading manifest: %w", err)
	}
	var got manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("runner: decoding manifest: %w", err)
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("runner: checkpoint dir %s was created with different parameters (%+v vs %+v); use a fresh dir",
			r.cfg.CheckpointDir, got, want)
	}
	return nil
}

// checkpointDay atomically commits one completed day.
func (r *state) checkpointDay(ds DayStats, acc *experiment.TrialAcc, data *core.Dataset) error {
	root := r.cfg.CheckpointDir
	tmp := filepath.Join(root, fmt.Sprintf(".tmp-day_%03d", ds.Day))
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("runner: clearing temp dir: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("runner: creating temp dir: %w", err)
	}

	blob, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding day stats: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, statsFile), blob, 0o644); err != nil {
		return fmt.Errorf("runner: writing day stats: %w", err)
	}

	var accBuf bytes.Buffer
	if err := gob.NewEncoder(&accBuf).Encode(acc); err != nil {
		return fmt.Errorf("runner: encoding accumulator: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, accFile), accBuf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("runner: writing accumulator: %w", err)
	}

	if err := data.SaveFile(filepath.Join(tmp, telemetryFile)); err != nil {
		return err
	}
	if model := r.slot.Load(); model != nil {
		if err := model.SaveFile(filepath.Join(tmp, modelFile)); err != nil {
			return err
		}
	}

	if err := os.Rename(tmp, dayDir(root, ds.Day)); err != nil {
		return fmt.Errorf("runner: committing day %d: %w", ds.Day, err)
	}
	return nil
}

// loadDay reads one committed day. The model may be absent only if the day
// was checkpointed before any model existed (impossible in the current loop,
// but tolerated for forward compatibility).
func loadDay(dir string) (DayStats, *experiment.TrialAcc, *core.Dataset, *core.TTP, error) {
	var ds DayStats
	raw, err := os.ReadFile(filepath.Join(dir, statsFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}
	if err := json.Unmarshal(raw, &ds); err != nil {
		return ds, nil, nil, nil, fmt.Errorf("decoding %s: %w", statsFile, err)
	}

	accRaw, err := os.ReadFile(filepath.Join(dir, accFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}
	acc := experiment.NewTrialAcc(experiment.AllPaths)
	if err := gob.NewDecoder(bytes.NewReader(accRaw)).Decode(acc); err != nil {
		return ds, nil, nil, nil, fmt.Errorf("decoding %s: %w", accFile, err)
	}

	data, err := core.LoadDatasetFile(filepath.Join(dir, telemetryFile))
	if err != nil {
		return ds, nil, nil, nil, err
	}

	var model *core.TTP
	if _, err := os.Stat(filepath.Join(dir, modelFile)); err == nil {
		model, err = core.LoadFile(filepath.Join(dir, modelFile))
		if err != nil {
			return ds, nil, nil, nil, err
		}
	}
	return ds, acc, data, model, nil
}
