package results

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"puffer/internal/experiment"
	"puffer/internal/obs"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// Warehouse metrics (write-only; see the obs package contract). Append
// latency is dominated by the per-record fsync, which is the durability
// cost worth watching on slow disks.
var (
	appendsTotal = obs.Default.Counter("results_appends_total")
	appendNS     = obs.Default.Histogram("results_append_ns")
)

// Record is one finished experiment in the warehouse: the spec that ran
// (canonically, so the record is self-describing and re-runnable), the
// deterministic outcome, and the run's nondeterministic circumstances
// (timing, host) kept apart so identity comparisons can exclude them.
type Record struct {
	// Hash is the scenario spec's content hash — the index key. Two
	// records with equal hashes describe the same experiment and, because
	// runs are deterministic, the same outcome.
	Hash string `json:"hash"`
	// GuardHash is the spec's checkpoint-guard projection, recorded so
	// queries can group cells that share a checkpoint lineage.
	GuardHash string `json:"guard_hash"`
	// Name is the cell's documentation-only label (sweep cells carry
	// "<sweep>/<field>=<value>,...").
	Name string `json:"name,omitempty"`
	// Spec is the fully-defaulted canonical spec JSON, compacted to keep
	// the index line-oriented.
	Spec json.RawMessage `json:"spec"`

	Outcome Outcome `json:"outcome"`

	// Timing and Host describe the run that produced the record, not the
	// experiment itself: they differ across machines and across resumed
	// runs, so CanonicalBytes zeroes both.
	Timing Timing `json:"timing"`
	Host   Host   `json:"host"`
}

// Outcome is the deterministic part of a record: everything here is
// byte-identical across machines, worker counts, engines, and
// kill-and-resume at the same spec.
type Outcome struct {
	// Total pools every day's streams per scheme.
	Total []experiment.SchemeStats `json:"total"`
	// Days are the per-day records (trial aggregate + nightly phase, and
	// the fleet serving record when that engine ran).
	Days []runner.DayStats `json:"days"`
	// FrozenTotal and FrozenDays are the staleness-ablation companion
	// (same seed, no nightly retraining), present when the spec ran it.
	FrozenTotal []experiment.SchemeStats `json:"frozen_total,omitempty"`
	FrozenDays  []runner.DayStats        `json:"frozen_days,omitempty"`
	// Gaps aligns the two arms day by day for the Fugu arm — the paper's
	// §4.6 staleness readout, precomputed so figures and queries read it
	// without re-deriving.
	Gaps []runner.GapRow `json:"gaps,omitempty"`
}

// Timing is the wall-clock record of the run that produced the record.
// Resumed cells replay checkpointed days, so their wall time measures the
// replay, not the original computation.
type Timing struct {
	WallSeconds float64 `json:"wall_seconds"`
	StartedAt   string  `json:"started_at,omitempty"`
}

// Host identifies where the record was produced.
type Host struct {
	Hostname  string `json:"hostname,omitempty"`
	OS        string `json:"os,omitempty"`
	Arch      string `json:"arch,omitempty"`
	CPUs      int    `json:"cpus,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	name, _ := os.Hostname()
	return Host{
		Hostname:  name,
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// FromOutcome builds the record for a finished scenario run. The spec is
// re-canonicalized (and compacted) from the outcome's fully-defaulted
// spec, so the record's hash always matches its embedded spec.
func FromOutcome(out *scenario.Outcome, started time.Time, wallSeconds float64) (*Record, error) {
	spec := out.Spec
	var compact bytes.Buffer
	if err := json.Compact(&compact, spec.CanonicalJSON()); err != nil {
		return nil, fmt.Errorf("results: compacting spec: %w", err)
	}
	rec := &Record{
		Hash:      spec.Hash(),
		GuardHash: spec.GuardHash(),
		Name:      spec.Name,
		Spec:      json.RawMessage(compact.Bytes()),
		Outcome: Outcome{
			Total: out.Result.Total,
			Days:  out.Result.Days,
		},
		Timing: Timing{
			WallSeconds: wallSeconds,
			StartedAt:   started.UTC().Format(time.RFC3339),
		},
		Host: CurrentHost(),
	}
	if out.Frozen != nil {
		rec.Outcome.FrozenTotal = out.Frozen.Total
		rec.Outcome.FrozenDays = out.Frozen.Days
		rec.Outcome.Gaps = runner.StalenessGaps(out.Result, out.Frozen, "Fugu")
	}
	return rec, nil
}

// Index is a loaded results index: the records in file order plus a
// by-hash lookup. Later records with a duplicate hash are kept in Records
// (the file is append-only history) but Get answers with the first, so
// re-appending a cell never changes query results.
type Index struct {
	Path    string
	Records []*Record

	byHash map[string]*Record
}

// Load reads a results index. A missing file is an empty index (the state
// every sweep starts from), not an error. A torn trailing line — a kill
// mid-append — is ignored; OpenWriter repairs it before the next append.
func Load(path string) (*Index, error) {
	ix := &Index{Path: path, byHash: map[string]*Record{}}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return ix, nil
	}
	if err != nil {
		return nil, fmt.Errorf("results: opening index: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// A malformed line followed by more lines is corruption, not
			// a torn tail.
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("results: %s line %d: %w", path, lineNo, err)
			continue
		}
		ix.add(&rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: reading index: %w", err)
	}
	return ix, nil
}

func (ix *Index) add(rec *Record) {
	ix.Records = append(ix.Records, rec)
	if _, dup := ix.byHash[rec.Hash]; !dup {
		ix.byHash[rec.Hash] = rec
	}
}

// Has reports whether the index holds a record for the spec hash.
func (ix *Index) Has(hash string) bool { _, ok := ix.byHash[hash]; return ok }

// Get returns the (first) record for the spec hash.
func (ix *Index) Get(hash string) (*Record, bool) {
	rec, ok := ix.byHash[hash]
	return rec, ok
}

// Len is the number of records (including any duplicate hashes).
func (ix *Index) Len() int { return len(ix.Records) }

// CanonicalBytes renders the index's deterministic content: every record
// in file order with the run-circumstance fields zeroed — Timing, Host,
// and the per-day fleet serving records (the checkpoint guard permits
// resuming a cell on a different engine, and a replayed day keeps the
// serving record of whichever engine originally ran it, so Fleet describes
// scheduling history, not the experiment). Two runs of the same sweep —
// including an interrupted run resumed to completion — produce identical
// CanonicalBytes even though the raw files differ in those fields.
func (ix *Index) CanonicalBytes() []byte {
	var buf bytes.Buffer
	for _, rec := range ix.Records {
		c := *rec
		c.Timing = Timing{}
		c.Host = Host{}
		c.Outcome.Days = stripServing(c.Outcome.Days)
		c.Outcome.FrozenDays = stripServing(c.Outcome.FrozenDays)
		blob, err := json.Marshal(&c)
		if err != nil {
			// Records are plain data; marshaling cannot fail.
			panic(fmt.Sprintf("results: canonical marshal: %v", err))
		}
		buf.Write(blob)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// stripServing returns a copy of the day rows with the fleet serving
// record cleared. Never mutates the input: records may be shared with a
// live Index.
func stripServing(days []runner.DayStats) []runner.DayStats {
	if len(days) == 0 {
		return days
	}
	out := make([]runner.DayStats, len(days))
	copy(out, days)
	for i := range out {
		out[i].Fleet = nil
	}
	return out
}

// Writer appends records to an index file. The contract is single-writer:
// one process (the sweep executor, or a figure run filling missing cells)
// owns the file for the duration; each Append commits exactly one line in
// one write, so a kill between appends leaves a well-formed file and a
// kill mid-append leaves a torn tail that the next OpenWriter truncates.
type Writer struct {
	f *os.File
}

// OpenWriter opens (creating if needed) an index for appending, first
// repairing a torn trailing line left by a kill mid-append: anything after
// the last newline is truncated away.
func OpenWriter(path string) (*Writer, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("results: creating index dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: opening index for append: %w", err)
	}
	if err := repairTail(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: seeking index end: %w", err)
	}
	return &Writer{f: f}, nil
}

// repairTail truncates a trailing partial line (no final newline).
func repairTail(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("results: stat index: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	// Scan backwards in chunks for the last newline.
	const chunk = 64 << 10
	end := size
	for end > 0 {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		buf := make([]byte, end-start)
		if _, err := f.ReadAt(buf, start); err != nil {
			return fmt.Errorf("results: reading index tail: %w", err)
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			keep := start + int64(i) + 1
			if keep < size {
				if err := f.Truncate(keep); err != nil {
					return fmt.Errorf("results: repairing torn index tail: %w", err)
				}
			}
			return nil
		}
		end = start
	}
	// No newline at all: the whole file is one torn line.
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("results: repairing torn index tail: %w", err)
	}
	return nil
}

// Append commits one record as a single line + newline in one write call,
// then syncs, so a committed record survives the process dying immediately
// after.
func (w *Writer) Append(rec *Record) error {
	t0 := obs.Now()
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("results: encoding record: %w", err)
	}
	line := append(blob, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("results: appending record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("results: syncing index: %w", err)
	}
	appendsTotal.Inc()
	appendNS.ObserveSince(t0)
	return nil
}

// Close releases the index file.
func (w *Writer) Close() error { return w.f.Close() }
