// Uncertainty: why small ABR experiments mislead (§3.4 and §5.3).
//
// Streams have heavy-tailed watch times and rare, bursty stalls, so the
// aggregate stall ratio converges slowly. This program measures bootstrap
// CI widths at several sample sizes and then runs the paper's power
// analysis: how many streams to reliably detect a true 15% difference?
//
//	go run ./examples/uncertainty
//
// Set PUFFER_EXAMPLE_SCALE (e.g. 0.2) to shrink session and resample counts
// for a quick smoke run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"puffer"
	"puffer/examples/internal/exscale"
	"puffer/internal/experiment"
	"puffer/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.Println("simulating a BBA arm to get realistic stream behavior...")
	res, err := puffer.RunExperiment(puffer.Config{
		Env:      puffer.DefaultEnv(),
		Schemes:  []puffer.Scheme{{Name: "BBA", New: puffer.NewBBA}},
		Sessions: exscale.Scaled(500),
		Seed:     31,
	})
	if err != nil {
		log.Fatal(err)
	}
	var pool []stats.StreamPoint
	for _, ss := range experiment.EligibleStreams(res, experiment.AllPaths) {
		for _, s := range ss {
			pool = append(pool, stats.StreamPoint{Watch: s.WatchTime(), Stall: s.StallTime})
		}
	}
	log.Printf("pool: %d streams, aggregate stall ratio %.4f%%", len(pool), 100*stats.StallRatio(pool))

	rng := rand.New(rand.NewSource(32))
	fmt.Printf("\nBootstrap 95%% CI width vs sample size (stall ratio):\n")
	fmt.Printf("%-10s %14s %18s\n", "Streams", "Stall ratio", "Rel. half-width")
	for _, n := range []int{exscale.Scaled(500), exscale.Scaled(2000), exscale.Scaled(8000), exscale.Scaled(32000)} {
		sample := make([]stats.StreamPoint, n)
		for i := range sample {
			sample[i] = pool[rng.Intn(len(pool))]
		}
		iv := stats.BootstrapStallRatio(rng, sample, 300, 0.95)
		fmt.Printf("%-10d %13.4f%% %17.1f%%\n", n, 100*iv.Point, 100*iv.RelativeHalfWidth())
	}

	fmt.Printf("\nPower to detect a true 15%% stall-ratio difference:\n")
	cfg := stats.PowerConfig{Effect: 0.15, Trials: 30, BootstrapIters: 150, Conf: 0.95}
	draw := func(rng *rand.Rand, scale float64) stats.StreamPoint {
		p := pool[rng.Intn(len(pool))]
		p.Stall *= scale
		return p
	}
	meanWatch := 0.0
	for _, p := range pool {
		meanWatch += p.Watch
	}
	meanWatch /= float64(len(pool))
	fmt.Printf("%-10s %14s %16s\n", "Streams", "Stream-years", "Detection rate")
	for _, n := range []int{exscale.Scaled(1000), exscale.Scaled(4000), exscale.Scaled(16000), exscale.Scaled(64000)} {
		rate := stats.DetectionRate(rng, cfg, n, draw)
		years := float64(n) * meanWatch / (365.25 * 24 * 3600)
		fmt.Printf("%-10d %14.3f %16.2f\n", n, years, rate)
	}
	fmt.Println("\nModest effects need stream-years of data — shorter experiments")
	fmt.Println("report differences that are mostly the play of chance (§5.3).")
}
