package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The status live view reads a best-effort sidecar that a killed or
// concurrent writer can leave absent, truncated mid-record, or corrupted.
// These pin the degradation contract: status never errors over its
// sidecar, a truncated tail yields the view up to the last whole record,
// and an unreadable log says so while the index-only view stands.

func writeEvents(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.jsonl.events")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrintLiveAbsentSidecar(t *testing.T) {
	var out strings.Builder
	printLive(&out, "", filepath.Join(t.TempDir(), "index.jsonl"))
	if out.Len() != 0 {
		t.Fatalf("absent sidecar should print nothing, got %q", out.String())
	}
}

func TestPrintLiveTruncatedFinalRecord(t *testing.T) {
	// A writer killed mid-append leaves a torn last line; everything before
	// it must still render.
	path := writeEvents(t,
		`{"t":"2026-08-07T10:00:00Z","type":"sweep_start","todo":3}`,
		`{"t":"2026-08-07T10:00:01Z","type":"cell_start","cell":"a"}`,
		`{"t":"2026-08-07T10:00:02Z","type":"cell_done","cell":"a"}`,
		`{"t":"2026-08-07T10:00:03Z","type":"cell_start","ce`)
	var out strings.Builder
	printLive(&out, path, "")
	got := out.String()
	if !strings.Contains(got, "last execution in flight (1 done, 0 failed") {
		t.Fatalf("truncated tail lost the live view:\n%s", got)
	}
	if !strings.Contains(got, "2026-08-07") {
		t.Fatalf("live view lost the last event time:\n%s", got)
	}
}

func TestPrintLiveCorruptedMidRecord(t *testing.T) {
	// Corruption in the middle (valid records after a torn one) is
	// unreadable as a log; status must degrade visibly, not vanish or fail.
	path := writeEvents(t,
		`{"t":"2026-08-07T10:00:00Z","type":"sweep_start","todo":3}`,
		`{"t":"2026-08-07T10:00:01Z","type":"cell_sta`,
		`{"t":"2026-08-07T10:00:02Z","type":"cell_done","cell":"a"}`)
	var out strings.Builder
	printLive(&out, path, "")
	got := out.String()
	if !strings.Contains(got, "unreadable") || !strings.Contains(got, "index-only view") {
		t.Fatalf("corrupted log did not degrade visibly:\n%s", got)
	}
}

func TestPrintLiveNoTimestamps(t *testing.T) {
	// Events without parseable times must not render the zero time.
	path := writeEvents(t, `{"type":"cell_start","cell":"a"}`)
	var out strings.Builder
	printLive(&out, path, "")
	got := out.String()
	if strings.Contains(got, "0001-01-01") {
		t.Fatalf("zero time leaked into the live view:\n%s", got)
	}
	if !strings.Contains(got, "last event unknown") {
		t.Fatalf("missing timestamps should read as unknown:\n%s", got)
	}
}

func TestStatusSurvivesSidecar(t *testing.T) {
	// Full-command regression: status over a real sweep file with an
	// absent and then a truncated sidecar must exit clean both times.
	sweepFile := filepath.Join("..", "..", "scenarios", "sweeps", "smoke-grid.json")
	if _, err := os.Stat(sweepFile); err != nil {
		t.Skip("smoke-grid sweep spec not present")
	}
	dir := t.TempDir()
	index := filepath.Join(dir, "index.jsonl")

	if err := cmdStatus([]string{"-sweep", sweepFile, "-index", index}); err != nil {
		t.Fatalf("status with absent sidecar: %v", err)
	}

	events := index + ".events"
	if err := os.WriteFile(events, []byte(`{"t":"2026-08-07T10:00:00Z","type":"sweep_start","to`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStatus([]string{"-sweep", sweepFile, "-index", index}); err != nil {
		t.Fatalf("status with truncated sidecar: %v", err)
	}
}
