// Command puffer-daily runs the in-situ continual experiment: each day a
// randomized trial collects telemetry from the deployed schemes, and a
// nightly phase warm-start-retrains Fugu's TTP on a sliding window of recent
// days and rotates the new model in for the next day. With -retrain=true it
// also runs the frozen-model staleness ablation (the paper's "Fugu-Feb"
// comparison, §4.6) on the same seed and prints both side by side, including
// the per-day frozen-vs-retrained stall gap.
//
// The simulated deployment is stationary by default, where (as in the
// paper) the frozen model roughly ties. -drift makes the path population
// nonstationary — capacity decay, composition shift, or migration to a
// different family — so the gap separates and widens day over day:
//
//	puffer-daily -days 3 -retrain=true
//	puffer-daily -days 4 -drift shift               # nonstationary deployment
//	puffer-daily -days 14 -sessions 300 -window 7 -checkpoint /tmp/daily
//	puffer-daily -days 30 -retrain=false            # deploy one stale model
//	puffer-daily -engine fleet -arrival-rate 2      # concurrent serving engine
//
// A killed run resumes at the last completed day when -checkpoint is set;
// the drift schedule is pinned by the checkpoint manifest, so resuming with
// a different -drift is rejected.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/netem"
	"puffer/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-daily: ")
	days := flag.Int("days", 3, "deployment days to simulate (count)")
	sessions := flag.Int("sessions", 150, "randomized-trial size per day (sessions)")
	window := flag.Int("window", 14, "sliding retraining window (days; 0 = all days so far)")
	workers := flag.Int("workers", 0, "parallel shard workers (goroutines; 0 = GOMAXPROCS)")
	engine := flag.String("engine", "session", "execution engine: session (one session at a time per worker) or fleet (virtual-time multiplexing with cross-session batched inference); results are byte-identical")
	arrivalRate := flag.Float64("arrival-rate", 1, "fleet engine: Poisson session arrival intensity (sessions per virtual second)")
	tick := flag.Float64("tick", 0.25, "fleet engine: inference batching tick (virtual seconds; never changes results)")
	shard := flag.Int("shard", 64, "sessions per aggregation shard (sessions)")
	seed := flag.Int64("seed", 1, "experiment seed (any int64)")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory (path; empty = no checkpointing)")
	retrain := flag.Bool("retrain", true, "retrain the TTP nightly (false = frozen day-0 model)")
	ablation := flag.Bool("ablation", true, "with -retrain, also run the frozen-model staleness ablation")
	epochs := flag.Int("epochs", 8, "nightly training epochs (count)")
	envName := flag.String("env", "insitu", "environment: insitu or emulation")
	quiet := flag.Bool("q", false, "suppress progress logging")

	drift := flag.String("drift", "none", "nonstationarity preset: none, decay, shift, or mix")
	dRate := flag.Float64("drift-rate-factor", 0, "raw knob: daily capacity factor (ratio/day; e.g. 0.9 = -10%/day; unset = preset)")
	dFloor := flag.Float64("drift-rate-floor", 0, "raw knob: floor on the compounded capacity factor (ratio; unset = preset)")
	dSigma := flag.Float64("drift-sigma-widen", 0, "raw knob: extra session-spread log-std-dev added per day (nats/day; unset = preset)")
	dSlow := flag.Float64("drift-slow-share", 0, "raw knob: extra slow-path share added per day (fraction/day; unset = preset)")
	dSlowCap := flag.Float64("drift-slow-cap", 0, "raw knob: cap on the extra slow-path share (fraction; unset = preset)")
	dOutage := flag.Float64("drift-outage-rate", 0, "raw knob: extra deep outages added per day (outages/hour/day; unset = preset)")
	dOutageCap := flag.Float64("drift-outage-cap", 0, "raw knob: cap on the ramped outage rate (outages/hour; 0 = uncapped; unset = preset)")
	dMix := flag.String("drift-mix", "", "raw knob: migrate the population toward this family: congested, fcc, cs2p, or none (unset = preset)")
	dMixStart := flag.Int("drift-mix-start", 0, "raw knob: first day of the mix ramp (day index; unset = preset)")
	dMixRamp := flag.Int("drift-mix-ramp", 3, "raw knob: days for the mix ramp to reach 100% (days; <= 0 = step; unset = preset)")
	flag.Parse()

	var env experiment.Env
	switch *envName {
	case "insitu":
		env = experiment.DefaultEnv()
	case "emulation":
		env = experiment.EmulationEnv()
	default:
		log.Fatalf("unknown -env %q (want insitu or emulation)", *envName)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	sched, err := netem.DriftPreset(*drift)
	if err != nil {
		log.Fatal(err)
	}
	// Raw knobs override the preset field-by-field; a flag overrides only
	// when given on the command line, so explicit zeros work too.
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })
	if given["drift-rate-factor"] {
		sched.RateFactorPerDay = *dRate
	}
	if given["drift-rate-floor"] {
		sched.RateFactorFloor = *dFloor
	}
	if given["drift-sigma-widen"] {
		sched.SigmaWidenPerDay = *dSigma
	}
	if given["drift-slow-share"] {
		sched.SlowSharePerDay = *dSlow
	}
	if given["drift-slow-cap"] {
		sched.SlowShareCap = *dSlowCap
	}
	if given["drift-outage-rate"] {
		sched.OutageRatePerDay = *dOutage / 3600
	}
	if given["drift-outage-cap"] {
		sched.OutageRateCap = *dOutageCap / 3600
	}
	if given["drift-mix"] {
		switch *dMix {
		case "congested":
			sched.MixWith = netem.PufferPaths{MedianRate: 1.2e6, Sigma: 0.5}
		case "fcc":
			sched.MixWith = netem.FCCPaths{}
		case "cs2p":
			sched.MixWith = netem.CS2PPaths{}
		case "none", "":
			sched.MixWith = nil
		default:
			log.Fatalf("unknown -drift-mix %q (want congested, fcc, cs2p, or none)", *dMix)
		}
		// A newly-introduced mix takes the ramp flags' values (their
		// defaults included), not whatever the preset left at zero.
		if sched.MixWith != nil {
			sched.MixStartDay = *dMixStart
			sched.MixRampDays = *dMixRamp
		}
	}
	if given["drift-mix-start"] {
		sched.MixStartDay = *dMixStart
	}
	if given["drift-mix-ramp"] {
		sched.MixRampDays = *dMixRamp
	}
	if !sched.IsZero() {
		env.Paths = &netem.DriftingSampler{Base: env.Paths, Schedule: sched}
		logf("drift schedule: %s", sched.Signature())
	}

	train := core.DefaultTrainConfig()
	train.Epochs = *epochs
	train.WindowDays = *window
	cfg := runner.Config{
		Env:            env,
		Days:           *days,
		SessionsPerDay: *sessions,
		WindowDays:     *window,
		Workers:        *workers,
		Engine:         *engine,
		ArrivalRate:    *arrivalRate,
		FleetTick:      *tick,
		ShardSize:      *shard,
		Seed:           *seed,
		Retrain:        *retrain,
		Train:          train,
		Logf:           logf,
	}
	// The retrained run and the frozen ablation checkpoint side by side.
	ckptFor := func(retrain bool) string {
		if *checkpoint == "" {
			return ""
		}
		if retrain {
			return filepath.Join(*checkpoint, "retrain")
		}
		return filepath.Join(*checkpoint, "frozen")
	}
	cfg.CheckpointDir = ckptFor(*retrain)

	res, err := runner.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printRun(os.Stdout, runLabel(*retrain), res)

	if *retrain && *ablation {
		logf("running frozen-model ablation (same seed, no nightly retraining)...")
		frozenCfg := cfg
		frozenCfg.Retrain = false
		frozenCfg.CheckpointDir = ckptFor(false)
		frozen, err := runner.Run(frozenCfg)
		if err != nil {
			log.Fatal(err)
		}
		printRun(os.Stdout, runLabel(false), frozen)
		printComparison(os.Stdout, res, frozen, &sched)
	}
}

func runLabel(retrain bool) string {
	if retrain {
		return "daily retraining"
	}
	return "frozen day-0 model"
}

// fuguRow finds the pooled Fugu arm of a run.
func fuguRow(res *runner.Result) (experiment.SchemeStats, bool) {
	for _, r := range res.Total {
		if r.Name == "Fugu" {
			return r, true
		}
	}
	return experiment.SchemeStats{}, false
}

func printRun(w *os.File, label string, res *runner.Result) {
	fmt.Fprintf(w, "\nContinual experiment (%s)\n", label)
	fmt.Fprintf(w, "%-4s %-14s %22s %10s %9s %10s\n",
		"Day", "Arm", "Stalled% [95% CI]", "SSIM dB", "Streams", "Retrain")
	for _, ds := range res.Days {
		night := "-"
		if ds.Retrained {
			night = fmt.Sprintf("%.3f", ds.Loss[0])
		}
		for i, r := range ds.Schemes {
			dayCol, nightCol := "", ""
			if i == 0 {
				dayCol, nightCol = fmt.Sprintf("%d", ds.Day), night
			}
			fmt.Fprintf(w, "%-4s %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d %10s\n",
				dayCol, r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
				r.SSIM.Point, r.Considered, nightCol)
		}
	}
	fmt.Fprintf(w, "Pooled over all days:\n")
	for _, r := range res.Total {
		fmt.Fprintf(w, "     %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
			r.SSIM.Point, r.Considered)
	}
}

// printComparison is the §4.6 staleness readout: the Fugu arm under daily
// retraining vs under the frozen day-0 model, on the same seed. Sessions
// are seed-paired, so the per-day gap isolates what the two models decided
// differently; under a drift schedule the table shows it widening as the
// path population moves away from the frozen model's training data.
func printComparison(w *os.File, retrained, frozen *runner.Result, sched *netem.DriftSchedule) {
	a, okA := fuguRow(retrained)
	b, okB := fuguRow(frozen)
	if !okA || !okB {
		fmt.Fprintf(w, "\nstaleness comparison unavailable (missing Fugu arm)\n")
		return
	}
	fmt.Fprintf(w, "\nStaleness ablation (Fugu arm, same seed — sessions are paired)\n")
	fmt.Fprintf(w, "%-4s %12s %12s %9s  %s\n", "Day", "Retrained%", "Frozen%", "Gap pp", "Drift")
	grew, lastGap := true, 0.0
	for _, g := range runner.StalenessGaps(retrained, frozen, "Fugu") {
		if !g.Present {
			fmt.Fprintf(w, "%-4d %12s %12s %9s  (no Fugu arm: bootstrap day)\n", g.Day, "-", "-", "-")
			continue
		}
		if g.Day >= 2 && g.Gap <= lastGap {
			grew = false
		}
		lastGap = g.Gap
		fmt.Fprintf(w, "%-4d %11.3f%% %11.3f%% %+9.3f  %s\n",
			g.Day, 100*g.Retrained, 100*g.Frozen, 100*g.Gap, sched.Describe(g.Day))
	}

	fmt.Fprintf(w, "\nPooled over all days:\n")
	fmt.Fprintf(w, "%-22s %22s %10s\n", "Model", "Stalled% [95% CI]", "SSIM dB")
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Daily-retrained",
		100*a.StallRatio.Point, 100*a.StallRatio.Lo, 100*a.StallRatio.Hi, a.SSIM.Point)
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Frozen (day 0)",
		100*b.StallRatio.Point, 100*b.StallRatio.Lo, 100*b.StallRatio.Hi, b.SSIM.Point)
	switch {
	case !sched.IsZero() && a.StallRatio.Point < b.StallRatio.Point && grew:
		fmt.Fprintf(w, "Under drift the frozen model falls behind and the gap widens every day: the in-situ retraining claim, visible.\n")
	case !sched.IsZero() && a.StallRatio.Point < b.StallRatio.Point:
		fmt.Fprintf(w, "Under drift the frozen model stalls more overall, though the per-day gap is not yet monotone (more days/sessions sharpen it).\n")
	case a.StallRatio.Point <= b.StallRatio.Point && a.StallRatio.Overlaps(b.StallRatio):
		fmt.Fprintf(w, "Retrained stall ratio <= frozen, CIs overlap: retraining helps or ties (the paper found ties in a stationary deployment).\n")
	case a.StallRatio.Point <= b.StallRatio.Point:
		fmt.Fprintf(w, "Retrained stall ratio <= frozen with non-overlapping CIs: retraining clearly helped.\n")
	default:
		fmt.Fprintf(w, "Frozen model stalled less in this run; with overlapping CIs this is statistical noise (see -sessions).\n")
	}
}
