package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strings"

	"puffer/internal/scenario"
)

// Spec describes a sweep: a base scenario plus axes over its fields. The
// expansion is the cross product of the axes, in declaration order with
// the last axis varying fastest, applied to the base spec — every cell a
// fully-defaulted scenario.Spec with a canonical content hash.
type Spec struct {
	// Name labels the sweep; cell names are "<name>/<field>=<value>,...".
	Name string `json:"name,omitempty"`
	// Notes is free-form documentation.
	Notes string `json:"notes,omitempty"`
	// Scenario names a registered base scenario. Mutually exclusive with
	// Base; with neither, the base is the all-defaults spec.
	Scenario string `json:"scenario,omitempty"`
	// Base is an inline base scenario spec.
	Base *scenario.Spec `json:"base,omitempty"`
	// Seed drives random axes. Each axis's sample depends only on (Seed,
	// axis field), never on axis order or on the other axes. Default: 1.
	Seed int64 `json:"seed,omitempty"`
	// Axes are the sweep dimensions.
	Axes []Axis `json:"axes"`
}

// Axis is one sweep dimension over a scenario-spec field, either a grid
// (explicit Values) or a seeded-random sample (Samples from [Min, Max]).
type Axis struct {
	// Field is the scenario spec's JSON path, e.g. "drift.preset",
	// "daily.sessions", "engine.kind", "seed".
	Field string `json:"field"`
	// Values enumerates a grid axis. The values are JSON: strings for
	// string fields, numbers for numeric ones, etc.
	Values []json.RawMessage `json:"values,omitempty"`
	// Samples, when positive, makes this a random axis: that many draws
	// from [Min, Max] (integers when Int is set), reproducible per
	// (sweep seed, field).
	Samples int     `json:"samples,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Int     bool    `json:"int,omitempty"`
}

// Parse decodes a sweep spec from strict JSON: unknown fields and trailing
// data are rejected, like scenario.Parse.
func Parse(blob []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: decoding spec: %w", err)
	}
	var extra any
	if err := dec.Decode(&extra); err == nil {
		return Spec{}, fmt.Errorf("sweep: trailing data after sweep JSON")
	}
	return s, nil
}

// ParseFile reads a sweep spec from a JSON file (strict, like Parse).
func ParseFile(path string) (Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("sweep: reading sweep file: %w", err)
	}
	s, err := Parse(blob)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Cell is one expanded experiment of a sweep.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Name is "<sweep>/<field>=<value>,..." — documentation only (cell
	// names are excluded from the hashes, like every spec name).
	Name string
	// Spec is the fully-defaulted, validated scenario.
	Spec scenario.Spec
	// Hash and GuardHash are the spec's content hash (the results-index
	// key) and its checkpoint-guard projection (the checkpoint-dir key).
	Hash, GuardHash string
}

// validate checks the sweep's own shape (the scenario fields are checked
// per cell during expansion, through the scenario parser and validator).
func (s *Spec) validate() error {
	if s.Scenario != "" && s.Base != nil {
		return fmt.Errorf("sweep: set scenario (a registered name) or base (an inline spec), not both")
	}
	seen := map[string]bool{}
	for i, a := range s.Axes {
		if a.Field == "" {
			return fmt.Errorf("sweep: axes[%d]: field is required", i)
		}
		if seen[a.Field] {
			return fmt.Errorf("sweep: axes[%d]: duplicate axis over %q", i, a.Field)
		}
		seen[a.Field] = true
		grid, random := len(a.Values) > 0, a.Samples > 0
		switch {
		case grid && random:
			return fmt.Errorf("sweep: axes[%d] (%s): values and samples are mutually exclusive", i, a.Field)
		case !grid && !random:
			return fmt.Errorf("sweep: axes[%d] (%s): need values (grid) or samples (random)", i, a.Field)
		case random && a.Max < a.Min:
			return fmt.Errorf("sweep: axes[%d] (%s): max %g < min %g", i, a.Field, a.Max, a.Min)
		}
	}
	return nil
}

// base resolves the sweep's base scenario.
func (s *Spec) base() (scenario.Spec, error) {
	switch {
	case s.Scenario != "":
		spec, ok := scenario.Lookup(s.Scenario)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("sweep: unknown base scenario %q (want a registered name; see puffer-daily -list-scenarios)", s.Scenario)
		}
		return spec, nil
	case s.Base != nil:
		return s.Base.Clone(), nil
	default:
		return scenario.Spec{}, nil
	}
}

// axisValues materializes one axis's values: the grid as given, or the
// seeded-random sample. Random draws are seeded by (sweep seed, field
// name) alone, so a sample is reproducible even when axes are reordered
// or other axes change.
func (s *Spec) axisValues(a Axis) []json.RawMessage {
	if len(a.Values) > 0 {
		return a.Values
	}
	rng := rand.New(rand.NewSource(axisSeed(s.seed(), a.Field)))
	vals := make([]json.RawMessage, a.Samples)
	for i := range vals {
		if a.Int {
			lo, hi := int64(a.Min), int64(a.Max)
			v := lo
			if hi > lo {
				v = lo + rng.Int63n(hi-lo+1)
			}
			vals[i] = json.RawMessage(fmt.Sprintf("%d", v))
		} else {
			v := a.Min + rng.Float64()*(a.Max-a.Min)
			blob, _ := json.Marshal(v)
			vals[i] = json.RawMessage(blob)
		}
	}
	return vals
}

func (s *Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// axisSeed mixes the sweep seed with an FNV-1a hash of the axis field into
// independent RNG seed material (splitmix64 finalizer, as elsewhere).
func axisSeed(seed int64, field string) int64 {
	h := fnv.New64a()
	h.Write([]byte(field))
	z := uint64(seed)*0x9E3779B97F4A7C15 + h.Sum64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Expand lowers the sweep into its cells, deterministically: axes in
// declaration order, the last axis varying fastest, each combination
// applied to the base spec's canonical JSON and re-parsed strictly (so an
// axis over an unknown field is an error naming it). The optional
// transform — e.g. scenario.ScaleFromEnv for smoke runs — is applied to
// each cell before hashing, so the index keys match what actually runs.
func (s Spec) Expand(transform func(scenario.Spec) scenario.Spec) ([]Cell, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	base, err := s.base()
	if err != nil {
		return nil, err
	}
	baseMap, err := specMap(base)
	if err != nil {
		return nil, err
	}

	values := make([][]json.RawMessage, len(s.Axes))
	total := 1
	for i, a := range s.Axes {
		values[i] = s.axisValues(a)
		total *= len(values[i])
	}

	cells := make([]Cell, 0, total)
	combo := make([]int, len(s.Axes))
	for n := 0; n < total; n++ {
		cell, err := s.buildCell(baseMap, values, combo, len(cells), transform)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
		// Odometer increment: last axis fastest.
		for i := len(combo) - 1; i >= 0; i-- {
			combo[i]++
			if combo[i] < len(values[i]) {
				break
			}
			combo[i] = 0
		}
	}
	return cells, nil
}

// buildCell applies one axis combination to the base map and lowers it to
// a validated scenario spec.
func (s *Spec) buildCell(baseMap map[string]any, values [][]json.RawMessage, combo []int, idx int, transform func(scenario.Spec) scenario.Spec) (Cell, error) {
	m := deepCopy(baseMap).(map[string]any)
	var label []string
	for i, a := range s.Axes {
		raw := values[i][combo[i]]
		v, err := decodeValue(raw)
		if err != nil {
			return Cell{}, fmt.Errorf("sweep: axis %s value %s: %w", a.Field, raw, err)
		}
		if err := setField(m, a.Field, v); err != nil {
			return Cell{}, err
		}
		label = append(label, fmt.Sprintf("%s=%s", a.Field, labelValue(raw)))
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return Cell{}, fmt.Errorf("sweep: encoding cell spec: %w", err)
	}
	spec, err := scenario.Parse(blob)
	if err != nil {
		// The scenario parser names unknown fields — the strictness that
		// catches a typo'd axis path.
		return Cell{}, fmt.Errorf("sweep: cell %s: %w", strings.Join(label, ","), err)
	}
	name := strings.Join(label, ",")
	if s.Name != "" {
		name = s.Name + "/" + name
	}
	if name == "" {
		name = fmt.Sprintf("cell-%03d", idx)
	}
	spec.Name, spec.Notes = name, ""
	// Default before transforming: a scale transform must see the
	// effective days/sessions/epochs, not unset zeros.
	spec = spec.WithDefaults()
	if transform != nil {
		spec = transform(spec).WithDefaults()
	}
	if err := spec.Validate(); err != nil {
		return Cell{}, fmt.Errorf("sweep: cell %s: %w", name, err)
	}
	return Cell{
		Index:     idx,
		Name:      name,
		Spec:      spec,
		Hash:      spec.Hash(),
		GuardHash: spec.GuardHash(),
	}, nil
}

// specMap lowers a scenario spec to its canonical JSON object form, with
// numbers kept as json.Number so re-marshaling never reformats them.
func specMap(s scenario.Spec) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(s.CanonicalJSON()))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("sweep: decoding base spec: %w", err)
	}
	// The base's own name/notes would otherwise leak into every cell.
	delete(m, "name")
	delete(m, "notes")
	return m, nil
}

// decodeValue parses one axis value, keeping numbers as json.Number.
func decodeValue(raw json.RawMessage) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// labelValue renders an axis value for a cell name: strings bare, anything
// else in its JSON form.
func labelValue(raw json.RawMessage) string {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	return string(raw)
}

// setField sets a dotted path in a nested JSON object, creating
// intermediate objects as needed. Field-name validity is checked later by
// the strict scenario parse, which names the offending field.
func setField(m map[string]any, path string, v any) error {
	parts := strings.Split(path, ".")
	for i, p := range parts[:len(parts)-1] {
		next, ok := m[p]
		if !ok {
			child := map[string]any{}
			m[p] = child
			m = child
			continue
		}
		child, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("sweep: axis field %q: %q is not an object", path, strings.Join(parts[:i+1], "."))
		}
		m = child
	}
	m[parts[len(parts)-1]] = v
	return nil
}

// deepCopy clones a decoded JSON value.
func deepCopy(v any) any {
	switch t := v.(type) {
	case map[string]any:
		c := make(map[string]any, len(t))
		for k, e := range t {
			c[k] = deepCopy(e)
		}
		return c
	case []any:
		c := make([]any, len(t))
		for i, e := range t {
			c[i] = deepCopy(e)
		}
		return c
	default:
		return v
	}
}
