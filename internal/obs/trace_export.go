package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
)

// Trace export formats. Chrome trace-event JSON ("X" complete events with
// microsecond timestamps) loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing; JSONL is the grep/jq-friendly twin, one span per line.
// Two processes' exports merge by concatenating JSONL files or combining
// the traceEvents arrays — pids keep the halves apart, trace ids join them.

// chromeEvent is one Chrome trace-event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the exported document shape.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// procPid derives a stable small pid from a process label, so traces
// exported by different processes combine without track collisions.
func procPid(proc string) int {
	h := fnv.New32a()
	h.Write([]byte(proc))
	return int(h.Sum32()%99990) + 1
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. proc labels
// the process track (e.g. "puffer-serve"); each distinct trace id becomes
// one named thread track, so Perfetto shows every traced decision as its
// own row with its stage spans nested by time containment.
func WriteChromeTrace(w io.Writer, proc string, spans []Span) error {
	pid := procPid(proc)
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": proc},
	})

	// Assign small tids per trace in first-appearance order (Chrome tids
	// must stay well under 2^53; trace ids are full 64-bit hashes).
	tids := map[uint64]int{}
	order := []uint64{}
	for _, s := range spans {
		if _, ok := tids[s.Trace]; !ok {
			tids[s.Trace] = len(order) + 1
			order = append(order, s.Trace)
		}
	}
	for _, tr := range order {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tids[tr],
			Args: map[string]any{"name": "trace " + TraceIDString(tr)},
		})
	}

	// Chrome nests "X" events on a tid by time containment; ties are broken
	// by emission order, so parents must precede children. Sort by (trace,
	// start, -dur) to guarantee it.
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Trace != b.Trace {
			return tids[a.Trace] < tids[b.Trace]
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Dur > b.Dur
	})
	for _, s := range sorted {
		args := map[string]any{
			"trace":  TraceIDString(s.Trace),
			"span":   s.ID,
			"parent": s.Parent,
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name, Ph: "X", Pid: pid, Tid: tids[s.Trace],
			TsUS: float64(s.Start) / 1e3, DurUS: float64(s.Dur) / 1e3,
			Args: args,
		})
	}

	blob, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// spanLine is the JSONL rendering of one span.
type spanLine struct {
	Trace   string           `json:"trace"`
	Span    uint64           `json:"span"`
	Parent  uint64           `json:"parent,omitempty"`
	Name    string           `json:"name"`
	StartNS int64            `json:"start_ns"`
	DurNS   int64            `json:"dur_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// WriteSpansJSONL renders spans one JSON object per line, in snapshot
// (recording) order.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		line := spanLine{
			Trace: TraceIDString(s.Trace), Span: s.ID, Parent: s.Parent,
			Name: s.Name, StartNS: s.Start, DurNS: s.Dur,
		}
		if len(s.Attrs) > 0 {
			line.Attrs = make(map[string]int64, len(s.Attrs))
			for _, a := range s.Attrs {
				line.Attrs[a.Key] = a.Val
			}
		}
		if err := enc.Encode(&line); err != nil {
			return fmt.Errorf("obs: encoding span: %w", err)
		}
	}
	return bw.Flush()
}

// DumpTraceFile atomically writes the tracer's spans to path — Chrome
// trace-event JSON unless jsonl is set. proc labels the process track.
func DumpTraceFile(path, proc string, t *Tracer, jsonl bool) error {
	spans := t.Snapshot()
	tmp := fmt.Sprintf("%s.tmp-%d", path, os.Getpid())
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: creating trace file: %w", err)
	}
	if jsonl {
		err = WriteSpansJSONL(f, spans)
	} else {
		err = WriteChromeTrace(f, proc, spans)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: closing trace file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: committing trace file: %w", err)
	}
	return nil
}
