package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEventLogRoundTrip: Emit then ReadEvents recovers type, timestamp,
// and fields in order.
func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.events")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("day_start", map[string]any{"day": 1, "scenario": "drift"})
	l.Emit("day_done", map[string]any{"day": 1, "wall_s": 2.5})
	l.Emit("note", nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Type != "day_start" || evs[1].Type != "day_done" || evs[2].Type != "note" {
		t.Fatalf("types wrong: %+v", evs)
	}
	if evs[0].Fields["scenario"] != "drift" || evs[0].Fields["day"] != float64(1) {
		t.Fatalf("fields wrong: %+v", evs[0].Fields)
	}
	if evs[0].Time.IsZero() || evs[1].Time.Before(evs[0].Time) {
		t.Fatalf("timestamps wrong: %v then %v", evs[0].Time, evs[1].Time)
	}
	if _, ok := evs[0].Fields["t"]; ok {
		t.Fatal("reserved key t must be lifted out of Fields")
	}
	if _, ok := evs[0].Fields["type"]; ok {
		t.Fatal("reserved key type must be lifted out of Fields")
	}
}

// TestEventLogNilSafe: a nil log is a valid no-op emitter.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit("anything", map[string]any{"k": "v"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEventLogAppendAndTornTail: reopening appends; a torn trailing line
// (killed writer) is tolerated, but corruption mid-file fails loudly.
func TestEventLogAppendAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.events")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("a", nil)
	l.Close()
	l, err = OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("b", nil)
	l.Close()

	// Simulate a kill mid-append: a torn final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"c","tru`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	evs, err := ReadEvents(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(evs) != 2 || evs[0].Type != "a" || evs[1].Type != "b" {
		t.Fatalf("append/torn-tail events wrong: %+v", evs)
	}

	// Corruption mid-file (garbage followed by a valid line) is loud.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, []byte("\n{\"type\":\"d\"}\n")...)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEvents(path); err == nil || !strings.Contains(err.Error(), "line") {
		t.Fatalf("mid-file corruption must fail loudly, got %v", err)
	}
}

// TestReadEventsMissing: a missing file is an empty log.
func TestReadEventsMissing(t *testing.T) {
	evs, err := ReadEvents(filepath.Join(t.TempDir(), "absent.events"))
	if err != nil || evs != nil {
		t.Fatalf("missing file: got %v, %v", evs, err)
	}
}

// TestEventLogConcurrent: concurrent emitters never interleave lines.
func TestEventLogConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.events")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Emit("tick", map[string]any{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	l.Close()

	evs, err := ReadEvents(path)
	if err != nil {
		t.Fatalf("concurrent emission produced a malformed log: %v", err)
	}
	if len(evs) != writers*perWriter {
		t.Fatalf("got %d events, want %d", len(evs), writers*perWriter)
	}
}
