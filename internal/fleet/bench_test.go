package fleet

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/obs"
)

// coreDefaultTTP is the paper-shaped TTP (22-64-64-21 per horizon step).
func coreDefaultTTP() *core.TTP {
	return core.NewTTP(rand.New(rand.NewSource(1)), core.DefaultHorizon, nil,
		core.DefaultFeatures(), core.KindTransTime)
}

// runSeqWorkers is the per-session engine exactly as the daily runner
// shards it: a worker pool over shards, each folding its sessions to
// completion in id order via the canonical shard helpers.
func runSeqWorkers(trial *experiment.Config, shardSize, workers int) (*experiment.TrialAcc, error) {
	nShards := experiment.NumShards(trial.Sessions, shardSize)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards {
		workers = nShards
	}
	accs := make([]*experiment.TrialAcc, nShards)
	shards := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shards {
				lo, hi := experiment.ShardRange(trial.Sessions, shardSize, s)
				accs[s] = trial.FoldShard(lo, hi, experiment.AllPaths)
			}
		}()
	}
	for s := 0; s < nShards; s++ {
		shards <- s
	}
	close(shards)
	wg.Wait()
	total := experiment.NewTrialAcc(experiment.AllPaths)
	for _, acc := range accs {
		total.Merge(acc)
	}
	return total, nil
}

// BenchmarkFleetThroughput races the two execution engines on the same
// deploy-mixture trial at equal worker count: the per-session engine (each
// session to completion, inference batched only within a decision) against
// the fleet engine (interleaved sessions, inference batched across sessions
// through the packed-model service). The sessions/sec metrics are the
// headline numbers; the fleet's edge comes from the InferenceService's
// per-model packed snapshots and tick-wide batches.
func BenchmarkFleetThroughput(b *testing.B) {
	ttp := coreDefaultTTP()
	const sessions, shard = 24, 8
	for _, workers := range []int{1, 2} {
		b.Run(benchLabel("per-session", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial := deployTrial(ttp, sessions, 77)
				trial.Workers = workers
				if _, err := runSeqWorkers(trial, shard, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
		b.Run(benchLabel("fleet", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial := deployTrial(ttp, sessions, 77)
				_, _, err := RunTrial(trial, Config{
					ShardSize: shard, Workers: workers, Tick: 1,
					Arrivals: PoissonArrivals{Rate: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
		// Identical workload with metric recording on: the cost of the
		// observability layer on the hot path (decision timers, batch
		// histograms, packed-kernel timers). Compare sessions/sec against
		// the plain fleet variant — the contract budgets <2% regression.
		b.Run(benchLabel("fleet-obs", workers), func(b *testing.B) {
			obs.SetEnabled(true)
			defer obs.SetEnabled(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial := deployTrial(ttp, sessions, 77)
				_, _, err := RunTrial(trial, Config{
					ShardSize: shard, Workers: workers, Tick: 1,
					Arrivals: PoissonArrivals{Rate: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

func benchLabel(engine string, workers int) string {
	if workers == 1 {
		return engine + "/w1"
	}
	return engine + "/w2"
}
