package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry of named built-in scenarios: the experiments the platform
// knows how to run by name (`puffer-daily -scenario <name>`), each a plain
// Spec. Registered specs are starting points — CLI flags and callers
// override fields freely, and -dump-scenario prints any of them as a
// fully-defaulted JSON file to commit or edit.

var (
	regMu sync.Mutex
	reg   = map[string]Spec{}
)

// Register adds a named scenario. The name is stamped onto the spec; a
// duplicate name panics (registration is an init-time act).
func Register(name, notes string, spec Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	spec.Name, spec.Notes = name, notes
	reg[name] = spec.Clone()
}

// Lookup returns the named scenario as a deep copy, so callers mutating
// the result (or what its pointer fields point at) never alter the
// registry.
func Lookup(name string) (Spec, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := reg[name]
	if !ok {
		return Spec{}, false
	}
	return s.Clone(), true
}

// Names lists the registered scenarios in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("stationary",
		"the paper's deployment regime: a stationary path population, nightly retraining, and the frozen-model staleness ablation (which roughly ties, as the paper found)",
		New())

	Register("drift-shift",
		"population composition shifts under the deployed model (slow-path share grows, deep outages ramp): the staleness gap separates and widens day over day",
		New(Days(4), Drift("shift")))

	Register("drift-decay",
		"the whole population's capacity decays 40%/day toward a floor: the distribution slides out from under the frozen model",
		New(Days(4), Drift("decay")))

	Register("drift-mix",
		"the population migrates to a congested family over a 3-day ramp: by the end every session comes from paths the day-0 model never saw",
		New(Days(4), Drift("mix")))

	Register("fleet-burst",
		"the serving side under flash crowds: the fleet engine multiplexes bursts of 50 simultaneous arrivals, batching TTP inference across sessions (results stay byte-identical to the session engine)",
		New(Days(2), Sessions(300), Engine("fleet"), Bursts(50, 20), Ablation(false)))

	Register("emulation-gap",
		"the daily loop inside the §5.2 emulation testbed (FCC-like paths, looping clip): train and serve in emulation to compare against the in-situ runs",
		New(World("emulation")))

	Register("nightly-drift",
		"the paper-scale nonstationary run CI executes nightly: 14 days x 800 sessions under the shift preset on the fleet engine, with the frozen-model ablation",
		New(Days(14), Sessions(800), Window(7), Drift("shift"), Engine("fleet"), ArrivalRate(2)))
}
