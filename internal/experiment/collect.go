package experiment

import (
	"sort"
	"sync"

	"puffer/internal/core"
)

// DatasetCollector accumulates per-stream chunk observations into a
// core.Dataset for TTP training. Safe for concurrent use.
type DatasetCollector struct {
	mu      sync.Mutex
	streams map[int][]core.ChunkObs
}

// NewDatasetCollector returns an empty collector.
func NewDatasetCollector() *DatasetCollector {
	return &DatasetCollector{streams: make(map[int][]core.ChunkObs)}
}

// RecordChunk implements Recorder.
func (c *DatasetCollector) RecordChunk(day int, streamKey int, obs core.ChunkObs) {
	c.mu.Lock()
	c.streams[streamKey] = append(c.streams[streamKey], obs)
	c.mu.Unlock()
}

// Dataset materializes the collected telemetry. Stream order is
// deterministic (sorted by key) so downstream training is reproducible.
func (c *DatasetCollector) Dataset() *core.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]int, 0, len(c.streams))
	for k := range c.streams {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	d := &core.Dataset{}
	for _, k := range keys {
		d.Streams = append(d.Streams, core.StreamObs{Chunks: c.streams[k]})
	}
	return d
}

// Merge folds another collector's streams into this one (used when
// accumulating days of telemetry).
func (c *DatasetCollector) Merge(other *core.Dataset, keyOffset int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range other.Streams {
		c.streams[keyOffset+i] = append([]core.ChunkObs(nil), s.Chunks...)
	}
}

// CollectDataset runs sessions randomized across the behavior schemes in
// env and returns the telemetry dataset — how Fugu's training data is
// gathered "in situ" (from the deployment's own mixture of traffic) or
// "in emulation" (from EmulationEnv).
func CollectDataset(env Env, schemes []Scheme, sessions int, seed int64, day int) (*core.Dataset, error) {
	col := NewDatasetCollector()
	_, err := Run(Config{
		Env:      env,
		Schemes:  schemes,
		Sessions: sessions,
		Seed:     seed,
		Day:      day,
		Recorder: col,
	})
	if err != nil {
		return nil, err
	}
	return col.Dataset(), nil
}
