package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// A Server is a live observability endpoint started by Serve.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
	hist *History
}

// Serve starts the -obs-listen HTTP endpoint on addr, exposing the
// registry live for the duration of a long run:
//
//	/metrics               Prometheus text exposition (counters, gauges,
//	                       histogram summaries with p50/p99/p999)
//	/metrics.json          the canonical JSON snapshot (what -obs-dump writes)
//	/metrics/history.json  the fixed-cadence sampled time series: windowed
//	                       counter rates and per-window histogram quantiles
//	/trace.json            the installed tracer's ring as Chrome trace-event
//	                       JSON (404 when no tracer is installed)
//	/debug/vars            alias of /metrics.json (expvar-style probing)
//	/debug/pprof/          net/http/pprof (profile, heap, trace, ...)
//
// The server is wall-side only: serving a request reads metric snapshots
// and never touches experiment state, so a live endpoint cannot perturb a
// run. Serve returns once the listener is bound; requests are handled on a
// background goroutine until Close, which also stops the history sampler.
func Serve(addr string, reg *Registry) (*Server, error) {
	hist := NewHistory(reg, DefaultHistoryInterval, DefaultHistoryDepth)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	snapJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.Snapshot().WriteJSON(w)
	}
	mux.HandleFunc("/metrics.json", snapJSON)
	mux.HandleFunc("/debug/vars", snapJSON)
	mux.HandleFunc("/metrics/history.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		hist.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		t := curTracer.Load()
		if t == nil {
			http.Error(w, "no tracer installed (run with -trace-out or -trace-sample)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteChromeTrace(w, TraceProc(), t.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "puffer obs endpoint\n\n/metrics\n/metrics.json\n/metrics/history.json\n/trace.json\n/debug/vars\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	hist.Start()
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln, hist: hist}
	go s.srv.Serve(ln)
	return s, nil
}

// Close shuts the endpoint down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.hist.Stop()
	s.srv.SetKeepAlivesEnabled(false)
	done := make(chan error, 1)
	go func() { done <- s.srv.Close() }()
	select {
	case err := <-done:
		return err
	case <-time.After(2 * time.Second):
		return s.ln.Close()
	}
}
