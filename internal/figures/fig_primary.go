package figures

import (
	"io"
	"sort"

	"puffer/internal/experiment"
	"puffer/internal/stats"
)

// primaryOrder is the presentation order of Figure 1.
var primaryOrder = []string{"Fugu", "MPC-HM", "BBA", "Pensieve", "RobustMPC-HM"}

// orderStats sorts analysis rows into presentation order.
func orderStats(rows []experiment.SchemeStats, order []string) []experiment.SchemeStats {
	rank := map[string]int{}
	for i, n := range order {
		rank[n] = i
	}
	out := append([]experiment.SchemeStats(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].Name]
		rj, jok := rank[out[j].Name]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i].Name < out[j].Name
		}
	})
	return out
}

// Fig1 reproduces Figure 1: the primary results table — time stalled, mean
// SSIM, SSIM variation, and mean time on site per scheme. It returns the
// rows for programmatic assertions.
func (s *Suite) Fig1(w io.Writer) ([]experiment.SchemeStats, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	rows := orderStats(experiment.Analyze(res, experiment.AllPaths, s.Seed+100), primaryOrder)
	var werr error
	line(w, &werr, "Figure 1: Results of primary experiment (%d sessions randomized)\n", s.Scale)
	line(w, &werr, "%-14s %13s %10s %15s %14s\n", "Algorithm", "Time stalled", "Mean SSIM", "SSIM variation", "Mean duration")
	for _, r := range rows {
		line(w, &werr, "%-14s %12.3f%% %7.2f dB %12.2f dB %11.1f min\n",
			r.Name, 100*r.StallRatio.Point, r.SSIM.Point, r.SSIMVar, r.MeanDuration.Point/60)
	}
	return rows, werr
}

// Fig4 reproduces Figure 4: average SSIM vs average bitrate per scheme —
// SSIM-optimizing schemes deliver more quality per byte.
func (s *Suite) Fig4(w io.Writer) ([]experiment.SchemeStats, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	rows := orderStats(experiment.Analyze(res, experiment.AllPaths, s.Seed+101), primaryOrder)
	var werr error
	line(w, &werr, "Figure 4: SSIM vs bitrate (quality per byte sent)\n")
	line(w, &werr, "%-14s %16s %10s\n", "Algorithm", "Avg bitrate", "Avg SSIM")
	for _, r := range rows {
		line(w, &werr, "%-14s %11.2f Mbps %7.2f dB\n", r.Name, r.MeanBitrate/1e6, r.SSIM.Point)
	}
	return rows, werr
}

// Fig8 reproduces Figure 8: the main scatter (stall ratio vs SSIM with 95%
// CIs) for all paths and for slow paths (< 6 Mbit/s mean delivery rate).
func (s *Suite) Fig8(w io.Writer) (all, slow []experiment.SchemeStats, err error) {
	res, err := s.Primary()
	if err != nil {
		return nil, nil, err
	}
	all = orderStats(experiment.Analyze(res, experiment.AllPaths, s.Seed+102), primaryOrder)
	slow = orderStats(experiment.Analyze(res, experiment.SlowPaths, s.Seed+103), primaryOrder)
	var werr error
	write := func(title string, rows []experiment.SchemeStats) {
		line(w, &werr, "%s\n", title)
		line(w, &werr, "%-14s %22s %24s %9s\n", "Algorithm", "Stalled % [95% CI]", "SSIM dB [95% CI]", "Streams")
		for _, r := range rows {
			line(w, &werr, "%-14s %7.3f%% [%.3f, %.3f] %7.2f dB [%.2f, %.2f] %8d\n",
				r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
				r.SSIM.Point, r.SSIM.Lo, r.SSIM.Hi, r.Considered)
		}
	}
	write("Figure 8 (left): primary experiment, all paths", all)
	write("Figure 8 (right): slow network paths (< 6 Mbit/s)", slow)
	return all, slow, werr
}

// Fig9 reproduces Figure 9: cold start — startup delay vs first-chunk SSIM.
// Fugu's congestion-control bootstrap should buy initial quality.
func (s *Suite) Fig9(w io.Writer) ([]experiment.SchemeStats, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	rows := orderStats(experiment.Analyze(res, experiment.AllPaths, s.Seed+104), primaryOrder)
	var werr error
	line(w, &werr, "Figure 9: cold start (startup delay vs first-chunk quality)\n")
	line(w, &werr, "%-14s %16s %22s\n", "Algorithm", "Startup delay", "First-chunk SSIM")
	for _, r := range rows {
		line(w, &werr, "%-14s %13.3f s %16.2f dB\n", r.Name, r.MeanStartup.Point, r.MeanFirstSSIM.Point)
	}
	return rows, werr
}

// Fig10Row is one scheme's session-duration summary plus CCDF tail points.
type Fig10Row struct {
	Scheme       string
	MeanDuration stats.Interval
	// TailP is the CCDF at the long-session threshold (upper-tail mass).
	TailP float64
}

// Fig10 reproduces Figure 10: the CCDF of total time on the video player.
// The tail threshold plays the role of the paper's 2.5-hour mark (scaled to
// this study's shorter absolute durations).
func (s *Suite) Fig10(w io.Writer) ([]Fig10Row, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	durs := experiment.SessionDurations(res)
	// The paper's tail mark is the ~95th percentile of session duration;
	// compute it over all schemes pooled.
	var pooled []float64
	for _, d := range durs {
		pooled = append(pooled, d...)
	}
	tail := stats.Quantile(pooled, 0.95)

	rows := make([]Fig10Row, 0, len(durs))
	for _, name := range primaryOrder {
		d, ok := durs[name]
		if !ok {
			continue
		}
		rows = append(rows, Fig10Row{
			Scheme:       name,
			MeanDuration: stats.MeanSE(d, 0.95),
			TailP:        stats.CCDFAt(d, tail),
		})
	}
	var werr error
	line(w, &werr, "Figure 10: time on video player (tail mark = %.1f min, pooled p95)\n", tail/60)
	line(w, &werr, "%-14s %24s %18s\n", "Algorithm", "Mean [95% CI] (min)", "P(dur >= tail)")
	for _, r := range rows {
		line(w, &werr, "%-14s %7.2f [%5.2f, %5.2f] %16.4f\n",
			r.Scheme, r.MeanDuration.Point/60, r.MeanDuration.Lo/60, r.MeanDuration.Hi/60, r.TailP)
	}
	return rows, werr
}

// FigA1 reproduces the CONSORT-style experimental-flow diagram of Figure A1.
func (s *Suite) FigA1(w io.Writer) ([]experiment.ConsortArm, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	arms := experiment.Consort(res)
	totalSessions, totalStreams := 0, 0
	for _, a := range arms {
		totalSessions += a.Sessions
		totalStreams += a.Streams
	}
	var werr error
	line(w, &werr, "Figure A1: CONSORT-style experimental flow\n")
	line(w, &werr, "%d sessions underwent randomization; %d streams\n", totalSessions, totalStreams)
	line(w, &werr, "%-14s %9s %8s %12s %9s %11s %11s %11s\n",
		"Arm", "Sessions", "Streams", "NeverPlayed", "Watch<4s", "BadDecoder", "Considered", "WatchYears")
	for _, a := range arms {
		line(w, &werr, "%-14s %9d %8d %12d %9d %11d %11d %11.4f\n",
			a.Scheme, a.Sessions, a.Streams, a.NeverPlayed, a.ShortWatch, a.BadDecoder, a.Considered, a.WatchYears)
	}
	return arms, werr
}

// Sec34 reproduces §3.4's uncertainty quantification: the relative width of
// each scheme's 95% bootstrap CI on stall ratio (the paper reports +/-10-17%
// at ~1.7 stream-years per scheme).
func (s *Suite) Sec34(w io.Writer) (map[string]float64, error) {
	res, err := s.Primary()
	if err != nil {
		return nil, err
	}
	rows := orderStats(experiment.Analyze(res, experiment.AllPaths, s.Seed+105), primaryOrder)
	out := map[string]float64{}
	var werr error
	line(w, &werr, "Section 3.4: statistical uncertainty of stall-ratio estimates\n")
	line(w, &werr, "%-14s %12s %22s %16s\n", "Algorithm", "StreamYears", "Stall%% [95%% CI]", "Rel. half-width")
	for _, r := range rows {
		rel := r.StallRatio.RelativeHalfWidth()
		out[r.Name] = rel
		line(w, &werr, "%-14s %12.4f %7.3f%% [%.3f, %.3f] %14.1f%%\n",
			r.Name, r.WatchYears, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi, 100*rel)
	}
	return out, werr
}
