package experiment

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"puffer/internal/stats"
)

// gobAcc is a small multi-scheme accumulator with every field populated,
// so the wire form covers the whole struct.
func gobAcc() *TrialAcc {
	acc := NewTrialAcc(AllPaths)
	for i, name := range []string{"Fugu", "BBA", "MPC-HM", "RobustMPC-HM", "Pensieve", "Fugu-Feb"} {
		a := acc.scheme(name)
		a.Sessions = i + 1
		a.Streams = 2 * (i + 1)
		a.Considered = i
		a.Points.Add(stats.StreamPoint{Watch: float64(10 * (i + 1)), Stall: float64(i)})
		a.SSIM.Add(14+float64(i), float64(10*(i+1)))
		a.VarSum, a.VarN = float64(i), i
	}
	return acc
}

// TestTrialAccGobDeterministic: encoding the same accumulator state must
// always produce the same bytes — checkpointed acc.gob files are part of
// the byte-reproducibility contract, and a raw map encoding would order
// schemes randomly per run.
func TestTrialAccGobDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobAcc()); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("encoding %d differs from the first encoding", i)
		}
	}
}

func TestTrialAccGobRoundTrip(t *testing.T) {
	acc := gobAcc()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(acc); err != nil {
		t.Fatal(err)
	}
	got := NewTrialAcc(SlowPaths) // decode must overwrite the filter too
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc, got) {
		t.Fatalf("round trip changed the accumulator:\nwant %s\ngot  %s",
			fmt.Sprintf("%+v", acc), fmt.Sprintf("%+v", got))
	}
}
