package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"puffer/internal/results"
	"puffer/internal/scenario"
	"puffer/internal/sweep"
)

// runCellFlag is the hidden subcommand the executor uses to re-exec this
// binary once per cell: the parent writes the cell's fully-scaled spec to
// a file, the child runs it and writes the results record to -out.
const runCellFlag = "-run-cell"

// distWorkerFlag is the hidden mode a dist-engine cell's coordinator uses
// to re-exec this binary once per worker process (protocol on
// stdin/stdout).
const distWorkerFlag = "-dist-worker"

// distWorkerCommand is the worker argv dist-engine cells launch: this
// binary in worker mode, or nil if the binary cannot locate itself (the
// runner then rejects dist cells with a clear error).
func distWorkerCommand() []string {
	exe, err := os.Executable()
	if err != nil {
		return nil
	}
	return []string{exe, distWorkerFlag}
}

// subprocessRunner returns a CellRunner that executes each cell in a fresh
// puffer-sweep process. Isolation per cell (a crash takes down one cell,
// not the sweep) and real multi-process parallelism; the record still
// comes back through a file, not stdout, so cell logging stays visible.
func subprocessRunner(cellWorkers int, quiet bool) sweep.CellRunner {
	exe, exeErr := os.Executable()
	return func(c sweep.Cell, checkpointDir string) (*results.Record, error) {
		if exeErr != nil {
			return nil, fmt.Errorf("locating own binary for -run-cell: %w", exeErr)
		}
		work, err := os.MkdirTemp("", "puffer-cell-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(work)

		specPath := filepath.Join(work, "spec.json")
		if err := os.WriteFile(specPath, c.Spec.CanonicalJSON(), 0o644); err != nil {
			return nil, err
		}
		outPath := filepath.Join(work, "record.json")

		cellArgs := []string{runCellFlag,
			"-spec", specPath,
			"-out", outPath,
			"-checkpoint", checkpointDir,
			"-workers", fmt.Sprint(cellWorkers),
		}
		if quiet {
			cellArgs = append(cellArgs, "-q")
		}
		cmd := exec.Command(exe, cellArgs...)
		// The parent already applied PUFFER_SCENARIO_SCALE during
		// expansion; the child runs the spec file verbatim, so the
		// variable must not scale it a second time.
		cmd.Env = envWithout("PUFFER_SCENARIO_SCALE")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("cell %s subprocess: %w", c.Name, err)
		}

		blob, err := os.ReadFile(outPath)
		if err != nil {
			return nil, fmt.Errorf("cell %s: reading record: %w", c.Name, err)
		}
		var rec results.Record
		if err := json.Unmarshal(blob, &rec); err != nil {
			return nil, fmt.Errorf("cell %s: decoding record: %w", c.Name, err)
		}
		if rec.Hash != c.Hash {
			return nil, fmt.Errorf("cell %s: subprocess returned hash %s, want %s", c.Name, rec.Hash, c.Hash)
		}
		return &rec, nil
	}
}

func envWithout(name string) []string {
	var env []string
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, name+"=") {
			env = append(env, kv)
		}
	}
	return env
}

// cmdRunCell is the child side: run one spec file, write one record.
func cmdRunCell(args []string) error {
	fs := flag.NewFlagSet("puffer-sweep -run-cell", flag.ContinueOnError)
	specPath := fs.String("spec", "", "scenario spec .json to run")
	outPath := fs.String("out", "", "file to write the results record to")
	checkpoint := fs.String("checkpoint", "", "checkpoint directory for this cell")
	workers := fs.Int("workers", 0, "shard workers (0 = GOMAXPROCS)")
	quiet := fs.Bool("q", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" || *outPath == "" {
		return fmt.Errorf("-run-cell: -spec and -out are required")
	}
	spec, err := scenario.ParseFile(*specPath)
	if err != nil {
		return err
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	started := time.Now()
	out, err := scenario.Run(spec, scenario.RunOptions{
		Workers:       *workers,
		CheckpointDir: *checkpoint,
		DistCommand:   distWorkerCommand(),
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	rec, err := results.FromOutcome(out, started, time.Since(started).Seconds())
	if err != nil {
		return err
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return os.WriteFile(*outPath, blob, 0o644)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
