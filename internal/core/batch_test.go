package core

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/tcpsim"
)

// batchObs builds a randomized observation with a full ladder horizon and a
// noisy history, representative of a mid-stream MPC decision.
func batchObs(rng *rand.Rand, nQ, horizon int) *abr.Observation {
	chunks := make([]media.Chunk, horizon)
	for i := range chunks {
		vs := make([]media.Encoding, nQ)
		for q := range vs {
			vs[q] = media.Encoding{
				Size:   float64(q+1) * (1.5e5 + rng.Float64()*2e5),
				SSIMdB: 10 + float64(q) + rng.Float64(),
			}
		}
		chunks[i] = media.Chunk{Index: i, Versions: vs}
	}
	nHist := rng.Intn(abr.HistoryLen + 1)
	hist := make([]abr.ChunkRecord, nHist)
	tput := 1e6 + rng.Float64()*20e6
	for i := range hist {
		size := 2e5 + rng.Float64()*2e6
		hist[i] = abr.ChunkRecord{
			Size:      size,
			TransTime: size * 8 / (tput * (0.6 + 0.8*rng.Float64())),
			SSIMdB:    11 + 4*rng.Float64(),
			Quality:   rng.Intn(nQ),
		}
	}
	lastQ := -1
	lastSSIM := 0.0
	if nHist > 0 {
		lastQ = hist[nHist-1].Quality
		lastSSIM = hist[nHist-1].SSIMdB
	}
	return &abr.Observation{
		ChunkIndex:  nHist,
		Buffer:      rng.Float64() * 15,
		BufferCap:   15,
		LastQuality: lastQ,
		LastSSIM:    lastSSIM,
		History:     hist,
		TCP: tcpsim.Info{
			CWND:         10 + rng.Float64()*90,
			InFlight:     rng.Float64() * 50,
			MinRTT:       0.02 + rng.Float64()*0.1,
			RTT:          0.03 + rng.Float64()*0.15,
			DeliveryRate: tput,
		},
		Horizon: chunks,
	}
}

// predictorVariants covers every (kind, mode, architecture) combination the
// figure suite exercises, including the linear ablation (no hidden layers)
// and a non-square hidden stack.
func predictorVariants(rng *rand.Rand) map[string]*Predictor {
	full := DefaultFeatures()
	noSize := FeatureConfig{HistLen: 8, UseTCPInfo: true, UseProposedSize: false}
	return map[string]*Predictor{
		"full":      NewPredictor(NewTTP(rng, DefaultHorizon, nil, full, KindTransTime), ModeProbabilistic),
		"point":     NewPredictor(NewTTP(rng, DefaultHorizon, nil, full, KindTransTime), ModePointEstimate),
		"linear":    NewPredictor(NewTTP(rng, DefaultHorizon, []int{}, full, KindTransTime), ModeProbabilistic),
		"nonsquare": NewPredictor(NewTTP(rng, 3, []int{48, 17}, full, KindTransTime), ModeProbabilistic),
		"tput":      NewPredictor(NewTTP(rng, DefaultHorizon, nil, noSize, KindThroughput), ModeProbabilistic),
	}
}

// TestPredictDistBatchMatchesScalar is the batched-vs-scalar equivalence
// table test: for every predictor variant, every horizon step (including
// clamped beyond-horizon steps) and batch sizes from 1 to a full ladder,
// the batched distributions must match per-sample scalar calls to 1e-12.
func TestPredictDistBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, batchPred := range predictorVariants(rng) {
		t.Run(name, func(t *testing.T) {
			scalarPred := NewPredictor(batchPred.TTP, batchPred.Mode)
			for trial := 0; trial < 20; trial++ {
				nQ := 1 + rng.Intn(10)
				obs := batchObs(rng, nQ, 5)
				sizes := make([]float64, nQ)
				for q := range sizes {
					sizes[q] = obs.Horizon[0].Versions[q].Size
				}
				step := rng.Intn(DefaultHorizon + 2)
				got := make([]float64, nQ*abr.NumBins)
				batchPred.PredictDistBatch(obs, step, sizes, got)
				want := make([]float64, abr.NumBins)
				for q := 0; q < nQ; q++ {
					scalarPred.PredictDist(obs, step, sizes[q], want)
					for k := range want {
						if diff := math.Abs(got[q*abr.NumBins+k] - want[k]); diff > 1e-12 {
							t.Fatalf("trial %d step %d q=%d bin %d: batch %v vs scalar %v",
								trial, step, q, k, got[q*abr.NumBins+k], want[k])
						}
					}
				}
			}
		})
	}
}

// TestFuguChooseMatchesReference is the end-to-end batching property test
// the issue asks for: over 100 seeded observations, the production MPC
// (batched TTP fill + factored value iteration) must pick the identical
// rung to the reference implementation (scalar fill + memoized recursion).
func TestFuguChooseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	fast := NewFugu(ttp)
	ref := NewFugu(ttp)
	for trial := 0; trial < 100; trial++ {
		nQ := 2 + rng.Intn(9)
		obs := batchObs(rng, nQ, 1+rng.Intn(5))
		got := fast.Choose(obs)
		want := ref.ChooseReference(obs)
		if got != want {
			t.Fatalf("trial %d: batched Choose = %d, reference = %d", trial, got, want)
		}
	}
}

// TestPointEstimateChooseMatchesReference repeats the property test for the
// deployed Point Estimate ablation, whose collapsed distributions stress the
// p == 0 skips in both planners. One-hot distributions also make exact
// value ties between rungs possible (e.g. several rungs all saturating the
// outage bin from an empty buffer); the factored iteration reassociates the
// same sums, so within a tied set its pick may differ from the reference by
// an ulp. A mismatch is therefore only a failure when the two chosen rungs'
// root values — recomputed independently here — actually differ.
func TestPointEstimateChooseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	fast := NewFuguPointEstimate(ttp)
	ref := NewFuguPointEstimate(ttp)
	ties := 0
	for trial := 0; trial < 100; trial++ {
		obs := batchObs(rng, 10, 5)
		got := fast.Choose(obs)
		want := ref.ChooseReference(obs)
		if got == want {
			continue
		}
		vals := refRootValues(t, NewPredictor(ttp, ModePointEstimate), obs)
		tol := 1e-9 * (1 + math.Abs(vals[want]))
		if diff := math.Abs(vals[got] - vals[want]); diff > tol {
			t.Fatalf("trial %d: batched Choose = %d (v=%v), reference = %d (v=%v), diff %v",
				trial, got, vals[got], want, vals[want], diff)
		}
		ties++
	}
	if ties > 10 {
		t.Fatalf("%d/100 trials hit value ties; expected ties to be rare", ties)
	}
}

// distRecorder wraps a predictor and keeps every distribution it produces,
// keyed by (step, rung), so a test can replay the exact inputs the planner
// saw.
type distRecorder struct {
	p     abr.Predictor
	dists map[[2]int][]float64
}

func (r *distRecorder) PredictDist(obs *abr.Observation, step int, size float64, dist []float64) {
	r.p.PredictDist(obs, step, size, dist)
	key := [2]int{step, -1}
	for q, v := range obs.Horizon[step].Versions {
		if v.Size == size {
			key[1] = q
			break
		}
	}
	r.dists[key] = append([]float64(nil), dist...)
}

// refRootValues recomputes the reference planner's root value for every rung
// of obs.Horizon[0] with an independent implementation of the paper's
// memoized recursion, using the distributions the predictor actually
// produces. It exists to distinguish genuine planner divergence from exact
// value ties.
func refRootValues(t *testing.T, pred abr.Predictor, obs *abr.Observation) []float64 {
	t.Helper()
	rec := &distRecorder{p: pred, dists: map[[2]int][]float64{}}
	h, nQ := 5, len(obs.Horizon[0].Versions)
	if h > len(obs.Horizon) {
		h = len(obs.Horizon)
	}
	for step := 0; step < h; step++ {
		dist := make([]float64, abr.NumBins)
		for q := 0; q < nQ; q++ {
			rec.PredictDist(obs, step, obs.Horizon[step].Versions[q].Size, dist)
		}
	}
	const bufStep = 0.25
	bufCap := obs.BufferCap
	if bufCap <= 0 {
		bufCap = 15
	}
	nBuf := int(bufCap/bufStep) + 1
	bufBin := func(buf float64) int {
		i := int(buf/bufStep + 0.5)
		if i >= nBuf {
			i = nBuf - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	nextBuffer := func(buf, tt float64) float64 {
		b := math.Max(buf-tt, 0) + media.ChunkDuration
		if b > bufCap {
			b = bufCap
		}
		return b
	}
	w := abr.DefaultQoEWeights()
	memo := map[[3]int]float64{}
	var valueAt func(step int, buf float64, prevQ int) float64
	valueAt = func(step int, buf float64, prevQ int) float64 {
		if step >= h {
			return 0
		}
		bb := bufBin(buf)
		key := [3]int{step, bb, prevQ}
		if v, ok := memo[key]; ok {
			return v
		}
		bufQ := float64(bb) * bufStep
		prevSSIM := obs.Horizon[step-1].Versions[prevQ].SSIMdB
		best := math.Inf(-1)
		for q := 0; q < nQ; q++ {
			enc := obs.Horizon[step].Versions[q]
			v := 0.0
			for k, p := range rec.dists[[2]int{step, q}] {
				if p == 0 {
					continue
				}
				tt := abr.BinValue(k)
				stall := math.Max(tt-bufQ, 0)
				v += p * (w.Chunk(enc.SSIMdB, prevSSIM, stall, true) + valueAt(step+1, nextBuffer(bufQ, tt), q))
			}
			if v > best {
				best = v
			}
		}
		memo[key] = best
		return best
	}
	vals := make([]float64, nQ)
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[0].Versions[q]
		v := 0.0
		for k, p := range rec.dists[[2]int{0, q}] {
			if p == 0 {
				continue
			}
			tt := abr.BinValue(k)
			stall := math.Max(tt-obs.Buffer, 0)
			v += p * (w.Chunk(enc.SSIMdB, obs.LastSSIM, stall, obs.LastQuality >= 0) + valueAt(1, nextBuffer(obs.Buffer, tt), q))
		}
		vals[q] = v
	}
	return vals
}

func TestAssembleBatchMatchesAssemble(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfgs := []FeatureConfig{
		DefaultFeatures(),
		{HistLen: 8, UseTCPInfo: true, UseProposedSize: false},
		{HistLen: 2, UseTCPInfo: false, UseProposedSize: true},
	}
	for _, cfg := range cfgs {
		obs := batchObs(rng, 5, 3)
		sizes := []float64{1e5, 4e5, 9e5, 2.2e6, 7e6}
		dim := cfg.Dim()
		batch := make([]float64, len(sizes)*dim)
		cfg.AssembleBatch(batch, obs.History, obs.TCP, sizes)
		row := make([]float64, dim)
		for r, size := range sizes {
			cfg.Assemble(row, obs.History, obs.TCP, size)
			for i := range row {
				if batch[r*dim+i] != row[i] {
					t.Fatalf("cfg %+v row %d feature %d: batch %v != scalar %v",
						cfg, r, i, batch[r*dim+i], row[i])
				}
			}
		}
	}
}

func TestPredictorBatchNoAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModeProbabilistic)
	obs := batchObs(rng, 10, 5)
	sizes := make([]float64, 10)
	for q := range sizes {
		sizes[q] = obs.Horizon[0].Versions[q].Size
	}
	dists := make([]float64, 10*abr.NumBins)
	p.PredictDistBatch(obs, 0, sizes, dists) // warm the buffers
	allocs := testing.AllocsPerRun(50, func() {
		for step := 0; step < DefaultHorizon; step++ {
			p.PredictDistBatch(obs, step, sizes, dists)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictDistBatch allocates %v times per run after warmup, want 0", allocs)
	}
}

func TestLoadedTTPBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	path := t.TempDir() + "/ttp.gob"
	if err := ttp.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	obs := batchObs(rng, 10, 5)
	sizes := make([]float64, 10)
	for q := range sizes {
		sizes[q] = obs.Horizon[0].Versions[q].Size
	}
	got := make([]float64, 10*abr.NumBins)
	want := make([]float64, 10*abr.NumBins)
	NewPredictor(loaded, ModeProbabilistic).PredictDistBatch(obs, 1, sizes, got)
	NewPredictor(ttp, ModeProbabilistic).PredictDistBatch(obs, 1, sizes, want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded TTP batch output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func BenchmarkPredictDistBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModeProbabilistic)
	obs := batchObs(rng, 10, 5)
	sizes := make([]float64, 10)
	for q := range sizes {
		sizes[q] = obs.Horizon[0].Versions[q].Size
	}
	dists := make([]float64, 10*abr.NumBins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for step := 0; step < DefaultHorizon; step++ {
			p.PredictDistBatch(obs, step, sizes, dists)
		}
	}
}

func BenchmarkPredictDistScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModeProbabilistic)
	obs := batchObs(rng, 10, 5)
	dist := make([]float64, abr.NumBins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for step := 0; step < DefaultHorizon; step++ {
			for q := 0; q < 10; q++ {
				p.PredictDist(obs, step, obs.Horizon[step].Versions[q].Size, dist)
			}
		}
	}
}
