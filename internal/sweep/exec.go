package sweep

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"puffer/internal/obs"
	"puffer/internal/results"
	"puffer/internal/scenario"
)

// CellRunner executes one cell with the given checkpoint directory ("" =
// no checkpointing) and returns its warehouse record. InProcess runs cells
// in this process; cmd/puffer-sweep supplies a subprocess runner.
type CellRunner func(c Cell, checkpointDir string) (*results.Record, error)

// ExecConfig is everything scheduling-side about a sweep execution —
// nothing here changes what any cell computes.
type ExecConfig struct {
	// Workers bounds cell parallelism. Cells sharing a checkpoint
	// GuardHash are serialized onto one worker regardless, so they can
	// share (and resume) one checkpoint directory without racing.
	// Default (0): GOMAXPROCS.
	Workers int
	// IndexPath is the results index the sweep reads (to skip finished
	// cells) and appends to. Required.
	IndexPath string
	// CheckpointRoot holds one checkpoint directory per GuardHash
	// ("g-<hash prefix>"), so a killed cell resumes its completed days
	// and same-guard cells (e.g. an engine axis) replay each other's
	// checkpoints instead of recomputing. Default (""): no
	// checkpointing.
	CheckpointRoot string
	// Run executes one cell. Required.
	Run CellRunner
	// Transform is applied to every cell during expansion, before
	// hashing (e.g. scenario.ScaleFromEnv for smoke runs), so index keys
	// match what actually runs. Default (nil): none.
	Transform func(scenario.Spec) scenario.Spec
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
	// Events, if set, receives the per-cell lifecycle stream
	// (sweep_start, cell_start, cell_done, cell_failed, sweep_done) that
	// `puffer-sweep status -events` summarizes live. Wall-side only —
	// nothing a sweep computes ever reads an event back.
	Events *obs.EventLog
}

// CellStatus is one cell's disposition after Execute (or in Status).
type CellStatus struct {
	Cell
	// State is "indexed" (already in the index — skipped), "ran",
	// "failed", or "skipped" (not attempted: a duplicate hash within the
	// sweep, or the sweep aborted on an earlier failure).
	State string
}

// Report summarizes an execution.
type Report struct {
	Cells []CellStatus
	// Total counts expanded cells; Ran, Indexed, Skipped, and Failed
	// partition them.
	Total, Ran, Indexed, Skipped, Failed int
}

// CheckpointDir is the executor's checkpoint layout: one directory per
// GuardHash under the root.
func CheckpointDir(root, guardHash string) string {
	if root == "" {
		return ""
	}
	return filepath.Join(root, "g-"+shortHash(guardHash))
}

func shortHash(h string) string {
	if len(h) > 16 {
		return h[:16]
	}
	return h
}

// Status expands the sweep and reports each cell's disposition against
// the index without running anything — the "what's done, what's missing"
// view shared by puffer-sweep status and re-launch decisions.
func Status(sw Spec, indexPath string, transform func(scenario.Spec) scenario.Spec) ([]CellStatus, error) {
	cells, err := sw.Expand(transform)
	if err != nil {
		return nil, err
	}
	ix, err := results.Load(indexPath)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	out := make([]CellStatus, 0, len(cells))
	for _, c := range cells {
		st := CellStatus{Cell: c, State: "missing"}
		switch {
		case ix.Has(c.Hash):
			st.State = "indexed"
		case seen[c.Hash]:
			st.State = "skipped"
		}
		seen[c.Hash] = true
		out = append(out, st)
	}
	return out, nil
}

// Execute expands the sweep, skips every cell whose hash the index already
// holds, and runs the rest across the worker pool, appending records to
// the index in expansion order. Re-launching a partially-completed sweep
// therefore executes only the missing cells, and the completed index's
// CanonicalBytes are identical to an uninterrupted run's.
func Execute(sw Spec, ec ExecConfig) (*Report, error) {
	if ec.IndexPath == "" {
		return nil, fmt.Errorf("sweep: ExecConfig.IndexPath is required")
	}
	if ec.Run == nil {
		return nil, fmt.Errorf("sweep: ExecConfig.Run is required")
	}
	logf := ec.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cells, err := sw.Expand(ec.Transform)
	if err != nil {
		return nil, err
	}
	ix, err := results.Load(ec.IndexPath)
	if err != nil {
		return nil, err
	}

	rep := &Report{Total: len(cells)}
	rep.Cells = make([]CellStatus, len(cells))
	var todo []Cell
	seen := map[string]bool{}
	for i, c := range cells {
		rep.Cells[i] = CellStatus{Cell: c, State: "skipped"}
		switch {
		case ix.Has(c.Hash):
			rep.Cells[i].State = "indexed"
			rep.Indexed++
			logf("cell %d/%d %s: already indexed (%s)", i+1, len(cells), c.Name, shortHash(c.Hash))
		case seen[c.Hash]:
			rep.Skipped++
			logf("cell %d/%d %s: duplicate of an earlier cell, skipped", i+1, len(cells), c.Name)
		default:
			todo = append(todo, c)
		}
		seen[c.Hash] = true
	}
	if len(todo) == 0 {
		logf("all %d cells already indexed; nothing to run", len(cells))
		return rep, nil
	}
	logf("running %d of %d cells (%d already indexed)", len(todo), len(cells), rep.Indexed)
	ec.Events.Emit("sweep_start", map[string]any{
		"cells": len(cells), "todo": len(todo), "indexed": rep.Indexed,
	})

	w, err := results.OpenWriter(ec.IndexPath)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	// Group by GuardHash in first-appearance order: one worker owns a
	// group, so same-guard cells share a checkpoint dir race-free.
	var groups [][]Cell
	groupOf := map[string]int{}
	for _, c := range todo {
		gi, ok := groupOf[c.GuardHash]
		if !ok {
			gi = len(groups)
			groupOf[c.GuardHash] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], c)
	}

	workers := ec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	type done struct {
		cell Cell
		rec  *results.Record
		err  error
	}
	results_ := make(chan done, len(todo))
	groupCh := make(chan []Cell)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range groupCh {
				for _, c := range group {
					if aborted.Load() {
						results_ <- done{cell: c, err: errAborted}
						continue
					}
					ec.Events.Emit("cell_start", map[string]any{
						"cell": c.Name, "index": c.Index, "hash": c.Hash,
					})
					start := time.Now()
					rec, err := ec.Run(c, CheckpointDir(ec.CheckpointRoot, c.GuardHash))
					if err == nil {
						logf("cell %s: done in %.1fs", c.Name, time.Since(start).Seconds())
						ec.Events.Emit("cell_done", map[string]any{
							"cell": c.Name, "index": c.Index, "hash": c.Hash,
							"wall_s": time.Since(start).Seconds(),
						})
					} else if err != errAborted {
						ec.Events.Emit("cell_failed", map[string]any{
							"cell": c.Name, "index": c.Index, "hash": c.Hash, "error": err.Error(),
						})
					}
					results_ <- done{cell: c, rec: rec, err: err}
				}
			}
		}()
	}
	go func() {
		for _, g := range groups {
			groupCh <- g
		}
		close(groupCh)
	}()

	// Collect and append in expansion order: a record is committed only
	// once every earlier missing cell's record is committed, which is
	// what makes an interrupted-then-resumed index byte-identical to an
	// uninterrupted one. A record that finished out of turn behind a
	// failure is not appended; its checkpoints make the re-run cheap.
	pending := map[int]*results.Record{}
	failed := map[int]error{}
	next := 0 // index into todo
	for range todo {
		d := <-results_
		if d.err != nil {
			if d.err != errAborted {
				aborted.Store(true)
				failed[d.cell.Index] = d.err
			}
			setState(rep, d.cell.Index, "failed")
			rep.Failed++
			continue
		}
		pending[d.cell.Index] = d.rec
		for next < len(todo) {
			rec, ok := pending[todo[next].Index]
			if !ok {
				break
			}
			if err := w.Append(rec); err != nil {
				wg.Wait()
				return rep, err
			}
			setState(rep, todo[next].Index, "ran")
			rep.Ran++
			delete(pending, todo[next].Index)
			next++
		}
	}
	wg.Wait()
	ec.Events.Emit("sweep_done", map[string]any{
		"ran": rep.Ran, "failed": rep.Failed, "indexed": rep.Indexed,
	})

	if len(failed) > 0 {
		first := -1
		for idx := range failed {
			if first == -1 || idx < first {
				first = idx
			}
		}
		return rep, fmt.Errorf("sweep: %d cell(s) failed; first failure: %w", len(failed), failed[first])
	}
	return rep, nil
}

var errAborted = fmt.Errorf("sweep: aborted after an earlier cell failure")

func setState(rep *Report, cellIndex int, state string) {
	for i := range rep.Cells {
		if rep.Cells[i].Index == cellIndex {
			rep.Cells[i].State = state
			return
		}
	}
}

// InProcess returns a CellRunner that runs cells inside this process via
// scenario.Run — the runner figures and tests use. opt is the scheduling
// template every cell runs with (Workers, Logf, DistCommand, ...); the
// executor overrides CheckpointDir per cell.
func InProcess(opt scenario.RunOptions) CellRunner {
	return func(c Cell, checkpointDir string) (*results.Record, error) {
		o := opt
		o.CheckpointDir = checkpointDir
		started := time.Now()
		out, err := scenario.Run(c.Spec, o)
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", c.Name, err)
		}
		return results.FromOutcome(out, started, time.Since(started).Seconds())
	}
}
