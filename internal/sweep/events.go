package sweep

import (
	"sort"
	"time"

	"puffer/internal/obs"
)

// Live is the event-log view of a sweep in flight: what a relaunch-or-wait
// decision needs, computable from the append-only event stream alone (no
// index lock, no liveness protocol — a torn tail just means the writer is
// mid-append).
type Live struct {
	// Running lists cells that started but have not finished or failed,
	// in start order. For a killed sweep these are the cells that were in
	// flight at the kill (their checkpoints make the re-run cheap).
	Running []string
	// Done and Failed count finished cells seen in the stream.
	Done, Failed int
	// Todo and Indexed echo the last sweep_start split (0 if none seen).
	Todo, Indexed int
	// Finished reports whether a sweep_done event closed the stream.
	Finished bool
	// LastEvent is the newest event's wall clock (zero for an empty log).
	LastEvent time.Time
}

// LiveFromEvents folds a sweep event stream (ReadEvents of the log
// ExecConfig.Events wrote) into its live view. Multiple sweep executions
// appended to one log compose: sweep_start resets the in-flight set, and
// done/failed counts accumulate across executions like the index does.
func LiveFromEvents(evs []obs.Event) Live {
	var lv Live
	running := map[string]int{} // cell name -> start order
	order := 0
	for _, ev := range evs {
		if !ev.Time.IsZero() {
			lv.LastEvent = ev.Time
		}
		name, _ := ev.Fields["cell"].(string)
		switch ev.Type {
		case "sweep_start":
			running = map[string]int{}
			lv.Finished = false
			if v, ok := ev.Fields["todo"].(float64); ok {
				lv.Todo = int(v)
			}
			if v, ok := ev.Fields["indexed"].(float64); ok {
				lv.Indexed = int(v)
			}
		case "cell_start":
			running[name] = order
			order++
		case "cell_done":
			delete(running, name)
			lv.Done++
		case "cell_failed":
			delete(running, name)
			lv.Failed++
		case "sweep_done":
			lv.Finished = true
		}
	}
	lv.Running = make([]string, 0, len(running))
	for name := range running {
		lv.Running = append(lv.Running, name)
	}
	sort.Slice(lv.Running, func(i, j int) bool { return running[lv.Running[i]] < running[lv.Running[j]] })
	return lv
}
