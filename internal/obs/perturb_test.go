// Differential proof of the zero-perturbation contract: the same
// experiments, metrics off vs metrics fully on (recording, event logs,
// span tracing), produce byte-identical results, models, telemetry,
// checkpoints, and warehouse indexes. External test package so the real
// engines can be driven without an import cycle.
package obs_test

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/obs"
	"puffer/internal/results"
	"puffer/internal/runner"
	"puffer/internal/scenario"
	"puffer/internal/serve"
	"puffer/internal/sweep"
)

// obsOn turns full recording on for one sub-run and restores the gate.
func obsOn(t *testing.T, on bool) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(on)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

// tracingOn installs a sample-everything tracer for one sub-run, so the
// "on" legs exercise the full span-recording path through the engines,
// not just metrics and events. Returns the tracer so the caller can
// assert spans actually landed (a vacuous differential proves nothing).
func tracingOn(t *testing.T) *obs.Tracer {
	t.Helper()
	tr := obs.NewTracer(1, 0)
	obs.SetTracer(tr)
	t.Cleanup(func() { obs.SetTracer(nil) })
	return tr
}

// perturbConfig is the runner testsuite's small-but-real continual
// experiment (two days, nightly retraining, tiny nets).
func perturbConfig(t *testing.T, seed int64, engine string, days int) runner.Config {
	t.Helper()
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	return runner.Config{
		Env:            experiment.DefaultEnv(),
		Days:           days,
		SessionsPerDay: 16,
		WindowDays:     2,
		ShardSize:      4,
		Seed:           seed,
		Engine:         engine,
		Retrain:        true,
		Hidden:         []int{8},
		Horizon:        2,
		Train:          tc,
	}
}

// fingerprint reduces a Result to every byte the contract protects: the
// per-day records (including the fleet serving record), pooled totals,
// final model, and sliding-window telemetry.
func fingerprint(t *testing.T, res *runner.Result) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Days  []runner.DayStats
		Total []experiment.SchemeStats
	}{res.Days, res.Total})
	if err != nil {
		t.Fatal(err)
	}
	var model, data bytes.Buffer
	if res.TTP != nil {
		if err := res.TTP.Save(&model); err != nil {
			t.Fatal(err)
		}
	}
	if res.Data != nil {
		if err := res.Data.Save(&data); err != nil {
			t.Fatal(err)
		}
	}
	return append(append(blob, model.Bytes()...), data.Bytes()...)
}

// eventLog opens a throwaway event log so the "on" runs exercise the full
// emission path, not just the metric gate.
func eventLog(t *testing.T) *obs.EventLog {
	t.Helper()
	l, err := obs.OpenEventLog(filepath.Join(t.TempDir(), "run.events"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestZeroPerturbationEngines: on both execution engines, a run with
// recording, events, and span tracing fully on is byte-identical to the
// same run with everything off.
func TestZeroPerturbationEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) experiments")
	}
	for _, engine := range []string{"session", "fleet"} {
		t.Run(engine, func(t *testing.T) {
			obsOn(t, false)
			off, err := runner.Run(perturbConfig(t, 5, engine, 2))
			if err != nil {
				t.Fatal(err)
			}

			obsOn(t, true)
			tr := tracingOn(t)
			cfg := perturbConfig(t, 5, engine, 2)
			cfg.Events = eventLog(t)
			on, err := runner.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(fingerprint(t, off), fingerprint(t, on)) {
				t.Fatal("metrics+events+tracing changed the result bytes: zero-perturbation contract violated")
			}
			if tr.Total() == 0 {
				t.Fatal("tracing-on leg recorded no spans: the differential is vacuous")
			}
		})
	}
}

// TestZeroPerturbationResume: a kill-and-resume run with observability on
// matches a straight run with it off — result bytes and every checkpoint
// file byte-for-byte.
func TestZeroPerturbationResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) experiments")
	}
	dir := t.TempDir()

	obsOn(t, false)
	straightCkpt := filepath.Join(dir, "straight")
	cfg := perturbConfig(t, 9, "fleet", 3)
	cfg.CheckpointDir = straightCkpt
	straight, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	obsOn(t, true)
	tr := tracingOn(t)
	resumedCkpt := filepath.Join(dir, "resumed")
	cfg = perturbConfig(t, 9, "fleet", 2) // the "kill": only 2 of 3 days
	cfg.CheckpointDir = resumedCkpt
	cfg.Events = eventLog(t)
	if _, err := runner.Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = perturbConfig(t, 9, "fleet", 3) // the relaunch resumes day 2
	cfg.CheckpointDir = resumedCkpt
	cfg.Events = eventLog(t)
	resumed, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(fingerprint(t, straight), fingerprint(t, resumed)) {
		t.Fatal("obs+tracing-on resumed run differs from the obs-off straight run")
	}
	if tr.Total() == 0 {
		t.Fatal("tracing-on resume recorded no spans: the differential is vacuous")
	}
	compareTrees(t, straightCkpt, resumedCkpt)
}

// TestZeroPerturbationServeTraced: the wall-clock serving differential
// with tracing fully on. A day served over loopback — every session
// sampled, spans recorded on both the client and server halves, trace
// ids riding the wire — produces the exact per-scheme stats of the
// virtual-time twin run with observability entirely off.
func TestZeroPerturbationServeTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) serving day")
	}
	var spec scenario.Spec
	spec.Daily.Days = 2
	spec.Daily.Sessions = 24
	spec.Train.Epochs = 1
	seed := int64(7)
	spec.Seed = &seed
	spec.ShardSize = 8

	obsOn(t, false)
	plan, err := serve.NewPlan(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Warm(0, t.Logf); err != nil {
		t.Fatal(err)
	}
	want, _, err := serve.RunVirtual(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	obsOn(t, true)
	tr := tracingOn(t)
	srv, err := serve.NewServer(serve.Config{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	res, err := serve.RunLoad(serve.LoadConfig{
		Addr: ln.Addr().String(),
		Plan: plan,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.ModelViolations != 0 {
		t.Fatalf("traced load run: %d failed, %d model violations", res.Failed, res.ModelViolations)
	}
	gotBytes, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatalf("traced serve stats differ from obs-off virtual twin:\noff: %s\non:  %s", wantBytes, gotBytes)
	}

	// The differential only counts if both halves actually traced: the
	// client's wire_rtt roots and the server's request spans must be in
	// the ring, joined by nonzero trace ids.
	spans := tr.Snapshot()
	count := map[string]int{}
	for _, s := range spans {
		if s.Trace == 0 {
			t.Fatalf("span %s recorded with zero trace id", s.Name)
		}
		count[s.Name]++
	}
	for _, name := range []string{"wire_rtt", "client_send", "server_request", "queue_wait", "reply", "kernel"} {
		if count[name] == 0 {
			t.Fatalf("traced serve run recorded no %q spans (got %v)", name, count)
		}
	}
}

// compareTrees asserts two checkpoint directories hold identical files
// with identical bytes.
func compareTrees(t *testing.T, a, b string) {
	t.Helper()
	list := func(root string) map[string][]byte {
		files := map[string][]byte{}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[rel] = blob
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	fa, fb := list(a), list(b)
	if len(fa) != len(fb) {
		t.Fatalf("checkpoint trees differ in file count: %d vs %d", len(fa), len(fb))
	}
	for rel, blob := range fa {
		other, ok := fb[rel]
		if !ok {
			t.Fatalf("checkpoint file %s missing from the obs-on tree", rel)
		}
		if !bytes.Equal(blob, other) {
			t.Fatalf("checkpoint file %s differs between obs-off and obs-on runs", rel)
		}
	}
}

// perturbSweep is the sweep testsuite's 2x2 grid over a tiny base.
const perturbSweep = `{
  "name": "t",
  "base": {
    "daily": {"days": 2, "sessions": 16, "window": 2, "ablation": false},
    "model": {"hidden": [8], "horizon": 2},
    "train": {"epochs": 1},
    "shard_size": 4
  },
  "axes": [
    {"field": "drift.preset", "values": ["none", "shift"]},
    {"field": "seed", "values": [11, 12]}
  ]
}`

// TestZeroPerturbationSweepRelaunch: a sweep killed partway and relaunched
// with observability and event logging on produces an index whose
// CanonicalBytes equal an uninterrupted obs-off sweep's.
func TestZeroPerturbationSweepRelaunch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) sweeps")
	}
	dir := t.TempDir()
	sw, err := sweep.Parse([]byte(perturbSweep))
	if err != nil {
		t.Fatal(err)
	}
	inproc := sweep.InProcess(scenario.RunOptions{})

	obsOn(t, false)
	refIndex := filepath.Join(dir, "ref.jsonl")
	if _, err := sweep.Execute(sw, sweep.ExecConfig{
		Workers:   2,
		IndexPath: refIndex,
		Run:       inproc,
	}); err != nil {
		t.Fatal(err)
	}

	obsOn(t, true)
	onIndex := filepath.Join(dir, "on.jsonl")
	calls := 0
	killing := func(c sweep.Cell, checkpointDir string) (*results.Record, error) {
		calls++
		if calls == 3 {
			return nil, errInjected
		}
		return inproc(c, checkpointDir)
	}
	rep, err := sweep.Execute(sw, sweep.ExecConfig{
		Workers:        1, // keeps the injected kill at a deterministic cell
		IndexPath:      onIndex,
		CheckpointRoot: filepath.Join(dir, "on-ckpt"),
		Run:            killing,
		Events:         eventLog(t),
	})
	if err == nil {
		t.Fatal("killed sweep must report the failure")
	}
	if rep.Ran != 2 {
		t.Fatalf("killed sweep appended %d cells, want 2", rep.Ran)
	}
	if _, err := sweep.Execute(sw, sweep.ExecConfig{
		Workers:        2,
		IndexPath:      onIndex,
		CheckpointRoot: filepath.Join(dir, "on-ckpt"),
		Run:            inproc,
		Events:         eventLog(t),
	}); err != nil {
		t.Fatal(err)
	}

	ref, err := results.Load(refIndex)
	if err != nil {
		t.Fatal(err)
	}
	on, err := results.Load(onIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.CanonicalBytes(), on.CanonicalBytes()) {
		t.Fatal("obs-on relaunched sweep index differs from the obs-off uninterrupted one")
	}
}

var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected kill" }
