package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// BlobVersion is the shard blob envelope version. Bump it whenever the
// accumulator wire shape changes incompatibly; a coordinator then rejects
// blobs from stale worker builds instead of merging garbage.
const BlobVersion = 1

// shardBlob is the wire envelope for one shard's results: the analysis
// accumulator and the telemetry dataset the shard's sessions produced.
// Both gob-encode deterministically (TrialAcc via its name-sorted wire
// form), so identical shard results are identical bytes on the wire.
type shardBlob struct {
	Version int
	Acc     *experiment.TrialAcc
	Data    *core.Dataset
}

// EncodeShard packs one shard's accumulator and dataset into a versioned
// blob for the result frame.
func EncodeShard(acc *experiment.TrialAcc, data *core.Dataset) ([]byte, error) {
	if acc == nil || data == nil {
		return nil, fmt.Errorf("dist: encoding shard blob: nil accumulator or dataset")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(shardBlob{Version: BlobVersion, Acc: acc, Data: data}); err != nil {
		return nil, fmt.Errorf("dist: encoding shard blob: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeShard unpacks a shard blob, rejecting version mismatches and
// undecodable (shape-mismatched) payloads loudly — a bad blob must abort
// the run, never fold into a silently wrong answer.
func DecodeShard(b []byte) (*experiment.TrialAcc, *core.Dataset, error) {
	var blob shardBlob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&blob); err != nil {
		return nil, nil, fmt.Errorf("dist: shard blob does not decode (coordinator/worker build mismatch?): %w", err)
	}
	if blob.Version != BlobVersion {
		return nil, nil, fmt.Errorf("dist: shard blob version %d, want %d (coordinator/worker build mismatch)", blob.Version, BlobVersion)
	}
	if blob.Acc == nil || blob.Data == nil {
		return nil, nil, fmt.Errorf("dist: shard blob missing accumulator or dataset")
	}
	return blob.Acc, blob.Data, nil
}
