package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: puffer/internal/fleet
cpu: whatever
BenchmarkFleetThroughput/per-session/w1-8         	      12	  91946320 ns/op	 2610864 B/op	   34747 allocs/op	       261.0 sessions/sec
BenchmarkFleetThroughput/fleet/w1-8               	      24	  45973160 ns/op	 1305432 B/op	   17373 allocs/op	       522.0 sessions/sec
BenchmarkFleetThroughput/fleet-obs/w1-8           	      24	  46432891 ns/op	 1305500 B/op	   17380 allocs/op	       516.9 sessions/sec
PASS
ok  	puffer/internal/fleet	3.210s
pkg: puffer/internal/nn
BenchmarkForwardPacked/rows=64-8                  	    5000	    234567 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	puffer/internal/nn	1.002s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Pkg != "puffer/internal/fleet" || b.Name != "FleetThroughput/per-session/w1" ||
		b.Procs != 8 || b.Iterations != 12 || b.NsPerOp != 91946320 ||
		b.BytesPerOp != 2610864 || b.AllocsPerOp != 34747 {
		t.Fatalf("first benchmark parsed wrong: %+v", b)
	}
	if got := b.Metrics["sessions/sec"]; got != 261.0 {
		t.Fatalf("sessions/sec = %v, want 261", got)
	}
	if doc.Benchmarks[3].Pkg != "puffer/internal/nn" {
		t.Fatalf("pkg header not tracked: %+v", doc.Benchmarks[3])
	}
	want := map[string]float64{"per-session/w1": 261.0, "fleet/w1": 522.0, "fleet-obs/w1": 516.9}
	if len(doc.FleetSessionsPerSec) != len(want) {
		t.Fatalf("fleet summary: %+v", doc.FleetSessionsPerSec)
	}
	for k, v := range want {
		if doc.FleetSessionsPerSec[k] != v {
			t.Fatalf("fleet summary[%s] = %v, want %v", k, doc.FleetSessionsPerSec[k], v)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want an error for input with no benchmark lines")
	}
}

func TestWriteDiff(t *testing.T) {
	oldDoc := &Doc{
		Benchmarks: []Bench{
			{Pkg: "p", Name: "Same", NsPerOp: 1000},
			{Pkg: "p", Name: "Slower", NsPerOp: 1000},
			{Pkg: "p", Name: "Faster", NsPerOp: 1000},
			{Pkg: "p", Name: "Gone", NsPerOp: 50},
		},
		FleetSessionsPerSec: map[string]float64{"fleet/w1": 500},
	}
	newDoc := &Doc{
		Benchmarks: []Bench{
			{Pkg: "p", Name: "Same", NsPerOp: 1040},
			{Pkg: "p", Name: "Slower", NsPerOp: 1300},
			{Pkg: "p", Name: "Faster", NsPerOp: 700},
			{Pkg: "p", Name: "New", NsPerOp: 9},
		},
		FleetSessionsPerSec: map[string]float64{"fleet/w1": 550},
	}
	var b strings.Builder
	writeDiff(&b, oldDoc, newDoc)
	out := b.String()
	for _, want := range []string{
		"Slower", "+30.0%  slower",
		"Faster", "-30.0%  faster",
		"New", "new",
		"Gone", "gone",
		"fleet sessions/sec",
		"500.0 ->      550.0",
		"advisory: 1 slower, 1 faster",
		"not a gate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff report missing %q:\n%s", want, out)
		}
	}
	// The ±10% threshold leaves small swings unmarked.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Same") && (strings.Contains(line, "slower") || strings.Contains(line, "faster")) {
			t.Fatalf("+4%% swing marked: %q", line)
		}
	}
}
