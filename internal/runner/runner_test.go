package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// testConfig is a small-but-real continual experiment: enough sessions for
// telemetry to train on, tiny nets so the nightly phase is fast.
func testConfig(seed int64) Config {
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	return Config{
		Env:            experiment.DefaultEnv(),
		Days:           2,
		SessionsPerDay: 16,
		WindowDays:     2,
		ShardSize:      4,
		Seed:           seed,
		Retrain:        true,
		Hidden:         []int{8},
		Horizon:        2,
		Train:          tc,
	}
}

// fingerprint reduces a Result to comparable bytes: day records, pooled
// totals, and the final model's serialized form.
func fingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Days  []DayStats
		Total []experiment.SchemeStats
	}{res.Days, res.Total})
	if err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if res.TTP != nil {
		if err := res.TTP.Save(&model); err != nil {
			t.Fatal(err)
		}
	}
	return append(blob, model.Bytes()...)
}

func TestRunnerProducesDaysAndModel(t *testing.T) {
	res, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 2 {
		t.Fatalf("got %d day records, want 2", len(res.Days))
	}
	if !res.Days[0].Retrained || !res.Days[1].Retrained {
		t.Fatal("retraining runner must retrain every night")
	}
	if res.TTP == nil {
		t.Fatal("no final model")
	}
	if res.Data == nil || res.Data.NumChunks() == 0 {
		t.Fatal("no sliding-window telemetry in result")
	}
	if len(res.Total) == 0 {
		t.Fatal("no pooled scheme stats")
	}
	// Day 0 is the classical bootstrap mixture; day 1 deploys Fugu.
	names := map[string]bool{}
	for _, s := range res.Days[1].Schemes {
		names[s.Name] = true
	}
	if !names["Fugu"] {
		t.Fatalf("day 1 has no Fugu arm: %v", res.Days[1].Schemes)
	}
	for _, s := range res.Days[0].Schemes {
		if s.Name == "Fugu" {
			t.Fatal("day 0 cannot deploy Fugu before a model exists")
		}
	}
}

// TestRunnerDeterministicAcrossWorkers: satellite requirement — byte-identical
// aggregates for Workers=1 vs Workers=8.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	a := testConfig(7)
	a.Workers = 1
	resA, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := testConfig(7)
	b.Workers = 8
	resB, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fingerprint(t, resA), fingerprint(t, resB)
	if !bytes.Equal(fa, fb) {
		t.Fatalf("runner results differ between 1 and 8 workers (%d vs %d bytes)", len(fa), len(fb))
	}
}

// TestRunnerCheckpointResume: a run killed after day 1 (simulated by running
// with Days=2 into a checkpoint dir, then asking for Days=3) must finish
// byte-identical to an uninterrupted 3-day run.
func TestRunnerCheckpointResume(t *testing.T) {
	straight := testConfig(11)
	straight.Days = 3
	want, err := Run(straight)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := testConfig(11)
	first.Days = 2
	first.CheckpointDir = dir
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	// A killed checkpoint leaves partial temp dirs; resume must sweep them.
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-day_002"), 0o755); err != nil {
		t.Fatal(err)
	}

	second := testConfig(11)
	second.Days = 3
	second.CheckpointDir = dir
	got, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Fatal("kill-and-resume run differs from uninterrupted run")
	}
	for day := 0; day < 3; day++ {
		if _, err := os.Stat(dayDir(dir, day)); err != nil {
			t.Fatalf("day %d not checkpointed: %v", day, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-day_002")); !os.IsNotExist(err) {
		t.Fatal("stray temp dir survived resume")
	}

	// A third invocation finds everything done and replays from disk alone.
	replay, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, replay), fingerprint(t, want)) {
		t.Fatal("pure-replay run differs from uninterrupted run")
	}
}

func TestRunnerManifestGuardsParameters(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(13)
	cfg.Days = 1
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.SessionsPerDay += 8
	if _, err := Run(cfg); err == nil {
		t.Fatal("resume with changed parameters must be rejected")
	}
	cfg.SessionsPerDay -= 8
	cfg.Env = experiment.EmulationEnv()
	if _, err := Run(cfg); err == nil {
		t.Fatal("resume in a different environment must be rejected")
	}
}

// TestRunnerFrozenAblation: with Retrain off, only day 0 trains (the
// bootstrap) and the model serves unchanged thereafter — the "Fugu-Feb"
// staleness arm.
func TestRunnerFrozenAblation(t *testing.T) {
	cfg := testConfig(17)
	cfg.Days = 3
	cfg.Retrain = false
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Days[0].Retrained {
		t.Fatal("day 0 must bootstrap-train even with Retrain off")
	}
	for _, ds := range res.Days[1:] {
		if ds.Retrained {
			t.Fatalf("day %d retrained despite Retrain=false", ds.Day)
		}
	}
	day0, err := os.ReadFile(filepath.Join(dayDir(dir, 0), modelFile))
	if err != nil {
		t.Fatal(err)
	}
	day2, err := os.ReadFile(filepath.Join(dayDir(dir, 2), modelFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(day0, day2) {
		t.Fatal("frozen model changed between day 0 and day 2")
	}
}

// TestRunnerSlidingWindow: result telemetry covers exactly the last W days.
func TestRunnerSlidingWindow(t *testing.T) {
	cfg := testConfig(19)
	cfg.Days = 3
	cfg.WindowDays = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Data.Streams {
		for _, c := range s.Chunks {
			if c.Day != 2 {
				t.Fatalf("window of 1 day retained telemetry from day %d", c.Day)
			}
		}
	}
}
