package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"puffer/internal/experiment"
	"puffer/internal/runner"
)

// testSpec is a small-but-real continual experiment (tiny nets, few
// sessions) mirroring the runner package's test config.
func testSpec(seed int64, opts ...Option) Spec {
	base := []Option{
		Days(2), Sessions(16), Window(2), Shard(4), Seed(seed),
		Hidden(8), Horizon(2), Epochs(1), Ablation(false),
	}
	return New(append(base, opts...)...)
}

// fingerprint reduces a Result to comparable bytes.
func fingerprint(t *testing.T, res *runner.Result) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Days  []runner.DayStats
		Total []experiment.SchemeStats
	}{res.Days, res.Total})
	if err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if res.TTP != nil {
		if err := res.TTP.Save(&model); err != nil {
			t.Fatal(err)
		}
	}
	return append(blob, model.Bytes()...)
}

// TestScenarioResumeWithSpecHashManifest: the acceptance-criteria resume
// path — a scenario run killed after day 1 resumes under the spec-hash
// manifest and finishes byte-identical to an uninterrupted run, including
// a same-guard engine switch (the engines are byte-identical, so the
// guard deliberately permits it).
func TestScenarioResumeWithSpecHashManifest(t *testing.T) {
	straight, err := Run(testSpec(11, Days(3)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, err := Run(testSpec(11, Days(2)), RunOptions{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}

	// The manifest must be the spec-hash format, spec JSON included.
	raw, err := os.ReadFile(filepath.Join(dir, "retrain", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		GuardHash string
		Spec      json.RawMessage
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.GuardHash != testSpec(11).GuardHash() {
		t.Fatalf("manifest guard %q is not the spec's guard hash", m.GuardHash)
	}
	respec, err := Parse(m.Spec)
	if err != nil {
		t.Fatalf("manifest spec does not re-parse: %v", err)
	}
	if respec.GuardHash() != m.GuardHash {
		t.Fatal("manifest spec does not hash to the manifest guard")
	}

	// Resume with one more day — and on the other engine, which the
	// guard permits because engines are byte-identical. Only the
	// engine-specific serving record (DayStats.Fleet) may differ, so it
	// is cleared before comparing, as the runner's cross-engine tests do.
	resumed, err := Run(testSpec(11, Days(3), Engine("fleet"), ArrivalRate(2)),
		RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stripFleet := func(res *runner.Result) {
		for i := range res.Days {
			res.Days[i].Fleet = nil
		}
	}
	stripFleet(resumed.Result)
	stripFleet(straight.Result)
	if !bytes.Equal(fingerprint(t, resumed.Result), fingerprint(t, straight.Result)) {
		t.Fatal("kill-and-resume scenario differs from uninterrupted run")
	}
}

// TestScenarioResumeRejectsDifferentExperiment: a changed result-shaping
// field is refused, and the error carries both specs.
func TestScenarioResumeRejectsDifferentExperiment(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(testSpec(13, Days(1)), RunOptions{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(testSpec(13, Days(2), Sessions(24)), RunOptions{CheckpointDir: dir})
	if err == nil {
		t.Fatal("resume with different sessions must be rejected")
	}
	if !strings.Contains(err.Error(), "different experiment") || !strings.Contains(err.Error(), "\"sessions\": 24") {
		t.Fatalf("mismatch error should explain and show the specs, got: %v", err)
	}
	_, err = Run(testSpec(13, Days(2), Drift("decay")), RunOptions{CheckpointDir: dir})
	if err == nil {
		t.Fatal("resume with a drift schedule must be rejected")
	}
}

// TestScenarioLegacyManifestRejectedWithMigration: checkpoints written by
// the pre-scenario field-list manifest are refused with an explicit
// migration message, not a generic mismatch.
func TestScenarioLegacyManifestRejectedWithMigration(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "retrain")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	legacy := []byte(`{
  "EnvPaths": "puffer",
  "EnvClip": false,
  "SessionsPerDay": 16,
  "WindowDays": 2,
  "ShardSize": 4,
  "Seed": 11,
  "Retrain": true,
  "Hidden": [8],
  "Horizon": 2,
  "Train": {"Epochs": 1, "BatchSize": 64, "LR": 0.001, "Seed": 1, "WindowDays": 2, "RecencyBase": 0.9}
}`)
	if err := os.WriteFile(filepath.Join(ckpt, "manifest.json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(testSpec(11), RunOptions{CheckpointDir: dir})
	if err == nil {
		t.Fatal("legacy manifest must be rejected")
	}
	if !strings.Contains(err.Error(), "legacy (pre-scenario) manifest") {
		t.Fatalf("legacy manifest rejection should say how to migrate, got: %v", err)
	}
}

// TestScenarioAblationPairing: the frozen companion runs on the same seed
// with its own guard, checkpointed beside the retrained arm in a directory
// named by the companion's GuardHash (so companions of different specs
// sharing one root never collide).
func TestScenarioAblationPairing(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(17, Days(2), Ablation(true))
	out, err := Run(spec, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if out.Frozen == nil {
		t.Fatal("ablation did not run")
	}
	companion := out.Spec
	companion.Daily.Retrain = ptr(false)
	frozenDir := "frozen-" + companion.GuardHash()[:12]
	for _, sub := range []string{"retrain", frozenDir} {
		if _, err := os.Stat(filepath.Join(dir, sub, "manifest.json")); err != nil {
			t.Fatalf("missing %s checkpoint: %v", sub, err)
		}
	}
	// Day 1 is served by the identical day-0 model in both arms on
	// paired sessions, so the gap is exactly zero.
	gaps := runner.StalenessGaps(out.Result, out.Frozen, "Fugu")
	if len(gaps) != 2 || !gaps[1].Present || gaps[1].Gap != 0 {
		t.Fatalf("paired day-1 gap should be exactly 0, got %+v", gaps)
	}
}
