// In-situ vs emulation: the paper's central lesson, in two acts.
//
// Act 1 (place): two Transmission Time Predictors are trained identically —
// one on telemetry from the deployment environment ("in situ"), one on
// telemetry from the FCC-trace emulation testbed — then both Fugus are
// deployed on the real (heavy-tailed) paths. The emulation-trained model
// falls apart, reproducing Figure 11's middle panel.
//
// Act 2 (time): the same mismatch arises without ever leaving the
// deployment, once the deployment refuses to stand still. Under a drifting
// path population the continual loop's nightly retraining tracks the
// shift, while a model frozen on day 0 is effectively "trained in a
// different environment" within days — the frozen-vs-retrained stall gap
// widens day over day.
//
//	go run ./examples/insitu-vs-emulation
//
// Set PUFFER_EXAMPLE_SCALE (e.g. 0.2) to shrink session counts for a quick
// smoke run.
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/examples/internal/exscale"
	"puffer/internal/core"
)

// trainIn trains a TTP the way the platform does everywhere else: as a
// declarative scenario — a two-day continual loop in the named world (day
// 0 collects bootstrap telemetry and trains overnight; day 1 deploys that
// Fugu and retrains on both days). The spec is the whole experiment; no
// hand-assembled collection or training configs.
func trainIn(world, name string, seed int64) *puffer.TTP {
	log.Printf("training %s TTP (two-day continual loop)...", name)
	out, err := puffer.RunScenario(puffer.NewScenario(
		puffer.ScenarioWorld(world),
		puffer.ScenarioDays(2),
		puffer.ScenarioSessions(exscale.Scaled(150)),
		puffer.ScenarioWindow(2),
		puffer.ScenarioSeed(seed),
		puffer.ScenarioEpochs(8),
		puffer.ScenarioAblation(false),
	), puffer.ScenarioRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return out.Result.TTP
}

func main() {
	log.SetFlags(0)
	insitu := trainIn("insitu", "in-situ", 1)
	emu := trainIn("emulation", "emulation", 10)

	log.Println("deploying both on real-world (heavy-tailed) paths...")
	res, err := puffer.RunExperiment(puffer.Config{
		Env: puffer.DefaultEnv(),
		Schemes: []puffer.Scheme{
			{Name: "Fugu (in situ)", New: func() puffer.Algorithm {
				return core.NewFuguNamed("Fugu (in situ)", insitu)
			}},
			{Name: "Fugu (emulation)", New: func() puffer.Algorithm {
				return core.NewFuguNamed("Fugu (emulation)", emu)
			}},
			{Name: "BBA", New: puffer.NewBBA},
		},
		Sessions: exscale.Scaled(400),
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %22s %10s\n", "Scheme", "Stalled% [95% CI]", "SSIM")
	for _, r := range puffer.Analyze(res, puffer.AllPaths, 22) {
		fmt.Printf("%-18s %7.3f%% [%.3f, %.3f] %7.2f dB\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi, r.SSIM.Point)
	}
	fmt.Println("\nThe emulation-trained predictor never saw heavy-tailed behavior,")
	fmt.Println("so it is overconfident exactly when the real network misbehaves.")

	// Act 2: a frozen model in a drifting deployment is "trained in a
	// different environment" a few days from now. The whole experiment —
	// drifting world, 4-day loop, frozen-model ablation — is one
	// declarative scenario spec; RunScenario runs both seed-paired arms.
	log.Println("running 4-day drifting deployment (both arms)...")
	out, err := puffer.RunScenario(puffer.NewScenario(
		puffer.ScenarioDriftPreset("shift"),
		puffer.ScenarioDays(4),
		puffer.ScenarioSessions(exscale.Scaled(80)),
		puffer.ScenarioSeed(41),
		puffer.ScenarioEpochs(4),
		puffer.ScenarioWindow(0),
	), puffer.ScenarioRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	retrained, frozen := out.Result, out.Frozen

	fmt.Printf("\nDrifting deployment (slow-path share +30 pts/day): Fugu stall ratio by day\n")
	fmt.Printf("%-4s %12s %12s %9s\n", "Day", "Retrained%", "Frozen%", "Gap pp")
	for _, g := range puffer.StalenessGaps(retrained, frozen, "Fugu") {
		if !g.Present {
			continue
		}
		fmt.Printf("%-4d %11.3f%% %11.3f%% %+9.3f\n", g.Day,
			100*g.Retrained, 100*g.Frozen, 100*g.Gap)
	}
	if exscale.Reduced() {
		fmt.Println("\n(reduced-scale smoke run: per-day stall ratios are noisy at this")
		fmt.Println("session count; run without PUFFER_EXAMPLE_SCALE for the clean separation)")
	}
	fmt.Println("\nSame lesson in time instead of place: training data must come from")
	fmt.Println("the environment the model serves — and keep coming from it.")
}
