// Package results is the platform's results warehouse: a content-addressed,
// append-only index of finished experiment outcomes, keyed by the scenario
// spec's canonical hash.
//
// The paper's headline result is a year of (scheme x network-condition x
// day) cells aggregated into one analysis; this package is the layer that
// lets those cells be run once and queried forever. Every record pairs the
// fully-defaulted scenario spec (canonical JSON) with the run's
// deterministic outcome — pooled per-scheme statistics, per-day stats, the
// frozen-companion arm, and the per-day staleness gap rows — plus timing
// and host metadata, which are explicitly excluded from the index's
// identity (CanonicalBytes) because they are the only nondeterministic
// part of a record.
//
// The index is a JSON-lines file with a single-writer atomic-append
// contract: OpenWriter repairs a torn trailing line left by a kill
// mid-append, and Append commits each record as one write of one line, so
// a reader never observes half a record and a killed sweep resumes into a
// well-formed file. Load reads the whole index (a missing file is an empty
// index); Has/Get answer the sweep executor's "is this cell done" question
// in O(1).
//
// On top sits a small query API: Rows flattens each record into dotted
// spec columns ("drift.preset", "daily.sessions", ...) plus per-scheme
// outcome columns ("Fugu.stall_pct", ...), GapRows explodes records into
// per-day staleness rows, and Query filters by field predicates, projects
// columns, and groups-and-aggregates — always in a deterministic order
// independent of how records were appended. cmd/puffer-sweep's query
// subcommand and the figures that read the index are thin wrappers over
// it.
package results
