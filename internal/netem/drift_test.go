package netem

import (
	"math"
	"math/rand"
	"testing"
)

// samplePathBytes reduces a path to comparable values.
func pathsEqual(a, b Path) bool {
	if a.BaseRTT != b.BaseRTT || a.QueueCapacity != b.QueueCapacity ||
		a.Trace.Interval != b.Trace.Interval || len(a.Trace.Rate) != len(b.Trace.Rate) {
		return false
	}
	for i := range a.Trace.Rate {
		if a.Trace.Rate[i] != b.Trace.Rate[i] {
			return false
		}
	}
	return true
}

func presets(t *testing.T) map[string]DriftSchedule {
	t.Helper()
	out := map[string]DriftSchedule{}
	for _, name := range []string{"none", "decay", "shift", "mix"} {
		s, err := DriftPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = s
	}
	return out
}

// TestDriftingSamplerDeterministic: same (seed, day) must give byte-identical
// paths, for every preset — the determinism contract the daily loop's
// kill-and-resume relies on.
func TestDriftingSamplerDeterministic(t *testing.T) {
	for name, sched := range presets(t) {
		ds := &DriftingSampler{Base: PufferPaths{}, Schedule: sched}
		for day := 0; day < 5; day++ {
			a := ds.SampleDay(rand.New(rand.NewSource(99)), 300, day)
			b := ds.SampleDay(rand.New(rand.NewSource(99)), 300, day)
			if !pathsEqual(a, b) {
				t.Fatalf("preset %s day %d: same seed produced different paths", name, day)
			}
		}
	}
}

// TestDriftingSamplerZeroScheduleIdentity: an all-zero schedule must be
// draw-for-draw identical to the base sampler on every day (this is what
// makes `-drift none` byte-identical to an unwrapped run).
func TestDriftingSamplerZeroScheduleIdentity(t *testing.T) {
	ds := &DriftingSampler{Base: PufferPaths{}}
	for day := 0; day < 4; day++ {
		got := ds.SampleDay(rand.New(rand.NewSource(7)), 240, day)
		want := PufferPaths{}.Sample(rand.New(rand.NewSource(7)), 240)
		if !pathsEqual(got, want) {
			t.Fatalf("zero schedule day %d differs from base sampler", day)
		}
	}
	if !(&DriftSchedule{}).IsZero() {
		t.Fatal("zero DriftSchedule must report IsZero")
	}
	if (&DriftSchedule{RateFactorPerDay: 1}).IsZero() != true {
		t.Fatal("RateFactorPerDay=1 is no drift")
	}
	if (&DriftSchedule{RateFactorPerDay: 0.9}).IsZero() {
		t.Fatal("decaying schedule must not report IsZero")
	}
}

// TestDriftingSamplerDayZeroUndrifted: per-day knobs are inactive on day 0,
// so day 0 always reproduces the base family exactly.
func TestDriftingSamplerDayZeroUndrifted(t *testing.T) {
	for _, name := range []string{"decay", "shift"} {
		sched, err := DriftPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		ds := &DriftingSampler{Base: PufferPaths{}, Schedule: sched}
		got := ds.SampleDay(rand.New(rand.NewSource(3)), 240, 0)
		want := PufferPaths{}.Sample(rand.New(rand.NewSource(3)), 240)
		if !pathsEqual(got, want) {
			t.Fatalf("preset %s: day 0 differs from the base family", name)
		}
	}
}

// meanCapacity estimates the population mean session capacity on a day.
func meanCapacity(ds *DriftingSampler, seed int64, day, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += ds.SampleDay(rng, 120, day).Trace.Mean()
	}
	return sum / float64(n)
}

// slowFraction estimates the slow-path (mean < 6 Mbit/s) share on a day.
func slowFraction(ds *DriftingSampler, seed int64, day, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	slow := 0
	for i := 0; i < n; i++ {
		if ds.SampleDay(rng, 120, day).Trace.Mean() < 6e6 {
			slow++
		}
	}
	return float64(slow) / float64(n)
}

func TestDriftDecayShrinksCapacity(t *testing.T) {
	sched, _ := DriftPreset("decay")
	ds := &DriftingSampler{Base: PufferPaths{}, Schedule: sched}
	const n = 400
	prev := meanCapacity(ds, 5, 0, n)
	for day := 2; day <= 6; day += 2 {
		cur := meanCapacity(ds, 5, day, n)
		if cur >= prev*0.95 {
			t.Fatalf("day %d mean capacity %.0f not clearly below day %d's %.0f", day, cur, day-2, prev)
		}
		prev = cur
	}
}

func TestDriftShiftGrowsSlowShare(t *testing.T) {
	sched, _ := DriftPreset("shift")
	ds := &DriftingSampler{Base: PufferPaths{}, Schedule: sched}
	const n = 600
	day0 := slowFraction(ds, 9, 0, n)
	day1 := slowFraction(ds, 9, 1, n)
	day2 := slowFraction(ds, 9, 2, n)
	if !(day0 < day1 && day1 < day2) {
		t.Fatalf("slow share not growing: day0 %.3f day1 %.3f day2 %.3f", day0, day1, day2)
	}
	// The extra share caps at +90 points: from day 3 on, nearly every
	// session is slow.
	if day3 := slowFraction(ds, 9, 3, n); day3 < 0.8 {
		t.Fatalf("day 3 slow share %.3f, want most sessions slow under the shift preset", day3)
	}
}

func TestDriftMixMigratesPopulation(t *testing.T) {
	sched, _ := DriftPreset("mix")
	ds := &DriftingSampler{Base: PufferPaths{}, Schedule: sched}
	if w := sched.MixWeight(0); w != 0 {
		t.Fatalf("mix weight at ramp start = %v, want 0", w)
	}
	if w := sched.MixWeight(1); math.Abs(w-1.0/3) > 1e-9 {
		t.Fatalf("mix weight on day 1 = %v, want 1/3", w)
	}
	if w := sched.MixWeight(3); w != 1 {
		t.Fatalf("mix weight at ramp end = %v, want 1", w)
	}
	if w := sched.MixWeight(20); w != 1 {
		t.Fatalf("mix weight past ramp = %v, want 1", w)
	}
	const n = 400
	day0 := meanCapacity(ds, 13, 0, n)
	day3 := meanCapacity(ds, 13, 3, n)
	if day3 > day0/2 {
		t.Fatalf("population did not migrate to the congested family: day0 %.0f vs day3 %.0f", day0, day3)
	}
}

func TestDriftOutageOverlay(t *testing.T) {
	ds := &DriftingSampler{Base: PufferPaths{}, Schedule: DriftSchedule{OutageRatePerDay: 1.0 / 300}}
	deepFrac := func(day int) float64 {
		rng := rand.New(rand.NewSource(21))
		deep, total := 0, 0
		for i := 0; i < 80; i++ {
			tr := ds.SampleDay(rng, 600, day).Trace
			mean := tr.Mean()
			for _, r := range tr.Rate {
				if r < 0.1*mean {
					deep++
				}
				total++
			}
		}
		return float64(deep) / float64(total)
	}
	if d0, d4 := deepFrac(0), deepFrac(4); d4 <= d0+0.01 {
		t.Fatalf("outage ramp did not deepen the tail: day0 %.4f vs day4 %.4f", d0, d4)
	}
}

// TestDriftScheduleSignature: the signature must be stable for equal
// schedules and distinguish different ones — it is what the checkpoint
// manifest pins via DriftingSampler.Name.
func TestDriftScheduleSignature(t *testing.T) {
	ps := presets(t)
	seen := map[string]string{}
	for name, sched := range ps {
		sig := sched.Signature()
		if prev, ok := seen[sig]; ok {
			t.Fatalf("presets %s and %s share signature %q", prev, name, sig)
		}
		seen[sig] = name
	}
	none := ps["none"]
	if sig := none.Signature(); sig != "none" {
		t.Fatalf("zero schedule signature = %q, want \"none\"", sig)
	}
	a := DriftSchedule{RateFactorPerDay: 0.9}
	b := DriftSchedule{RateFactorPerDay: 0.8}
	if a.Signature() == b.Signature() {
		t.Fatal("different decay factors share a signature")
	}
	decay := ps["decay"]
	ds := &DriftingSampler{Base: PufferPaths{}, Schedule: decay}
	if got := ds.Name(); got != "puffer+drift{"+decay.Signature()+"}" {
		t.Fatalf("DriftingSampler name %q does not embed base name and signature", got)
	}
}

// TestSampleForDayStationary: a stationary sampler via SampleForDay consumes
// exactly the same draws as a direct Sample call on every day.
func TestSampleForDayStationary(t *testing.T) {
	for day := 0; day < 3; day++ {
		got := SampleForDay(PufferPaths{}, rand.New(rand.NewSource(17)), 180, day)
		want := PufferPaths{}.Sample(rand.New(rand.NewSource(17)), 180)
		if !pathsEqual(got, want) {
			t.Fatalf("stationary SampleForDay differs from Sample on day %d", day)
		}
	}
}

func TestDriftPresetUnknown(t *testing.T) {
	if _, err := DriftPreset("wobble"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestDriftDescribe(t *testing.T) {
	sched, _ := DriftPreset("decay")
	if sched.Describe(0) == "" {
		// Day 0 is undrifted but the schedule is not zero; Describe may
		// legitimately return "" only for zero schedules.
		t.Log("decay Describe(0) empty (rate x1.00 collapses); acceptable")
	}
	if (&DriftSchedule{}).Describe(3) != "" {
		t.Fatal("zero schedule must describe as empty")
	}
	if got := sched.Describe(2); got == "" {
		t.Fatalf("decay Describe(2) empty, want a rate factor")
	}
}
