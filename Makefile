# Local developer entry points, mirrored 1:1 by .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local run means a green PR.

GO ?= go
# Session count for the benchmark smoke pass — small enough to finish in a
# couple of minutes, large enough to exercise every figure end to end.
BENCH_SESSIONS ?= 40

# Checkpoint dir for the daily-loop smoke run.
DAILY_DIR ?= /tmp/puffer-daily-smoke

# Session-count multiplier applied to the examples in the docs smoke run —
# small enough that all four examples finish in seconds.
EXAMPLE_SCALE ?= 0.1

# Days/sessions/epochs multiplier for the scenario smoke run (every
# registered scenario, clamped to 2 days x 8 sessions x 1 epoch minimum).
SCENARIO_SCALE ?= 0.02

# Scratch dir for the sweep smoke run's index + checkpoints.
SWEEP_DIR ?= /tmp/puffer-sweep-smoke

.PHONY: fmt fmt-check vet build test bench daily-smoke docs-smoke scenario-smoke sweep-smoke ci

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Compile and execute every benchmark once (figures included) as a smoke
# check; use `go test -bench=. -benchmem ./...` directly for real timings.
bench:
	PUFFER_BENCH_SESSIONS=$(BENCH_SESSIONS) $(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# Daily-loop smoke: run the continual experiment for one day into a fresh
# checkpoint dir, then ask the same dir for two days — the second invocation
# must resume at day 1, exercising kill-and-resume end to end (2 days x 40
# sessions, nightly retraining on). Both execution engines run the same
# smoke, so every push exercises the per-session and fleet paths.
daily-smoke:
	rm -rf $(DAILY_DIR) $(DAILY_DIR)-fleet
	$(GO) run ./cmd/puffer-daily -days 1 -sessions 40 -window 2 -epochs 2 -seed 1 -checkpoint $(DAILY_DIR) -ablation=false -q
	$(GO) run ./cmd/puffer-daily -days 2 -sessions 40 -window 2 -epochs 2 -seed 1 -checkpoint $(DAILY_DIR) -ablation=false
	test -d $(DAILY_DIR)/retrain/day_001
	$(GO) run ./cmd/puffer-daily -days 1 -sessions 40 -window 2 -epochs 2 -seed 1 -engine fleet -arrival-rate 2 -checkpoint $(DAILY_DIR)-fleet -ablation=false -q
	$(GO) run ./cmd/puffer-daily -days 2 -sessions 40 -window 2 -epochs 2 -seed 1 -engine fleet -arrival-rate 2 -checkpoint $(DAILY_DIR)-fleet -ablation=false
	test -d $(DAILY_DIR)-fleet/retrain/day_001

# Docs smoke: fail if any package is missing a package doc comment
# (cmd/doccheck), then briefly run every examples/ program end to end —
# examples have no test files, so this is their only CI coverage.
docs-smoke:
	$(GO) run ./cmd/doccheck
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/quickstart
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/abr-tournament
	rm -f tournament_streams.csv
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/uncertainty
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/insitu-vs-emulation

# Scenario smoke: briefly run every registered scenario (scaled down via
# PUFFER_SCENARIO_SCALE) and prove the scenario API's round trip on each —
# the -dump-scenario output, run from the file, is byte-identical on stdout
# to running the scenario by name.
scenario-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-daily ./cmd/puffer-daily; \
	$$bin/puffer-daily -list-scenarios > $$bin/list.txt; \
	names=$$(awk '{print $$1}' $$bin/list.txt); \
	test -n "$$names" || { echo "scenario-smoke: no registered scenarios"; exit 1; }; \
	for s in $$names; do \
		echo "== scenario $$s"; \
		$$bin/puffer-daily -scenario $$s -dump-scenario > $$bin/$$s.json; \
		PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-daily -scenario $$s -q > $$bin/$$s.byname.out; \
		PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-daily -scenario $$bin/$$s.json -q > $$bin/$$s.byfile.out; \
		cmp $$bin/$$s.byname.out $$bin/$$s.byfile.out; \
	done

# Sweep smoke: run the committed 2x2 drift x engine grid into a fresh
# index, then launch the identical sweep again — the second launch must
# find every cell in the index and execute zero runs. A query over the
# populated index must match the committed golden (deterministic columns
# only: expansion names, axis values, spec hashes).
sweep-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-sweep ./cmd/puffer-sweep; \
	rm -rf $(SWEEP_DIR); \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-sweep run \
		-sweep scenarios/sweeps/smoke-grid.json \
		-index $(SWEEP_DIR)/index.jsonl -checkpoint $(SWEEP_DIR)/ckpt; \
	out=$$(PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-sweep run \
		-sweep scenarios/sweeps/smoke-grid.json \
		-index $(SWEEP_DIR)/index.jsonl -checkpoint $(SWEEP_DIR)/ckpt); \
	echo "$$out"; \
	case "$$out" in *"ran 0,"*) ;; *) echo "sweep-smoke: second launch executed cells"; exit 1;; esac; \
	$$bin/puffer-sweep query -index $(SWEEP_DIR)/index.jsonl \
		-cols name,drift.preset,engine.kind,hash > $$bin/query.out; \
	cmp $$bin/query.out scenarios/sweeps/smoke-grid.golden

ci: fmt-check vet build test bench daily-smoke docs-smoke scenario-smoke sweep-smoke
