// Package dist distributes the daily loop's randomized trial across worker
// processes: a coordinator (embedded in the runner behind Engine "dist")
// partitions each day's sessions into the existing shard units, broadcasts
// the day's model bytes and the canonical scenario spec over a
// length-prefixed gob/stdio protocol, lets workers claim shards, and merges
// the returned accumulator blobs in shard order — making the distributed
// result byte-identical to the single-process engine at the same seeds.
//
// The paper's result rests on scale: Puffer's continual-learning loop
// ingests a real deployment's stream of data and retrains nightly (§4-5).
// This package is what lets a paper-scale run (hundreds of days x 1e5
// sessions/day) finish overnight on one many-core box, without giving up
// the platform's determinism contract.
//
// Main entry points:
//
//   - Pool / PoolConfig / (*Pool).RunDay: the coordinator side — launch
//     local subprocess workers (self-re-exec, the same pattern the sweep
//     executor uses), drive the claim/assign/reassign state machine, merge.
//   - Serve / TrialFactory / DayTrial: the worker side — a frame loop over
//     stdin/stdout that compiles the broadcast spec into each day's trial
//     and folds claimed shards through experiment.FoldShard.
//   - EncodeShard / DecodeShard: the versioned wire envelope for one
//     shard's (TrialAcc, Dataset) pair; version or shape mismatches are
//     rejected loudly rather than folded into a wrong answer.
//   - ParseFault / EnvFault: the PUFFER_DIST_FAULT test hook that makes a
//     worker exit (or hang) mid-shard on a shard's first attempt, proving
//     reassignment keeps results byte-identical.
//
// Robustness is part of the subsystem, not a follow-on: a worker that dies
// or hangs (per-shard deadline) is killed and replaced, and its claimed
// shard is reassigned — safe because a shard is a pure function of
// (spec, seed, day, shard). Fleet health is observable live through the
// dist_* counters/gauges and the worker lifecycle events.
package dist
