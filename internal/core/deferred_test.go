package core

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/media"
)

// stagedObs builds one mid-stream observation with a 10-rung ladder.
func stagedObs(rng *rand.Rand) *abr.Observation {
	horizon := make([]media.Chunk, 5)
	for i := range horizon {
		vs := make([]media.Encoding, 10)
		for q := range vs {
			vs[q] = media.Encoding{Size: float64(q+1) * 2e5, SSIMdB: 10 + float64(q)}
		}
		horizon[i] = media.Chunk{Index: i, Versions: vs}
	}
	hist := make([]abr.ChunkRecord, abr.HistoryLen)
	for i := range hist {
		size := 3e5 + rng.Float64()*1e6
		hist[i] = abr.ChunkRecord{Size: size, TransTime: size * 8 / 8e6, SSIMdB: 13, Quality: 4}
	}
	return &abr.Observation{
		ChunkIndex: len(hist), Buffer: rng.Float64() * 15, BufferCap: 15,
		LastQuality: 4, LastSSIM: 13, History: hist, Horizon: horizon,
	}
}

// runPending executes staged steps the way an inference service would: one
// PredictDistBatch per step through the step's net, then Finish.
func runPending(d *DeferredPredictor) {
	for _, ps := range d.Pending() {
		probs := make([]float64, ps.Rows*abr.NumBins)
		ws := ps.Net.NewBatchWorkspace(ps.Rows)
		ps.Net.PredictDistBatch(ws, ps.Feats, ps.Rows, probs)
		ps.Finish(probs)
	}
	d.Clear()
}

// TestDeferredPredictorMatchesDirect: staging + external execution must
// produce bitwise-identical distributions to the direct batched path, for
// every TTP kind and prediction mode.
func TestDeferredPredictorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kinds := []struct {
		name string
		kind Kind
		mode Mode
	}{
		{"transtime-prob", KindTransTime, ModeProbabilistic},
		{"transtime-point", KindTransTime, ModePointEstimate},
		{"throughput-prob", KindThroughput, ModeProbabilistic},
	}
	for _, k := range kinds {
		ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), k.kind)
		direct := NewPredictor(ttp, k.mode)
		deferred := NewDeferredPredictor(NewPredictor(ttp, k.mode))
		for trial := 0; trial < 10; trial++ {
			obs := stagedObs(rng)
			sizes := make([]float64, 10)
			for q := range sizes {
				sizes[q] = obs.Horizon[0].Versions[q].Size
			}
			for step := 0; step < DefaultHorizon+1; step++ { // +1 exercises clamping
				want := make([]float64, len(sizes)*abr.NumBins)
				direct.PredictDistBatch(obs, step, sizes, want)
				got := make([]float64, len(sizes)*abr.NumBins)
				deferred.PredictDistBatch(obs, step, sizes, got)
				deferred.PredictDistBatch(obs, step, sizes, got) // restage: last wins after Clear cycle below
				deferred.Clear()
				deferred.PredictDistBatch(obs, step, sizes, got)
				runPending(deferred)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("%s step %d: dist[%d] = %v, want %v", k.name, step, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestDeferredFuguDecisionsMatch: a whole Fugu controller driven through
// the deferred split (stage, execute pending, finish) must pick the same
// rungs as the direct controller.
func TestDeferredFuguDecisionsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	direct := NewFugu(ttp)
	split := NewFugu(ttp)
	dp := NewDeferredPredictor(split.Pred.(*Predictor))
	split.Pred = dp
	for trial := 0; trial < 25; trial++ {
		obs := stagedObs(rng)
		want := direct.Choose(obs)
		split.PrepareChoose(obs)
		runPending(dp)
		got := split.FinishChoose(obs)
		if want != got {
			t.Fatalf("trial %d: direct chose %d, deferred chose %d", trial, want, got)
		}
	}
}
