// Package netem models the network paths Puffer's clients sit behind — the
// half of the paper's argument that lives below TCP. It provides the
// capacity traces, the per-session path distributions ("families"), and the
// nonstationarity machinery that lets the simulated deployment drift under
// a deployed model.
//
// A Trace is a piecewise-constant bottleneck capacity over time. Three
// trace families reproduce the distributional contrast at the heart of the
// paper (§5.2, Figure 2, Figure 11 right panel):
//
//   - Puffer-like (GenPuffer, PufferPaths): what the deployment sees —
//     per-session mean throughput drawn from a heavy-tailed distribution,
//     within-session regime switching with autocorrelated variation, and
//     occasional deep outages (the heavy tail that defeats
//     emulator-trained models).
//   - FCC-like (GenFCC, FCCPaths): what the mahimahi emulation setup
//     replays — bounded, smoother broadband traces with mild variation
//     behind a fixed 40 ms delay shell (§5.2's methodology).
//   - CS2P-like (GenCS2P, CS2PPaths): a small-state Markov throughput
//     process, reproducing the discrete throughput states of CS2P's
//     Figure 4a that Puffer does NOT observe (the paper's Figure 2
//     contrast).
//
// Main entry points:
//
//   - Trace: the capacity series (RateAt, Mean, Validate, CSV round-trip);
//     generators GenPuffer/GenFCC/GenCS2P with their *TraceConfig types.
//   - Sampler: draws a per-session Path (trace + base RTT + queue
//     capacity) from a family; implemented by PufferPaths, FCCPaths,
//     CS2PPaths.
//   - DaySampler / SampleForDay: day-indexed sampling. The continual
//     experiment passes the simulated day to the sampler, so a day-aware
//     family draws each day's sessions from that day's distribution;
//     stationary samplers ignore the day.
//   - DriftingSampler / DriftSchedule / DriftPreset: nonstationarity. A
//     DriftingSampler wraps any base Sampler with a schedule that evolves
//     the population over days — compounding capacity decay, session
//     spread widening, slow-path share growth, outage-rate ramps, and
//     piecewise-linear mixes toward a second family. Deterministic per
//     (seed, day); a zero schedule is draw-for-draw identical to the base
//     sampler. This is what makes the paper's staleness argument visible:
//     in a drifting deployment a frozen model meets paths its training
//     data never contained (the Figure-9-style drift the stationary
//     simulator cannot show).
package netem
