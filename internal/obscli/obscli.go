// Package obscli wires the obs package into a command line: the shared
// -obs-listen / -obs-dump / -cpuprofile / -memprofile flags and their
// lifecycle (enable recording, bind the endpoint, start the profile before
// the run; stop, dump, and close after). Every CLI registers the same
// flags with the same semantics, so the worked examples in the README hold
// for all of them.
package obscli

import (
	"flag"

	"puffer/internal/obs"
)

// Options are the shared observability flags. Zero values mean "off"; any
// non-zero value turns metric recording on for the process.
type Options struct {
	// Listen serves the live metrics + pprof endpoint on this address for
	// the duration of the run (e.g. 127.0.0.1:9090).
	Listen string
	// Dump writes the final metrics snapshot as canonical JSON to this
	// file at exit.
	Dump string
	// CPUProfile profiles the whole run into this file.
	CPUProfile string
	// MemProfile writes a heap profile (post-GC live objects) at exit.
	MemProfile string
	// TraceOut installs a span tracer for the run and writes its ring to
	// this file at exit (Chrome trace-event JSON; Perfetto-loadable).
	TraceOut string
	// TraceJSONL switches TraceOut to one-span-per-line JSONL.
	TraceJSONL bool
	// TraceSample traces 1-in-N sessions (deterministic per session id).
	// 0 defaults to 1 (trace everything) when TraceOut is set; setting it
	// without TraceOut installs the tracer for /trace.json scraping only.
	TraceSample uint64
}

// Register installs the shared flags on fs.
func (o *Options) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Listen, "obs-listen", "", "serve live metrics and pprof on this address for the run (host:port; empty = off); never changes results")
	fs.StringVar(&o.Dump, "obs-dump", "", "write the final metrics snapshot as JSON to this file at exit (path; empty = off)")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile of the whole run to this file (path; empty = off)")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile (post-GC) to this file at exit (path; empty = off)")
	fs.StringVar(&o.TraceOut, "trace-out", "", "record decision spans and write them to this file at exit as Chrome trace-event JSON (path; empty = off); never changes results")
	fs.BoolVar(&o.TraceJSONL, "trace-jsonl", false, "write -trace-out as one-span-per-line JSONL instead of Chrome trace-event JSON")
	fs.Uint64Var(&o.TraceSample, "trace-sample", 0, "trace 1-in-N sessions, chosen deterministically per session id (0 = 1 = every session); with no -trace-out the ring is still scrapable at /trace.json")
}

// Any reports whether any observability output was requested.
func (o *Options) Any() bool {
	return o.Listen != "" || o.Dump != "" || o.CPUProfile != "" || o.MemProfile != "" || o.Tracing()
}

// Tracing reports whether a span tracer was requested.
func (o *Options) Tracing() bool {
	return o.TraceOut != "" || o.TraceSample > 0
}

// Start turns the requested hooks on and returns the teardown to defer
// around the run: it stops the CPU profile, writes the heap profile, dumps
// the snapshot, and closes the endpoint — in that order, so the dump and
// the profile cover the whole run. extraEnable additionally turns metric
// recording on (a CLI passes true when some output of its own — an event
// log — wants the registry live). Teardown failures are reported through
// logf: observability must never fail a finished run.
func (o *Options) Start(extraEnable bool, logf func(format string, args ...any)) (stop func(), err error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.Any() || extraEnable {
		obs.SetEnabled(true)
	}
	var tracer *obs.Tracer
	if o.Tracing() {
		tracer = obs.NewTracer(o.TraceSample, 0)
		obs.SetTracer(tracer)
	}
	var srv *obs.Server
	if o.Listen != "" {
		if srv, err = obs.Serve(o.Listen, obs.Default); err != nil {
			return nil, err
		}
		logf("obs: serving metrics and pprof on http://%s", srv.Addr)
	}
	var stopCPU func() error
	if o.CPUProfile != "" {
		if stopCPU, err = obs.StartCPUProfile(o.CPUProfile); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				logf("obs: %v", err)
			}
		}
		if o.MemProfile != "" {
			if err := obs.WriteHeapProfile(o.MemProfile); err != nil {
				logf("obs: %v", err)
			}
		}
		if o.Dump != "" {
			if err := obs.DumpFile(o.Dump, obs.Default); err != nil {
				logf("obs: %v", err)
			}
		}
		if tracer != nil && o.TraceOut != "" {
			if err := obs.DumpTraceFile(o.TraceOut, obs.TraceProc(), tracer, o.TraceJSONL); err != nil {
				logf("obs: %v", err)
			} else {
				logf("obs: wrote %d spans to %s (%d overwritten by the ring)",
					tracer.Total()-tracer.Dropped(), o.TraceOut, tracer.Dropped())
			}
		}
		if err := srv.Close(); err != nil {
			logf("obs: closing endpoint: %v", err)
		}
	}, nil
}
