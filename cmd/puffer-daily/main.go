// Command puffer-daily runs the in-situ continual experiment from a
// declarative scenario spec: each day a randomized trial collects telemetry
// from the deployed schemes, and a nightly phase warm-start-retrains Fugu's
// TTP on a sliding window of recent days and rotates the new model in for
// the next day. With retraining on it also runs the frozen-model staleness
// ablation (the paper's "Fugu-Feb" comparison, §4.6) on the same seed and
// prints both side by side, including the per-day frozen-vs-retrained
// stall gap.
//
// Every experiment is a scenario.Spec. The base spec comes from -scenario
// (a registered name or a committed .json file); every other flag is an
// override applied on top, so the historical flag-only invocations still
// work unchanged — they override the default spec:
//
//	puffer-daily -list-scenarios                     # what's on the menu
//	puffer-daily -scenario drift-shift               # run a named scenario
//	puffer-daily -scenario drift-shift -sessions 800 # ...with one override
//	puffer-daily -scenario nightly.json              # run a committed spec
//	puffer-daily -scenario fleet-burst -dump-scenario > burst.json
//	puffer-daily -days 4 -drift shift                # flag-only, as always
//	puffer-daily -engine fleet -arrival-rate 2       # concurrent serving
//	puffer-daily -dist-workers 4                     # worker-process shards
//
// -dump-scenario prints the effective fully-defaulted spec as canonical
// JSON: commit it, diff it, edit it, and re-run it byte-identically. The
// spec's guard hash pins checkpoint directories (-checkpoint), so resuming
// under a different experiment is rejected with both specs in the error.
// PUFFER_SCENARIO_SCALE (e.g. 0.05) shrinks days/sessions/epochs for smoke
// runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"puffer/internal/experiment"
	"puffer/internal/netem"
	"puffer/internal/obs"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-daily: ")
	if len(os.Args) > 1 && os.Args[1] == distWorkerFlag {
		if err := scenario.ServeDistWorker(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

// run is the whole command behind a single error return, so the
// observability teardown (profile stop, snapshot dump, endpoint close)
// always executes — log.Fatal would skip the defers.
func run(args []string) error {
	cli, err := parseCLI(args)
	if err != nil {
		return err
	}

	if cli.list {
		return scenario.WriteListings(os.Stdout, cli.jsonOut)
	}

	spec := cli.spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	if cli.dump {
		os.Stdout.Write(spec.CanonicalJSON())
		return nil
	}
	spec = scenario.ScaleFromEnv(spec)

	logf := log.Printf
	if cli.quiet {
		logf = func(string, ...any) {}
	}

	var events *obs.EventLog
	if cli.obsEvents != "" {
		if events, err = obs.OpenEventLog(cli.obsEvents); err != nil {
			return err
		}
		defer events.Close()
	}
	stopObs, err := cli.obs.Start(events != nil, logf)
	if err != nil {
		return err
	}
	defer stopObs()

	if sched, err := spec.Schedule(); err == nil && !sched.IsZero() {
		logf("drift schedule: %s", sched.Signature())
	}

	var distCmd []string
	if spec.Engine.Kind == "dist" {
		if distCmd, err = distWorkerCommand(); err != nil {
			return err
		}
	}
	out, err := scenario.Run(spec, scenario.RunOptions{
		Workers:          cli.workers,
		CheckpointDir:    cli.checkpoint,
		DistCommand:      distCmd,
		DistShardTimeout: cli.distTimeout,
		Logf:             logf,
		Events:           events,
	})
	if err != nil {
		return err
	}

	printRun(os.Stdout, runLabel(*out.Spec.Daily.Retrain), out.Result)
	if out.Frozen != nil {
		printRun(os.Stdout, runLabel(false), out.Frozen)
		printComparison(os.Stdout, out.Result, out.Frozen, &out.Schedule)
	}
	return nil
}

func runLabel(retrain bool) string {
	if retrain {
		return "daily retraining"
	}
	return "frozen day-0 model"
}

// fuguRow finds the pooled Fugu arm of a run.
func fuguRow(res *runner.Result) (experiment.SchemeStats, bool) {
	for _, r := range res.Total {
		if r.Name == "Fugu" {
			return r, true
		}
	}
	return experiment.SchemeStats{}, false
}

func printRun(w *os.File, label string, res *runner.Result) {
	fmt.Fprintf(w, "\nContinual experiment (%s)\n", label)
	fmt.Fprintf(w, "%-4s %-14s %22s %10s %9s %10s\n",
		"Day", "Arm", "Stalled% [95% CI]", "SSIM dB", "Streams", "Retrain")
	for _, ds := range res.Days {
		night := "-"
		if ds.Retrained {
			night = fmt.Sprintf("%.3f", ds.Loss[0])
		}
		for i, r := range ds.Schemes {
			dayCol, nightCol := "", ""
			if i == 0 {
				dayCol, nightCol = fmt.Sprintf("%d", ds.Day), night
			}
			fmt.Fprintf(w, "%-4s %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d %10s\n",
				dayCol, r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
				r.SSIM.Point, r.Considered, nightCol)
		}
	}
	fmt.Fprintf(w, "Pooled over all days:\n")
	for _, r := range res.Total {
		fmt.Fprintf(w, "     %-14s %7.3f%% [%.3f, %.3f] %7.2f %9d\n",
			r.Name, 100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
			r.SSIM.Point, r.Considered)
	}
}

// printComparison is the §4.6 staleness readout: the Fugu arm under daily
// retraining vs under the frozen day-0 model, on the same seed. Sessions
// are seed-paired, so the per-day gap isolates what the two models decided
// differently; under a drift schedule the table shows it widening as the
// path population moves away from the frozen model's training data.
func printComparison(w *os.File, retrained, frozen *runner.Result, sched *netem.DriftSchedule) {
	a, okA := fuguRow(retrained)
	b, okB := fuguRow(frozen)
	if !okA || !okB {
		fmt.Fprintf(w, "\nstaleness comparison unavailable (missing Fugu arm)\n")
		return
	}
	fmt.Fprintf(w, "\nStaleness ablation (Fugu arm, same seed — sessions are paired)\n")
	fmt.Fprintf(w, "%-4s %12s %12s %9s  %s\n", "Day", "Retrained%", "Frozen%", "Gap pp", "Drift")
	grew, lastGap := true, 0.0
	for _, g := range runner.StalenessGaps(retrained, frozen, "Fugu") {
		if !g.Present {
			fmt.Fprintf(w, "%-4d %12s %12s %9s  (no Fugu arm: bootstrap day)\n", g.Day, "-", "-", "-")
			continue
		}
		if g.Day >= 2 && g.Gap <= lastGap {
			grew = false
		}
		lastGap = g.Gap
		fmt.Fprintf(w, "%-4d %11.3f%% %11.3f%% %+9.3f  %s\n",
			g.Day, 100*g.Retrained, 100*g.Frozen, 100*g.Gap, sched.Describe(g.Day))
	}

	fmt.Fprintf(w, "\nPooled over all days:\n")
	fmt.Fprintf(w, "%-22s %22s %10s\n", "Model", "Stalled% [95% CI]", "SSIM dB")
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Daily-retrained",
		100*a.StallRatio.Point, 100*a.StallRatio.Lo, 100*a.StallRatio.Hi, a.SSIM.Point)
	fmt.Fprintf(w, "%-22s %7.3f%% [%.3f, %.3f] %7.2f\n", "Frozen (day 0)",
		100*b.StallRatio.Point, 100*b.StallRatio.Lo, 100*b.StallRatio.Hi, b.SSIM.Point)
	switch {
	case !sched.IsZero() && a.StallRatio.Point < b.StallRatio.Point && grew:
		fmt.Fprintf(w, "Under drift the frozen model falls behind and the gap widens every day: the in-situ retraining claim, visible.\n")
	case !sched.IsZero() && a.StallRatio.Point < b.StallRatio.Point:
		fmt.Fprintf(w, "Under drift the frozen model stalls more overall, though the per-day gap is not yet monotone (more days/sessions sharpen it).\n")
	case a.StallRatio.Point <= b.StallRatio.Point && a.StallRatio.Overlaps(b.StallRatio):
		fmt.Fprintf(w, "Retrained stall ratio <= frozen, CIs overlap: retraining helps or ties (the paper found ties in a stationary deployment).\n")
	case a.StallRatio.Point <= b.StallRatio.Point:
		fmt.Fprintf(w, "Retrained stall ratio <= frozen with non-overlapping CIs: retraining clearly helped.\n")
	default:
		fmt.Fprintf(w, "Frozen model stalled less in this run; with overlapping CIs this is statistical noise (see -sessions).\n")
	}
}
