package nn

import "math"

// Softmax writes the softmax of logits into dst (which must be the same
// length) using the max-subtraction trick for numerical stability.
func Softmax(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic("nn: Softmax length mismatch")
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	inv := 1.0 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float64) float64 {
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(x []float64) int {
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nn: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Entropy returns the Shannon entropy (nats) of the distribution p.
// Zero-probability entries contribute zero.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Mean returns the arithmetic mean of x; zero for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
