package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// VideoSent is recorded every time the server sends a video chunk: chunk
// identity, size and quality, and the sender-side tcp_info snapshot.
type VideoSent struct {
	Time       float64 // seconds since experiment epoch
	SessionID  int
	StreamID   int
	ExptID     string // experimental group (scheme name)
	ChunkIndex int
	Quality    int     // ladder rung
	Size       float64 // bytes
	SSIMdB     float64
	// tcp_info fields, as in the open data:
	CWND         float64 // packets
	InFlight     float64 // packets
	MinRTT       float64 // seconds
	RTT          float64 // seconds
	DeliveryRate float64 // bits/s
}

// VideoAcked is recorded when the client acknowledges a chunk; matched with
// VideoSent it yields the chunk's transmission time.
type VideoAcked struct {
	Time       float64
	SessionID  int
	StreamID   int
	ChunkIndex int
}

// ClientBuffer is the client's periodic/event buffer report.
type ClientBuffer struct {
	Time      float64
	SessionID int
	StreamID  int
	Event     string // "startup", "play", "rebuffer", "timer"
	Buffer    float64
	CumRebuf  float64
}

// StreamSummary is the per-stream digest used in every analysis.
type StreamSummary struct {
	SessionID int
	StreamID  int
	Scheme    string

	// PathMeanRate is the session's mean TCP delivery rate (bits/s);
	// the paper's "slow path" cut is PathMeanRate < 6 Mbit/s.
	PathMeanRate float64

	StartupDelay float64 // seconds; 0 if never played
	PlayTime     float64 // seconds of video actually played
	StallTime    float64 // seconds stalled (excludes startup)
	Chunks       int

	SSIMMean       float64 // mean SSIM (dB) over played chunks
	SSIMVar        float64 // mean |ΔSSIM| (dB) between consecutive chunks
	MeanBitrate    float64 // bits/s of delivered video
	FirstChunkSSIM float64

	NeverPlayed bool // excluded: stream never began playing
	BadDecoder  bool // excluded: client-side decoder too slow
}

// WatchTime is the stream's total watch time: played plus stalled time,
// the denominator convention for time spent stalled.
func (s StreamSummary) WatchTime() float64 { return s.PlayTime + s.StallTime }

// StallRatio is the stream's own stall fraction; aggregate analyses use
// total-stall/total-watch across streams instead (see the stats package).
func (s StreamSummary) StallRatio() float64 {
	w := s.WatchTime()
	if w <= 0 {
		return 0
	}
	return s.StallTime / w
}

// Eligible reports whether the stream enters the primary analysis: it began
// playing, watched at least 4 seconds, and did not hit the slow-decoder
// exclusion — the CONSORT criteria of Figure A1.
func (s StreamSummary) Eligible() bool {
	return !s.NeverPlayed && !s.BadDecoder && s.WatchTime() >= 4
}

// SlowPath reports whether the stream sits on a "slow" network path, the
// paper's < 6 Mbit/s mean delivery-rate cut used in Figure 8.
func (s StreamSummary) SlowPath() bool { return s.PathMeanRate < 6e6 }

// SummaryBuilder incrementally computes a StreamSummary from per-chunk
// events, so the streamer does not retain per-chunk slices.
type SummaryBuilder struct {
	s         StreamSummary
	prevSSIM  float64
	havePrev  bool
	ssimSum   float64
	deltaSum  float64
	deltas    int
	byteSum   float64
	rateSum   float64
	rateCount int
}

// NewSummaryBuilder starts a summary for one stream.
func NewSummaryBuilder(sessionID, streamID int, scheme string) *SummaryBuilder {
	return &SummaryBuilder{s: StreamSummary{SessionID: sessionID, StreamID: streamID, Scheme: scheme}}
}

// Chunk records one delivered chunk.
func (b *SummaryBuilder) Chunk(ssim float64, sizeBytes float64, deliveryRate float64) {
	if b.s.Chunks == 0 {
		b.s.FirstChunkSSIM = ssim
	}
	b.s.Chunks++
	b.ssimSum += ssim
	b.byteSum += sizeBytes
	if b.havePrev {
		d := ssim - b.prevSSIM
		if d < 0 {
			d = -d
		}
		b.deltaSum += d
		b.deltas++
	}
	b.prevSSIM = ssim
	b.havePrev = true
	if deliveryRate > 0 {
		b.rateSum += deliveryRate
		b.rateCount++
	}
}

// Finish completes the summary with playback totals.
func (b *SummaryBuilder) Finish(startup, playTime, stallTime float64, neverPlayed, badDecoder bool) StreamSummary {
	s := b.s
	s.StartupDelay = startup
	s.PlayTime = playTime
	s.StallTime = stallTime
	s.NeverPlayed = neverPlayed
	s.BadDecoder = badDecoder
	if s.Chunks > 0 {
		s.SSIMMean = b.ssimSum / float64(s.Chunks)
	}
	if b.deltas > 0 {
		s.SSIMVar = b.deltaSum / float64(b.deltas)
	}
	if playTime > 0 {
		s.MeanBitrate = b.byteSum * 8 / (float64(s.Chunks) * chunkDurApprox)
	}
	if b.rateCount > 0 {
		s.PathMeanRate = b.rateSum / float64(b.rateCount)
	}
	return s
}

// chunkDurApprox converts chunk counts to seconds for bitrate accounting.
const chunkDurApprox = 2.002

// WriteSummariesCSV writes stream summaries with a header row.
func WriteSummariesCSV(w io.Writer, sums []StreamSummary) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "session_id,stream_id,scheme,path_mean_rate_bps,startup_s,play_s,stall_s,chunks,ssim_mean_db,ssim_var_db,mean_bitrate_bps,first_chunk_ssim_db,never_played,bad_decoder"); err != nil {
		return err
	}
	for _, s := range sums {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%.0f,%.3f,%.3f,%.3f,%d,%.4f,%.4f,%.0f,%.4f,%t,%t\n",
			s.SessionID, s.StreamID, s.Scheme, s.PathMeanRate, s.StartupDelay, s.PlayTime, s.StallTime,
			s.Chunks, s.SSIMMean, s.SSIMVar, s.MeanBitrate, s.FirstChunkSSIM, s.NeverPlayed, s.BadDecoder); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSummariesCSV parses the output of WriteSummariesCSV.
func ReadSummariesCSV(r io.Reader) ([]StreamSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []StreamSummary
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "session_id") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 14 {
			return nil, fmt.Errorf("telemetry: line %d: want 14 fields, got %d", line, len(f))
		}
		var s StreamSummary
		var err error
		parseInt := func(v string) int {
			if err != nil {
				return 0
			}
			var n int
			n, err = strconv.Atoi(v)
			return n
		}
		parseF := func(v string) float64 {
			if err != nil {
				return 0
			}
			var x float64
			x, err = strconv.ParseFloat(v, 64)
			return x
		}
		parseB := func(v string) bool {
			if err != nil {
				return false
			}
			var b bool
			b, err = strconv.ParseBool(v)
			return b
		}
		s.SessionID = parseInt(f[0])
		s.StreamID = parseInt(f[1])
		s.Scheme = f[2]
		s.PathMeanRate = parseF(f[3])
		s.StartupDelay = parseF(f[4])
		s.PlayTime = parseF(f[5])
		s.StallTime = parseF(f[6])
		s.Chunks = parseInt(f[7])
		s.SSIMMean = parseF(f[8])
		s.SSIMVar = parseF(f[9])
		s.MeanBitrate = parseF(f[10])
		s.FirstChunkSSIM = parseF(f[11])
		s.NeverPlayed = parseB(f[12])
		s.BadDecoder = parseB(f[13])
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading summaries: %w", err)
	}
	return out, nil
}

// Log collects full-resolution measurement rows for small runs and the data
// release formats. Large experiments summarize instead of logging.
type Log struct {
	Sent   []VideoSent
	Acked  []VideoAcked
	Buffer []ClientBuffer
}

// WriteVideoSentCSV writes the video_sent table.
func (l *Log) WriteVideoSentCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,session_id,stream_id,expt_id,chunk_index,quality,size,ssim_db,cwnd,in_flight,min_rtt,rtt,delivery_rate"); err != nil {
		return err
	}
	for _, v := range l.Sent {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d,%s,%d,%d,%.0f,%.4f,%.1f,%.1f,%.6f,%.6f,%.0f\n",
			v.Time, v.SessionID, v.StreamID, v.ExptID, v.ChunkIndex, v.Quality, v.Size, v.SSIMdB,
			v.CWND, v.InFlight, v.MinRTT, v.RTT, v.DeliveryRate); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteVideoAckedCSV writes the video_acked table.
func (l *Log) WriteVideoAckedCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,session_id,stream_id,chunk_index"); err != nil {
		return err
	}
	for _, v := range l.Acked {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d,%d\n", v.Time, v.SessionID, v.StreamID, v.ChunkIndex); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteClientBufferCSV writes the client_buffer table.
func (l *Log) WriteClientBufferCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,session_id,stream_id,event,buffer,cum_rebuf"); err != nil {
		return err
	}
	for _, v := range l.Buffer {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d,%s,%.3f,%.3f\n", v.Time, v.SessionID, v.StreamID, v.Event, v.Buffer, v.CumRebuf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
