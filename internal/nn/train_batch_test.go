package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainFixture builds a net pair (identical weights) plus a labeled,
// weighted corpus. Zero weights are sprinkled in to exercise the skip path.
func trainFixture(rng *rand.Rand, sizes []int, n int) (a, b *MLP, xs [][]float64, labels []int, weights []float64) {
	a = NewMLP(rng, sizes...)
	b = a.Clone()
	nIn, nOut := a.InputSize(), a.OutputSize()
	for s := 0; s < n; s++ {
		x := make([]float64, nIn)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xs = append(xs, x)
		labels = append(labels, rng.Intn(nOut))
		w := rng.Float64() * 2
		if s%7 == 3 {
			w = 0
		}
		weights = append(weights, w)
	}
	return a, b, xs, labels, weights
}

// TestTrainClassBatchMatchesPerSample: the batched minibatch step must leave
// bitwise-identical weights, optimizer state effects, and losses compared
// with the per-sample reference, across optimizers, shapes, weighted and
// uniform batches, and multi-step trajectories.
func TestTrainClassBatchMatchesPerSample(t *testing.T) {
	shapes := [][]int{
		{22, 64, 64, 21},
		{5, 21},
		{7, 3, 2},
		{9, 8, 8, 8, 4},
	}
	rng := rand.New(rand.NewSource(99))
	for _, sizes := range shapes {
		for _, uniform := range []bool{false, true} {
			a, b, xs, labels, weights := trainFixture(rng, sizes, 53)
			if uniform {
				weights = nil
			}
			ta := NewTrainer(a, &Adam{LR: 1e-3})
			tb := NewTrainer(b, &Adam{LR: 1e-3})
			for step := 0; step < 5; step++ {
				// Vary the batch size so remainder batches are hit too.
				lo, hi := (step*13)%len(xs), len(xs)
				var w []float64
				if weights != nil {
					w = weights[lo:hi]
				}
				lossA := ta.TrainClassBatch(xs[lo:hi], labels[lo:hi], w)
				lossB := tb.trainClassPerSample(xs[lo:hi], labels[lo:hi], w)
				if math.Float64bits(lossA) != math.Float64bits(lossB) {
					t.Fatalf("shape %v uniform=%v step %d: loss %v vs %v", sizes, uniform, step, lossA, lossB)
				}
			}
			for l := range a.W {
				for i := range a.W[l] {
					if math.Float64bits(a.W[l][i]) != math.Float64bits(b.W[l][i]) {
						t.Fatalf("shape %v uniform=%v: W[%d][%d] diverged: %v vs %v",
							sizes, uniform, l, i, a.W[l][i], b.W[l][i])
					}
				}
				for i := range a.B[l] {
					if math.Float64bits(a.B[l][i]) != math.Float64bits(b.B[l][i]) {
						t.Fatalf("shape %v uniform=%v: B[%d][%d] diverged", sizes, uniform, l, i)
					}
				}
			}
		}
	}
}

// TestTrainClassBatchSGDMomentum repeats the differential check under SGD
// with momentum and weight decay, whose step reads gradients differently.
func TestTrainClassBatchSGDMomentum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b, xs, labels, weights := trainFixture(rng, []int{12, 16, 8}, 40)
	ta := NewTrainer(a, &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4})
	tb := NewTrainer(b, &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4})
	for step := 0; step < 8; step++ {
		lossA := ta.TrainClassBatch(xs, labels, weights)
		lossB := tb.trainClassPerSample(xs, labels, weights)
		if math.Float64bits(lossA) != math.Float64bits(lossB) {
			t.Fatalf("step %d: loss %v vs %v", step, lossA, lossB)
		}
	}
	for l := range a.W {
		for i := range a.W[l] {
			if math.Float64bits(a.W[l][i]) != math.Float64bits(b.W[l][i]) {
				t.Fatalf("W[%d][%d] diverged after momentum steps", l, i)
			}
		}
	}
}

// BenchmarkTrainEpoch measures one epoch of TTP-shaped minibatch training
// (64-sample batches, weighted) through the batched path and the per-sample
// reference — the before/after ns/epoch for the nightly retraining phase.
func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const n, batch = 1024, 64
	net := NewMLP(rng, 22, 64, 64, 21)
	xs := make([][]float64, n)
	labels := make([]int, n)
	weights := make([]float64, n)
	for s := range xs {
		x := make([]float64, 22)
		for i := range x {
			x[i] = rng.Float64()
		}
		xs[s] = x
		labels[s] = rng.Intn(21)
		weights[s] = 0.5 + rng.Float64()
	}
	epoch := func(tr *Trainer, step func([][]float64, []int, []float64) float64) {
		for at := 0; at < n; at += batch {
			step(xs[at:at+batch], labels[at:at+batch], weights[at:at+batch])
		}
	}
	b.Run("batched", func(b *testing.B) {
		tr := NewTrainer(net.Clone(), &Adam{LR: 1e-3})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			epoch(tr, tr.TrainClassBatch)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/epoch")
	})
	b.Run("per-sample", func(b *testing.B) {
		tr := NewTrainer(net.Clone(), &Adam{LR: 1e-3})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			epoch(tr, tr.trainClassPerSample)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/epoch")
	})
}
