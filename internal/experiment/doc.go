// Package experiment implements the Puffer study itself (§2-3): the
// per-stream simulation loop (ABR decision → TCP transfer → playback buffer
// → viewer behavior), session structure with channel changes over one TCP
// connection, blinded randomized assignment of sessions to schemes,
// CONSORT exclusion accounting (Figure A1), telemetry collection for TTP
// training, and the per-scheme analysis with bootstrap confidence intervals
// (Figures 1 and 8).
//
// Sessions are deterministic given (Config, session id): each session's own
// RNG makes the blinded arm assignment as its first draw and then drives
// the whole simulation, so any partition of ids across workers or shards
// reproduces identical results. The session's experiment day is threaded to
// the path sampler (netem.SampleForDay), which is how a drifting
// environment gives each day its own path distribution.
//
// Main entry points:
//
//   - Env: the world a session runs in (paths, channels, ladder, viewer
//     model); DefaultEnv is the deployment, EmulationEnv the §5.2 testbed.
//   - Run with a Config: a randomized controlled trial over Schemes;
//     Config.RunOne simulates a single session for shard-level callers;
//     RunSession is the bare session loop.
//   - Analyze / SchemeStats: per-scheme statistics with bootstrap CIs;
//     AnalysisFilter selects the Figure 8 slow-path panel; Consort is the
//     Figure A1 accounting; EligibleStreams / SessionDurations feed the
//     CCDF figures.
//   - SchemeAcc / TrialAcc: mergeable accumulators — fold sessions in,
//     merge shards in order, bootstrap once on the merged state; Analyze
//     is a thin wrapper over them.
//   - Recorder / DatasetCollector / CollectDataset: the telemetry hook
//     that gathers TTP training data from a trial.
//   - DecideHook / RunOneHooked / RunSessionHooked: the decision
//     interception point the fleet engine parks sessions at; a nil hook
//     is byte-identical to the plain entry points.
package experiment
