package obscli

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestFlagWiringAcrossCLIs pins the contract the README's worked examples
// rely on: every CLI that registers Options honors -obs-dump, -cpuprofile,
// -memprofile, and -obs-listen with identical semantics — the teardown
// artifacts appear wherever the run exits cleanly, daemon or batch,
// subcommand or flat flags. One table, all five binaries.
func TestFlagWiringAcrossCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess flag-wiring sweep: skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"puffer/cmd/puffer-daily", "puffer/cmd/puffer-sweep", "puffer/cmd/figures",
		"puffer/cmd/puffer-serve", "puffer/cmd/puffer-load")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building CLIs: %v", err)
	}

	scratch := t.TempDir()
	sweepFile := filepath.Join(scratch, "tiny-sweep.json")
	if err := os.WriteFile(sweepFile, []byte(`{
		"name": "tiny",
		"base": {
			"daily": {"days": 2, "sessions": 8, "ablation": false},
			"model": {"hidden": [4], "horizon": 2},
			"train": {"epochs": 1},
			"shard_size": 4
		},
		"axes": [{"field": "seed", "values": [5]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		daemon bool // runs until signaled: wait for readiness, then SIGTERM
	}{
		{
			name: "puffer-daily",
			args: []string{"-days", "2", "-sessions", "8", "-epochs", "1", "-ablation=false", "-q"},
		},
		{
			name: "puffer-sweep",
			args: []string{"run", "-sweep", sweepFile,
				"-index", filepath.Join(scratch, "sweep-index.jsonl"), "-inprocess", "-q"},
		},
		{
			name: "figures",
			args: []string{"-fig", "5", "-q"},
		},
		{
			name:   "puffer-serve",
			args:   []string{"-day", "0", "-sessions", "8", "-listen", "127.0.0.1:0", "-q"},
			daemon: true,
		},
		{
			name: "puffer-load",
			args: []string{"-virtual", "-day", "0", "-sessions", "8", "-q"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			dump := filepath.Join(dir, "metrics.json")
			cpu := filepath.Join(dir, "cpu.prof")
			mem := filepath.Join(dir, "mem.prof")
			args := append(append([]string{}, tc.args...),
				"-obs-listen", "127.0.0.1:0", "-obs-dump", dump,
				"-cpuprofile", cpu, "-memprofile", mem)
			cmd := exec.Command(filepath.Join(bin, tc.name), args...)
			cmd.Stderr = os.Stderr
			if tc.daemon {
				out, err := cmd.StdoutPipe()
				if err != nil {
					t.Fatal(err)
				}
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				sc := bufio.NewScanner(out)
				if !sc.Scan() {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatal("daemon produced no readiness line")
				}
				go func() { // drain so the drain summary never blocks the pipe
					for sc.Scan() {
					}
				}()
				cmd.Process.Signal(syscall.SIGTERM)
				waitErr := make(chan error, 1)
				go func() { waitErr <- cmd.Wait() }()
				select {
				case err := <-waitErr:
					if err != nil {
						t.Fatalf("daemon exited %v on SIGTERM", err)
					}
				case <-time.After(30 * time.Second):
					cmd.Process.Kill()
					t.Fatal("daemon did not exit on SIGTERM")
				}
			} else if out, err := cmd.Output(); err != nil {
				t.Fatalf("%s %v failed: %v\noutput:\n%s", tc.name, args, err, out)
			}

			blob, err := os.ReadFile(dump)
			if err != nil {
				t.Fatalf("-obs-dump artifact: %v", err)
			}
			var snap map[string]any
			if err := json.Unmarshal(blob, &snap); err != nil {
				t.Fatalf("-obs-dump is not valid JSON: %v", err)
			}
			for _, key := range []string{"counters", "gauges", "histograms"} {
				if _, ok := snap[key]; !ok {
					t.Fatalf("-obs-dump snapshot missing %q section", key)
				}
			}
			for flagName, path := range map[string]string{"-cpuprofile": cpu, "-memprofile": mem} {
				st, err := os.Stat(path)
				if err != nil {
					t.Fatalf("%s artifact: %v", flagName, err)
				}
				if st.Size() == 0 {
					t.Fatalf("%s artifact is empty", flagName)
				}
			}
		})
	}
}
