package main

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"puffer/internal/scenario"
)

// TestMain gives the test binary the same hidden worker mode the installed
// binary has, so the dist tests exercise the production re-exec path: the
// coordinator under test launches this binary with -dist-worker and speaks
// the real protocol to it.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == distWorkerFlag {
		if err := scenario.ServeDistWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dist worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testWorkerCommand is the worker argv for tests: this test binary in
// worker mode (the TestMain hook above).
func testWorkerCommand() []string {
	return []string{os.Args[0], distWorkerFlag}
}

// distArgs are the shared tiny-scenario flags: 2 days, 4 shards per day,
// ablation off (the frozen companion would only double the runtime without
// adding coverage — the dist engine runs both arms identically).
var distArgs = []string{
	"-days", "2", "-sessions", "16", "-shard", "4",
	"-window", "2", "-epochs", "1", "-seed", "5", "-ablation=false",
}

// runScenario parses CLI args and runs the spec, returning the result
// fingerprint.
func runScenario(t *testing.T, args []string, opt scenario.RunOptions) []byte {
	t.Helper()
	cli, err := parseCLI(args)
	if err != nil {
		t.Fatal(err)
	}
	out, err := scenario.Run(cli.spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, out.Result)
}

// TestDistEngineByteIdentical: the same scenario through the session engine
// and through worker processes (-dist-workers) produces byte-identical day
// records, pooled totals, and final model bytes — with and without a
// worker killed mid-shard and its shard reassigned.
func TestDistEngineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) scenarios with worker subprocesses")
	}
	want := runScenario(t, distArgs, scenario.RunOptions{})

	distFlags := append(append([]string{}, distArgs...), "-dist-workers", "3")
	got := runScenario(t, distFlags, scenario.RunOptions{DistCommand: testWorkerCommand()})
	if !bytes.Equal(got, want) {
		t.Error("dist engine differs from the session engine")
	}

	// Same run with a worker killed mid-shard on day 1: the reassignment
	// must keep the result byte-identical, not merely successful.
	t.Setenv("PUFFER_DIST_FAULT", "kill-worker:day1:shard2")
	got = runScenario(t, distFlags, scenario.RunOptions{DistCommand: testWorkerCommand()})
	if !bytes.Equal(got, want) {
		t.Error("dist engine with a killed-and-reassigned worker differs from the session engine")
	}
}

// TestDistCoordinatorKillAndResume: a dist coordinator killed between days
// (simulated as a -days 1 run) resumes from its checkpoint and finishes
// byte-identical to an uninterrupted session-engine run — the checkpoint
// lineage is engine-agnostic because the engine block is outside the
// GuardHash. A worker fault during the resumed day rides along.
func TestDistCoordinatorKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) scenarios with worker subprocesses")
	}
	want := runScenario(t, distArgs, scenario.RunOptions{})

	ckpt := t.TempDir()
	distFlags := append(append([]string{}, distArgs...), "-dist-workers", "3")
	dayOne := append(append([]string{}, distFlags...), "-days", "1")
	runScenario(t, dayOne, scenario.RunOptions{DistCommand: testWorkerCommand(), CheckpointDir: ckpt})

	t.Setenv("PUFFER_DIST_FAULT", "kill-worker:day1:shard1")
	got := runScenario(t, distFlags, scenario.RunOptions{DistCommand: testWorkerCommand(), CheckpointDir: ckpt})
	if !bytes.Equal(got, want) {
		t.Error("resumed dist run differs from the uninterrupted session run")
	}
}

// TestDistWorkersFlagSelectsEngine: -dist-workers alone flips the spec to
// the dist engine, while an explicit -engine wins over it.
func TestDistWorkersFlagSelectsEngine(t *testing.T) {
	cli, err := parseCLI([]string{"-dist-workers", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cli.spec.Engine.Kind != "dist" || cli.spec.Engine.DistWorkers != 4 {
		t.Fatalf("spec engine = %+v, want dist with 4 workers", cli.spec.Engine)
	}
	cli, err = parseCLI([]string{"-dist-workers", "4", "-engine", "session"})
	if err != nil {
		t.Fatal(err)
	}
	if cli.spec.Engine.Kind != "session" {
		t.Fatalf("explicit -engine lost to -dist-workers: %+v", cli.spec.Engine)
	}
}
