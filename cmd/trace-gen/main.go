// Command trace-gen synthesizes network capacity traces from the study's
// three families and writes them as CSV, for use with external tools or for
// inspection.
//
//	trace-gen -family puffer -mean 12e6 -duration 600 -n 5 -dir traces/
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"puffer/internal/netem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace-gen: ")
	family := flag.String("family", "puffer", "trace family: puffer, fcc, or cs2p")
	mean := flag.Float64("mean", 10e6, "mean capacity, bits/sec")
	duration := flag.Float64("duration", 600, "trace duration, seconds")
	n := flag.Int("n", 1, "number of traces")
	seed := flag.Int64("seed", 1, "seed")
	dir := flag.String("dir", ".", "output directory")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	gen := func() *netem.Trace {
		switch *family {
		case "puffer":
			return netem.GenPuffer(rng, netem.DefaultPufferTraceConfig(*mean), *duration)
		case "fcc":
			return netem.GenFCC(rng, netem.DefaultFCCTraceConfig(*mean), *duration)
		case "cs2p":
			return netem.GenCS2P(rng, netem.DefaultCS2PTraceConfig(*mean), *duration)
		default:
			log.Fatalf("unknown -family %q (want puffer, fcc, or cs2p)", *family)
			return nil
		}
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *n; i++ {
		tr := gen()
		name := filepath.Join(*dir, fmt.Sprintf("%s-%02d.csv", *family, i))
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: mean %.2f Mbit/s, min %.2f Mbit/s, %d samples",
			name, tr.Mean()/1e6, tr.Min()/1e6, len(tr.Rate))
	}
}
