package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"puffer/internal/abr"
	"puffer/internal/nn"
)

// DefaultHorizon is the MPC lookahead (paper: H = 5, about 10 seconds).
const DefaultHorizon = 5

// DefaultHidden is the TTP's architecture: two hidden layers of 64 neurons
// (paper §4.5).
var DefaultHidden = []int{64, 64}

// Kind distinguishes what a predictor's output bins mean.
type Kind int

const (
	// KindTransTime is the real TTP: bins over transmission time.
	KindTransTime Kind = iota
	// KindThroughput is the ablation that predicts a throughput
	// distribution and converts to time via size/rate.
	KindThroughput
)

// TTP is the Transmission Time Predictor: one network per horizon step
// (the paper trains H separate nets in parallel; they are functionally
// equivalent to a single net with a time-step input).
type TTP struct {
	Cfg  FeatureConfig
	Kind Kind
	Nets []*nn.MLP
}

// NewTTP builds an untrained TTP with the given hidden-layer sizes (nil
// means DefaultHidden; an explicit empty slice gives the linear ablation).
func NewTTP(rng *rand.Rand, horizon int, hidden []int, cfg FeatureConfig, kind Kind) *TTP {
	if horizon < 1 {
		panic(fmt.Sprintf("core: horizon %d, must be >= 1", horizon))
	}
	if hidden == nil {
		hidden = DefaultHidden
	}
	sizes := append([]int{cfg.Dim()}, hidden...)
	sizes = append(sizes, abr.NumBins)
	t := &TTP{Cfg: cfg, Kind: kind, Nets: make([]*nn.MLP, horizon)}
	for i := range t.Nets {
		t.Nets[i] = nn.NewMLP(rng, sizes...)
	}
	return t
}

// Horizon returns the number of lookahead steps the TTP covers.
func (t *TTP) Horizon() int { return len(t.Nets) }

// Clone deep-copies the TTP (used to warm-start daily retraining).
func (t *TTP) Clone() *TTP {
	c := &TTP{Cfg: t.Cfg, Kind: t.Kind, Nets: make([]*nn.MLP, len(t.Nets))}
	for i, n := range t.Nets {
		c.Nets[i] = n.Clone()
	}
	return c
}

// Label returns the training label (output bin) for an observed chunk with
// the given size (bytes) and transmission time (seconds).
func (t *TTP) Label(size, transTime float64) int {
	if t.Kind == KindThroughput {
		if transTime <= 0 {
			return abr.NumBins - 1
		}
		return ThroughputBinIndex(size * 8 / transTime)
	}
	return abr.BinIndex(transTime)
}

// ttpModel is the gob wire format.
type ttpModel struct {
	Cfg  FeatureConfig
	Kind Kind
	Nets []*nn.MLP
}

// Save writes the TTP in gob format.
func (t *TTP) Save(w io.Writer) error {
	m := ttpModel{Cfg: t.Cfg, Kind: t.Kind, Nets: t.Nets}
	if err := gob.NewEncoder(w).Encode(&m); err != nil {
		return fmt.Errorf("core: encoding TTP: %w", err)
	}
	return nil
}

// Load reads a TTP written by Save.
func Load(r io.Reader) (*TTP, error) {
	var m ttpModel
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding TTP: %w", err)
	}
	if len(m.Nets) == 0 {
		return nil, fmt.Errorf("core: TTP model has no networks")
	}
	for i, net := range m.Nets {
		if net.InputSize() != m.Cfg.Dim() {
			return nil, fmt.Errorf("core: net %d input %d does not match feature dim %d", i, net.InputSize(), m.Cfg.Dim())
		}
		if net.OutputSize() != abr.NumBins {
			return nil, fmt.Errorf("core: net %d output %d, want %d bins", i, net.OutputSize(), abr.NumBins)
		}
		// Restore the contiguous parameter layout the batched forward
		// kernel prefers; gob decodes each layer separately.
		net.Pack()
	}
	return &TTP{Cfg: m.Cfg, Kind: m.Kind, Nets: m.Nets}, nil
}

// SaveFile writes the TTP to a file.
func (t *TTP) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := t.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: writing TTP file: %w", err)
	}
	return nil
}

// LoadFile reads a TTP from a file.
func LoadFile(path string) (*TTP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening TTP file: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Mode selects how the MPC consumes the TTP's output.
type Mode int

const (
	// ModeProbabilistic uses the full distribution (Fugu).
	ModeProbabilistic Mode = iota
	// ModePointEstimate collapses the distribution to its argmax bin —
	// the "Point Estimate" / maximum-likelihood ablation.
	ModePointEstimate
)

// Predictor adapts a TTP to the abr.Predictor and abr.BatchPredictor
// interfaces consumed by the MPC engine. The batch path assembles one
// feature matrix for all candidate sizes of a horizon step and runs a single
// batched forward pass per net; the scalar PredictDist is a thin wrapper
// over batch size 1, so both paths produce bitwise-identical distributions.
// Not safe for concurrent use; create one per stream.
type Predictor struct {
	TTP  *TTP
	Mode Mode

	// ws[step] is the batch workspace for Nets[step]; when every net has
	// the same shape (the normal case) all entries share one workspace.
	ws     []*nn.BatchWorkspace
	featM  []float64 // batch feature matrix, B × Cfg.Dim()
	probsM []float64 // raw network output, B × NumBins
	size1  []float64 // one-element size buffer for the scalar wrapper
}

// defaultPredictBatch is the batch capacity a fresh Predictor's buffers are
// sized for: one row per rung of the default encoding ladder. Larger
// batches grow the buffers once and reuse them afterwards.
const defaultPredictBatch = 10

// NewPredictor wraps a trained TTP.
func NewPredictor(t *TTP, mode Mode) *Predictor {
	p := &Predictor{TTP: t, Mode: mode}
	p.ws = make([]*nn.BatchWorkspace, len(t.Nets))
	shared := t.Nets[0].NewBatchWorkspace(defaultPredictBatch)
	for i, net := range t.Nets {
		if net.SameShape(t.Nets[0]) {
			p.ws[i] = shared
		} else {
			p.ws[i] = net.NewBatchWorkspace(defaultPredictBatch)
		}
	}
	p.featM = make([]float64, defaultPredictBatch*t.Cfg.Dim())
	p.probsM = make([]float64, defaultPredictBatch*abr.NumBins)
	p.size1 = make([]float64, 1)
	return p
}

// growFloats resizes s to n elements, reusing capacity when possible.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// clampStep maps an out-of-range horizon step to the last trained net.
func (p *Predictor) clampStep(step int) int {
	if step >= len(p.TTP.Nets) {
		return len(p.TTP.Nets) - 1
	}
	return step
}

// PredictDist implements abr.Predictor as a batch-of-one call.
func (p *Predictor) PredictDist(obs *abr.Observation, step int, size float64, dist []float64) {
	p.size1[0] = size
	p.PredictDistBatch(obs, step, p.size1, dist)
}

// PredictDistBatch implements abr.BatchPredictor: one feature-matrix
// assembly and one batched forward pass covers every candidate size of the
// horizon step.
func (p *Predictor) PredictDistBatch(obs *abr.Observation, step int, sizes []float64, dists []float64) {
	step = p.clampStep(step)
	b := len(sizes)
	if b == 0 {
		return
	}
	dim := p.TTP.Cfg.Dim()
	p.featM = growFloats(p.featM, b*dim)
	p.probsM = growFloats(p.probsM, b*abr.NumBins)
	p.TTP.Cfg.AssembleBatch(p.featM, obs.History, obs.TCP, sizes)
	p.TTP.Nets[step].PredictDistBatch(p.ws[step], p.featM, b, p.probsM)
	for r := 0; r < b; r++ {
		p.finishDist(dists[r*abr.NumBins:(r+1)*abr.NumBins],
			p.probsM[r*abr.NumBins:(r+1)*abr.NumBins], sizes[r])
	}
}

// finishDist turns one raw network output row into the transmission-time
// distribution the MPC consumes: throughput-kind outputs are converted via
// T = 8·size/rate, and point-estimate mode collapses to the argmax bin.
func (p *Predictor) finishDist(dist, probs []float64, size float64) {
	switch p.TTP.Kind {
	case KindThroughput:
		for i := range dist {
			dist[i] = 0
		}
		for i, pr := range probs {
			if pr == 0 {
				continue
			}
			tt := size * 8 / ThroughputBinValue(i)
			dist[abr.BinIndex(tt)] += pr
		}
	default:
		copy(dist, probs)
	}

	if p.Mode == ModePointEstimate {
		best := nn.ArgMax(dist)
		for i := range dist {
			dist[i] = 0
		}
		dist[best] = 1
	}
}

// PredictFeatures runs the TTP directly on an assembled feature vector,
// returning the output distribution. Used by evaluation code.
func (p *Predictor) PredictFeatures(step int, features []float64, dist []float64) {
	step = p.clampStep(step)
	p.TTP.Nets[step].PredictDistBatch(p.ws[step], features, 1, dist)
}

// PredictFeaturesBatch scores `rows` pre-assembled feature rows (row-major
// in features) at one horizon step, writing one raw distribution per row
// into dists. Evaluation code uses it to sweep datasets in large batches.
func (p *Predictor) PredictFeaturesBatch(step int, features []float64, rows int, dists []float64) {
	step = p.clampStep(step)
	p.TTP.Nets[step].PredictDistBatch(p.ws[step], features, rows, dists)
}

// NewFugu builds the deployed Fugu scheme: stochastic MPC over the TTP's
// full probability distributions.
func NewFugu(t *TTP) *abr.MPC {
	return abr.NewMPC("Fugu", NewPredictor(t, ModeProbabilistic), abr.DefaultQoEWeights())
}

// NewFuguNamed is NewFugu with a custom results-table name (used for
// emulation-trained and stale-model variants).
func NewFuguNamed(name string, t *TTP) *abr.MPC {
	return abr.NewMPC(name, NewPredictor(t, ModeProbabilistic), abr.DefaultQoEWeights())
}

// NewFuguPointEstimate builds the Figure 7 "Point Estimate" ablation, which
// the paper also deployed (its rebuffering was 3-9x worse).
func NewFuguPointEstimate(t *TTP) *abr.MPC {
	return abr.NewMPC("Fugu-PointEstimate", NewPredictor(t, ModePointEstimate), abr.DefaultQoEWeights())
}
