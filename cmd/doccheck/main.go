// Command doccheck is the `go vet`-style documentation gate behind
// `make docs-smoke`: it walks every Go package in the tree and fails if any
// package lacks a package doc comment, so `go doc` stays useful end to end
// as the system grows.
//
//	doccheck [root]
//
// The root defaults to the current directory. Test files do not count as
// documentation carriers (a package documented only in _test.go files shows
// nothing in go doc), and vendored or hidden directories are skipped.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	// Collect the non-test Go files of every package directory.
	pkgFiles := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgFiles[dir] = append(pkgFiles[dir], path)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	dirs := make([]string, 0, len(pkgFiles))
	for dir := range pkgFiles {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	bad := 0
	for _, dir := range dirs {
		documented := false
		var pkgName string
		for _, file := range pkgFiles[dir] {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				log.Fatalf("parsing %s: %v", file, err)
			}
			pkgName = f.Name.Name
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			fmt.Fprintf(os.Stderr, "doccheck: package %s (%s) has no package doc comment\n", pkgName, dir)
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d package(s) undocumented", bad)
	}
	fmt.Printf("doccheck: %d packages documented\n", len(dirs))
}
