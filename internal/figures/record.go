package figures

import (
	"time"

	"puffer/internal/results"
	"puffer/internal/scenario"
)

// scenarioRecord answers a figure's whole-scenario experiment from the
// results warehouse: when the suite has an index that already holds the
// spec's hash, the record is read back and nothing runs; otherwise the
// scenario runs here and the fresh record is appended (single-writer
// contract: one figures process owns the index while it runs).
func (s *Suite) scenarioRecord(spec scenario.Spec) (*results.Record, error) {
	d := spec.WithDefaults()
	if s.Results != "" {
		ix, err := results.Load(s.Results)
		if err != nil {
			return nil, err
		}
		if rec, ok := ix.Get(d.Hash()); ok {
			s.Logf("%s: found in results index (%s), not re-running", d.Name, d.Hash()[:12])
			return rec, nil
		}
	}
	started := time.Now()
	out, err := scenario.Run(d, scenario.RunOptions{
		Logf: func(format string, args ...any) { s.Logf("  "+format, args...) },
	})
	if err != nil {
		return nil, err
	}
	rec, err := results.FromOutcome(out, started, time.Since(started).Seconds())
	if err != nil {
		return nil, err
	}
	if s.Results != "" {
		w, err := results.OpenWriter(s.Results)
		if err != nil {
			return nil, err
		}
		defer w.Close()
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
	return rec, nil
}
