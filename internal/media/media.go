package media

import (
	"fmt"
	"math"
	"math/rand"
)

// ChunkDuration is the playback length of every video chunk in seconds,
// reflecting the 1/1001 NTSC factor (2.002 s), as on Puffer.
const ChunkDuration = 2.002

// Rung is one entry of the encoding ladder: a fixed resolution and CRF whose
// output bitrate varies chunk-by-chunk (VBR).
type Rung struct {
	Name       string
	Width      int
	Height     int
	CRF        int
	AvgBitrate float64 // nominal mean bitrate, bits per second
	BaseSSIMdB float64 // SSIM (dB) on typical-complexity content
}

// DefaultLadder mirrors Puffer's ten H.264 encodings from 240p CRF 26
// (about 200 kbps) to 1080p CRF 20 (about 5,500 kbps). Base SSIM rises
// roughly logarithmically in bitrate, matching the diminishing returns in
// the paper's Figure 3b.
func DefaultLadder() []Rung {
	bitrates := []float64{200e3, 400e3, 700e3, 1100e3, 1600e3, 2300e3, 3000e3, 3800e3, 4600e3, 5500e3}
	names := []string{
		"240p60-crf26", "360p60-crf26", "480p60-crf24", "480p60-crf22",
		"720p60-crf24", "720p60-crf22", "720p60-crf20", "1080p60-crf24",
		"1080p60-crf22", "1080p60-crf20",
	}
	widths := []int{426, 640, 854, 854, 1280, 1280, 1280, 1920, 1920, 1920}
	heights := []int{240, 360, 480, 480, 720, 720, 720, 1080, 1080, 1080}
	crfs := []int{26, 26, 24, 22, 24, 22, 20, 24, 22, 20}
	ladder := make([]Rung, len(bitrates))
	lo, hi := bitrates[0], bitrates[len(bitrates)-1]
	for i, br := range bitrates {
		// 10.5 dB at the bottom rung up to 17.5 dB at the top,
		// logarithmic in bitrate.
		base := 10.5 + 7.0*math.Log(br/lo)/math.Log(hi/lo)
		ladder[i] = Rung{
			Name:       names[i],
			Width:      widths[i],
			Height:     heights[i],
			CRF:        crfs[i],
			AvgBitrate: br,
			BaseSSIMdB: base,
		}
	}
	return ladder
}

// Encoding is one encoded version of one chunk.
type Encoding struct {
	Size   float64 // compressed size, bytes
	SSIMdB float64 // quality vs. the canonical source, dB
}

// Bitrate returns the encoding's actual bitrate in bits per second.
func (e Encoding) Bitrate() float64 { return e.Size * 8 / ChunkDuration }

// Chunk is one 2.002-second segment with all ladder versions.
type Chunk struct {
	Index      int
	Complexity float64 // scene complexity that generated it (1.0 = typical)
	Versions   []Encoding
}

// Profile characterizes a channel's content dynamics.
type Profile struct {
	Name string
	// MeanLogComplexity shifts typical content difficulty (0 = typical).
	MeanLogComplexity float64
	// ARCoeff is the AR(1) coefficient of log-complexity between chunks
	// (close to 1 = slowly-varying scenes).
	ARCoeff float64
	// Volatility is the innovation std-dev of log-complexity.
	Volatility float64
	// SceneCutProb is the per-chunk probability of a hard cut that
	// resamples complexity from the stationary distribution.
	SceneCutProb float64
}

// Channels returns the six over-the-air channel profiles Puffer streams,
// spanning calm (news) to volatile (sports) content.
func Channels() []Profile {
	return []Profile{
		{Name: "nbc", MeanLogComplexity: 0.00, ARCoeff: 0.92, Volatility: 0.16, SceneCutProb: 0.03},
		{Name: "cbs", MeanLogComplexity: -0.05, ARCoeff: 0.93, Volatility: 0.14, SceneCutProb: 0.03},
		{Name: "abc", MeanLogComplexity: 0.05, ARCoeff: 0.90, Volatility: 0.18, SceneCutProb: 0.04},
		{Name: "fox-sports", MeanLogComplexity: 0.25, ARCoeff: 0.85, Volatility: 0.30, SceneCutProb: 0.08},
		{Name: "pbs", MeanLogComplexity: -0.20, ARCoeff: 0.95, Volatility: 0.10, SceneCutProb: 0.02},
		{Name: "univision", MeanLogComplexity: 0.10, ARCoeff: 0.90, Volatility: 0.20, SceneCutProb: 0.05},
	}
}

// sizeExponent couples chunk size to complexity: size grows sublinearly with
// scene complexity under CRF encoding.
const sizeExponent = 0.85

// ssimSlope is how many dB of SSIM one unit of log-complexity costs at a
// fixed CRF.
const ssimSlope = 2.2

// Source generates the chunk stream for one channel. It is deterministic
// given its seed. Not safe for concurrent use.
type Source struct {
	Ladder  []Rung
	Profile Profile

	rng    *rand.Rand
	logC   float64 // current log-complexity state
	index  int
	inited bool
}

// NewSource creates a chunk source for the given channel profile, ladder and
// seed. A nil ladder means DefaultLadder.
func NewSource(ladder []Rung, profile Profile, seed int64) *Source {
	if ladder == nil {
		ladder = DefaultLadder()
	}
	if len(ladder) == 0 {
		panic("media: empty encoding ladder")
	}
	return &Source{
		Ladder:  ladder,
		Profile: profile,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// stationaryStd is the stationary standard deviation of the AR(1)
// log-complexity process.
func (p Profile) stationaryStd() float64 {
	den := 1 - p.ARCoeff*p.ARCoeff
	if den <= 0 {
		return p.Volatility
	}
	return p.Volatility / math.Sqrt(den)
}

// Next encodes and returns the next chunk with all ladder versions.
func (s *Source) Next() Chunk {
	p := s.Profile
	if !s.inited {
		s.logC = p.MeanLogComplexity + s.rng.NormFloat64()*p.stationaryStd()
		s.inited = true
	} else if s.rng.Float64() < p.SceneCutProb {
		s.logC = p.MeanLogComplexity + s.rng.NormFloat64()*p.stationaryStd()
	} else {
		s.logC = p.MeanLogComplexity + p.ARCoeff*(s.logC-p.MeanLogComplexity) + p.Volatility*s.rng.NormFloat64()
	}
	complexity := math.Exp(s.logC)

	c := Chunk{
		Index:      s.index,
		Complexity: complexity,
		Versions:   make([]Encoding, len(s.Ladder)),
	}
	// One shared encoder-noise draw per chunk keeps versions correlated;
	// a small per-rung term adds encoder idiosyncrasy.
	sharedNoise := s.rng.NormFloat64()
	for i, r := range s.Ladder {
		sizeNoise := math.Exp(0.06*sharedNoise + 0.03*s.rng.NormFloat64())
		size := r.AvgBitrate / 8 * ChunkDuration * math.Pow(complexity, sizeExponent) * sizeNoise
		ssim := r.BaseSSIMdB - ssimSlope*s.logC + 0.15*s.rng.NormFloat64()
		if ssim < 1 {
			ssim = 1
		}
		c.Versions[i] = Encoding{Size: size, SSIMdB: ssim}
	}
	// Enforce the monotonicity ABR schemes rely on: within a chunk,
	// a higher rung is strictly larger and at least as good.
	for i := 1; i < len(c.Versions); i++ {
		if c.Versions[i].Size <= c.Versions[i-1].Size {
			c.Versions[i].Size = c.Versions[i-1].Size * 1.02
		}
		if c.Versions[i].SSIMdB < c.Versions[i-1].SSIMdB {
			c.Versions[i].SSIMdB = c.Versions[i-1].SSIMdB
		}
	}
	s.index++
	return c
}

// Take returns the next n chunks.
func (s *Source) Take(n int) []Chunk {
	out := make([]Chunk, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Clip is a pre-generated fixed sequence of chunks that loops, like the
// "10-minute clip recorded on NBC" the paper replays in its emulation
// experiments.
type Clip struct {
	Chunks []Chunk
}

// RecordClip generates a clip of the given duration (seconds) from a channel
// profile. The clip is deterministic given the seed.
func RecordClip(profile Profile, duration float64, seed int64) *Clip {
	n := int(math.Ceil(duration / ChunkDuration))
	src := NewSource(nil, profile, seed)
	return &Clip{Chunks: src.Take(n)}
}

// At returns chunk i of the clip, looping past the end (re-playing the clip,
// as the emulation methodology does). The returned chunk's Index is i.
func (c *Clip) At(i int) Chunk {
	if len(c.Chunks) == 0 {
		panic("media: empty clip")
	}
	ch := c.Chunks[i%len(c.Chunks)]
	ch.Index = i
	return ch
}

// SSIMdBFromIndex converts a raw SSIM index in [0,1) to decibels, the unit
// used throughout the paper: -10*log10(1-ssim).
func SSIMdBFromIndex(ssim float64) float64 {
	if ssim >= 1 {
		return math.Inf(1)
	}
	return -10 * math.Log10(1-ssim)
}

// SSIMIndexFromDB is the inverse of SSIMdBFromIndex.
func SSIMIndexFromDB(db float64) float64 {
	return 1 - math.Pow(10, -db/10)
}

// FindProfile returns the channel profile with the given name.
func FindProfile(name string) (Profile, error) {
	for _, p := range Channels() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("media: unknown channel %q", name)
}
