package fleet

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	metrics "puffer/internal/obs"
	"puffer/internal/telemetry"
)

// Registry names of the fleet metrics that wall-side consumers (the
// runner's progress readout, the obs-smoke assertions) look up.
const (
	// MetricDecisionNS is the per-decision compute latency histogram: the
	// prepare plus finish spans of one ABR decision, excluding the
	// virtual-time park between them (wall time spent parked measures the
	// scheduler, not the decision).
	MetricDecisionNS = "fleet_decision_ns"
	// MetricBatchRows is the per-net batch size histogram of the
	// inference service.
	MetricBatchRows = "fleet_batch_rows"
)

var decisionNS = metrics.Default.Histogram(MetricDecisionNS)

// Config tunes the fleet engine. None of its fields change results — only
// scheduling, batching, and the occupancy record — which is the engine's
// core guarantee (see package doc).
type Config struct {
	// ShardSize replicates the sequential runner's aggregation shards so
	// the pooled accumulator folds in exactly the same order (byte
	// identity requires matching shard boundaries). Default (0): 64.
	ShardSize int
	// Workers bounds how many parked sessions advance concurrently
	// between inference flushes. Default (0): GOMAXPROCS.
	Workers int
	// Arrivals draws session arrival times. Default (nil):
	// PoissonArrivals{Rate: 1}.
	Arrivals ArrivalProcess
	// Tick is the virtual-time window (seconds) whose due decisions are
	// collected into one cross-session inference flush. Larger ticks mean
	// bigger batches and coarser interleaving. Default (0): 0.25.
	Tick float64
}

// Stats describes one fleet run: the occupancy record and the inference
// service's batching counters. Everything except WallSeconds is
// deterministic for a deterministic trial.
type Stats struct {
	// Sessions is the trial size.
	Sessions int
	// HorizonSeconds is the virtual-time span from first arrival to last
	// departure.
	HorizonSeconds float64
	// Occupancy counts concurrently live sessions over virtual time.
	Occupancy telemetry.ConcurrencySeries
	// PeakConcurrent and MeanConcurrent summarize Occupancy.
	PeakConcurrent int
	MeanConcurrent float64
	// Decisions counts ABR decisions; Deferred counts those that staged
	// rows for the inference service (the NN-backed arms).
	Decisions int64
	Deferred  int64
	// Flushes is how many virtual ticks executed at least one batch;
	// Batches is per-net batches; Rows is total feature rows;
	// MaxBatchRows is the largest single-net batch; MeanBatchRows is
	// Rows/Batches.
	Flushes       int
	Batches       int
	Rows          int64
	MaxBatchRows  int
	MeanBatchRows float64
	// ModelSnapshots is how many distinct nets the service packed.
	ModelSnapshots int
	// WallSeconds is the measured wall-clock time of the run (not
	// deterministic; excluded from checkpoints).
	WallSeconds float64
}

// SessionsPerSec is the engine's headline throughput figure.
func (s *Stats) SessionsPerSec() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.Sessions) / s.WallSeconds
}

// event is one calendar entry: session id due at virtual time t. A session
// id whose session has not been created yet is an arrival; otherwise it is
// a parked decision.
type event struct {
	t  float64
	id int
}

// eventHeap orders events by (time, id) — the id tiebreak pins batch
// assembly order, so runs are reproducible even with colliding timestamps.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// session is one live viewer session: a goroutine running the real
// experiment.RunOneHooked, parked at every decision point.
type session struct {
	e       *engine
	id      int
	arrival float64

	resume chan struct{}

	// Session-goroutine state, read by the engine only after wg.Wait.
	alg      abr.Algorithm
	deferred abr.DeferredAlgorithm
	dp       *core.DeferredPredictor
	parkT    float64
	done     bool
	result   experiment.SessionResult

	// Trace state: seq numbers this session's decisions; curTrace/curSpan
	// name the in-flight traced decision (0 = untraced) and are read by the
	// engine while the session is parked to attribute the shared flush.
	seq      uint64
	curTrace uint64
	curSpan  uint64
}

// engine coordinates the event loop.
type engine struct {
	trial *experiment.Config
	cfg   Config
	svc   *InferenceService

	sessions []*session
	results  []experiment.SessionResult
	ends     []float64
	events   eventHeap

	wg        sync.WaitGroup
	sem       chan struct{}
	decisions int64
	staged    int64
}

// Decide implements experiment.DecideHook: it stages deferrable prediction
// work, parks the session at its global virtual time, and completes the
// decision after the engine's inference flush — returning exactly what
// alg.Choose(obs) would have.
func (s *session) Decide(alg abr.Algorithm, obs *abr.Observation, now float64) int {
	if s.alg == nil {
		s.alg = alg
		if d, ok := alg.(abr.DeferredAlgorithm); ok {
			s.deferred = d
			s.dp = Deferify(alg)
		}
	}
	t := s.arrival + now
	// Deterministic per-session sampling picks traced decisions; the trace
	// id is a pure function of (session id, decision seq), so tracing a run
	// twice traces the same decisions under the same ids.
	tr := metrics.Tracing()
	s.curTrace, s.curSpan = 0, 0
	if tr != nil && tr.Sampled(int64(s.id)) {
		s.curTrace = metrics.DecisionTraceID(int64(s.id), s.seq)
		s.curSpan = tr.NewSpanID()
	}
	trace, root := s.curTrace, s.curSpan
	s.seq++
	if s.deferred != nil {
		t0 := metrics.Now()
		s.deferred.PrepareChoose(obs)
		prepare := metrics.SinceNS(t0)
		var p0 int64
		if trace != 0 {
			tr.Record(metrics.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
				Name: "prepare", Start: t0, Dur: prepare})
			p0 = t0 + prepare
		}
		s.park(t)
		t1 := metrics.Now()
		q := s.deferred.FinishChoose(obs)
		if t1 != 0 {
			decisionNS.Observe(prepare + metrics.SinceNS(t1))
		}
		if trace != 0 {
			tr.Record(metrics.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
				Name: "batch_residency", Start: p0, Dur: t1 - p0})
			tr.Record(metrics.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
				Name: "finish", Start: t1, Dur: metrics.SinceNS(t1)})
			tr.Record(metrics.Span{Trace: trace, ID: root, Name: "fleet_decision",
				Start: t0, Dur: metrics.SinceNS(t0), Attrs: []metrics.Attr{
					{Key: "session", Val: int64(s.id)},
					{Key: "seq", Val: int64(s.seq - 1)},
					{Key: "chunk", Val: int64(obs.ChunkIndex)},
				}})
		}
		return q
	}
	var p0 int64
	if trace != 0 {
		p0 = metrics.Now()
	}
	s.park(t)
	t1 := metrics.Now()
	q := alg.Choose(obs)
	if t1 != 0 {
		decisionNS.Observe(metrics.SinceNS(t1))
	}
	if trace != 0 {
		tr.Record(metrics.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
			Name: "batch_residency", Start: p0, Dur: t1 - p0})
		tr.Record(metrics.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
			Name: "finish", Start: t1, Dur: metrics.SinceNS(t1)})
		tr.Record(metrics.Span{Trace: trace, ID: root, Name: "fleet_decision",
			Start: p0, Dur: metrics.SinceNS(p0), Attrs: []metrics.Attr{
				{Key: "session", Val: int64(s.id)},
				{Key: "seq", Val: int64(s.seq - 1)},
				{Key: "chunk", Val: int64(obs.ChunkIndex)},
			}})
	}
	return q
}

// park suspends the session until the engine resumes it, releasing its
// worker token while suspended.
func (s *session) park(t float64) {
	s.parkT = t
	<-s.e.sem // release worker token
	s.e.wg.Done()
	<-s.resume
	s.e.sem <- struct{}{} // reacquire before computing again
}

// run executes the whole session and records completion.
func (s *session) run() {
	s.e.sem <- struct{}{}
	res := s.e.trial.RunOneHooked(s.id, s)
	s.result = res
	s.done = true
	<-s.e.sem
	s.e.wg.Done()
}

// Deferify rewires a freshly built per-session algorithm so its TTP-backed
// predictor stages batched fills instead of running them: it unwraps
// exploration layers, and when the MPC's predictor is the core TTP
// predictor, swaps in a DeferredPredictor and returns it. Algorithms
// without a TTP (BBA, the harmonic-mean MPCs) return nil and simply compute
// at their decision points. Exported because the wall-clock serving layer
// performs the same rewiring on its per-connection algorithms before
// batching their rows through an InferenceService.
func Deferify(alg abr.Algorithm) *core.DeferredPredictor {
	for {
		switch a := alg.(type) {
		case *abr.Explorer:
			alg = a.Base
		case *abr.MPC:
			if p, ok := a.Pred.(*core.Predictor); ok {
				dp := core.NewDeferredPredictor(p)
				a.Pred = dp
				return dp
			}
			return nil
		default:
			return nil
		}
	}
}

// RunTrial executes one randomized trial on the fleet engine and returns
// the shard-folded accumulator — byte-identical to the sequential sharded
// runner at the same trial config — together with the run's occupancy and
// batching statistics.
func RunTrial(trial *experiment.Config, cfg Config) (*experiment.TrialAcc, *Stats, error) {
	if len(trial.Schemes) == 0 {
		return nil, nil, fmt.Errorf("fleet: no schemes configured")
	}
	if trial.Sessions <= 0 {
		return nil, nil, fmt.Errorf("fleet: Sessions = %d, must be positive", trial.Sessions)
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 0.25
	}
	if cfg.Arrivals == nil {
		cfg.Arrivals = PoissonArrivals{Rate: 1}
	}
	start := time.Now()

	n := trial.Sessions
	e := &engine{
		trial:    trial,
		cfg:      cfg,
		svc:      NewInferenceService(),
		sessions: make([]*session, n),
		results:  make([]experiment.SessionResult, n),
		ends:     make([]float64, n),
		sem:      make(chan struct{}, cfg.Workers),
	}
	arrivals := ArrivalTimes(cfg.Arrivals, trial.Seed, n)
	e.events = make(eventHeap, 0, n)
	for id, t := range arrivals {
		e.events = append(e.events, event{t, id})
	}
	heap.Init(&e.events)

	batch := make([]*session, 0, n)
	spawns := make([]*session, 0, n)
	for e.events.Len() > 0 {
		tickEnd := e.events[0].t + cfg.Tick
		batch = batch[:0]
		// Drain the tick window: spawn arrivals (running each to its
		// first decision, a window's arrivals in parallel), collect
		// parked sessions due in the window. Spawned sessions' first
		// parks usually land inside the window, so the outer loop
		// re-drains until nothing before tickEnd remains.
		for e.events.Len() > 0 && e.events[0].t < tickEnd {
			spawns = spawns[:0]
			for e.events.Len() > 0 && e.events[0].t < tickEnd {
				ev := heap.Pop(&e.events).(event)
				s := e.sessions[ev.id]
				if s == nil {
					s = &session{e: e, id: ev.id, arrival: arrivals[ev.id], resume: make(chan struct{})}
					e.sessions[ev.id] = s
					spawns = append(spawns, s)
					continue
				}
				batch = append(batch, s)
			}
			if len(spawns) == 0 {
				break
			}
			e.wg.Add(len(spawns))
			for _, s := range spawns {
				go s.run()
			}
			e.wg.Wait()
			for _, s := range spawns {
				e.afterYield(s)
			}
		}
		if len(batch) == 0 {
			continue
		}
		// One cross-session inference flush covers every staged step of
		// the tick, then the batch advances in parallel to the next
		// decision points.
		for _, s := range batch {
			if s.dp != nil {
				e.svc.Enqueue(s.dp.Pending())
			}
		}
		// Attribute the shared flush (and its kernel spans) to the first
		// traced decision parked in this batch; parked sessions' curTrace is
		// stable until they resume.
		if tr := metrics.Tracing(); tr != nil {
			for _, s := range batch {
				if s.curTrace != 0 {
					metrics.SetFlushTrace(s.curTrace, s.curSpan)
					break
				}
			}
			e.svc.Flush()
			metrics.ClearFlushTrace()
		} else {
			e.svc.Flush()
		}
		for _, s := range batch {
			if s.dp != nil {
				s.dp.Clear()
			}
		}
		e.wg.Add(len(batch))
		for _, s := range batch {
			s.resume <- struct{}{}
		}
		e.wg.Wait()
		for _, s := range batch {
			e.afterYield(s)
		}
	}

	// Fold completed sessions through the canonical sharded aggregation
	// (shared with the sequential runner), so pooled stats are
	// byte-identical across engines by construction.
	total := experiment.FoldShards(n, cfg.ShardSize, experiment.AllPaths,
		func(id int) *experiment.SessionResult { return &e.results[id] })

	occ := telemetry.NewConcurrencySeries(arrivals, e.ends)
	st := &Stats{
		Sessions:       n,
		Occupancy:      occ,
		PeakConcurrent: occ.Peak(),
		MeanConcurrent: occ.Mean(),
		Decisions:      e.decisions,
		Deferred:       e.staged,
		Flushes:        e.svc.flushes,
		Batches:        e.svc.batches,
		Rows:           e.svc.rows,
		MaxBatchRows:   e.svc.maxBatch,
		ModelSnapshots: e.svc.snapshots,
		WallSeconds:    time.Since(start).Seconds(),
	}
	if len(occ.Points) > 0 {
		st.HorizonSeconds = occ.Points[len(occ.Points)-1].Time - occ.Points[0].Time
	}
	if st.Batches > 0 {
		st.MeanBatchRows = float64(st.Rows) / float64(st.Batches)
	}
	return total, st, nil
}

// afterYield books one yielded session: completed sessions record their
// result and departure, parked ones re-enter the calendar at their decision
// time.
func (e *engine) afterYield(s *session) {
	e.decisions++ // every yield is one decision except the completion yield
	if s.done {
		e.decisions--
		e.results[s.id] = s.result
		e.ends[s.id] = s.arrival + s.result.Duration
		e.sessions[s.id] = nil // release the goroutine's session state
		return
	}
	if s.dp != nil && len(s.dp.Pending()) > 0 {
		e.staged++
	}
	heap.Push(&e.events, event{s.parkT, s.id})
}
