package dist

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// shardResult folds one shard of the given test trial and returns its
// accumulator plus the dataset its sessions recorded.
func shardResult(t *testing.T, sp testSpec, day, shard int) (*experiment.TrialAcc, *core.Dataset) {
	t.Helper()
	trial := testTrial(sp, day, nil)
	col := experiment.NewDatasetCollector()
	trial.Recorder = col
	lo, hi := experiment.ShardRange(sp.Sessions, sp.ShardSize, shard)
	acc := trial.FoldShard(lo, hi, experiment.AllPaths)
	return acc, col.Dataset()
}

// TestShardBlobRoundTrip: a shard's accumulator and dataset survive the
// encode/decode hop byte for byte.
func TestShardBlobRoundTrip(t *testing.T) {
	sp := testSpec{Sessions: 16, ShardSize: 8, BaseSeed: 11}
	acc, data := shardResult(t, sp, 0, 0)
	blob, err := EncodeShard(acc, data)
	if err != nil {
		t.Fatal(err)
	}
	gotAcc, gotData, err := DecodeShard(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(accBytes(t, gotAcc), accBytes(t, acc)) {
		t.Error("accumulator changed across the encode/decode hop")
	}
	if !bytes.Equal(dataBytes(t, gotData), dataBytes(t, data)) {
		t.Error("dataset changed across the encode/decode hop")
	}
}

// TestShardBlobDeterministic: the same shard result is the same bytes on
// the wire, the property the coordinator's byte-identity contract rests on.
func TestShardBlobDeterministic(t *testing.T) {
	sp := testSpec{Sessions: 16, ShardSize: 8, BaseSeed: 11}
	acc1, data1 := shardResult(t, sp, 0, 1)
	acc2, data2 := shardResult(t, sp, 0, 1)
	b1, err := EncodeShard(acc1, data1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeShard(acc2, data2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("re-computing the same shard produced different wire bytes")
	}
}

// TestWireMergeMatchesFoldShards: shipping each shard through the blob
// encoding and merging the decoded accumulators in shard order equals the
// single-process FoldShards canonical aggregate.
func TestWireMergeMatchesFoldShards(t *testing.T) {
	sp := testSpec{Sessions: 40, ShardSize: 8, BaseSeed: 13}
	merged := experiment.NewTrialAcc(experiment.AllPaths)
	var streams *core.Dataset
	for s := 0; s < experiment.NumShards(sp.Sessions, sp.ShardSize); s++ {
		acc, data := shardResult(t, sp, 0, s)
		blob, err := EncodeShard(acc, data)
		if err != nil {
			t.Fatal(err)
		}
		gotAcc, gotData, err := DecodeShard(blob)
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(gotAcc)
		if streams == nil {
			streams = gotData
		} else {
			streams.Streams = append(streams.Streams, gotData.Streams...)
		}
	}

	trial := testTrial(sp, 0, nil)
	col := experiment.NewDatasetCollector()
	trial.Recorder = col
	want := experiment.FoldShards(sp.Sessions, sp.ShardSize, experiment.AllPaths, func(id int) *experiment.SessionResult {
		r := trial.RunOne(id)
		return &r
	})
	if !bytes.Equal(accBytes(t, merged), accBytes(t, want)) {
		t.Error("wire-merged accumulator differs from FoldShards")
	}
	if !bytes.Equal(dataBytes(t, streams), dataBytes(t, col.Dataset())) {
		t.Error("wire-concatenated dataset differs from the global collector")
	}
}

func TestEncodeShardRejectsNil(t *testing.T) {
	sp := testSpec{Sessions: 8, ShardSize: 8, BaseSeed: 11}
	acc, data := shardResult(t, sp, 0, 0)
	if _, err := EncodeShard(nil, data); err == nil {
		t.Error("EncodeShard(nil, data): no error")
	}
	if _, err := EncodeShard(acc, nil); err == nil {
		t.Error("EncodeShard(acc, nil): no error")
	}
}

// TestDecodeShardRejectsGarbage: a payload that is not a shard blob must
// fail loudly, pointing at a build mismatch.
func TestDecodeShardRejectsGarbage(t *testing.T) {
	_, _, err := DecodeShard([]byte("not a gob stream at all"))
	if err == nil || !strings.Contains(err.Error(), "build mismatch") {
		t.Fatalf("DecodeShard(garbage) = %v, want build-mismatch error", err)
	}
}

// TestDecodeShardRejectsVersion: a well-formed blob from a different
// envelope version is rejected, not merged.
func TestDecodeShardRejectsVersion(t *testing.T) {
	sp := testSpec{Sessions: 8, ShardSize: 8, BaseSeed: 11}
	acc, data := shardResult(t, sp, 0, 0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(shardBlob{Version: BlobVersion + 1, Acc: acc, Data: data}); err != nil {
		t.Fatal(err)
	}
	_, _, err := DecodeShard(buf.Bytes())
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("DecodeShard(version+1) = %v, want version error", err)
	}
}

// TestDecodeShardRejectsMissingFields: a blob with the right version but a
// nil accumulator or dataset is rejected.
func TestDecodeShardRejectsMissingFields(t *testing.T) {
	sp := testSpec{Sessions: 8, ShardSize: 8, BaseSeed: 11}
	acc, data := shardResult(t, sp, 0, 0)
	for _, c := range []struct {
		name string
		blob shardBlob
	}{
		{"nil-acc", shardBlob{Version: BlobVersion, Data: data}},
		{"nil-data", shardBlob{Version: BlobVersion, Acc: acc}},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(c.blob); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeShard(buf.Bytes()); err == nil {
			t.Errorf("%s: DecodeShard accepted a blob with a missing field", c.name)
		}
	}
}
