//go:build !amd64

package nn

// useAVX2 is false off amd64: the packed path serves through the portable
// batched kernel instead.
const useAVX2 = false

// affineRowT is unreachable when useAVX2 is false; the stub keeps the
// packed path compiling on every platform.
func affineRowT(dst, bias, x, wt *float64, nIn, nOut int) {
	panic("nn: affineRowT called without SIMD support")
}

// reluVec is unreachable when useAVX2 is false.
func reluVec(v []float64) {
	panic("nn: reluVec called without SIMD support")
}
