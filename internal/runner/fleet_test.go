package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/experiment"
	"puffer/internal/netem"
)

// crossEngineFingerprint reduces a Result to the bytes both engines must
// agree on: every day's analyzed schemes, the pooled totals, the final
// model, and the sliding-window telemetry — everything except the
// engine-specific serving record (DayStats.Fleet), which only the fleet
// engine produces.
func crossEngineFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	type dayCore struct {
		Day       int
		Retrained bool
		Chunks    int
		Loss      []float64
		Examples  []int
		Schemes   []experiment.SchemeStats
	}
	days := make([]dayCore, len(res.Days))
	for i, d := range res.Days {
		days[i] = dayCore{d.Day, d.Retrained, d.Chunks, d.Loss, d.Examples, d.Schemes}
	}
	blob, err := json.Marshal(struct {
		Days  []dayCore
		Total []experiment.SchemeStats
	}{days, res.Total})
	if err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if res.TTP != nil {
		if err := res.TTP.Save(&model); err != nil {
			t.Fatal(err)
		}
	}
	var data bytes.Buffer
	if res.Data != nil {
		if err := res.Data.Save(&data); err != nil {
			t.Fatal(err)
		}
	}
	blob = append(blob, model.Bytes()...)
	return append(blob, data.Bytes()...)
}

// TestRunnerFleetMatchesSequential: the ISSUE's acceptance bar — the fleet
// engine's multi-day run (bootstrap day + Fugu deploy day, nightly
// retraining in between) produces byte-identical pooled stats, per-day
// stats, model bytes, and telemetry to the sequential engine at the same
// seed, both stationary and under drift.
func TestRunnerFleetMatchesSequential(t *testing.T) {
	for _, drift := range []bool{false, true} {
		name := "stationary"
		if drift {
			name = "drift-shift"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(engine string) Config {
				cfg := testConfig(23)
				cfg.Engine = engine
				if drift {
					sched, err := netem.DriftPreset("shift")
					if err != nil {
						t.Fatal(err)
					}
					cfg.Env.Paths = &netem.DriftingSampler{Base: cfg.Env.Paths, Schedule: sched}
				}
				return cfg
			}
			seq, err := Run(mk("session"))
			if err != nil {
				t.Fatal(err)
			}
			flt, err := Run(mk("fleet"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(crossEngineFingerprint(t, seq), crossEngineFingerprint(t, flt)) {
				t.Fatal("fleet engine results differ from sequential engine")
			}
			for _, d := range flt.Days {
				if d.Fleet == nil {
					t.Fatalf("fleet day %d missing serving record", d.Day)
				}
				if d.Fleet.Decisions == 0 {
					t.Fatalf("fleet day %d recorded no decisions", d.Day)
				}
			}
			// Day 1 deploys Fugu, so its inference must have gone through
			// the batched service.
			if flt.Days[1].Fleet.Deferred == 0 || flt.Days[1].Fleet.Rows == 0 {
				t.Fatalf("fleet deploy day staged no batched inference: %+v", flt.Days[1].Fleet)
			}
		})
	}
}

// TestRunnerFleetWorkersInvariant: workers 1 vs 8 must be byte-identical
// under the fleet engine, serving record included.
func TestRunnerFleetWorkersInvariant(t *testing.T) {
	mk := func(workers int) Config {
		cfg := testConfig(29)
		cfg.Engine = "fleet"
		cfg.Workers = workers
		return cfg
	}
	a, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fingerprint(t, a), fingerprint(t, b)
	if !bytes.Equal(fa, fb) {
		t.Fatalf("fleet runner differs between 1 and 8 workers (%d vs %d bytes)", len(fa), len(fb))
	}
}

// TestRunnerFleetCheckpointResume: kill-and-resume under -engine fleet must
// replay byte-identically, fleet serving records included.
func TestRunnerFleetCheckpointResume(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(31)
		cfg.Engine = "fleet"
		cfg.ArrivalRate = 2
		return cfg
	}
	straight := mk()
	straight.Days = 3
	want, err := Run(straight)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := mk()
	first.Days = 2
	first.CheckpointDir = dir
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-day_002"), 0o755); err != nil {
		t.Fatal(err)
	}
	second := mk()
	second.Days = 3
	second.CheckpointDir = dir
	got, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Fatal("fleet kill-and-resume differs from uninterrupted fleet run")
	}
	// The checkpointed day's stats must round-trip the serving record.
	raw, err := os.ReadFile(filepath.Join(dayDir(dir, 1), statsFile))
	if err != nil {
		t.Fatal(err)
	}
	var ds DayStats
	if err := json.Unmarshal(raw, &ds); err != nil {
		t.Fatal(err)
	}
	if ds.Fleet == nil || ds.Fleet.PeakConcurrent == 0 {
		t.Fatalf("checkpointed day lost its fleet record: %+v", ds.Fleet)
	}
}

// TestRunnerRejectsUnknownEngine: config validation.
func TestRunnerRejectsUnknownEngine(t *testing.T) {
	cfg := testConfig(1)
	cfg.Engine = "warp"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}
