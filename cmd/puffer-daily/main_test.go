package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/netem"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// legacyConfig replicates, line for line, how the pre-scenario puffer-daily
// built its runner.Config from flags — the oracle the spec path must match.
// It parses args with the historical flag set and applies the historical
// preset-override semantics (flag.Visit keyed, explicit zeros included).
func legacyConfig(t *testing.T, args []string) runner.Config {
	t.Helper()
	fs := flag.NewFlagSet("legacy", flag.ContinueOnError)
	days := fs.Int("days", 3, "")
	sessions := fs.Int("sessions", 150, "")
	window := fs.Int("window", 14, "")
	workers := fs.Int("workers", 0, "")
	engine := fs.String("engine", "session", "")
	arrivalRate := fs.Float64("arrival-rate", 1, "")
	tick := fs.Float64("tick", 0.25, "")
	shard := fs.Int("shard", 64, "")
	seed := fs.Int64("seed", 1, "")
	retrain := fs.Bool("retrain", true, "")
	fs.Bool("ablation", true, "")
	epochs := fs.Int("epochs", 8, "")
	envName := fs.String("env", "insitu", "")
	drift := fs.String("drift", "none", "")
	dRate := fs.Float64("drift-rate-factor", 0, "")
	dFloor := fs.Float64("drift-rate-floor", 0, "")
	dSigma := fs.Float64("drift-sigma-widen", 0, "")
	dSlow := fs.Float64("drift-slow-share", 0, "")
	dSlowCap := fs.Float64("drift-slow-cap", 0, "")
	dOutage := fs.Float64("drift-outage-rate", 0, "")
	dOutageCap := fs.Float64("drift-outage-cap", 0, "")
	dMix := fs.String("drift-mix", "", "")
	dMixStart := fs.Int("drift-mix-start", 0, "")
	dMixRamp := fs.Int("drift-mix-ramp", 3, "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("legacy flags: %v", err)
	}

	var env experiment.Env
	switch *envName {
	case "insitu":
		env = experiment.DefaultEnv()
	case "emulation":
		env = experiment.EmulationEnv()
	default:
		t.Fatalf("unknown -env %q", *envName)
	}

	sched, err := netem.DriftPreset(*drift)
	if err != nil {
		t.Fatal(err)
	}
	given := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { given[f.Name] = true })
	if given["drift-rate-factor"] {
		sched.RateFactorPerDay = *dRate
	}
	if given["drift-rate-floor"] {
		sched.RateFactorFloor = *dFloor
	}
	if given["drift-sigma-widen"] {
		sched.SigmaWidenPerDay = *dSigma
	}
	if given["drift-slow-share"] {
		sched.SlowSharePerDay = *dSlow
	}
	if given["drift-slow-cap"] {
		sched.SlowShareCap = *dSlowCap
	}
	if given["drift-outage-rate"] {
		sched.OutageRatePerDay = *dOutage / 3600
	}
	if given["drift-outage-cap"] {
		sched.OutageRateCap = *dOutageCap / 3600
	}
	if given["drift-mix"] {
		switch *dMix {
		case "congested":
			sched.MixWith = netem.PufferPaths{MedianRate: 1.2e6, Sigma: 0.5}
		case "fcc":
			sched.MixWith = netem.FCCPaths{}
		case "cs2p":
			sched.MixWith = netem.CS2PPaths{}
		case "none", "":
			sched.MixWith = nil
		default:
			t.Fatalf("unknown -drift-mix %q", *dMix)
		}
		if sched.MixWith != nil {
			sched.MixStartDay = *dMixStart
			sched.MixRampDays = *dMixRamp
		}
	}
	if given["drift-mix-start"] {
		sched.MixStartDay = *dMixStart
	}
	if given["drift-mix-ramp"] {
		sched.MixRampDays = *dMixRamp
	}
	if !sched.IsZero() {
		env.Paths = &netem.DriftingSampler{Base: env.Paths, Schedule: sched}
	}

	train := core.DefaultTrainConfig()
	train.Epochs = *epochs
	train.WindowDays = *window
	return runner.Config{
		Env:            env,
		Days:           *days,
		SessionsPerDay: *sessions,
		WindowDays:     *window,
		Workers:        *workers,
		Engine:         *engine,
		ArrivalRate:    *arrivalRate,
		FleetTick:      *tick,
		ShardSize:      *shard,
		Seed:           *seed,
		Retrain:        *retrain,
		Train:          train,
	}
}

// compiledConfig runs the new path: CLI args -> spec (base + overrides) ->
// scenario.Compile.
func compiledConfig(t *testing.T, args []string) runner.Config {
	t.Helper()
	cli, err := parseCLI(args)
	if err != nil {
		t.Fatalf("parseCLI(%v): %v", args, err)
	}
	cfg, err := scenario.Compile(cli.spec)
	if err != nil {
		t.Fatalf("Compile(%v): %v", args, err)
	}
	cfg.Workers = cli.workers
	return cfg
}

// normalize clears the fields where the spec path is deliberately more
// explicit than the legacy path without changing behavior: the spec
// attaches its guard hash and canonical JSON, materializes the default
// hidden sizes and horizon the runner would otherwise fill in, and threads
// the experiment seed into Train.Seed (which the runner re-derives per day
// regardless). Everything else must match exactly.
func normalize(t *testing.T, cfg runner.Config, legacy bool) runner.Config {
	t.Helper()
	if legacy {
		if cfg.Hidden != nil || cfg.Horizon != 0 {
			t.Fatalf("legacy CLI never set Hidden/Horizon, got %v/%d", cfg.Hidden, cfg.Horizon)
		}
	} else {
		if cfg.SpecHash == "" || cfg.SpecJSON == nil {
			t.Fatal("compiled config is missing its spec guard")
		}
		if !reflect.DeepEqual(cfg.Hidden, []int{64, 64}) || cfg.Horizon != 5 {
			t.Fatalf("compiled config materialized Hidden=%v Horizon=%d, want the paper defaults", cfg.Hidden, cfg.Horizon)
		}
	}
	cfg.SpecHash, cfg.SpecJSON = "", nil
	cfg.Hidden, cfg.Horizon = nil, 0
	cfg.Train.Seed = 0
	return cfg
}

// TestCLIBackCompat proves every pre-redesign flag invocation maps to a
// spec that compiles to the exact runner.Config the old CLI built —
// including raw drift overrides with explicit zeros, the
// newly-introduced-mix ramp defaults, both engines, and both worlds.
func TestCLIBackCompat(t *testing.T) {
	cases := [][]string{
		{},
		{"-days", "2", "-sessions", "12", "-window", "1", "-epochs", "1", "-seed", "5"},
		{"-window", "0"},
		{"-seed", "0"},
		{"-retrain=false"},
		{"-drift", "shift"},
		{"-drift", "decay", "-drift-rate-factor", "0.8"},
		{"-drift", "shift", "-drift-slow-cap", "0", "-drift-outage-rate", "0"},
		{"-drift", "shift", "-drift-outage-cap", "2.5"},
		{"-drift-mix", "congested", "-drift-mix-start", "1"},
		{"-drift", "mix", "-drift-mix", "none"},
		{"-drift", "mix", "-drift-mix", ""},
		{"-drift", "mix", "-drift-mix", "fcc", "-drift-mix-ramp", "0"},
		{"-drift", "none", "-drift-sigma-widen", "0.2", "-drift-slow-share", "0.1"},
		{"-engine", "fleet", "-arrival-rate", "2", "-tick", "0.5"},
		{"-env", "emulation"},
		{"-shard", "16", "-workers", "3"},
	}
	for _, args := range cases {
		t.Run(joinArgs(args), func(t *testing.T) {
			want := normalize(t, legacyConfig(t, args), true)
			got := normalize(t, compiledConfig(t, args), false)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("spec-compiled config differs from legacy config\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

func joinArgs(args []string) string {
	if len(args) == 0 {
		return "defaults"
	}
	s := ""
	for _, a := range args {
		s += a + " "
	}
	return s[:len(s)-1]
}

// fingerprint reduces a runner.Result to comparable bytes (day records,
// pooled totals, final model), mirroring the runner package's test helper.
func fingerprint(t *testing.T, res *runner.Result) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Days  []runner.DayStats
		Total []experiment.SchemeStats
	}{res.Days, res.Total})
	if err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if res.TTP != nil {
		if err := res.TTP.Save(&model); err != nil {
			t.Fatal(err)
		}
	}
	return append(blob, model.Bytes()...)
}

// TestCLIBackCompatRunsByteIdentical executes representative legacy
// invocations both ways — the old path (legacy-built config straight into
// runner.Run, frozen companion by hand) and the new path (spec through
// scenario.Run, ablation included) — and requires byte-identical results,
// frozen arm and all.
func TestCLIBackCompatRunsByteIdentical(t *testing.T) {
	cases := [][]string{
		{"-days", "2", "-sessions", "8", "-epochs", "1", "-window", "2", "-ablation=false"},
		{"-days", "2", "-sessions", "8", "-epochs", "1", "-drift", "shift", "-drift-slow-cap", "0.5"},
		{"-days", "2", "-sessions", "8", "-epochs", "1", "-engine", "fleet", "-arrival-rate", "2", "-ablation=false"},
	}
	for _, args := range cases {
		t.Run(joinArgs(args), func(t *testing.T) {
			legacy := legacyConfig(t, args)
			wantMain, err := runner.Run(legacy)
			if err != nil {
				t.Fatal(err)
			}

			cli, err := parseCLI(args)
			if err != nil {
				t.Fatal(err)
			}
			out, err := scenario.Run(cli.spec, scenario.RunOptions{Workers: cli.workers})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fingerprint(t, out.Result), fingerprint(t, wantMain)) {
				t.Fatal("scenario.Run result differs from the legacy path")
			}

			ablation := *cli.spec.WithDefaults().Daily.Ablation
			if ablation && legacy.Retrain {
				frozenCfg := legacy
				frozenCfg.Retrain = false
				wantFrozen, err := runner.Run(frozenCfg)
				if err != nil {
					t.Fatal(err)
				}
				if out.Frozen == nil {
					t.Fatal("scenario.Run skipped the ablation companion")
				}
				if !bytes.Equal(fingerprint(t, out.Frozen), fingerprint(t, wantFrozen)) {
					t.Fatal("frozen companion differs from the legacy ablation path")
				}
			} else if out.Frozen != nil {
				t.Fatal("scenario.Run ran an ablation the flags disabled")
			}
		})
	}
}

// TestCommittedNightlySpecMatchesRegistry: the nightly workflow runs from
// the committed scenarios/nightly-drift.json; it must stay in lockstep
// with the registered scenario of the same name (regenerate it with
// `puffer-daily -scenario nightly-drift -dump-scenario`).
func TestCommittedNightlySpecMatchesRegistry(t *testing.T) {
	committed, err := scenario.ParseFile(filepath.Join("..", "..", "scenarios", "nightly-drift.json"))
	if err != nil {
		t.Fatal(err)
	}
	registered, ok := scenario.Lookup("nightly-drift")
	if !ok {
		t.Fatal("nightly-drift is not registered")
	}
	if !bytes.Equal(committed.CanonicalJSON(), registered.CanonicalJSON()) {
		t.Fatalf("committed nightly spec drifted from the registry:\n%s\nvs\n%s",
			committed.CanonicalJSON(), registered.CanonicalJSON())
	}
}

// TestCLIDumpFixedPoint: the spec -dump-scenario emits re-runs identically
// — parsing the dump yields the same canonical JSON, the same hashes, and
// the same compiled config as the original.
func TestCLIDumpFixedPoint(t *testing.T) {
	cli, err := parseCLI([]string{"-scenario", "fleet-burst", "-sessions", "64"})
	if err != nil {
		t.Fatal(err)
	}
	spec := cli.spec.WithDefaults()
	dump := spec.CanonicalJSON()

	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	cli2, err := parseCLI([]string{"-scenario", path})
	if err != nil {
		t.Fatal(err)
	}
	respec := cli2.spec
	if !bytes.Equal(respec.CanonicalJSON(), dump) {
		t.Fatal("re-parsed dump is not a canonical fixed point")
	}
	if respec.Hash() != spec.Hash() || respec.GuardHash() != spec.GuardHash() {
		t.Fatal("re-parsed dump changed the spec hashes")
	}
	a, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Compile(respec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("re-parsed dump compiled to a different config")
	}
}
