package main

import (
	"fmt"
	"os"
)

// distWorkerFlag is the hidden argv that re-enters this binary as a dist
// worker: the coordinator launches `puffer-daily -dist-worker` processes
// that speak the dist protocol on stdin/stdout. Dispatched in main before
// flag parsing — it is a mode, not a flag.
const distWorkerFlag = "-dist-worker"

// distWorkerCommand is the argv the dist engine launches: this very
// binary, re-entered in worker mode — the same self-re-exec pattern the
// sweep executor uses, so coordinator and workers are always the same
// build.
func distWorkerCommand() ([]string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for dist workers: %w", err)
	}
	return []string{exe, distWorkerFlag}, nil
}
