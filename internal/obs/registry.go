package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-global recording gate. While false (the default)
// every metric write returns after one atomic load and Now returns 0, so
// engine code pays nothing for being instrumented.
var enabled atomic.Bool

// SetEnabled turns metric recording on or off process-wide. CLIs enable it
// when any observability output (-obs-listen, -obs-dump, profiling) is
// requested; the gate never changes what an experiment computes, only
// whether its timings and counts are recorded.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// epoch anchors monotonic stamps; only differences of stamps are
// meaningful.
var epoch = time.Now()

// Now returns a monotonic nanosecond stamp for timing a stage, or 0 when
// recording is disabled (so a disabled hot path never reads the clock).
// Stamps are strictly positive; pair with Histogram.ObserveSince or
// SinceNS.
func Now() int64 {
	if !enabled.Load() {
		return 0
	}
	return int64(time.Since(epoch)) + 1
}

// SinceNS returns the nanoseconds elapsed since stamp t0, or 0 for the
// zero stamp (recording was disabled when the stage started).
func SinceNS(t0 int64) int64 {
	if t0 == 0 {
		return 0
	}
	if d := int64(time.Since(epoch)) + 1 - t0; d > 0 {
		return d
	}
	return 0
}

// A Counter is a monotonically increasing atomic count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n (recording must be enabled).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// A Gauge is an atomically replaced float64 (last write wins).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set replaces the gauge's value (recording must be enabled).
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// A Stage is a named per-stage timer: Start stamps the wall clock, End
// records the elapsed nanoseconds into the stage's histogram. The zero
// stamp (recording disabled at Start) records nothing.
type Stage struct {
	// H is the histogram the stage records into.
	H *Histogram
}

// Start returns a stamp for End (0 while recording is disabled).
func (s Stage) Start() int64 { return Now() }

// End records the nanoseconds elapsed since the Start stamp.
func (s Stage) End(t0 int64) { s.H.ObserveSince(t0) }

// A Registry holds named metrics. All methods are safe for concurrent use;
// lookups get-or-create, so package-level handles can be built at init
// time in any dependency order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry every instrumented package records
// into and every CLI endpoint serves.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// Stage returns a named per-stage timer recording into the histogram of
// the same name (by convention suffixed _ns).
func (r *Registry) Stage(name string) Stage { return Stage{r.Histogram(name)} }

// Snapshot captures every metric in the registry, each list sorted by
// name. The capture is not a single atomic cut across metrics — writers
// may land between reads — but each individual metric is read atomically,
// which is all a wall-side consumer needs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
