package experiment

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sort"

	"puffer/internal/stats"
)

// SchemeAcc is one scheme's mergeable analysis state: the CONSORT counters
// plus the per-stream series the estimators need. Shards (and days, in the
// continual runner) each accumulate privately, then merge in a deterministic
// order; the bootstrap runs once on the merged state. Fields are exported so
// accumulators can be checkpointed with gob.
type SchemeAcc struct {
	Name string

	Sessions    int
	Streams     int
	NeverPlayed int
	ShortWatch  int
	BadDecoder  int
	Considered  int

	Points    stats.StreamAcc   // (watch, stall) per considered stream
	SSIM      stats.WeightedAcc // SSIM weighted by watch time
	Startup   stats.WeightedAcc
	FirstSSIM stats.WeightedAcc
	Duration  stats.WeightedAcc

	VarSum float64
	VarN   int
	BrSum  float64
	BrN    int
}

// Merge folds another scheme accumulator into this one.
func (a *SchemeAcc) Merge(b *SchemeAcc) {
	a.Sessions += b.Sessions
	a.Streams += b.Streams
	a.NeverPlayed += b.NeverPlayed
	a.ShortWatch += b.ShortWatch
	a.BadDecoder += b.BadDecoder
	a.Considered += b.Considered
	a.Points.Merge(&b.Points)
	a.SSIM.Merge(&b.SSIM)
	a.Startup.Merge(&b.Startup)
	a.FirstSSIM.Merge(&b.FirstSSIM)
	a.Duration.Merge(&b.Duration)
	a.VarSum += b.VarSum
	a.VarN += b.VarN
	a.BrSum += b.BrSum
	a.BrN += b.BrN
}

// TrialAcc accumulates per-scheme analysis state for one analysis filter.
// It is the streaming replacement for materializing a whole *Result: fold
// sessions in with AddSession, merge shards with Merge, and call Analyze
// once at the end.
type TrialAcc struct {
	Filter  AnalysisFilter
	Schemes map[string]*SchemeAcc
}

// NewTrialAcc returns an empty accumulator for the given filter.
func NewTrialAcc(filter AnalysisFilter) *TrialAcc {
	return &TrialAcc{Filter: filter, Schemes: make(map[string]*SchemeAcc)}
}

// scheme returns (creating if needed) the accumulator for a scheme name.
func (t *TrialAcc) scheme(name string) *SchemeAcc {
	a, ok := t.Schemes[name]
	if !ok {
		a = &SchemeAcc{Name: name}
		t.Schemes[name] = a
	}
	return a
}

// trialAccWire is the deterministic gob form of TrialAcc: the scheme
// accumulators as a name-sorted slice. Encoding the Schemes map directly
// would write it in Go's randomized map iteration order, making the
// checkpointed acc.gob bytes vary run to run even for identical results.
type trialAccWire struct {
	Filter  AnalysisFilter
	Schemes []SchemeAcc
}

// GobEncode implements gob.GobEncoder with byte-reproducible output:
// encoding the same accumulator state always yields the same bytes, so
// checkpoint trees can be compared with cmp/diff.
func (t *TrialAcc) GobEncode() ([]byte, error) {
	w := trialAccWire{Filter: t.Filter}
	for _, name := range sortedSchemeNames(t.Schemes) {
		w.Schemes = append(w.Schemes, *t.Schemes[name])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for the wire form above.
func (t *TrialAcc) GobDecode(b []byte) error {
	var w trialAccWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	t.Filter = w.Filter
	t.Schemes = make(map[string]*SchemeAcc, len(w.Schemes))
	for i := range w.Schemes {
		a := w.Schemes[i]
		t.Schemes[a.Name] = &a
	}
	return nil
}

// AddSession folds one session's streams into the accumulator, applying the
// paper's eligibility exclusions and the filter. The session itself can be
// discarded afterwards.
func (t *TrialAcc) AddSession(sess *SessionResult) {
	a := t.scheme(sess.Scheme)
	a.Sessions++
	a.Duration.AddUnit(sess.Duration)
	for _, s := range sess.Streams {
		a.Streams++
		switch {
		case s.BadDecoder:
			a.BadDecoder++
			continue
		case s.NeverPlayed:
			a.NeverPlayed++
			continue
		case s.WatchTime() < 4:
			a.ShortWatch++
			continue
		}
		if t.Filter == SlowPaths && !s.SlowPath() {
			continue
		}
		a.Considered++
		a.Points.Add(stats.StreamPoint{Watch: s.WatchTime(), Stall: s.StallTime})
		a.SSIM.Add(s.SSIMMean, s.WatchTime())
		if s.Chunks > 1 {
			a.VarSum += s.SSIMVar
			a.VarN++
		}
		if s.MeanBitrate > 0 {
			a.BrSum += s.MeanBitrate
			a.BrN++
		}
		a.Startup.AddUnit(s.StartupDelay)
		a.FirstSSIM.AddUnit(s.FirstChunkSSIM)
	}
}

// Merge folds another trial accumulator into this one. Callers must merge in
// a deterministic order (shard order, day order) for reproducible results.
func (t *TrialAcc) Merge(o *TrialAcc) {
	for _, name := range sortedSchemeNames(o.Schemes) {
		t.scheme(name).Merge(o.Schemes[name])
	}
}

// Analyze runs the merge-then-bootstrap path: per-scheme statistics with
// bootstrap confidence intervals over the accumulated streams. The bootstrap
// RNG is seeded per (seed, scheme name) so analyses are reproducible and
// every scheme's resampling is independent.
func (t *TrialAcc) Analyze(seed int64) []SchemeStats {
	names := sortedSchemeNames(t.Schemes)
	out := make([]SchemeStats, 0, len(names))
	for _, name := range names {
		a := t.Schemes[name]
		st := SchemeStats{
			Name:     name,
			Sessions: a.Sessions, Streams: a.Streams,
			NeverPlayed: a.NeverPlayed, ShortWatch: a.ShortWatch,
			BadDecoder: a.BadDecoder, Considered: a.Considered,
			WatchYears: a.Points.StreamYears(),
		}
		rng := rand.New(rand.NewSource(mix(seed, nameSeed(name))))
		st.StallRatio = a.Points.Bootstrap(rng, 400, 0.95)
		st.SSIM = a.SSIM.Interval(0.95)
		if a.VarN > 0 {
			st.SSIMVar = a.VarSum / float64(a.VarN)
		}
		if a.BrN > 0 {
			st.MeanBitrate = a.BrSum / float64(a.BrN)
		}
		st.MeanStartup = a.Startup.Interval(0.95)
		st.MeanFirstSSIM = a.FirstSSIM.Interval(0.95)
		st.MeanDuration = a.Duration.Interval(0.95)
		out = append(out, st)
	}
	return out
}

// NumShards returns the shard count for n sessions at the given shard size.
func NumShards(n, shardSize int) int {
	return (n + shardSize - 1) / shardSize
}

// ShardRange returns shard s's session-id range [lo, hi).
func ShardRange(n, shardSize, s int) (lo, hi int) {
	lo, hi = s*shardSize, (s+1)*shardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// FoldShards builds the canonical sharded aggregate every execution engine
// must replicate for byte-identical pooled statistics: per-shard
// accumulators fold sessions in ascending-id order (fetched via get, which
// may compute the session or read a finished result) and merge in shard
// order.
func FoldShards(n, shardSize int, filter AnalysisFilter, get func(id int) *SessionResult) *TrialAcc {
	total := NewTrialAcc(filter)
	for s := 0; s < NumShards(n, shardSize); s++ {
		lo, hi := ShardRange(n, shardSize, s)
		acc := NewTrialAcc(filter)
		for id := lo; id < hi; id++ {
			acc.AddSession(get(id))
		}
		total.Merge(acc)
	}
	return total
}

// FoldShard runs sessions [lo, hi) of the trial and folds them into a
// fresh accumulator in id order — the shard unit of FoldShards, exposed
// separately so worker pools can compute shards in parallel and merge in
// shard order themselves.
func (cfg *Config) FoldShard(lo, hi int, filter AnalysisFilter) *TrialAcc {
	acc := NewTrialAcc(filter)
	for id := lo; id < hi; id++ {
		sess := cfg.RunOne(id)
		acc.AddSession(&sess)
	}
	return acc
}

// sortedSchemeNames returns map keys in deterministic (sorted) order.
func sortedSchemeNames(m map[string]*SchemeAcc) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
