// ABR tournament: every classical scheme (plus the related-work baselines
// the paper cites: rate-based and BOLA) on the same randomized workload —
// the style of comparison the paper's §5 tables are built from.
//
//	go run ./examples/abr-tournament
//
// Set PUFFER_EXAMPLE_SCALE (e.g. 0.2) to shrink session counts for a quick
// smoke run.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"puffer"
	"puffer/examples/internal/exscale"
	"puffer/internal/abr"
	"puffer/internal/experiment"
	"puffer/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	schemes := []puffer.Scheme{
		{Name: "BBA", New: func() puffer.Algorithm { return abr.NewBBA() }},
		{Name: "MPC-HM", New: func() puffer.Algorithm { return abr.NewMPCHM() }},
		{Name: "RobustMPC-HM", New: func() puffer.Algorithm { return abr.NewRobustMPCHM() }},
		{Name: "RateBased", New: func() puffer.Algorithm { return abr.NewRateBased() }},
		{Name: "BOLA", New: func() puffer.Algorithm { return abr.NewBOLA() }},
	}

	log.Printf("running %d-session tournament over deployment-like paths...", exscale.Scaled(600))
	res, err := puffer.RunExperiment(puffer.Config{
		Env:      puffer.DefaultEnv(),
		Schemes:  schemes,
		Sessions: exscale.Scaled(600),
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}

	rows := puffer.Analyze(res, puffer.AllPaths, 12)
	sort.Slice(rows, func(i, j int) bool { return rows[i].StallRatio.Point < rows[j].StallRatio.Point })
	fmt.Printf("%-14s %12s %10s %10s %12s %9s\n",
		"Scheme", "Stalled", "SSIM", "dSSIM", "Bitrate", "Streams")
	for _, r := range rows {
		fmt.Printf("%-14s %11.3f%% %7.2f dB %7.2f dB %9.2f Mbps %8d\n",
			r.Name, 100*r.StallRatio.Point, r.SSIM.Point, r.SSIMVar, r.MeanBitrate/1e6, r.Considered)
	}

	// Dump per-stream summaries for offline analysis, in the open-data
	// style of the paper's appendix.
	f, err := os.Create("tournament_streams.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var all []telemetry.StreamSummary
	for _, m := range experiment.EligibleStreams(res, experiment.AllPaths) {
		all = append(all, m...)
	}
	if err := telemetry.WriteSummariesCSV(f, all); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d stream summaries to tournament_streams.csv", len(all))
}
