package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden scenario spec files")

// TestRegisteredScenarioGoldenFiles pins the canonical JSON of every
// registered scenario to a checked-in golden file. A diff here means the
// spec format, a default, or a built-in scenario changed — all of which
// invalidate users' committed spec files and checkpoint guard hashes, so
// the change must be deliberate (regenerate with -update-golden).
func TestRegisteredScenarioGoldenFiles(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered scenarios")
	}
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, name := range names {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names lists %q but Lookup misses it", name)
		}
		path := filepath.Join(dir, name+".json")
		seen[name+".json"] = true
		got := s.CanonicalJSON()
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file for %q (run with -update-golden): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("scenario %q drifted from its golden spec file %s:\n--- got ---\n%s--- want ---\n%s",
				name, path, got, want)
		}
		// Every registered scenario must compile and carry its guard.
		cfg, err := Compile(s)
		if err != nil {
			t.Fatalf("registered scenario %q does not compile: %v", name, err)
		}
		if cfg.SpecHash != s.GuardHash() {
			t.Fatalf("scenario %q compiled with the wrong guard hash", name)
		}
	}
	// No stale golden files for unregistered scenarios.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !seen[e.Name()] {
			t.Errorf("stale golden file %s has no registered scenario", e.Name())
		}
	}
}
