// Package tcpsim is a fluid model of a BBR-flavored TCP sender pushing video
// chunks over a netem.Path. It is not a packet simulator: it integrates send
// and drain rates over piecewise-constant capacity segments, which is fast
// enough to back hundreds of thousands of simulated streams.
//
// What the model does capture — because the paper's results depend on it:
//
//   - slow-start ramp on fresh connections (small early chunks finish in a
//     couple of RTTs; the ramp makes transmission time nonlinear in size);
//   - bandwidth-estimate lag after capacity changes (the predictor's job is
//     exactly to see through this);
//   - queue-induced RTT inflation bounded by the path's queue capacity;
//   - a tcp_info-equivalent snapshot (cwnd, in-flight, min/smoothed RTT,
//     delivery rate) mirroring the fields Puffer records in video_sent and
//     feeds to the TTP (§4.1).
//
// Main entry points:
//
//   - Dial: open a connection over a sampled path; one Conn backs a whole
//     session across channel changes, as on Puffer.
//   - Conn.TransferUpTo: send one chunk with a deadline (the stream loop's
//     workhorse); Conn.Wait advances idle time; Conn.Now is the session
//     clock.
//   - Conn.Info: the tcp_info snapshot (Info mirrors tcpi_snd_cwnd,
//     unacked, tcpi_min_rtt, tcpi_rtt, tcpi_delivery_rate; MSS matches how
//     tcp_info reports packet counts).
package tcpsim
