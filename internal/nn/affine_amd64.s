// AVX2 kernel for the packed (transposed-weight) affine layer, plus the
// CPUID/XGETBV probes that gate it.
//
// The kernel vectorizes across outputs: weights are input-major
// (wt[i*nOut+o]), so the 4/8/16 outputs of a block load as unit-stride
// vectors while x[i] broadcasts. Each output element still accumulates in
// ascending input order starting from its bias, with a separate VMULPD and
// VADDPD rounding per term (no FMA contraction), so results are bitwise
// identical to the scalar kernel in math.go.

#include "textflag.h"

// func affineRowTAVX2(dst, bias, x, wt *float64, nIn, nOut int)
TEXT ·affineRowTAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ bias+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ wt+24(FP), CX
	MOVQ nIn+32(FP), R8
	MOVQ nOut+40(FP), R9
	MOVQ R9, R10
	SHLQ $3, R10              // wt row stride in bytes (nOut*8)
	XORQ R11, R11             // o := 0

o16:	// blocks of 16 outputs
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $16
	JLT  o8
	VMOVUPD (SI)(R11*8), Y0   // accumulators start from the bias
	VMOVUPD 32(SI)(R11*8), Y1
	VMOVUPD 64(SI)(R11*8), Y2
	VMOVUPD 96(SI)(R11*8), Y3
	LEAQ (CX)(R11*8), R12     // &wt[0*nOut+o]
	MOVQ DX, R13              // &x[0]
	MOVQ R8, R14              // i countdown
i16:
	TESTQ R14, R14
	JZ    s16
	VBROADCASTSD (R13), Y4
	VMOVUPD (R12), Y5
	VMOVUPD 32(R12), Y6
	VMOVUPD 64(R12), Y7
	VMOVUPD 96(R12), Y8
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VMULPD Y4, Y7, Y7
	VMULPD Y4, Y8, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  i16
s16:
	VMOVUPD Y0, (DI)(R11*8)
	VMOVUPD Y1, 32(DI)(R11*8)
	VMOVUPD Y2, 64(DI)(R11*8)
	VMOVUPD Y3, 96(DI)(R11*8)
	ADDQ $16, R11
	JMP  o16

o8:	// one block of 8 outputs
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $8
	JLT  o4
	VMOVUPD (SI)(R11*8), Y0
	VMOVUPD 32(SI)(R11*8), Y1
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
i8:
	TESTQ R14, R14
	JZ    s8
	VBROADCASTSD (R13), Y4
	VMOVUPD (R12), Y5
	VMOVUPD 32(R12), Y6
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  i8
s8:
	VMOVUPD Y0, (DI)(R11*8)
	VMOVUPD Y1, 32(DI)(R11*8)
	ADDQ $8, R11
	JMP  o8

o4:	// one block of 4 outputs
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $4
	JLT  o1
	VMOVUPD (SI)(R11*8), Y0
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
i4:
	TESTQ R14, R14
	JZ    s4
	VBROADCASTSD (R13), Y4
	VMOVUPD (R12), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  i4
s4:
	VMOVUPD Y0, (DI)(R11*8)
	ADDQ $4, R11
	JMP  o4

o1:	// scalar tail outputs
	CMPQ R11, R9
	JGE  done
	VMOVSD (SI)(R11*8), X0
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
i1:
	TESTQ R14, R14
	JZ    s1
	VMOVSD (R13), X4
	VMULSD (R12), X4, X4
	VADDSD X4, X0, X0
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  i1
s1:
	VMOVSD X0, (DI)(R11*8)
	INCQ R11
	JMP  o1

done:
	VZEROUPPER
	RET

// func affineRowTAVX512(dst, bias, x, wt *float64, nIn, nOut int)
//
// Same contract as affineRowTAVX2 on 512-bit vectors: blocks of 32 and 8
// outputs accumulate from the bias in ascending input order with separate
// VMULPD/VADDPD roundings, then the AVX2-style 4-wide and scalar tails
// finish the remainder.
TEXT ·affineRowTAVX512(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ bias+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ wt+24(FP), CX
	MOVQ nIn+32(FP), R8
	MOVQ nOut+40(FP), R9
	MOVQ R9, R10
	SHLQ $3, R10              // wt row stride in bytes (nOut*8)
	XORQ R11, R11             // o := 0

z32:	// blocks of 32 outputs
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $32
	JLT  z8
	VMOVUPD (SI)(R11*8), Z0
	VMOVUPD 64(SI)(R11*8), Z1
	VMOVUPD 128(SI)(R11*8), Z2
	VMOVUPD 192(SI)(R11*8), Z3
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
zi32:
	TESTQ R14, R14
	JZ    zs32
	VBROADCASTSD (R13), Z4
	VMOVUPD (R12), Z5
	VMOVUPD 64(R12), Z6
	VMOVUPD 128(R12), Z7
	VMOVUPD 192(R12), Z8
	VMULPD Z4, Z5, Z5
	VMULPD Z4, Z6, Z6
	VMULPD Z4, Z7, Z7
	VMULPD Z4, Z8, Z8
	VADDPD Z5, Z0, Z0
	VADDPD Z6, Z1, Z1
	VADDPD Z7, Z2, Z2
	VADDPD Z8, Z3, Z3
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  zi32
zs32:
	VMOVUPD Z0, (DI)(R11*8)
	VMOVUPD Z1, 64(DI)(R11*8)
	VMOVUPD Z2, 128(DI)(R11*8)
	VMOVUPD Z3, 192(DI)(R11*8)
	ADDQ $32, R11
	JMP  z32

z8:	// blocks of 8 outputs
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $8
	JLT  z4
	VMOVUPD (SI)(R11*8), Z0
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
zi8:
	TESTQ R14, R14
	JZ    zs8
	VBROADCASTSD (R13), Z4
	VMOVUPD (R12), Z5
	VMULPD Z4, Z5, Z5
	VADDPD Z5, Z0, Z0
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  zi8
zs8:
	VMOVUPD Z0, (DI)(R11*8)
	ADDQ $8, R11
	JMP  z8

z4:	// one block of 4 outputs (AVX2 width)
	MOVQ R9, AX
	SUBQ R11, AX
	CMPQ AX, $4
	JLT  z1
	VMOVUPD (SI)(R11*8), Y0
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
zi4:
	TESTQ R14, R14
	JZ    zs4
	VBROADCASTSD (R13), Y4
	VMOVUPD (R12), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  zi4
zs4:
	VMOVUPD Y0, (DI)(R11*8)
	ADDQ $4, R11
	JMP  z4

z1:	// scalar tail outputs
	CMPQ R11, R9
	JGE  zdone
	VMOVSD (SI)(R11*8), X0
	LEAQ (CX)(R11*8), R12
	MOVQ DX, R13
	MOVQ R8, R14
zi1:
	TESTQ R14, R14
	JZ    zs1
	VMOVSD (R13), X4
	VMULSD (R12), X4, X4
	VADDSD X4, X0, X0
	ADDQ $8, R13
	ADDQ R10, R12
	DECQ R14
	JMP  zi1
zs1:
	VMOVSD X0, (DI)(R11*8)
	INCQ R11
	JMP  z1

zdone:
	VZEROUPPER
	RET

// func reluVecAVX2(v *float64, n int)
//
// Branchless in-place ReLU: v[i] = v[i] > 0 ? v[i] : +0. VMAXPD with +0 as
// the second source reproduces the scalar rule exactly: negatives, -0, and
// NaN all map to +0, positives pass through.
TEXT ·reluVecAVX2(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	VXORPD Y1, Y1, Y1
r4:
	CMPQ CX, $4
	JLT  rtail
	VMOVUPD (DI), Y0
	VMAXPD Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  r4
rtail:
	TESTQ CX, CX
	JZ    rdone
	VMOVSD (DI), X0
	VXORPD X1, X1, X1
	VMAXSD X1, X0, X0
	VMOVSD X0, (DI)
	ADDQ $8, DI
	DECQ CX
	JMP  rtail
rdone:
	VZEROUPPER
	RET

// func reluVecAVX512(v *float64, n int)
TEXT ·reluVecAVX512(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	VPXORQ Z1, Z1, Z1
r8:
	CMPQ CX, $8
	JLT  r512tail
	VMOVUPD (DI), Z0
	VMAXPD Z1, Z0, Z0
	VMOVUPD Z0, (DI)
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  r8
r512tail:
	TESTQ CX, CX
	JZ    r512done
	VMOVSD (DI), X0
	VXORPD X1, X1, X1
	VMAXSD X1, X0, X0
	VMOVSD X0, (DI)
	ADDQ $8, DI
	DECQ CX
	JMP  r512tail
r512done:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
