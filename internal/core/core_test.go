package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puffer/internal/abr"
	"puffer/internal/tcpsim"
)

func TestFeatureConfigDim(t *testing.T) {
	cases := []struct {
		cfg  FeatureConfig
		want int
	}{
		{DefaultFeatures(), 22},
		{FeatureConfig{HistLen: 8, UseTCPInfo: false, UseProposedSize: true}, 17},
		{FeatureConfig{HistLen: 2, UseTCPInfo: true, UseProposedSize: true}, 10},
		{FeatureConfig{HistLen: 8, UseTCPInfo: true, UseProposedSize: false}, 21},
	}
	for i, c := range cases {
		if got := c.cfg.Dim(); got != c.want {
			t.Errorf("case %d: Dim = %d, want %d", i, got, c.want)
		}
	}
}

func TestAssemblePaddingAndOrder(t *testing.T) {
	cfg := DefaultFeatures()
	dst := make([]float64, cfg.Dim())
	hist := []abr.ChunkRecord{
		{Size: 1e6, TransTime: 0.5},
		{Size: 2e6, TransTime: 1.5},
	}
	info := tcpsim.Info{CWND: 50, InFlight: 25, MinRTT: 0.04, RTT: 0.05, DeliveryRate: 20e6}
	cfg.Assemble(dst, hist, info, 3e6)

	// Sizes: slots 0..7, newest last. With 2 records, slots 6 and 7.
	for i := 0; i < 6; i++ {
		if dst[i] != 0 {
			t.Fatalf("size slot %d = %v, want zero padding", i, dst[i])
		}
	}
	if dst[6] != 1.0 || dst[7] != 2.0 {
		t.Fatalf("size slots = %v,%v want 1,2 (MB)", dst[6], dst[7])
	}
	// Times: slots 8..15.
	if dst[14] != 0.5 || dst[15] != 1.5 {
		t.Fatalf("time slots = %v,%v want 0.5,1.5", dst[14], dst[15])
	}
	// TCP: slots 16..20.
	if dst[16] != 0.5 || dst[17] != 0.25 {
		t.Fatalf("cwnd/inflight = %v,%v", dst[16], dst[17])
	}
	if math.Abs(dst[18]-0.4) > 1e-12 || math.Abs(dst[19]-0.5) > 1e-12 {
		t.Fatalf("rtt features = %v,%v", dst[18], dst[19])
	}
	if dst[20] != 2.0 {
		t.Fatalf("delivery rate feature = %v, want 2.0", dst[20])
	}
	// Proposed size last.
	if dst[21] != 3.0 {
		t.Fatalf("proposed size = %v, want 3.0", dst[21])
	}
}

func TestAssembleTruncatesLongHistory(t *testing.T) {
	cfg := FeatureConfig{HistLen: 2, UseTCPInfo: false, UseProposedSize: true}
	dst := make([]float64, cfg.Dim())
	hist := make([]abr.ChunkRecord, 10)
	for i := range hist {
		hist[i] = abr.ChunkRecord{Size: float64(i) * 1e6, TransTime: float64(i)}
	}
	cfg.Assemble(dst, hist, tcpsim.Info{}, 1e6)
	if dst[0] != 8.0 || dst[1] != 9.0 {
		t.Fatalf("sizes = %v,%v want most recent two (8,9)", dst[0], dst[1])
	}
}

func TestAssembleClipsAbsurdTimes(t *testing.T) {
	cfg := FeatureConfig{HistLen: 1, UseTCPInfo: false, UseProposedSize: false}
	dst := make([]float64, cfg.Dim())
	cfg.Assemble(dst, []abr.ChunkRecord{{Size: 1e6, TransTime: 500}}, tcpsim.Info{}, 0)
	if dst[1] != 20 {
		t.Fatalf("transmission time not clipped: %v", dst[1])
	}
}

func TestThroughputBinsMonotoneRoundtrip(t *testing.T) {
	prev := -1.0
	for i := 0; i < abr.NumBins; i++ {
		v := ThroughputBinValue(i)
		if v <= prev {
			t.Fatalf("bin %d value %v not increasing", i, v)
		}
		if got := ThroughputBinIndex(v); got != i {
			t.Fatalf("roundtrip bin %d -> %d", i, got)
		}
		prev = v
	}
	if ThroughputBinIndex(1) != 0 {
		t.Fatal("tiny throughput should be bin 0")
	}
	if ThroughputBinIndex(1e12) != abr.NumBins-1 {
		t.Fatal("huge throughput should be the last bin")
	}
}

func TestTTPLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tt := NewTTP(rng, 1, nil, DefaultFeatures(), KindTransTime)
	if got := tt.Label(1e6, 0.6); got != abr.BinIndex(0.6) {
		t.Fatalf("trans-time label = %d", got)
	}
	tp := NewTTP(rng, 1, nil, FeatureConfig{HistLen: 8, UseTCPInfo: true}, KindThroughput)
	if got := tp.Label(1e6, 2); got != ThroughputBinIndex(4e6) {
		t.Fatalf("throughput label = %d, want bin of 4 Mbps", got)
	}
	if got := tp.Label(1e6, 0); got != abr.NumBins-1 {
		t.Fatalf("degenerate time label = %d", got)
	}
}

func TestTTPSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := NewTTP(rng, 3, nil, DefaultFeatures(), KindTransTime)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon() != 3 || got.Cfg != orig.Cfg || got.Kind != orig.Kind {
		t.Fatalf("roundtrip metadata mismatch: %+v", got)
	}
	x := make([]float64, orig.Cfg.Dim())
	for i := range x {
		x[i] = rng.Float64()
	}
	a := orig.Nets[1].Forward(x)
	b := got.Nets[1].Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("roundtripped TTP differs")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewTTP(rng, 2, nil, DefaultFeatures(), KindTransTime)
	b := a.Clone()
	a.Nets[0].W[0][0] += 42
	if b.Nets[0].W[0][0] == a.Nets[0].W[0][0] {
		t.Fatal("clone shares storage")
	}
}

func TestPredictorProbabilisticSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ttp := NewTTP(rng, DefaultHorizon, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModeProbabilistic)
	obs := &abr.Observation{TCP: tcpsim.Info{CWND: 10, MinRTT: 0.04, RTT: 0.05, DeliveryRate: 5e6}}
	dist := make([]float64, abr.NumBins)
	for step := 0; step < DefaultHorizon+2; step++ { // beyond-horizon steps clamp
		p.PredictDist(obs, step, 1e6, dist)
		sum := 0.0
		for _, v := range dist {
			if v < 0 {
				t.Fatalf("negative probability at step %d", step)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: dist sums to %v", step, sum)
		}
	}
}

func TestPredictorPointEstimateOneHot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ttp := NewTTP(rng, 1, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModePointEstimate)
	obs := &abr.Observation{TCP: tcpsim.Info{DeliveryRate: 5e6}}
	dist := make([]float64, abr.NumBins)
	p.PredictDist(obs, 0, 1e6, dist)
	ones, zeros := 0, 0
	for _, v := range dist {
		switch v {
		case 1:
			ones++
		case 0:
			zeros++
		}
	}
	if ones != 1 || zeros != abr.NumBins-1 {
		t.Fatalf("point estimate not one-hot: %v", dist)
	}
}

func TestThroughputKindConvertsToTimeDist(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := FeatureConfig{HistLen: 8, UseTCPInfo: true, UseProposedSize: false}
	ttp := NewTTP(rng, 1, nil, cfg, KindThroughput)
	p := NewPredictor(ttp, ModeProbabilistic)
	obs := &abr.Observation{TCP: tcpsim.Info{DeliveryRate: 5e6}}
	small := make([]float64, abr.NumBins)
	large := make([]float64, abr.NumBins)
	p.PredictDist(obs, 0, 1e5, small)
	p.PredictDist(obs, 0, 8e6, large)
	meanOf := func(d []float64) float64 {
		m := 0.0
		for i, pr := range d {
			m += pr * abr.BinValue(i)
		}
		return m
	}
	if !(meanOf(large) > meanOf(small)) {
		t.Fatal("larger proposed size must shift time distribution upward")
	}
	sum := 0.0
	for _, v := range large {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("converted dist sums to %v", sum)
	}
}

// synthDataset builds streams where transmission time follows
// T = rtt/2 + size*8/rate, rate is exposed in Info.DeliveryRate, and sizes
// vary — enough structure for the full TTP to shine over its ablations.
func synthDataset(rng *rand.Rand, streams, chunks int, day int) *Dataset {
	d := &Dataset{}
	for s := 0; s < streams; s++ {
		rate := 1e6 * math.Exp(rng.Float64()*3) // 1..20 Mbps
		rtt := 0.02 + rng.Float64()*0.2
		var st StreamObs
		for i := 0; i < chunks; i++ {
			// Rate drifts within the stream; delivery_rate tracks it.
			rate *= math.Exp(0.05 * rng.NormFloat64())
			size := (0.2 + rng.Float64()*2.8) * 1e6
			tt := rtt/2 + size*8/rate*math.Exp(0.05*rng.NormFloat64())
			st.Chunks = append(st.Chunks, ChunkObs{
				Size:      size,
				TransTime: tt,
				Info: tcpsim.Info{
					CWND: 2 * rate / 8 * rtt / tcpsim.MSS, InFlight: rate / 8 * rtt / tcpsim.MSS,
					MinRTT: rtt, RTT: rtt * 1.1, DeliveryRate: rate * math.Exp(0.03*rng.NormFloat64()),
				},
				Day: day,
			})
		}
		d.Streams = append(d.Streams, st)
	}
	return d
}

func TestTrainingImprovesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := synthDataset(rng, 60, 30, 0)
	test := synthDataset(rng, 20, 30, 0)
	ttp := NewTTP(rand.New(rand.NewSource(8)), 1, []int{32, 32}, DefaultFeatures(), KindTransTime)
	before := Evaluate(ttp, test, 0)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	res, err := Train(ttp, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(ttp, test, 0)
	if !(after.CrossEntropy < before.CrossEntropy*0.8) {
		t.Fatalf("training did not improve held-out CE: %v -> %v", before.CrossEntropy, after.CrossEntropy)
	}
	if res.Examples[0] == 0 {
		t.Fatal("no examples reported")
	}
	if after.Within1 < 0.45 {
		t.Fatalf("Within1 = %v, want >= 0.45 on easy synthetic data", after.Within1)
	}
}

func TestFigure7ShapeOnSynthetic(t *testing.T) {
	// Package-scale version of Figure 7: the full TTP must beat the
	// linear model and the size-blind throughput predictor on held-out
	// transmission-time cross-entropy.
	if testing.Short() {
		t.Skip("training comparison skipped in -short")
	}
	rng := rand.New(rand.NewSource(9))
	train := synthDataset(rng, 80, 30, 0)
	test := synthDataset(rng, 30, 30, 0)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6

	ce := map[Variant]float64{}
	for _, v := range []Variant{VariantFull, VariantLinear, VariantThroughput} {
		ttp := NewVariantTTP(rand.New(rand.NewSource(10)), v, 1)
		if _, err := Train(ttp, train, cfg); err != nil {
			t.Fatal(err)
		}
		ce[v] = EvaluateTransTime(ttp, test, 0).CrossEntropy
	}
	if !(ce[VariantFull] < ce[VariantLinear]) {
		t.Errorf("full TTP CE %.3f not better than linear %.3f", ce[VariantFull], ce[VariantLinear])
	}
	if !(ce[VariantFull] < ce[VariantThroughput]) {
		t.Errorf("full TTP CE %.3f not better than throughput predictor %.3f", ce[VariantFull], ce[VariantThroughput])
	}
}

func TestRecencyWeightingFollowsRecentDays(t *testing.T) {
	// Two regimes: old days say "fast network", recent days say "slow".
	// With strong recency weighting the model must predict slow.
	rng := rand.New(rand.NewSource(11))
	d := &Dataset{}
	mk := func(rate float64, day, n int) {
		for s := 0; s < n; s++ {
			var st StreamObs
			for i := 0; i < 20; i++ {
				size := 1e6
				st.Chunks = append(st.Chunks, ChunkObs{
					Size: size, TransTime: size * 8 / rate,
					Info: tcpsim.Info{DeliveryRate: 5e6, RTT: 0.05, MinRTT: 0.04, CWND: 40, InFlight: 20},
					Day:  day,
				})
			}
			d.Streams = append(d.Streams, st)
		}
	}
	mk(16e6, 0, 30) // old: 1e6 bytes in 0.5 s -> bin 1
	mk(2e6, 13, 30) // recent: 4 s -> bin 8
	_ = rng

	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.RecencyBase = 0.5 // aggressive
	ttp := NewTTP(rand.New(rand.NewSource(12)), 1, []int{16}, DefaultFeatures(), KindTransTime)
	if _, err := Train(ttp, d, cfg); err != nil {
		t.Fatal(err)
	}
	pred := NewPredictor(ttp, ModeProbabilistic)
	x := make([]float64, ttp.Cfg.Dim())
	hist := []abr.ChunkRecord{{Size: 1e6, TransTime: 4}}
	ttp.Cfg.Assemble(x, hist, tcpsim.Info{DeliveryRate: 5e6, RTT: 0.05, MinRTT: 0.04, CWND: 40, InFlight: 20}, 1e6)
	dist := make([]float64, abr.NumBins)
	pred.PredictFeatures(0, x, dist)
	slowMass, fastMass := 0.0, 0.0
	for i, p := range dist {
		if i >= 6 {
			slowMass += p
		}
		if i <= 2 {
			fastMass += p
		}
	}
	if slowMass <= fastMass {
		t.Fatalf("recency weighting ignored: slow mass %.3f vs fast mass %.3f", slowMass, fastMass)
	}
}

func TestWindowDaysExcludesOldData(t *testing.T) {
	d := &Dataset{}
	var st StreamObs
	for i := 0; i < 10; i++ {
		st.Chunks = append(st.Chunks, ChunkObs{Size: 1e6, TransTime: 1, Day: 0})
	}
	d.Streams = append(d.Streams, st)
	var st2 StreamObs
	for i := 0; i < 10; i++ {
		st2.Chunks = append(st2.Chunks, ChunkObs{Size: 1e6, TransTime: 1, Day: 20})
	}
	d.Streams = append(d.Streams, st2)

	ttp := NewTTP(rand.New(rand.NewSource(13)), 1, []int{4}, DefaultFeatures(), KindTransTime)
	xsAll, _, _ := d.Examples(ttp, 0, TrainConfig{})
	xsWin, _, _ := d.Examples(ttp, 0, TrainConfig{WindowDays: 14})
	if len(xsWin) >= len(xsAll) {
		t.Fatalf("window did not exclude old data: %d vs %d", len(xsWin), len(xsAll))
	}
	if len(xsWin) != 10 {
		t.Fatalf("windowed examples = %d, want 10 (recent stream only)", len(xsWin))
	}
}

func TestExamplesStepOffset(t *testing.T) {
	// For step k the label must come from chunk i+k.
	d := &Dataset{Streams: []StreamObs{{Chunks: []ChunkObs{
		{Size: 1e6, TransTime: 0.1},
		{Size: 1e6, TransTime: 2.0},
		{Size: 1e6, TransTime: 6.0},
	}}}}
	ttp := NewTTP(rand.New(rand.NewSource(14)), 3, []int{4}, DefaultFeatures(), KindTransTime)
	_, labels0, _ := d.Examples(ttp, 0, TrainConfig{})
	_, labels2, _ := d.Examples(ttp, 2, TrainConfig{})
	if len(labels0) != 3 || len(labels2) != 1 {
		t.Fatalf("example counts = %d,%d want 3,1", len(labels0), len(labels2))
	}
	if labels2[0] != abr.BinIndex(6.0) {
		t.Fatalf("step-2 label = %d, want bin of 6.0 s", labels2[0])
	}
}

func TestTrainErrorsOnEmptyDataset(t *testing.T) {
	ttp := NewTTP(rand.New(rand.NewSource(15)), 1, []int{4}, DefaultFeatures(), KindTransTime)
	if _, err := Train(ttp, &Dataset{}, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestVariantConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, v := range AllVariants() {
		ttp := NewVariantTTP(rng, v, 2)
		if ttp.Horizon() != 2 {
			t.Fatalf("%s: horizon %d", v, ttp.Horizon())
		}
		switch v {
		case VariantLinear:
			if ttp.Nets[0].NumLayers() != 1 {
				t.Fatalf("linear variant has %d layers", ttp.Nets[0].NumLayers())
			}
		case VariantThroughput:
			if ttp.Kind != KindThroughput || ttp.Cfg.UseProposedSize {
				t.Fatalf("throughput variant misconfigured: %+v", ttp.Cfg)
			}
		case VariantNoTCPInfo:
			if ttp.Cfg.UseTCPInfo {
				t.Fatal("no-tcp_info variant still uses tcp_info")
			}
		case VariantShortHistory:
			if ttp.Cfg.HistLen != 2 {
				t.Fatalf("short-history variant HistLen = %d", ttp.Cfg.HistLen)
			}
		}
		if VariantMode(v) == ModePointEstimate && v != VariantPointEstimate {
			t.Fatalf("%s should be probabilistic", v)
		}
	}
}

func TestFuguSchemeNames(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ttp := NewTTP(rng, DefaultHorizon, []int{8}, DefaultFeatures(), KindTransTime)
	if got := NewFugu(ttp).Name(); got != "Fugu" {
		t.Fatalf("name = %q", got)
	}
	if got := NewFuguNamed("Emulation-trained Fugu", ttp).Name(); got != "Emulation-trained Fugu" {
		t.Fatalf("name = %q", got)
	}
	if got := NewFuguPointEstimate(ttp).Name(); got != "Fugu-PointEstimate" {
		t.Fatalf("name = %q", got)
	}
}

func TestDatasetStats(t *testing.T) {
	d := &Dataset{Streams: []StreamObs{
		{Chunks: []ChunkObs{{Day: 1}, {Day: 3}}},
		{Chunks: []ChunkObs{{Day: 2}}},
	}}
	if d.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d", d.NumChunks())
	}
	if d.MaxDay() != 3 {
		t.Fatalf("MaxDay = %d", d.MaxDay())
	}
}

func TestAssembleNeverProducesNaN(t *testing.T) {
	cfg := DefaultFeatures()
	f := func(size, tt, rtt float64) bool {
		dst := make([]float64, cfg.Dim())
		hist := []abr.ChunkRecord{{Size: math.Abs(size), TransTime: math.Abs(tt)}}
		info := tcpsim.Info{CWND: 10, InFlight: 5, MinRTT: math.Abs(rtt), RTT: math.Abs(rtt) * 1.2, DeliveryRate: 1e6}
		cfg.Assemble(dst, hist, info, math.Abs(size))
		for _, v := range dst {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTTPForward(b *testing.B) {
	// The paper: a TTP forward pass costs well under 0.3 ms.
	rng := rand.New(rand.NewSource(1))
	ttp := NewTTP(rng, 1, nil, DefaultFeatures(), KindTransTime)
	p := NewPredictor(ttp, ModeProbabilistic)
	x := make([]float64, ttp.Cfg.Dim())
	dist := make([]float64, abr.NumBins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictFeatures(0, x, dist)
	}
}
