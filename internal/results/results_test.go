package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/experiment"
	"puffer/internal/runner"
	"puffer/internal/stats"
)

// fakeRecord fabricates a plausible record: the warehouse never inspects
// outcomes, so tests can exercise the index mechanics without running
// experiments.
func fakeRecord(i int) *Record {
	return &Record{
		Hash:      fmt.Sprintf("hash-%03d", i),
		GuardHash: fmt.Sprintf("guard-%03d", i/2),
		Name:      fmt.Sprintf("cell-%d", i),
		Spec:      json.RawMessage(fmt.Sprintf(`{"seed":%d,"drift":{"preset":"shift"},"daily":{"sessions":%d}}`, i, 100+i)),
		Outcome: Outcome{
			Total: []experiment.SchemeStats{{
				Name:       "Fugu",
				Considered: 10 * (i + 1),
				StallRatio: stats.Interval{Point: 0.01 * float64(i), Lo: 0, Hi: 0.02 * float64(i)},
				SSIM:       stats.Interval{Point: 15},
			}},
			Gaps: []runner.GapRow{
				{Day: 1, Present: true},
				{Day: 2, Present: true, Retrained: 0.01, Frozen: 0.02 + 0.01*float64(i), Gap: 0.01 + 0.01*float64(i)},
			},
		},
		Timing: Timing{WallSeconds: float64(i) * 1.5, StartedAt: "2026-08-07T00:00:00Z"},
		Host:   Host{Hostname: fmt.Sprintf("host-%d", i), OS: "linux", CPUs: 8},
	}
}

func appendAll(t *testing.T, path string, recs ...*Record) {
	t.Helper()
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "index.jsonl")
	appendAll(t, path, fakeRecord(0), fakeRecord(1), fakeRecord(2))

	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	for i := 0; i < 3; i++ {
		want := fakeRecord(i)
		rec, ok := ix.Get(want.Hash)
		if !ok {
			t.Fatalf("missing %s", want.Hash)
		}
		if rec.Name != want.Name || rec.Timing.WallSeconds != want.Timing.WallSeconds {
			t.Fatalf("record %d round-tripped wrong: %+v", i, rec)
		}
		if ix.Records[i].Hash != want.Hash {
			t.Fatalf("file order not preserved at %d", i)
		}
	}
	if ix.Has("no-such-hash") {
		t.Fatal("Has on an absent hash")
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	ix, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("missing file should load empty, got %d records", ix.Len())
	}
}

// TestTornTailRepair: a kill mid-append leaves a partial trailing line.
// Load must ignore it; OpenWriter must truncate it so the next append
// produces a well-formed file.
func TestTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	appendAll(t, path, fakeRecord(0), fakeRecord(1))

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"hash":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ix, err := Load(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated at load: %v", err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (torn line dropped)", ix.Len())
	}

	appendAll(t, path, fakeRecord(2))
	ix, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 || ix.Records[2].Hash != "hash-002" {
		t.Fatalf("repair-then-append produced %d records", ix.Len())
	}
}

// TestMalformedMidFileIsError: garbage followed by more data is
// corruption, not a torn tail, and must fail loudly.
func TestMalformedMidFileIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	blob, _ := json.Marshal(fakeRecord(0))
	content := append([]byte("not json\n"), blob...)
	content = append(content, '\n')
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed mid-file line must be an error")
	}
}

// TestCanonicalBytesExcludesTimingHost: records differing only in timing
// and host metadata are canonically identical; differing content is not.
func TestCanonicalBytesExcludesTimingHost(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")

	ra := fakeRecord(0)
	rb := fakeRecord(0)
	rb.Timing = Timing{WallSeconds: 999, StartedAt: "2031-01-01T00:00:00Z"}
	rb.Host = Host{Hostname: "elsewhere", Arch: "arm64"}
	appendAll(t, a, ra, fakeRecord(1))
	appendAll(t, b, rb, fakeRecord(1))

	ixA, _ := Load(a)
	ixB, _ := Load(b)
	if !bytes.Equal(ixA.CanonicalBytes(), ixB.CanonicalBytes()) {
		t.Fatal("CanonicalBytes must not depend on timing/host")
	}

	c := filepath.Join(dir, "c.jsonl")
	appendAll(t, c, fakeRecord(0), fakeRecord(2))
	ixC, _ := Load(c)
	if bytes.Equal(ixA.CanonicalBytes(), ixC.CanonicalBytes()) {
		t.Fatal("CanonicalBytes must reflect record content")
	}

	// The per-day fleet serving record is scheduling history (a resumed
	// cell replays days served by whichever engine ran them first), so it
	// is excluded like timing/host.
	rd := fakeRecord(0)
	rd.Outcome.Days = []runner.DayStats{{Day: 1, Chunks: 7}}
	re := fakeRecord(0)
	re.Outcome.Days = []runner.DayStats{{Day: 1, Chunks: 7, Fleet: &runner.FleetDayStats{PeakConcurrent: 9}}}
	d, e := filepath.Join(dir, "d.jsonl"), filepath.Join(dir, "e.jsonl")
	appendAll(t, d, rd)
	appendAll(t, e, re)
	ixD, _ := Load(d)
	ixE, _ := Load(e)
	if !bytes.Equal(ixD.CanonicalBytes(), ixE.CanonicalBytes()) {
		t.Fatal("CanonicalBytes must not depend on the fleet serving record")
	}
	if ixE.Records[0].Outcome.Days[0].Fleet == nil {
		t.Fatal("CanonicalBytes must not mutate loaded records")
	}
}

// TestQueryAppendOrderIndependence: the same set of records appended in
// different orders answers every query identically.
func TestQueryAppendOrderIndependence(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	appendAll(t, a, fakeRecord(0), fakeRecord(1), fakeRecord(2), fakeRecord(3))
	appendAll(t, b, fakeRecord(3), fakeRecord(1), fakeRecord(0), fakeRecord(2), fakeRecord(1)) // dup append too

	ixA, _ := Load(a)
	ixB, _ := Load(b)
	queries := []Query{
		{Cols: []string{"name", "hash", "seed", "Fugu.stall_pct"}},
		{Where: mustPreds(t, "daily.sessions>=102"), Cols: []string{"name"}},
		{PerDay: true, Cols: []string{"name", "day", "gap_pp"}},
		{PerDay: true, GroupBy: []string{"day"}, Agg: "mean", AggCol: "gap_pp"},
		{GroupBy: []string{"drift.preset"}, Agg: "count"},
	}
	for i, q := range queries {
		ta, err := ixA.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := ixB.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bb bytes.Buffer
		if err := ta.WriteText(&ba); err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteText(&bb); err != nil {
			t.Fatal(err)
		}
		if ba.String() != bb.String() {
			t.Fatalf("query %d depends on append order:\n%s\nvs\n%s", i, ba.String(), bb.String())
		}
	}
}

func mustPreds(t *testing.T, s string) []Pred {
	t.Helper()
	preds, err := ParsePreds(s)
	if err != nil {
		t.Fatal(err)
	}
	return preds
}

func TestPredicatesAndProjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	appendAll(t, path, fakeRecord(0), fakeRecord(1), fakeRecord(2))
	ix, _ := Load(path)

	tbl, err := ix.Query(Query{Where: mustPreds(t, "seed>0,seed<2"), Cols: []string{"name", "seed"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][0] != "cell-1" || tbl.Rows[0][1] != "1" {
		t.Fatalf("numeric range predicate: %+v", tbl.Rows)
	}

	tbl, err = ix.Query(Query{Where: mustPreds(t, "drift.preset!=shift"), Cols: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 0 {
		t.Fatalf("string != should match nothing here, got %+v", tbl.Rows)
	}

	// A predicate over a column records lack excludes them.
	tbl, err = ix.Query(Query{Where: mustPreds(t, "no.such.col=1"), Cols: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 0 {
		t.Fatalf("missing column must never match, got %+v", tbl.Rows)
	}

	if _, err := ParsePreds("nonsense"); err == nil {
		t.Fatal("predicate without operator must be rejected")
	}
}

func TestGroupAggregate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	appendAll(t, path, fakeRecord(0), fakeRecord(1), fakeRecord(2))
	ix, _ := Load(path)

	tbl, err := ix.Query(Query{GroupBy: []string{"drift.preset"}, Agg: "mean", AggCol: "seed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][0] != "shift" || tbl.Rows[0][1] != "1" {
		t.Fatalf("mean aggregate: %+v", tbl.Rows)
	}
	if tbl.Cols[1] != "mean(seed)" {
		t.Fatalf("aggregate column name: %v", tbl.Cols)
	}
	if _, err := ix.Query(Query{GroupBy: []string{"x"}, Agg: "median", AggCol: "seed"}); err == nil {
		t.Fatal("unknown aggregate must be rejected")
	}
	if _, err := ix.Query(Query{GroupBy: []string{"x"}, Agg: "mean"}); err == nil {
		t.Fatal("mean without a column must be rejected")
	}
}
