package scenario

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash is the canonical content hash of the experiment the spec describes:
// SHA-256 over CanonicalJSON with the documentation-only fields (Name,
// Notes) cleared. Two specs hash equal exactly when, field for field, they
// resolve to the same fully-defaulted experiment — regardless of JSON field
// order, omitted-vs-spelled-out defaults, or how they were authored
// (builder, registry, file).
func (s Spec) Hash() string {
	d := s.WithDefaults()
	d.Name, d.Notes = "", ""
	return hashJSON(d.CanonicalJSON())
}

// GuardHash is the projection of Hash that pins checkpoint manifests: the
// hash of the spec with every field that cannot change already-checkpointed
// days normalized away. Cleared before hashing, and why:
//
//   - Name, Notes — documentation only.
//   - Daily.Days — resuming a checkpoint with more (or fewer) days is the
//     core kill-and-resume workflow; completed days are untouched.
//   - Daily.Ablation — whether a frozen companion run happens beside this
//     one never changes this run's results.
//   - Engine (kind, arrival process, tick) — both engines are
//     byte-identical at the same seeds; an operator may freely resume a
//     session-engine checkpoint on the fleet engine.
//
// Everything else — environment, sessions/window/retrain, model, training,
// drift, seed, sharding — shapes results and stays in the guard.
func (s Spec) GuardHash() string {
	d := s.WithDefaults()
	d.Name, d.Notes = "", ""
	d.Daily.Days = DefaultDays
	d.Daily.Ablation = ptr(true)
	d.Engine = EngineSpec{}.withEngineDefaults()
	return hashJSON(d.CanonicalJSON())
}

func hashJSON(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}
