package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// ProtocolVersion is the coordinator/worker wire protocol version. The
// coordinator sends it in the hello frame and the worker echoes it back;
// any mismatch aborts the handshake loudly instead of risking a silent
// wrong merge.
const ProtocolVersion = 1

// maxFrame bounds a single frame's length so a corrupted header can't make
// the reader allocate unbounded memory. A day's model is a few MB and a
// shard blob tens of MB at paper scale; 256 MiB leaves ample headroom.
const maxFrame = 256 << 20

// Frame types. Every frame is a big-endian uint32 length (covering the type
// byte and the gob payload), one type byte, then the gob-encoded payload
// struct (empty for claim/shutdown).
const (
	frameHello    byte = 1 // coordinator -> worker: version + worker id + canonical spec
	frameHelloOK  byte = 2 // worker -> coordinator: version echo
	frameDay      byte = 3 // coordinator -> worker: day index + model bytes (empty = bootstrap)
	frameAssign   byte = 4 // coordinator -> worker: run one shard
	frameClaim    byte = 5 // worker -> coordinator: ready for the next shard
	frameResult   byte = 6 // worker -> coordinator: one shard's encoded blob
	frameShutdown byte = 7 // coordinator -> worker: exit cleanly
	frameError    byte = 8 // worker -> coordinator: fatal worker-side error
)

// helloMsg opens a worker connection: protocol version, the worker's slot
// id (for logs), and the canonical spec JSON the worker compiles its trials
// from. The spec is the same bytes the coordinator's checkpoint manifest
// records, so both sides derive every seed from identical inputs.
type helloMsg struct {
	Version int
	Worker  int
	Spec    []byte
}

// helloOKMsg acknowledges the hello with the worker's protocol version.
type helloOKMsg struct {
	Version int
}

// dayMsg broadcasts one day's context: the day index and the deployed
// model's gob bytes. Empty Model means the bootstrap day (no model yet),
// matching the single-process engine's pre-deploy scheme set.
type dayMsg struct {
	Day   int
	Model []byte
}

// assignMsg hands a worker one shard of the current day. Attempt counts
// prior failed assignments of this shard; the fault-injection hook only
// fires at attempt 0 so a reassigned shard can complete.
type assignMsg struct {
	Day     int
	Shard   int
	Attempt int
}

// resultMsg returns one shard's encoded ShardBlob, echoing the assignment
// coordinates so the coordinator can reject stale or misrouted results.
type resultMsg struct {
	Day     int
	Shard   int
	Attempt int
	Blob    []byte
}

// errorMsg reports a fatal worker-side failure (spec compile error, fold
// panic, protocol confusion) before the worker exits.
type errorMsg struct {
	Msg string
}

// frameName returns a human-readable frame type for error messages.
func frameName(typ byte) string {
	switch typ {
	case frameHello:
		return "hello"
	case frameHelloOK:
		return "hello-ok"
	case frameDay:
		return "day"
	case frameAssign:
		return "assign"
	case frameClaim:
		return "claim"
	case frameResult:
		return "result"
	case frameShutdown:
		return "shutdown"
	case frameError:
		return "error"
	}
	return fmt.Sprintf("unknown(%d)", typ)
}

// sendFrame writes one frame and flushes, so a frame is either fully
// visible to the peer or not sent at all from the writer's point of view.
// payload may be nil for payload-less frames.
func sendFrame(w *bufio.Writer, typ byte, payload any) error {
	var buf bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			return fmt.Errorf("dist: encoding %s frame: %w", frameName(typ), err)
		}
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(buf.Len()+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, returning its type and raw gob payload.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d out of range (corrupt stream?)", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: short %s frame: %w", frameName(hdr[4]), err)
	}
	return hdr[4], payload, nil
}

// decodePayload decodes a frame's gob payload into v.
func decodePayload(typ byte, b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("dist: decoding %s frame: %w", frameName(typ), err)
	}
	return nil
}
