// Package scenario is the platform's front door: one declarative,
// serializable Spec that fully describes any experiment the system can run
// — environment (in-situ or emulation, path family), scheme roster via the
// daily loop, days/sessions/window/retraining, drift schedule, execution
// engine and arrival process, seed, and sharding.
//
// The paper's contribution is a *platform* for randomized ABR experiments
// in situ, not any one algorithm; what lets a platform scale to "as many
// scenarios as you can imagine" is that an experiment is data, not code.
// A Spec round-trips through strict JSON (unknown fields rejected,
// explicit zero distinguished from unset via pointers), resolves defaults
// in exactly one place (WithDefaults), validates with actionable errors,
// and has a canonical content hash (Hash) whose guard projection
// (GuardHash) is the checkpoint-manifest guard: resuming a checkpoint
// under a different experiment is refused by comparing spec hashes, not
// ad-hoc field lists.
//
// Entry points: Compile lowers a Spec into the runner.Config that executes
// it; Run is the one orchestration path (main run plus the frozen-model
// staleness companion) shared by cmd/puffer-daily, the nightly workflow,
// the figures suite, and library callers. Lookup/Names expose the registry
// of named built-in scenarios ("stationary", "drift-shift", "fleet-burst",
// ...), and New with functional options (Days, Drift, Engine, ...) builds
// specs in Go.
package scenario
