package nn

import (
	"math"
	"math/rand"
	"testing"
)

// batchShapes exercises the kernel's blocking remainders: odd/even batch
// sizes against output widths around the 4-output block and non-square
// hidden layers, plus the no-hidden-layer affine ablation.
var batchShapes = []struct {
	name  string
	sizes []int
}{
	{"ttp-22-64-64-21", []int{22, 64, 64, 21}},
	{"affine-5-21", []int{5, 21}},
	{"narrow-7-3-2", []int{7, 3, 2}},
	{"tall-4-130-1", []int{4, 130, 1}},
	{"wide-in-97-8-5", []int{97, 8, 5}},
}

func randomBatch(rng *rand.Rand, rows, nIn int) []float64 {
	xs := make([]float64, rows*nIn)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestForwardBatchMatchesScalar(t *testing.T) {
	for _, tc := range batchShapes {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			m := NewMLP(rng, tc.sizes...)
			ws := m.NewWorkspace()
			bws := m.NewBatchWorkspace(1)
			for _, rows := range []int{1, 2, 3, 7, 10, 17} {
				xs := randomBatch(rng, rows, m.InputSize())
				out := m.ForwardBatchInto(bws, xs, rows)
				for r := 0; r < rows; r++ {
					want := m.ForwardInto(ws, xs[r*m.InputSize():(r+1)*m.InputSize()])
					got := out[r*m.OutputSize() : (r+1)*m.OutputSize()]
					for o := range want {
						if math.Abs(got[o]-want[o]) > 1e-12 {
							t.Fatalf("rows=%d sample %d output %d: batch %v vs scalar %v",
								rows, r, o, got[o], want[o])
						}
					}
				}
			}
		})
	}
}

func TestForwardBatchBitwiseIdentical(t *testing.T) {
	// The kernel keeps the scalar path's per-element summation order, so
	// batched and scalar logits must agree exactly, not just to tolerance.
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 22, 64, 64, 21)
	ws := m.NewWorkspace()
	bws := m.NewBatchWorkspace(10)
	xs := randomBatch(rng, 10, 22)
	out := m.ForwardBatchInto(bws, xs, 10)
	for r := 0; r < 10; r++ {
		want := m.ForwardInto(ws, xs[r*22:(r+1)*22])
		for o := range want {
			if got := out[r*21+o]; got != want[o] {
				t.Fatalf("sample %d output %d: batch %v != scalar %v", r, o, got, want[o])
			}
		}
	}
}

func TestPredictDistBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 22, 64, 64, 21)
	ws := m.NewWorkspace()
	bws := m.NewBatchWorkspace(8)
	xs := randomBatch(rng, 8, 22)
	dists := m.PredictDistBatch(bws, xs, 8, nil)
	scalar := make([]float64, 21)
	for r := 0; r < 8; r++ {
		m.PredictDist(ws, xs[r*22:(r+1)*22], scalar)
		sum := 0.0
		for o := range scalar {
			got := dists[r*21+o]
			sum += got
			if got != scalar[o] {
				t.Fatalf("sample %d bin %d: batch %v != scalar %v", r, o, got, scalar[o])
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sample %d distribution sums to %v", r, sum)
		}
	}
}

func TestBatchWorkspaceGrowsAndIsReusable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 6, 10, 4)
	bws := m.NewBatchWorkspace(2)
	small := randomBatch(rng, 2, 6)
	first := append([]float64(nil), m.ForwardBatchInto(bws, small, 2)...)
	// A larger batch grows the workspace in place...
	big := randomBatch(rng, 9, 6)
	m.ForwardBatchInto(bws, big, 9)
	// ...and the original batch still evaluates identically afterwards.
	again := m.ForwardBatchInto(bws, small, 2)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("output %d changed after workspace growth: %v vs %v", i, first[i], again[i])
		}
	}
}

func TestBatchWorkspaceSharedAcrossEqualShapeNets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewMLP(rng, 8, 16, 5)
	b := NewMLP(rng, 8, 16, 5)
	bws := a.NewBatchWorkspace(4)
	xs := randomBatch(rng, 4, 8)
	outA := append([]float64(nil), a.ForwardBatchInto(bws, xs, 4)...)
	outB := append([]float64(nil), b.ForwardBatchInto(bws, xs, 4)...)
	wsA, wsB := a.NewWorkspace(), b.NewWorkspace()
	for r := 0; r < 4; r++ {
		wantA := wsAOut(a, wsA, xs[r*8:(r+1)*8])
		wantB := wsAOut(b, wsB, xs[r*8:(r+1)*8])
		for o := 0; o < 5; o++ {
			if outA[r*5+o] != wantA[o] || outB[r*5+o] != wantB[o] {
				t.Fatalf("shared workspace corrupted outputs at sample %d", r)
			}
		}
	}
}

func wsAOut(m *MLP, ws *Workspace, x []float64) []float64 {
	return append([]float64(nil), m.ForwardInto(ws, x)...)
}

func TestBatchWorkspaceRejectsWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewMLP(rng, 4, 8, 3)
	b := NewMLP(rng, 4, 9, 3)
	bws := a.NewBatchWorkspace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched workspace shape")
		}
	}()
	b.ForwardBatchInto(bws, make([]float64, 8), 2)
}

func TestForwardBatchNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 22, 64, 64, 21)
	bws := m.NewBatchWorkspace(10)
	xs := randomBatch(rng, 10, 22)
	dst := make([]float64, 10*21)
	allocs := testing.AllocsPerRun(100, func() {
		m.PredictDistBatch(bws, xs, 10, dst)
	})
	if allocs != 0 {
		t.Fatalf("PredictDistBatch allocates %v times per run, want 0", allocs)
	}
}

func TestLoadedModelKeepsBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewMLP(rng, 22, 64, 64, 21)
	var roundtrip func(*MLP) *MLP
	roundtrip = func(m *MLP) *MLP {
		dir := t.TempDir()
		path := dir + "/model.gob"
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	loaded := roundtrip(m)
	bws := loaded.NewBatchWorkspace(6)
	ws := m.NewWorkspace()
	xs := randomBatch(rng, 6, 22)
	out := loaded.ForwardBatchInto(bws, xs, 6)
	for r := 0; r < 6; r++ {
		want := m.ForwardInto(ws, xs[r*22:(r+1)*22])
		for o := range want {
			if out[r*21+o] != want[o] {
				t.Fatalf("loaded model batch output differs at sample %d bin %d", r, o)
			}
		}
	}
}

func BenchmarkForwardScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 22, 64, 64, 21)
	ws := m.NewWorkspace()
	xs := randomBatch(rng, 10, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 10; r++ {
			m.ForwardInto(ws, xs[r*22:(r+1)*22])
		}
	}
}

func BenchmarkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 22, 64, 64, 21)
	bws := m.NewBatchWorkspace(10)
	xs := randomBatch(rng, 10, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatchInto(bws, xs, 10)
	}
}
