package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"puffer/internal/obs"
)

func syntheticDoc() *historyDoc {
	d := &historyDoc{IntervalS: 1, Samples: 2}
	d.Counters = append(d.Counters, struct {
		Name     string    `json:"name"`
		Values   []int64   `json:"values"`
		RatePerS []float64 `json:"rate_per_s"`
	}{Name: "serve_decisions_total", Values: []int64{100, 900}, RatePerS: []float64{800}},
		struct {
			Name     string    `json:"name"`
			Values   []int64   `json:"values"`
			RatePerS []float64 `json:"rate_per_s"`
		}{Name: "serve_queue_full_total", Values: []int64{0, 0}, RatePerS: []float64{0}},
		struct {
			Name     string    `json:"name"`
			Values   []int64   `json:"values"`
			RatePerS []float64 `json:"rate_per_s"`
		}{Name: "dist_shards_done_total", Values: []int64{4, 12}, RatePerS: []float64{8}},
		struct {
			Name     string    `json:"name"`
			Values   []int64   `json:"values"`
			RatePerS []float64 `json:"rate_per_s"`
		}{Name: "dist_worker_restarts_total", Values: []int64{0, 1}, RatePerS: []float64{1}},
		struct {
			Name     string    `json:"name"`
			Values   []int64   `json:"values"`
			RatePerS []float64 `json:"rate_per_s"`
		}{Name: "dist_shard_retries_total", Values: []int64{0, 1}, RatePerS: []float64{1}})
	d.Gauges = append(d.Gauges, struct {
		Name   string    `json:"name"`
		Values []float64 `json:"values"`
	}{Name: "serve_sessions_active", Values: []float64{3, 7}},
		struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		}{Name: "serve_model_generation", Values: []float64{1, 2}},
		struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		}{Name: "dist_workers_live", Values: []float64{3, 3}})
	d.Histograms = append(d.Histograms, struct {
		Name      string  `json:"name"`
		Counts    []int64 `json:"counts"`
		WinCount  []int64 `json:"win_count"`
		WinP50NS  []int64 `json:"win_p50"`
		WinP99NS  []int64 `json:"win_p99"`
		WinP999NS []int64 `json:"win_p999"`
	}{
		Name: "serve_decision_ns", Counts: []int64{100, 900},
		WinCount: []int64{800}, WinP50NS: []int64{18000},
		WinP99NS: []int64{220000}, WinP999NS: []int64{1200000},
	})
	return d
}

func TestRenderFrame(t *testing.T) {
	frame := renderFrame(syntheticDoc(), "127.0.0.1:9090", time.Unix(0, 0).UTC())
	for _, want := range []string{
		"puffer-top — 127.0.0.1:9090",
		"active 7",
		"800/s",
		"p50 18µs",
		"p99 220µs",
		"p999 1.2ms",
		"queue_full 0",
		"workers 3",
		"shards 12",
		"restarts 1  retries 1",
		"generation 2",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
}

func TestRenderFrameEmpty(t *testing.T) {
	frame := renderFrame(&historyDoc{}, "x", time.Unix(0, 0).UTC())
	if !strings.Contains(frame, "no samples yet") {
		t.Fatalf("empty doc frame: %q", frame)
	}
}

// TestFetchLiveEndpoint polls a real obs endpoint end to end: register
// metrics, take history samples, fetch over HTTP, render.
func TestFetchLiveEndpoint(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	reg := obs.NewRegistry()
	reg.Gauge("serve_sessions_active").Set(5)
	reg.Counter("serve_decisions_total").Add(42)
	reg.Histogram("serve_decision_ns").Observe(25000)

	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + srv.Addr + "/metrics/history.json"
	// The embedded history samples immediately on Start; poll until the
	// first sample lands.
	var doc *historyDoc
	deadline := time.Now().Add(5 * time.Second)
	for {
		doc, err = fetch(client, url)
		if err == nil && doc.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no history sample after 5s (err=%v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v, ok := doc.gaugeValue("serve_sessions_active"); !ok || v != 5 {
		t.Fatalf("gauge through endpoint: %v %v", v, ok)
	}
	frame := renderFrame(doc, srv.Addr, time.Now())
	if !strings.Contains(frame, "active 5") {
		t.Fatalf("live frame missing gauge:\n%s", frame)
	}
}
