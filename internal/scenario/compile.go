package scenario

import (
	"fmt"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/fleet"
	"puffer/internal/netem"
	"puffer/internal/runner"
)

// pathFamily maps a spec path-family name to its sampler. "congested" is
// the low-capacity Puffer variant the drift "mix" preset migrates toward.
func pathFamily(name string) (netem.Sampler, error) {
	switch name {
	case "puffer":
		return netem.PufferPaths{}, nil
	case "fcc":
		return netem.FCCPaths{}, nil
	case "cs2p":
		return netem.CS2PPaths{}, nil
	case "congested":
		return netem.PufferPaths{MedianRate: 1.2e6, Sigma: 0.5}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown path family %q (want puffer, fcc, cs2p, or congested)", name)
	}
}

// Schedule resolves the spec's drift block into the effective
// netem.DriftSchedule: the named preset with the raw per-knob overrides
// applied on top. Override semantics match the historical -drift-* flags:
// a knob overrides only when present, so explicit zeros clear preset knobs,
// and a mix family the preset did not have takes the flag-default ramp
// (start day 0, 3-day ramp) instead of the preset's zeros.
func (s Spec) Schedule() (netem.DriftSchedule, error) {
	d := s.WithDefaults().Drift
	sched, err := netem.DriftPreset(d.Preset)
	if err != nil {
		return netem.DriftSchedule{}, err
	}
	if d.RateFactorPerDay != nil {
		sched.RateFactorPerDay = *d.RateFactorPerDay
	}
	if d.RateFactorFloor != nil {
		sched.RateFactorFloor = *d.RateFactorFloor
	}
	if d.SigmaWidenPerDay != nil {
		sched.SigmaWidenPerDay = *d.SigmaWidenPerDay
	}
	if d.SlowSharePerDay != nil {
		sched.SlowSharePerDay = *d.SlowSharePerDay
	}
	if d.SlowShareCap != nil {
		sched.SlowShareCap = *d.SlowShareCap
	}
	if d.OutagesPerHour != nil {
		sched.OutageRatePerDay = *d.OutagesPerHour / 3600
	}
	if d.OutageCapPerHour != nil {
		sched.OutageRateCap = *d.OutageCapPerHour / 3600
	}
	if d.Mix != nil {
		switch *d.Mix {
		case "none", "": // "" for parity with the historical -drift-mix flag
			sched.MixWith = nil
		default:
			fam, err := pathFamily(*d.Mix)
			if err != nil {
				return netem.DriftSchedule{}, err
			}
			sched.MixWith = fam
			sched.MixStartDay = orp(d.MixStartDay, defaultMixStartDay)
			sched.MixRampDays = orp(d.MixRampDays, defaultMixRampDays)
		}
	}
	if d.MixStartDay != nil {
		sched.MixStartDay = *d.MixStartDay
	}
	if d.MixRampDays != nil {
		sched.MixRampDays = *d.MixRampDays
	}
	return sched, nil
}

// BuildEnv materializes the spec's environment: the chosen world, the
// optional path-family override, and the drift schedule wrapped around the
// base sampler (a zero schedule leaves the sampler untouched, keeping its
// name and checkpoint identity).
func (s Spec) BuildEnv() (experiment.Env, error) {
	d := s.WithDefaults()
	var env experiment.Env
	switch d.Env.World {
	case "insitu":
		env = experiment.DefaultEnv()
	case "emulation":
		env = experiment.EmulationEnv()
	default:
		return experiment.Env{}, fmt.Errorf("scenario: env.world = %q, want insitu or emulation", d.Env.World)
	}
	if d.Env.Paths != "" {
		fam, err := pathFamily(d.Env.Paths)
		if err != nil {
			return experiment.Env{}, err
		}
		env.Paths = fam
	}
	sched, err := d.Schedule()
	if err != nil {
		return experiment.Env{}, err
	}
	if !sched.IsZero() {
		env.Paths = &netem.DriftingSampler{Base: env.Paths, Schedule: sched}
	}
	return env, nil
}

// arrivals materializes the fleet arrival process (nil for the default
// Poisson process, which the runner supplies from ArrivalRate).
func (s Spec) arrivals() fleet.ArrivalProcess {
	a := s.Engine.Arrival
	if a.Process == "burst" {
		return fleet.BurstArrivals{Burst: a.Burst, Gap: a.Gap}
	}
	return nil
}

// Compile resolves defaults, validates, and lowers the spec into the
// runner.Config that executes it. The compiled config carries the spec's
// guard hash and canonical JSON, which the runner's checkpoint manifest
// stores: the spec itself is the guard against resuming a checkpoint under
// a different experiment. Scheduling-only knobs (Workers, CheckpointDir,
// Logf) are left for the caller — they never shape results.
func Compile(s Spec) (runner.Config, error) {
	d := s.WithDefaults()
	if err := d.Validate(); err != nil {
		return runner.Config{}, err
	}
	env, err := d.BuildEnv()
	if err != nil {
		return runner.Config{}, err
	}
	train := core.TrainConfig{
		Epochs:      d.Train.Epochs,
		BatchSize:   d.Train.BatchSize,
		LR:          d.Train.LR,
		Seed:        *d.Seed, // re-derived per day by the runner either way
		WindowDays:  *d.Daily.Window,
		RecencyBase: *d.Train.RecencyBase,
	}
	cfg := runner.Config{
		Env:            env,
		Days:           d.Daily.Days,
		SessionsPerDay: d.Daily.Sessions,
		WindowDays:     *d.Daily.Window,
		Engine:         d.Engine.Kind,
		DistWorkers:    d.Engine.DistWorkers,
		ArrivalRate:    d.Engine.Arrival.Rate,
		Arrivals:       d.arrivals(),
		FleetTick:      d.Engine.Tick,
		ShardSize:      d.ShardSize,
		Seed:           *d.Seed,
		Retrain:        *d.Daily.Retrain,
		Hidden:         hiddenFor(d.Model.Hidden),
		Horizon:        d.Model.Horizon,
		Train:          train,
		SpecHash:       d.GuardHash(),
		SpecJSON:       d.CanonicalJSON(),
	}
	return cfg, nil
}

// hiddenFor lowers the spec's hidden-layer list for core.NewTTP, which
// wants an explicit non-nil empty slice for the linear ablation.
func hiddenFor(hidden []int) []int {
	if len(hidden) == 0 {
		return []int{}
	}
	return append([]int(nil), hidden...)
}
