// Package pensieve reproduces the Pensieve baseline (Mao et al., the
// paper's principal learned-ABR comparison): a neural-network policy that
// directly picks the next chunk's bitrate, trained with policy-gradient
// reinforcement learning (REINFORCE with a learned value baseline and an
// annealed entropy bonus) in a chunk-level simulator over emulator-style
// (FCC-like) traces — exactly the training regime whose deployment gap the
// paper measures (§5.2, Figure 11).
//
// As in the paper's deployment (§3.3), the policy optimizes the
// bitrate-based QoE (+bitrate, -stalls, -Δbitrate); it cannot be made
// SSIM-aware without surgery, which is part of the point.
//
// Main entry points:
//
//   - Train with a TrainConfig: policy-gradient training in the built-in
//     chunk-level simulator; TrainResult reports the reward curve.
//   - Agent / NewAgent: the deployable abr.Algorithm; Agent.Policy
//     extracts the trained network for sharing across per-session
//     instances.
//   - NewUntrainedPolicy: the bare StateDim → NumActions network, for
//     tests and custom training loops.
package pensieve
