package figures

import (
	"fmt"
	"io"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/pensieve"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// Suite holds the trained models and cached experiment results shared by
// the figures. Building a Suite performs data collection and training
// (roughly a minute at default scale); individual figures then run their
// experiments on demand and cache what they share.
type Suite struct {
	// Scale is the number of sessions in the primary experiment; other
	// experiments scale proportionally.
	Scale int
	// Seed makes the whole suite deterministic.
	Seed int64
	// Results, if set, is a results-warehouse index path: figures that run
	// whole scenarios (drift, fleet) read it first and only launch the
	// runs whose spec hash it is missing, appending fresh records for next
	// time. Empty: always run, never persist.
	Results string
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)

	InSituTTP *core.TTP
	EmuTTP    *core.TTP
	Policy    *pensieve.Agent

	primary   *experiment.Result
	emulation *experiment.Result
	insituDat *core.Dataset
	drift     []FigDriftRow
	fleet     []FigFleetRow
}

// DefaultScale is the default primary-experiment size in sessions.
const DefaultScale = 1500

// NewSuite collects telemetry, trains the in-situ TTP, the emulation-trained
// TTP, and the Pensieve policy, and returns a ready Suite.
func NewSuite(scale int, seed int64, logf func(string, ...any)) (*Suite, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Suite{Scale: scale, Seed: seed, Logf: logf}

	collectSessions := scale / 3
	if collectSessions < 150 {
		collectSessions = 150
	}

	logf("training in-situ TTP (two-day continual loop, %d sessions/day)...", collectSessions)
	insituTTP, insituData, err := trainTTPInWorld("insitu", collectSessions, seed+1, logf)
	if err != nil {
		return nil, fmt.Errorf("figures: in-situ TTP: %w", err)
	}
	s.InSituTTP = insituTTP
	s.insituDat = insituData

	logf("training emulation TTP (two-day continual loop, %d sessions/day)...", collectSessions)
	emuTTP, _, err := trainTTPInWorld("emulation", collectSessions, seed+3, logf)
	if err != nil {
		return nil, fmt.Errorf("figures: emulation TTP: %w", err)
	}
	s.EmuTTP = emuTTP

	logf("training Pensieve in emulation (policy gradient)...")
	pcfg := pensieve.DefaultTrainConfig()
	pcfg.Seed = seed + 5
	agent, pres := pensieve.Train(pcfg)
	s.Policy = agent
	logf("  final mean reward %.2f per chunk", pres.MeanReward)

	return s, nil
}

// behaviorSchemes is the bootstrap data-collection mixture, shared with the
// continual runner: the classical schemes Puffer ran from day one, with
// light exploration for off-policy coverage of the (state, chunk size)
// space.
func behaviorSchemes(seed int64) []experiment.Scheme {
	return runner.BootstrapSchemes(seed)
}

// trainTTPInWorld reproduces the in-situ training loop in a given world by
// running the continual-experiment runner for two days: day 0 collects
// bootstrap telemetry from the classical schemes and trains a first TTP
// overnight; day 1 deploys that Fugu to gather telemetry from its own
// decisions (as the live deployment does continuously) and the nightly phase
// retrains on both days. The experiment is declared as a scenario spec —
// figures, the CLI, and the daily loop all go through the same front door.
func trainTTPInWorld(world string, sessions int, seed int64, logf func(string, ...any)) (*core.TTP, *core.Dataset, error) {
	spec := scenario.New(
		scenario.World(world),
		scenario.Days(2),
		scenario.Sessions(sessions),
		scenario.Window(2),
		scenario.Seed(seed),
		scenario.Epochs(suiteTrainEpochs),
		scenario.RecencyBase(1), // both days weighted equally when bootstrapping
		scenario.Ablation(false),
	)
	out, err := scenario.Run(spec, scenario.RunOptions{
		Logf: func(format string, args ...any) { logf("  "+format, args...) },
	})
	if err != nil {
		return nil, nil, err
	}
	return out.Result.TTP, out.Result.Data, nil
}

// suiteTrainEpochs is the offline trainings' epoch count (more than the
// daily loop's nightly default, since the suite trains each model once).
const suiteTrainEpochs = 12

// trainCfg is the offline training setup for models the figures train
// directly with core.Train (outside the daily loop).
func trainCfg(seed int64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Epochs = suiteTrainEpochs
	return cfg
}

// PrimarySchemes returns the five arms of the paper's primary experiment.
// Factories build fresh per-session instances; the trained models themselves
// are shared and read-only at inference.
func (s *Suite) PrimarySchemes() []experiment.Scheme {
	policy := s.Policy.Policy()
	return []experiment.Scheme{
		{Name: "Fugu", New: func() abr.Algorithm { return core.NewFugu(s.InSituTTP) }},
		{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewMPCHM() }},
		{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
		{Name: "Pensieve", New: func() abr.Algorithm { return pensieve.NewAgent(policy) }},
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
	}
}

// Primary runs (once) and returns the primary randomized experiment.
func (s *Suite) Primary() (*experiment.Result, error) {
	if s.primary != nil {
		return s.primary, nil
	}
	s.Logf("running primary experiment (%d sessions, 5 schemes)...", s.Scale)
	res, err := experiment.Run(experiment.Config{
		Env:      experiment.DefaultEnv(),
		Schemes:  s.PrimarySchemes(),
		Sessions: s.Scale,
		Seed:     s.Seed + 10,
	})
	if err != nil {
		return nil, err
	}
	s.primary = res
	return res, nil
}

// line prints a formatted row to w, propagating the first write error via
// the returned function pattern used across the figure writers.
func line(w io.Writer, err *error, format string, args ...any) {
	if *err != nil {
		return
	}
	_, *err = fmt.Fprintf(w, format, args...)
}
