// Package telemetry defines the measurement records Puffer publishes in its
// open data release (Appendix B of the paper) — video_sent, video_acked,
// and client_buffer — plus the per-stream summary figures the analysis is
// built on (watch time, stall time, SSIM mean and variation, startup
// delay). Everything downstream — the experiment analysis, the runner's
// accumulators, the figures — consumes these summaries rather than raw
// event logs.
//
// Main entry points:
//
//   - VideoSent / VideoAcked / ClientBuffer: the Appendix B event records;
//     Log collects them per stream.
//   - StreamSummary: the per-stream analysis unit, with the eligibility
//     rules the paper applies (Eligible: played and watched >= 4 s) and
//     the slow-path predicate (SlowPath: mean delivery rate < 6 Mbit/s).
//   - SummaryBuilder: streaming construction of a StreamSummary as chunks
//     are sent (running SSIM mean, chunk-to-chunk |dSSIM|, delivered
//     bitrate, path-rate mean).
//   - WriteSummariesCSV / ReadSummariesCSV: the open-data-style exchange
//     format.
//   - ConcurrencySeries: the serving-side occupancy record (concurrently
//     live sessions over virtual time), built from per-session intervals
//     by the fleet engine.
package telemetry
