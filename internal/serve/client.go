package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"puffer/internal/abr"
	"puffer/internal/experiment"
	"puffer/internal/fleet"
	"puffer/internal/obs"
)

// Client-side metrics: the load generator's own latency view (full round
// trip including the server's queue) and liveness gauges.
var (
	cliRTTNS          = obs.Default.Histogram("serve_client_rtt_ns")
	cliSessionsActive = obs.Default.Gauge("serve_client_sessions_active")
	cliSessionsTotal  = obs.Default.Counter("serve_client_sessions_total")
	cliDecisionsTotal = obs.Default.Counter("serve_client_decisions_total")
)

// LoadConfig drives one full trial against a running server.
type LoadConfig struct {
	// Addr is the server's host:port.
	Addr string
	// Plan is the trial to drive; a client-side (unwarmed) plan suffices.
	Plan *Plan
	// Timescale maps virtual seconds to wall seconds: sessions dial at
	// arrival*Timescale and pace their decisions to their virtual clocks,
	// so concurrency follows the arrival process's occupancy. 0 runs every
	// session as fast as the server answers.
	Timescale float64
	// Concurrency bounds simultaneously running sessions. Default: 256
	// when Timescale is 0 (a work pool), unlimited when pacing (the
	// arrival schedule is the limiter).
	Concurrency int
	// DialTimeout and ReplyTimeout bound connection setup and each
	// decision round trip. Defaults: 10s, 120s.
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// Logf, if set, receives progress lines. Default: silent.
	Logf func(format string, args ...any)
}

// LoadResult is one finished load run.
type LoadResult struct {
	// Stats is the per-scheme pooled analysis — byte-identical to
	// RunVirtual of the same plan when every session succeeded.
	Stats []experiment.SchemeStats
	// Sessions ran; Failed of them errored (Stats is untrustworthy unless
	// Failed is 0).
	Sessions int
	Failed   int
	// Decisions is the total ABR decisions served over the wire.
	Decisions int64
	// ModelViolations counts sessions that saw more than one model
	// generation — the "no session served by two models" invariant,
	// expected 0 always.
	ModelViolations int64
	// PeakConcurrent is the high-water mark of simultaneously open
	// sessions; WallSeconds the measured wall time (not deterministic).
	PeakConcurrent int64
	WallSeconds    float64
}

// SessionsPerSec is the load generator's headline throughput figure.
func (r *LoadResult) SessionsPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.Sessions) / r.WallSeconds
}

// sessionAbort unwinds a session whose connection failed; the driver
// recovers it at the session boundary.
type sessionAbort struct{ err error }

// stubAlg satisfies the Algorithm interface for client-side sessions: the
// real algorithm lives server-side, every decision routes through the
// remote hook, and Choose being unreachable is part of the contract.
type stubAlg struct{ name string }

func (a stubAlg) Name() string { return a.name }
func (stubAlg) Reset()         {}
func (stubAlg) Choose(*abr.Observation) int {
	panic("serve: stub algorithm asked to Choose — decisions must route through the remote hook")
}

// remote is the experiment.DecideHook that ships every decision over the
// session's connection. It also paces the session against wall time and
// verifies the single-model invariant.
type remote struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
	out []byte

	arrival   float64
	start     time.Time
	timescale float64
	replyTO   time.Duration

	modelID    uint32
	violated   bool
	violations *atomic.Int64
	decisions  *atomic.Int64

	// Trace state: traced marks a session the deterministic sampler picked;
	// seq counts its decisions so each gets a distinct trace id.
	sessID int64
	traced bool
	seq    uint64
}

// Decide implements experiment.DecideHook by asking the server.
func (r *remote) Decide(_ abr.Algorithm, o *abr.Observation, now float64) int {
	if r.timescale > 0 {
		target := r.start.Add(time.Duration((r.arrival + now) * r.timescale * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
	}
	q, err := r.decide(o, now)
	if err != nil {
		panic(sessionAbort{err})
	}
	return q
}

func (r *remote) decide(o *abr.Observation, now float64) (int, error) {
	t0 := obs.Now()
	// A traced decision derives its deterministic trace id and carries it
	// (plus the root span id) in the Decide frame's v2 extension, so the
	// server's stage spans join this client-side trace.
	var trace, root uint64
	tr := obs.Tracing()
	if tr != nil && r.traced {
		trace = obs.DecisionTraceID(r.sessID, r.seq)
		root = tr.NewSpanID()
		r.seq++
	}
	r.out = encodeDecide(r.out[:0], now, o, trace, root)
	r.c.SetWriteDeadline(time.Now().Add(r.replyTO))
	var s0 int64
	if trace != 0 {
		s0 = obs.Now()
	}
	if err := writeFrame(r.bw, msgDecide, r.out); err != nil {
		return 0, err
	}
	if err := r.bw.Flush(); err != nil {
		return 0, err
	}
	if trace != 0 {
		tr.Record(obs.Span{Trace: trace, ID: tr.NewSpanID(), Parent: root,
			Name: "client_send", Start: s0, Dur: obs.SinceNS(s0)})
	}
	r.c.SetReadDeadline(time.Now().Add(r.replyTO))
	typ, payload, buf, err := readFrame(r.br, r.buf)
	r.buf = buf
	if err != nil {
		return 0, err
	}
	if typ == msgError {
		rd := reader{b: payload}
		return 0, fmt.Errorf("serve: server error: %s", rd.str())
	}
	if typ != msgDecideOK {
		return 0, fmt.Errorf("serve: unexpected reply type 0x%02x", typ)
	}
	rd := reader{b: payload}
	q := rd.i32()
	mid := rd.u32()
	if err := rd.done(); err != nil {
		return 0, err
	}
	if mid != r.modelID && !r.violated {
		r.violated = true
		r.violations.Add(1)
	}
	if t0 != 0 {
		cliRTTNS.Observe(obs.SinceNS(t0))
	}
	if trace != 0 {
		tr.Record(obs.Span{Trace: trace, ID: root, Name: "wire_rtt",
			Start: t0, Dur: obs.SinceNS(t0),
			Attrs: []obs.Attr{
				{Key: "session", Val: r.sessID},
				{Key: "seq", Val: int64(r.seq - 1)},
				{Key: "chunk", Val: int64(o.ChunkIndex)},
			}})
	}
	r.decisions.Add(1)
	cliDecisionsTotal.Inc()
	return q, nil
}

// loader is one RunLoad in progress.
type loader struct {
	cfg        LoadConfig
	plan       *Plan
	start      time.Time
	decisions  atomic.Int64
	violations atomic.Int64
	active     atomic.Int64
	peak       atomic.Int64
}

// RunLoad drives the plan's full trial against the server at cfg.Addr: one
// TCP connection per session, arrivals on the plan's schedule, every ABR
// decision served remotely. Session outcomes fold through the canonical
// sharded aggregation with the daily loop's analysis seed, so a clean run
// reproduces the day's per-scheme stats byte for byte.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	p := cfg.Plan
	if p == nil {
		return nil, fmt.Errorf("serve: LoadConfig.Plan is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("serve: LoadConfig.Addr is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 120 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := p.Sessions
	arrivals := fleet.ArrivalTimes(p.Arrivals, p.TrialSeed, n)
	ld := &loader{cfg: cfg, plan: p, start: time.Now()}

	results := make([]experiment.SessionResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	if cfg.Timescale > 0 {
		// Paced mode: every session is a goroutine sleeping until its
		// arrival; concurrency is whatever the arrival process produces.
		var sem chan struct{}
		if cfg.Concurrency > 0 {
			sem = make(chan struct{}, cfg.Concurrency)
		}
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				target := ld.start.Add(time.Duration(arrivals[id] * cfg.Timescale * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
				if sem != nil {
					sem <- struct{}{}
					defer func() { <-sem }()
				}
				results[id], errs[id] = ld.runSession(id, arrivals[id])
			}(id)
		}
	} else {
		// Throughput mode: a bounded work pool, ids in order.
		workers := cfg.Concurrency
		if workers <= 0 {
			workers = 256
		}
		if workers > n {
			workers = n
		}
		ids := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range ids {
					results[id], errs[id] = ld.runSession(id, arrivals[id])
				}
			}()
		}
		go func() {
			for id := 0; id < n; id++ {
				ids <- id
			}
			close(ids)
		}()
	}
	wg.Wait()

	res := &LoadResult{
		Sessions:        n,
		Decisions:       ld.decisions.Load(),
		ModelViolations: ld.violations.Load(),
		PeakConcurrent:  ld.peak.Load(),
		WallSeconds:     time.Since(ld.start).Seconds(),
	}
	for id, err := range errs {
		if err != nil {
			if res.Failed < 3 {
				cfg.Logf("serve: session %d failed: %v", id, err)
			}
			res.Failed++
		}
	}
	acc := experiment.FoldShards(n, p.ShardSize, experiment.AllPaths,
		func(id int) *experiment.SessionResult { return &results[id] })
	res.Stats = acc.Analyze(p.AnalysisSeed)
	return res, nil
}

// runSession opens one connection and drives one full session through the
// real experiment code, every decision remote.
func (ld *loader) runSession(id int, arrival float64) (res experiment.SessionResult, err error) {
	p := ld.plan
	// The blinded arm assignment is the first draw of the session RNG;
	// replaying it here names the scheme for the handshake without
	// perturbing the session's own RNG stream (RunOneHooked re-derives it).
	armRNG := rand.New(rand.NewSource(experiment.SessionSeed(p.TrialSeed, int64(id))))
	scheme := p.SchemeNames[armRNG.Intn(len(p.SchemeNames))]

	c, err := net.DialTimeout("tcp", ld.cfg.Addr, ld.cfg.DialTimeout)
	if err != nil {
		return res, fmt.Errorf("dial: %w", err)
	}
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	h := &remote{
		c: c, br: bufio.NewReaderSize(c, 4<<10), bw: bufio.NewWriterSize(c, 16<<10),
		arrival: arrival, start: ld.start, timescale: ld.cfg.Timescale,
		replyTO: ld.cfg.ReplyTimeout, violations: &ld.violations, decisions: &ld.decisions,
		sessID: int64(id),
	}
	var flags uint16
	if tr := obs.Tracing(); tr != nil && tr.Sampled(int64(id)) {
		h.traced = true
		flags |= helloFlagTracing
	}

	// Handshake.
	c.SetWriteDeadline(time.Now().Add(ld.cfg.ReplyTimeout))
	hb := encodeHello(nil, &hello{
		Version: ProtoVersion, Day: p.Day, Session: id, Seed: p.TrialSeed,
		Scheme: scheme, PlanHash: p.Hash, Flags: flags,
	})
	if err := writeFrame(h.bw, msgHello, hb); err != nil {
		return res, fmt.Errorf("hello: %w", err)
	}
	if err := h.bw.Flush(); err != nil {
		return res, fmt.Errorf("hello: %w", err)
	}
	c.SetReadDeadline(time.Now().Add(ld.cfg.ReplyTimeout))
	typ, payload, buf, err := readFrame(h.br, h.buf)
	h.buf = buf
	if err != nil {
		return res, fmt.Errorf("hello reply: %w", err)
	}
	if typ == msgError {
		rd := reader{b: payload}
		return res, fmt.Errorf("server rejected session: %s", rd.str())
	}
	if typ != msgHelloOK {
		return res, fmt.Errorf("unexpected hello reply type 0x%02x", typ)
	}
	rd := reader{b: payload}
	h.modelID = rd.u32()
	if err := rd.done(); err != nil {
		return res, err
	}

	cliSessionsTotal.Inc()
	if a := ld.active.Add(1); a > ld.peak.Load() {
		ld.peak.Store(a) // racy max is fine for a high-water mark
	}
	cliSessionsActive.Set(float64(ld.active.Load()))
	defer func() {
		cliSessionsActive.Set(float64(ld.active.Add(-1)))
		if v := recover(); v != nil {
			if a, ok := v.(sessionAbort); ok {
				err = a.err
				return
			}
			panic(v)
		}
	}()

	// The real session, with stub algorithms and the remote hook: the
	// simulation (paths, player, viewer behavior) runs here; every
	// decision runs server-side.
	schemes := make([]experiment.Scheme, len(p.SchemeNames))
	for i, name := range p.SchemeNames {
		name := name
		schemes[i] = experiment.Scheme{Name: name, New: func() abr.Algorithm { return stubAlg{name} }}
	}
	trial := experiment.Config{
		Env:      p.Env,
		Schemes:  schemes,
		Sessions: p.Sessions,
		Seed:     p.TrialSeed,
		Day:      p.Day,
	}
	res = trial.RunOneHooked(id, h)

	// Clean close: Bye/ByeOK, best effort.
	c.SetWriteDeadline(time.Now().Add(ld.cfg.ReplyTimeout))
	if err := writeFrame(h.bw, msgBye, nil); err == nil && h.bw.Flush() == nil {
		c.SetReadDeadline(time.Now().Add(ld.cfg.ReplyTimeout))
		readFrame(h.br, h.buf)
	}
	return res, nil
}
