package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// A History samples a registry's snapshot on a fixed cadence into a
// bounded ring, turning the instantaneous /metrics.json view into a short
// time series: windowed counter rates and per-window histogram quantile
// deltas. It is strictly wall-side — sampling reads metric snapshots and
// never touches experiment state — so a live history cannot perturb a run.
//
// The obs HTTP endpoint starts one automatically and serves it at
// /metrics/history.json; puffer-top renders the same arithmetic live.
type History struct {
	reg      *Registry
	interval time.Duration
	depth    int

	mu      sync.Mutex
	samples []historySample // ring
	total   uint64

	stop chan struct{}
	done chan struct{}
}

// historySample is one captured cut.
type historySample struct {
	t    time.Time
	snap Snapshot
}

// Defaults for the endpoint-embedded history: one sample per second, five
// minutes of depth.
const (
	DefaultHistoryInterval = time.Second
	DefaultHistoryDepth    = 300
)

// NewHistory returns an idle history over reg (interval <= 0 and depth <= 0
// take the defaults). Start begins sampling; Sample takes one cut
// synchronously (what tests and the ticker both call).
func NewHistory(reg *Registry, interval time.Duration, depth int) *History {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	return &History{reg: reg, interval: interval, depth: depth}
}

// Start launches the fixed-cadence sampler goroutine. Stop ends it.
func (h *History) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(h.interval)
		defer tick.Stop()
		h.Sample()
		for {
			select {
			case <-tick.C:
				h.Sample()
			case <-stop:
				return
			}
		}
	}(h.stop, h.done)
}

// Stop halts the sampler goroutine (no-op when not started).
func (h *History) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Sample takes one cut of the registry now.
func (h *History) Sample() {
	s := historySample{t: time.Now(), snap: h.reg.Snapshot()}
	h.mu.Lock()
	if len(h.samples) < h.depth {
		h.samples = append(h.samples, s)
	} else {
		h.samples[h.total%uint64(h.depth)] = s
	}
	h.total++
	h.mu.Unlock()
}

// ordered returns the ring's samples oldest first.
func (h *History) ordered() []historySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]historySample, 0, len(h.samples))
	if h.total > uint64(len(h.samples)) {
		at := int(h.total % uint64(h.depth))
		out = append(out, h.samples[at:]...)
		out = append(out, h.samples[:at]...)
	} else {
		out = append(out, h.samples...)
	}
	return out
}

// counterSeries is one counter's history: absolute values per sample plus
// the windowed rate() between consecutive samples (len(values)-1 entries).
type counterSeries struct {
	Name     string    `json:"name"`
	Values   []int64   `json:"values"`
	RatePerS []float64 `json:"rate_per_s,omitempty"`
}

// gaugeSeries is one gauge's raw values per sample.
type gaugeSeries struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// histSeries is one histogram's history: cumulative counts per sample plus
// the per-window delta distributions' count and p50/p99/p999 — the
// quantiles of only the observations that landed in each window, which is
// what makes a latency regression visible the moment it starts instead of
// being averaged into the whole run.
type histSeries struct {
	Name      string  `json:"name"`
	Counts    []int64 `json:"counts"`
	WinCount  []int64 `json:"win_count,omitempty"`
	WinP50NS  []int64 `json:"win_p50,omitempty"`
	WinP99NS  []int64 `json:"win_p99,omitempty"`
	WinP999NS []int64 `json:"win_p999,omitempty"`
}

// historyDoc is the /metrics/history.json document.
type historyDoc struct {
	IntervalS  float64         `json:"interval_s"`
	Samples    int             `json:"samples"`
	TimesMS    []int64         `json:"times_unix_ms"`
	Counters   []counterSeries `json:"counters"`
	Gauges     []gaugeSeries   `json:"gauges"`
	Histograms []histSeries    `json:"histograms"`
}

// WriteJSON renders the sampled history. Metric series align by name
// across samples; a metric absent from an early sample (registered
// mid-run) reads as zero there.
func (h *History) WriteJSON(w io.Writer) error {
	samples := h.ordered()
	doc := historyDoc{
		IntervalS:  h.interval.Seconds(),
		Samples:    len(samples),
		Counters:   []counterSeries{},
		Gauges:     []gaugeSeries{},
		Histograms: []histSeries{},
	}
	for _, s := range samples {
		doc.TimesMS = append(doc.TimesMS, s.t.UnixMilli())
	}

	// Union of names in last-sample-first order: the newest sample names
	// every live metric; earlier-only names (none in practice) follow.
	type key struct{ kind, name string }
	seen := map[key]bool{}
	addName := func(kind, name string) {
		seen[key{kind, name}] = true
	}
	var cNames, gNames, hNames []string
	for i := len(samples) - 1; i >= 0; i-- {
		for _, c := range samples[i].snap.Counters {
			if !seen[key{"c", c.Name}] {
				addName("c", c.Name)
				cNames = append(cNames, c.Name)
			}
		}
		for _, g := range samples[i].snap.Gauges {
			if !seen[key{"g", g.Name}] {
				addName("g", g.Name)
				gNames = append(gNames, g.Name)
			}
		}
		for _, hs := range samples[i].snap.Histograms {
			if !seen[key{"h", hs.Name}] {
				addName("h", hs.Name)
				hNames = append(hNames, hs.Name)
			}
		}
	}

	dtSeconds := func(i int) float64 {
		d := samples[i].t.Sub(samples[i-1].t).Seconds()
		if d <= 0 {
			d = h.interval.Seconds()
		}
		return d
	}

	for _, name := range cNames {
		cs := counterSeries{Name: name}
		for _, s := range samples {
			var v int64
			for _, c := range s.snap.Counters {
				if c.Name == name {
					v = c.Value
					break
				}
			}
			cs.Values = append(cs.Values, v)
		}
		for i := 1; i < len(cs.Values); i++ {
			d := cs.Values[i] - cs.Values[i-1]
			if d < 0 {
				d = 0
			}
			cs.RatePerS = append(cs.RatePerS, float64(d)/dtSeconds(i))
		}
		doc.Counters = append(doc.Counters, cs)
	}
	for _, name := range gNames {
		gs := gaugeSeries{Name: name}
		for _, s := range samples {
			var v float64
			for _, g := range s.snap.Gauges {
				if g.Name == name {
					v = g.Value
					break
				}
			}
			gs.Values = append(gs.Values, v)
		}
		doc.Gauges = append(doc.Gauges, gs)
	}
	for _, name := range hNames {
		hs := histSeries{Name: name}
		var snaps []HistSnapshot
		for _, s := range samples {
			var cur HistSnapshot
			for _, c := range s.snap.Histograms {
				if c.Name == name {
					cur = c
					break
				}
			}
			snaps = append(snaps, cur)
			hs.Counts = append(hs.Counts, cur.Count)
		}
		for i := 1; i < len(snaps); i++ {
			win := snaps[i].Sub(snaps[i-1])
			hs.WinCount = append(hs.WinCount, win.Count)
			hs.WinP50NS = append(hs.WinP50NS, win.Quantile(0.50))
			hs.WinP99NS = append(hs.WinP99NS, win.Quantile(0.99))
			hs.WinP999NS = append(hs.WinP999NS, win.Quantile(0.999))
		}
		doc.Histograms = append(doc.Histograms, hs)
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding history: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}
