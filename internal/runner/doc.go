// Package runner implements the paper's defining mechanism as a first-class
// subsystem: the in-situ continual-experiment loop. Each simulated day runs
// a randomized trial with the currently-deployed schemes while telemetry is
// recorded; a nightly phase warm-start-retrains the TTP on a sliding window
// of recent days and atomically rotates the new model into the Fugu arm for
// the next day (§4.3's "retrained every day, on data collected from its own
// deployment").
//
// Days are sharded: a worker pool folds each shard's sessions into private
// mergeable accumulators (experiment.TrialAcc) that merge in shard order, so
// aggregation streams over sessions — at most one SessionResult per worker
// is ever materialized, and bootstrap confidence intervals are computed once
// on the merged state. Per-day state (model, telemetry, accumulator, stats)
// checkpoints atomically, so a killed run resumes at the last completed day
// with byte-identical results. The checkpoint manifest is guarded by one
// hash: the scenario spec's guard hash (Config.SpecHash, set by
// internal/scenario's Compile) for spec-driven runs, or a fallback hash of
// the runner's own result-shaping fields for directly constructed Configs;
// mismatched resumes are rejected with both specs in the error, and
// pre-scenario field-list manifests get an explicit migration message.
//
// The loop threads the day index into the environment's path sampler: when
// Config.Env.Paths is a netem.DaySampler (e.g. a netem.DriftingSampler),
// day d's sessions draw from day d's distribution. That is the
// nonstationary regime where this package earns its keep — the staleness
// ablation (Retrain=false) separates from the retrained arm and the gap
// widens day over day, where a stationary deployment shows the paper's
// "stale model ties" result.
//
// Main entry points:
//
//   - Run with a Config: execute (or resume, via Config.CheckpointDir) a
//     continual experiment; Result / DayStats carry per-day and pooled
//     analyses, the final model, and the sliding-window telemetry.
//   - DayStats.Scheme: read one arm's row out of a day, e.g. to compare
//     seed-paired retrained and frozen runs per day.
//   - ModelSlot: the atomic model-rotation point between the nightly phase
//     and session factories.
//   - BootstrapSchemes / DeploySchemes: the day-0 classical mixture and
//     the steady-state Fugu+BBA mixture.
//   - Config.Engine ("session" or "fleet"): the execution engine for each
//     day's trial. The fleet engine multiplexes sessions in virtual time
//     with cross-session batched inference (internal/fleet) and records a
//     FleetDayStats per day; results are byte-identical across engines.
package runner
