package nn

import (
	"fmt"
	"math"
)

// Optimizer applies a gradient step to a network's parameters. Gradients are
// mean-gradients over the batch the caller accumulated.
type Optimizer interface {
	// Step updates net in place given gradients shaped like net.W / net.B.
	Step(net *MLP, gradW, gradB [][]float64)
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vw, vb [][]float64
}

// Step implements Optimizer.
func (s *SGD) Step(net *MLP, gradW, gradB [][]float64) {
	if s.Momentum != 0 && s.vw == nil {
		s.vw = zerosLike(net.W)
		s.vb = zerosLike(net.B)
	}
	for l := range net.W {
		for i, g := range gradW[l] {
			if s.WeightDecay != 0 {
				g += s.WeightDecay * net.W[l][i]
			}
			if s.Momentum != 0 {
				s.vw[l][i] = s.Momentum*s.vw[l][i] + g
				g = s.vw[l][i]
			}
			net.W[l][i] -= s.LR * g
		}
		for i, g := range gradB[l] {
			if s.Momentum != 0 {
				s.vb[l][i] = s.Momentum*s.vb[l][i] + g
				g = s.vb[l][i]
			}
			net.B[l][i] -= s.LR * g
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64 // defaults to 0.9 if zero
	Beta2 float64 // defaults to 0.999 if zero
	Eps   float64 // defaults to 1e-8 if zero

	t              int
	mw, vw, mb, vb [][]float64
}

// Step implements Optimizer.
func (a *Adam) Step(net *MLP, gradW, gradB [][]float64) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.mw == nil {
		a.mw, a.vw = zerosLike(net.W), zerosLike(net.W)
		a.mb, a.vb = zerosLike(net.B), zerosLike(net.B)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(p, g, m, v []float64) {
		for i := range p {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mh := m[i] / c1
			vh := v[i] / c2
			p[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
	for l := range net.W {
		upd(net.W[l], gradW[l], a.mw[l], a.vw[l])
		upd(net.B[l], gradB[l], a.mb[l], a.vb[l])
	}
}

func zerosLike(p [][]float64) [][]float64 {
	z := make([][]float64, len(p))
	for i := range p {
		z[i] = make([]float64, len(p[i]))
	}
	return z
}

// Trainer accumulates gradients over minibatches and steps an optimizer.
// It supports weighted samples (the paper weights recent days more heavily)
// and both classification (softmax + cross-entropy) and regression (MSE)
// heads. Not safe for concurrent use.
type Trainer struct {
	Net *MLP
	Opt Optimizer

	ws           *Workspace
	gradW, gradB [][]float64
	probs        []float64
}

// NewTrainer creates a Trainer for net with the given optimizer.
func NewTrainer(net *MLP, opt Optimizer) *Trainer {
	return &Trainer{
		Net:   net,
		Opt:   opt,
		ws:    net.NewWorkspace(),
		gradW: zerosLike(net.W),
		gradB: zerosLike(net.B),
		probs: make([]float64, net.OutputSize()),
	}
}

func (t *Trainer) zeroGrads() {
	for l := range t.gradW {
		clearSlice(t.gradW[l])
		clearSlice(t.gradB[l])
	}
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// backprop propagates delta (dLoss/dz of the output layer, already scaled by
// the sample weight) through the network, accumulating into gradW/gradB.
// The workspace must hold the forward state for this sample.
func (t *Trainer) backprop(delta []float64) {
	net := t.Net
	last := net.NumLayers() - 1
	copy(t.ws.deltas[last], delta)
	for l := last; l >= 0; l-- {
		d := t.ws.deltas[l]
		in := t.ws.acts[l]
		nIn := net.Sizes[l]
		gw := t.gradW[l]
		gb := t.gradB[l]
		for o, dv := range d {
			if dv == 0 {
				continue
			}
			row := gw[o*nIn : (o+1)*nIn]
			for i, xi := range in {
				row[i] += dv * xi
			}
			gb[o] += dv
		}
		if l == 0 {
			break
		}
		// delta_{l-1} = (W[l]^T d) * relu'(z_{l-1})
		prev := t.ws.deltas[l-1]
		clearSlice(prev)
		w := net.W[l]
		for o, dv := range d {
			if dv == 0 {
				continue
			}
			row := w[o*nIn : (o+1)*nIn]
			for i := range prev {
				prev[i] += row[i] * dv
			}
		}
		z := t.ws.zs[l-1]
		for i := range prev {
			if z[i] <= 0 {
				prev[i] = 0
			}
		}
	}
}

// TrainClassBatch performs one optimizer step on a weighted minibatch of
// classification samples and returns the weighted mean cross-entropy loss
// (nats). labels[i] indexes the true output bin; weights may be nil for
// uniform weighting.
func (t *Trainer) TrainClassBatch(xs [][]float64, labels []int, weights []float64) float64 {
	if len(xs) != len(labels) {
		panic(fmt.Sprintf("nn: %d inputs vs %d labels", len(xs), len(labels)))
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	totalW := 0.0
	if weights == nil {
		totalW = float64(len(xs))
	} else {
		for _, w := range weights {
			totalW += w
		}
	}
	if totalW <= 0 {
		return 0
	}
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		if w == 0 {
			continue
		}
		logits := t.Net.ForwardInto(t.ws, x)
		Softmax(t.probs, logits)
		lbl := labels[s]
		if lbl < 0 || lbl >= len(t.probs) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, len(t.probs)))
		}
		p := t.probs[lbl]
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -w * math.Log(p)
		scale := w / totalW
		for i, pi := range t.probs {
			delta[i] = pi * scale
		}
		delta[lbl] -= scale
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / totalW
}

// TrainRegBatch performs one optimizer step on a weighted minibatch of
// regression samples (MSE loss, linear output) and returns the weighted mean
// squared error. targets[i] must have length OutputSize.
func (t *Trainer) TrainRegBatch(xs, targets [][]float64, weights []float64) float64 {
	if len(xs) != len(targets) {
		panic(fmt.Sprintf("nn: %d inputs vs %d targets", len(xs), len(targets)))
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	totalW := 0.0
	if weights == nil {
		totalW = float64(len(xs))
	} else {
		for _, w := range weights {
			totalW += w
		}
	}
	if totalW <= 0 {
		return 0
	}
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		if w == 0 {
			continue
		}
		out := t.Net.ForwardInto(t.ws, x)
		scale := w / totalW
		for i, o := range out {
			diff := o - targets[s][i]
			loss += w * diff * diff
			delta[i] = 2 * diff * scale
		}
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / totalW
}

// PolicyGradStep performs one step of REINFORCE-style training: for each
// sample, the gradient of -advantage*log(pi(action|x)) - entropyCoeff*H(pi)
// is accumulated, then the optimizer steps once. Used by the Pensieve
// reproduction. Returns the mean policy loss (excluding the entropy bonus).
func (t *Trainer) PolicyGradStep(xs [][]float64, actions []int, advantages []float64, entropyCoeff float64) float64 {
	if len(xs) != len(actions) || len(xs) != len(advantages) {
		panic("nn: PolicyGradStep length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	t.zeroGrads()
	n := float64(len(xs))
	loss := 0.0
	delta := make([]float64, t.Net.OutputSize())
	for s, x := range xs {
		logits := t.Net.ForwardInto(t.ws, x)
		Softmax(t.probs, logits)
		a := actions[s]
		adv := advantages[s]
		p := t.probs[a]
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -adv * math.Log(p)
		// d/dlogits of -adv*log p_a  =  adv*(p - onehot_a)
		for i, pi := range t.probs {
			delta[i] = adv * pi / n
			// entropy-bonus gradient: d/dlogits of -H(p) is
			// p_i*(log p_i + H); we *add* coeff * that to move
			// toward higher entropy... i.e., we minimize
			// -coeff*H, whose gradient is coeff*p_i*(log p_i + H).
			if entropyCoeff != 0 && pi > 0 {
				h := Entropy(t.probs)
				delta[i] += entropyCoeff * pi * (math.Log(pi) + h) / n
			}
		}
		delta[a] -= adv / n
		t.backprop(delta)
	}
	t.Opt.Step(t.Net, t.gradW, t.gradB)
	return loss / n
}

// evalRows is the row-block size batched dataset evaluation uses: big
// enough to amortize per-call overhead, small enough that the activation
// matrices of a 64-wide hidden layer stay in L1/L2.
const evalRows = 64

// forEachLogitRow runs the dataset through net in batches and calls visit
// with each sample's index and logit row.
func forEachLogitRow(net *MLP, xs [][]float64, visit func(s int, logits []float64)) {
	rows := evalRows
	if len(xs) < rows {
		rows = len(xs)
	}
	nIn, nOut := net.InputSize(), net.OutputSize()
	ws := net.NewBatchWorkspace(rows)
	buf := make([]float64, rows*nIn)
	for at := 0; at < len(xs); at += rows {
		b := len(xs) - at
		if b > rows {
			b = rows
		}
		for r := 0; r < b; r++ {
			if len(xs[at+r]) != nIn {
				panic(fmt.Sprintf("nn: sample %d has %d features, want %d", at+r, len(xs[at+r]), nIn))
			}
			copy(buf[r*nIn:(r+1)*nIn], xs[at+r])
		}
		logits := net.ForwardBatchInto(ws, buf[:b*nIn], b)
		for r := 0; r < b; r++ {
			visit(at+r, logits[r*nOut:(r+1)*nOut])
		}
	}
}

// CrossEntropy evaluates the mean cross-entropy loss (nats) of net on a
// labeled dataset without training, one batched forward pass per row block.
// It is the metric used in the paper's Figure 7 TTP ablation.
func CrossEntropy(net *MLP, xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	probs := make([]float64, net.OutputSize())
	loss := 0.0
	forEachLogitRow(net, xs, func(s int, logits []float64) {
		Softmax(probs, logits)
		p := probs[labels[s]]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	})
	return loss / float64(len(xs))
}

// Accuracy returns the fraction of samples whose argmax prediction matches
// the label.
func Accuracy(net *MLP, xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	hit := 0
	forEachLogitRow(net, xs, func(s int, logits []float64) {
		if ArgMax(logits) == labels[s] {
			hit++
		}
	})
	return float64(hit) / float64(len(xs))
}
