//go:build amd64

package nn

// useAVX2 gates the packed SIMD kernel: the CPU must support AVX2 and the
// OS must have enabled YMM state saving.
var useAVX2 = detectAVX2()

// useAVX512 upgrades the packed kernel to 512-bit vectors when the CPU and
// OS support AVX-512F (ZMM state enabled).
var useAVX512 = useAVX2 && detectAVX512()

// affineRowTAVX2 computes one sample's affine layer over transposed weights:
//
//	dst[o] = bias[o] + Σ_i wt[i*nOut+o]·x[i]
//
// with each output accumulated in ascending input order and a separate
// multiply and add rounding per term (VMULPD+VADDPD, never FMA), so every
// element is bitwise identical to the scalar affineBatch accumulation.
//
//go:noescape
func affineRowTAVX2(dst, bias, x, wt *float64, nIn, nOut int)

// affineRowTAVX512 is the same contract on 512-bit vectors.
//
//go:noescape
func affineRowTAVX512(dst, bias, x, wt *float64, nIn, nOut int)

// affineRowT dispatches one packed affine row to the widest supported
// kernel. Callers must have checked useAVX2.
func affineRowT(dst, bias, x, wt *float64, nIn, nOut int) {
	if useAVX512 {
		affineRowTAVX512(dst, bias, x, wt, nIn, nOut)
		return
	}
	affineRowTAVX2(dst, bias, x, wt, nIn, nOut)
}

// reluVecAVX2 and reluVecAVX512 clamp non-positive entries (and NaN) to +0
// in place, branchlessly — element-for-element identical to reluInPlace.
//
//go:noescape
func reluVecAVX2(v *float64, n int)

//go:noescape
func reluVecAVX512(v *float64, n int)

// reluVec dispatches the in-place ReLU to the widest supported kernel.
// Callers must have checked useAVX2.
func reluVec(v []float64) {
	if len(v) == 0 {
		return
	}
	if useAVX512 {
		reluVecAVX512(&v[0], len(v))
		return
	}
	reluVecAVX2(&v[0], len(v))
}

// cpuid executes the CPUID instruction for (leaf, subleaf).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// detectAVX2 checks CPU support for AVX2 and OS support for YMM state.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0
}

// detectAVX512 checks CPU support for AVX-512F and OS support for the
// opmask/ZMM state (XCR0 bits 5-7 alongside SSE/YMM).
func detectAVX512() bool {
	if xcr0, _ := xgetbv0(); xcr0&0xE6 != 0xE6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<16) != 0
}
