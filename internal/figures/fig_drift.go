package figures

import (
	"io"

	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// FigDriftRow is one day of the nonstationary staleness experiment: the
// Fugu arm's stall ratio under daily retraining and under the frozen day-0
// model, on seed-paired sessions.
type FigDriftRow struct {
	Day               int
	RetrainedStallPct float64
	FrozenStallPct    float64
	// GapPP is frozen minus retrained, in percentage points.
	GapPP float64
	// Drift describes the day's distribution shift.
	Drift string
}

// FigDrift runs the drift extension of §4.6: the same staleness ablation
// the paper ran in its (stationary) deployment, but in a deployment whose
// path population shifts under the model (the "shift" preset: the slow-path
// share grows daily and deep outages ramp). In situ retraining tracks the
// moving distribution; the frozen model falls behind at an accelerating
// rate — the separation the paper's Figure-9-style drift argument predicts
// emulation-or-stale training cannot avoid.
func (s *Suite) FigDrift(w io.Writer) ([]FigDriftRow, error) {
	if s.drift == nil {
		sessions := s.Scale / 4
		if sessions < 48 {
			sessions = 48
		}
		const days = 4
		// The experiment is the registered "drift-shift" scenario at the
		// suite's scale and seed: the spec's ablation runs both arms on
		// paired sessions. Fewer nightly epochs than the suite's offline
		// trainings — the loop retrains 4 times per arm and warm starts
		// make each cheap.
		spec := scenario.New(
			scenario.Days(days),
			scenario.Sessions(sessions),
			scenario.Window(0),
			scenario.Seed(s.Seed+600),
			scenario.Epochs(6),
			scenario.Drift("shift"),
		)
		s.Logf("running drift staleness experiment (%d days x %d sessions, both arms)...", days, sessions)
		out, err := scenario.Run(spec, scenario.RunOptions{
			Logf: func(format string, args ...any) { s.Logf("  "+format, args...) },
		})
		if err != nil {
			return nil, err
		}

		rows := make([]FigDriftRow, 0, days)
		for _, g := range runner.StalenessGaps(out.Result, out.Frozen, "Fugu") {
			if !g.Present {
				continue
			}
			rows = append(rows, FigDriftRow{
				Day:               g.Day,
				RetrainedStallPct: 100 * g.Retrained,
				FrozenStallPct:    100 * g.Frozen,
				GapPP:             100 * g.Gap,
				Drift:             out.Schedule.Describe(g.Day),
			})
		}
		s.drift = rows
	}

	var werr error
	line(w, &werr, "Drift: staleness ablation in a nonstationary deployment (preset \"shift\")\n")
	line(w, &werr, "%-4s %12s %12s %9s  %s\n", "Day", "Retrained%", "Frozen%", "Gap pp", "Drift")
	for _, r := range s.drift {
		line(w, &werr, "%-4d %11.3f%% %11.3f%% %+9.3f  %s\n",
			r.Day, r.RetrainedStallPct, r.FrozenStallPct, r.GapPP, r.Drift)
	}
	line(w, &werr, "Day 1 is identical by construction (both arms serve the day-0 model);\nfrom day 2 the frozen model meets paths its training data never contained.\n")
	return s.drift, werr
}
