package pensieve

import (
	"testing"

	"puffer/internal/nn"
)

// shortTrain runs a deliberately small but real training loop.
func shortTrain(t *testing.T) (*Agent, TrainResult) {
	t.Helper()
	cfg := DefaultTrainConfig()
	cfg.Episodes = 12
	cfg.ChunksPerEp = 25
	cfg.Seed = 7
	return Train(cfg)
}

// TestTrainPackedRolloutMatchesPortable: episode rollouts serve the policy
// from a packed (SIMD) snapshot; since snapshot logits are bitwise
// identical to ForwardInto, every sampled action, every gradient, and
// therefore the final trained weights must match the portable path
// exactly.
func TestTrainPackedRolloutMatchesPortable(t *testing.T) {
	if !packedRollout {
		t.Fatal("packed rollout must be the default")
	}
	packedAgent, packedRes := shortTrain(t)

	packedRollout = false
	defer func() { packedRollout = true }()
	portableAgent, portableRes := shortTrain(t)

	if packedRes != portableRes {
		t.Fatalf("training diagnostics differ: packed %+v vs portable %+v", packedRes, portableRes)
	}
	a, b := packedAgent.Policy(), portableAgent.Policy()
	if !a.SameShape(b) {
		t.Fatal("trained policies differ in shape")
	}
	for l := range a.W {
		for i, v := range a.W[l] {
			if v != b.W[l][i] {
				t.Fatalf("layer %d weight %d differs: %v vs %v (must be bitwise identical)", l, i, v, b.W[l][i])
			}
		}
		for i, v := range a.B[l] {
			if v != b.B[l][i] {
				t.Fatalf("layer %d bias %d differs: %v vs %v", l, i, v, b.B[l][i])
			}
		}
	}
	// Sanity: the snapshot path really is live on this machine when the
	// kernels are (the equality above holds either way).
	_ = nn.Accelerated()
}
