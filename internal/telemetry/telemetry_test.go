package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummaryBuilderBasics(t *testing.T) {
	b := NewSummaryBuilder(1, 2, "Fugu")
	b.Chunk(15, 1e6, 5e6)
	b.Chunk(17, 1.2e6, 6e6)
	b.Chunk(16, 1.1e6, 7e6)
	s := b.Finish(0.5, 6.006, 1.0, false, false)

	if s.SessionID != 1 || s.StreamID != 2 || s.Scheme != "Fugu" {
		t.Fatalf("identity fields wrong: %+v", s)
	}
	if s.Chunks != 3 {
		t.Fatalf("chunks = %d, want 3", s.Chunks)
	}
	if math.Abs(s.SSIMMean-16) > 1e-9 {
		t.Fatalf("SSIMMean = %v, want 16", s.SSIMMean)
	}
	// |17-15| = 2, |16-17| = 1 -> mean 1.5
	if math.Abs(s.SSIMVar-1.5) > 1e-9 {
		t.Fatalf("SSIMVar = %v, want 1.5", s.SSIMVar)
	}
	if s.FirstChunkSSIM != 15 {
		t.Fatalf("FirstChunkSSIM = %v, want 15", s.FirstChunkSSIM)
	}
	if math.Abs(s.PathMeanRate-6e6) > 1e-9 {
		t.Fatalf("PathMeanRate = %v, want 6e6", s.PathMeanRate)
	}
	wantBitrate := (1e6 + 1.2e6 + 1.1e6) * 8 / (3 * 2.002)
	if math.Abs(s.MeanBitrate-wantBitrate) > 1 {
		t.Fatalf("MeanBitrate = %v, want %v", s.MeanBitrate, wantBitrate)
	}
}

func TestWatchTimeAndStallRatio(t *testing.T) {
	s := StreamSummary{PlayTime: 90, StallTime: 10}
	if s.WatchTime() != 100 {
		t.Fatalf("WatchTime = %v", s.WatchTime())
	}
	if s.StallRatio() != 0.1 {
		t.Fatalf("StallRatio = %v", s.StallRatio())
	}
	if (StreamSummary{}).StallRatio() != 0 {
		t.Fatal("empty stream StallRatio should be 0")
	}
}

func TestEligibility(t *testing.T) {
	cases := []struct {
		s    StreamSummary
		want bool
	}{
		{StreamSummary{PlayTime: 10}, true},
		{StreamSummary{PlayTime: 3.9}, false},                   // under 4 s
		{StreamSummary{PlayTime: 10, NeverPlayed: true}, false}, // never played
		{StreamSummary{PlayTime: 10, BadDecoder: true}, false},  // decoder exclusion
		{StreamSummary{PlayTime: 2, StallTime: 3}, true},        // watch = play+stall
	}
	for i, c := range cases {
		if got := c.s.Eligible(); got != c.want {
			t.Errorf("case %d: Eligible = %v, want %v", i, got, c.want)
		}
	}
}

func TestSlowPathCut(t *testing.T) {
	if !(StreamSummary{PathMeanRate: 5.9e6}).SlowPath() {
		t.Fatal("5.9 Mbps should be slow")
	}
	if (StreamSummary{PathMeanRate: 6.1e6}).SlowPath() {
		t.Fatal("6.1 Mbps should not be slow")
	}
}

func TestSummariesCSVRoundtrip(t *testing.T) {
	in := []StreamSummary{
		{SessionID: 1, StreamID: 0, Scheme: "BBA", PathMeanRate: 4e6, StartupDelay: 0.8,
			PlayTime: 120.5, StallTime: 2.25, Chunks: 60, SSIMMean: 15.1234, SSIMVar: 0.9,
			MeanBitrate: 2.4e6, FirstChunkSSIM: 11.5},
		{SessionID: 2, StreamID: 1, Scheme: "Fugu", NeverPlayed: true},
		{SessionID: 3, StreamID: 0, Scheme: "MPC-HM", BadDecoder: true, PlayTime: 50},
	}
	var buf bytes.Buffer
	if err := WriteSummariesCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSummariesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("roundtrip count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Scheme != in[i].Scheme || out[i].SessionID != in[i].SessionID {
			t.Fatalf("row %d identity mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if math.Abs(out[i].PlayTime-in[i].PlayTime) > 1e-3 {
			t.Fatalf("row %d PlayTime %v vs %v", i, out[i].PlayTime, in[i].PlayTime)
		}
		if out[i].NeverPlayed != in[i].NeverPlayed || out[i].BadDecoder != in[i].BadDecoder {
			t.Fatalf("row %d exclusion flags mismatch", i)
		}
	}
}

func TestReadSummariesCSVErrors(t *testing.T) {
	bad := []string{
		"1,2,x\n",                        // wrong field count
		strings.Repeat("a,", 13) + "a\n", // unparseable
	}
	for i, in := range bad {
		if _, err := ReadSummariesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted bad input", i)
		}
	}
	// Empty input is fine: no rows.
	out, err := ReadSummariesCSV(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d rows", err, len(out))
	}
}

func TestLogCSVWriters(t *testing.T) {
	l := &Log{
		Sent: []VideoSent{{
			Time: 1.5, SessionID: 1, StreamID: 0, ExptID: "Fugu", ChunkIndex: 3,
			Quality: 7, Size: 1.1e6, SSIMdB: 16.2, CWND: 40, InFlight: 20,
			MinRTT: 0.04, RTT: 0.05, DeliveryRate: 5e6,
		}},
		Acked:  []VideoAcked{{Time: 2.0, SessionID: 1, StreamID: 0, ChunkIndex: 3}},
		Buffer: []ClientBuffer{{Time: 2.0, SessionID: 1, StreamID: 0, Event: "timer", Buffer: 8.4, CumRebuf: 0.2}},
	}
	var sent, acked, cbuf bytes.Buffer
	if err := l.WriteVideoSentCSV(&sent); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteVideoAckedCSV(&acked); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteClientBufferCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sent.String(), "delivery_rate") || !strings.Contains(sent.String(), "Fugu") {
		t.Fatalf("video_sent CSV malformed:\n%s", sent.String())
	}
	if lines := strings.Count(acked.String(), "\n"); lines != 2 {
		t.Fatalf("video_acked CSV has %d lines, want 2", lines)
	}
	if !strings.Contains(cbuf.String(), "timer") {
		t.Fatalf("client_buffer CSV malformed:\n%s", cbuf.String())
	}
}

func TestSummaryBuilderNoChunks(t *testing.T) {
	b := NewSummaryBuilder(5, 0, "BBA")
	s := b.Finish(0, 0, 0, true, false)
	if s.Chunks != 0 || s.SSIMMean != 0 || s.SSIMVar != 0 {
		t.Fatalf("empty stream summary wrong: %+v", s)
	}
	if s.Eligible() {
		t.Fatal("never-played stream must be ineligible")
	}
}
