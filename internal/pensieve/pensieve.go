package pensieve

import (
	"fmt"
	"io"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/nn"
)

// HistLen is the history window of the Pensieve state (k = 8).
const HistLen = 8

// NumActions is the number of ladder rungs the policy chooses among.
const NumActions = 10

// StateDim is the flattened input: 8 past throughputs, 8 past download
// times, next-chunk sizes for 10 rungs, buffer, last quality, and a
// remaining-chunks signal (constant for live streams).
const StateDim = HistLen + HistLen + NumActions + 3

// assembleState builds the Pensieve input from an ABR observation.
func assembleState(dst []float64, obs *abr.Observation) {
	if len(dst) != StateDim {
		panic("pensieve: state buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	hist := obs.History
	if len(hist) > HistLen {
		hist = hist[len(hist)-HistLen:]
	}
	off := HistLen - len(hist)
	for i, r := range hist {
		// Normalized throughput saturates at the envelope of the FCC-like
		// training traces (~8 Mbit/s): beyond its training support the
		// policy cannot distinguish fast paths from very fast ones.
		tp := r.Throughput() / 10e6
		if tp > 0.8 {
			tp = 0.8
		}
		dst[off+i] = tp
		tt := r.TransTime / 10
		if tt > 2 {
			tt = 2
		}
		dst[HistLen+off+i] = tt
	}
	k := 2 * HistLen
	if len(obs.Horizon) > 0 {
		for q := 0; q < NumActions && q < len(obs.Horizon[0].Versions); q++ {
			dst[k+q] = obs.Horizon[0].Versions[q].Size / 1e6
		}
	}
	k += NumActions
	dst[k] = obs.Buffer / 10
	if obs.LastQuality >= 0 {
		dst[k+1] = float64(obs.LastQuality) / float64(NumActions)
	}
	dst[k+2] = 1 // live stream: effectively unbounded chunks remaining
}

// Agent is a frozen Pensieve policy usable as an abr.Algorithm. Deployment
// picks the argmax action. Not safe for concurrent use.
type Agent struct {
	policy *nn.MLP
	ws     *nn.Workspace
	state  []float64
}

// NewAgent wraps a trained policy network.
func NewAgent(policy *nn.MLP) *Agent {
	if policy.InputSize() != StateDim || policy.OutputSize() != NumActions {
		panic(fmt.Sprintf("pensieve: policy shape %dx%d, want %dx%d",
			policy.InputSize(), policy.OutputSize(), StateDim, NumActions))
	}
	return &Agent{policy: policy, ws: policy.NewWorkspace(), state: make([]float64, StateDim)}
}

// Policy exposes the underlying policy network (read-only at inference), so
// callers can construct fresh agents with independent workspaces for
// concurrent streams.
func (a *Agent) Policy() *nn.MLP { return a.policy }

// Name implements abr.Algorithm.
func (a *Agent) Name() string { return "Pensieve" }

// Reset implements abr.Algorithm.
func (a *Agent) Reset() {}

// Choose implements abr.Algorithm.
func (a *Agent) Choose(obs *abr.Observation) int {
	assembleState(a.state, obs)
	logits := a.policy.ForwardInto(a.ws, a.state)
	q := nn.ArgMax(logits)
	if len(obs.Horizon) > 0 && q >= len(obs.Horizon[0].Versions) {
		q = len(obs.Horizon[0].Versions) - 1
	}
	return q
}

// QoEWeights is Pensieve's bitrate-based objective: reward per chunk is
// bitrate(Mbit/s) − RebufPenalty·stall(s) − SmoothPenalty·|Δbitrate|.
type QoEWeights struct {
	RebufPenalty  float64 // QoE_lin uses 4.3
	SmoothPenalty float64 // 1.0
}

// DefaultQoE returns Pensieve's QoE_lin weights.
func DefaultQoE() QoEWeights { return QoEWeights{RebufPenalty: 4.3, SmoothPenalty: 1.0} }

// Reward scores one chunk.
func (w QoEWeights) Reward(enc media.Encoding, lastBitrate float64, stall float64) float64 {
	br := enc.Bitrate() / 1e6
	r := br - w.RebufPenalty*stall
	if lastBitrate >= 0 {
		d := br - lastBitrate/1e6
		if d < 0 {
			d = -d
		}
		r -= w.SmoothPenalty * d
	}
	return r
}

// SavePolicy writes the policy network.
func (a *Agent) SavePolicy(w io.Writer) error { return a.policy.Save(w) }

// LoadAgent reads a policy saved with SavePolicy.
func LoadAgent(r io.Reader) (*Agent, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	if net.InputSize() != StateDim || net.OutputSize() != NumActions {
		return nil, fmt.Errorf("pensieve: loaded policy shape %dx%d, want %dx%d",
			net.InputSize(), net.OutputSize(), StateDim, NumActions)
	}
	return NewAgent(net), nil
}

// NewUntrainedPolicy returns a fresh policy network of the right shape.
func NewUntrainedPolicy(rng *rand.Rand) *nn.MLP {
	return nn.NewMLP(rng, StateDim, 64, 64, NumActions)
}
