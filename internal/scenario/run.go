package scenario

import (
	"path/filepath"
	"time"

	"puffer/internal/netem"
	"puffer/internal/obs"
	"puffer/internal/runner"
)

// RunOptions are the scheduling-side knobs of a scenario run — everything
// here changes how (or where) the experiment executes, never what it
// computes, so none of it lives in the Spec or its hashes.
type RunOptions struct {
	// Workers bounds shard parallelism (0 = GOMAXPROCS).
	Workers int
	// CheckpointDir persists per-day state for kill-and-resume. The
	// retrained run and the frozen ablation companion checkpoint side by
	// side in <dir>/retrain and <dir>/frozen-<companion guard hash>.
	CheckpointDir string
	// DistCommand is the worker argv the dist engine launches (usually
	// the calling binary's own worker mode). Required when the spec
	// selects engine.kind "dist"; ignored otherwise.
	DistCommand []string
	// DistShardTimeout is the dist engine's per-shard hang deadline
	// (0 = none). Ignored by the other engines.
	DistShardTimeout time.Duration
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
	// Events, if set, receives the structured run-progress stream: the
	// scenario lifecycle plus the runner's per-day events, for both the
	// main arm and the frozen ablation companion. Wall-side only — events
	// never feed back into what the scenario computes.
	Events *obs.EventLog
}

// Outcome is a finished scenario run.
type Outcome struct {
	// Spec is the fully-defaulted spec that ran — what -dump-scenario
	// prints, and what the checkpoint manifest recorded.
	Spec Spec
	// Schedule is the effective drift schedule (zero when stationary),
	// for per-day Describe readouts.
	Schedule netem.DriftSchedule
	// Result is the spec's run.
	Result *runner.Result
	// Frozen is the staleness-ablation companion — the same experiment
	// with nightly retraining disabled, on the same seed — when the spec
	// asked for it (daily.retrain and daily.ablation both true).
	Frozen *runner.Result
}

// Run compiles and executes the scenario: the main run, and (when the spec
// enables the ablation) the frozen-model companion on the same seed, whose
// per-day gap against the retrained arm is the paper's §4.6 staleness
// readout. This is the platform's one front door — the CLI, the nightly
// workflow, and library callers all run experiments through it.
func Run(s Spec, opt RunOptions) (*Outcome, error) {
	d := s.WithDefaults()
	cfg, err := Compile(d)
	if err != nil {
		return nil, err
	}
	sched, err := d.Schedule()
	if err != nil {
		return nil, err
	}
	cfg.Workers = opt.Workers
	cfg.Logf = opt.Logf
	cfg.Events = opt.Events
	cfg.CheckpointDir = checkpointFor(opt.CheckpointDir, cfg.Retrain)
	cfg.DistCommand = opt.DistCommand
	cfg.DistShardTimeout = opt.DistShardTimeout

	opt.Events.Emit("scenario_start", map[string]any{
		"name": d.Name, "hash": d.Hash(), "days": cfg.Days, "sessions": cfg.SessionsPerDay,
	})
	out := &Outcome{Spec: d, Schedule: sched}
	if out.Result, err = runner.Run(cfg); err != nil {
		return nil, err
	}

	if cfg.Retrain && *d.Daily.Ablation {
		if opt.Logf != nil {
			opt.Logf("running frozen-model ablation (same seed, no nightly retraining)...")
		}
		opt.Events.Emit("ablation_start", map[string]any{"name": d.Name, "hash": d.Hash()})
		frozen := d
		frozen.Daily.Retrain = ptr(false)
		fcfg, err := Compile(frozen)
		if err != nil {
			return nil, err
		}
		fcfg.Workers = opt.Workers
		fcfg.Logf = opt.Logf
		fcfg.Events = opt.Events
		fcfg.CheckpointDir = frozenCheckpointDir(opt.CheckpointDir, frozen)
		fcfg.DistCommand = opt.DistCommand
		fcfg.DistShardTimeout = opt.DistShardTimeout
		if out.Frozen, err = runner.Run(fcfg); err != nil {
			return nil, err
		}
	}
	opt.Events.Emit("scenario_done", map[string]any{"name": d.Name, "hash": d.Hash()})
	return out, nil
}

// checkpointFor keeps the historical layout: the main run owns a
// subdirectory of the caller's root named for its retrain mode.
func checkpointFor(root string, retrain bool) string {
	if root == "" {
		return ""
	}
	if retrain {
		return filepath.Join(root, "retrain")
	}
	return filepath.Join(root, "frozen")
}

// frozenCheckpointDir names the ablation companion's checkpoint directory
// by the companion's own GuardHash. A plain "frozen" sibling would alias
// companions of different specs sharing one root (the manifest guard then
// rejects the second companion as a corrupt resume instead of running it);
// deriving the name from the companion's guard keeps each lineage its own
// directory.
func frozenCheckpointDir(root string, companion Spec) string {
	if root == "" {
		return ""
	}
	return filepath.Join(root, "frozen-"+companion.GuardHash()[:12])
}
