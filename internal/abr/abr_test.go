package abr

import (
	"math"
	"testing"
	"testing/quick"

	"puffer/internal/media"
)

// testChunks builds a horizon of n identical-ladder chunks with clean
// geometry: version q has size (q+1)*base bytes and SSIM 10+q dB.
func testChunks(n int, base float64) []media.Chunk {
	chunks := make([]media.Chunk, n)
	for i := range chunks {
		vs := make([]media.Encoding, 10)
		for q := range vs {
			vs[q] = media.Encoding{Size: float64(q+1) * base, SSIMdB: 10 + float64(q)}
		}
		chunks[i] = media.Chunk{Index: i, Versions: vs}
	}
	return chunks
}

func obsWith(buffer float64, hist []ChunkRecord, horizon []media.Chunk) *Observation {
	return &Observation{
		ChunkIndex:  len(hist), // one decision per completed chunk
		Buffer:      buffer,
		BufferCap:   15,
		LastQuality: -1,
		History:     hist,
		Horizon:     horizon,
	}
}

// histAtThroughput builds n history records at a steady throughput (bits/s).
func histAtThroughput(n int, tputBps float64) []ChunkRecord {
	h := make([]ChunkRecord, n)
	for i := range h {
		size := 1e6 * (0.8 + 0.05*float64(i%3))
		h[i] = ChunkRecord{Size: size, TransTime: size * 8 / tputBps, SSIMdB: 14, Quality: 5}
	}
	return h
}

func TestBinIndexEdges(t *testing.T) {
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.2499, 0},
		{0.25, 1}, {0.5, 1}, {0.7499, 1},
		{0.75, 2}, {1.24, 2},
		{1.25, 3},
		{9.6, 19}, {9.74, 19},
		{9.75, 20}, {50, 20}, {1e9, 20},
	}
	for _, c := range cases {
		if got := BinIndex(c.t); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestBinValueCentersAndTails(t *testing.T) {
	if got := BinValue(0); got != 0.125 {
		t.Fatalf("BinValue(0) = %v", got)
	}
	if got := BinValue(1); got != 0.5 {
		t.Fatalf("BinValue(1) = %v, want 0.5", got)
	}
	if got := BinValue(19); got != 9.5 {
		t.Fatalf("BinValue(19) = %v, want 9.5", got)
	}
	if got := BinValue(20); got != 14.0 {
		t.Fatalf("BinValue(20) = %v, want a penalizing 14 (near the buffer cap)", got)
	}
}

func TestBinRoundtripProperty(t *testing.T) {
	// BinValue(BinIndex(t)) must land in the same bin as t.
	f := func(raw float64) bool {
		tt := math.Abs(math.Mod(raw, 15))
		return BinIndex(BinValue(BinIndex(tt))) == BinIndex(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQoEWeights(t *testing.T) {
	w := DefaultQoEWeights()
	if got := w.Chunk(16, 14, 0, true); got != 14 {
		t.Fatalf("QoE = %v, want 16 - |16-14| = 14", got)
	}
	if got := w.Chunk(16, 14, 0.1, true); math.Abs(got-4) > 1e-9 {
		t.Fatalf("QoE with stall = %v, want 4", got)
	}
	if got := w.Chunk(16, 99, 0, false); got != 16 {
		t.Fatalf("first-chunk QoE = %v, want 16 (no variation term)", got)
	}
}

func TestHarmonicMeanPredictorMatchesHand(t *testing.T) {
	p := &HarmonicMeanPredictor{}
	hist := []ChunkRecord{
		{Size: 1e6, TransTime: 1},   // 8 Mbps
		{Size: 1e6, TransTime: 2},   // 4 Mbps
		{Size: 1e6, TransTime: 0.5}, // 16 Mbps
	}
	obs := obsWith(10, hist, testChunks(5, 1e5))
	want := 3.0 / (1.0/8e6 + 1.0/4e6 + 1.0/16e6)
	if got := p.estimate(obs); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("HM estimate = %v, want %v", got, want)
	}
}

func TestHarmonicMeanUsesLastFiveOnly(t *testing.T) {
	p := &HarmonicMeanPredictor{}
	hist := histAtThroughput(8, 4e6)
	// Make the 3 oldest absurdly fast; they must be ignored.
	for i := 0; i < 3; i++ {
		hist[i].TransTime = hist[i].Size * 8 / 1e9
	}
	obs := obsWith(10, hist, testChunks(5, 1e5))
	got := p.estimate(obs)
	if got > 5e6 {
		t.Fatalf("HM estimate %v contaminated by samples outside the window", got)
	}
}

func TestRobustDiscountsBelowPlainHM(t *testing.T) {
	plain := &HarmonicMeanPredictor{}
	robust := &HarmonicMeanPredictor{Robust: true}
	// Volatile history => large max error => big discount.
	hist := []ChunkRecord{
		{Size: 1e6, TransTime: 1},
		{Size: 1e6, TransTime: 4},
		{Size: 1e6, TransTime: 0.5},
		{Size: 1e6, TransTime: 3},
		{Size: 1e6, TransTime: 0.8},
		{Size: 1e6, TransTime: 2.5},
	}
	obs := obsWith(10, hist, testChunks(5, 1e5))
	ph, rh := plain.estimate(obs), robust.estimate(obs)
	if !(rh < ph) {
		t.Fatalf("robust estimate %v not below plain %v", rh, ph)
	}
}

func TestPredictorNoHistoryIsConservative(t *testing.T) {
	// With no samples, the predictor assumes a slow default throughput,
	// so predicted time must scale with size (a fixed worst-case time
	// would make every rung look equally bad and select the top one).
	p := &HarmonicMeanPredictor{}
	obs := obsWith(10, nil, testChunks(5, 1e5))
	dist := make([]float64, NumBins)
	p.PredictDist(obs, 0, 1e6, dist)
	if dist[BinIndex(8.0)] != 1 { // 1 MB at 1 Mbit/s = 8 s
		t.Fatalf("no-history dist for 1MB = %v, want mass at the 8 s bin", dist)
	}
	p.PredictDist(obs, 0, 5e4, dist)
	if dist[BinIndex(0.4)] != 1 {
		t.Fatalf("no-history dist for 50KB = %v, want mass at the 0.4 s bin", dist)
	}
	// First-chunk choice must therefore be a cautious low rung.
	m := NewMPCHM()
	if q := m.Choose(obsWith(0, nil, testChunks(5, 2.5e5))); q > 1 {
		t.Fatalf("cold-start MPC chose rung %d, want a cautious low rung", q)
	}
}

func TestMPCPicksHighQualityOnFastPath(t *testing.T) {
	m := NewMPCHM()
	hist := histAtThroughput(8, 60e6) // very fast
	obs := obsWith(12, hist, testChunks(5, 1e5))
	if q := m.Choose(obs); q != 9 {
		t.Fatalf("fast path, full buffer: chose %d, want 9", q)
	}
}

func TestMPCPicksLowQualityOnSlowPathEmptyBuffer(t *testing.T) {
	m := NewMPCHM()
	hist := histAtThroughput(8, 0.4e6) // slow
	obs := obsWith(0.5, hist, testChunks(5, 2.5e5))
	q := m.Choose(obs)
	if q > 1 {
		t.Fatalf("slow path, near-empty buffer: chose %d, want <= 1", q)
	}
}

func TestMPCMonotoneInThroughput(t *testing.T) {
	// More throughput should never reduce the chosen quality, all else
	// equal.
	m := NewMPCHM()
	prev := -1
	for _, tput := range []float64{0.5e6, 1e6, 2e6, 4e6, 8e6, 16e6, 32e6} {
		m.Reset()
		obs := obsWith(8, histAtThroughput(8, tput), testChunks(5, 2.5e5))
		q := m.Choose(obs)
		if q < prev {
			t.Fatalf("quality dropped from %d to %d when throughput rose to %v", prev, q, tput)
		}
		prev = q
	}
}

func TestMPCMonotoneInBuffer(t *testing.T) {
	m := NewMPCHM()
	prev := -1
	for _, buf := range []float64{0.5, 2, 5, 9, 14} {
		m.Reset()
		obs := obsWith(buf, histAtThroughput(8, 2.5e6), testChunks(5, 2.5e5))
		q := m.Choose(obs)
		if q < prev {
			t.Fatalf("quality dropped from %d to %d when buffer rose to %v", prev, q, buf)
		}
		prev = q
	}
}

func TestRobustEstimateNeverAbovePlain(t *testing.T) {
	// RobustMPC's lower-bounding invariant: its throughput estimate can
	// never exceed the plain harmonic mean in the same state. (The
	// resulting *plans* need not be pointwise comparable — bin
	// quantization and the quality-variation term are not monotone.)
	f := func(seed int64) bool {
		tput := 0.5e6 + float64(uint64(seed)%100)/100*20e6
		hist := histAtThroughput(8, tput)
		hist[3].TransTime *= 2.5
		hist[6].TransTime *= 0.6
		plain := &HarmonicMeanPredictor{}
		robust := &HarmonicMeanPredictor{Robust: true}
		obs := obsWith(7, hist, testChunks(5, 2.5e5))
		return robust.estimate(obs) <= plain.estimate(obs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPCAvoidsStallWhenTailRisky(t *testing.T) {
	// With a point predictor saying "the big version takes 4 s" and a
	// 2-second buffer, MPC must not choose it when a cheaper version
	// avoids the stall.
	m := NewMPCHM()
	// History at exactly 2 Mbps: top version (1e6 bytes => 8 Mbit) takes
	// 4 s; version 0 (1e5 bytes) takes 0.4 s.
	obs := obsWith(2.0, histAtThroughput(8, 2e6), testChunks(5, 1e5))
	q := m.Choose(obs)
	top := testChunks(1, 1e5)[0].Versions[q]
	predicted := top.Size * 8 / 2e6
	if predicted > 2.0+media.ChunkDuration {
		t.Fatalf("chose rung %d with predicted time %v on a 2 s buffer", q, predicted)
	}
}

func TestBBARateMap(t *testing.T) {
	b := NewBBA()
	horizon := testChunks(1, 2.5e5) // bitrates ~1..10 Mbps
	low := b.Choose(obsWith(1, nil, horizon))
	if low != 0 {
		t.Fatalf("below reservoir: chose %d, want 0", low)
	}
	high := b.Choose(obsWith(14.5, nil, horizon))
	if high != 9 {
		t.Fatalf("above reservoir+cushion: chose %d, want 9", high)
	}
	mid := b.Choose(obsWith(8, nil, horizon))
	if mid <= low || mid >= high {
		t.Fatalf("mid-buffer choice %d not between extremes", mid)
	}
}

func TestBBAMonotoneInBuffer(t *testing.T) {
	b := NewBBA()
	horizon := testChunks(1, 2.5e5)
	prev := -1
	for buf := 0.0; buf <= 15; buf += 0.5 {
		q := b.Choose(obsWith(buf, nil, horizon))
		if q < prev {
			t.Fatalf("BBA quality dropped from %d to %d at buffer %v", prev, q, buf)
		}
		prev = q
	}
}

func TestBBAIgnoresThroughput(t *testing.T) {
	// Buffer-based means exactly that: identical buffer, wildly
	// different history => identical choice.
	b := NewBBA()
	horizon := testChunks(1, 2.5e5)
	q1 := b.Choose(obsWith(7, histAtThroughput(8, 100e6), horizon))
	q2 := b.Choose(obsWith(7, histAtThroughput(8, 0.1e6), horizon))
	if q1 != q2 {
		t.Fatalf("BBA choices differ with throughput: %d vs %d", q1, q2)
	}
}

func TestRateBasedTracksThroughput(t *testing.T) {
	r := NewRateBased()
	horizon := testChunks(1, 2.5e5) // version q bitrate = (q+1) Mbps
	if q := r.Choose(obsWith(8, nil, horizon)); q != 0 {
		t.Fatalf("no history: chose %d, want 0", q)
	}
	r.Reset()
	obs := obsWith(8, histAtThroughput(8, 5e6), horizon)
	q := r.Choose(obs)
	// 0.8 * 5 Mbps = 4 Mbps => rung with bitrate <= 4 Mbps => index 3.
	if q != 3 {
		t.Fatalf("5 Mbps path: chose %d, want 3", q)
	}
}

func TestBOLAMonotoneInBuffer(t *testing.T) {
	bo := NewBOLA()
	horizon := testChunks(1, 2.5e5)
	prev := -1
	for buf := 0.0; buf <= 15; buf += 0.5 {
		q := bo.Choose(obsWith(buf, nil, horizon))
		if q < prev {
			t.Fatalf("BOLA quality dropped from %d to %d at buffer %v", prev, q, buf)
		}
		prev = q
	}
	if q := bo.Choose(obsWith(14.9, nil, horizon)); q != 9 {
		t.Fatalf("BOLA at full buffer chose %d, want 9", q)
	}
}

func TestChunkRecordThroughput(t *testing.T) {
	r := ChunkRecord{Size: 1e6, TransTime: 2}
	if got := r.Throughput(); got != 4e6 {
		t.Fatalf("Throughput = %v, want 4e6", got)
	}
	if got := (ChunkRecord{Size: 1e6}).Throughput(); got != 0 {
		t.Fatalf("zero-time throughput = %v, want 0", got)
	}
}

func TestCatalogMatchesFigure5(t *testing.T) {
	cat := Catalog()
	if len(cat) != 6 {
		t.Fatalf("catalog has %d rows, want 6 (Figure 5)", len(cat))
	}
	if cat[5].Name != "Fugu" || cat[5].HowTrained != "supervised learning in situ" {
		t.Fatalf("last row should be in-situ Fugu, got %+v", cat[5])
	}
}

func TestMPCHandlesShortHorizon(t *testing.T) {
	m := NewMPCHM()
	obs := obsWith(5, histAtThroughput(8, 5e6), testChunks(2, 2.5e5))
	q := m.Choose(obs) // must not panic with horizon shorter than 5
	if q < 0 || q > 9 {
		t.Fatalf("invalid rung %d", q)
	}
	empty := obsWith(5, nil, nil)
	if q := m.Choose(empty); q != 0 {
		t.Fatalf("empty horizon should fall back to 0, got %d", q)
	}
}

func TestAlgorithmsImplementInterface(t *testing.T) {
	algs := []Algorithm{NewBBA(), NewMPCHM(), NewRobustMPCHM(), NewRateBased(), NewBOLA()}
	names := map[string]bool{}
	for _, a := range algs {
		if a.Name() == "" {
			t.Fatal("empty algorithm name")
		}
		if names[a.Name()] {
			t.Fatalf("duplicate name %q", a.Name())
		}
		names[a.Name()] = true
		a.Reset()
	}
}
