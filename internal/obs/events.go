package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// An EventLog is an append-only structured run-progress stream: one JSON
// object per line, each carrying a wall-clock timestamp ("t"), an event
// type ("type"), and the emitter's fields. It is the progress channel for
// long runs — day ETAs from the runner, per-cell lifecycle from the sweep
// executor — and, like every obs output, strictly wall-side: nothing ever
// reads an event back into a computation.
//
// A nil *EventLog is a valid no-op emitter, so engine code holds one
// unconditionally and callers opt in by supplying it. Emit is safe for
// concurrent use and never fails the run: write errors are counted
// (obs_event_errors_total) and dropped.
type EventLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenEventLog opens (creating directories and the file as needed) an
// event log for appending.
func OpenEventLog(path string) (*EventLog, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: creating event log dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening event log: %w", err)
	}
	return &EventLog{f: f}, nil
}

var eventErrors = Default.Counter("obs_event_errors_total")

// Emit appends one event. The reserved keys "t" (RFC3339Nano UTC wall
// clock) and "type" are set by Emit; fields must not use them. Each event
// is one line committed in a single write, so concurrent emitters never
// interleave and a killed process leaves at most one torn tail line.
func (l *EventLog) Emit(typ string, fields map[string]any) {
	if l == nil {
		return
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["t"] = time.Now().UTC().Format(time.RFC3339Nano)
	obj["type"] = typ
	blob, err := json.Marshal(obj)
	if err != nil {
		eventErrors.Inc()
		return
	}
	blob = append(blob, '\n')
	l.mu.Lock()
	_, err = l.f.Write(blob)
	l.mu.Unlock()
	if err != nil {
		eventErrors.Inc()
	}
}

// Close releases the log file. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}

// An Event is one decoded event-log line.
type Event struct {
	// Time is the emission wall clock (zero if the line had no valid "t").
	Time time.Time
	// Type is the event type ("day_done", "cell_start", ...).
	Type string
	// Fields holds every other key of the line.
	Fields map[string]any
}

// ReadEvents decodes an event log. A missing file is an empty log, not an
// error; a torn trailing line (a writer is live, or was killed mid-append)
// is ignored; a malformed line followed by more lines is corruption and
// fails loudly.
func ReadEvents(path string) ([]Event, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: opening event log: %w", err)
	}
	defer f.Close()

	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			pendingErr = fmt.Errorf("obs: %s line %d: %w", path, lineNo, err)
			continue
		}
		ev := Event{Fields: obj}
		if t, ok := obj["t"].(string); ok {
			if ts, err := time.Parse(time.RFC3339Nano, t); err == nil {
				ev.Time = ts
			}
			delete(obj, "t")
		}
		if typ, ok := obj["type"].(string); ok {
			ev.Type = typ
			delete(obj, "type")
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading event log: %w", err)
	}
	return out, nil
}
