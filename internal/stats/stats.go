package stats

import (
	"math"
	"math/rand"
	"sort"
)

// StreamPoint is the minimal per-stream tuple the aggregate estimators need.
type StreamPoint struct {
	Watch float64 // watch time, seconds (play + stall)
	Stall float64 // stalled time, seconds
}

// StallRatio returns the aggregate rebuffering ratio: total stall over total
// watch time — the estimator used for the headline "time spent stalled".
func StallRatio(points []StreamPoint) float64 {
	var stall, watch float64
	for _, p := range points {
		stall += p.Stall
		watch += p.Watch
	}
	if watch <= 0 {
		return 0
	}
	return stall / watch
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point, Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// RelativeHalfWidth returns half the width as a fraction of the point
// estimate (the paper quotes CI widths of +/-10-17% of the mean).
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Point == 0 {
		return 0
	}
	return (iv.Hi - iv.Lo) / 2 / math.Abs(iv.Point)
}

// Overlaps reports whether two intervals overlap — the paper's criterion
// for "statistically indistinguishable".
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// BootstrapStallRatio computes a percentile-bootstrap CI on the aggregate
// stall ratio by resampling streams with replacement (the paper's §3.4
// procedure: streams are the resampling unit because stalls are rare and
// heavily stream-correlated).
func BootstrapStallRatio(rng *rand.Rand, points []StreamPoint, iters int, conf float64) Interval {
	point := StallRatio(points)
	if len(points) == 0 || iters <= 0 {
		return Interval{Point: point, Lo: point, Hi: point}
	}
	ratios := make([]float64, iters)
	resample := make([]StreamPoint, len(points))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = points[rng.Intn(len(points))]
		}
		ratios[it] = StallRatio(resample)
	}
	sort.Float64s(ratios)
	alpha := (1 - conf) / 2
	return Interval{
		Point: point,
		Lo:    quantileSorted(ratios, alpha),
		Hi:    quantileSorted(ratios, 1-alpha),
	}
}

// WeightedMeanSE returns the weighted mean of values and a conf-level
// normal-approximation interval using the weighted standard error — the
// paper's estimator for average SSIM, weighting each stream by its duration.
func WeightedMeanSE(values, weights []float64, conf float64) Interval {
	if len(values) != len(weights) {
		panic("stats: values/weights length mismatch")
	}
	var sumW, sumWX float64
	for i, v := range values {
		sumW += weights[i]
		sumWX += weights[i] * v
	}
	if sumW <= 0 {
		return Interval{}
	}
	mean := sumWX / sumW
	// Weighted variance of the mean: sum w_i^2 (x_i - mean)^2 / (sum w)^2.
	var num float64
	for i, v := range values {
		d := v - mean
		num += weights[i] * weights[i] * d * d
	}
	se := math.Sqrt(num) / sumW
	z := zFor(conf)
	return Interval{Point: mean, Lo: mean - z*se, Hi: mean + z*se}
}

// MeanSE is WeightedMeanSE with unit weights.
func MeanSE(values []float64, conf float64) Interval {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return WeightedMeanSE(values, w, conf)
}

// zFor returns the standard-normal quantile for a two-sided confidence
// level; exact for the common levels, interpolated otherwise.
func zFor(conf float64) float64 {
	switch {
	case conf >= 0.999:
		return 3.29
	case conf >= 0.99:
		return 2.576
	case conf >= 0.95:
		return 1.96
	case conf >= 0.90:
		return 1.645
	case conf >= 0.80:
		return 1.282
	default:
		return 1.0
	}
}

// quantileSorted returns the q-quantile of ascending xs by linear
// interpolation.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// Quantile sorts a copy of xs and returns the q-quantile.
func Quantile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q)
}

// HarmonicMean returns the harmonic mean of positive values, ignoring
// non-positive entries; zero if none qualify.
func HarmonicMean(xs []float64) float64 {
	n, sumInv := 0, 0.0
	for _, x := range xs {
		if x > 0 {
			sumInv += 1 / x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sumInv
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	X float64 // value
	P float64 // fraction of samples strictly greater than or equal to X
}

// CCDF returns the complementary CDF of xs evaluated at every distinct
// sample, ascending in X (the Figure 10 curve).
func CCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := float64(len(cp))
	var out []CCDFPoint
	for i := 0; i < len(cp); i++ {
		if i > 0 && cp[i] == cp[i-1] {
			continue
		}
		out = append(out, CCDFPoint{X: cp[i], P: float64(len(cp)-i) / n})
	}
	return out
}

// CCDFAt evaluates P(X >= x) from a sample.
func CCDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// PowerConfig controls the A/B distinguishability analysis.
type PowerConfig struct {
	// Effect is the true relative difference between the schemes'
	// stall ratios (e.g. 0.15 for 15%).
	Effect float64
	// Trials is how many simulated experiments to run per sample size.
	Trials int
	// BootstrapIters per CI.
	BootstrapIters int
	// Conf is the confidence level (e.g. 0.95).
	Conf float64
}

// DetectionRate estimates the probability that two schemes whose true stall
// ratios differ by cfg.Effect are distinguished (non-overlapping CIs) given
// n streams per scheme, with per-stream behavior drawn by draw(rng, scale):
// draw must return a stream whose expected stall ratio is proportional to
// scale. This reproduces the paper's finding that realistic heavy-tailed
// stream behavior makes modest effects statistically invisible.
func DetectionRate(rng *rand.Rand, cfg PowerConfig, n int, draw func(rng *rand.Rand, scale float64) StreamPoint) float64 {
	detected := 0
	a := make([]StreamPoint, n)
	b := make([]StreamPoint, n)
	for trial := 0; trial < cfg.Trials; trial++ {
		for i := 0; i < n; i++ {
			a[i] = draw(rng, 1.0)
			b[i] = draw(rng, 1.0-cfg.Effect)
		}
		ia := BootstrapStallRatio(rng, a, cfg.BootstrapIters, cfg.Conf)
		ib := BootstrapStallRatio(rng, b, cfg.BootstrapIters, cfg.Conf)
		if !ia.Overlaps(ib) {
			detected++
		}
	}
	return float64(detected) / float64(cfg.Trials)
}

// StreamYears converts a set of stream watch times (seconds) to stream-years.
func StreamYears(points []StreamPoint) float64 {
	var watch float64
	for _, p := range points {
		watch += p.Watch
	}
	return watch / (365.25 * 24 * 3600)
}
