package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/fleet"
	"puffer/internal/obs"
)

// Registry names of the serving-layer metrics. The daemon's /metrics
// endpoint (obscli's -obs-listen) publishes them; the soak harness asserts
// on them by name.
const (
	// MetricDecisionNS is the server-side decision compute latency
	// (prepare + finish spans, excluding queue wait) — the wall-clock
	// counterpart of fleet_decision_ns.
	MetricDecisionNS = "serve_decision_ns"
	// MetricRequestNS is the full server-side request latency: queue wait
	// plus batching plus compute, enqueue to reply.
	MetricRequestNS = "serve_request_ns"
	// MetricBatchSessions is the per-flush batch size in decision requests
	// (fleet_batch_rows, fed by the shared InferenceService, keeps the
	// per-net row shape).
	MetricBatchSessions = "serve_batch_sessions"
	// MetricClockViolations counts Decide requests whose session clock ran
	// backwards — an invariant the soak harness pins at zero.
	MetricClockViolations = "serve_clock_violations_total"
	// MetricQueueFull counts enqueues that found the decision queue full
	// and had to block (backpressure engaging).
	MetricQueueFull = "serve_queue_full_total"
)

var (
	srvDecisionNS      = obs.Default.Histogram(MetricDecisionNS)
	srvRequestNS       = obs.Default.Histogram(MetricRequestNS)
	srvBatchSessions   = obs.Default.Histogram(MetricBatchSessions)
	srvSessionsActive  = obs.Default.Gauge("serve_sessions_active")
	srvSessionsTotal   = obs.Default.Counter("serve_sessions_total")
	srvCompletedTotal  = obs.Default.Counter("serve_sessions_completed_total")
	srvAbortedTotal    = obs.Default.Counter("serve_sessions_aborted_total")
	srvDecisionsTotal  = obs.Default.Counter("serve_decisions_total")
	srvClockViolations = obs.Default.Counter(MetricClockViolations)
	srvQueueFull       = obs.Default.Counter(MetricQueueFull)
	srvProtoErrors     = obs.Default.Counter("serve_proto_errors_total")
	srvRotationsTotal  = obs.Default.Counter("serve_model_rotations_total")
	srvModelGen        = obs.Default.Gauge("serve_model_generation")
)

// Config tunes the server. Like the fleet engine's Config, nothing here
// changes results — only scheduling, batching, and protection limits.
type Config struct {
	// Plan is the warmed plan to serve (required; Warm must have run).
	Plan *Plan
	// MaxBatch caps decision requests per inference flush. Default: 256.
	MaxBatch int
	// QueueDepth bounds the decision queue; a full queue blocks connection
	// handlers (backpressure propagates to the client via TCP). Default:
	// 1024.
	QueueDepth int
	// ReadTimeout evicts a connection idle longer than this between
	// frames; WriteTimeout bounds each reply write. Defaults: 120s, 30s.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight requests
	// before force-closing connections. Default: 10s.
	DrainTimeout time.Duration
	// Logf, if set, receives lifecycle lines. Default: silent.
	Logf func(format string, args ...any)
}

// Server hosts one plan behind real sockets. One TCP connection is one
// session: its ABR algorithm lives server-side for the connection's
// lifetime and is destroyed with it, so a session is structurally bound to
// the single model generation it was created under.
type Server struct {
	cfg  Config
	plan *Plan

	ln    net.Listener
	queue chan *pending

	mu      sync.Mutex // guards conns and the (slot, modelID) pair
	conns   map[net.Conn]struct{}
	modelID uint32

	connWG      sync.WaitGroup
	batcherDone chan struct{}
	draining    atomic.Bool
	closed      atomic.Bool

	// Deterministic aggregates for the drain summary.
	sessions  atomic.Uint64
	completed atomic.Uint64
	decisions atomic.Uint64
	active    atomic.Int64
}

// session is one connection's server-side state. All algorithm calls
// happen on the batcher goroutine; the connection handler only decodes
// requests and writes replies, synchronized through the reply channel.
type session struct {
	id       int
	scheme   string
	alg      abr.Algorithm
	deferred abr.DeferredAlgorithm
	dp       *core.DeferredPredictor
	modelID  uint32

	obs       abr.Observation
	lastNow   float64
	started   bool
	decisions uint64
	reply     chan int
}

// pending is one decision request in flight between a connection handler
// and the batcher.
type pending struct {
	sess   *session
	now    float64
	enq    int64 // obs.Now at enqueue
	prepNS int64

	// Trace state for a sampled decision (trace 0 = untraced). span is the
	// server_request span id; parent is the client's root span id carried on
	// the wire; res0 stamps the start of batch residency.
	trace  uint64
	span   uint64
	parent uint64
	res0   int64
}

// NewServer builds a server around a warmed plan.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Plan == nil || cfg.Plan.Schemes == nil {
		return nil, fmt.Errorf("serve: Config.Plan must be a warmed plan")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 120 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:         cfg,
		plan:        cfg.Plan,
		queue:       make(chan *pending, cfg.QueueDepth),
		conns:       make(map[net.Conn]struct{}),
		batcherDone: make(chan struct{}),
		modelID:     1,
	}
	srvModelGen.Set(1)
	go s.batcher()
	return s, nil
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Rotate atomically publishes a fresh clone of the served model and bumps
// the model generation. In-flight sessions keep the algorithm (and model)
// they were created with; only sessions opened after Rotate see the new
// generation — the paper's nightly rotation contract. Cloning preserves
// weights bit for bit, so rotation never changes results; it exists so the
// soak harness can prove the "no session served by two models" invariant
// under churn. No-op before a model exists (day 0).
func (s *Server) Rotate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.plan.Slot.Load()
	if cur == nil {
		return
	}
	s.plan.Slot.Store(cur.Clone())
	s.modelID++
	srvRotationsTotal.Inc()
	srvModelGen.Set(float64(s.modelID))
	s.cfg.Logf("serve: rotated model (generation %d)", s.modelID)
}

// Shutdown drains and stops the server: stop accepting, kick parked
// readers so handlers finish their in-flight request and exit, then stop
// the batcher. Safe to call more than once.
func (s *Server) Shutdown() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Wake handlers parked between frames; in-flight decisions still
		// complete (the deadline only fails the *next* read).
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cfg.Logf("serve: drain timeout after %s; force-closing connections", s.cfg.DrainTimeout)
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	close(s.queue)
	<-s.batcherDone
	s.cfg.Logf("serve: drained (%d sessions, %d completed, %d decisions)",
		s.sessions.Load(), s.completed.Load(), s.decisions.Load())
}

// Summary reports the server's deterministic aggregates.
func (s *Server) Summary() (sessions, completed, decisions uint64) {
	return s.sessions.Load(), s.completed.Load(), s.decisions.Load()
}

// handle runs one connection: handshake, then a decide loop until Bye,
// error, or drain.
func (s *Server) handle(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 4<<10)
	var buf, out []byte

	fail := func(msg string) {
		srvProtoErrors.Inc()
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		writeFrame(bw, msgError, appendStr(out[:0], msg))
		bw.Flush()
	}

	// Handshake.
	c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	typ, payload, buf, err := readFrame(br, buf)
	if err != nil {
		return
	}
	if typ != msgHello {
		fail("expected Hello")
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		fail(fmt.Sprintf("bad Hello: %v", err))
		return
	}
	if h.Version < ProtoMinVersion || h.Version > ProtoVersion {
		fail(fmt.Sprintf("protocol version %d, server speaks %d-%d", h.Version, ProtoMinVersion, ProtoVersion))
		return
	}
	if h.PlanHash != s.plan.Hash {
		fail(fmt.Sprintf("plan mismatch: client %s, server %s", h.PlanHash, s.plan.Hash))
		return
	}
	scheme, ok := s.plan.Scheme(h.Scheme)
	if !ok {
		fail(fmt.Sprintf("unknown scheme %q for day %d", h.Scheme, h.Day))
		return
	}

	// Bind the session to the current model generation: the factory reads
	// the slot and the generation is recorded under the same lock Rotate
	// takes, so the pair can never tear.
	sess := &session{id: h.Session, scheme: h.Scheme, reply: make(chan int, 1)}
	s.mu.Lock()
	sess.alg = scheme.New()
	sess.modelID = s.modelID
	s.mu.Unlock()
	if d, ok := sess.alg.(abr.DeferredAlgorithm); ok {
		sess.deferred = d
		sess.dp = fleet.Deferify(sess.alg)
	}
	s.sessions.Add(1)
	srvSessionsTotal.Inc()
	srvSessionsActive.Set(float64(s.active.Add(1)))
	defer func() { srvSessionsActive.Set(float64(s.active.Add(-1))) }()

	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := writeFrame(bw, msgHelloOK, appendU32(out[:0], sess.modelID)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Decide loop.
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		typ, payload, buf, err = readFrame(br, buf)
		if err != nil {
			if !s.draining.Load() {
				srvAbortedTotal.Inc()
			}
			return
		}
		switch typ {
		case msgDecide:
			now, traceID, parentSpan, err := decodeDecide(payload, &sess.obs)
			if err != nil {
				fail(fmt.Sprintf("bad Decide: %v", err))
				srvAbortedTotal.Inc()
				return
			}
			p := &pending{sess: sess, now: now, enq: obs.Now()}
			tr := obs.Tracing()
			if tr != nil && traceID != 0 {
				p.trace = traceID
				p.span = tr.NewSpanID()
				p.parent = parentSpan
			}
			select {
			case s.queue <- p:
			default:
				srvQueueFull.Inc()
				s.queue <- p
			}
			q := <-sess.reply
			s.decisions.Add(1)
			out = appendU32(appendI32(out[:0], q), sess.modelID)
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			var w0 int64
			if p.trace != 0 {
				w0 = obs.Now()
			}
			if err := writeFrame(bw, msgDecideOK, out); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			if p.trace != 0 && tr != nil {
				tr.Record(obs.Span{Trace: p.trace, ID: tr.NewSpanID(), Parent: p.span,
					Name: "reply", Start: w0, Dur: obs.SinceNS(w0)})
				tr.Record(obs.Span{Trace: p.trace, ID: p.span, Parent: p.parent,
					Name: "server_request", Start: p.enq, Dur: obs.SinceNS(p.enq),
					Attrs: []obs.Attr{
						{Key: "session", Val: int64(sess.id)},
						{Key: "chunk", Val: int64(sess.obs.ChunkIndex)},
						{Key: "quality", Val: int64(q)},
					}})
			}
		case msgBye:
			s.completed.Add(1)
			srvCompletedTotal.Inc()
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			writeFrame(bw, msgByeOK, appendU64(out[:0], sess.decisions))
			bw.Flush()
			return
		default:
			fail(fmt.Sprintf("unexpected message type 0x%02x", typ))
			srvAbortedTotal.Inc()
			return
		}
	}
}

// batcher is the server's single decision thread: it drains the queue in
// greedy batches, stages every deferrable prediction into the shared
// InferenceService, runs one batched flush per model, and completes each
// decision — the wall-clock mirror of the fleet engine's tick loop. Owning
// every algorithm and the service on one goroutine is what makes the
// not-concurrency-safe InferenceService safe here.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	svc := fleet.NewInferenceService()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for p := range s.queue {
		batch = append(batch[:0], p)
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p2, ok := <-s.queue:
				if !ok {
					break
				}
				batch = append(batch, p2)
				continue
			default:
			}
			break
		}

		tr := obs.Tracing()

		// Stage phase: per-stream reset, PrepareChoose, enqueue rows.
		for _, p := range batch {
			sess := p.sess
			if sess.started && p.now < sess.lastNow {
				srvClockViolations.Inc()
			}
			sess.started = true
			sess.lastNow = p.now
			t0 := obs.Now()
			if sess.obs.ChunkIndex == 0 {
				// Stream start: runStream resets per-stream algorithm
				// state before its first decision; resets are idempotent
				// and never touch exploration RNGs, so this reproduces
				// the inline path exactly.
				sess.alg.Reset()
			}
			if sess.deferred != nil {
				sess.deferred.PrepareChoose(&sess.obs)
				if sess.dp != nil {
					svc.Enqueue(sess.dp.Pending())
				}
			}
			p.prepNS = obs.SinceNS(t0)
			if tr != nil && p.trace != 0 {
				tr.Record(obs.Span{Trace: p.trace, ID: tr.NewSpanID(), Parent: p.span,
					Name: "queue_wait", Start: p.enq, Dur: t0 - p.enq})
				tr.Record(obs.Span{Trace: p.trace, ID: tr.NewSpanID(), Parent: p.span,
					Name: "prepare", Start: t0, Dur: p.prepNS})
				p.res0 = t0 + p.prepNS
			}
		}

		// One batched forward pass per distinct model. The flush-trace
		// context attributes the shared flush (and its kernel spans) to the
		// batch's first traced decision.
		if tr != nil {
			for _, p := range batch {
				if p.trace != 0 {
					obs.SetFlushTrace(p.trace, p.span)
					break
				}
			}
		}
		svc.Flush()
		if tr != nil {
			obs.ClearFlushTrace()
		}
		srvBatchSessions.Observe(int64(len(batch)))

		// Finish phase: complete every decision and reply.
		for _, p := range batch {
			sess := p.sess
			t1 := obs.Now()
			var q int
			if sess.deferred != nil {
				q = sess.deferred.FinishChoose(&sess.obs)
			} else {
				q = sess.alg.Choose(&sess.obs)
			}
			if sess.dp != nil {
				sess.dp.Clear()
			}
			if t1 != 0 {
				srvDecisionNS.Observe(p.prepNS + obs.SinceNS(t1))
				srvRequestNS.Observe(obs.SinceNS(p.enq))
			}
			if tr != nil && p.trace != 0 {
				tr.Record(obs.Span{Trace: p.trace, ID: tr.NewSpanID(), Parent: p.span,
					Name: "batch_residency", Start: p.res0, Dur: t1 - p.res0,
					Attrs: []obs.Attr{{Key: "batch", Val: int64(len(batch))}}})
				tr.Record(obs.Span{Trace: p.trace, ID: tr.NewSpanID(), Parent: p.span,
					Name: "finish", Start: t1, Dur: obs.SinceNS(t1)})
			}
			sess.decisions++
			srvDecisionsTotal.Inc()
			sess.reply <- q
		}
	}
}
