package fleet

import (
	"fmt"
	"math/rand"
	"sort"
)

// ArrivalProcess draws the virtual-time instants at which a trial's
// sessions arrive. Arrival times shift when each session's global timeline
// starts, but never change what happens inside a session, so aggregate
// statistics are invariant to the choice of process.
type ArrivalProcess interface {
	// Name identifies the process (checkpoint manifests and logs).
	Name() string
	// Times returns n arrival times in nondecreasing order drawn from
	// rng, starting at virtual time 0.
	Times(rng *rand.Rand, n int) []float64
}

// PoissonArrivals models the platform's natural workload: sessions arrive
// as a Poisson process, so inter-arrival gaps are exponential with mean
// 1/Rate.
type PoissonArrivals struct {
	// Rate is the arrival intensity in sessions per virtual second. A
	// non-positive rate degenerates to all sessions arriving at time 0.
	Rate float64
}

// Name implements ArrivalProcess.
func (p PoissonArrivals) Name() string { return fmt.Sprintf("poisson(%g)", p.Rate) }

// Times implements ArrivalProcess.
func (p PoissonArrivals) Times(rng *rand.Rand, n int) []float64 {
	times := make([]float64, n)
	if p.Rate <= 0 {
		return times
	}
	t := 0.0
	for i := range times {
		t += rng.ExpFloat64() / p.Rate
		times[i] = t
	}
	return times
}

// BurstArrivals models a flash crowd: sessions arrive in evenly spaced
// bursts of Burst sessions each (a stress shape for the inference service's
// batching).
type BurstArrivals struct {
	// Burst is the sessions per burst (<= 0 means one burst of everything).
	Burst int
	// Gap is the virtual seconds between bursts.
	Gap float64
}

// Name implements ArrivalProcess.
func (b BurstArrivals) Name() string { return fmt.Sprintf("burst(%d,%g)", b.Burst, b.Gap) }

// Times implements ArrivalProcess.
func (b BurstArrivals) Times(rng *rand.Rand, n int) []float64 {
	times := make([]float64, n)
	if b.Burst <= 0 {
		return times
	}
	for i := range times {
		times[i] = float64(i/b.Burst) * b.Gap
	}
	return times
}

// arrivalSalt decorrelates the arrival RNG from every session RNG (which
// mix the trial seed with small session ids) and the runner's day salts.
const arrivalSalt = 0x41_52_52_49_56_45 // "ARRIVE"

// ArrivalTimes draws the arrival schedule the engine would use for a trial
// with this seed — exposed so tests (and capacity planning) can reproduce
// the arrival process without running sessions. The result is sorted and
// deterministic per (process, seed, n).
func ArrivalTimes(proc ArrivalProcess, seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(mix(seed, arrivalSalt)))
	times := proc.Times(rng, n)
	sort.Float64s(times)
	return times
}

// mix hashes (seed, id) into an independent RNG seed with the splitmix64
// finalizer, mirroring the experiment package.
func mix(seed, id int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
