package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// TestCanonicalFixedPoint: marshal → unmarshal → hash is a fixed point for
// every registered scenario and for a spec exercising every pointer field.
func TestCanonicalFixedPoint(t *testing.T) {
	specs := map[string]Spec{}
	for _, name := range Names() {
		s, _ := Lookup(name)
		specs[name] = s
	}
	specs["hand-built"] = New(
		World("emulation"), PathFamily("fcc"), Days(7), Sessions(40), Window(0),
		Retrain(false), Ablation(false), Seed(0), Shard(16), Hidden(), Horizon(2),
		Epochs(3), BatchSize(32), LR(2e-3), RecencyBase(0),
		Drift("shift"), Mix("cs2p", 1, 0), Engine("fleet"), Bursts(10, 5), Tick(0.5),
	)

	for name, s := range specs {
		t.Run(name, func(t *testing.T) {
			blob := s.CanonicalJSON()
			re, err := Parse(blob)
			if err != nil {
				t.Fatalf("canonical JSON does not re-parse: %v", err)
			}
			if !bytes.Equal(re.CanonicalJSON(), blob) {
				t.Fatalf("canonical JSON is not a fixed point:\n%s\nvs\n%s", blob, re.CanonicalJSON())
			}
			if re.Hash() != s.Hash() {
				t.Fatal("round trip changed the content hash")
			}
			if re.GuardHash() != s.GuardHash() {
				t.Fatal("round trip changed the guard hash")
			}
			d := s.WithDefaults()
			if !bytes.Equal(d.WithDefaults().CanonicalJSON(), d.CanonicalJSON()) {
				t.Fatal("WithDefaults is not idempotent")
			}
		})
	}
}

// TestHashStableAcrossFieldOrder: the same spec authored with JSON fields
// in scrambled order (and defaults spelled out vs omitted) hashes
// identically.
func TestHashStableAcrossFieldOrder(t *testing.T) {
	a := []byte(`{
		"daily": {"sessions": 200, "days": 4},
		"drift": {"slow_share_cap": 0, "preset": "shift"},
		"seed": 9
	}`)
	b := []byte(`{
		"seed": 9,
		"drift": {"preset": "shift", "slow_share_cap": 0},
		"engine": {"kind": "session", "tick": 0.25, "arrival": {"rate": 1, "process": "poisson"}},
		"daily": {"days": 4, "sessions": 200, "window": 14, "retrain": true}
	}`)
	sa, err := Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Hash() != sb.Hash() {
		t.Fatalf("field order / spelled-out defaults changed the hash:\n%s\nvs\n%s", sa.CanonicalJSON(), sb.CanonicalJSON())
	}
	if sa.GuardHash() != sb.GuardHash() {
		t.Fatal("field order changed the guard hash")
	}
}

// TestParseRejectsUnknownFieldsAndTrailingData: typos must not silently run
// a different experiment.
func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"daily": {"sesions": 100}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"daily": {"days": 2}, "drifts": {}}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	if _, err := Parse([]byte(`{"daily": {"days": 2}} {"x": 1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestValidateRejectsOutOfRange: every class of invalid value gets an
// actionable error naming the JSON field.
func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		mutate func(*Spec)
		want   string
	}{
		{func(s *Spec) { s.Env.World = "mars" }, "env.world"},
		{func(s *Spec) { s.Env.Paths = "dialup" }, "env.paths"},
		{func(s *Spec) { s.Daily.Days = -1 }, "daily.days"},
		{func(s *Spec) { s.Daily.Sessions = -5 }, "daily.sessions"},
		{func(s *Spec) { s.Daily.Window = ptr(-1) }, "daily.window"},
		{func(s *Spec) { s.Model.Hidden = []int{64, 0} }, "model.hidden"},
		{func(s *Spec) { s.Model.Horizon = -2 }, "model.horizon"},
		{func(s *Spec) { s.Train.Epochs = -1 }, "train.epochs"},
		{func(s *Spec) { s.Train.LR = -0.1 }, "train.lr"},
		{func(s *Spec) { s.Train.RecencyBase = ptr(1.5) }, "train.recency_base"},
		{func(s *Spec) { s.Drift.Preset = "earthquake" }, "drift.preset"},
		{func(s *Spec) { s.Drift.SlowSharePerDay = ptr(1.2) }, "drift.slow_share_per_day"},
		{func(s *Spec) { s.Drift.OutagesPerHour = ptr(-3.0) }, "drift.outages_per_hour"},
		{func(s *Spec) { s.Drift.Mix = ptr("starlink") }, "drift.mix"},
		{func(s *Spec) { s.Engine.Kind = "warp" }, "engine.kind"},
		{func(s *Spec) { s.Engine.Arrival.Process = "tsunami" }, "engine.arrival.process"},
		{func(s *Spec) { s.Engine.Arrival.Rate = -1 }, "engine.arrival.rate"},
		{func(s *Spec) { s.Engine.Kind = "fleet"; s.Engine.Arrival.Process = "burst" }, "engine.arrival.burst"},
		{func(s *Spec) { s.Engine.Tick = -0.25 }, "engine.tick"},
		{func(s *Spec) { s.Engine.DistWorkers = -2 }, "engine.dist_workers"},
		{func(s *Spec) { s.ShardSize = -64 }, "shard_size"},
	}
	for _, c := range cases {
		s := New()
		c.mutate(&s)
		d := s.WithDefaults()
		// Re-apply: WithDefaults only fills zero values, so negative and
		// invalid settings survive into validation.
		c.mutate(&d)
		err := d.Validate()
		if err == nil {
			t.Fatalf("invalid spec (%s) accepted", c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("error %q does not name the offending field %q", err, c.want)
		}
	}
	if _, err := Compile(New(Days(-1))); err == nil {
		t.Fatal("Compile must validate")
	}
}

// TestZeroVsUnsetSemantics: pointers distinguish explicit zeros from
// absent fields — the window, drift-override, and hidden-layer cases that
// motivated them.
func TestZeroVsUnsetSemantics(t *testing.T) {
	// window: 0 means "all days", absent means 14.
	cfg, err := Compile(New(Window(0)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WindowDays != 0 || cfg.Train.WindowDays != 0 {
		t.Fatalf("explicit window 0 compiled to %d/%d", cfg.WindowDays, cfg.Train.WindowDays)
	}
	cfg, err = Compile(New())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WindowDays != DefaultWindow {
		t.Fatalf("absent window compiled to %d, want %d", cfg.WindowDays, DefaultWindow)
	}

	// drift: an explicit zero clears a preset knob; absent keeps it.
	withCap, err := Parse([]byte(`{"drift": {"preset": "shift"}}`))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := withCap.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.SlowShareCap != 0.9 {
		t.Fatalf("preset slow-share cap = %v, want 0.9", sched.SlowShareCap)
	}
	noCap, err := Parse([]byte(`{"drift": {"preset": "shift", "slow_share_cap": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	sched, err = noCap.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.SlowShareCap != 0 {
		t.Fatalf("explicit zero cap = %v, want 0", sched.SlowShareCap)
	}
	if withCap.GuardHash() == noCap.GuardHash() {
		t.Fatal("explicit-zero override did not change the guard hash")
	}

	// a mix the preset did not have takes the documented ramp defaults.
	mixed, err := Parse([]byte(`{"drift": {"mix": "congested"}}`))
	if err != nil {
		t.Fatal(err)
	}
	sched, err = mixed.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.MixWith == nil || sched.MixStartDay != defaultMixStartDay || sched.MixRampDays != defaultMixRampDays {
		t.Fatalf("introduced mix got start/ramp %d/%d, want %d/%d",
			sched.MixStartDay, sched.MixRampDays, defaultMixStartDay, defaultMixRampDays)
	}
	// mix "none" clears a preset's mix.
	cleared, err := Parse([]byte(`{"drift": {"preset": "mix", "mix": "none"}}`))
	if err != nil {
		t.Fatal(err)
	}
	sched, err = cleared.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.MixWith != nil {
		t.Fatal("mix \"none\" did not clear the preset mix")
	}

	// hidden: null is the default architecture, [] the linear ablation.
	linear, err := Parse([]byte(`{"model": {"hidden": []}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = Compile(linear)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hidden == nil || len(cfg.Hidden) != 0 {
		t.Fatalf("explicit empty hidden compiled to %v, want a non-nil empty slice", cfg.Hidden)
	}
	deflt, err := Parse([]byte(`{"model": {"hidden": null}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = Compile(deflt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Hidden) != 2 || cfg.Hidden[0] != 64 || cfg.Hidden[1] != 64 {
		t.Fatalf("null hidden compiled to %v, want [64 64]", cfg.Hidden)
	}

	// seed: an explicit 0 is a valid seed, absent means 1.
	cfg, err = Compile(New(Seed(0)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 0 {
		t.Fatalf("explicit seed 0 compiled to %d", cfg.Seed)
	}
}

// TestLookupReturnsDeepCopies: mutating a looked-up spec (including
// through its pointer fields) must never alter the registry.
func TestLookupReturnsDeepCopies(t *testing.T) {
	before, ok := Lookup("nightly-drift")
	if !ok {
		t.Fatal("nightly-drift not registered")
	}
	mutated, _ := Lookup("nightly-drift")
	*mutated.Daily.Window = 3
	mutated.Daily.Days = 1
	mutated.Model.Hidden = append(mutated.Model.Hidden, 8)

	after, _ := Lookup("nightly-drift")
	if !bytes.Equal(after.CanonicalJSON(), before.CanonicalJSON()) {
		t.Fatalf("mutating a Lookup result changed the registry:\n%s\nvs\n%s",
			after.CanonicalJSON(), before.CanonicalJSON())
	}
	if after.GuardHash() != before.GuardHash() {
		t.Fatal("mutating a Lookup result changed the registered guard hash")
	}
}

// TestGuardHashScope: result-shaping fields move the guard hash; days,
// engine, ablation, workers-side options, and documentation do not.
func TestGuardHashScope(t *testing.T) {
	base := New(Days(4), Drift("shift"))
	guard := base.GuardHash()

	same := []Spec{
		New(Days(9), Drift("shift")),
		New(Days(4), Drift("shift"), Ablation(false)),
		New(Days(4), Drift("shift"), Engine("fleet"), ArrivalRate(7), Tick(0.05)),
		New(Days(4), Drift("shift"), Named("x", "y")),
	}
	for i, s := range same {
		if s.GuardHash() != guard {
			t.Fatalf("resume-safe change %d moved the guard hash", i)
		}
		// The full content hash still sees those fields (Name/Notes
		// excepted): same experiment identity for the guard, different
		// spec identity overall.
		if i < 3 && s.Hash() == base.Hash() {
			t.Fatalf("resume-safe change %d should still move the full content hash", i)
		}
		if i == 3 && s.Hash() != base.Hash() {
			t.Fatal("Name/Notes must not move the full content hash")
		}
	}

	// The dist engine block is scheduling, not science: selecting it (at
	// any worker count) moves the full content hash but never the guard, so
	// a session-engine checkpoint resumes under dist and vice versa.
	dist := New(Days(4), Drift("shift"), DistWorkers(4))
	if dist.GuardHash() != guard {
		t.Fatal("dist engine selection moved the guard hash")
	}
	if dist.Hash() == base.Hash() {
		t.Fatal("dist engine selection should still move the full content hash")
	}
	if other := New(Days(4), Drift("shift"), DistWorkers(16)); other.GuardHash() != guard {
		t.Fatal("dist worker count moved the guard hash")
	}

	different := []Spec{
		New(Days(4), Drift("decay")),
		New(Days(4), Drift("shift"), Sessions(40)),
		New(Days(4), Drift("shift"), Seed(2)),
		New(Days(4), Drift("shift"), Window(0)),
		New(Days(4), Drift("shift"), Retrain(false)),
		New(Days(4), Drift("shift"), Epochs(2)),
		New(Days(4), Drift("shift"), Hidden(8)),
		New(Days(4), Drift("shift"), World("emulation")),
	}
	for i, s := range different {
		if s.GuardHash() == guard {
			t.Fatalf("result-shaping change %d did not move the guard hash", i)
		}
	}
}
