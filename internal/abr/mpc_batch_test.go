package abr

import (
	"math/rand"
	"testing"

	"puffer/internal/media"
)

// scalarOnly hides a predictor's batch interface so the MPC falls back to
// the per-call fill path.
type scalarOnly struct{ p Predictor }

func (s scalarOnly) PredictDist(obs *Observation, step int, size float64, dist []float64) {
	s.p.PredictDist(obs, step, size, dist)
}

// randomObs builds a randomized but well-formed observation: jittered ladder
// sizes and SSIMs, a noisy throughput history, and a random buffer level.
func randomObs(rng *rand.Rand) *Observation {
	nQ := 2 + rng.Intn(10)
	horizon := make([]media.Chunk, 1+rng.Intn(5))
	for i := range horizon {
		vs := make([]media.Encoding, nQ)
		for q := range vs {
			base := float64(q+1) * (1e5 + rng.Float64()*3e5)
			vs[q] = media.Encoding{
				Size:   base * (0.7 + 0.6*rng.Float64()),
				SSIMdB: 9 + float64(q) + 2*rng.Float64(),
			}
		}
		horizon[i] = media.Chunk{Index: i, Versions: vs}
	}
	nHist := rng.Intn(HistoryLen + 1)
	hist := make([]ChunkRecord, nHist)
	tput := 0.3e6 + rng.Float64()*30e6
	for i := range hist {
		size := 2e5 + rng.Float64()*2e6
		factor := 0.5 + rng.Float64()
		hist[i] = ChunkRecord{
			Size:      size,
			TransTime: size * 8 / (tput * factor),
			SSIMdB:    10 + 5*rng.Float64(),
			Quality:   rng.Intn(nQ),
		}
	}
	lastQ := -1
	lastSSIM := 0.0
	if nHist > 0 {
		lastQ = hist[nHist-1].Quality
		lastSSIM = hist[nHist-1].SSIMdB
	}
	return &Observation{
		ChunkIndex:  nHist,
		Buffer:      rng.Float64() * 15,
		BufferCap:   15,
		LastQuality: lastQ,
		LastSSIM:    lastSSIM,
		History:     hist,
		Horizon:     horizon,
	}
}

// TestChooseMatchesReference is the batching property test: across many
// seeded observations, the production planner (batched fill + factored value
// iteration) must pick the identical rung to the reference implementation
// (scalar fill + memoized recursion).
func TestChooseMatchesReference(t *testing.T) {
	preds := map[string]func() Predictor{
		"hm":     func() Predictor { return &HarmonicMeanPredictor{} },
		"robust": func() Predictor { return &HarmonicMeanPredictor{Robust: true} },
	}
	for name, mk := range preds {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			fast := NewMPC("fast", mk(), DefaultQoEWeights())
			ref := NewMPC("ref", mk(), DefaultQoEWeights())
			for trial := 0; trial < 200; trial++ {
				obs := randomObs(rng)
				got := fast.Choose(obs)
				want := ref.ChooseReference(obs)
				if got != want {
					t.Fatalf("trial %d: Choose = %d, ChooseReference = %d (obs %+v)",
						trial, got, want, obs)
				}
			}
		})
	}
}

// TestScalarFallbackMatchesBatch checks that a predictor without the batch
// interface takes the per-call fill path and still decides identically.
func TestScalarFallbackMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	batched := NewMPC("b", &HarmonicMeanPredictor{}, DefaultQoEWeights())
	fallback := NewMPC("s", scalarOnly{&HarmonicMeanPredictor{}}, DefaultQoEWeights())
	if _, ok := fallback.Pred.(BatchPredictor); ok {
		t.Fatal("scalarOnly must not implement BatchPredictor")
	}
	for trial := 0; trial < 100; trial++ {
		obs := randomObs(rng)
		if got, want := fallback.Choose(obs), batched.Choose(obs); got != want {
			t.Fatalf("trial %d: scalar-fill Choose = %d, batched Choose = %d", trial, got, want)
		}
	}
}

func TestHMPredictDistBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		obs := randomObs(rng)
		nQ := len(obs.Horizon[0].Versions)
		sizes := make([]float64, nQ)
		for q := range sizes {
			sizes[q] = obs.Horizon[0].Versions[q].Size
		}
		batch := &HarmonicMeanPredictor{Robust: true}
		scalar := &HarmonicMeanPredictor{Robust: true}
		got := make([]float64, nQ*NumBins)
		batch.PredictDistBatch(obs, 0, sizes, got)
		want := make([]float64, NumBins)
		for q := 0; q < nQ; q++ {
			scalar.PredictDist(obs, 0, sizes[q], want)
			for k := range want {
				if got[q*NumBins+k] != want[k] {
					t.Fatalf("trial %d q=%d bin %d: batch %v != scalar %v",
						trial, q, k, got[q*NumBins+k], want[k])
				}
			}
		}
	}
}

func TestChooseZeroAllocSteadyState(t *testing.T) {
	m := NewMPCHM()
	obs := obsWith(7, histAtThroughput(8, 5e6), testChunks(5, 2.5e5))
	m.Choose(obs) // warm the scratch
	allocs := testing.AllocsPerRun(50, func() {
		m.Choose(obs)
	})
	if allocs != 0 {
		t.Fatalf("Choose allocates %v times per run after warmup, want 0", allocs)
	}
}

func BenchmarkMPCDecisionHM(b *testing.B) {
	obs := obsWith(7, histAtThroughput(8, 5e6), testChunks(5, 2.5e5))
	b.Run("batched", func(b *testing.B) {
		m := NewMPCHM()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Choose(obs)
		}
	})
	b.Run("reference", func(b *testing.B) {
		m := NewMPCHM()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ChooseReference(obs)
		}
	})
}
