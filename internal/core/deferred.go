package core

import (
	"puffer/internal/abr"
	"puffer/internal/nn"
)

// PendingStep is one staged distribution fill: the assembled feature rows
// for one horizon step of one MPC decision, the net they must run through,
// and where the finished distributions belong. An external inference
// service executes the forward pass — typically concatenated with other
// sessions' pending steps for the same net — and then calls Finish with the
// softmaxed rows.
type PendingStep struct {
	// Net is the horizon net for this step (shared by every session that
	// serves the same model, which is what makes cross-session batching
	// worthwhile).
	Net *nn.MLP
	// Rows is the number of candidate sizes (ladder rungs) staged.
	Rows int
	// Feats is the Rows × feature-dim row-major matrix, assembled at
	// stage time exactly as the direct path would have.
	Feats []float64

	sizes []float64
	dists []float64
	pred  *Predictor
}

// Finish converts the service-computed softmax rows (Rows × abr.NumBins,
// exactly what nn's PredictDistBatch produces for Feats) into the final
// transmission-time distributions the planner consumes — the same
// throughput-kind conversion and point-estimate collapse as the direct
// path, bit for bit.
func (ps *PendingStep) Finish(probs []float64) {
	for r := 0; r < ps.Rows; r++ {
		ps.pred.finishDist(ps.dists[r*abr.NumBins:(r+1)*abr.NumBins],
			probs[r*abr.NumBins:(r+1)*abr.NumBins], ps.sizes[r])
	}
}

// DeferredPredictor wraps a Predictor so that batched distribution fills
// are staged instead of executed: each PredictDistBatch call assembles its
// feature matrix and records a PendingStep; an external service runs the
// forward passes (merged across sessions) and completes each step with
// Finish. Splitting the MPC's decision this way changes nothing about its
// outcome — features, softmax, and finishing are the exact operations of
// the direct path — it only moves the network execution to a point where
// many sessions' rows can share one batched pass per net.
//
// The scalar PredictDist stays synchronous (it serves the differential
// reference path, which never defers). Not safe for concurrent use; create
// one per session, like the Predictor it wraps.
type DeferredPredictor struct {
	P *Predictor

	steps []PendingStep
	n     int
}

// NewDeferredPredictor wraps p for staged execution.
func NewDeferredPredictor(p *Predictor) *DeferredPredictor {
	return &DeferredPredictor{P: p}
}

// PredictDist implements abr.Predictor synchronously via the wrapped
// predictor.
func (d *DeferredPredictor) PredictDist(obs *abr.Observation, step int, size float64, dist []float64) {
	d.P.PredictDist(obs, step, size, dist)
}

// PredictDistBatch implements abr.BatchPredictor by staging: the feature
// matrix is assembled now (identically to the direct path), and the forward
// pass plus finishing are deferred to the pending step's executor.
func (d *DeferredPredictor) PredictDistBatch(obs *abr.Observation, step int, sizes []float64, dists []float64) {
	b := len(sizes)
	if b == 0 {
		return
	}
	step = d.P.clampStep(step)
	dim := d.P.TTP.Cfg.Dim()
	if d.n == len(d.steps) {
		d.steps = append(d.steps, PendingStep{})
	}
	ps := &d.steps[d.n]
	d.n++
	ps.Net = d.P.TTP.Nets[step]
	ps.Rows = b
	ps.Feats = growFloats(ps.Feats, b*dim)
	ps.sizes = growFloats(ps.sizes, b)
	copy(ps.sizes, sizes)
	ps.dists = dists
	ps.pred = d.P
	d.P.TTP.Cfg.AssembleBatch(ps.Feats, obs.History, obs.TCP, sizes)
}

// Pending returns the steps staged since the last Clear, in stage order.
// The returned slice and its buffers are owned by the predictor and valid
// until the next Clear.
func (d *DeferredPredictor) Pending() []PendingStep { return d.steps[:d.n] }

// Clear forgets the staged steps (after the executor finished them),
// keeping their buffers for reuse.
func (d *DeferredPredictor) Clear() { d.n = 0 }
