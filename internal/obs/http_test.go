package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer boots an endpoint on a fresh registry and returns it with a
// base URL and a client.
func startServer(t *testing.T) (*Registry, *Server, string, *http.Client) {
	t.Helper()
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return reg, srv, "http://" + srv.Addr, &http.Client{Timeout: 10 * time.Second}
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp, string(body)
}

func TestHTTPMetricsEndpoints(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	reg, _, base, client := startServer(t)
	reg.Counter("reqs_total").Add(7)
	reg.Gauge("inflight").Set(3)
	reg.Histogram("lat_ns").Observe(1500)

	// /metrics: Prometheus text exposition.
	resp, body := get(t, client, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{"reqs_total 7", "inflight 3", "lat_ns_count 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /metrics.json and its /debug/vars alias: identical canonical JSON.
	resp, body = get(t, client, base+"/metrics.json")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json content type %q", ct)
	}
	var snap struct {
		Counters []CounterSnapshot `json:"counters"`
		Gauges   []GaugeSnapshot   `json:"gauges"`
		Hists    []HistSnapshot    `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "reqs_total" || snap.Counters[0].Value != 7 {
		t.Fatalf("/metrics.json counters: %+v", snap.Counters)
	}
	if len(snap.Hists) != 1 || snap.Hists[0].Count != 1 {
		t.Fatalf("/metrics.json histograms: %+v", snap.Hists)
	}
	_, alias := get(t, client, base+"/debug/vars")
	if alias != body {
		t.Fatal("/debug/vars is not byte-identical to /metrics.json")
	}

	// /metrics/history.json: valid JSON with the sampler cadence.
	resp, body = get(t, client, base+"/metrics/history.json")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics/history.json content type %q", ct)
	}
	var hist struct {
		IntervalS float64 `json:"interval_s"`
		Samples   int     `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatalf("/metrics/history.json is not valid JSON: %v", err)
	}
	if hist.IntervalS != DefaultHistoryInterval.Seconds() {
		t.Fatalf("history interval %v", hist.IntervalS)
	}

	// Root index lists the routes; unknown paths 404.
	_, body = get(t, client, base+"/")
	for _, want := range []string{"/metrics", "/metrics/history.json", "/trace.json", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
	if resp, _ := get(t, client, base+"/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %s", resp.Status)
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	_, _, base, client := startServer(t)

	// No tracer installed: 404 with a hint.
	SetTracer(nil)
	resp, body := get(t, client, base+"/trace.json")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace.json without tracer: %s", resp.Status)
	}
	if !strings.Contains(body, "no tracer") {
		t.Fatalf("/trace.json 404 body: %q", body)
	}

	tr := NewTracer(1, 64)
	SetTracer(tr)
	defer SetTracer(nil)
	tr.Record(Span{Trace: 9, ID: 1, Name: "wire_rtt", Start: 100, Dur: 50})
	resp, body = get(t, client, base+"/trace.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace.json: %s", resp.Status)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "wire_rtt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/trace.json missing recorded span:\n%s", body)
	}
}

func TestHTTPPprofRoutes(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	_, _, base, client := startServer(t)

	resp, body := get(t, client, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index body:\n%s", body)
	}
	resp, _ = get(t, client, base+"/debug/pprof/heap")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap: %s", resp.Status)
	}
	resp, _ = get(t, client, base+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %s", resp.Status)
	}
}

// TestHTTPConcurrentScrape hammers every read endpoint while metric writers
// and a span recorder stay hot — the -race proof that wall-side consumers
// never conflict with engine-side recording.
func TestHTTPConcurrentScrape(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	reg, _, base, client := startServer(t)
	tr := NewTracer(1, 256)
	SetTracer(tr)
	defer SetTracer(nil)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := reg.Counter("hot_total")
			g := reg.Gauge("hot_gauge")
			h := reg.Histogram("hot_ns")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(int64(i%1000) + 1)
				tr.Record(Span{Trace: uint64(w + 1), ID: tr.NewSpanID(),
					Name: "hot", Start: int64(i), Dur: 10})
			}
		}(w)
	}

	var readers sync.WaitGroup
	for _, path := range []string{"/metrics", "/metrics.json", "/metrics/history.json", "/trace.json", "/debug/vars"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				resp, err := client.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %s", path, resp.Status)
					return
				}
			}
		}(path)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if reg.Counter("hot_total").Value() == 0 {
		t.Fatal("writers never ran")
	}
}

// TestServerClose proves Close is idempotent-safe on nil and stops the
// history sampler.
func TestServerClose(t *testing.T) {
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The listener is gone after Close.
	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get(fmt.Sprintf("http://%s/metrics", srv.Addr)); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}
