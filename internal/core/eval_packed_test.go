package core

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/abr"
	"puffer/internal/nn"
)

// portableEval recomputes Evaluate through Predictor.PredictFeaturesBatch —
// the portable batched kernel — as the reference the packed sweep must
// match bitwise.
func portableEval(t *TTP, data *Dataset, step int) EvalResult {
	xs, labels, _ := data.Examples(t, step, TrainConfig{})
	if len(xs) == 0 {
		return EvalResult{}
	}
	pred := NewPredictor(t, ModeProbabilistic)
	dist := make([]float64, abr.NumBins)
	var ce float64
	var hit, near int
	for i, x := range xs {
		pred.PredictFeaturesBatch(step, x, 1, dist)
		p := dist[labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		ce += -math.Log(p)
		am := nn.ArgMax(dist)
		if am == labels[i] {
			hit++
		}
		if am >= labels[i]-1 && am <= labels[i]+1 {
			near++
		}
	}
	n := float64(len(xs))
	return EvalResult{CrossEntropy: ce / n, Accuracy: float64(hit) / n, Within1: float64(near) / n}
}

// portableEvalTransTime is the same reference for EvaluateTransTimeMode.
func portableEvalTransTime(t *TTP, data *Dataset, step int, mode Mode) EvalResult {
	xs, sizes, ttLabels := transTimeExamples(t, data, step)
	if len(xs) == 0 {
		return EvalResult{}
	}
	pred := NewPredictor(t, mode)
	raw := make([]float64, abr.NumBins)
	dist := make([]float64, abr.NumBins)
	var ce float64
	var hit, near int
	for i, x := range xs {
		pred.PredictFeaturesBatch(step, x, 1, raw)
		pred.finishDist(dist, raw, sizes[i])
		p := dist[ttLabels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		ce += -math.Log(p)
		am := nn.ArgMax(dist)
		if am == ttLabels[i] {
			hit++
		}
		if am >= ttLabels[i]-1 && am <= ttLabels[i]+1 {
			near++
		}
	}
	n := float64(len(xs))
	return EvalResult{CrossEntropy: ce / n, Accuracy: float64(hit) / n, Within1: float64(near) / n}
}

// TestEvaluatePackedMatchesPortable: the evaluation sweeps run on packed
// (SIMD) snapshots of the per-step nets; every metric must equal the
// portable-kernel reference bitwise, for both the trans-time and the
// throughput-kind TTP and for both prediction modes.
func TestEvaluatePackedMatchesPortable(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := synthDataset(rng, 12, 40, 0)

	for _, kind := range []Kind{KindTransTime, KindThroughput} {
		ttp := NewTTP(rand.New(rand.NewSource(52)), 2, []int{24}, DefaultFeatures(), kind)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 1
		if _, err := Train(ttp, data, cfg); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < ttp.Horizon(); step++ {
			got, want := Evaluate(ttp, data, step), portableEval(ttp, data, step)
			if got != want {
				t.Fatalf("kind %d step %d: Evaluate = %+v, portable reference = %+v (must be bitwise identical)", kind, step, got, want)
			}
			for _, mode := range []Mode{ModeProbabilistic, ModePointEstimate} {
				got := EvaluateTransTimeMode(ttp, data, step, mode)
				want := portableEvalTransTime(ttp, data, step, mode)
				if got != want {
					t.Fatalf("kind %d step %d mode %d: EvaluateTransTimeMode = %+v, portable reference = %+v", kind, step, mode, got, want)
				}
			}
		}
	}
}
