package tcpsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puffer/internal/netem"
)

func fixedPath(rateBps, rtt float64) netem.Path {
	return netem.Path{
		Trace:         netem.Constant(rateBps, 3600, 1),
		BaseRTT:       rtt,
		QueueCapacity: 0.5,
	}
}

func TestDialChargesHandshake(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Dial(fixedPath(10e6, 0.040), rng, 100)
	if c.Now() <= 100.07 || c.Now() > 100.10 {
		t.Fatalf("post-handshake time = %v, want ~100.08 (two RTTs)", c.Now())
	}
	info := c.Info()
	if info.MinRTT < 0.040 || info.MinRTT > 0.050 {
		t.Fatalf("MinRTT = %v, want near base 40 ms", info.MinRTT)
	}
	if info.CWND < 10 || info.CWND > 25 {
		t.Fatalf("initial CWND = %v packets, want a small initial window", info.CWND)
	}
}

func TestTransferApproachesCapacityForLargeChunks(t *testing.T) {
	// A large transfer on a steady link should achieve close to link rate.
	rng := rand.New(rand.NewSource(2))
	c := Dial(fixedPath(8e6, 0.040), rng, 0)
	warm := 4e6 / 8 // warm up past slow start
	c.Transfer(warm)
	size := 10e6 / 8 * 4.0 // 4 seconds worth at link rate
	elapsed := c.Transfer(size)
	rate := size * 8 / elapsed
	if rate < 0.80*8e6 || rate > 1.05*8e6 {
		t.Fatalf("achieved %v bps on an 8e6 link", rate)
	}
}

func TestSmallChunkBoundedByRTTNotThroughput(t *testing.T) {
	// The size nonlinearity that motivates transmission-time prediction:
	// a tiny chunk's time is dominated by latency, so naive
	// size/throughput extrapolation from it wildly underestimates a big
	// chunk's time.
	rng := rand.New(rand.NewSource(3))
	c := Dial(fixedPath(50e6, 0.100), rng, 0)
	tiny := 5 * MSS
	tTiny := c.Transfer(tiny)
	if tTiny < 0.05 {
		t.Fatalf("tiny chunk finished in %v s, should pay latency ~rtt/2", tTiny)
	}
	impliedTput := tiny * 8 / tTiny
	if impliedTput > 10e6 {
		t.Fatalf("implied throughput %v too close to capacity — latency floor missing", impliedTput)
	}
}

func TestSlowStartRamp(t *testing.T) {
	// Back-to-back equal chunks on a fat link: the first (cold cwnd) must
	// be slower than a later one (warmed up).
	rng := rand.New(rand.NewSource(4))
	c := Dial(fixedPath(40e6, 0.060), rng, 0)
	size := 1.5e6 // bytes
	t1 := c.Transfer(size)
	c.Transfer(size)
	t3 := c.Transfer(size)
	if t1 <= t3 {
		t.Fatalf("first transfer %v not slower than warmed-up transfer %v", t1, t3)
	}
}

func TestDeliveryRateTracksCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := netem.Constant(2e6, 3600, 1)
	path := netem.Path{Trace: tr, BaseRTT: 0.040, QueueCapacity: 0.5}
	c := Dial(path, rng, 0)
	c.Transfer(3e6 / 8 * 5) // five seconds at capacity
	info := c.Info()
	if info.DeliveryRate < 1.2e6 || info.DeliveryRate > 2.8e6 {
		t.Fatalf("DeliveryRate = %v, want near 2e6", info.DeliveryRate)
	}
}

func TestQueueInflatesRTTBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	path := fixedPath(1e6, 0.040)
	path.QueueCapacity = 1.0 // one second of bufferbloat max
	c := Dial(path, rng, 0)
	c.Transfer(2e6) // 16 seconds at capacity — plenty to fill the queue
	info := c.Info()
	if info.RTT <= 0.040 {
		t.Fatal("sustained overload should inflate smoothed RTT above base")
	}
	if info.RTT > 0.040+1.2 {
		t.Fatalf("RTT %v exceeds base+queue bound", info.RTT)
	}
	if info.MinRTT > 0.050 {
		t.Fatalf("MinRTT %v should stay near propagation delay", info.MinRTT)
	}
}

func TestWaitDrainsQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := Dial(fixedPath(1e6, 0.040), rng, 0)
	c.Transfer(1e6)
	before := c.Info().RTT
	c.Wait(10)
	c.Transfer(2 * MSS) // one fresh RTT sample after drain
	after := c.Info().RTT
	if after >= before && before > 0.05 {
		t.Fatalf("idle did not drain queue: rtt %v -> %v", before, after)
	}
	c.Wait(-5) // must be a no-op
}

func TestTransferUpToDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := Dial(fixedPath(0.1e6, 0.040), rng, 0) // 100 kbps: 1 MB takes ~80 s
	elapsed, completed := c.TransferUpTo(1e6, 5)
	if completed {
		t.Fatal("transfer should not complete within 5 s")
	}
	if elapsed < 4.9 || elapsed > 6 {
		t.Fatalf("elapsed = %v, want about the 5 s deadline", elapsed)
	}
	// Completing case.
	elapsed2, completed2 := c.TransferUpTo(1000, 60)
	if !completed2 {
		t.Fatalf("small transfer should complete, elapsed %v", elapsed2)
	}
}

func TestTransferZeroSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := Dial(fixedPath(1e6, 0.040), rng, 0)
	if got := c.Transfer(0); got != 0 {
		t.Fatalf("Transfer(0) = %v, want 0", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sampler := netem.PufferPaths{}
		path := sampler.Sample(rng, 300)
		c := Dial(path, rng, 0)
		prev := c.Now()
		for i := 0; i < 30; i++ {
			size := 1e4 + rng.Float64()*2e6
			elapsed := c.Transfer(size)
			if elapsed <= 0 || math.IsNaN(elapsed) || math.IsInf(elapsed, 0) {
				return false
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
			c.Wait(rng.Float64())
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInfoSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := (netem.PufferPaths{}).Sample(rng, 120)
		c := Dial(path, rng, 0)
		for i := 0; i < 10; i++ {
			c.Transfer(1e5 + rng.Float64()*1e6)
			info := c.Info()
			if info.CWND < 10 || math.IsNaN(info.CWND) {
				return false
			}
			if info.InFlight < 0 || info.InFlight > info.CWND+1e-9 {
				return false
			}
			if info.MinRTT <= 0 || info.RTT < info.MinRTT*0.8 {
				return false
			}
			if info.DeliveryRate <= 0 || math.IsInf(info.DeliveryRate, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityDropSlowsTransfers(t *testing.T) {
	// Step trace: 8 Mbps for 30 s then 0.5 Mbps. Transfers after the
	// drop must take far longer for the same size.
	rate := make([]float64, 120)
	for i := range rate {
		if i < 30 {
			rate[i] = 8e6
		} else {
			rate[i] = 0.5e6
		}
	}
	path := netem.Path{Trace: &netem.Trace{Interval: 1, Rate: rate}, BaseRTT: 0.040, QueueCapacity: 0.5}
	rng := rand.New(rand.NewSource(10))
	c := Dial(path, rng, 0)
	size := 0.5e6
	fast := c.Transfer(size)
	for c.Now() < 35 {
		c.Wait(1)
	}
	slow := c.Transfer(size)
	if slow < 3*fast {
		t.Fatalf("post-drop transfer %v not much slower than pre-drop %v", slow, fast)
	}
}

func TestColdStartInfoReflectsRTT(t *testing.T) {
	// Figure 9's mechanism: on a fresh connection, delivery-rate estimate
	// is IW/RTT, so low-RTT paths look faster before any data flows.
	rng1 := rand.New(rand.NewSource(11))
	rng2 := rand.New(rand.NewSource(11))
	fast := Dial(fixedPath(50e6, 0.010), rng1, 0)
	far := Dial(fixedPath(50e6, 0.200), rng2, 0)
	if fast.Info().DeliveryRate <= far.Info().DeliveryRate {
		t.Fatal("cold-start delivery rate should be higher on the low-RTT path")
	}
}

func TestDialPanicsOnInvalidTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid trace")
		}
	}()
	Dial(netem.Path{Trace: &netem.Trace{Interval: 0, Rate: nil}}, rand.New(rand.NewSource(1)), 0)
}

func BenchmarkTransferTwoSecondChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	path := (netem.PufferPaths{}).Sample(rng, 1e7)
	c := Dial(path, rng, 0)
	size := path.Trace.Mean() / 8 * 1.6 // ~80% utilization chunk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transfer(size)
	}
}
