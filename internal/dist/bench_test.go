package dist

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"puffer/internal/experiment"
)

// BenchmarkDistDay races one full day of the deploy-mixture trial through
// the in-process shard fold (the session engine's hot path) against the
// dist pool's worker processes, at equal parallelism. The gap is the
// protocol's whole overhead budget: process spawn (amortized across b.N —
// workers persist), model broadcast, blob serialization, and the
// coordinator's merge. sessions/sec is the headline; the per-op delta vs
// inprocess is what a dist deployment pays for process isolation.
func BenchmarkDistDay(b *testing.B) {
	sp := testSpec{Sessions: 24, ShardSize: 8, BaseSeed: 77}
	const workers = 2
	model := testModel()

	b.Run("inprocess/w2", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trial := testTrial(sp, 0, model)
			col := experiment.NewDatasetCollector()
			trial.Recorder = col
			done := make(chan *experiment.TrialAcc, workers)
			nShards := experiment.NumShards(sp.Sessions, sp.ShardSize)
			accs := make([]*experiment.TrialAcc, nShards)
			shards := make(chan int)
			for w := 0; w < workers; w++ {
				go func() {
					for s := range shards {
						lo, hi := experiment.ShardRange(sp.Sessions, sp.ShardSize, s)
						accs[s] = trial.FoldShard(lo, hi, experiment.AllPaths)
					}
					done <- nil
				}()
			}
			for s := 0; s < nShards; s++ {
				shards <- s
			}
			close(shards)
			for w := 0; w < workers; w++ {
				<-done
			}
			total := experiment.NewTrialAcc(experiment.AllPaths)
			for _, acc := range accs {
				total.Merge(acc)
			}
			col.Dataset()
		}
		b.ReportMetric(float64(sp.Sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
	})

	b.Run("dist/w2", func(b *testing.B) {
		spec, err := json.Marshal(sp)
		if err != nil {
			b.Fatal(err)
		}
		p, err := NewPool(PoolConfig{
			Workers:      workers,
			Command:      []string{os.Args[0]},
			Spec:         spec,
			ShardTimeout: time.Minute,
			ExtraEnv:     []string{"PUFFER_DIST_TEST_MODE=worker"},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.RunDay(0, model, sp.Sessions, sp.ShardSize); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sp.Sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
	})
}

// BenchmarkShardBlob isolates the transport cost the dist engine adds per
// shard: encoding one shard's accumulator + telemetry into the wire blob
// and decoding it back.
func BenchmarkShardBlob(b *testing.B) {
	sp := testSpec{Sessions: 8, ShardSize: 8, BaseSeed: 77}
	trial := testTrial(sp, 0, nil)
	col := experiment.NewDatasetCollector()
	trial.Recorder = col
	acc := trial.FoldShard(0, sp.Sessions, experiment.AllPaths)
	data := col.Dataset()
	blob, err := EncodeShard(acc, data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeShard(acc, data); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(blob)), "blob_bytes")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeShard(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}
