package figures

import (
	"encoding/json"
	"io"
	"time"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/fleet"
)

// FigFleetRow is one engine's row of the serving-engine comparison.
type FigFleetRow struct {
	Engine         string
	SessionsPerSec float64
	// PeakConcurrent/MeanConcurrent/MeanBatchRows describe the fleet
	// engine's multiplexing (zero for the per-session engine).
	PeakConcurrent int
	MeanConcurrent float64
	MeanBatchRows  float64
	// Identical reports whether this engine's pooled statistics matched
	// the per-session engine's byte for byte.
	Identical bool
}

// FigFleet races the two execution engines on the same deployed mixture
// (the trained Fugu against BBA): the per-session engine runs sessions to
// completion one at a time per worker, the fleet engine multiplexes them in
// virtual time and batches TTP inference across concurrent sessions through
// the packed-model service. The comparison shows the serving-side speedup
// and verifies the engines agree byte for byte — the property that lets the
// continual experiment switch engines without changing a single result.
func (s *Suite) FigFleet(w io.Writer) ([]FigFleetRow, error) {
	if s.fleet == nil {
		sessions := s.Scale / 4
		if sessions < 48 {
			sessions = 48
		}
		mkTrial := func() *experiment.Config {
			return &experiment.Config{
				Env: experiment.DefaultEnv(),
				Schemes: []experiment.Scheme{
					{Name: "Fugu", New: func() abr.Algorithm {
						return abr.NewExplorer(core.NewFugu(s.InSituTTP), 0.05, s.Seed+702)
					}},
					{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
				},
				Sessions: sessions,
				Seed:     s.Seed + 700,
			}
		}
		const shard = 64

		// Both engines run at one worker so the printed speedup isolates
		// the serving-side batching gain from multi-core parallelism.
		s.Logf("racing per-session vs fleet engine (%d sessions, 1 worker each)...", sessions)
		start := time.Now()
		seqTrial := mkTrial()
		seqAcc := experiment.FoldShards(seqTrial.Sessions, shard, experiment.AllPaths,
			func(id int) *experiment.SessionResult {
				sess := seqTrial.RunOne(id)
				return &sess
			})
		seqSecs := time.Since(start).Seconds()

		fleetAcc, st, err := fleet.RunTrial(mkTrial(), fleet.Config{
			ShardSize: shard,
			Workers:   1,
			Arrivals:  fleet.PoissonArrivals{Rate: float64(sessions) / 60},
		})
		if err != nil {
			return nil, err
		}

		seqStats, _ := json.Marshal(seqAcc.Analyze(s.Seed + 701))
		fleetStats, _ := json.Marshal(fleetAcc.Analyze(s.Seed + 701))
		identical := string(seqStats) == string(fleetStats)

		s.fleet = []FigFleetRow{
			{Engine: "per-session", SessionsPerSec: float64(sessions) / seqSecs, Identical: true},
			{Engine: "fleet", SessionsPerSec: st.SessionsPerSec(),
				PeakConcurrent: st.PeakConcurrent, MeanConcurrent: st.MeanConcurrent,
				MeanBatchRows: st.MeanBatchRows, Identical: identical},
		}
	}

	var werr error
	line(w, &werr, "Fleet: serving-engine comparison (same seed, byte-identical results required)\n")
	line(w, &werr, "%-12s %13s %9s %9s %11s %10s\n",
		"Engine", "Sessions/sec", "PeakConc", "MeanConc", "Batch rows", "Identical")
	for _, r := range s.fleet {
		line(w, &werr, "%-12s %13.1f %9d %9.1f %11.1f %10t\n",
			r.Engine, r.SessionsPerSec, r.PeakConcurrent, r.MeanConcurrent, r.MeanBatchRows, r.Identical)
	}
	line(w, &werr, "Fleet sessions/sec includes cross-session batched TTP inference over the\npacked (SIMD) model snapshots; identical=true certifies the engines agree.\n")
	return s.fleet, werr
}
