package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"

	"puffer/internal/obs"
)

// TestDecisionTraceAttribution is the acceptance proof for decision-level
// tracing: serve a day over loopback with every session sampled, pick the
// worst observed wire RTT (this run's tail outlier), and show that its one
// trace accounts for the latency — the client and server halves joined by
// the wire-carried trace id, the disjoint server-side stage spans summing
// to no more than the request span, everything nested inside the client's
// wire_rtt window, and the whole thing exportable as Chrome trace JSON.
func TestDecisionTraceAttribution(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	tr := obs.NewTracer(1, 0)
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	plan := warmedPlan(t, 1)
	srv, err := NewServer(Config{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	res, err := RunLoad(LoadConfig{Addr: ln.Addr().String(), Plan: plan, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d sessions failed", res.Failed)
	}

	spans := tr.Snapshot()
	byTrace := map[uint64][]obs.Span{}
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}

	// The outlier: the slowest wire_rtt in the run.
	var wire obs.Span
	for _, s := range spans {
		if s.Name == "wire_rtt" && s.Dur > wire.Dur {
			wire = s
		}
	}
	if wire.Trace == 0 {
		t.Fatal("no wire_rtt spans recorded")
	}
	trace := byTrace[wire.Trace]
	byName := map[string]obs.Span{}
	for _, s := range trace {
		byName[s.Name] = s
	}
	for _, name := range []string{"client_send", "server_request", "queue_wait", "prepare", "batch_residency", "finish", "reply"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("outlier trace %016x missing %q span (has %d spans)", wire.Trace, name, len(trace))
		}
	}

	// Both halves joined: the server_request span's wire-carried parent is
	// the client's root span id.
	if sr := byName["server_request"]; sr.Parent != wire.ID {
		t.Fatalf("server_request parent %d, want the client root span %d", sr.Parent, wire.ID)
	}

	// Attribution: the disjoint server-side stages tile the request span,
	// and everything sits inside the observed wire latency. slack absorbs
	// the independent clock reads at each stage boundary.
	const slack = int64(2e6) // 2ms
	var stageSum int64
	for _, name := range []string{"queue_wait", "prepare", "batch_residency", "finish", "reply"} {
		s := byName[name]
		stageSum += s.Dur
		if s.Start < wire.Start-slack || s.Start+s.Dur > wire.Start+wire.Dur+slack {
			t.Fatalf("%s [%d,+%d] outside the wire_rtt window [%d,+%d]",
				name, s.Start, s.Dur, wire.Start, wire.Dur)
		}
	}
	sr := byName["server_request"]
	if stageSum > sr.Dur+slack {
		t.Fatalf("stage spans sum to %dns, more than the %dns server_request", stageSum, sr.Dur)
	}
	if got := byName["client_send"].Dur + sr.Dur; got > wire.Dur+slack {
		t.Fatalf("client_send+server_request %dns exceed the %dns wire_rtt", got, wire.Dur)
	}

	// The kernel is attributed to its flush's first traced decision, whose
	// batch-residency window must contain it.
	kernelSeen := false
	for id, spansOfTrace := range byTrace {
		var kernel, res obs.Span
		for _, s := range spansOfTrace {
			switch s.Name {
			case "kernel":
				kernel = s
			case "batch_residency":
				res = s
			}
		}
		if kernel.Trace == 0 {
			continue
		}
		kernelSeen = true
		if res.Trace == 0 {
			t.Fatalf("trace %016x has a kernel span but no batch_residency", id)
		}
		if kernel.Dur > res.Dur+slack {
			t.Fatalf("kernel %dns exceeds its %dns batch_residency", kernel.Dur, res.Dur)
		}
	}
	if !kernelSeen {
		t.Fatal("no kernel spans attributed to any trace")
	}

	// The export loads as Chrome trace-event JSON: one X event per span
	// plus process/thread metadata.
	var buf bytes.Buffer
	obs.WriteChromeTrace(&buf, "serve-test", trace)
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	events, meta := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			events++
		case "M":
			meta++
		}
	}
	if events != len(trace) || meta == 0 {
		t.Fatalf("export has %d X events for %d spans, %d metadata", events, len(trace), meta)
	}
}
