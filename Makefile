# Local developer entry points, mirrored 1:1 by .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local run means a green PR.

GO ?= go
# Session count for the benchmark smoke pass — small enough to finish in a
# couple of minutes, large enough to exercise every figure end to end.
BENCH_SESSIONS ?= 40

.PHONY: fmt fmt-check vet build test bench ci

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Compile and execute every benchmark once (figures included) as a smoke
# check; use `go test -bench=. -benchmem ./...` directly for real timings.
bench:
	PUFFER_BENCH_SESSIONS=$(BENCH_SESSIONS) $(GO) test -run=NoTests -bench=. -benchtime=1x ./...

ci: fmt-check vet build test bench
