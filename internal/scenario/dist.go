package scenario

import (
	"io"

	"puffer/internal/core"
	"puffer/internal/dist"
	"puffer/internal/runner"
)

// DistTrialFactory compiles the canonical spec JSON a dist coordinator
// broadcasts in its hello frame into the worker-side day-trial builder.
// The spec bytes are exactly what the coordinator's checkpoint manifest
// records, and the trial comes from the same runner.Config.DayTrial the
// single-process engine uses — both sides derive every seed and scheme
// mixture from identical inputs, which is the determinism argument.
//
// Workers never apply PUFFER_SCENARIO_SCALE: the coordinator scaled (or
// didn't) before canonicalizing, and re-scaling here would silently run a
// different experiment.
func DistTrialFactory(specJSON []byte) (dist.DayFunc, error) {
	s, err := Parse(specJSON)
	if err != nil {
		return nil, err
	}
	cfg, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return func(day int, model *core.TTP) (dist.DayTrial, error) {
		slot := &runner.ModelSlot{}
		if model != nil {
			slot.Store(model)
		}
		return dist.DayTrial{Trial: cfg.DayTrial(day, slot), ShardSize: cfg.ShardSize}, nil
	}, nil
}

// ServeDistWorker runs the worker side of the dist protocol on r/w
// (stdin/stdout of a subprocess worker) until the coordinator shuts it
// down. CLIs dispatch their hidden worker mode here.
func ServeDistWorker(r io.Reader, w io.Writer) error {
	return dist.Serve(r, w, DistTrialFactory)
}
