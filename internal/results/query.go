package results

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Row is one flattened query row: dotted spec columns ("drift.preset",
// "daily.sessions", "seed", ...), identity columns ("name", "hash",
// "guard_hash"), per-scheme outcome columns ("Fugu.stall_pct",
// "BBA.ssim_db", "frozen.Fugu.stall_pct", ...), and "wall_seconds". Gap
// rows add "day", "present", "retrained_stall_pct", "frozen_stall_pct",
// and "gap_pp".
type Row map[string]any

// Rows flattens each distinct experiment (first record per hash) into one
// Row, sorted by hash — a deterministic order that does not depend on how
// or when records were appended.
func (ix *Index) Rows() []Row {
	rows := make([]Row, 0, len(ix.byHash))
	for _, rec := range ix.Records {
		if ix.byHash[rec.Hash] != rec {
			continue // duplicate append of an already-indexed cell
		}
		rows = append(rows, rec.row())
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i]["hash"].(string) < rows[j]["hash"].(string)
	})
	return rows
}

// GapRows explodes each distinct experiment into one Row per day of its
// staleness-gap table (records without an ablation contribute nothing),
// sorted by (hash, day).
func (ix *Index) GapRows() []Row {
	var rows []Row
	for _, rec := range ix.Records {
		if ix.byHash[rec.Hash] != rec {
			continue
		}
		base := rec.row()
		for _, g := range rec.Outcome.Gaps {
			r := Row{}
			for k, v := range base {
				r[k] = v
			}
			r["day"] = g.Day
			r["present"] = g.Present
			r["retrained_stall_pct"] = 100 * g.Retrained
			r["frozen_stall_pct"] = 100 * g.Frozen
			r["gap_pp"] = 100 * g.Gap
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		hi, hj := rows[i]["hash"].(string), rows[j]["hash"].(string)
		if hi != hj {
			return hi < hj
		}
		return rows[i]["day"].(int) < rows[j]["day"].(int)
	})
	return rows
}

// row flattens one record.
func (rec *Record) row() Row {
	r := Row{
		"name":         rec.Name,
		"hash":         rec.Hash,
		"guard_hash":   rec.GuardHash,
		"wall_seconds": rec.Timing.WallSeconds,
	}
	var spec map[string]any
	dec := json.NewDecoder(strings.NewReader(string(rec.Spec)))
	dec.UseNumber()
	if err := dec.Decode(&spec); err == nil {
		flatten("", spec, r)
	}
	// The spec's own name/notes are documentation; the record's Name wins.
	delete(r, "notes")
	for _, s := range rec.Outcome.Total {
		r[s.Name+".stall_pct"] = 100 * s.StallRatio.Point
		r[s.Name+".stall_lo_pct"] = 100 * s.StallRatio.Lo
		r[s.Name+".stall_hi_pct"] = 100 * s.StallRatio.Hi
		r[s.Name+".ssim_db"] = s.SSIM.Point
		r[s.Name+".bitrate_bps"] = s.MeanBitrate
		r[s.Name+".considered"] = s.Considered
	}
	for _, s := range rec.Outcome.FrozenTotal {
		r["frozen."+s.Name+".stall_pct"] = 100 * s.StallRatio.Point
		r["frozen."+s.Name+".ssim_db"] = s.SSIM.Point
	}
	return r
}

// flatten lowers nested JSON objects into dotted keys; arrays become their
// compact JSON form (e.g. model.hidden = "[64,64]").
func flatten(prefix string, v any, out Row) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, t[k], out)
		}
	case []any:
		blob, _ := json.Marshal(t)
		out[prefix] = string(blob)
	default:
		out[prefix] = v
	}
}

// Pred is one field predicate: <field> <op> <value>, where op is one of
// = != < <= > >=. Comparisons are numeric when both sides parse as
// numbers, string otherwise.
type Pred struct {
	Field, Op, Value string
}

// predOps in match order: two-character operators first so "<=" is not
// split as "<" + "=...".
var predOps = []string{"!=", "<=", ">=", "=", "<", ">"}

// ParsePreds parses a comma-separated predicate list like
// "drift.preset=shift,daily.sessions>=100".
func ParsePreds(s string) ([]Pred, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var preds []Pred
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var p Pred
		for _, op := range predOps {
			if i := strings.Index(part, op); i > 0 {
				p = Pred{
					Field: strings.TrimSpace(part[:i]),
					Op:    op,
					Value: strings.TrimSpace(part[i+len(op):]),
				}
				break
			}
		}
		if p.Op == "" {
			return nil, fmt.Errorf("results: predicate %q: want <field><op><value> with op one of = != < <= > >=", part)
		}
		preds = append(preds, p)
	}
	return preds, nil
}

// match evaluates the predicate against a row value. A missing field never
// matches (not even !=): filtering on a column a record lacks should
// exclude it, not silently include it.
func (p Pred) match(r Row) bool {
	v, ok := r[p.Field]
	if !ok {
		return false
	}
	if fa, okA := toFloat(v); okA {
		if fb, okB := toFloat(p.Value); okB {
			return cmpMatch(p.Op, compareFloat(fa, fb))
		}
	}
	return cmpMatch(p.Op, strings.Compare(FormatValue(v), p.Value))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpMatch(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case json.Number:
		f, err := t.Float64()
		return f, err == nil
	case string:
		f, err := strconv.ParseFloat(t, 64)
		return f, err == nil
	}
	return 0, false
}

// FormatValue renders a row value deterministically: floats in their
// shortest exact form, everything else in its natural form.
func FormatValue(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case bool:
		return strconv.FormatBool(t)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case json.Number:
		return t.String()
	default:
		blob, _ := json.Marshal(t)
		return string(blob)
	}
}

// Query describes one read of the warehouse: optional per-day explosion,
// field predicates, a projection, and an optional group-and-aggregate.
type Query struct {
	// PerDay queries the staleness gap rows (one row per record-day)
	// instead of one row per record.
	PerDay bool
	// Where keeps rows matching every predicate.
	Where []Pred
	// Cols is the projection, in output order. Empty: "name", "hash".
	Cols []string
	// GroupBy groups the filtered rows by these columns and aggregates
	// AggCol with Agg ("mean", "sum", "min", "max", or "count") per
	// group; when set, Cols is ignored and the output columns are
	// GroupBy + "agg(col)".
	GroupBy []string
	Agg     string
	AggCol  string
}

// Table is a query result: deterministic column order and row order, every
// value already formatted.
type Table struct {
	Cols []string
	Rows [][]string
}

// Query runs a query against the index. Results depend only on the set of
// distinct records, never on append order.
func (ix *Index) Query(q Query) (*Table, error) {
	rows := ix.Rows()
	if q.PerDay {
		rows = ix.GapRows()
	}
	var kept []Row
	for _, r := range rows {
		ok := true
		for _, p := range q.Where {
			if !p.match(r) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, r)
		}
	}
	if len(q.GroupBy) > 0 {
		return groupAggregate(kept, q)
	}
	cols := q.Cols
	if len(cols) == 0 {
		cols = []string{"name", "hash"}
	}
	t := &Table{Cols: cols}
	for _, r := range kept {
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = FormatValue(r[c])
		}
		t.Rows = append(t.Rows, out)
	}
	return t, nil
}

// groupAggregate reduces rows to one output row per distinct GroupBy
// tuple, sorted by the tuple.
func groupAggregate(rows []Row, q Query) (*Table, error) {
	agg := q.Agg
	if agg == "" {
		agg = "count"
	}
	switch agg {
	case "mean", "sum", "min", "max":
		if q.AggCol == "" {
			return nil, fmt.Errorf("results: aggregate %q needs a column", agg)
		}
	case "count":
	default:
		return nil, fmt.Errorf("results: unknown aggregate %q (want mean, sum, min, max, or count)", agg)
	}

	type group struct {
		key  []string
		vals []float64
		n    int
	}
	groups := map[string]*group{}
	for _, r := range rows {
		key := make([]string, len(q.GroupBy))
		for i, c := range q.GroupBy {
			key[i] = FormatValue(r[c])
		}
		id := strings.Join(key, "\x00")
		g := groups[id]
		if g == nil {
			g = &group{key: key}
			groups[id] = g
		}
		g.n++
		if q.AggCol != "" {
			if f, ok := toFloat(r[q.AggCol]); ok {
				g.vals = append(g.vals, f)
			}
		}
	}

	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	aggName := agg
	if q.AggCol != "" {
		aggName = fmt.Sprintf("%s(%s)", agg, q.AggCol)
	}
	t := &Table{Cols: append(append([]string{}, q.GroupBy...), aggName)}
	for _, id := range ids {
		g := groups[id]
		var out string
		switch agg {
		case "count":
			out = strconv.Itoa(g.n)
		case "sum", "mean", "min", "max":
			if len(g.vals) == 0 {
				out = ""
				break
			}
			v := g.vals[0]
			for _, x := range g.vals[1:] {
				switch agg {
				case "sum", "mean":
					v += x
				case "min":
					if x < v {
						v = x
					}
				case "max":
					if x > v {
						v = x
					}
				}
			}
			if agg == "mean" {
				v /= float64(len(g.vals))
			}
			out = FormatValue(v)
		}
		t.Rows = append(t.Rows, append(append([]string{}, g.key...), out))
	}
	return t, nil
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			if pad := widths[i] - len(v); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the table as an array of {col: value} objects.
func (t *Table) WriteJSON(w io.Writer) error {
	objs := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		obj := make(map[string]string, len(t.Cols))
		for i, c := range t.Cols {
			if i < len(row) {
				obj[c] = row[i]
			}
		}
		objs = append(objs, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(objs)
}
