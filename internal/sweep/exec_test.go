package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"puffer/internal/results"
	"puffer/internal/scenario"
)

// TestExecuteRunsMissingCellsOnly is the executor's whole contract in one
// arc: a full sweep populates the index; an interrupted sweep (a cell
// fails partway) appends only the contiguous prefix; re-launching runs
// exactly the missing cells; and the resumed index is byte-identical
// (modulo timing/host, which CanonicalBytes excludes) to the
// uninterrupted one. A final launch executes nothing.
func TestExecuteRunsMissingCellsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) scenarios")
	}
	dir := t.TempDir()
	sw := mustParse(t, tinySweep)
	inproc := InProcess(scenario.RunOptions{})

	// Uninterrupted reference run.
	refIndex := filepath.Join(dir, "ref.jsonl")
	rep, err := Execute(sw, ExecConfig{
		Workers:        2,
		IndexPath:      refIndex,
		CheckpointRoot: filepath.Join(dir, "ref-ckpt"),
		Run:            inproc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 || rep.Ran != 4 || rep.Indexed != 0 {
		t.Fatalf("reference run: %+v", rep)
	}

	// Interrupted run: the third cell dies. Workers=1 keeps the injected
	// failure at a deterministic position in expansion order.
	killIndex := filepath.Join(dir, "kill.jsonl")
	ckpt := filepath.Join(dir, "kill-ckpt")
	var calls int32
	failing := func(c Cell, checkpointDir string) (*results.Record, error) {
		if atomic.AddInt32(&calls, 1) == 3 {
			return nil, fmt.Errorf("injected kill")
		}
		return inproc(c, checkpointDir)
	}
	rep, err = Execute(sw, ExecConfig{
		Workers:        1,
		IndexPath:      killIndex,
		CheckpointRoot: ckpt,
		Run:            failing,
	})
	if err == nil {
		t.Fatal("interrupted sweep must report the failure")
	}
	if rep.Ran != 2 {
		t.Fatalf("interrupted run appended %d cells, want the contiguous prefix of 2", rep.Ran)
	}
	ix, err := results.Load(killIndex)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("index after kill holds %d records, want 2", ix.Len())
	}

	// Re-launch: only the two missing cells execute.
	rep, err = Execute(sw, ExecConfig{
		Workers:        2,
		IndexPath:      killIndex,
		CheckpointRoot: ckpt,
		Run:            inproc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 2 || rep.Indexed != 2 {
		t.Fatalf("resume run: ran %d indexed %d, want 2 and 2", rep.Ran, rep.Indexed)
	}

	ref, err := results.Load(refIndex)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := results.Load(killIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.CanonicalBytes(), resumed.CanonicalBytes()) {
		t.Fatal("resumed index differs from the uninterrupted run (beyond timing/host)")
	}

	// Everything indexed: a further launch executes zero cells.
	ran := int32(0)
	counting := func(c Cell, checkpointDir string) (*results.Record, error) {
		atomic.AddInt32(&ran, 1)
		return inproc(c, checkpointDir)
	}
	rep, err = Execute(sw, ExecConfig{IndexPath: killIndex, Run: counting})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 || rep.Ran != 0 || rep.Indexed != 4 {
		t.Fatalf("fully-indexed sweep still executed %d cells (%+v)", ran, rep)
	}

	// Status agrees without running anything.
	st, err := Status(sw, killIndex, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range st {
		if c.State != "indexed" {
			t.Fatalf("status: cell %s is %q, want indexed", c.Name, c.State)
		}
	}
}

// TestExecuteSerializesSameGuardCells: an engine axis changes the spec
// hash but not the GuardHash, so its cells land in one group — they run on
// one worker, share one checkpoint directory, and still produce distinct
// index records.
func TestExecuteSerializesSameGuardCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) scenarios")
	}
	const engineSweep = `{
  "name": "eng",
  "base": {
    "daily": {"days": 2, "sessions": 16, "window": 2, "ablation": false},
    "model": {"hidden": [8], "horizon": 2},
    "train": {"epochs": 1},
    "shard_size": 4
  },
  "axes": [{"field": "engine.kind", "values": ["session", "fleet"]}]
}`
	sw := mustParse(t, engineSweep)
	cells, err := sw.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].GuardHash != cells[1].GuardHash {
		t.Fatal("engine axis must not change the GuardHash")
	}
	if cells[0].Hash == cells[1].Hash {
		t.Fatal("engine axis must change the spec hash")
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	var concurrent, peak int32
	guarded := func(c Cell, checkpointDir string) (*results.Record, error) {
		n := atomic.AddInt32(&concurrent, 1)
		defer atomic.AddInt32(&concurrent, -1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		return InProcess(scenario.RunOptions{})(c, checkpointDir)
	}
	rep, err := Execute(sw, ExecConfig{
		Workers:        4,
		IndexPath:      filepath.Join(dir, "index.jsonl"),
		CheckpointRoot: ckpt,
		Run:            guarded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 2 {
		t.Fatalf("ran %d cells, want 2", rep.Ran)
	}
	if peak != 1 {
		t.Fatalf("same-guard cells overlapped (peak concurrency %d)", peak)
	}

	// One checkpoint directory for the whole group.
	entries, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var guardDirs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "g-") {
			guardDirs = append(guardDirs, e.Name())
		}
	}
	if len(guardDirs) != 1 {
		t.Fatalf("guard dirs = %v, want exactly one", guardDirs)
	}
}
