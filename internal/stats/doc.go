// Package stats implements the paper's statistical machinery: bootstrap
// confidence intervals on the aggregate stall ratio (§3.4),
// duration-weighted standard errors on SSIM, CCDFs for the Figure 10
// watch-time tails, and the power analysis behind "it takes about 2
// stream-years of data to distinguish two schemes that differ by 15%"
// (§5.3).
//
// The accumulators are the scaling story: StreamAcc (per-stream watch and
// stall points) and WeightedAcc (duration-weighted means) are mergeable, so
// the sharded runner folds sessions into per-shard accumulators, merges
// them in shard order, and bootstraps once on the merged state
// (StreamAcc.Bootstrap) — session results never materialize at trial scale.
//
// Main entry points:
//
//   - StallRatio / StreamYears over StreamPoint: the headline aggregate
//     estimators; BootstrapStallRatio and Interval: the §3.4 CIs.
//   - StreamAcc / WeightedAcc: the mergeable accumulators
//     (Add/Merge/Bootstrap, weighted means with WeightedMeanSE-style CIs).
//   - Quantile / CCDF / CCDFAt: distribution readouts for the figures.
//   - PowerConfig / DetectionRate: the §5.3 power analysis; HarmonicMean:
//     the classical throughput predictor's kernel.
package stats
