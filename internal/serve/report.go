package serve

import (
	"fmt"
	"io"

	"puffer/internal/experiment"
)

// WriteStats prints one day's per-scheme pooled analysis. It is the shared
// deterministic report of the serving layer: puffer-load prints it after a
// remote run and after a -virtual run, and the differential smoke compares
// the two outputs byte for byte — so the format depends only on the stats.
func WriteStats(w io.Writer, day int, stats []experiment.SchemeStats) {
	fmt.Fprintf(w, "Day %d per-scheme results\n", day)
	fmt.Fprintf(w, "%-14s %8s %10s %22s %18s %10s\n",
		"Arm", "Sessions", "Considered", "Stalled% [95% CI]", "SSIM dB [95% CI]", "WatchYears")
	for _, r := range stats {
		fmt.Fprintf(w, "%-14s %8d %10d %7.3f%% [%.3f, %.3f] %6.2f [%.2f, %.2f] %10.4f\n",
			r.Name, r.Sessions, r.Considered,
			100*r.StallRatio.Point, 100*r.StallRatio.Lo, 100*r.StallRatio.Hi,
			r.SSIM.Point, r.SSIM.Lo, r.SSIM.Hi, r.WatchYears)
	}
}
