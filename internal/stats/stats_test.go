package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStallRatio(t *testing.T) {
	pts := []StreamPoint{{Watch: 90, Stall: 10}, {Watch: 110, Stall: 0}}
	if got := StallRatio(pts); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("StallRatio = %v, want 0.05", got)
	}
	if StallRatio(nil) != 0 {
		t.Fatal("empty StallRatio should be 0")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	// Streams from a known process: the CI should cover the true ratio
	// most of the time.
	rng := rand.New(rand.NewSource(1))
	trueRatio := 0.02
	covered := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		pts := make([]StreamPoint, 400)
		for i := range pts {
			w := 60 + rng.ExpFloat64()*240
			s := 0.0
			if rng.Float64() < 0.1 { // stalls are rare and bursty
				s = w * trueRatio * 10 * rng.ExpFloat64()
			}
			pts[i] = StreamPoint{Watch: w, Stall: s}
		}
		iv := BootstrapStallRatio(rng, pts, 200, 0.95)
		actual := StallRatio(pts)
		if iv.Lo <= actual && actual <= iv.Hi {
			covered++
		}
		if iv.Lo > iv.Point || iv.Hi < iv.Point {
			t.Fatalf("CI [%v,%v] does not contain its own point %v", iv.Lo, iv.Hi, iv.Point)
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("bootstrap covered its own sample ratio only %d/%d times", covered, trials)
	}
}

func TestBootstrapWidthShrinksWithData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func(n int) []StreamPoint {
		pts := make([]StreamPoint, n)
		for i := range pts {
			w := 60 + rng.ExpFloat64()*240
			s := 0.0
			if rng.Float64() < 0.05 {
				s = rng.ExpFloat64() * 20
			}
			pts[i] = StreamPoint{Watch: w, Stall: s}
		}
		return pts
	}
	small := BootstrapStallRatio(rng, gen(200), 300, 0.95)
	large := BootstrapStallRatio(rng, gen(5000), 300, 0.95)
	if large.RelativeHalfWidth() >= small.RelativeHalfWidth() {
		t.Fatalf("more data did not shrink CI: %v vs %v", large.RelativeHalfWidth(), small.RelativeHalfWidth())
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	iv := BootstrapStallRatio(rand.New(rand.NewSource(3)), nil, 100, 0.95)
	if iv.Point != 0 || iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("empty bootstrap = %+v", iv)
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Point: 1, Lo: 0.5, Hi: 1.5}
	b := Interval{Point: 2, Lo: 1.4, Hi: 2.5}
	c := Interval{Point: 3, Lo: 2.6, Hi: 3.5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("a and c should not overlap")
	}
	if got := a.Width(); got != 1.0 {
		t.Fatalf("Width = %v", got)
	}
}

func TestWeightedMeanSE(t *testing.T) {
	// All weight on one value: mean equals it, zero variance.
	iv := WeightedMeanSE([]float64{5, 100}, []float64{1, 0}, 0.95)
	if iv.Point != 5 || iv.Width() != 0 {
		t.Fatalf("degenerate weighted mean = %+v", iv)
	}
	// Uniform weights equal the plain mean.
	iv2 := WeightedMeanSE([]float64{1, 2, 3}, []float64{1, 1, 1}, 0.95)
	if math.Abs(iv2.Point-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", iv2.Point)
	}
	if !(iv2.Lo < 2 && 2 < iv2.Hi) {
		t.Fatalf("interval %+v should bracket the mean", iv2)
	}
}

func TestWeightedMeanSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedMeanSE([]float64{1}, []float64{1, 2}, 0.95)
}

func TestMeanSEShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := MeanSE(gen(100), 0.95)
	large := MeanSE(gen(10000), 0.95)
	if large.Width() >= small.Width() {
		t.Fatalf("CI width did not shrink: %v vs %v", large.Width(), small.Width())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 2, 4}); math.Abs(got-12.0/7.0) > 1e-12 {
		t.Fatalf("HM = %v, want 12/7", got)
	}
	if got := HarmonicMean([]float64{2, 0, -1}); got != 2 {
		t.Fatalf("HM with junk = %v, want 2", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("empty HM should be 0")
	}
	// HM <= arithmetic mean, always.
	f := func(a, b, c float64) bool {
		xs := []float64{math.Abs(a) + 0.1, math.Abs(b) + 0.1, math.Abs(c) + 0.1}
		am := (xs[0] + xs[1] + xs[2]) / 3
		return HarmonicMean(xs) <= am+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCCDF(t *testing.T) {
	pts := CCDF([]float64{1, 2, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("distinct points = %d, want 3", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 1.0 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[1].X != 2 || math.Abs(pts[1].P-0.75) > 1e-12 {
		t.Fatalf("second point = %+v", pts[1])
	}
	if pts[2].X != 3 || math.Abs(pts[2].P-0.25) > 1e-12 {
		t.Fatalf("third point = %+v", pts[2])
	}
	if CCDF(nil) != nil {
		t.Fatal("empty CCDF should be nil")
	}
}

func TestCCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 100
		}
		pts := CCDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P >= pts[i-1].P {
				return false
			}
		}
		return pts[0].P == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CCDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CCDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CCDFAt(xs, 0); got != 1 {
		t.Fatalf("CCDFAt(0) = %v, want 1", got)
	}
	if got := CCDFAt(nil, 1); got != 0 {
		t.Fatalf("empty CCDFAt = %v", got)
	}
}

// heavyDraw mimics the study's stream behavior: heavy-tailed watch times and
// rare bursty stalls, scaled by the scheme's true stall propensity.
func heavyDraw(rng *rand.Rand, scale float64) StreamPoint {
	w := 30 * math.Exp(1.3*rng.NormFloat64())
	s := 0.0
	if rng.Float64() < 0.03*scale {
		s = math.Min(w*0.5, rng.ExpFloat64()*15)
	}
	return StreamPoint{Watch: w, Stall: s}
}

func TestDetectionRateRisesWithEffectAndData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := PowerConfig{Effect: 0.15, Trials: 20, BootstrapIters: 120, Conf: 0.95}
	smallN := DetectionRate(rng, cfg, 200, heavyDraw)
	bigEffect := PowerConfig{Effect: 0.9, Trials: 20, BootstrapIters: 120, Conf: 0.95}
	bigE := DetectionRate(rng, bigEffect, 200, heavyDraw)
	if bigE < smallN {
		t.Fatalf("larger effect should be easier to detect: %v vs %v", bigE, smallN)
	}
	// A 15% effect with few heavy-tailed streams is mostly invisible —
	// the paper's core statistical point.
	if smallN > 0.5 {
		t.Fatalf("15%% effect detected %v of the time with only 200 streams — too easy, model lacks heavy tails", smallN)
	}
}

func TestStreamYears(t *testing.T) {
	pts := []StreamPoint{{Watch: 365.25 * 24 * 3600 / 2}, {Watch: 365.25 * 24 * 3600 / 2}}
	if got := StreamYears(pts); math.Abs(got-1) > 1e-12 {
		t.Fatalf("StreamYears = %v, want 1", got)
	}
}

func TestQuantileSortedInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := quantileSorted(xs, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q0.25 = %v, want 2.5", got)
	}
}

func TestZForLevels(t *testing.T) {
	if zFor(0.95) != 1.96 || zFor(0.99) != 2.576 {
		t.Fatal("z quantiles wrong")
	}
	if !(zFor(0.5) < zFor(0.95)) {
		t.Fatal("z must grow with confidence")
	}
}
