package puffer

import (
	"testing"
)

// TestPublicAPIPipeline exercises the façade end to end at a small scale:
// collect → train → deploy → analyze.
func TestPublicAPIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short")
	}
	env := DefaultEnv()
	data, err := CollectDataset(env, []Scheme{{Name: "BBA", New: NewBBA}}, 50, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumChunks() == 0 {
		t.Fatal("no telemetry collected")
	}

	ttp := NewTTP(2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	if err := TrainTTP(ttp, data, cfg); err != nil {
		t.Fatal(err)
	}

	res, err := RunExperiment(Config{
		Env: env,
		Schemes: []Scheme{
			{Name: "Fugu", New: func() Algorithm { return NewFugu(ttp) }},
			{Name: "BBA", New: NewBBA},
			{Name: "MPC-HM", New: NewMPCHM},
			{Name: "RobustMPC-HM", New: NewRobustMPCHM},
		},
		Sessions: 60,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}

	rows := Analyze(res, AllPaths, 4)
	if len(rows) != 4 {
		t.Fatalf("got %d scheme rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Considered == 0 {
			t.Fatalf("%s: no considered streams", r.Name)
		}
		if r.SSIM.Point < 8 || r.SSIM.Point > 19 {
			t.Fatalf("%s: implausible SSIM %v", r.Name, r.SSIM.Point)
		}
	}

	arms := Consort(res)
	sessions := 0
	for _, a := range arms {
		sessions += a.Sessions
	}
	if sessions != 60 {
		t.Fatalf("CONSORT sessions = %d, want 60", sessions)
	}
}

func TestEnvironments(t *testing.T) {
	d := DefaultEnv()
	if d.Paths.Name() != "puffer" {
		t.Fatalf("default env paths = %s", d.Paths.Name())
	}
	e := EmulationEnv()
	if e.Paths.Name() != "fcc" || e.Clip == nil {
		t.Fatal("emulation env misconfigured")
	}
}

func TestFacadeConstructors(t *testing.T) {
	for _, alg := range []Algorithm{NewBBA(), NewMPCHM(), NewRobustMPCHM(), NewFugu(NewTTP(1))} {
		if alg.Name() == "" {
			t.Fatal("empty scheme name")
		}
		alg.Reset()
	}
}

// TestDriftFacade exercises the drift surface through the public API: build
// a drifting deployment and check the day index changes the distribution a
// stationary sampler would ignore.
func TestDriftFacade(t *testing.T) {
	for _, name := range []string{"none", "decay", "shift", "mix"} {
		if _, err := DriftPreset(name); err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
	}
	if _, err := DriftPreset("bogus"); err == nil {
		t.Fatal("bogus preset accepted")
	}
	sched, err := DriftPreset("decay")
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultEnv()
	var ds DaySampler = &DriftingSampler{Base: env.Paths, Schedule: sched}
	env.Paths = ds
	if env.Paths.Name() == "puffer" {
		t.Fatal("drifting sampler must not masquerade as the stationary family")
	}
	if sched.RateScale(3) >= sched.RateScale(1) {
		t.Fatal("decay schedule does not decay")
	}
}
