package fleet

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestArrivalScheduleDeterminism is the property the load generator leans
// on: the arrival schedule of a (process, seed, n) triple is one immutable
// value — bit-identical whatever GOMAXPROCS is and however many goroutines
// derive it at once. The wall-clock client and the virtual-time engine each
// compute it independently; any divergence would silently desynchronize
// the two sides of the differential harness.
func TestArrivalScheduleDeterminism(t *testing.T) {
	procs := []ArrivalProcess{
		PoissonArrivals{Rate: 0.5},
		PoissonArrivals{Rate: 40},
		PoissonArrivals{Rate: 0}, // degenerate: everyone at t=0
		BurstArrivals{Burst: 7, Gap: 3.5},
		BurstArrivals{Burst: 0, Gap: 1}, // degenerate: one burst
	}
	seeds := []int64{0, 1, -9, 1 << 40}
	const n = 512

	type key struct {
		proc int
		seed int64
	}
	want := map[key][]float64{}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(gmp)
		// Hammer every (proc, seed) from many goroutines at once.
		var wg sync.WaitGroup
		got := make([][]float64, len(procs)*len(seeds)*4)
		for i := range got {
			i := i
			pi, si := (i/4)%len(procs), (i/4)/len(procs)
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[i] = ArrivalTimes(procs[pi], seeds[si], n)
			}()
		}
		wg.Wait()
		for i, times := range got {
			pi, si := (i/4)%len(procs), (i/4)/len(procs)
			k := key{pi, seeds[si]}
			if want[k] == nil {
				if len(times) != n {
					t.Fatalf("proc %d seed %d: %d times, want %d", pi, k.seed, len(times), n)
				}
				for j := 1; j < len(times); j++ {
					if times[j] < times[j-1] {
						t.Fatalf("proc %d seed %d: schedule not sorted at %d", pi, k.seed, j)
					}
				}
				for j, v := range times {
					if math.IsNaN(v) || v < 0 {
						t.Fatalf("proc %d seed %d: bad arrival %v at %d", pi, k.seed, v, j)
					}
				}
				want[k] = times
				continue
			}
			for j := range times {
				if times[j] != want[k][j] {
					t.Fatalf("GOMAXPROCS=%d proc %d seed %d: arrival %d = %v, want %v",
						gmp, pi, k.seed, j, times[j], want[k][j])
				}
			}
		}
	}
}
