package netem

import (
	"math"
	"math/rand"
)

// traceInterval is the sample spacing used by all generators (seconds).
const traceInterval = 1.0

// PufferTraceConfig parameterizes the deployment-like trace family.
type PufferTraceConfig struct {
	// MeanRate is the session's long-run mean capacity (bits/sec).
	MeanRate float64
	// RegimeDwell is the mean time between regime switches (seconds).
	RegimeDwell float64
	// RegimeSigma is the std-dev of log regime level around the mean.
	RegimeSigma float64
	// WithinSigma is the std-dev of fast log-rate variation inside a
	// regime.
	WithinSigma float64
	// OutageRate is the Poisson rate of deep outages (per second).
	OutageRate float64
	// OutageMeanDur is the mean outage duration (seconds).
	OutageMeanDur float64
	// OutageDepth multiplies capacity during an outage (e.g. 0.03).
	OutageDepth float64
}

// DefaultPufferTraceConfig returns the deployment-like defaults for a
// session with the given mean rate: slowly-switching regimes, autocorrelated
// within-regime wiggle, and rare deep outages — the heavy-tailed behavior
// the paper observes in the wild.
func DefaultPufferTraceConfig(meanRate float64) PufferTraceConfig {
	return PufferTraceConfig{
		MeanRate:      meanRate,
		RegimeDwell:   45,
		RegimeSigma:   0.45,
		WithinSigma:   0.18,
		OutageRate:    1.0 / 240,
		OutageMeanDur: 4.0,
		OutageDepth:   0.04,
	}
}

// GenPuffer synthesizes a deployment-like trace of the given duration.
func GenPuffer(rng *rand.Rand, cfg PufferTraceConfig, duration float64) *Trace {
	n := max(1, int(math.Ceil(duration/traceInterval)))
	tr := &Trace{Interval: traceInterval, Rate: make([]float64, n)}
	logMean := math.Log(cfg.MeanRate)
	regime := logMean + rng.NormFloat64()*cfg.RegimeSigma
	wiggle := 0.0
	const arWiggle = 0.85
	outageLeft := 0.0
	for i := 0; i < n; i++ {
		// Regime switching (Poisson).
		if rng.Float64() < traceInterval/cfg.RegimeDwell {
			regime = logMean + rng.NormFloat64()*cfg.RegimeSigma
		}
		// Fast autocorrelated variation.
		wiggle = arWiggle*wiggle + cfg.WithinSigma*rng.NormFloat64()
		rate := math.Exp(regime + wiggle)
		// Outages: heavy-tailed trouble the emulator families lack.
		if outageLeft > 0 {
			rate *= cfg.OutageDepth
			outageLeft -= traceInterval
		} else if rng.Float64() < cfg.OutageRate*traceInterval {
			outageLeft = rng.ExpFloat64() * cfg.OutageMeanDur
			rate *= cfg.OutageDepth
		}
		if rate < 1e3 {
			rate = 1e3 // never a literal zero link
		}
		tr.Rate[i] = rate
	}
	return tr
}

// FCCTraceConfig parameterizes the emulator-like trace family, mimicking
// the FCC broadband traces replayed through mahimahi in the paper's §5.2.
type FCCTraceConfig struct {
	MeanRate float64 // bits/sec
	// Sigma is the std-dev of slow log-rate variation.
	Sigma float64
	// DipProb is the per-sample probability of a shallow dip.
	DipProb float64
	// DipDepth multiplies capacity during a dip (e.g. 0.5).
	DipDepth float64
}

// DefaultFCCTraceConfig returns emulator-like defaults: stable capacity with
// mild wander and occasional shallow dips — no heavy tail.
func DefaultFCCTraceConfig(meanRate float64) FCCTraceConfig {
	return FCCTraceConfig{MeanRate: meanRate, Sigma: 0.10, DipProb: 0.01, DipDepth: 0.55}
}

// GenFCC synthesizes an FCC-broadband-like trace.
func GenFCC(rng *rand.Rand, cfg FCCTraceConfig, duration float64) *Trace {
	n := max(1, int(math.Ceil(duration/traceInterval)))
	tr := &Trace{Interval: traceInterval, Rate: make([]float64, n)}
	logMean := math.Log(cfg.MeanRate)
	wander := 0.0
	const ar = 0.97
	dipLeft := 0
	for i := 0; i < n; i++ {
		wander = ar*wander + cfg.Sigma*math.Sqrt(1-ar*ar)*rng.NormFloat64()
		rate := math.Exp(logMean + wander)
		if dipLeft > 0 {
			rate *= cfg.DipDepth
			dipLeft--
		} else if rng.Float64() < cfg.DipProb {
			dipLeft = 1 + rng.Intn(4)
			rate *= cfg.DipDepth
		}
		if rate < 1e4 {
			rate = 1e4
		}
		tr.Rate[i] = rate
	}
	return tr
}

// CS2PTraceConfig parameterizes the discrete-state Markov family of CS2P's
// model (the paper's Figure 2a look: a handful of plateaus).
type CS2PTraceConfig struct {
	// States are the capacity levels (bits/sec).
	States []float64
	// MeanDwell is the mean sojourn in one state (seconds).
	MeanDwell float64
	// Jitter is multiplicative noise std-dev around the state level.
	Jitter float64
}

// DefaultCS2PTraceConfig builds states around a mean rate.
func DefaultCS2PTraceConfig(meanRate float64) CS2PTraceConfig {
	return CS2PTraceConfig{
		States:    []float64{meanRate * 0.55, meanRate * 0.85, meanRate * 1.05, meanRate * 1.35},
		MeanDwell: 60,
		Jitter:    0.02,
	}
}

// GenCS2P synthesizes a discrete-state Markov trace.
func GenCS2P(rng *rand.Rand, cfg CS2PTraceConfig, duration float64) *Trace {
	n := max(1, int(math.Ceil(duration/traceInterval)))
	tr := &Trace{Interval: traceInterval, Rate: make([]float64, n)}
	state := rng.Intn(len(cfg.States))
	for i := 0; i < n; i++ {
		if rng.Float64() < traceInterval/cfg.MeanDwell {
			state = rng.Intn(len(cfg.States))
		}
		rate := cfg.States[state] * math.Exp(cfg.Jitter*rng.NormFloat64())
		if rate < 1e3 {
			rate = 1e3
		}
		tr.Rate[i] = rate
	}
	return tr
}
