package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"puffer/internal/abr"
	"puffer/internal/media"
)

// ProtoVersion is the wire protocol version the client speaks; the server
// accepts any version in [ProtoMinVersion, ProtoVersion]. Bump ProtoVersion
// on any change to message layouts; raise ProtoMinVersion only when a
// version can no longer be decoded.
//
// v1: the original handshake and Decide layouts.
// v2: Hello carries a trailing flags u16; a Decide frame may carry a
// trailing 16-byte trace extension (trace id u64, parent span id u64, both
// zero meaning untraced) joining the client and server halves of one traced
// decision. A v2 server decodes v1 frames unchanged, and a v2 client that
// traces nothing emits byte-identical v1 Decide payloads.
const (
	ProtoVersion    = 2
	ProtoMinVersion = 1
)

// helloFlagTracing marks a v2 session whose client samples decisions for
// tracing (informational: the server records spans for any Decide whose
// trace extension is nonzero).
const helloFlagTracing uint16 = 1 << 0

// decideExtLen is the size of the optional Decide trace extension.
const decideExtLen = 16

// Message types. One byte follows the length prefix of every frame.
const (
	msgHello    = 0x01 // client → server: open a session
	msgHelloOK  = 0x02 // server → client: session accepted
	msgDecide   = 0x03 // client → server: one ABR decision request
	msgDecideOK = 0x04 // server → client: the chosen ladder rung
	msgBye      = 0x05 // client → server: session finished cleanly
	msgByeOK    = 0x06 // server → client: close acknowledged
	msgError    = 0x07 // server → client: fatal protocol/plan error
)

// maxFrame bounds any frame's payload. A Decide carries at most
// HistoryLen records plus a LookAhead horizon with a ~10-rung ladder —
// a few kilobytes — so 1 MiB is a generous corruption guard.
const maxFrame = 1 << 20

// writeFrame emits one length-prefixed frame: u32 payload length (covering
// the type byte), the type byte, and the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame into buf (grown as needed), returning the type,
// the payload, and the possibly-grown buffer for reuse.
func readFrame(r io.Reader, buf []byte) (typ byte, payload, next []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, buf, fmt.Errorf("serve: frame length %d out of range", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// Append-style encoders. Floats travel as IEEE-754 bits, so every value
// round-trips bit-exactly — the byte-identity guarantee depends on it.

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int) []byte    { return appendU32(b, uint32(int32(v))) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// reader decodes a payload sequentially; the first short read poisons it.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *reader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

func (r *reader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *reader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

func (r *reader) i32() int     { return int(int32(r.u32())) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

// done returns the accumulated decode error, or complains about trailing
// bytes — a frame must be consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("serve: %d trailing bytes in frame", len(r.b))
	}
	return nil
}

// hello is the session-opening handshake. The plan hash pins the exact
// (spec, day) identity on both ends; day, seed, and sessions are redundant
// with it but make mismatch errors actionable.
type hello struct {
	Version  uint16
	Day      int
	Session  int
	Seed     int64
	Scheme   string
	PlanHash string
	Flags    uint16 // v2+: helloFlag* bits; absent (zero) at v1
}

func encodeHello(b []byte, h *hello) []byte {
	b = appendU16(b, h.Version)
	b = appendI32(b, h.Day)
	b = appendI32(b, h.Session)
	b = appendU64(b, uint64(h.Seed))
	b = appendStr(b, h.Scheme)
	b = appendStr(b, h.PlanHash)
	if h.Version >= 2 {
		b = appendU16(b, h.Flags)
	}
	return b
}

func decodeHello(payload []byte) (hello, error) {
	r := reader{b: payload}
	h := hello{
		Version:  r.u16(),
		Day:      r.i32(),
		Session:  r.i32(),
		Seed:     int64(r.u64()),
		Scheme:   r.str(),
		PlanHash: r.str(),
	}
	if h.Version >= 2 {
		h.Flags = r.u16()
	}
	return h, r.done()
}

// encodeDecide serializes one decision request: the session's virtual
// `now` plus the full abr.Observation (history, tcp_info snapshot, and the
// materialized encoding horizon). A nonzero traceID appends the v2 trace
// extension — the decision's trace id and the client's root span id — so
// the server's spans join the client's trace; traceID 0 emits a payload
// byte-identical to v1.
func encodeDecide(b []byte, now float64, obs *abr.Observation, traceID, parentSpan uint64) []byte {
	b = encodeDecideBody(b, now, obs)
	if traceID != 0 {
		b = appendU64(b, traceID)
		b = appendU64(b, parentSpan)
	}
	return b
}

func encodeDecideBody(b []byte, now float64, obs *abr.Observation) []byte {
	b = appendF64(b, now)
	b = appendI32(b, obs.ChunkIndex)
	b = appendF64(b, obs.Buffer)
	b = appendF64(b, obs.BufferCap)
	b = appendI32(b, obs.LastQuality)
	b = appendF64(b, obs.LastSSIM)
	b = append(b, byte(len(obs.History)))
	for _, h := range obs.History {
		b = appendF64(b, h.Size)
		b = appendF64(b, h.TransTime)
		b = appendF64(b, h.SSIMdB)
		b = appendI32(b, h.Quality)
	}
	b = appendF64(b, obs.TCP.CWND)
	b = appendF64(b, obs.TCP.InFlight)
	b = appendF64(b, obs.TCP.MinRTT)
	b = appendF64(b, obs.TCP.RTT)
	b = appendF64(b, obs.TCP.DeliveryRate)
	b = append(b, byte(len(obs.Horizon)))
	for _, c := range obs.Horizon {
		b = appendI32(b, c.Index)
		b = appendF64(b, c.Complexity)
		b = append(b, byte(len(c.Versions)))
		for _, v := range c.Versions {
			b = appendF64(b, v.Size)
			b = appendF64(b, v.SSIMdB)
		}
	}
	return b
}

// decodeDecide fills obs from a Decide payload, reusing obs's History and
// Horizon slices (one observation per session is live at a time, so the
// buffers amortize to zero allocations in steady state). The trailing v2
// trace extension is optional: exactly decideExtLen remaining bytes decode
// as (traceID, parentSpan), zero remaining means untraced (every v1 frame),
// any other remainder is a frame error.
func decodeDecide(payload []byte, obs *abr.Observation) (now float64, traceID, parentSpan uint64, err error) {
	r := reader{b: payload}
	now = r.f64()
	obs.ChunkIndex = r.i32()
	obs.Buffer = r.f64()
	obs.BufferCap = r.f64()
	obs.LastQuality = r.i32()
	obs.LastSSIM = r.f64()
	nh := int(r.u8())
	obs.History = obs.History[:0]
	for i := 0; i < nh && r.err == nil; i++ {
		obs.History = append(obs.History, abr.ChunkRecord{
			Size:      r.f64(),
			TransTime: r.f64(),
			SSIMdB:    r.f64(),
			Quality:   r.i32(),
		})
	}
	obs.TCP.CWND = r.f64()
	obs.TCP.InFlight = r.f64()
	obs.TCP.MinRTT = r.f64()
	obs.TCP.RTT = r.f64()
	obs.TCP.DeliveryRate = r.f64()
	nc := int(r.u8())
	if cap(obs.Horizon) < nc {
		obs.Horizon = make([]media.Chunk, 0, nc)
	}
	obs.Horizon = obs.Horizon[:0]
	for i := 0; i < nc && r.err == nil; i++ {
		c := media.Chunk{Index: r.i32(), Complexity: r.f64()}
		nv := int(r.u8())
		if i < len(obs.Horizon[:cap(obs.Horizon)]) {
			// Reuse the previous decode's Versions backing array.
			c.Versions = obs.Horizon[:cap(obs.Horizon)][i].Versions[:0]
		}
		for v := 0; v < nv && r.err == nil; v++ {
			c.Versions = append(c.Versions, media.Encoding{Size: r.f64(), SSIMdB: r.f64()})
		}
		obs.Horizon = append(obs.Horizon, c)
	}
	if r.err == nil && len(r.b) == decideExtLen {
		traceID = r.u64()
		parentSpan = r.u64()
	}
	return now, traceID, parentSpan, r.done()
}
