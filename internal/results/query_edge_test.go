package results

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"puffer/internal/experiment"
	"puffer/internal/stats"
)

// Edge-of-the-warehouse contracts: every query below either names its
// expected error or pins the exact empty-result shape — nothing panics,
// nothing silently invents rows.

func emptyIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQueryEmptyIndex(t *testing.T) {
	ix := emptyIndex(t)

	// Plain query: the default projection with zero rows.
	table, err := ix.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("empty index produced %d rows", len(table.Rows))
	}
	if len(table.Cols) != 2 || table.Cols[0] != "name" || table.Cols[1] != "hash" {
		t.Fatalf("default projection = %v, want [name hash]", table.Cols)
	}

	// Group-and-aggregate over nothing: the header row exists, the body is
	// empty, and no error is invented.
	table, err = ix.Query(Query{GroupBy: []string{"drift.preset"}, Agg: "mean", AggCol: "Fugu.stall_pct"})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("aggregate over an empty index produced %d rows", len(table.Rows))
	}
	if want := []string{"drift.preset", "mean(Fugu.stall_pct)"}; strings.Join(table.Cols, ",") != strings.Join(want, ",") {
		t.Fatalf("aggregate cols = %v, want %v", table.Cols, want)
	}

	// Per-day over nothing: same contract.
	table, err = ix.Query(Query{PerDay: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("per-day over an empty index produced %d rows", len(table.Rows))
	}
}

func TestQueryMissingFieldPredicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	with := fakeRecord(0)
	with.Spec = json.RawMessage(`{"seed":0,"drift":{"preset":"shift","mix":"fcc"}}`)
	without := fakeRecord(1)
	without.Spec = json.RawMessage(`{"seed":1,"drift":{"preset":"shift"}}`)
	appendAll(t, path, with, without)
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// A record that lacks the field never matches — equality...
	table, err := ix.Query(Query{Where: []Pred{{Field: "drift.mix", Op: "=", Value: "fcc"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0][1] != with.Hash {
		t.Fatalf("= on a partially-present field kept %v", table.Rows)
	}

	// ...and inequality alike: absence is not a value that differs.
	table, err = ix.Query(Query{Where: []Pred{{Field: "drift.mix", Op: "!=", Value: "cs2p"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0][1] != with.Hash {
		t.Fatalf("!= must still exclude records lacking the field, kept %v", table.Rows)
	}

	// A field no record has filters everything out, errorlessly.
	table, err = ix.Query(Query{Where: []Pred{{Field: "no.such.field", Op: "!=", Value: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("predicate on an unknown field kept %d rows", len(table.Rows))
	}
}

func TestGroupByZeroRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	appendAll(t, path, fakeRecord(0), fakeRecord(1))
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// A filter that matches nothing feeding a group-by: empty body, stable
	// header, no error.
	table, err := ix.Query(Query{
		Where:   []Pred{{Field: "seed", Op: ">", Value: "1000"}},
		GroupBy: []string{"drift.preset"},
		Agg:     "mean",
		AggCol:  "Fugu.stall_pct",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("group-by over zero rows produced %d rows", len(table.Rows))
	}

	// Aggregating a column no kept row carries: the group exists (count of
	// members), its aggregate cell is empty — absence, not zero.
	table, err = ix.Query(Query{GroupBy: []string{"drift.preset"}, Agg: "mean", AggCol: "no.such.col"})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0][1] != "" {
		t.Fatalf("mean over an absent column = %v, want one group with an empty cell", table.Rows)
	}

	// Named error contracts.
	if _, err := ix.Query(Query{GroupBy: []string{"name"}, Agg: "median", AggCol: "seed"}); err == nil ||
		!strings.Contains(err.Error(), "unknown aggregate") {
		t.Fatalf("unknown aggregate error = %v", err)
	}
	if _, err := ix.Query(Query{GroupBy: []string{"name"}, Agg: "mean"}); err == nil ||
		!strings.Contains(err.Error(), "needs a column") {
		t.Fatalf("aggregate without column error = %v", err)
	}
}

func TestPerDayWithoutFrozenArm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.jsonl")
	// A run without the ablation (no frozen companion) records no gap
	// table at all.
	bare := &Record{
		Hash: "hash-bare", GuardHash: "guard-bare", Name: "no-ablation",
		Spec: json.RawMessage(`{"seed":3}`),
		Outcome: Outcome{Total: []experiment.SchemeStats{{
			Name: "Fugu", Considered: 5,
			StallRatio: stats.Interval{Point: 0.01}, SSIM: stats.Interval{Point: 15},
		}}},
	}
	withGaps := fakeRecord(1)
	appendAll(t, path, bare, withGaps)
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Alone, the bare record yields the empty per-day result...
	table, err := ix.Query(Query{PerDay: true, Where: []Pred{{Field: "hash", Op: "=", Value: "hash-bare"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("per-day over a gapless record produced %v", table.Rows)
	}

	// ...and mixed in, it contributes nothing while the ablated run's days
	// all appear. fakeRecord writes two gap rows; a bootstrap day's row is
	// Present=false and must survive the explosion too.
	table, err = ix.Query(Query{PerDay: true, Cols: []string{"hash", "day", "present", "gap_pp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(withGaps.Outcome.Gaps) {
		t.Fatalf("per-day rows = %d, want %d (bare record must add none)",
			len(table.Rows), len(withGaps.Outcome.Gaps))
	}
	for _, row := range table.Rows {
		if row[0] != withGaps.Hash {
			t.Fatalf("per-day row from unexpected record: %v", row)
		}
	}
	if table.Rows[0][2] != "true" {
		t.Fatalf("present column lost: %v", table.Rows[0])
	}
}
