// Package sweep turns one declarative grid description into many concrete
// experiments and runs exactly the ones the results warehouse is missing.
//
// The paper's year-long study is really a sweep: many (scheme x
// network-condition x day) cells aggregated into one analysis. A
// sweep.Spec names a base scenario (a registered name or an inline
// scenario.Spec) plus axes over spec fields — grid axes enumerate values,
// random axes draw a reproducible sample per (sweep seed, axis field) —
// and Expand lowers it deterministically into fully-defaulted
// scenario.Specs, each content-addressed by its canonical hash. Axis
// fields are the spec's own JSON paths ("drift.preset", "engine.kind",
// "seed", ...), applied through the scenario parser's strict decoding, so
// a typo'd field fails loudly instead of silently sweeping nothing.
//
// Execute runs the expansion against a results index: cells whose hash is
// already present are skipped (re-launching a partial sweep resumes only
// the missing cells), the rest run across a bounded worker pool — cells
// sharing a checkpoint GuardHash are serialized onto one worker so they
// can share one checkpoint directory (and therefore resume each other's
// completed days) without racing — and finished records append to the
// index in expansion order, so an interrupted sweep resumed to completion
// produces an index with the same CanonicalBytes as an uninterrupted one.
//
// The executor is generic over a CellRunner: InProcess runs cells in this
// process (figures, tests, library callers); cmd/puffer-sweep supplies a
// subprocess runner that re-execs itself per cell for isolation and
// multi-process parallelism.
package sweep
