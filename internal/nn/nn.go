package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully-connected multi-layer perceptron. Hidden layers use ReLU;
// the output layer is linear (interpret the outputs as logits for
// classification or as raw values for regression).
//
// Fields are exported for gob serialization; treat them as read-only outside
// this package. Do not reassign the W or B slices: they alias a single
// contiguous parameter slab (cache-friendly for the batched kernel), and
// replacing a slice header silently detaches it from the slab.
type MLP struct {
	// Sizes holds the layer widths, input first. A net with no hidden
	// layers (len(Sizes) == 2) is an affine model — the "linear
	// regression" ablation in the paper is exactly this.
	Sizes []int
	// W[l] is the weight matrix of layer l, row-major with shape
	// Sizes[l+1] x Sizes[l].
	W [][]float64
	// B[l] is the bias vector of layer l, length Sizes[l+1].
	B [][]float64

	// flat is the contiguous backing array that W and B alias, laid out
	// layer by layer as W[0] B[0] W[1] B[1] ... so a forward pass walks
	// memory monotonically. Nil for models built by hand or decoded from
	// gob until pack() runs; everything still works, just less local.
	flat []float64
}

// NewMLP constructs an MLP with He-initialized weights and zero biases.
// sizes must have at least two entries (input and output width).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs at least input and output sizes, got %v", sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: NewMLP layer sizes must be positive, got %v", sizes))
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	m.alloc()
	for l := 0; l < len(sizes)-1; l++ {
		// He initialization suits ReLU hidden layers and is harmless
		// for the linear output layer.
		std := math.Sqrt(2.0 / float64(sizes[l]))
		for i := range m.W[l] {
			m.W[l][i] = rng.NormFloat64() * std
		}
	}
	return m
}

// alloc builds the parameter slab for m.Sizes and points W/B into it.
func (m *MLP) alloc() {
	layers := len(m.Sizes) - 1
	total := 0
	for l := 0; l < layers; l++ {
		total += m.Sizes[l+1]*m.Sizes[l] + m.Sizes[l+1]
	}
	m.flat = make([]float64, total)
	m.W = make([][]float64, layers)
	m.B = make([][]float64, layers)
	at := 0
	for l := 0; l < layers; l++ {
		nw := m.Sizes[l+1] * m.Sizes[l]
		m.W[l] = m.flat[at : at+nw : at+nw]
		at += nw
		nb := m.Sizes[l+1]
		m.B[l] = m.flat[at : at+nb : at+nb]
		at += nb
	}
}

// pack re-homes the parameters of a model whose W/B slices were allocated
// separately (e.g. by gob decoding) into one contiguous slab. Values are
// preserved exactly.
func (m *MLP) pack() {
	w, b := m.W, m.B
	m.alloc()
	for l := range w {
		copy(m.W[l], w[l])
		copy(m.B[l], b[l])
	}
}

// SameShape reports whether m and o have identical layer sizes (and can
// therefore share workspaces).
func (m *MLP) SameShape(o *MLP) bool { return sameSizes(m.Sizes, o.Sizes) }

// Pack re-homes the parameters into the contiguous slab layout. Call it
// after gob-decoding an MLP directly (rather than through Load) to restore
// the cache-friendly layout; values are preserved exactly.
func (m *MLP) Pack() { m.pack() }

// NumLayers returns the number of weight layers (len(Sizes)-1).
func (m *MLP) NumLayers() int { return len(m.Sizes) - 1 }

// InputSize returns the expected input vector length.
func (m *MLP) InputSize() int { return m.Sizes[0] }

// OutputSize returns the output vector length.
func (m *MLP) OutputSize() int { return m.Sizes[len(m.Sizes)-1] }

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// Clone returns a deep copy of the network. Used to warm-start retraining
// from yesterday's model, as the paper does.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	c.alloc()
	for l := range m.W {
		copy(c.W[l], m.W[l])
		copy(c.B[l], m.B[l])
	}
	return c
}

// Workspace holds preallocated activation buffers so that repeated forward
// (and backward) passes do not allocate. A Workspace is tied to the layer
// sizes of the MLP that created it and is not safe for concurrent use.
type Workspace struct {
	sizes []int
	// acts[0] aliases nothing (input copied in); acts[l] is the
	// post-activation output of layer l-1.
	acts [][]float64
	// zs[l] is the pre-activation of layer l (length Sizes[l+1]).
	zs [][]float64
	// deltas[l] is dLoss/dz for layer l during backprop.
	deltas [][]float64
}

// NewWorkspace allocates a Workspace matching the network's layer sizes.
func (m *MLP) NewWorkspace() *Workspace {
	ws := &Workspace{sizes: m.Sizes}
	ws.acts = make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		ws.acts[i] = make([]float64, s)
	}
	ws.zs = make([][]float64, m.NumLayers())
	ws.deltas = make([][]float64, m.NumLayers())
	for l := 0; l < m.NumLayers(); l++ {
		ws.zs[l] = make([]float64, m.Sizes[l+1])
		ws.deltas[l] = make([]float64, m.Sizes[l+1])
	}
	return ws
}

// compatible reports whether ws was created for a net with the same shape.
func (ws *Workspace) compatible(m *MLP) bool {
	return sameSizes(ws.sizes, m.Sizes)
}

func sameSizes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ForwardInto runs a forward pass using ws's buffers and returns the output
// logits. The returned slice aliases the workspace and is valid until the
// next ForwardInto call on the same workspace. It is a thin wrapper over the
// batched kernel at batch size 1, so scalar and batched results are bitwise
// identical.
func (m *MLP) ForwardInto(ws *Workspace, x []float64) []float64 {
	if len(x) != m.InputSize() {
		panic(fmt.Sprintf("nn: input length %d, want %d", len(x), m.InputSize()))
	}
	if !ws.compatible(m) {
		panic("nn: workspace shape does not match network")
	}
	copy(ws.acts[0], x)
	last := m.NumLayers() - 1
	for l := 0; l <= last; l++ {
		z := ws.zs[l]
		affineBatch(z, ws.acts[l], m.W[l], m.B[l], 1, m.Sizes[l], m.Sizes[l+1])
		out := ws.acts[l+1]
		if l == last {
			copy(out, z)
		} else {
			for i, v := range z {
				if v > 0 {
					out[i] = v
				} else {
					out[i] = 0
				}
			}
		}
	}
	return ws.acts[len(ws.acts)-1]
}

// Forward runs a forward pass, allocating a fresh output slice. Convenient
// for tests and cold paths; hot paths should use ForwardInto.
func (m *MLP) Forward(x []float64) []float64 {
	ws := m.NewWorkspace()
	out := m.ForwardInto(ws, x)
	return append([]float64(nil), out...)
}

// PredictDist runs a forward pass and softmaxes the logits into dst,
// returning a probability distribution over the output classes. dst must
// have length OutputSize; if nil, a new slice is allocated.
func (m *MLP) PredictDist(ws *Workspace, x []float64, dst []float64) []float64 {
	logits := m.ForwardInto(ws, x)
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	Softmax(dst, logits)
	return dst
}

// BatchWorkspace holds flat row-major activation matrices for batched
// forward passes. One workspace can be shared by any number of networks with
// identical layer sizes (the TTP's per-horizon nets, for instance), as long
// as calls are sequential: it is not safe for concurrent use. The workspace
// grows to the largest batch it has seen and never allocates afterwards.
type BatchWorkspace struct {
	sizes []int
	rows  int
	// acts[l] is the rows × Sizes[l+1] output matrix of layer l.
	acts [][]float64
}

// NewBatchWorkspace allocates a batch workspace for this network's shape
// with capacity for maxRows samples per call. Passing a larger batch later
// grows the workspace (one-time reallocation).
func (m *MLP) NewBatchWorkspace(maxRows int) *BatchWorkspace {
	if maxRows < 1 {
		maxRows = 1
	}
	ws := &BatchWorkspace{sizes: m.Sizes}
	ws.grow(maxRows)
	return ws
}

func (ws *BatchWorkspace) grow(rows int) {
	ws.rows = rows
	ws.acts = make([][]float64, len(ws.sizes)-1)
	for l := range ws.acts {
		ws.acts[l] = make([]float64, rows*ws.sizes[l+1])
	}
}

// ensure validates the workspace against m and guarantees room for rows.
func (ws *BatchWorkspace) ensure(m *MLP, rows int) {
	if !sameSizes(ws.sizes, m.Sizes) {
		panic("nn: batch workspace shape does not match network")
	}
	if rows > ws.rows {
		ws.grow(rows)
	}
}

// ForwardBatchInto runs rows samples through the network in one pass per
// layer. xs is the rows × InputSize input matrix, row-major and flat; it is
// read but not copied or modified. The returned rows × OutputSize logit
// matrix aliases the workspace and is valid until the next batched call on
// the same workspace. Row r of the result is bitwise identical to
// ForwardInto on row r alone.
func (m *MLP) ForwardBatchInto(ws *BatchWorkspace, xs []float64, rows int) []float64 {
	if rows <= 0 {
		panic(fmt.Sprintf("nn: ForwardBatchInto rows = %d, want >= 1", rows))
	}
	if len(xs) != rows*m.InputSize() {
		panic(fmt.Sprintf("nn: batch input length %d, want %d rows x %d", len(xs), rows, m.InputSize()))
	}
	ws.ensure(m, rows)
	in := xs
	last := m.NumLayers() - 1
	for l := 0; l <= last; l++ {
		out := ws.acts[l][:rows*m.Sizes[l+1]]
		affineBatch(out, in, m.W[l], m.B[l], rows, m.Sizes[l], m.Sizes[l+1])
		if l != last {
			reluInPlace(out)
		}
		in = out
	}
	return in
}

// PredictDistBatch runs a batched forward pass and softmaxes each row of
// logits into dst, a rows × OutputSize row-major matrix (allocated when
// nil). Row r equals PredictDist on sample r exactly.
func (m *MLP) PredictDistBatch(ws *BatchWorkspace, xs []float64, rows int, dst []float64) []float64 {
	logits := m.ForwardBatchInto(ws, xs, rows)
	nOut := m.OutputSize()
	if dst == nil {
		dst = make([]float64, rows*nOut)
	}
	if len(dst) != rows*nOut {
		panic(fmt.Sprintf("nn: batch dist length %d, want %d rows x %d", len(dst), rows, nOut))
	}
	for r := 0; r < rows; r++ {
		Softmax(dst[r*nOut:(r+1)*nOut], logits[r*nOut:(r+1)*nOut])
	}
	return dst
}
