package figures

import (
	"io"

	"puffer/internal/scenario"
)

// FigDriftRow is one day of the nonstationary staleness experiment: the
// Fugu arm's stall ratio under daily retraining and under the frozen day-0
// model, on seed-paired sessions.
type FigDriftRow struct {
	Day               int
	RetrainedStallPct float64
	FrozenStallPct    float64
	// GapPP is frozen minus retrained, in percentage points.
	GapPP float64
	// Drift describes the day's distribution shift.
	Drift string
}

// figDriftSpec is the figure's experiment, declared as a spec so its hash
// keys the results warehouse: the same staleness ablation the paper ran in
// its (stationary) deployment, but under the "shift" drift preset.
func (s *Suite) figDriftSpec() scenario.Spec {
	sessions := s.Scale / 4
	if sessions < 48 {
		sessions = 48
	}
	spec := scenario.New(
		scenario.Days(4),
		scenario.Sessions(sessions),
		scenario.Window(0),
		scenario.Seed(s.Seed+600),
		scenario.Epochs(6),
		scenario.Drift("shift"),
	)
	spec.Name = "fig-drift"
	return spec
}

// FigDrift runs (or reads back) the drift extension of §4.6: the staleness
// ablation in a deployment whose path population shifts under the model
// (the "shift" preset: the slow-path share grows daily and deep outages
// ramp). In situ retraining tracks the moving distribution; the frozen
// model falls behind at an accelerating rate — the separation the paper's
// Figure-9-style drift argument predicts emulation-or-stale training
// cannot avoid. With Suite.Results set, a populated index answers this
// figure without launching a single run: the record's precomputed per-day
// gap rows are the table.
func (s *Suite) FigDrift(w io.Writer) ([]FigDriftRow, error) {
	if s.drift == nil {
		spec := s.figDriftSpec().WithDefaults()
		sched, err := spec.Schedule()
		if err != nil {
			return nil, err
		}
		s.Logf("drift staleness experiment (%d days x %d sessions, both arms)...",
			spec.Daily.Days, spec.Daily.Sessions)
		rec, err := s.scenarioRecord(spec)
		if err != nil {
			return nil, err
		}

		rows := make([]FigDriftRow, 0, len(rec.Outcome.Gaps))
		for _, g := range rec.Outcome.Gaps {
			if !g.Present {
				continue
			}
			rows = append(rows, FigDriftRow{
				Day:               g.Day,
				RetrainedStallPct: 100 * g.Retrained,
				FrozenStallPct:    100 * g.Frozen,
				GapPP:             100 * g.Gap,
				Drift:             sched.Describe(g.Day),
			})
		}
		s.drift = rows
	}

	var werr error
	line(w, &werr, "Drift: staleness ablation in a nonstationary deployment (preset \"shift\")\n")
	line(w, &werr, "%-4s %12s %12s %9s  %s\n", "Day", "Retrained%", "Frozen%", "Gap pp", "Drift")
	for _, r := range s.drift {
		line(w, &werr, "%-4d %11.3f%% %11.3f%% %+9.3f  %s\n",
			r.Day, r.RetrainedStallPct, r.FrozenStallPct, r.GapPP, r.Drift)
	}
	line(w, &werr, "Day 1 is identical by construction (both arms serve the day-0 model);\nfrom day 2 the frozen model meets paths its training data never contained.\n")
	return s.drift, werr
}
