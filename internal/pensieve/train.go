package pensieve

import (
	"math"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/media"
	"puffer/internal/netem"
	"puffer/internal/nn"
	"puffer/internal/player"
	"puffer/internal/tcpsim"
)

// TrainConfig controls RL training.
type TrainConfig struct {
	Episodes     int     // training episodes (each one simulated stream)
	ChunksPerEp  int     // chunks per episode (paper: long-running videos)
	LR           float64 // Adam learning rate for both nets
	Gamma        float64 // discount factor
	EntropyStart float64 // entropy bonus at episode 0...
	EntropyEnd   float64 // ...annealed linearly to this
	Seed         int64
	QoE          QoEWeights
	// Paths is the training trace family (the emulation methodology uses
	// FCC-like paths). Nil means netem.FCCPaths{}.
	Paths netem.Sampler
	// Clip is the training video (nil = a fixed 10-minute NBC-like clip,
	// mirroring the paper's emulation setup).
	Clip *media.Clip
}

// DefaultTrainConfig mirrors the tuned multi-video training the paper
// deployed (entropy annealing per the Pensieve authors' advice).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Episodes:     2500,
		ChunksPerEp:  150,
		LR:           1e-3,
		Gamma:        0.95,
		EntropyStart: 0.25,
		EntropyEnd:   0.01,
		QoE:          DefaultQoE(),
	}
}

// packedRollout selects the packed (SIMD) snapshot for episode rollouts.
// It exists only so the differential test can force the portable ForwardInto
// path and assert the trained weights are bitwise identical either way.
var packedRollout = true

// TrainResult reports training diagnostics.
type TrainResult struct {
	// MeanReward is the (undiscounted) per-chunk mean reward of the final
	// tenth of training episodes.
	MeanReward float64
	Episodes   int
}

// Train trains a Pensieve policy in the chunk-level emulation simulator and
// returns a deployable Agent.
func Train(cfg TrainConfig) (*Agent, TrainResult) {
	if cfg.Episodes <= 0 {
		cfg.Episodes = 800
	}
	if cfg.ChunksPerEp <= 0 {
		cfg.ChunksPerEp = 150
	}
	if cfg.LR <= 0 {
		cfg.LR = 2.5e-4
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 0.99
	}
	if cfg.Paths == nil {
		// The FCC/Norway traces Pensieve trained on rarely exceed a few
		// Mbit/s; its policy never learns what to do with a fat pipe.
		cfg.Paths = netem.FCCPaths{MaxRate: 8e6}
	}
	if cfg.Clip == nil {
		nbc, _ := media.FindProfile("nbc")
		cfg.Clip = media.RecordClip(nbc, 600, 600)
	}
	if cfg.QoE.RebufPenalty == 0 {
		cfg.QoE = DefaultQoE()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	policy := NewUntrainedPolicy(rng)
	polTr := nn.NewTrainer(policy, &nn.Adam{LR: cfg.LR})

	polWS := policy.NewWorkspace()
	rollWS := policy.NewBatchWorkspace(1)
	probs := make([]float64, NumActions)

	// Per-position return baseline (EMA across episodes). A learned value
	// net cannot express position-dependent returns here because the
	// live-stream state carries no horizon countdown; the positional
	// baseline removes that bias exactly.
	baseline := make([]float64, cfg.ChunksPerEp)
	baseSeen := make([]bool, cfg.ChunksPerEp)

	states := make([][]float64, 0, cfg.ChunksPerEp)
	actions := make([]int, 0, cfg.ChunksPerEp)
	rewards := make([]float64, 0, cfg.ChunksPerEp)

	var tailReward float64
	var tailChunks int
	tailStart := cfg.Episodes * 9 / 10

	for ep := 0; ep < cfg.Episodes; ep++ {
		states, actions, rewards = states[:0], actions[:0], rewards[:0]
		frac := float64(ep) / float64(cfg.Episodes)
		entropy := cfg.EntropyStart + (cfg.EntropyEnd-cfg.EntropyStart)*frac

		// The policy is constant within an episode (the optimizer steps
		// between episodes), so each rollout serves from a packed (SIMD)
		// snapshot of it — bitwise identical to ForwardInto, which the
		// portable fallback below runs (and the differential test pins).
		var snapshot *nn.PackedMLP
		if packedRollout {
			snapshot = policy.NewPacked()
		}

		runEpisode(cfg, rng, func(obs *abr.Observation) int {
			s := make([]float64, StateDim)
			assembleState(s, obs)
			var logits []float64
			if snapshot != nil {
				logits = snapshot.ForwardBatchInto(rollWS, s, 1)
			} else {
				logits = policy.ForwardInto(polWS, s)
			}
			nn.Softmax(probs, logits)
			a := sample(rng, probs)
			states = append(states, s)
			actions = append(actions, a)
			return a
		}, func(r float64) {
			rewards = append(rewards, r)
		})

		if len(states) == 0 {
			continue
		}
		// Discounted returns and value-baseline advantages.
		returns := make([]float64, len(rewards))
		acc := 0.0
		for i := len(rewards) - 1; i >= 0; i-- {
			acc = rewards[i] + cfg.Gamma*acc
			returns[i] = acc
		}
		advantages := make([]float64, len(returns))
		for i, r := range returns {
			if !baseSeen[i] {
				baseline[i] = r
				baseSeen[i] = true
			}
			advantages[i] = r - baseline[i]
			baseline[i] = 0.9*baseline[i] + 0.1*r
		}
		standardize(advantages)
		polTr.PolicyGradStep(states, actions, advantages, entropy)

		if ep >= tailStart {
			for _, r := range rewards {
				tailReward += r
			}
			tailChunks += len(rewards)
		}
	}

	res := TrainResult{Episodes: cfg.Episodes}
	if tailChunks > 0 {
		res.MeanReward = tailReward / float64(tailChunks)
	}
	return NewAgent(policy), res
}

// runEpisode simulates one training stream chunk-by-chunk, calling choose
// for each decision and reward with each chunk's QoE.
func runEpisode(cfg TrainConfig, rng *rand.Rand, choose func(*abr.Observation) int, reward func(float64)) {
	path := cfg.Paths.Sample(rng, 700)
	conn := tcpsim.Dial(path, rng, 0)
	buf := &player.Buffer{Cap: player.DefaultBufferCap}
	src := cfg.Clip
	at := rng.Intn(len(src.Chunks))

	horizon := make([]media.Chunk, 5)
	for i := range horizon {
		horizon[i] = src.At(at + i)
	}
	history := make([]abr.ChunkRecord, 0, HistLen)
	lastQuality := -1
	lastBitrate := -1.0

	for chunk := 0; chunk < cfg.ChunksPerEp; chunk++ {
		obs := abr.Observation{
			ChunkIndex:  chunk,
			Buffer:      buf.Level(),
			BufferCap:   buf.Cap,
			LastQuality: lastQuality,
			History:     history,
			TCP:         conn.Info(),
			Horizon:     horizon,
		}
		q := choose(&obs)
		enc := horizon[0].Versions[q]
		elapsed, completed := conn.TransferUpTo(enc.Size, 60)
		if !completed {
			// A hopeless transfer: huge penalty and end the episode
			// (the RL env's terminal condition).
			reward(cfg.QoE.Reward(enc, lastBitrate, 60))
			return
		}
		stall := buf.CompleteChunk(elapsed, media.ChunkDuration)
		if !buf.Playing() {
			buf.StartPlayback(elapsed)
		}
		reward(cfg.QoE.Reward(enc, lastBitrate, stall))

		history = append(history, abr.ChunkRecord{Size: enc.Size, TransTime: elapsed, Quality: q})
		if len(history) > HistLen {
			history = history[1:]
		}
		lastQuality = q
		lastBitrate = enc.Bitrate()
		at++
		for i := range horizon {
			horizon[i] = src.At(at + i)
		}
		if wait := buf.RoomWait(media.ChunkDuration); wait > 0 {
			conn.Wait(wait)
			buf.Drain(wait)
		}
	}
}

// standardize rescales advantages to zero mean and unit variance within an
// episode, taming REINFORCE's variance when the value baseline lags the
// return scale.
func standardize(xs []float64) {
	if len(xs) < 2 {
		return
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	if variance < 1e-12 {
		return
	}
	inv := 1 / sqrt(variance)
	for i := range xs {
		xs[i] = (xs[i] - mean) * inv
	}
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// sample draws an index from a probability distribution.
func sample(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
