package core

import "math/rand"

// Variant names the Figure 7 ablation axes.
type Variant string

const (
	// VariantFull is the complete TTP.
	VariantFull Variant = "Full TTP"
	// VariantPointEstimate collapses the output to its argmax
	// ("Point Estimate" in Figure 7).
	VariantPointEstimate Variant = "Point Estimate"
	// VariantThroughput predicts throughput regardless of chunk size
	// ("Throughput Predictor" in Figure 7).
	VariantThroughput Variant = "Throughput Predictor"
	// VariantLinear replaces the DNN with a single affine layer
	// ("Linear" in Figure 7).
	VariantLinear Variant = "Linear"
	// VariantNoTCPInfo removes the tcp_info inputs.
	VariantNoTCPInfo Variant = "No tcp_info"
	// VariantShortHistory shrinks the history from 8 chunks to 2.
	VariantShortHistory Variant = "History of 2"
)

// AllVariants lists the Figure 7 rows in presentation order.
func AllVariants() []Variant {
	return []Variant{
		VariantFull, VariantPointEstimate, VariantThroughput,
		VariantLinear, VariantNoTCPInfo, VariantShortHistory,
	}
}

// NewVariantTTP constructs the untrained TTP for an ablation variant. The
// point-estimate variant shares the full TTP's architecture (the collapse
// happens at prediction time via ModePointEstimate).
func NewVariantTTP(rng *rand.Rand, v Variant, horizon int) *TTP {
	cfg := DefaultFeatures()
	hidden := DefaultHidden
	kind := KindTransTime
	switch v {
	case VariantFull, VariantPointEstimate:
	case VariantThroughput:
		cfg.UseProposedSize = false
		kind = KindThroughput
	case VariantLinear:
		hidden = []int{}
	case VariantNoTCPInfo:
		cfg.UseTCPInfo = false
	case VariantShortHistory:
		cfg.HistLen = 2
	default:
		panic("core: unknown TTP variant " + string(v))
	}
	return NewTTP(rng, horizon, hidden, cfg, kind)
}

// VariantMode returns the prediction mode a variant uses in the controller.
func VariantMode(v Variant) Mode {
	if v == VariantPointEstimate {
		return ModePointEstimate
	}
	return ModeProbabilistic
}
