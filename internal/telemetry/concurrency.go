package telemetry

import "sort"

// ConcurrencyPoint is one step of a right-continuous step function counting
// concurrently active sessions: at Time, the count becomes Active.
type ConcurrencyPoint struct {
	Time   float64
	Active int
}

// ConcurrencySeries is the occupancy record of a serving engine: how many
// sessions were live at every instant of virtual time. It is built from
// per-session [start, end) intervals, so it is deterministic for a
// deterministic workload regardless of scheduling.
type ConcurrencySeries struct {
	Points []ConcurrencyPoint
}

// NewConcurrencySeries builds the step function from per-session start and
// end times (parallel slices; end < start is treated as an empty interval).
func NewConcurrencySeries(starts, ends []float64) ConcurrencySeries {
	type event struct {
		t     float64
		delta int
	}
	evs := make([]event, 0, 2*len(starts))
	for i, s := range starts {
		if i >= len(ends) || ends[i] < s {
			continue
		}
		evs = append(evs, event{s, +1}, event{ends[i], -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		// Departures before arrivals at the same instant, so a
		// back-to-back handoff does not double-count.
		return evs[i].delta < evs[j].delta
	})
	var ser ConcurrencySeries
	active := 0
	for i, e := range evs {
		active += e.delta
		if i+1 < len(evs) && evs[i+1].t == e.t {
			continue
		}
		ser.Points = append(ser.Points, ConcurrencyPoint{Time: e.t, Active: active})
	}
	return ser
}

// Peak returns the maximum concurrent session count.
func (s *ConcurrencySeries) Peak() int {
	peak := 0
	for _, p := range s.Points {
		if p.Active > peak {
			peak = p.Active
		}
	}
	return peak
}

// Mean returns the time-weighted mean concurrency over the series' span
// (zero for an empty or instantaneous series).
func (s *ConcurrencySeries) Mean() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	span := s.Points[len(s.Points)-1].Time - s.Points[0].Time
	if span <= 0 {
		return 0
	}
	area := 0.0
	for i := 0; i+1 < len(s.Points); i++ {
		area += float64(s.Points[i].Active) * (s.Points[i+1].Time - s.Points[i].Time)
	}
	return area / span
}

// At returns the active count at time t (0 before the first event).
func (s *ConcurrencySeries) At(t float64) int {
	lo, hi := 0, len(s.Points)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Points[mid].Time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.Points[lo-1].Active
}

// Sample downsamples the series to a fixed step for tables and plots: one
// point per dt of virtual time across the span, each carrying the count in
// effect at that instant.
func (s *ConcurrencySeries) Sample(dt float64) []ConcurrencyPoint {
	if len(s.Points) == 0 || dt <= 0 {
		return nil
	}
	t0 := s.Points[0].Time
	t1 := s.Points[len(s.Points)-1].Time
	var out []ConcurrencyPoint
	for t := t0; t <= t1; t += dt {
		out = append(out, ConcurrencyPoint{Time: t, Active: s.At(t)})
	}
	return out
}
