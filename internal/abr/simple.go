package abr

import "math"

// BBA is buffer-based control (Huang et al.), configured as on Puffer: the
// original paper's reservoir formula scaled to a 15-second maximum buffer,
// choosing the highest-SSIM version whose actual bitrate fits under the
// buffer-dependent rate limit ("+SSIM s.t. bitrate < limit").
type BBA struct {
	// Reservoir is the lower buffer threshold below which BBA requests
	// the minimum rate (seconds).
	Reservoir float64
	// Cushion is the buffer span over which the rate limit ramps from
	// minimum to maximum (seconds).
	Cushion float64
}

// NewBBA returns BBA with reservoir values consistent with a 15-second
// maximum buffer, as in the paper's §3.3 (25% reservoir, ramp to 90%).
func NewBBA() *BBA {
	return &BBA{Reservoir: 2.5, Cushion: 8.5}
}

// Name implements Algorithm.
func (b *BBA) Name() string { return "BBA" }

// Reset implements Algorithm.
func (b *BBA) Reset() {}

// Choose implements Algorithm.
func (b *BBA) Choose(obs *Observation) int {
	chunk := obs.Horizon[0]
	nQ := len(chunk.Versions)
	rMin := chunk.Versions[0].Bitrate()
	rMax := chunk.Versions[nQ-1].Bitrate()

	var limit float64
	switch {
	case obs.Buffer <= b.Reservoir:
		limit = rMin
	case obs.Buffer >= b.Reservoir+b.Cushion:
		limit = rMax
	default:
		limit = rMin + (rMax-rMin)*(obs.Buffer-b.Reservoir)/b.Cushion
	}

	best := 0
	for q := 0; q < nQ; q++ {
		if chunk.Versions[q].Bitrate() <= limit {
			// Versions are SSIM-monotone in rung, so the highest
			// fitting rung maximizes SSIM.
			best = q
		}
	}
	return best
}

// RateBased is the classic throughput-matching baseline: an EWMA of observed
// throughput with a safety factor, picking the top version that fits.
type RateBased struct {
	// Safety discounts the estimate (default 0.8).
	Safety float64
	// Alpha is the EWMA weight of the newest sample (default 0.4).
	Alpha float64

	est float64
}

// NewRateBased returns the baseline with conventional parameters.
func NewRateBased() *RateBased { return &RateBased{Safety: 0.8, Alpha: 0.4} }

// Name implements Algorithm.
func (r *RateBased) Name() string { return "RateBased" }

// Reset implements Algorithm.
func (r *RateBased) Reset() { r.est = 0 }

// Choose implements Algorithm.
func (r *RateBased) Choose(obs *Observation) int {
	if n := len(obs.History); n > 0 {
		s := obs.History[n-1].Throughput()
		if s > 0 {
			if r.est == 0 {
				r.est = s
			} else {
				r.est = r.Alpha*s + (1-r.Alpha)*r.est
			}
		}
	}
	if r.est == 0 {
		return 0
	}
	chunk := obs.Horizon[0]
	limit := r.Safety * r.est
	best := 0
	for q, v := range chunk.Versions {
		if v.Bitrate() <= limit {
			best = q
		}
	}
	return best
}

// BOLA is the Lyapunov-based buffer scheme (Spiteri et al.), adapted to the
// SSIM utilities used throughout this study. It maximizes
// (V·(u_q + gp) − B)/S_q, a related-work baseline the paper cites.
type BOLA struct {
	// GP is the gamma-p hyperparameter in utility units (dB).
	GP float64
	// TargetBuffer is the buffer level (seconds) at which the top rung
	// becomes optimal on typical content; V is derived from it.
	TargetBuffer float64
}

// NewBOLA returns BOLA tuned for the 15-second Puffer buffer.
func NewBOLA() *BOLA { return &BOLA{GP: 5, TargetBuffer: 13} }

// Name implements Algorithm.
func (b *BOLA) Name() string { return "BOLA" }

// Reset implements Algorithm.
func (b *BOLA) Reset() {}

// Choose implements Algorithm.
func (b *BOLA) Choose(obs *Observation) int {
	chunk := obs.Horizon[0]
	nQ := len(chunk.Versions)
	uMin := chunk.Versions[0].SSIMdB
	uMax := chunk.Versions[nQ-1].SSIMdB
	// Calibrate V so the top version's score crosses the others at
	// TargetBuffer: V·(uMax−uMin+gp) = TargetBuffer.
	denom := uMax - uMin + b.GP
	if denom <= 0 {
		return 0
	}
	v := b.TargetBuffer / denom
	// Above the target buffer every score is negative; a DASH player
	// would pause downloads there. Puffer's server keeps sending while
	// the client has room, so saturate at the top rung instead.
	if obs.Buffer >= b.TargetBuffer {
		return nQ - 1
	}
	best, bestScore := 0, math.Inf(-1)
	for q := 0; q < nQ; q++ {
		enc := chunk.Versions[q]
		score := (v*(enc.SSIMdB-uMin+b.GP) - obs.Buffer) / enc.Size
		if score > bestScore {
			best, bestScore = q, score
		}
	}
	return best
}
