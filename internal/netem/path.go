package netem

import (
	"math"
	"math/rand"
)

// Path is one client's network situation for the lifetime of a session: a
// bottleneck capacity trace plus propagation delay and a queueing
// characteristic.
type Path struct {
	Trace *Trace
	// BaseRTT is the two-way propagation delay with empty queues
	// (seconds).
	BaseRTT float64
	// QueueCapacity is the bottleneck buffer size expressed in seconds of
	// drain time at the current capacity (a "1.0" buffer holds one
	// capacity-second of bytes). Determines worst-case bufferbloat.
	QueueCapacity float64
}

// Sampler draws per-session paths from a family's distribution.
type Sampler interface {
	// Sample draws a path able to back a session of the given duration
	// (seconds).
	Sample(rng *rand.Rand, duration float64) Path
	// Name identifies the family ("puffer", "fcc", "cs2p").
	Name() string
}

// PufferPaths is the deployment distribution: heavy-tailed session mean
// throughput (lognormal body with a Pareto upper tail and a slow lower
// tail), wide-ranging RTTs, and Puffer-like within-session dynamics.
//
// Calibration targets from the paper: "slow" paths (mean delivery rate under
// 6 Mbit/s) carry roughly a fifth of streams and most of the stalls.
type PufferPaths struct {
	// MedianRate is the median session mean capacity (bits/sec).
	// Zero means the default 12 Mbit/s.
	MedianRate float64
	// Sigma is the lognormal shape. Zero means the default 1.1.
	Sigma float64
}

// Name implements Sampler.
func (PufferPaths) Name() string { return "puffer" }

// Sample implements Sampler.
func (p PufferPaths) Sample(rng *rand.Rand, duration float64) Path {
	median := p.MedianRate
	if median == 0 {
		median = 12e6
	}
	sigma := p.Sigma
	if sigma == 0 {
		sigma = 1.1
	}
	mean := median * math.Exp(sigma*rng.NormFloat64())
	// Pareto-ish upper tail: a few sessions on very fat pipes.
	if rng.Float64() < 0.05 {
		mean *= 1 + rng.ExpFloat64()*3
	}
	mean = clamp(mean, 0.15e6, 800e6)
	tr := GenPuffer(rng, DefaultPufferTraceConfig(mean), duration)
	rtt := clamp(0.040*math.Exp(0.55*rng.NormFloat64()), 0.005, 0.400)
	return Path{
		Trace:         tr,
		BaseRTT:       rtt,
		QueueCapacity: clamp(0.25*math.Exp(0.5*rng.NormFloat64()), 0.05, 2.0),
	}
}

// FCCPaths is the emulation distribution used in the paper's §5.2
// methodology: FCC-like traces replayed behind a fixed 40 ms mahimahi delay
// shell with capacity capped near 12 Mbit/s. Session means are bounded and
// modest; variation is mild — no heavy tail.
type FCCPaths struct {
	// MinRate/MaxRate bound the log-uniform session mean (bits/sec).
	// Zero means defaults of 0.3 and 16 Mbit/s.
	MinRate, MaxRate float64
}

// Name implements Sampler.
func (FCCPaths) Name() string { return "fcc" }

// Sample implements Sampler.
func (f FCCPaths) Sample(rng *rand.Rand, duration float64) Path {
	lo, hi := f.MinRate, f.MaxRate
	if lo == 0 {
		lo = 0.3e6
	}
	if hi == 0 {
		hi = 16e6
	}
	mean := lo * math.Exp(rng.Float64()*math.Log(hi/lo))
	tr := GenFCC(rng, DefaultFCCTraceConfig(mean), duration)
	return Path{
		Trace:         tr,
		BaseRTT:       0.040, // the mahimahi shell's fixed 40 ms
		QueueCapacity: 0.5,
	}
}

// CS2PPaths draws discrete-state Markov paths (for the Figure 2 contrast).
type CS2PPaths struct {
	MedianRate float64 // zero means 2.4 Mbit/s, as in CS2P's figure
}

// Name implements Sampler.
func (CS2PPaths) Name() string { return "cs2p" }

// Sample implements Sampler.
func (c CS2PPaths) Sample(rng *rand.Rand, duration float64) Path {
	median := c.MedianRate
	if median == 0 {
		median = 2.4e6
	}
	mean := median * math.Exp(0.4*rng.NormFloat64())
	tr := GenCS2P(rng, DefaultCS2PTraceConfig(mean), duration)
	return Path{Trace: tr, BaseRTT: 0.050, QueueCapacity: 0.5}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
