// Command puffer-top is a live terminal dashboard over any puffer obs
// endpoint (-obs-listen of puffer-serve, puffer-daily, puffer-sweep, ...).
// It polls /metrics/history.json on a fixed cadence and renders the fleet's
// vital signs — concurrency, sessions/sec, decision-latency quantiles,
// batch shapes, queue-full and clock-violation counters, and the served
// model generation — computing nothing the endpoint's windowed history does
// not already carry, so watching a run cannot perturb it.
//
//	puffer-top                          # watch 127.0.0.1:9090
//	puffer-top -addr 127.0.0.1:9091 -interval 2s
//	puffer-top -once                    # print one frame and exit (scripts)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-top: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("puffer-top", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9090", "obs endpoint to watch (host:port of some process's -obs-listen)")
		interval = fs.Duration("interval", time.Second, "poll and redraw cadence")
		once     = fs.Bool("once", false, "fetch once, print one frame without clearing the screen, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := "http://" + *addr + "/metrics/history.json"
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		doc, err := fetch(client, url)
		if err != nil {
			return err
		}
		fmt.Print(renderFrame(doc, *addr, time.Now()))
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		doc, err := fetch(client, url)
		frame := ""
		if err != nil {
			frame = fmt.Sprintf("puffer-top — %s — %s\n\n  %v\n", *addr,
				time.Now().Format("15:04:05"), err)
		} else {
			frame = renderFrame(doc, *addr, time.Now())
		}
		// Clear screen, home cursor, draw.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-sig:
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}

// historyDoc mirrors the obs endpoint's /metrics/history.json document.
type historyDoc struct {
	IntervalS float64 `json:"interval_s"`
	Samples   int     `json:"samples"`
	Counters  []struct {
		Name     string    `json:"name"`
		Values   []int64   `json:"values"`
		RatePerS []float64 `json:"rate_per_s"`
	} `json:"counters"`
	Gauges []struct {
		Name   string    `json:"name"`
		Values []float64 `json:"values"`
	} `json:"gauges"`
	Histograms []struct {
		Name      string  `json:"name"`
		Counts    []int64 `json:"counts"`
		WinCount  []int64 `json:"win_count"`
		WinP50NS  []int64 `json:"win_p50"`
		WinP99NS  []int64 `json:"win_p99"`
		WinP999NS []int64 `json:"win_p999"`
	} `json:"histograms"`
}

func fetch(client *http.Client, url string) (*historyDoc, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	var doc historyDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &doc, nil
}

// Lookup helpers over the history document. Every reader tolerates absent
// metrics (a daemon that has not served yet, a virtual-only run) by
// returning ok=false, so the frame renders whatever subset is live.

func (d *historyDoc) counterValue(name string) (int64, bool) {
	for _, c := range d.Counters {
		if c.Name == name && len(c.Values) > 0 {
			return c.Values[len(c.Values)-1], true
		}
	}
	return 0, false
}

func (d *historyDoc) counterRate(name string) (float64, bool) {
	for _, c := range d.Counters {
		if c.Name == name && len(c.RatePerS) > 0 {
			return c.RatePerS[len(c.RatePerS)-1], true
		}
	}
	return 0, false
}

func (d *historyDoc) gaugeValue(name string) (float64, bool) {
	for _, g := range d.Gauges {
		if g.Name == name && len(g.Values) > 0 {
			return g.Values[len(g.Values)-1], true
		}
	}
	return 0, false
}

// histWindow returns the newest non-empty window of the named histogram
// (the last poll interval that saw observations), so an idle moment shows
// the most recent activity instead of zeros.
func (d *historyDoc) histWindow(name string) (count, p50, p99, p999 int64, ok bool) {
	for _, h := range d.Histograms {
		if h.Name != name {
			continue
		}
		for i := len(h.WinCount) - 1; i >= 0; i-- {
			if h.WinCount[i] > 0 {
				return h.WinCount[i], h.WinP50NS[i], h.WinP99NS[i], h.WinP999NS[i], true
			}
		}
	}
	return 0, 0, 0, 0, false
}

func ns(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }

// renderFrame draws one dashboard frame from a history document. Pure
// (clock passed in), so tests assert on its output directly.
func renderFrame(d *historyDoc, addr string, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "puffer-top — %s — %s (%ds window × %d samples)\n\n",
		addr, now.Format("15:04:05"), int(d.IntervalS), d.Samples)

	row := func(label, text string) {
		fmt.Fprintf(&b, "  %-11s %s\n", label, text)
	}

	// Sessions: the serving daemon's live gauge, or the load generator's.
	if v, ok := d.gaugeValue("serve_sessions_active"); ok {
		line := fmt.Sprintf("active %.0f", v)
		if rate, ok := d.counterRate("serve_sessions_total"); ok {
			line += fmt.Sprintf("   opening %.1f/s", rate)
		}
		if tot, ok := d.counterValue("serve_sessions_total"); ok {
			line += fmt.Sprintf("   total %d", tot)
		}
		row("sessions", line)
	} else if v, ok := d.gaugeValue("runner_sessions_per_sec"); ok {
		row("sessions", fmt.Sprintf("%.1f/s (runner)", v))
	}

	// Decisions: rate plus the windowed latency quantiles, serving-side
	// first, fleet engine otherwise.
	for _, src := range []struct{ counter, hist, label string }{
		{"serve_decisions_total", "serve_decision_ns", "decisions"},
		{"", "serve_request_ns", "requests"},
		{"", "serve_client_rtt_ns", "wire rtt"},
		{"", "fleet_decision_ns", "fleet dec"},
	} {
		line := ""
		if src.counter != "" {
			if rate, ok := d.counterRate(src.counter); ok {
				line += fmt.Sprintf("%.0f/s   ", rate)
			}
		}
		if n, p50, p99, p999, ok := d.histWindow(src.hist); ok {
			line += fmt.Sprintf("p50 %s  p99 %s  p999 %s  (%d in window)",
				ns(p50), ns(p99), ns(p999), n)
		}
		if line != "" {
			row(src.label, line)
		}
	}

	// Batch shape: serving batches in sessions, service batches in rows.
	if n, p50, p99, _, ok := d.histWindow("serve_batch_sessions"); ok {
		row("batch", fmt.Sprintf("p50 %d  p99 %d sessions/flush  (%d flushes in window)",
			p50, p99, n))
	}
	if n, p50, p99, _, ok := d.histWindow("fleet_batch_rows"); ok {
		row("rows", fmt.Sprintf("p50 %d  p99 %d rows/net  (%d batches in window)",
			p50, p99, n))
	}

	// Invariant counters: these being nonzero is the headline.
	inv := ""
	for _, c := range []struct{ name, label string }{
		{"serve_queue_full_total", "queue_full"},
		{"serve_clock_violations_total", "clock_violations"},
		{"serve_proto_errors_total", "proto_errors"},
		{"serve_sessions_aborted_total", "aborted"},
	} {
		if v, ok := d.counterValue(c.name); ok {
			inv += fmt.Sprintf("%s %d   ", c.label, v)
		}
	}
	if inv != "" {
		row("counters", strings.TrimRight(inv, " "))
	}

	// Dist engine: live worker fleet, shard progress, and fault handling.
	if live, ok := d.gaugeValue("dist_workers_live"); ok {
		line := fmt.Sprintf("workers %.0f", live)
		if done, ok := d.counterValue("dist_shards_done_total"); ok {
			line += fmt.Sprintf("   shards %d", done)
		}
		if n, p50, p99, _, ok := d.histWindow("dist_shard_wall_ns"); ok {
			line += fmt.Sprintf("   shard p50 %s  p99 %s  (%d in window)", ns(p50), ns(p99), n)
		}
		if restarts, ok := d.counterValue("dist_worker_restarts_total"); ok {
			retries, _ := d.counterValue("dist_shard_retries_total")
			line += fmt.Sprintf("   restarts %d  retries %d", restarts, retries)
		}
		row("dist", line)
	}

	// Model: served generation and rotation count.
	if gen, ok := d.gaugeValue("serve_model_generation"); ok {
		line := fmt.Sprintf("generation %.0f", gen)
		if rot, ok := d.counterValue("serve_model_rotations_total"); ok {
			line += fmt.Sprintf("   rotations %d", rot)
		}
		row("model", line)
	}

	if b.Len() == 0 || d.Samples == 0 {
		fmt.Fprintf(&b, "  (no samples yet)\n")
	}
	return b.String()
}
